package tuple

import (
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
)

func seriesValue(t *testing.T, seq uint64, samples []chunkenc.Sample) []byte {
	t.Helper()
	enc, err := chunkenc.EncodeXORSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	return Encode(seq, KindSeries, samples[0].T, samples[len(samples)-1].T, enc)
}

func groupValue(t *testing.T, seq uint64, g *chunkenc.GroupData) []byte {
	t.Helper()
	enc, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return Encode(seq, KindGroup, g.Times[0], g.Times[len(g.Times)-1], enc)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	v := Encode(42, KindSeries, 0, 0, []byte("payload"))
	seq, kind, payload, err := Decode(v)
	if err != nil || seq != 42 || kind != KindSeries || string(payload) != "payload" {
		t.Fatalf("Decode = %d,%d,%q,%v", seq, kind, payload, err)
	}
	if SeqOf(v) != 42 {
		t.Fatalf("SeqOf = %d", SeqOf(v))
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, _, err := Decode(nil); err == nil {
		t.Fatal("empty value decoded")
	}
	if _, _, _, err := Decode([]byte{1, 99}); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if SeqOf(nil) != 0 {
		t.Fatal("SeqOf(nil) != 0")
	}
}

func TestTimeRange(t *testing.T) {
	v := seriesValue(t, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 200, V: 2}, {T: 350, V: 3}})
	lo, hi, err := TimeRange(v)
	if err != nil || lo != 100 || hi != 350 {
		t.Fatalf("TimeRange = %d,%d,%v", lo, hi, err)
	}

	g := &chunkenc.GroupData{
		Times: []int64{10, 20},
		Columns: []chunkenc.GroupColumn{
			{Slot: 0, Values: []float64{1, 2}, Nulls: []bool{false, false}},
		},
	}
	gv := groupValue(t, 2, g)
	lo, hi, err = TimeRange(gv)
	if err != nil || lo != 10 || hi != 20 {
		t.Fatalf("group TimeRange = %d,%d,%v", lo, hi, err)
	}
}

func TestWindowStart(t *testing.T) {
	cases := []struct{ t, partLen, want int64 }{
		{0, 100, 0}, {99, 100, 0}, {100, 100, 100}, {250, 100, 200},
		{-1, 100, -100}, {-100, 100, -100}, {-101, 100, -200},
	}
	for _, c := range cases {
		if got := WindowStart(c.t, c.partLen); got != c.want {
			t.Fatalf("WindowStart(%d,%d) = %d, want %d", c.t, c.partLen, got, c.want)
		}
	}
}

func TestSplitSeriesWithinOneWindow(t *testing.T) {
	key := encoding.MakeKey(1, 100)
	v := seriesValue(t, 5, []chunkenc.Sample{{T: 100, V: 1}, {T: 150, V: 2}})
	kvs, err := Split(key, v, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 1 || kvs[0].Key != key {
		t.Fatalf("split = %+v", kvs)
	}
	// Value must be returned unchanged (no re-encode).
	if &kvs[0].Value[0] != &v[0] {
		t.Fatal("single-window split re-encoded the value")
	}
}

func TestSplitSeriesAcrossWindows(t *testing.T) {
	key := encoding.MakeKey(7, 950)
	samples := []chunkenc.Sample{
		{T: 950, V: 1}, {T: 990, V: 2}, // window 0
		{T: 1000, V: 3}, {T: 1500, V: 4}, // window 1000
		{T: 2100, V: 5}, // window 2000
	}
	kvs, err := Split(key, seriesValue(t, 9, samples), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 3 {
		t.Fatalf("split into %d parts", len(kvs))
	}
	wantKeys := []encoding.Key{
		encoding.MakeKey(7, 950), encoding.MakeKey(7, 1000), encoding.MakeKey(7, 2100),
	}
	wantCounts := []int{2, 2, 1}
	total := 0
	for i, kv := range kvs {
		if kv.Key != wantKeys[i] {
			t.Fatalf("part %d key = %v", i, kv.Key)
		}
		seq, kind, payload, err := Decode(kv.Value)
		if err != nil || seq != 9 || kind != KindSeries {
			t.Fatalf("part %d envelope: %d %d %v", i, seq, kind, err)
		}
		ss, err := chunkenc.DecodeXORSamples(payload)
		if err != nil || len(ss) != wantCounts[i] {
			t.Fatalf("part %d samples = %v, %v", i, ss, err)
		}
		total += len(ss)
	}
	if total != len(samples) {
		t.Fatalf("split lost samples: %d != %d", total, len(samples))
	}
}

func TestSplitGroupAcrossWindows(t *testing.T) {
	g := &chunkenc.GroupData{
		Times: []int64{900, 1100, 1200},
		Columns: []chunkenc.GroupColumn{
			{Slot: 0, Values: []float64{1, 2, 3}, Nulls: []bool{false, false, false}},
			{Slot: 1, Values: []float64{0, 5, 0}, Nulls: []bool{true, false, true}},
		},
	}
	key := encoding.MakeKey(index(3), 900)
	kvs, err := Split(key, groupValue(t, 4, g), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("group split into %d parts", len(kvs))
	}
	_, _, p1, err := Decode(kvs[1].Value)
	if err != nil {
		t.Fatal(err)
	}
	g1, err := chunkenc.DecodeGroupData(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1.Times) != 2 || g1.Times[0] != 1100 {
		t.Fatalf("second window times = %v", g1.Times)
	}
	if len(g1.Columns) != 2 || g1.Columns[1].Values[0] != 5 || !g1.Columns[1].Nulls[1] {
		t.Fatalf("second window columns = %+v", g1.Columns)
	}
}

func index(i uint64) uint64 { return 1<<63 | i }

func TestMergeSeries(t *testing.T) {
	older := seriesValue(t, 3, []chunkenc.Sample{{T: 10, V: 1}, {T: 20, V: 2}})
	newer := seriesValue(t, 7, []chunkenc.Sample{{T: 20, V: 22}, {T: 30, V: 3}})
	merged, err := Merge(older, newer)
	if err != nil {
		t.Fatal(err)
	}
	seq, _, payload, err := Decode(merged)
	if err != nil || seq != 7 {
		t.Fatalf("merged seq = %d, %v", seq, err)
	}
	ss, err := chunkenc.DecodeXORSamples(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := []chunkenc.Sample{{T: 10, V: 1}, {T: 20, V: 22}, {T: 30, V: 3}}
	if len(ss) != 3 {
		t.Fatalf("merged samples = %v", ss)
	}
	for i := range want {
		if ss[i] != want[i] {
			t.Fatalf("merged[%d] = %v, want %v", i, ss[i], want[i])
		}
	}
}

func TestMergeGroups(t *testing.T) {
	older := groupValue(t, 1, &chunkenc.GroupData{
		Times:   []int64{10},
		Columns: []chunkenc.GroupColumn{{Slot: 0, Values: []float64{1}, Nulls: []bool{false}}},
	})
	newer := groupValue(t, 2, &chunkenc.GroupData{
		Times:   []int64{20},
		Columns: []chunkenc.GroupColumn{{Slot: 1, Values: []float64{2}, Nulls: []bool{false}}},
	})
	merged, err := Merge(older, newer)
	if err != nil {
		t.Fatal(err)
	}
	_, _, payload, _ := Decode(merged)
	g, err := chunkenc.DecodeGroupData(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Times) != 2 || len(g.Columns) != 2 {
		t.Fatalf("merged group = %+v", g)
	}
	// Slot 0 must be NULL at t=20, slot 1 NULL at t=10.
	if !g.Columns[0].Nulls[1] || !g.Columns[1].Nulls[0] {
		t.Fatalf("NULL filling wrong: %+v", g.Columns)
	}
}

func TestMergeKindMismatch(t *testing.T) {
	s := seriesValue(t, 1, []chunkenc.Sample{{T: 1, V: 1}})
	g := groupValue(t, 1, &chunkenc.GroupData{
		Times:   []int64{1},
		Columns: []chunkenc.GroupColumn{{Slot: 0, Values: []float64{1}, Nulls: []bool{false}}},
	})
	if _, err := Merge(s, g); err == nil {
		t.Fatal("cross-kind merge accepted")
	}
}

func TestSplitZeroPartLen(t *testing.T) {
	key := encoding.MakeKey(1, 0)
	v := seriesValue(t, 1, []chunkenc.Sample{{T: 0, V: 1}, {T: 5000, V: 2}})
	kvs, err := Split(key, v, 0)
	if err != nil || len(kvs) != 1 {
		t.Fatalf("zero partLen split = %v, %v", kvs, err)
	}
}
