package lint

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// graphNode finds a declared function by its readable name.
func graphNode(t *testing.T, g *CallGraph, name string) *Node {
	t.Helper()
	for _, n := range g.Nodes() {
		if n.Name() == name {
			return n
		}
	}
	t.Fatalf("no node %q in graph", name)
	return nil
}

// edgeString renders an edge the way the golden list is written.
func edgeString(e Edge) string {
	s := fmt.Sprintf("%s -%s-> %s", e.Caller.Name(), e.Kind, e.Callee.Name())
	if e.Concurrent {
		s += " [concurrent]"
	}
	if e.Deferred {
		s += " [deferred]"
	}
	return s
}

// TestCallGraphGoldenEdges pins the exact out-edge set of the fixture's
// Caller: one witness per resolution rule. Any change to the builder that
// adds, drops, or reflags an edge shows up as a diff here.
func TestCallGraphGoldenEdges(t *testing.T) {
	_, pkgs := loadFixture(t, "callgraph")
	g := BuildCallGraph(pkgs)
	caller := graphNode(t, g, "Caller")

	var got []string
	for _, e := range caller.Out {
		got = append(got, edgeString(e))
	}
	sort.Strings(got)

	want := []string{
		"Caller -call-> Speaker.Speak",       // interface call site
		"Caller -call-> direct",              // static call
		"Caller -call-> direct [concurrent]", // go direct()
		"Caller -call-> direct [deferred]",   // defer direct()
		"Caller -call-> helper [concurrent]", // literal launched by go, body attributed to Caller
		"Caller -call-> helper2",             // immediately-invoked literal, synchronous
		"Caller -dynamic-> Cat.Speak",        // conservative dispatch
		"Caller -dynamic-> Dog.Speak",        // conservative dispatch
		"Caller -ref-> Dog.Speak",            // method value m := Dog{}.Speak
		"Caller -ref-> direct",               // bare reference f := direct
	}
	sort.Strings(want)

	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("golden edge mismatch\ngot:\n  %s\nwant:\n  %s",
			strings.Join(got, "\n  "), strings.Join(want, "\n  "))
	}
}
