package lint

import (
	"strings"
	"testing"
)

// TestNoIgnoredDiagnostics is the in-process invariant gate: the full
// analyzer suite over the whole module must produce zero unsuppressed
// findings, so `go test ./...` enforces the same contract `make lint`
// does in CI. A finding here means either a real invariant violation or a
// missing //lint:ignore with a reason.
func TestNoIgnoredDiagnostics(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	pkgs, err := NewLoader(root, modPath).Load("./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	diags := Run(root, pkgs, All())
	for _, d := range Unsuppressed(diags) {
		t.Errorf("%s", d)
	}
	if t.Failed() {
		t.Log("fix the findings above or add //lint:ignore <analyzer> <reason> where the violation is deliberate")
	}
}

// TestFindModule pins module discovery from a nested directory.
func TestFindModule(t *testing.T) {
	root, path, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	if path != "timeunion" {
		t.Errorf("module path = %q, want timeunion", path)
	}
	if !strings.HasSuffix(root, "repo") && root == "" {
		t.Errorf("unexpected module root %q", root)
	}
}

// TestLoaderSkipsTestdataAndTests: fixture packages under testdata and
// _test.go files must never leak into a module load, or their deliberate
// violations would fail the real gate.
func TestLoaderSkipsTestdataAndTests(t *testing.T) {
	root, modPath, err := FindModule(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader(root, modPath).Load("./internal/lint/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		if strings.Contains(pkg.Path, "testdata") {
			t.Errorf("testdata package loaded: %s", pkg.Path)
		}
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				t.Errorf("test file loaded: %s", name)
			}
		}
	}
}
