// Package pkg is the atomicalign fixture: 64-bit fields fed to
// sync/atomic must be 8-byte aligned under 32-bit layout and never mixed
// with plain access.
package pkg

import "sync/atomic"

// counters has a bool before the atomic field, pushing it to offset 4 on
// GOARCH=386 where int64 is only 4-byte aligned.
type counters struct {
	closed bool
	n      int64 // want "offset 4 under 32-bit layout"
	spare  int64
}

func (c *counters) bump() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counters) read() int64 {
	return atomic.LoadInt64(&c.n)
}

func (c *counters) mixed() int64 {
	return c.n // want "plain access to field n"
}

func (c *counters) mixedWrite() {
	c.n = 0 // want "plain access to field n"
}

// aligned keeps the atomic word first: no finding.
type aligned struct {
	n      uint64
	closed bool
}

func (a *aligned) bump() uint64 {
	return atomic.AddUint64(&a.n, 1)
}

// plainOnly is never touched by sync/atomic, so layout and plain access
// are unconstrained.
type plainOnly struct {
	closed bool
	n      int64
}

func (p *plainOnly) incr() { p.n++ }
