package lsm

import (
	"timeunion/internal/chunkenc"
	"timeunion/internal/tuple"
)

// This file is the lazy half of the streaming read path (DESIGN.md §4.8):
// ChunksFor still gathers the raw chunk list, but instead of decoding every
// payload into slices, each chunk becomes a SampleIterator that decodes
// only when the merge cursor actually reaches it. Chunks whose envelope
// time bounds fall outside the query range are skipped without any payload
// decode, and a Seek past a chunk's MaxT exhausts it undecoded.

// lazyChunkIterator streams one series chunk, constructing the XOR decoder
// on first use. onDecode (optional) observes the payload size at the moment
// it is actually decoded — the hook behind the decoded-bytes counters.
type lazyChunkIterator struct {
	payload    []byte
	minT, maxT int64
	onDecode   func(int)
	inner      chunkenc.SampleIterator
	done       bool
}

func (it *lazyChunkIterator) open() {
	if it.onDecode != nil {
		it.onDecode(len(it.payload))
	}
	it.inner = chunkenc.NewXORIterator(it.payload)
}

func (it *lazyChunkIterator) Next() bool {
	if it.done {
		return false
	}
	if it.inner == nil {
		it.open()
	}
	if !it.inner.Next() {
		it.done = true
		return false
	}
	return true
}

func (it *lazyChunkIterator) Seek(t int64) bool {
	if it.done {
		return false
	}
	if it.inner == nil && it.maxT < t {
		it.done = true // the whole chunk lies before t: never decode it
		return false
	}
	if it.inner == nil {
		it.open()
	}
	if !it.inner.Seek(t) {
		it.done = true
		return false
	}
	return true
}

func (it *lazyChunkIterator) At() (int64, float64) { return it.inner.At() }

func (it *lazyChunkIterator) Err() error {
	if it.inner == nil {
		return nil
	}
	return it.inner.Err()
}

// SeriesSources turns a rank-sorted chunk list into lazy ranked iterator
// sources for an individual series. Chunks that don't overlap [mint, maxt]
// and group tuples are dropped; an envelope decode error becomes an error
// source so the merge surfaces it. onDecode may be nil.
func SeriesSources(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) []chunkenc.RankedIterator {
	out := make([]chunkenc.RankedIterator, 0, len(chunks))
	// One backing array for every lazy iterator; capacity is fixed up front
	// so the element pointers taken below stay valid.
	backing := make([]lazyChunkIterator, 0, len(chunks))
	for _, c := range chunks {
		if c.MaxT < mint || c.MinT > maxt {
			continue
		}
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			out = append(out, chunkenc.RankedIterator{Iter: chunkenc.ErrIterator(err), Rank: c.Rank})
			continue
		}
		if kind != tuple.KindSeries {
			continue
		}
		backing = append(backing, lazyChunkIterator{payload: payload, minT: c.MinT, maxT: c.MaxT, onDecode: onDecode})
		out = append(out, chunkenc.RankedIterator{Iter: &backing[len(backing)-1], Rank: c.Rank})
	}
	return out
}

// SeriesIterator streams an individual series' samples out of a chunk list:
// a deduplicating merge over lazy per-chunk sources, clipped to
// [mint, maxt]. The streaming replacement for SeriesSamples.
func SeriesIterator(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) chunkenc.SampleIterator {
	return chunkenc.NewRangeLimit(chunkenc.NewMergeIterator(SeriesSources(chunks, mint, maxt, onDecode)), mint, maxt)
}

// lazyGroupSlotIterator streams one member's samples out of one group
// tuple, constructing the column decoders on first use. The tuple's
// structural envelope (column offsets) is already parsed; only the
// compressed time and value columns are deferred.
type lazyGroupSlotIterator struct {
	timeCol, valCol []byte
	minT, maxT      int64
	onDecode        func(int)
	inner           chunkenc.SampleIterator
	done            bool
}

func (it *lazyGroupSlotIterator) open() {
	if it.onDecode != nil {
		it.onDecode(len(it.timeCol) + len(it.valCol))
	}
	it.inner = chunkenc.NewGroupSlotIterator(it.timeCol, it.valCol)
}

func (it *lazyGroupSlotIterator) Next() bool {
	if it.done {
		return false
	}
	if it.inner == nil {
		it.open()
	}
	if !it.inner.Next() {
		it.done = true
		return false
	}
	return true
}

func (it *lazyGroupSlotIterator) Seek(t int64) bool {
	if it.done {
		return false
	}
	if it.inner == nil && it.maxT < t {
		it.done = true
		return false
	}
	if it.inner == nil {
		it.open()
	}
	if !it.inner.Seek(t) {
		it.done = true
		return false
	}
	return true
}

func (it *lazyGroupSlotIterator) At() (int64, float64) { return it.inner.At() }

func (it *lazyGroupSlotIterator) Err() error {
	if it.inner == nil {
		return nil
	}
	return it.inner.Err()
}

// GroupSources turns a chunk list into lazy ranked iterator sources for a
// group, keyed by member slot. Tuple envelopes and the group's column
// directory are parsed eagerly (cheap, no bit decode); the compressed
// columns decode lazily. onDecode may be nil.
func GroupSources(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) (map[uint32][]chunkenc.RankedIterator, error) {
	sources := map[uint32][]chunkenc.RankedIterator{}
	for _, c := range chunks {
		if c.MaxT < mint || c.MinT > maxt {
			continue
		}
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			return nil, err
		}
		if kind != tuple.KindGroup {
			continue
		}
		gt, err := chunkenc.DecodeGroupTuple(payload)
		if err != nil {
			return nil, err
		}
		for i, slot := range gt.Slots {
			sources[slot] = append(sources[slot], chunkenc.RankedIterator{
				Iter: &lazyGroupSlotIterator{
					timeCol: gt.Time, valCol: gt.Values[i],
					minT: c.MinT, maxT: c.MaxT, onDecode: onDecode,
				},
				Rank: c.Rank,
			})
		}
	}
	return sources, nil
}

// GroupIterators streams a group's members out of a chunk list: one merged,
// range-clipped iterator per slot that appears in an overlapping chunk. The
// streaming replacement for GroupSamples.
func GroupIterators(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) (map[uint32]chunkenc.SampleIterator, error) {
	sources, err := GroupSources(chunks, mint, maxt, onDecode)
	if err != nil {
		return nil, err
	}
	out := make(map[uint32]chunkenc.SampleIterator, len(sources))
	for slot, srcs := range sources {
		out[slot] = chunkenc.NewRangeLimit(chunkenc.NewMergeIterator(srcs), mint, maxt)
	}
	return out, nil
}
