package lsm

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
)

func TestManifestEncodeDecodeRoundtrip(t *testing.T) {
	m := &manifest{
		version: 7, nextSeq: 123, r1: 1000, r2: 4000,
		tables:     []string{"l0/a.sst", "l1/b.sst"},
		tombstones: []string{"l1/c.sst"},
	}
	got, err := decodeManifest(encodeManifest(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.version != 7 || got.nextSeq != 123 || got.r1 != 1000 || got.r2 != 4000 {
		t.Fatalf("scalars = %+v", got)
	}
	if len(got.tables) != 2 || got.tables[1] != "l1/b.sst" {
		t.Fatalf("tables = %v", got.tables)
	}
	if len(got.tombstones) != 1 || got.tombstones[0] != "l1/c.sst" {
		t.Fatalf("tombstones = %v", got.tombstones)
	}
}

func TestManifestDecodeRejectsCorruption(t *testing.T) {
	data := encodeManifest(&manifest{version: 1, r1: 1000, r2: 4000, tables: []string{"l0/a.sst"}})
	cases := map[string][]byte{
		"bitflip":    append([]byte{}, data...),
		"truncation": data[:len(data)/2],
		"empty":      nil,
		"bad magic":  []byte(strings.Replace(string(data), "timeunion", "timefusion", 1)),
	}
	cases["bitflip"][len(data)/3] ^= 0x40
	for name, c := range cases {
		if _, err := decodeManifest(c); !errors.Is(err, errManifestCorrupt) {
			t.Errorf("%s: err = %v, want errManifestCorrupt", name, err)
		}
	}
}

func TestLoadManifestPicksNewestValidAndFallsBack(t *testing.T) {
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	for v := uint64(1); v <= 2; v++ {
		data := encodeManifest(&manifest{version: v, r1: 1000, r2: 4000})
		if err := store.Put(manifestKey(manifestFastPrefix, v), data); err != nil {
			t.Fatal(err)
		}
	}
	// Version 3 is a torn write: never committed, so v2 is the truth.
	torn := encodeManifest(&manifest{version: 3, r1: 1000, r2: 4000})
	if err := store.Put(manifestKey(manifestFastPrefix, 3), torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	m, stale, err := loadManifest(store, manifestFastPrefix)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.version != 2 {
		t.Fatalf("chose %+v, want version 2", m)
	}
	if len(stale) != 2 {
		t.Fatalf("stale = %v, want the torn v3 and the old v1", stale)
	}
}

func TestLoadManifestEmptyMeansPreManifestTree(t *testing.T) {
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	m, stale, err := loadManifest(store, manifestFastPrefix)
	if err != nil || m != nil || len(stale) != 0 {
		t.Fatalf("got %+v %v %v, want nil/none/nil", m, stale, err)
	}
}

// getFailStore fails every Get: a listed manifest key that cannot be read
// must be a hard error, not a silent fallback to an older version.
type getFailStore struct{ *cloud.MemStore }

func (g *getFailStore) Get(key string) ([]byte, error) {
	return nil, fmt.Errorf("injected get failure")
}

func TestLoadManifestGetFailureIsHardError(t *testing.T) {
	mem := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	data := encodeManifest(&manifest{version: 1, r1: 1000, r2: 4000})
	if err := mem.Put(manifestKey(manifestFastPrefix, 1), data); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadManifest(&getFailStore{MemStore: mem}, manifestFastPrefix); err == nil {
		t.Fatal("unreadable durably-listed manifest did not fail recovery")
	}
}

// TestLegacyTreeUpgradesToManifest covers the pre-manifest fallback: a tree
// whose stores hold tables but no manifest recovers from listings and
// writes its first manifest pair.
func TestLegacyTreeUpgradesToManifest(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	opts := smallOpts()
	opts.Fast, opts.Slow = fast, slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	fillSequential(t, l, []uint64{1, 2}, 40, 0, 50)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	before := querySeries(t, l, 1, 0, 100000)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Strip every manifest object: the stores now look like a pre-manifest
	// deployment.
	for _, sp := range []struct {
		s cloud.Store
		p string
	}{{fast, manifestFastPrefix}, {slow, manifestSlowPrefix}} {
		keys, err := sp.s.List(sp.p)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) == 0 {
			t.Fatalf("no manifest objects under %s to strip", sp.p)
		}
		for _, k := range keys {
			if err := sp.s.Delete(k); err != nil {
				t.Fatal(err)
			}
		}
	}

	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	after := querySeries(t, l2, 1, 0, 100000)
	if len(after) != len(before) {
		t.Fatalf("legacy recovery lost data: %d samples, want %d", len(after), len(before))
	}
	if keys, _ := fast.List(manifestFastPrefix); len(keys) != 1 {
		t.Fatalf("fast manifest not recreated: %v", keys)
	}
	if keys, _ := slow.List(manifestSlowPrefix); len(keys) != 1 {
		t.Fatalf("slow manifest not recreated: %v", keys)
	}
	if orphans, err := l2.Orphans(); err != nil || len(orphans) != 0 {
		t.Fatalf("orphans = %v, %v", orphans, err)
	}
}

// TestTombstoneSubtraction reconstructs the crash window between the slow
// and fast manifest commits of an L1→L2 compaction: the slow manifest's
// tombstones must exclude consumed L1 inputs from the (stale) fast manifest
// so their data is not double-counted, and recovery must GC the objects.
func TestTombstoneSubtraction(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	consumed := craftTable(t, fast, 1, 0, 1000, 1, 1, []chunkenc.Sample{{T: 100, V: 1}})
	kept := craftTable(t, fast, 1, 1000, 2000, 2, 2, []chunkenc.Sample{{T: 1500, V: 2}})
	shipped := craftTable(t, slow, 2, 0, 4000, 3, 1, []chunkenc.Sample{{T: 100, V: 1}})

	put := func(s cloud.Store, prefix string, m *manifest) {
		t.Helper()
		if err := s.Put(manifestKey(prefix, m.version), encodeManifest(m)); err != nil {
			t.Fatal(err)
		}
	}
	// Fast manifest predates the compaction; slow manifest carries its edit.
	put(fast, manifestFastPrefix, &manifest{version: 1, nextSeq: 10, r1: 1000, r2: 4000,
		tables: []string{consumed, kept}})
	put(slow, manifestSlowPrefix, &manifest{version: 1, nextSeq: 10, r1: 1000, r2: 4000,
		tables: []string{shipped}, tombstones: []string{consumed}})

	opts := smallOpts()
	opts.Fast, opts.Slow = fast, slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	// Exactly one sample at t=100: the L2 copy, not a resurrected L1 twin.
	if got := querySeries(t, l, 1, 0, 10000); len(got) != 1 || got[0].T != 100 {
		t.Fatalf("id 1 = %v, want the single shipped sample", got)
	}
	if got := querySeries(t, l, 2, 0, 10000); len(got) != 1 {
		t.Fatalf("id 2 = %v", got)
	}
	if _, err := fast.Get(consumed); err == nil {
		t.Fatal("tombstoned table survived recovery GC")
	}
	if orphans, err := l.Orphans(); err != nil || len(orphans) != 0 {
		t.Fatalf("orphans = %v, %v", orphans, err)
	}
}

// TestPartitionLengthsRestoredFromManifest: r1/r2 follow the manifest, not
// the (possibly different) Options of the reopening process — dynamic
// sizing state survives restarts.
func TestPartitionLengthsRestoredFromManifest(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	opts := smallOpts()
	opts.Fast, opts.Slow = fast, slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	putSeries(t, l, 1, []chunkenc.Sample{{T: 100, V: 1}})
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	opts.L0PartitionLength = 500
	opts.L2PartitionLength = 2000
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.r1 != 1000 || l2.r2 != 4000 {
		t.Fatalf("r1, r2 = %d, %d; want manifest values 1000, 4000", l2.r1, l2.r2)
	}
}
