// Command tuctl inspects a TimeUnion deployment: the on-disk layout (object
// keys of the two storage tiers and the write-ahead log) or, with the stats
// subcommand, a running server's /metrics endpoint.
//
// Usage:
//
//	tuctl -fast ./data/fast -slow ./data/slow [-wal ./data/wal]
//	tuctl stats [-addr http://localhost:9201]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"timeunion/internal/cloud"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		statsCmd(os.Args[2:])
		return
	}
	var (
		fastDir = flag.String("fast", "", "fast-tier directory (EBS-like)")
		slowDir = flag.String("slow", "", "slow-tier directory (S3-like)")
		walDir  = flag.String("wal", "", "WAL directory (optional)")
	)
	flag.Parse()
	if *fastDir == "" && *slowDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	show := func(label, dir string, tier cloud.Tier) {
		if dir == "" {
			return
		}
		store, err := cloud.NewDirStore(dir, tier, cloud.LatencyModel{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
			return
		}
		keys, err := store.List("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
			return
		}
		fmt.Printf("%s (%s): %d objects, %s total\n", label, dir, len(keys), sizeStr(store.TotalBytes()))
		byPrefix := map[string]int{}
		byPrefixBytes := map[string]int64{}
		for _, k := range keys {
			prefix := k
			if i := strings.Index(k, "/"); i >= 0 {
				prefix = k[:i]
			}
			byPrefix[prefix]++
			if n, err := store.Size(k); err == nil {
				byPrefixBytes[prefix] += n
			}
		}
		for p, n := range byPrefix {
			fmt.Printf("  %-10s %5d objects  %s\n", p, n, sizeStr(byPrefixBytes[p]))
		}
	}
	show("fast tier", *fastDir, cloud.TierBlock)
	show("slow tier", *slowDir, cloud.TierObject)

	if *walDir != "" {
		entries, err := os.ReadDir(*walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wal: %v\n", err)
			os.Exit(1)
		}
		var total int64
		segs := 0
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				continue
			}
			total += info.Size()
			if filepath.Ext(e.Name()) == ".wal" && e.Name() != "catalog.wal" {
				segs++
			}
		}
		fmt.Printf("wal (%s): %d segments, %s total\n", *walDir, segs, sizeStr(total))
	}
}

// statsCmd fetches a running server's /metrics and pretty-prints it
// grouped by subsystem (the timeunion_<subsystem>_ prefix). Histogram
// bucket lines are folded away; their _sum/_count survive.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:9201", "server base URL")
	_ = fs.Parse(args)

	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stats: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "stats: GET /metrics: %s\n", resp.Status)
		os.Exit(1)
	}

	bySubsystem := map[string][]string{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		sub := "other"
		if rest, ok := strings.CutPrefix(name, "timeunion_"); ok {
			if i := strings.Index(rest, "_"); i > 0 {
				sub = rest[:i]
			}
		}
		bySubsystem[sub] = append(bySubsystem[sub], line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "stats: read: %v\n", err)
		os.Exit(1)
	}

	subs := make([]string, 0, len(bySubsystem))
	for s := range bySubsystem {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	for _, sub := range subs {
		fmt.Printf("%s:\n", sub)
		for _, line := range bySubsystem[sub] {
			i := strings.LastIndex(line, " ")
			fmt.Printf("  %-60s %s\n", line[:i], line[i+1:])
		}
	}
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
