package chunkenc

// This file holds the reusable SampleIterator adapters that other layers
// (the LSM's per-chunk readers, the core series stream) compose instead of
// declaring their own Seek methods. Keeping every Seek(int64) bool
// declaration inside this package is a checked invariant: the seekcontract
// analyzer (internal/lint) rejects implementations elsewhere, which lets
// the build scope go vet's -stdmethods exemption to internal/chunkenc only.

// LazyIterator defers constructing an underlying iterator until the merge
// cursor actually needs a sample, and prunes on time bounds: a Seek past
// maxT exhausts the iterator without ever invoking open. It is the engine
// behind "chunks whose envelope bounds miss the query window are never
// decoded" (DESIGN.md §4.8).
type LazyIterator struct {
	open       func() SampleIterator
	minT, maxT int64
	inner      SampleIterator
	done       bool
}

// NewLazyIterator wraps open, which will be called at most once, the first
// time a sample inside [minT, maxT] is demanded. minT/maxT are the chunk's
// envelope time bounds (both inclusive).
func NewLazyIterator(minT, maxT int64, open func() SampleIterator) *LazyIterator {
	return &LazyIterator{open: open, minT: minT, maxT: maxT}
}

// Next implements SampleIterator.
func (it *LazyIterator) Next() bool {
	if it.done {
		return false
	}
	if it.inner == nil {
		it.inner = it.open()
	}
	if !it.inner.Next() {
		it.done = true
		return false
	}
	return true
}

// Seek implements SampleIterator. When the whole chunk lies before t the
// iterator exhausts without decoding anything.
func (it *LazyIterator) Seek(t int64) bool {
	if it.done {
		return false
	}
	if it.inner == nil && it.maxT < t {
		it.done = true // the whole chunk lies before t: never decode it
		return false
	}
	if it.inner == nil {
		it.inner = it.open()
	}
	if !it.inner.Seek(t) {
		it.done = true
		return false
	}
	return true
}

// At implements SampleIterator.
func (it *LazyIterator) At() (int64, float64) { return it.inner.At() }

// Err implements SampleIterator.
func (it *LazyIterator) Err() error {
	if it.inner == nil {
		return nil
	}
	return it.inner.Err()
}

// PeekedIterator re-emits the one sample its constructor consumed while
// probing a stream for emptiness, then delegates to the underlying
// iterator.
type PeekedIterator struct {
	it       SampleIterator
	t        int64
	v        float64
	buffered bool // t/v hold the probed sample not yet emitted
	pos      bool // t/v hold the emitted current sample
}

// NewPeekedIterator advances it once to probe for a sample. ok reports
// whether the stream was non-empty; on false the caller should consult
// it.Err() to distinguish exhaustion from failure. The returned iterator
// replays the probed sample on its first Next (or a Seek at or before its
// timestamp), so the wrapped stream is observationally untouched.
func NewPeekedIterator(it SampleIterator) (p *PeekedIterator, ok bool) {
	if !it.Next() {
		return nil, false
	}
	p = &PeekedIterator{it: it, buffered: true}
	p.t, p.v = it.At()
	return p, true
}

// Next implements SampleIterator.
func (p *PeekedIterator) Next() bool {
	if p.buffered {
		p.buffered, p.pos = false, true
		return true
	}
	if !p.it.Next() {
		return false
	}
	p.t, p.v = p.it.At()
	p.pos = true
	return true
}

// Seek implements SampleIterator.
func (p *PeekedIterator) Seek(t int64) bool {
	if (p.buffered || p.pos) && p.t >= t {
		p.buffered, p.pos = false, true
		return true
	}
	p.buffered = false
	if !p.it.Seek(t) {
		return false
	}
	p.t, p.v = p.it.At()
	p.pos = true
	return true
}

// At implements SampleIterator.
func (p *PeekedIterator) At() (int64, float64) { return p.t, p.v }

// Err implements SampleIterator.
func (p *PeekedIterator) Err() error { return p.it.Err() }
