package remote

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/lsm"
)

// newOpsServer builds a full operational stack: an instrumented DB with a
// WAL (so every subsystem registers its series) behind NewOpsHandler.
func newOpsServer(t *testing.T) (*httptest.Server, *core.DB) {
	t.Helper()
	db, err := core.Open(core.Options{
		Dir:               t.TempDir(),
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
		ChunkSamples:      8,
		SlotsPerRegion:    256,
		MemTableSize:      8 << 10,
		L0PartitionLength: 1000,
		L2PartitionLength: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	handler := NewOpsHandler(NewServer(&TimeUnionBackend{DB: db}), OpsConfig{
		Metrics:      db.Metrics(),
		Journal:      db.Journal(),
		Tree:         db.TreeSnapshot,
		SlowQueryLog: time.Nanosecond, // trace and log every query
		Logf:         t.Logf,
	})
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, db
}

func TestHealthz(t *testing.T) {
	srv, _ := newOpsServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %s, want 200", resp.Status)
	}
}

// expositionSample matches one Prometheus text-format sample line.
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)

// TestMetricsEndpoint drives real traffic through the full stack and then
// checks /metrics: valid exposition grammar, >= 30 distinct series covering
// head, WAL, LSM, both storage tiers, and the cache, and >= 4 latency
// histograms (ISSUE acceptance criteria).
func TestMetricsEndpoint(t *testing.T) {
	srv, db := newOpsServer(t)
	client := NewClient(srv.URL)

	// Enough data to flush through the head into the LSM.
	resp, err := client.Write(WriteRequest{Timeseries: []WriteSeries{{
		Labels:  map[string]string{"metric": "cpu", "host": "a"},
		Samples: []Sample{{T: 1, V: 1}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	var fast []FastWriteEntry
	for ts := int64(2); ts < 3000; ts += 10 {
		fast = append(fast, FastWriteEntry{ID: resp.IDs[0], Samples: []Sample{{T: ts, V: float64(ts)}}})
	}
	if err := client.WriteFast(FastWriteRequest{Entries: fast}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(QueryRequest{MinT: 0, MaxT: 3000,
		Matchers: []MatcherSpec{{Type: "=", Name: "metric", Value: "cpu"}}}); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %s, want 200", mresp.Status)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}

	series := map[string]bool{}     // distinct name{labels} keys, buckets folded
	histograms := map[string]bool{} // base names with TYPE histogram
	sc := bufio.NewScanner(mresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" && f[3] == "histogram" {
				histograms[f[2]] = true
			}
			continue
		}
		if !expositionSample.MatchString(line) {
			t.Fatalf("line violates exposition grammar: %q", line)
		}
		key := line[:strings.LastIndex(line, " ")]
		name := key
		if i := strings.IndexAny(key, "{ "); i >= 0 {
			name = key[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		series[key] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(series) < 30 {
		t.Errorf("distinct series = %d, want >= 30", len(series))
	}
	if len(histograms) < 4 {
		t.Errorf("histograms = %d (%v), want >= 4", len(histograms), histograms)
	}
	wantCovered := []string{
		"timeunion_head_", "timeunion_wal_", "timeunion_lsm_",
		"timeunion_cache_", "timeunion_db_", "timeunion_http_",
		"timeunion_journal_", "timeunion_build_info",
		"timeunion_process_uptime_seconds",
		`tier="fast"`, `tier="slow"`,
	}
	for _, want := range wantCovered {
		found := false
		for key := range series {
			if strings.Contains(key, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series matching %q in /metrics", want)
		}
	}
}

// fillThroughFlush pushes enough data through the HTTP API that the
// memtable flushes into the LSM, journaling the background pipeline.
func fillThroughFlush(t *testing.T, srv *httptest.Server, db *core.DB) uint64 {
	t.Helper()
	client := NewClient(srv.URL)
	resp, err := client.Write(WriteRequest{Timeseries: []WriteSeries{{
		Labels:  map[string]string{"metric": "cpu", "host": "a"},
		Samples: []Sample{{T: 1, V: 1}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	var fast []FastWriteEntry
	for ts := int64(2); ts < 3000; ts += 10 {
		fast = append(fast, FastWriteEntry{ID: resp.IDs[0], Samples: []Sample{{T: ts, V: float64(ts)}}})
	}
	if err := client.WriteFast(FastWriteRequest{Entries: fast}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	return resp.IDs[0]
}

// TestEventsEndpoint checks the NDJSON grammar and filters of
// /api/v1/events after driving real background work through the stack:
// every line is a standalone JSON object with the required keys, sequence
// numbers ascend gaplessly, and the kind/since_seq query parameters
// subset the stream.
func TestEventsEndpoint(t *testing.T) {
	srv, db := newOpsServer(t)
	fillThroughFlush(t, srv, db)

	resp, err := http.Get(srv.URL + "/api/v1/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/events status = %s, want 200", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q, want application/x-ndjson", ct)
	}

	type eventLine struct {
		Seq        uint64         `json:"seq"`
		Kind       string         `json:"kind"`
		StartMs    int64          `json:"start_ms"`
		DurationUs int64          `json:"duration_us"`
		Fields     map[string]any `json:"fields"`
	}
	var events []eventLine
	kinds := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			t.Fatal("NDJSON stream contains an empty line")
		}
		var e eventLine
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("line is not valid JSON: %q: %v", line, err)
		}
		if e.Seq == 0 || e.Kind == "" || e.StartMs == 0 {
			t.Fatalf("event missing required keys: %q", line)
		}
		events = append(events, e)
		kinds[e.Kind] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events journaled by the write+flush workload")
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", events[i-1].Seq, events[i].Seq)
		}
	}
	for _, want := range []string{"core.open", "lsm.flush", "lsm.manifest_commit"} {
		if !kinds[want] {
			t.Errorf("kind %q missing from journal (have %v)", want, kinds)
		}
	}

	// Kind filter subsets to exactly the requested kind.
	fresp, err := http.Get(srv.URL + "/api/v1/events?kind=lsm.flush")
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	fsc := bufio.NewScanner(fresp.Body)
	flushes := 0
	for fsc.Scan() {
		var e eventLine
		if err := json.Unmarshal(fsc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind != "lsm.flush" {
			t.Fatalf("kind filter leaked %q", e.Kind)
		}
		if e.Fields["entries"] == nil || e.Fields["tables_out"] == nil {
			t.Errorf("lsm.flush event missing per-kind fields: %v", e.Fields)
		}
		flushes++
	}
	if flushes == 0 {
		t.Fatal("kind=lsm.flush returned nothing after a flush")
	}

	// since_seq is an exclusive cursor: everything after the penultimate
	// event is exactly one event.
	last := events[len(events)-1].Seq
	sresp, err := http.Get(srv.URL + fmt.Sprintf("/api/v1/events?since_seq=%d", last-1))
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	ssc := bufio.NewScanner(sresp.Body)
	var tail []eventLine
	for ssc.Scan() {
		var e eventLine
		if err := json.Unmarshal(ssc.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		tail = append(tail, e)
	}
	if len(tail) != 1 || tail[0].Seq != last {
		t.Fatalf("since_seq=%d returned %d events (want exactly seq %d)", last-1, len(tail), last)
	}

	// Grammar guards: bad cursor is a 400, non-GET a 405.
	if resp, err := http.Get(srv.URL + "/api/v1/events?since_seq=nope"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad since_seq status = %s, want 400", resp.Status)
		}
	}
	if resp, err := http.Post(srv.URL+"/api/v1/events", "text/plain", nil); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST status = %s, want 405", resp.Status)
		}
	}
}

// TestLSMTreeEndpoint checks /api/v1/lsmtree renders the live inventory:
// three levels on the right tiers, the flushed tables visible with their
// keys and sizes, and the manifest versions that anchor the view.
func TestLSMTreeEndpoint(t *testing.T) {
	srv, db := newOpsServer(t)
	fillThroughFlush(t, srv, db)

	resp, err := http.Get(srv.URL + "/api/v1/lsmtree")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/api/v1/lsmtree status = %s, want 200", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q, want application/json", ct)
	}
	var snap lsm.TreeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Levels) != 3 {
		t.Fatalf("levels = %d, want 3", len(snap.Levels))
	}
	for i, want := range []string{"fast", "fast", "slow"} {
		if snap.Levels[i].Level != i || snap.Levels[i].Tier != want {
			t.Errorf("level %d: got level=%d tier=%q, want tier=%q", i, snap.Levels[i].Level, snap.Levels[i].Tier, want)
		}
	}
	totalTables := 0
	for _, lvl := range snap.Levels {
		totalTables += lvl.Tables
		for _, p := range lvl.Partitions {
			if len(p.Tables) == 0 {
				t.Errorf("L%d partition [%d,%d) lists no tables", lvl.Level, p.MinT, p.MaxT)
			}
			for _, tb := range p.Tables {
				if tb.Key == "" || tb.Size <= 0 {
					t.Errorf("table with empty key or size: %+v", tb)
				}
			}
		}
	}
	if totalTables == 0 {
		t.Fatal("no tables in snapshot after a flush")
	}
	if snap.ManifestFast == 0 {
		t.Error("manifest_fast version = 0 after a flush commit")
	}

	if resp, err := http.Post(srv.URL+"/api/v1/lsmtree", "text/plain", nil); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST status = %s, want 405", resp.Status)
		}
	}
}

// TestSlowQueryLogCoversStream checks the SlowQueryLog wrapper traces
// /api/v1/query_stream requests too (it previously only matched
// /api/v1/query).
func TestSlowQueryLogCoversStream(t *testing.T) {
	srv, db := newOpsServer(t)
	fillThroughFlush(t, srv, db)

	var mu sync.Mutex
	var logged []string
	logSrv := httptest.NewServer(NewOpsHandler(NewServer(&TimeUnionBackend{DB: db}), OpsConfig{
		Metrics:      db.Metrics(),
		SlowQueryLog: time.Nanosecond, // every request exceeds the threshold
		Logf: func(format string, args ...any) {
			mu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}))
	defer logSrv.Close()

	client := NewClient(logSrv.URL)
	n := 0
	err := client.QueryStream(QueryRequest{MinT: 0, MaxT: 3000,
		Matchers: []MatcherSpec{{Type: "=", Name: "metric", Value: "cpu"}}},
		func(QuerySeries) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("query_stream matched no series")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logged) == 0 {
		t.Fatal("slow-query log did not fire for /api/v1/query_stream")
	}
	if !strings.Contains(logged[0], "/api/v1/query_stream") {
		t.Errorf("slow-query dump does not name the stream endpoint: %q", logged[0])
	}
}

// TestPprofGating checks the profiling endpoints are only mounted when
// Debug is set.
func TestPprofGating(t *testing.T) {
	srv, db := newOpsServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Without Debug the mux falls through to the data API, which rejects
	// non-POST requests — anything but 200 proves pprof is not mounted.
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("pprof reachable without Debug")
	}

	dbgSrv := httptest.NewServer(NewOpsHandler(NewServer(&TimeUnionBackend{DB: db}), OpsConfig{
		Metrics: db.Metrics(),
		Debug:   true,
	}))
	defer dbgSrv.Close()
	resp, err = http.Get(dbgSrv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with Debug: status = %s, want 200", resp.Status)
	}
}
