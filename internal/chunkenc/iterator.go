package chunkenc

// SampleIterator is the streaming read contract of the query path (DESIGN.md
// §4.8). Every layer — chunk decoders, the LSM's lazy per-chunk readers, the
// head overlay, and the k-way merge — speaks this interface, so a query
// decodes tuples only when its cursor actually reaches them.
//
// Usage: call Next (or Seek) to position the iterator; while it returns
// true, At returns the current sample. After the first false, check Err:
// nil means the stream is exhausted, non-nil means decoding failed and the
// samples returned so far must be considered incomplete.
//
// Seek advances to the first sample with timestamp >= t and returns whether
// such a sample exists. Seek never moves backwards: if the iterator is
// already positioned at a sample with timestamp >= t it stays put and
// returns true. After a false from either Next or Seek the iterator is
// exhausted and every further call returns false.
type SampleIterator interface {
	// Next advances to the next sample.
	Next() bool
	// Seek advances to the first sample with timestamp >= t.
	Seek(t int64) bool
	// At returns the current sample. Only valid after a true Next/Seek.
	At() (int64, float64)
	// Err returns the first decoding error, or nil on clean exhaustion.
	Err() error
}

// Seek implements SampleIterator for XORIterator by linear forward decode
// (the chunk is delta-compressed, so there is no in-chunk random access;
// skipping whole chunks is the caller's job via chunk time bounds).
func (it *XORIterator) Seek(t int64) bool {
	if it.err != nil || it.done {
		return false
	}
	for it.numRead == 0 || it.t < t {
		if !it.Next() {
			return false
		}
	}
	return true
}

// emptyIterator yields nothing, optionally carrying an error.
type emptyIterator struct{ err error }

func (emptyIterator) Next() bool           { return false }
func (emptyIterator) Seek(int64) bool      { return false }
func (emptyIterator) At() (int64, float64) { return 0, 0 }
func (e emptyIterator) Err() error         { return e.err }

// Empty returns an iterator over no samples.
func Empty() SampleIterator { return emptyIterator{} }

// ErrIterator returns an exhausted iterator surfacing err.
func ErrIterator(err error) SampleIterator { return emptyIterator{err: err} }

// SliceIterator iterates a sorted, deduplicated sample slice (the adapter
// that lets materialized runs participate in iterator pipelines).
type SliceIterator struct {
	s []Sample
	i int
}

// NewSliceIterator returns an iterator over s, which must be sorted by
// timestamp. The slice is not copied.
func NewSliceIterator(s []Sample) *SliceIterator { return &SliceIterator{s: s, i: -1} }

// Next implements SampleIterator.
func (it *SliceIterator) Next() bool {
	if it.i+1 >= len(it.s) {
		it.i = len(it.s)
		return false
	}
	it.i++
	return true
}

// Seek implements SampleIterator via binary search over the remainder
// (hand-rolled rather than sort.Search: the closure would allocate per
// call, and this runs inside the merge's hot loop).
func (it *SliceIterator) Seek(t int64) bool {
	if it.i >= len(it.s) {
		return false
	}
	if it.i >= 0 && it.s[it.i].T >= t {
		return true // never move backwards
	}
	lo, hi := it.i+1, len(it.s)
	if lo < 0 {
		lo = 0
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.s[mid].T < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.i = lo
	return it.i < len(it.s)
}

// At implements SampleIterator.
func (it *SliceIterator) At() (int64, float64) { return it.s[it.i].T, it.s[it.i].V }

// Err implements SampleIterator.
func (it *SliceIterator) Err() error { return nil }

// GroupSlotIterator streams one member's non-NULL samples out of a group
// tuple by walking the shared timestamp column and the member's value
// column in lockstep, skipping NULL slots. A value column shorter than the
// time column is treated as NULL-padded (a member that joined mid-tuple).
type GroupSlotIterator struct {
	tit  GroupTimeIterator // by value: one allocation for the whole stack
	vit  GroupValueIterator
	t    int64
	v    float64
	done bool // a Next/Seek returned false; the iterator stays exhausted
	err  error
}

// NewGroupSlotIterator returns an iterator over one member's samples given
// the tuple's encoded time column and the member's encoded value column.
func NewGroupSlotIterator(timePayload, valPayload []byte) *GroupSlotIterator {
	it := &GroupSlotIterator{}
	it.tit.reset(timePayload)
	it.vit.reset(valPayload)
	return it
}

// Next implements SampleIterator.
func (it *GroupSlotIterator) Next() bool {
	if it.err != nil || it.done {
		return false
	}
	for {
		if !it.tit.Next() {
			it.err = it.tit.Err()
			it.done = true
			return false
		}
		if !it.vit.Next() {
			if err := it.vit.Err(); err != nil {
				it.err = err
				it.done = true
				return false
			}
			continue // short column: remaining slots are NULL
		}
		v, null := it.vit.At()
		if null {
			continue
		}
		it.t, it.v = it.tit.At(), v
		return true
	}
}

// Seek implements SampleIterator by forward decode (the columns are
// delta/XOR streams without random access).
func (it *GroupSlotIterator) Seek(t int64) bool {
	if it.err != nil || it.done {
		return false
	}
	for it.tit.numRead == 0 || it.t < t {
		if !it.Next() {
			return false
		}
	}
	return true
}

// At implements SampleIterator.
func (it *GroupSlotIterator) At() (int64, float64) { return it.t, it.v }

// Err implements SampleIterator.
func (it *GroupSlotIterator) Err() error { return it.err }

// RankedIterator pairs a sample source with its recency rank for merging.
// When two sources produce the same timestamp the sample from the higher
// rank wins (paper §3.3: "keep the data sample from the newest SSTable").
type RankedIterator struct {
	Iter SampleIterator
	Rank uint64
}

// mergeSource is one live heap entry of a MergeIterator.
type mergeSource struct {
	it   SampleIterator
	rank uint64
	t    int64
	v    float64
}

// MergeIterator is a k-way deduplicating merge over ranked sources: output
// is sorted by timestamp, and on duplicate timestamps only the sample from
// the highest-rank source is emitted; the duplicates from lower ranks are
// consumed silently. Sources are advanced lazily — a source whose next
// sample lies beyond the current cursor is never decoded past it.
type MergeIterator struct {
	h        []*mergeSource // min-heap by (t asc, rank desc)
	srcs     []mergeSource  // every source, for releaseSources
	inited   bool
	lastT    int64
	haveLast bool
	err      error

	// Inline storage for the common few-source case (one or two overlapping
	// chunks plus the head overlay), so small merges cost one allocation —
	// zero when the MergeIterator itself is embedded in a pooled owner.
	s0 [4]mergeSource
	p0 [4]*mergeSource
	// Spilled storage from a previous reset, kept for reuse across queries
	// when the merge is wider than the inline arrays.
	spill  []mergeSource
	hspill []*mergeSource
}

// NewMergeIterator merges the given sources. Sources are not advanced until
// the first Next/Seek, so constructing the iterator performs no decoding.
func NewMergeIterator(sources []RankedIterator) *MergeIterator {
	m := &MergeIterator{}
	m.reset(sources)
	return m
}

// reset re-initializes m over sources, reusing the inline arrays and any
// previously spilled storage, so pooled owners (QueryIterator) build merges
// without allocating in steady state.
func (m *MergeIterator) reset(sources []RankedIterator) {
	m.inited, m.haveLast = false, false
	m.lastT = 0
	m.err = nil
	n := 0
	for _, s := range sources {
		if s.Iter != nil {
			n++
		}
	}
	backing := m.s0[:0]
	h := m.p0[:0]
	if n > len(m.s0) {
		if cap(m.spill) >= n {
			backing, h = m.spill[:0], m.hspill[:0]
		} else {
			backing = make([]mergeSource, 0, n)
			h = make([]*mergeSource, 0, n)
			m.spill, m.hspill = backing, h
		}
	}
	for _, s := range sources {
		if s.Iter == nil {
			continue
		}
		backing = append(backing, mergeSource{it: s.Iter, rank: s.Rank})
	}
	for i := range backing {
		h = append(h, &backing[i])
	}
	m.srcs = backing
	m.h = h
}

// releaseSources releases every pooled source exactly once (exhausted
// sources popped from the heap are still in srcs) and drops all source
// references. Only owners that were handed their sources (QueryIterator)
// may call it; afterwards the merge must not be used until the next reset.
func (m *MergeIterator) releaseSources() {
	for i := range m.srcs {
		if it := m.srcs[i].it; it != nil {
			ReleaseIterator(it)
			m.srcs[i].it = nil
		}
	}
	m.h = nil
	m.srcs = nil
}

func (m *MergeIterator) less(i, j int) bool {
	if m.h[i].t != m.h[j].t {
		return m.h[i].t < m.h[j].t
	}
	return m.h[i].rank > m.h[j].rank
}

func (m *MergeIterator) siftDown(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(m.h) && m.less(l, smallest) {
			smallest = l
		}
		if r < len(m.h) && m.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		m.h[i], m.h[smallest] = m.h[smallest], m.h[i]
		i = smallest
	}
}

func (m *MergeIterator) heapify() {
	for i := len(m.h)/2 - 1; i >= 0; i-- {
		m.siftDown(i)
	}
}

// pop removes heap entry i (used when a source is exhausted).
func (m *MergeIterator) pop(i int) {
	last := len(m.h) - 1
	m.h[i] = m.h[last]
	m.h = m.h[:last]
	if i < len(m.h) {
		m.siftDown(i)
	}
}

// advanceTop moves the top source one sample forward (or past t when seek
// is true), removing it when exhausted. Returns false on source error.
func (m *MergeIterator) advanceTop(seek bool, t int64) bool {
	top := m.h[0]
	var ok bool
	if seek {
		ok = top.it.Seek(t)
	} else {
		ok = top.it.Next()
	}
	if !ok {
		if err := top.it.Err(); err != nil {
			m.err = err
			return false
		}
		m.pop(0)
		return true
	}
	top.t, top.v = top.it.At()
	m.siftDown(0)
	return true
}

// init positions every source at its first sample (at or after *seekTo when
// non-nil) and builds the heap.
func (m *MergeIterator) init(seekTo *int64) bool {
	live := m.h[:0]
	for _, s := range m.h {
		var ok bool
		if seekTo != nil {
			ok = s.it.Seek(*seekTo)
		} else {
			ok = s.it.Next()
		}
		if !ok {
			if err := s.it.Err(); err != nil {
				m.err = err
				return false
			}
			continue
		}
		s.t, s.v = s.it.At()
		live = append(live, s)
	}
	m.h = live
	m.heapify()
	m.inited = true
	return true
}

// settle skips heap tops that duplicate the last emitted timestamp, then
// records the new cursor position. Returns whether a sample is available.
func (m *MergeIterator) settle() bool {
	for len(m.h) > 0 && m.haveLast && m.h[0].t == m.lastT {
		if !m.advanceTop(true, m.lastT+1) {
			return false
		}
	}
	if len(m.h) == 0 {
		return false
	}
	m.lastT = m.h[0].t
	m.haveLast = true
	return true
}

// Next implements SampleIterator.
func (m *MergeIterator) Next() bool {
	if m.err != nil {
		return false
	}
	if !m.inited {
		if !m.init(nil) {
			return false
		}
		return m.settle()
	}
	if len(m.h) == 0 {
		return false
	}
	if !m.advanceTop(false, 0) {
		return false
	}
	return m.settle()
}

// Seek implements SampleIterator. Only sources whose cursor lies before t
// are advanced, each via its own Seek — so a lazy source that can prove it
// has no samples >= t is dropped without ever decoding.
func (m *MergeIterator) Seek(t int64) bool {
	if m.err != nil {
		return false
	}
	if !m.inited {
		if !m.init(&t) {
			return false
		}
		return m.settle()
	}
	if m.haveLast && m.lastT >= t {
		return len(m.h) > 0 // already positioned at or past t
	}
	live := m.h[:0]
	for _, s := range m.h {
		if s.t < t {
			if !s.it.Seek(t) {
				if err := s.it.Err(); err != nil {
					m.err = err
					return false
				}
				continue
			}
			s.t, s.v = s.it.At()
		}
		// live aliases m.h at length 0 and receives at most len(m.h)
		// elements, so this append can never grow the backing array.
		//lint:ignore allochot no-grow filter append into m.h's own backing
		live = append(live, s)
	}
	m.h = live
	m.heapify()
	return m.settle()
}

// At implements SampleIterator.
func (m *MergeIterator) At() (int64, float64) {
	top := m.h[0]
	return top.t, top.v
}

// Err implements SampleIterator.
func (m *MergeIterator) Err() error { return m.err }

// rangeIterator clips an iterator to [mint, maxt]: the first advance seeks
// to mint (skipping whole chunks via the underlying Seek), and the stream
// ends at the first sample past maxt without consuming beyond it.
type rangeIterator struct {
	it         SampleIterator
	mint, maxt int64
	started    bool
	done       bool
}

// NewRangeLimit returns it clipped to [mint, maxt] (both inclusive).
func NewRangeLimit(it SampleIterator, mint, maxt int64) SampleIterator {
	return &rangeIterator{it: it, mint: mint, maxt: maxt}
}

func (r *rangeIterator) Next() bool {
	if r.done {
		return false
	}
	if !r.started {
		r.started = true
		if !r.it.Seek(r.mint) {
			r.done = true
			return false
		}
	} else if !r.it.Next() {
		r.done = true
		return false
	}
	if t, _ := r.it.At(); t > r.maxt {
		r.done = true
		return false
	}
	return true
}

func (r *rangeIterator) Seek(t int64) bool {
	if r.done {
		return false
	}
	if t < r.mint {
		t = r.mint
	}
	r.started = true
	if !r.it.Seek(t) {
		r.done = true
		return false
	}
	if tt, _ := r.it.At(); tt > r.maxt {
		r.done = true
		return false
	}
	return true
}

func (r *rangeIterator) At() (int64, float64) { return r.it.At() }

func (r *rangeIterator) Err() error { return r.it.Err() }
