// Package chunkenc is the allochot fixture home package: allocation inside
// the per-sample Next/Seek/At bodies is flagged; the same allocation hoisted
// into a named helper is not.
package chunkenc

// Hot allocates in every hot-path body.
type Hot struct {
	buf     []int64
	scratch []byte
	i       int
}

func (h *Hot) Next() bool {
	h.scratch = make([]byte, 8) // want "make allocates inside Hot.Next"
	h.buf = append(h.buf, 1)    // want "append inside Hot.Next"
	p := new(int)               // want "new allocates inside Hot.Next"
	_ = p
	f := func() int { return h.i } // want "function literal in Hot.Next"
	_ = f()
	h.i++
	return h.i < len(h.buf)
}

func (h *Hot) Seek(t int64) bool {
	h.buf = append(h.buf[:0], t) // want "append inside Hot.Seek"
	return false
}

func (h *Hot) At() (int64, float64) {
	tmp := make([]int64, 1) // want "make allocates inside Hot.At"
	tmp[0] = h.buf[h.i]
	return tmp[0], 0
}

func (h *Hot) Err() error { return nil }

// Cold keeps its hot bodies allocation-free by delegating to a helper:
// no findings.
type Cold struct {
	buf     []int64
	decoded bool
	i       int
}

func (c *Cold) decode() {
	c.buf = append(c.buf[:0], 1, 2, 3)
	c.decoded = true
}

func (c *Cold) Next() bool {
	if !c.decoded {
		c.decode()
	}
	c.i++
	return c.i < len(c.buf)
}

func (c *Cold) Seek(t int64) bool {
	if !c.decoded {
		c.decode()
	}
	for c.i < len(c.buf) && c.buf[c.i] < t {
		c.i++
	}
	return c.i < len(c.buf)
}

func (c *Cold) At() (int64, float64) { return c.buf[c.i], 0 }
func (c *Cold) Err() error           { return nil }

// Next is a free function, not an iterator method: no findings.
func Next() []byte { return make([]byte, 1) }
