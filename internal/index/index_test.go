package index

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"timeunion/internal/labels"
)

func newTestIndex(t *testing.T) *Index {
	t.Helper()
	ix, err := New(Options{SlotsPerRegion: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

func TestAddAndPostings(t *testing.T) {
	ix := newTestIndex(t)
	if err := ix.Add(1, labels.FromStrings("metric", "cpu", "host", "h1")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(2, labels.FromStrings("metric", "cpu", "host", "h2")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(3, labels.FromStrings("metric", "mem", "host", "h1")); err != nil {
		t.Fatal(err)
	}
	if got := ix.Postings("metric", "cpu"); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("postings(metric=cpu) = %v", got)
	}
	if got := ix.Postings("host", "h1"); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("postings(host=h1) = %v", got)
	}
	if got := ix.Postings("host", "h9"); got != nil {
		t.Fatalf("postings(host=h9) = %v", got)
	}
}

func TestAddIdempotent(t *testing.T) {
	ix := newTestIndex(t)
	ls := labels.FromStrings("metric", "cpu")
	for i := 0; i < 3; i++ {
		if err := ix.Add(7, ls); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.Postings("metric", "cpu"); len(got) != 1 {
		t.Fatalf("postings = %v", got)
	}
	if s := ix.Stats(); s.NumTagPairs != 1 || s.NumIDs != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestSelectEqual(t *testing.T) {
	ix := newTestIndex(t)
	for i := uint64(1); i <= 10; i++ {
		metric := "cpu"
		if i%2 == 0 {
			metric = "mem"
		}
		if err := ix.Add(i, labels.FromStrings("metric", metric, "host", fmt.Sprintf("h%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.Select(labels.MustEqual("metric", "cpu"), labels.MustEqual("host", "h1"))
	if err != nil {
		t.Fatal(err)
	}
	// cpu ids: 1,3,5,7,9 ; host h1: 1,4,7,10 → 1,7
	if len(got) != 2 || got[0] != 1 || got[1] != 7 {
		t.Fatalf("select = %v", got)
	}
}

func TestSelectRegex(t *testing.T) {
	ix := newTestIndex(t)
	mustAdd := func(id uint64, m string) {
		if err := ix.Add(id, labels.FromStrings("metric", m)); err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(1, "disk")
	mustAdd(2, "diskio")
	mustAdd(3, "cpu")
	mustAdd(4, "disk_total")
	got, err := ix.Select(labels.MustMatcher(labels.MatchRegexp, "metric", "disk.*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 4 {
		t.Fatalf("regex select = %v", got)
	}
}

func TestSelectNegative(t *testing.T) {
	ix := newTestIndex(t)
	for i := uint64(1); i <= 6; i++ {
		m := "cpu"
		if i > 4 {
			m = "mem"
		}
		if err := ix.Add(i, labels.FromStrings("metric", m, "host", fmt.Sprintf("h%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ix.Select(
		labels.MustEqual("metric", "cpu"),
		labels.MustMatcher(labels.MatchNotEqual, "host", "h2"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("negative select = %v", got)
	}

	// Only negative matchers: subtract from the universe.
	got, err = ix.Select(labels.MustMatcher(labels.MatchNotRegexp, "metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("all-negative select = %v", got)
	}
}

func TestSelectNoMatchers(t *testing.T) {
	ix := newTestIndex(t)
	if _, err := ix.Select(); err == nil {
		t.Fatal("empty select accepted")
	}
}

func TestSelectEmptyResult(t *testing.T) {
	ix := newTestIndex(t)
	if err := ix.Add(1, labels.FromStrings("metric", "cpu")); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Select(labels.MustEqual("metric", "nope"))
	if err != nil || got != nil {
		t.Fatalf("select missing = %v, %v", got, err)
	}
}

func TestLabelValues(t *testing.T) {
	ix := newTestIndex(t)
	for i := 0; i < 5; i++ {
		if err := ix.Add(uint64(i+1), labels.FromStrings("region", fmt.Sprintf("r%d", i%3))); err != nil {
			t.Fatal(err)
		}
	}
	vals := ix.LabelValues("region")
	if len(vals) != 3 || !sort.StringsAreSorted(vals) {
		t.Fatalf("LabelValues = %v", vals)
	}
	if vals := ix.LabelValues("missing"); vals != nil {
		t.Fatalf("LabelValues(missing) = %v", vals)
	}
}

func TestRemove(t *testing.T) {
	ix := newTestIndex(t)
	ls := labels.FromStrings("metric", "cpu", "host", "h1")
	if err := ix.Add(1, ls); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(2, labels.FromStrings("metric", "cpu", "host", "h2")); err != nil {
		t.Fatal(err)
	}
	ix.Remove(1, ls)
	if got := ix.Postings("metric", "cpu"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("postings after remove = %v", got)
	}
	if got := ix.Postings("host", "h1"); len(got) != 0 {
		t.Fatalf("postings(host=h1) after remove = %v", got)
	}
	// h1 must disappear from label values (empty postings are skipped).
	for _, v := range ix.LabelValues("host") {
		if v == "h1" {
			t.Fatal("h1 still visible after remove")
		}
	}
	if s := ix.Stats(); s.NumIDs != 1 {
		t.Fatalf("NumIDs after remove = %d", s.NumIDs)
	}
	// Removing again is harmless.
	ix.Remove(1, ls)
}

func TestGroupIDSpace(t *testing.T) {
	gid := GroupIDFlag | 5
	if !IsGroupID(gid) || IsGroupID(5) {
		t.Fatal("group flag wrong")
	}
	ix := newTestIndex(t)
	// Group indexed under shared tags; member series under unique tags with
	// the same group ID as postings ID (paper §3.1).
	if err := ix.Add(gid, labels.FromStrings("region", "1", "device", "1")); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add(gid, labels.FromStrings("metric", "cpu")); err != nil {
		t.Fatal(err)
	}
	got, err := ix.Select(labels.MustEqual("region", "1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != gid {
		t.Fatalf("group select = %v", got)
	}
	// Grouping shrinks postings: one entry regardless of member count.
	if s := ix.Stats(); s.NumTagPairs != 3 {
		t.Fatalf("NumTagPairs = %d", s.NumTagPairs)
	}
}

func TestSelectAgainstBruteForce(t *testing.T) {
	ix := newTestIndex(t)
	rnd := rand.New(rand.NewSource(11))
	type entry struct {
		id uint64
		ls labels.Labels
	}
	var entries []entry
	for i := uint64(1); i <= 400; i++ {
		ls := labels.FromStrings(
			"metric", fmt.Sprintf("m%d", rnd.Intn(8)),
			"host", fmt.Sprintf("h%d", rnd.Intn(20)),
			"dc", fmt.Sprintf("dc%d", rnd.Intn(3)),
		)
		entries = append(entries, entry{i, ls})
		if err := ix.Add(i, ls); err != nil {
			t.Fatal(err)
		}
	}
	queries := [][]*labels.Matcher{
		{labels.MustEqual("metric", "m3")},
		{labels.MustEqual("metric", "m1"), labels.MustEqual("dc", "dc0")},
		{labels.MustMatcher(labels.MatchRegexp, "host", "h1.*")},
		{labels.MustMatcher(labels.MatchRegexp, "metric", "m[0-3]"), labels.MustMatcher(labels.MatchNotEqual, "dc", "dc1")},
		{labels.MustMatcher(labels.MatchNotRegexp, "metric", "m.*")},
	}
	for qi, ms := range queries {
		got, err := ix.Select(ms...)
		if err != nil {
			t.Fatal(err)
		}
		var want []uint64
		for _, e := range entries {
			match := true
			for _, m := range ms {
				if !m.Matches(e.ls.Get(m.Name)) {
					match = false
					break
				}
			}
			if match {
				want = append(want, e.id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d ids, want %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d: got[%d]=%d want %d", qi, i, got[i], want[i])
			}
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	ix := newTestIndex(t)
	for i := uint64(1); i <= 100; i++ {
		if err := ix.Add(i, labels.FromStrings("metric", "cpu", "host", fmt.Sprintf("h%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	s := ix.Stats()
	if s.NumIDs != 100 {
		t.Fatalf("NumIDs = %d", s.NumIDs)
	}
	if s.NumTagPairs != 200 {
		t.Fatalf("NumTagPairs = %d", s.NumTagPairs)
	}
	if s.NumTagKeys != 101 { // metric=cpu + 100 host values
		t.Fatalf("NumTagKeys = %d", s.NumTagKeys)
	}
	if s.PostingBytes != 1600 {
		t.Fatalf("PostingBytes = %d", s.PostingBytes)
	}
	if s.SizeBytes() <= s.PostingBytes {
		t.Fatal("SizeBytes must include trie")
	}
}

func TestIndexConcurrentAccess(t *testing.T) {
	ix := newTestIndex(t)
	done := make(chan error, 6)
	for g := 0; g < 3; g++ {
		go func(g int) {
			for i := 0; i < 300; i++ {
				err := ix.Add(uint64(g*1000+i), labels.FromStrings(
					"metric", fmt.Sprintf("m%d", i%7),
					"writer", fmt.Sprintf("g%d", g)))
				if err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 3; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				if _, err := ix.Select(labels.MustEqual("metric", "m1")); err != nil {
					done <- err
					return
				}
				ix.LabelValues("metric")
			}
			done <- nil
		}()
	}
	for i := 0; i < 6; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if s := ix.Stats(); s.NumIDs != 900 {
		t.Fatalf("NumIDs = %d", s.NumIDs)
	}
}
