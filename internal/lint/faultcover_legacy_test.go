package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"testing"
)

// legacyRunFaultCover is the pre-call-graph faultcover verbatim (modulo the
// isStoreMethod signature, which now takes the *types.Info directly): a
// per-package Ident-use closure. It is kept only as the oracle for
// TestFaultCoverMatchesLegacy, which pins that the port onto the shared
// call graph produces byte-identical findings.
func legacyRunFaultCover(pass *Pass) {
	if !pass.InScope("internal/lsm", "internal/wal") {
		return
	}

	type callSite struct {
		pos    token.Pos
		method string
	}
	edges := map[*types.Func][]*types.Func{}
	storeCalls := map[*types.Func][]callSite{}
	var declared []*types.Func

	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		owner, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if owner == nil || fd.Body == nil {
			return false
		}
		declared = append(declared, owner)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Ident:
				if fn, ok := pass.Info.Uses[e].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					edges[owner] = append(edges[owner], fn)
				}
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok && isStoreMethod(pass.Info, sel) {
					storeCalls[owner] = append(storeCalls[owner], callSite{pos: e.Pos(), method: sel.Sel.Name})
				}
			}
			return true
		})
		return false
	})

	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for _, fn := range declared {
		name := fn.Name()
		if ast.IsExported(name) || name == "init" || name == "main" {
			reachable[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, next := range edges[fn] {
			if !reachable[next] {
				reachable[next] = true
				queue = append(queue, next)
			}
		}
	}

	for _, fn := range declared {
		if reachable[fn] {
			continue
		}
		for _, site := range storeCalls[fn] {
			pass.Reportf(site.pos, "cloud.Store.%s call in %s is unreachable from the package API; no FaultStore schedule can exercise this I/O path", site.method, fn.Name())
		}
	}
}

// renderAll sorts every finding (suppressed included) into canonical
// strings so two runs compare positionally.
func renderAll(diags []Diagnostic) []string {
	var out []string
	for _, d := range diags {
		s := d.String()
		if d.Suppressed {
			s += " (suppressed)"
		}
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// TestFaultCoverMatchesLegacy runs the graph-based FaultCover and the
// legacy per-package closure over the same trees — the faultcover fixture
// and the real module — and requires identical diagnostics. This is the
// regression pin for the call-graph migration: if the shared graph's
// same-package EdgeCall+EdgeRef projection ever diverges from the old
// Ident-use closure, this diff catches it.
func TestFaultCoverMatchesLegacy(t *testing.T) {
	legacy := &Analyzer{Name: FaultCover.Name, Doc: FaultCover.Doc, Run: legacyRunFaultCover}

	check := func(t *testing.T, root string, pkgs []*Package) {
		got := renderAll(Run(root, pkgs, []*Analyzer{FaultCover}))
		want := renderAll(Run(root, pkgs, []*Analyzer{legacy}))
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("graph-based faultcover diverges from legacy\ngraph:\n  %s\nlegacy:\n  %s",
				strings.Join(got, "\n  "), strings.Join(want, "\n  "))
		}
		if len(want) == 0 && root != "" && strings.Contains(root, "testdata") {
			t.Error("fixture produced no findings; the comparison is vacuous")
		}
	}

	t.Run("fixture", func(t *testing.T) {
		root, pkgs := loadFixture(t, "faultcover")
		check(t, root, pkgs)
	})

	t.Run("module", func(t *testing.T) {
		root, modPath, err := FindModule(".")
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := NewLoader(root, modPath).Load("./...")
		if err != nil {
			t.Fatal(err)
		}
		check(t, root, pkgs)
	})
}
