package chunkenc

import (
	"math"
	"sync"
	"sync/atomic"
)

// This file holds the pooled read-path objects (DESIGN.md §4.10). The
// ownership contract, in one paragraph: Get* hands the caller exclusive
// ownership of a pooled object; calling Release returns it (and any pooled
// resources it owns, recursively) and ends the caller's right to touch it
// or anything previously returned by its At. Pooled iterators handed to a
// QueryIterator as sources transfer ownership to it — the owner must not
// Release them individually. Nothing here is safe for concurrent use of a
// single object; the pools themselves are safe for concurrent Get/Put.

// Releasable is implemented by pooled iterators that must be returned to
// their pool when the owner is done. See ReleaseIterator.
type Releasable interface {
	// Release returns the object and its pooled resources. The object must
	// not be used afterwards.
	Release()
}

// ReleaseIterator releases it if it is pooled and is a no-op otherwise, so
// owners can release heterogeneous source lists without type juggling.
func ReleaseIterator(it SampleIterator) {
	if r, ok := it.(Releasable); ok {
		r.Release()
	}
}

// --- SampleBuffer: pooled decoded-column scratch ---

// SampleBuffer holds one chunk's decoded samples as parallel columns. The
// batch decoders (decode.go) fill it; pooled iterators walk it with plain
// index arithmetic instead of per-sample decoder state.
type SampleBuffer struct {
	T []int64
	V []float64
}

var sampleBufPool = sync.Pool{New: func() any {
	return &SampleBuffer{T: make([]int64, 0, 64), V: make([]float64, 0, 64)}
}}

// GetSampleBuffer returns an empty pooled buffer. Return it with
// PutSampleBuffer when the decoded samples are no longer referenced.
func GetSampleBuffer() *SampleBuffer {
	b := sampleBufPool.Get().(*SampleBuffer)
	b.T, b.V = b.T[:0], b.V[:0]
	return b
}

// PutSampleBuffer returns b to the pool. The caller must not retain b.T or
// b.V afterwards: the next GetSampleBuffer may hand them to another query.
func PutSampleBuffer(b *SampleBuffer) {
	if b == nil {
		return
	}
	if poolPoison.Load() {
		for i := range b.T {
			b.T[i] = PoisonT
		}
		for i := range b.V {
			b.V[i] = PoisonV()
		}
	}
	sampleBufPool.Put(b)
}

// poolPoison makes PutSampleBuffer overwrite returned columns with sentinel
// values, so a use-after-Release read surfaces as an impossible sample
// instead of silently correct-looking data. Test hook; off in production.
var poolPoison atomic.Bool

// SetPoolPoison toggles poisoning of released sample buffers. Tests that
// assert no cross-query bleed-through enable it for the duration of the run.
func SetPoolPoison(on bool) { poolPoison.Store(on) }

// PoisonT is the timestamp sentinel written by poisoning; no workload
// produces it (reserved far below any real epoch).
const PoisonT int64 = math.MinInt64 + 0x5EED

// poisonVBits is a quiet NaN with a recognizable payload.
const poisonVBits uint64 = 0x7ff8_dead_beef_f00d

// PoisonV returns the value sentinel written by poisoning. Compare with
// IsPoisonV (NaN != NaN, so == never matches).
func PoisonV() float64 { return math.Float64frombits(poisonVBits) }

// IsPoisonV reports whether v is the poison sentinel bit pattern.
func IsPoisonV(v float64) bool { return math.Float64bits(v) == poisonVBits }

// --- ChunkIterator: pooled per-chunk batch-decoding iterator ---

// ChunkIterator is the pooled replacement for the LazyIterator-over-
// XORIterator (or GroupSlotIterator) stack on the hot read path. It keeps
// the chunk's encoded payload and decodes the whole chunk in one batch pass
// into a pooled SampleBuffer the first time a sample inside [minT, maxT] is
// demanded; Next/Seek then walk the decoded columns, and Seek is a binary
// search instead of a linear forward decode. A Seek past maxT exhausts the
// iterator without ever decoding (same pruning as LazyIterator).
//
// The payload slices are only read during the single decode call, so a
// ChunkIterator may alias cache-resident or memory-mapped bytes as long as
// they stay immutable and alive until Release (see sstable zero-copy reads).
type ChunkIterator struct {
	payload         []byte // series mode; nil selects group-slot mode
	timeCol, valCol []byte // group-slot mode
	minT, maxT      int64
	onDecode        func(bytes int)
	buf             *SampleBuffer
	i               int
	decoded         bool
	done            bool
	err             error
}

var chunkIterPool = sync.Pool{New: func() any { return new(ChunkIterator) }}

func getChunkIterator(minT, maxT int64, onDecode func(int)) *ChunkIterator {
	it := chunkIterPool.Get().(*ChunkIterator)
	*it = ChunkIterator{minT: minT, maxT: maxT, onDecode: onDecode, i: -1}
	return it
}

// GetSeriesChunkIterator returns a pooled iterator over an EncXOR payload
// with envelope time bounds [minT, maxT]. onDecode (optional) observes the
// payload size at the moment the chunk is actually decoded. The caller owns
// the iterator and must Release it (directly or via an owning merge).
func GetSeriesChunkIterator(payload []byte, minT, maxT int64, onDecode func(int)) *ChunkIterator {
	it := getChunkIterator(minT, maxT, onDecode)
	it.payload = payload
	return it
}

// GetGroupSlotChunkIterator returns a pooled iterator over one group
// member's samples given the tuple's encoded time column and the member's
// value column. Same ownership rules as GetSeriesChunkIterator.
func GetGroupSlotChunkIterator(timeCol, valCol []byte, minT, maxT int64, onDecode func(int)) *ChunkIterator {
	it := getChunkIterator(minT, maxT, onDecode)
	it.timeCol, it.valCol = timeCol, valCol
	return it
}

// decode batch-decodes the chunk into a pooled buffer. Helper (not a
// Next/Seek body) so its pool Get stays outside the allochot scope.
func (it *ChunkIterator) decode() bool {
	it.decoded = true
	it.buf = GetSampleBuffer()
	var err error
	if it.payload != nil {
		if it.onDecode != nil {
			it.onDecode(len(it.payload))
		}
		it.buf.T, it.buf.V, err = AppendXORSamples(it.buf.T, it.buf.V, it.payload)
	} else {
		if it.onDecode != nil {
			it.onDecode(len(it.timeCol) + len(it.valCol))
		}
		it.buf.T, it.buf.V, err = AppendGroupSlotSamples(it.buf.T, it.buf.V, it.timeCol, it.valCol)
	}
	if err != nil {
		it.err = err
		it.done = true
		return false
	}
	return true
}

// Next implements SampleIterator.
func (it *ChunkIterator) Next() bool {
	if it.done || it.err != nil {
		return false
	}
	if !it.decoded && !it.decode() {
		return false
	}
	it.i++
	if it.i >= len(it.buf.T) {
		it.done = true
		return false
	}
	return true
}

// Seek implements SampleIterator by binary search over the decoded
// timestamp column. A chunk entirely before t is never decoded.
func (it *ChunkIterator) Seek(t int64) bool {
	if it.done || it.err != nil {
		return false
	}
	if !it.decoded {
		if it.maxT < t {
			it.done = true // the whole chunk lies before t: never decode it
			return false
		}
		if !it.decode() {
			return false
		}
	}
	if it.i >= 0 && it.i < len(it.buf.T) && it.buf.T[it.i] >= t {
		return true // never move backwards
	}
	lo, hi := it.i+1, len(it.buf.T)
	if lo < 0 {
		lo = 0
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.buf.T[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.i = lo
	if it.i >= len(it.buf.T) {
		it.done = true
		return false
	}
	return true
}

// At implements SampleIterator.
func (it *ChunkIterator) At() (int64, float64) { return it.buf.T[it.i], it.buf.V[it.i] }

// Err implements SampleIterator.
func (it *ChunkIterator) Err() error { return it.err }

// Release implements Releasable: the decoded buffer and the iterator return
// to their pools, and the payload references are dropped (ending any alias
// of cache or mmap bytes).
func (it *ChunkIterator) Release() {
	if it.buf != nil {
		PutSampleBuffer(it.buf)
	}
	*it = ChunkIterator{}
	chunkIterPool.Put(it)
}

// --- BufferIterator: pooled iterator over an owned SampleBuffer ---

// BufferIterator walks a SampleBuffer it owns, clipped to [mint, maxt].
// The head uses it to serve queries out of samples decoded under the series
// lock: the buffer is private to the iterator, so no lock is held while the
// query drains it. Release returns buffer and iterator to their pools.
type BufferIterator struct {
	buf        *SampleBuffer
	i          int
	mint, maxt int64
	done       bool
}

var bufferIterPool = sync.Pool{New: func() any { return new(BufferIterator) }}

// GetBufferIterator returns a pooled iterator over buf clipped to
// [mint, maxt], taking ownership of buf (it is released with the iterator).
func GetBufferIterator(buf *SampleBuffer, mint, maxt int64) *BufferIterator {
	it := bufferIterPool.Get().(*BufferIterator)
	*it = BufferIterator{buf: buf, i: -1, mint: mint, maxt: maxt}
	return it
}

func (it *BufferIterator) seekIdx(t int64) {
	lo, hi := it.i+1, len(it.buf.T)
	if lo < 0 {
		lo = 0
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if it.buf.T[mid] < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	it.i = lo
}

// Next implements SampleIterator.
func (it *BufferIterator) Next() bool {
	if it.done {
		return false
	}
	if it.i < 0 {
		it.seekIdx(it.mint)
	} else {
		it.i++
	}
	if it.i >= len(it.buf.T) || it.buf.T[it.i] > it.maxt {
		it.done = true
		return false
	}
	return true
}

// Seek implements SampleIterator.
func (it *BufferIterator) Seek(t int64) bool {
	if it.done {
		return false
	}
	if t < it.mint {
		t = it.mint
	}
	if it.i < 0 || it.buf.T[it.i] < t {
		it.seekIdx(t)
	}
	if it.i >= len(it.buf.T) || it.buf.T[it.i] > it.maxt {
		it.done = true
		return false
	}
	return true
}

// At implements SampleIterator.
func (it *BufferIterator) At() (int64, float64) { return it.buf.T[it.i], it.buf.V[it.i] }

// Err implements SampleIterator.
func (it *BufferIterator) Err() error { return nil }

// Release implements Releasable.
func (it *BufferIterator) Release() {
	PutSampleBuffer(it.buf)
	*it = BufferIterator{}
	bufferIterPool.Put(it)
}

// --- QueryIterator: pooled merge + range clip + peek ---

// QueryIterator is the pooled per-series query stream: a deduplicating
// k-way merge over ranked sources, clipped to [mint, maxt], with a built-in
// one-sample peek so emptiness probes don't need a wrapper allocation. It
// replaces the NewRangeLimit(NewMergeIterator(...)) + PeekedIterator stack
// (three allocations per series) with one pooled object.
//
// The QueryIterator owns its sources: Release cascades to every pooled
// source (ChunkIterator, BufferIterator, ...), so callers hand sources over
// and release only the QueryIterator.
type QueryIterator struct {
	m          MergeIterator
	mint, maxt int64
	started    bool
	done       bool
	bt         int64
	bv         float64
	buffered   bool // bt/bv hold a probed sample not yet emitted
	pos        bool // bt/bv hold the emitted current sample
}

var queryIterPool = sync.Pool{New: func() any { return new(QueryIterator) }}

// GetQueryIterator returns a pooled merged stream over sources clipped to
// [mint, maxt], taking ownership of every source iterator. The sources
// slice itself is not retained. Release when the query is done with it.
func GetQueryIterator(sources []RankedIterator, mint, maxt int64) *QueryIterator {
	q := queryIterPool.Get().(*QueryIterator)
	q.m.reset(sources)
	q.mint, q.maxt = mint, maxt
	q.started, q.done = false, false
	q.buffered, q.pos = false, false
	q.bt, q.bv = 0, 0
	return q
}

// PeekNonEmpty reports whether the stream has at least one sample, decoding
// at most up to the first one. The probed sample (if any) is buffered and
// replayed by the next Next, so the stream is observationally untouched.
func (q *QueryIterator) PeekNonEmpty() bool {
	if q.buffered || q.pos {
		return true
	}
	if !q.Next() {
		return false
	}
	q.buffered, q.pos = true, false
	return true
}

// Next implements SampleIterator.
func (q *QueryIterator) Next() bool {
	if q.done {
		return false
	}
	if q.buffered {
		q.buffered, q.pos = false, true
		return true
	}
	var ok bool
	if !q.started {
		q.started = true
		ok = q.m.Seek(q.mint)
	} else {
		ok = q.m.Next()
	}
	if !ok {
		q.done = true
		return false
	}
	t, v := q.m.At()
	if t > q.maxt {
		q.done = true
		return false
	}
	q.bt, q.bv = t, v
	q.pos = true
	return true
}

// Seek implements SampleIterator.
func (q *QueryIterator) Seek(t int64) bool {
	if q.done {
		return false
	}
	if t < q.mint {
		t = q.mint
	}
	if (q.buffered || q.pos) && q.bt >= t {
		q.buffered, q.pos = false, true
		return true
	}
	q.started = true
	q.buffered = false
	if !q.m.Seek(t) {
		q.done = true
		return false
	}
	tt, vv := q.m.At()
	if tt > q.maxt {
		q.done = true
		return false
	}
	q.bt, q.bv = tt, vv
	q.pos = true
	return true
}

// At implements SampleIterator.
func (q *QueryIterator) At() (int64, float64) { return q.bt, q.bv }

// Err implements SampleIterator.
func (q *QueryIterator) Err() error { return q.m.Err() }

// Release implements Releasable: every owned source is released, then the
// QueryIterator returns to its pool.
func (q *QueryIterator) Release() {
	q.m.releaseSources()
	queryIterPool.Put(q)
}
