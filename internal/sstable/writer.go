// Package sstable implements the sorted-string-table file format shared by
// the time-partitioned LSM-tree and the classic LevelDB-style baseline
// (paper §2.3, §3.3): a sequence of ~4 KB data blocks with key prefix
// compression, an index block mapping each data block's last key to its
// offset, a bloom filter over all keys, and a fixed footer.
//
// The 16-byte TimeUnion key format (big-endian ID ‖ start timestamp) makes
// prefix compression collapse the shared ID bytes of consecutive chunks of
// one timeseries, which is the effect Figure 10 calls out.
package sstable

import (
	"bytes"
	"compress/flate"
	"fmt"
	"hash/crc32"

	"timeunion/internal/encoding"
)

// DefaultBlockSize is the data block size target (paper Table 1: "data
// block size in SSTables, 4KB by default").
const DefaultBlockSize = 4096

// footerLen is the fixed footer size: index off/len (8+8), bloom off/len
// (8+8), numEntries (8), magic (8).
const footerLen = 48

// tableMagic identifies an SSTable.
const tableMagic = 0x545553535431 // "TUSST1"

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Block compression markers: each stored block is prefixed by one byte.
const (
	blockRaw   = byte(0)
	blockFlate = byte(1)
)

// Writer builds an SSTable in memory. Keys must be added in strictly
// increasing order. Data blocks are DEFLATE-compressed when that shrinks
// them (LevelDB compresses blocks with Snappy — paper Table 3 credits this
// for TimeUnion's smaller data footprint; DEFLATE is the stdlib stand-in).
type Writer struct {
	blockSize  int
	noCompress bool

	buf          encoding.Buf // finished blocks
	block        encoding.Buf // current data block
	lastKey      []byte       // last key added overall
	firstKey     []byte
	blockEntries int

	// index entries: last key of each finished block + offset + length
	indexKeys [][]byte
	indexOffs []uint64
	indexLens []uint64

	keyHashes  []uint64 // for the bloom filter
	numEntries uint64
}

// NewWriter returns a writer with the given block size (0 = default).
func NewWriter(blockSize int) *Writer {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	return &Writer{blockSize: blockSize}
}

// DisableCompression turns off block compression (for tests and size
// comparisons).
func (w *Writer) DisableCompression() { w.noCompress = true }

// NumEntries returns the number of key-value pairs added.
func (w *Writer) NumEntries() uint64 { return w.numEntries }

// EstimatedSize returns the bytes buffered so far.
func (w *Writer) EstimatedSize() int { return w.buf.Len() + w.block.Len() }

// FirstKey returns the smallest key added (nil before the first Add).
func (w *Writer) FirstKey() []byte { return w.firstKey }

// LastKey returns the largest key added (nil before the first Add).
func (w *Writer) LastKey() []byte { return w.lastKey }

// Add appends a key-value pair. Keys must arrive in strictly increasing
// order.
func (w *Writer) Add(key, value []byte) error {
	if w.lastKey != nil && bytes.Compare(key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order: %x after %x", key, w.lastKey)
	}
	if w.firstKey == nil {
		w.firstKey = append([]byte(nil), key...)
	}
	// Prefix-compress against the previous key in the block.
	shared := 0
	if w.blockEntries > 0 {
		n := len(key)
		if len(w.lastKey) < n {
			n = len(w.lastKey)
		}
		for shared < n && key[shared] == w.lastKey[shared] {
			shared++
		}
	}
	w.block.PutUvarint(uint64(shared))
	w.block.PutUvarint(uint64(len(key) - shared))
	w.block.PutUvarint(uint64(len(value)))
	w.block.PutBytes(key[shared:])
	w.block.PutBytes(value)
	w.blockEntries++
	w.numEntries++
	w.lastKey = append(w.lastKey[:0], key...)
	w.keyHashes = append(w.keyHashes, bloomHash(key))
	if w.block.Len() >= w.blockSize {
		w.finishBlock()
	}
	return nil
}

func (w *Writer) finishBlock() {
	if w.blockEntries == 0 {
		return
	}
	off := uint64(w.buf.Len())
	// Stored form: marker byte + (possibly compressed) payload + CRC
	// trailer over the stored bytes.
	stored := w.block.Get()
	marker := blockRaw
	if !w.noCompress {
		if comp := deflateBytes(stored); comp != nil && len(comp) < len(stored) {
			stored = comp
			marker = blockFlate
		}
	}
	w.buf.PutByte(marker)
	crc := crc32.Checksum(stored, crcTable)
	w.buf.PutBytes(stored)
	w.buf.PutBE32(crc)
	w.indexKeys = append(w.indexKeys, append([]byte(nil), w.lastKey...))
	w.indexOffs = append(w.indexOffs, off)
	w.indexLens = append(w.indexLens, uint64(len(stored))+5)
	w.block.Reset()
	w.blockEntries = 0
}

// deflateBytes compresses p at the default level, returning nil on error.
func deflateBytes(p []byte) []byte {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.DefaultCompression)
	if err != nil {
		return nil
	}
	if _, err := fw.Write(p); err != nil {
		return nil
	}
	if err := fw.Close(); err != nil {
		return nil
	}
	return buf.Bytes()
}

// Finish completes the table and returns its bytes. The writer must not be
// reused afterwards.
func (w *Writer) Finish() ([]byte, error) {
	if w.numEntries == 0 {
		return nil, fmt.Errorf("sstable: finishing empty table")
	}
	w.finishBlock()

	// Index block.
	indexOff := uint64(w.buf.Len())
	var ib encoding.Buf
	ib.PutUvarint(uint64(len(w.indexKeys)))
	for i, k := range w.indexKeys {
		ib.PutUvarintBytes(k)
		ib.PutUvarint(w.indexOffs[i])
		ib.PutUvarint(w.indexLens[i])
	}
	w.buf.PutBytes(ib.Get())
	indexLen := uint64(w.buf.Len()) - indexOff

	// Bloom filter block.
	bloomOff := uint64(w.buf.Len())
	filter := buildBloom(w.keyHashes, 10)
	w.buf.PutBytes(filter)
	bloomLen := uint64(w.buf.Len()) - bloomOff

	// Footer.
	w.buf.PutBE64(indexOff)
	w.buf.PutBE64(indexLen)
	w.buf.PutBE64(bloomOff)
	w.buf.PutBE64(bloomLen)
	w.buf.PutBE64(w.numEntries)
	w.buf.PutBE64(tableMagic)
	return w.buf.Get(), nil
}

// --- bloom filter ---

func bloomHash(key []byte) uint64 {
	// FNV-1a 64.
	var h uint64 = 0xcbf29ce484222325
	for _, c := range key {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return h
}

// buildBloom creates a bloom filter with bitsPerKey bits per key:
// [uvarint nBits][uvarint k][bitset]. Double hashing from the single
// 64-bit key hash.
func buildBloom(hashes []uint64, bitsPerKey int) []byte {
	nBits := len(hashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	k := 7 // ~0.7 * bitsPerKey rounded for 10 bits/key
	bits := make([]byte, (nBits+7)/8)
	for _, h := range hashes {
		delta := h>>33 | h<<31
		for i := 0; i < k; i++ {
			pos := h % uint64(nBits)
			bits[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	var b encoding.Buf
	b.PutUvarint(uint64(nBits))
	b.PutUvarint(uint64(k))
	b.PutBytes(bits)
	return b.Get()
}

// bloomMayContain tests a serialized filter.
func bloomMayContain(filter []byte, key []byte) bool {
	d := encoding.NewDecbuf(filter)
	nBits := d.Uvarint()
	k := d.Uvarint()
	bits := d.B
	if d.Err() != nil || nBits == 0 {
		return true // corrupt filter: fail open
	}
	h := bloomHash(key)
	delta := h>>33 | h<<31
	for i := uint64(0); i < k; i++ {
		pos := h % nBits
		if int(pos/8) >= len(bits) {
			return true
		}
		if bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
