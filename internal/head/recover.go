package head

import (
	"timeunion/internal/wal"
)

// Recover rebuilds the head from the write-ahead log: the catalog recreates
// every series/group memory object and the global inverted index, then the
// unflushed samples are re-ingested (flushed samples were skipped by the
// WAL's flush marks). Must be called on a fresh head before any appends;
// recovery itself is single-threaded but takes the ordinary locks so it is
// race-detector clean even if appends start concurrently.
func (h *Head) Recover() error {
	w := h.opts.WAL
	if w == nil {
		return nil
	}
	err := w.Recover(wal.Handler{
		Series: func(d wal.SeriesDef) error {
			return h.DefineSeries(d.ID, d.Labels)
		},
		Group: func(d wal.GroupDef) error {
			return h.DefineGroup(d.GID, d.GroupTags)
		},
		Member: func(d wal.MemberDef) error {
			ok, err := h.DefineGroupMember(d.GID, d.Slot, d.Unique)
			if !ok && err == nil {
				// A repaired-away catalog record can orphan later records;
				// dropping them is the correct recovery (they were never
				// acknowledged as part of a consistent state). Count it.
				h.recoverDropped.Add(1)
			}
			return err
		},
		Sample: func(r wal.SampleRec) error {
			s, ok := h.lookupSeries(r.ID)
			if !ok {
				h.recoverDropped.Add(1)
				return nil
			}
			s.mu.Lock()
			defer s.mu.Unlock()
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
			return h.ingestLocked(s, r.T, r.V)
		},
		GroupSample: func(r wal.GroupSampleRec) error {
			g, ok := h.lookupGroup(r.GID)
			if !ok {
				h.recoverDropped.Add(1)
				return nil
			}
			g.mu.Lock()
			defer g.mu.Unlock()
			if r.Seq > g.seq {
				g.seq = r.Seq
			}
			slots := make([]int, len(r.Slots))
			for i, s := range r.Slots {
				slots[i] = int(s)
			}
			return h.ingestGroupLocked(g, r.T, slots, r.Vals)
		},
	})
	if err != nil {
		return err
	}
	// Flushed samples are skipped during replay, so nothing above advanced a
	// series' sequence counter past the flushed watermark. Restore it
	// explicitly: otherwise post-recovery appends would reuse burned
	// sequence IDs and the *next* recovery would skip them as flushed.
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		for id, s := range st.series {
			if fs := w.FlushedSeq(id); fs > s.seq {
				s.mu.Lock()
				if fs > s.seq {
					s.seq = fs
				}
				s.mu.Unlock()
			}
		}
		for gid, g := range st.groups {
			if fs := w.FlushedSeq(gid); fs > g.seq {
				g.mu.Lock()
				if fs > g.seq {
					g.seq = fs
				}
				g.mu.Unlock()
			}
		}
		st.mu.RUnlock()
	}
	return nil
}
