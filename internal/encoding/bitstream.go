package encoding

// BitWriter writes individual bits and bit-packed integers to a byte slice,
// MSB first. It is the substrate for the Gorilla-style chunk encodings.
type BitWriter struct {
	b     []byte
	count uint8 // number of free bits in the last byte (0 means full/none)
}

// NewBitWriter returns a BitWriter appending to b.
func NewBitWriter(b []byte) *BitWriter {
	return &BitWriter{b: b}
}

// Bytes returns the written bytes. Unused trailing bits are zero.
func (w *BitWriter) Bytes() []byte { return w.b }

// Reset discards all written data, retaining capacity.
func (w *BitWriter) Reset() {
	w.b = w.b[:0]
	w.count = 0
}

// WriteBit appends a single bit.
func (w *BitWriter) WriteBit(bit bool) {
	if w.count == 0 {
		w.b = append(w.b, 0)
		w.count = 8
	}
	i := len(w.b) - 1
	if bit {
		w.b[i] |= 1 << (w.count - 1)
	}
	w.count--
}

// WriteU8 appends 8 bits.
func (w *BitWriter) WriteU8(c byte) {
	if w.count == 0 {
		w.b = append(w.b, c)
		return
	}
	i := len(w.b) - 1
	// Fill the current byte's free low bits with the high bits of c.
	w.b[i] |= c >> (8 - w.count)
	// Start a new byte with the remaining low bits of c.
	w.b = append(w.b, c<<w.count)
}

// WriteBits appends the low nbits of v, most significant bit first.
func (w *BitWriter) WriteBits(v uint64, nbits int) {
	v <<= 64 - uint(nbits)
	for nbits >= 8 {
		w.WriteU8(byte(v >> 56))
		v <<= 8
		nbits -= 8
	}
	for nbits > 0 {
		w.WriteBit(v>>63 == 1)
		v <<= 1
		nbits--
	}
}

// BitLen returns the total number of bits written.
func (w *BitWriter) BitLen() int {
	return len(w.b)*8 - int(w.count)
}

// BitReader reads bits MSB-first from a byte slice.
type BitReader struct {
	b     []byte
	idx   int
	count uint8 // bits remaining in b[idx]
	err   error
}

// NewBitReader returns a BitReader over b.
func NewBitReader(b []byte) *BitReader {
	return &BitReader{b: b, count: 8}
}

// MakeBitReader returns a BitReader over b by value, so decode loops can
// keep the reader on the stack (the zero-allocation batch-decode path) or
// embed it in a reusable iterator without a separate heap object.
func MakeBitReader(b []byte) BitReader {
	return BitReader{b: b, count: 8}
}

// Reset repoints the reader at b, clearing any previous error, so pooled
// decoders reuse one reader across payloads.
func (r *BitReader) Reset(b []byte) {
	r.b = b
	r.idx = 0
	r.count = 8
	r.err = nil
}

// Err returns the first read-past-end error, if any.
func (r *BitReader) Err() error { return r.err }

// ReadBit reads a single bit.
func (r *BitReader) ReadBit() bool {
	if r.err != nil {
		return false
	}
	if r.idx >= len(r.b) {
		r.err = ErrShortBuffer
		return false
	}
	bit := r.b[r.idx]&(1<<(r.count-1)) != 0
	r.count--
	if r.count == 0 {
		r.idx++
		r.count = 8
	}
	return bit
}

// ReadU8 reads 8 bits.
func (r *BitReader) ReadU8() byte {
	if r.err != nil {
		return 0
	}
	if r.idx >= len(r.b) {
		r.err = ErrShortBuffer
		return 0
	}
	if r.count == 8 {
		c := r.b[r.idx]
		r.idx++
		return c
	}
	c := r.b[r.idx] << (8 - r.count)
	r.idx++
	if r.idx >= len(r.b) {
		r.err = ErrShortBuffer
		return 0
	}
	c |= r.b[r.idx] >> r.count
	return c
}

// ReadBits reads nbits and returns them in the low bits of the result.
func (r *BitReader) ReadBits(nbits int) uint64 {
	var v uint64
	for nbits >= 8 {
		v = v<<8 | uint64(r.ReadU8())
		nbits -= 8
	}
	for nbits > 0 {
		v <<= 1
		if r.ReadBit() {
			v |= 1
		}
		nbits--
	}
	return v
}
