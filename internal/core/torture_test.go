package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
)

// The crash-recovery torture harness: randomized append/flush/purge/sync
// schedules against a FaultStore-backed DB, with crashes injected at random
// kill points. A crash kills the fault stores (severing the abandoned
// incarnation's cloud I/O), closes the WAL without syncing, and then mangles
// the WAL files beyond the last-synced boundary — truncating tails and
// flipping bytes, the damage an fsync-less power cut can leave behind. After
// every reopen the harness asserts the durability contract against a shadow
// model: every sample acknowledged before a successful Sync is queryable
// with its exact value, and no sample ever comes back with a value that was
// never appended.
//
// Knobs: TORTURE_SCHEDULES (number of randomized schedules, default 8) and
// TORTURE_SEED (base seed, default fixed) let CI pin a reproduction.

// stream is the shadow model of one timeseries (an individual series or one
// group member). Samples move acked -> durable on a successful Sync and
// acked -> maybe on a crash; maybe also holds unacknowledged appends (the
// WAL record may or may not have been written before the error).
type stream struct {
	durable map[int64]float64 // must survive any crash
	acked   map[int64]float64 // acknowledged, not yet synced
	maybe   map[int64]float64 // may or may not survive; value is binding
}

func newStream() *stream {
	return &stream{
		durable: map[int64]float64{},
		acked:   map[int64]float64{},
		maybe:   map[int64]float64{},
	}
}

func (s *stream) expected(t int64) (float64, bool) {
	if v, ok := s.durable[t]; ok {
		return v, true
	}
	if v, ok := s.acked[t]; ok {
		return v, true
	}
	v, ok := s.maybe[t]
	return v, ok
}

// promote marks everything acknowledged so far as durable (a Sync
// succeeded).
func (s *stream) promote() {
	for t, v := range s.acked {
		s.durable[t] = v
	}
	s.acked = map[int64]float64{}
}

// demote downgrades unsynced acknowledgements to "maybe" (a crash happened).
func (s *stream) demote() {
	for t, v := range s.acked {
		s.maybe[t] = v
	}
	s.acked = map[int64]float64{}
}

const (
	tortureSeries       = 6
	tortureGroupMembers = 3
)

func seriesVal(idx int, t int64) float64 { return float64(int64(idx+1)*1_000_000 + t) }
func groupVal(slot int, t int64) float64 { return float64(100_000_000 + int64(slot)*1_000_000 + t) }

func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

func TestCrashTorture(t *testing.T) {
	schedules := envInt("TORTURE_SCHEDULES", 8)
	if testing.Short() && schedules > 3 {
		schedules = 3
	}
	seed := int64(envInt("TORTURE_SEED", 20260806))
	for i := 0; i < schedules; i++ {
		i := i
		t.Run(fmt.Sprintf("schedule%02d", i), func(t *testing.T) {
			t.Parallel()
			runTortureSchedule(t, seed+int64(i)*7919)
		})
	}
}

func runTortureSchedule(t *testing.T, seed int64) {
	debug := os.Getenv("TORTURE_DEBUG") != ""
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	fastMem := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slowMem := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	walDir := filepath.Join(dir, "wal")

	faultCfg := func() cloud.FaultConfig {
		return cloud.FaultConfig{
			Seed:          rng.Int63(),
			TransientProb: 0.02,
			NotFoundProb:  0.01,
			TornWriteProb: 0.01,
			LatencyProb:   0.005,
			LatencySpike:  50 * time.Microsecond,
		}
	}
	// open wraps the surviving MemStores ("the cloud") in fresh fault
	// stores and opens the DB. If recovery fails under injected faults the
	// harness retries with injection disabled — that attempt must succeed.
	open := func() (*DB, *cloud.FaultStore, *cloud.FaultStore) {
		fast := cloud.NewFaultStore(fastMem, faultCfg())
		slow := cloud.NewFaultStore(slowMem, faultCfg())
		opts := Options{
			Dir:               dir,
			Fast:              fast,
			Slow:              slow,
			CacheBytes:        1 << 20,
			ChunkSamples:      8,
			SlotsPerRegion:    256,
			MemTableSize:      4 << 10,
			L0PartitionLength: 1000,
			L2PartitionLength: 4000,
			MaxL0Partitions:   2,
			PatchThreshold:    2,
			TargetTableSize:   16 << 10,
			BlockSize:         512,
			WALSegmentSize:    2 << 10,
		}
		db, err := Open(opts)
		if err != nil {
			fast.SetEnabled(false)
			slow.SetEnabled(false)
			db, err = Open(opts)
			if err != nil {
				t.Fatalf("reopen with faults disabled failed: %v", err)
			}
			fast.SetEnabled(true)
			slow.SetEnabled(true)
		}
		return db, fast, slow
	}

	series := make([]*stream, tortureSeries)
	members := make([]*stream, tortureGroupMembers)
	for i := range series {
		series[i] = newStream()
	}
	for i := range members {
		members[i] = newStream()
	}
	groupTags := labels.FromStrings("g", "grp")
	uniqueTags := make([]labels.Labels, tortureGroupMembers)
	for i := range uniqueTags {
		uniqueTags[i] = labels.FromStrings("gm", fmt.Sprintf("m%d", i))
	}
	all := append(append([]*stream{}, series...), members...)
	promoteAll := func() {
		for _, s := range all {
			s.promote()
		}
	}
	demoteAll := func() {
		for _, s := range all {
			s.demote()
		}
	}

	db, fast, slow := open()
	syncSnap := walSizes(t, walDir)
	nextT := int64(1)

	crashes := 2 + rng.Intn(3)
	for inc := 0; ; inc++ {
		ops := 80 + rng.Intn(220)
		for o := 0; o < ops; o++ {
			switch r := rng.Float64(); {
			case r < 0.75: // individual append
				idx := rng.Intn(tortureSeries)
				ts := nextT
				nextT++
				v := seriesVal(idx, ts)
				lbls := labels.FromStrings("m", fmt.Sprintf("s%d", idx))
				if _, err := db.Append(lbls, ts, v); err != nil {
					series[idx].maybe[ts] = v
				} else {
					series[idx].acked[ts] = v
				}
				if debug {
					t.Logf("append s%d t=%d", idx, ts)
				}
			case r < 0.87: // group round
				ts := nextT
				nextT++
				vals := make([]float64, tortureGroupMembers)
				for i := range vals {
					vals[i] = groupVal(i, ts)
				}
				if _, _, err := db.AppendGroup(groupTags, uniqueTags, ts, vals); err != nil {
					for i, m := range members {
						m.maybe[ts] = vals[i]
					}
				} else {
					for i, m := range members {
						m.acked[ts] = vals[i]
					}
				}
			case r < 0.91:
				err := db.Flush() // may fail under faults; data stays in the WAL
				if debug {
					t.Logf("flush err=%v", err)
				}
			case r < 0.95:
				n, err := db.PurgeWAL()
				if debug {
					t.Logf("purge n=%d err=%v", n, err)
				}
			default:
				if err := db.Sync(); err == nil {
					promoteAll()
					syncSnap = walSizes(t, walDir)
					if debug {
						t.Logf("sync snap=%v", syncSnap)
					}
				}
			}
		}
		if inc == crashes {
			break
		}

		// Crash: sever the abandoned incarnation's cloud I/O, abandon the
		// WAL without syncing, then damage everything past the last-synced
		// boundary.
		fast.Kill()
		slow.Kill()
		_ = db.store.Close()
		_ = db.wal.CrashClose()
		_ = db.head.Close()
		demoteAll()
		if debug {
			t.Logf("crash inc=%d sizes=%v snap=%v", inc, walSizes(t, walDir), syncSnap)
		}
		mangleWAL(t, rng, walDir, syncSnap)
		if debug {
			t.Logf("mangled sizes=%v", walSizes(t, walDir))
		}

		db, fast, slow = open()
		// Everything now on disk is the recovered baseline; the next crash
		// may only damage bytes written after this point.
		syncSnap = walSizes(t, walDir)
		fast.SetEnabled(false)
		slow.SetEnabled(false)
		verifyShadow(t, db, series, members)
		fast.SetEnabled(true)
		slow.SetEnabled(true)
	}

	// Graceful end: sync, verify live, then close cleanly and verify the
	// recovered state once more.
	fast.SetEnabled(false)
	slow.SetEnabled(false)
	if err := db.Sync(); err != nil {
		t.Fatalf("final sync: %v", err)
	}
	promoteAll()
	verifyShadow(t, db, series, members)
	st := db.Stats()
	t.Logf("seed=%d corruptionsRepaired=%d quarantined=%d recoveryDropped=%d faults(fast)=%+v faults(slow)=%+v",
		seed, st.WALCorruptions, st.LSM.TablesQuarantined, st.RecoveryDropped, fast.Injected(), slow.Injected())
	_ = db.Close() // a fault-poisoned background worker may surface here

	db2, fast2, slow2 := open()
	fast2.SetEnabled(false)
	slow2.SetEnabled(false)
	verifyShadow(t, db2, series, members)
	if err := db2.Close(); err != nil {
		t.Fatalf("final close: %v", err)
	}
}

// walSizes snapshots the current size of every WAL file. Taken right after
// a successful Sync (or right after a reopen), it is the boundary beyond
// which a later crash may destroy data: every durable record lies below it.
func walSizes(t *testing.T, walDir string) map[string]int64 {
	t.Helper()
	sizes := map[string]int64{}
	entries, err := os.ReadDir(walDir)
	if err != nil {
		if os.IsNotExist(err) {
			return sizes
		}
		t.Fatalf("snapshot wal: %v", err)
	}
	for _, e := range entries {
		info, err := e.Info()
		if err != nil {
			continue
		}
		sizes[e.Name()] = info.Size()
	}
	return sizes
}

// mangleWAL simulates what a power cut does to unsynced file tails: for
// each WAL file, bytes beyond the last-synced snapshot may be truncated at
// a random point or corrupted in place. Bytes below the snapshot are
// durable and never touched. The checkpoint is always written via
// write-sync-rename, so it has no unsynced tail to damage.
func mangleWAL(t *testing.T, rng *rand.Rand, walDir string, synced map[string]int64) {
	t.Helper()
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatalf("mangle wal: %v", err)
	}
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".wal" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		cur := info.Size()
		base := synced[e.Name()] // 0 for files created after the snapshot
		if cur <= base {
			continue
		}
		path := filepath.Join(walDir, e.Name())
		switch r := rng.Float64(); {
		case r < 0.40: // torn tail: lose a suffix of the unsynced region
			cut := base + rng.Int63n(cur-base+1)
			if err := os.Truncate(path, cut); err != nil {
				t.Fatalf("truncate %s: %v", path, err)
			}
		case r < 0.70: // in-place damage: flip one unsynced byte
			off := base + rng.Int63n(cur-base)
			f, err := os.OpenFile(path, os.O_RDWR, 0)
			if err != nil {
				t.Fatalf("open %s: %v", path, err)
			}
			var b [1]byte
			if _, err := f.ReadAt(b[:], off); err != nil {
				f.Close()
				t.Fatalf("read %s: %v", path, err)
			}
			b[0] ^= 0xFF
			if _, err := f.WriteAt(b[:], off); err != nil {
				f.Close()
				t.Fatalf("write %s: %v", path, err)
			}
			f.Close()
		}
	}
}

// verifyShadow checks the durability contract: every durable sample is
// present with its exact value, and every returned sample carries a value
// that was actually appended at that timestamp.
func verifyShadow(t *testing.T, db *DB, series, members []*stream) {
	t.Helper()
	const maxT = int64(1) << 30
	for idx, s := range series {
		m := labels.MustEqual("m", fmt.Sprintf("s%d", idx))
		checkStream(t, db, fmt.Sprintf("series s%d", idx), s, m)
	}
	for slot, s := range members {
		g := labels.MustEqual("g", "grp")
		m := labels.MustEqual("gm", fmt.Sprintf("m%d", slot))
		checkStream(t, db, fmt.Sprintf("group member m%d", slot), s, g, m)
	}
	_ = maxT
}

func checkStream(t *testing.T, db *DB, name string, s *stream, matchers ...*labels.Matcher) {
	t.Helper()
	res, err := db.Query(0, int64(1)<<30, matchers...)
	if err != nil {
		t.Fatalf("%s: query: %v", name, err)
	}
	if len(res) > 1 {
		t.Fatalf("%s: query returned %d series, want at most 1", name, len(res))
	}
	got := map[int64]float64{}
	if len(res) == 1 {
		for _, p := range res[0].Samples {
			if prev, ok := got[p.T]; ok && prev != p.V {
				t.Fatalf("%s: t=%d returned twice with different values %v and %v", name, p.T, prev, p.V)
			}
			got[p.T] = p.V
			want, ok := s.expected(p.T)
			if !ok {
				t.Fatalf("%s: t=%d v=%v was never appended", name, p.T, p.V)
			}
			if want != p.V {
				t.Fatalf("%s: t=%d got v=%v, appended v=%v", name, p.T, p.V, want)
			}
		}
	}
	for ts, v := range s.durable {
		gv, ok := got[ts]
		if !ok {
			st := db.Stats()
			t.Fatalf("%s: durable sample t=%d v=%v lost after recovery (stats=%+v)", name, ts, v, st)
		}
		if gv != v {
			t.Fatalf("%s: durable sample t=%d got v=%v, want v=%v", name, ts, gv, v)
		}
	}
}
