package lsm

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/obs"
)

// openReplica opens a read-only LSM over the env's stores.
func openReplica(t *testing.T, env *testEnv, extra func(*Options)) *LSM {
	t.Helper()
	opts := Options{Fast: env.fast, Slow: env.slow, ReadOnly: true}
	if extra != nil {
		extra(&opts)
	}
	r, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func samplesAt(base int64, n int) []chunkenc.Sample {
	out := make([]chunkenc.Sample, n)
	for i := range out {
		out[i] = chunkenc.Sample{T: base + int64(i)*10, V: float64(base) + float64(i)}
	}
	return out
}

func TestReadOnlyViewServesCommittedData(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, samplesAt(0, 50))
	putSeries(t, env.l, 1, samplesAt(500, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}

	r := openReplica(t, env, nil)
	want := querySeries(t, env.l, 1, 0, 10_000)
	got := querySeries(t, r, 1, 0, 10_000)
	if len(got) == 0 || len(got) != len(want) {
		t.Fatalf("replica returned %d samples, writer %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d: replica %+v != writer %+v", i, got[i], want[i])
		}
	}

	// New data is invisible until the writer commits AND the replica
	// refreshes.
	putSeries(t, env.l, 1, samplesAt(2000, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(querySeries(t, r, 1, 2000, 10_000)); n != 0 {
		t.Fatalf("unrefreshed replica sees %d new samples", n)
	}
	changed, err := r.Refresh()
	if err != nil {
		t.Fatalf("refresh: %v", err)
	}
	if !changed {
		t.Fatal("refresh after a writer flush reported no change")
	}
	if n := len(querySeries(t, r, 1, 2000, 10_000)); n != 50 {
		t.Fatalf("refreshed replica sees %d/50 new samples", n)
	}

	// No change since: refresh is a version-equality no-op.
	if changed, err = r.Refresh(); err != nil || changed {
		t.Fatalf("idle refresh: changed=%v err=%v", changed, err)
	}
}

func TestReadOnlyRejectsMutations(t *testing.T) {
	env := newEnv(t, smallOpts())
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	r := openReplica(t, env, nil)
	k, v := seriesKV(t, 9, samplesAt(0, 4))
	if err := r.Put(k, v); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Put on read-only tree: err=%v, want ErrReadOnly", err)
	}
	if err := r.Flush(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("Flush on read-only tree: err=%v, want ErrReadOnly", err)
	}
	if n := r.ApplyRetention(1 << 40); n != 0 {
		t.Fatalf("ApplyRetention on read-only tree dropped %d partitions", n)
	}
	if _, err := env.l.Refresh(); err == nil {
		t.Fatal("Refresh on a writer tree should error")
	}
}

// TestRefreshObservesRetention: the replica must drop partitions the
// writer retired, releasing (but never deleting) their table handles.
func TestRefreshObservesRetention(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, samplesAt(0, 50))
	putSeries(t, env.l, 1, samplesAt(5000, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	r := openReplica(t, env, nil)
	if n := len(querySeries(t, r, 1, 0, 100_000)); n != 100 {
		t.Fatalf("replica sees %d/100 samples before retention", n)
	}
	if env.l.ApplyRetention(3000) == 0 {
		t.Fatal("writer retention dropped nothing")
	}
	if changed, err := r.Refresh(); err != nil || !changed {
		t.Fatalf("refresh after retention: changed=%v err=%v", changed, err)
	}
	got := querySeries(t, r, 1, 0, 100_000)
	if len(got) != 50 {
		t.Fatalf("replica sees %d samples after retention refresh, want 50", len(got))
	}
	for _, p := range got {
		if p.T < 3000 {
			t.Fatalf("replica still serves retired sample t=%d", p.T)
		}
	}
}

// flakyManifestGet simulates the prune race deterministically: the first
// Get of each armed key reports NotFound (as if the writer deleted it
// between the replica's List and Get), then passes through.
type flakyManifestGet struct {
	cloud.Store
	mu    sync.Mutex
	armed map[string]int
}

func (f *flakyManifestGet) Get(key string) ([]byte, error) {
	f.mu.Lock()
	if f.armed[key] > 0 {
		f.armed[key]--
		f.mu.Unlock()
		return nil, &cloud.ErrNotFound{Key: key}
	}
	f.mu.Unlock()
	return f.Store.Get(key)
}

// TestRefreshRetriesPrunedVersion is the prune/refresh race regression
// test: a NotFound on a listed manifest version must re-list and retry,
// never fail the refresh.
func TestRefreshRetriesPrunedVersion(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, samplesAt(0, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}

	flaky := &flakyManifestGet{Store: env.fast, armed: map[string]int{}}
	r, err := Open(Options{Fast: flaky, Slow: env.slow, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	putSeries(t, env.l, 1, samplesAt(2000, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Arm a one-shot NotFound on the newest committed fast manifest: the
	// version the refresh will list and then fail to read.
	key := fmt.Sprintf("%s%020d", manifestFastPrefix, env.l.mfFastVer.Load())
	flaky.mu.Lock()
	flaky.armed[key] = 1
	flaky.mu.Unlock()

	changed, err := r.Refresh()
	if err != nil {
		t.Fatalf("refresh across a pruned version: %v", err)
	}
	if !changed {
		t.Fatal("refresh reported no change")
	}
	if n := len(querySeries(t, r, 1, 0, 100_000)); n != 100 {
		t.Fatalf("replica sees %d/100 samples after prune-race refresh", n)
	}
}

// TestRefreshUnderInjectedNotFounds drives many refreshes through a
// cloud.FaultStore that spuriously reports NotFound on reads: each
// injected miss must be absorbed by the retry loop, with the refreshed
// view always matching the writer.
func TestRefreshUnderInjectedNotFounds(t *testing.T) {
	env := newEnv(t, smallOpts())
	faultyFast := cloud.NewFaultStore(env.fast, cloud.FaultConfig{Seed: 7, NotFoundProb: 0.2})
	faultySlow := cloud.NewFaultStore(env.slow, cloud.FaultConfig{Seed: 8, NotFoundProb: 0.2})
	r, err := Open(Options{Fast: faultyFast, Slow: faultySlow, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for round := 0; round < 8; round++ {
		base := int64(round) * 3000
		putSeries(t, env.l, 1, samplesAt(base, 30))
		if err := env.l.Flush(); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Refresh(); err != nil {
			t.Fatalf("round %d: refresh: %v", round, err)
		}
		want := querySeries(t, env.l, 1, 0, 1<<40)
		// The injected NotFounds also hit the replica's query-path block
		// reads; those are not the contract under test, so retry them.
		var got []SamplePair
		for attempt := 0; ; attempt++ {
			chunks, err := r.ChunksFor(1, 0, 1<<40)
			if err == nil {
				got, err = SeriesSamples(chunks, 0, 1<<40)
			}
			if err == nil {
				break
			}
			if !cloud.IsNotFound(err) || attempt > 200 {
				t.Fatalf("round %d: replica query: %v", round, err)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: replica %d samples, writer %d", round, len(got), len(want))
		}
	}
}

func TestViewRefreshJournal(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, samplesAt(0, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	j := obs.NewJournal(0)
	r := openReplica(t, env, func(o *Options) { o.Journal = j })

	putSeries(t, env.l, 1, samplesAt(3000, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	var ev *obs.Event
	for _, e := range j.Events(0, nil) {
		if e.Kind == "lsm.view_refresh" {
			e := e
			ev = &e
		}
	}
	if ev == nil {
		t.Fatalf("no lsm.view_refresh event journaled (events: %+v)", j.Events(0, nil))
	}
	for _, field := range []string{"version_fast", "version_fast_old", "version_slow", "tables_added", "tables_dropped"} {
		if _, ok := ev.Fields[field]; !ok {
			t.Errorf("view_refresh event missing field %q (fields: %v)", field, ev.Fields)
		}
	}
}

// TestReplicaNeverDeletesSharedObjects: closing a replica (releasing every
// handle) must leave the writer's objects untouched.
func TestReplicaNeverDeletesSharedObjects(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, samplesAt(0, 50))
	putSeries(t, env.l, 1, samplesAt(5000, 50))
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	before := func() int {
		var n int
		for _, prefix := range []string{"l0/", "l1/"} {
			keys, err := env.fast.List(prefix)
			if err != nil {
				t.Fatal(err)
			}
			n += len(keys)
		}
		keys, err := env.slow.List("l2/")
		if err != nil {
			t.Fatal(err)
		}
		return n + len(keys)
	}
	objects := before()
	if objects == 0 {
		t.Fatal("no tables on the shared stores")
	}

	r, err := Open(Options{Fast: env.fast, Slow: env.slow, ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Refresh twice across a writer retention so the replica both adopts
	// and releases handles, then close.
	if env.l.ApplyRetention(3000) == 0 {
		t.Fatal("retention dropped nothing")
	}
	if _, err := r.Refresh(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Whatever the writer kept must still be there (the writer deleted its
	// own retired objects; the replica must not have deleted more).
	if got := before(); got == 0 {
		t.Fatalf("shared stores emptied after replica close (had %d objects)", objects)
	}
	if n := len(querySeries(t, env.l, 1, 0, 1<<40)); n != 50 {
		t.Fatalf("writer sees %d/50 samples after replica close", n)
	}
}
