// Package timeunion is a Go implementation of TimeUnion, an efficient
// timeseries management system with a unified data model for hybrid cloud
// storage (Wang & Shao, SIGMOD 2022).
//
// TimeUnion stores recent data on a fast cloud block store (EBS-like) and
// older data on a slow cloud object store (S3-like) through an elastic
// time-partitioned LSM-tree; indexes timeseries with a single global
// double-array-trie inverted index backed by memory-mapped file arrays; and
// represents both individual timeseries and timeseries groups (series that
// share timestamps, e.g. all metrics of one host) in one tag-based data
// model.
//
// # Quickstart
//
//	fast, _ := timeunion.NewDirBlockStore("data/fast")
//	slow, _ := timeunion.NewDirObjectStore("data/slow")
//	db, _ := timeunion.Open(timeunion.Options{Dir: "data/local", Fast: fast, Slow: slow})
//	defer db.Close()
//
//	id, _ := db.Append(timeunion.LabelsFromStrings("metric", "cpu", "host", "web-1"), ts, v)
//	_ = db.AppendFast(id, ts2, v2) // fast path: no tag comparisons
//
//	res, _ := db.Query(mint, maxt, timeunion.Equal("metric", "cpu"))
//
// See the examples directory for group-model ingestion, out-of-order
// handling, and dynamic fast-tier budgeting, and DESIGN.md for the full
// architecture.
package timeunion

import (
	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
)

// DB is a TimeUnion database instance. See Open.
type DB = core.DB

// Options configures a database: the two storage tiers, the local directory
// for the write-ahead log and mmap arrays, and the LSM-tree geometry.
type Options = core.Options

// Series is one query result: a full tag set and its samples.
type Series = core.Series

// Stats is a point-in-time resource usage snapshot.
type Stats = core.Stats

// Open creates or recovers a database.
func Open(opts Options) (*DB, error) { return core.Open(opts) }

// OpenReplica opens a read-only replica over the same Fast/Slow stores a
// live writer uses (DESIGN.md §4.13). A replica has no WAL or local state
// (leave Options.Dir empty), serves queries from the writer's committed
// manifests and published series catalog, refreshes its view every
// Options.ReplicaRefreshInterval (default 1s; negative disables the loop —
// drive (*DB).Refresh yourself), and fails every mutation with ErrReadOnly.
func OpenReplica(opts Options) (*DB, error) { return core.OpenReplica(opts) }

// ErrReadOnly is returned (wrapped) by every mutating method of a DB
// opened with OpenReplica. Test with errors.Is.
var ErrReadOnly = core.ErrReadOnly

// Label is one tag pair; Labels is a sorted tag set.
type (
	Label  = labels.Label
	Labels = labels.Labels
)

// Matcher is a tag selector for queries (exact, regex, and negations).
type Matcher = labels.Matcher

// LabelsFromStrings builds a tag set from alternating name/value strings.
func LabelsFromStrings(ss ...string) Labels { return labels.FromStrings(ss...) }

// LabelsFromMap builds a tag set from a map.
func LabelsFromMap(m map[string]string) Labels { return labels.FromMap(m) }

// Equal returns an exact-match tag selector (metric="cpu").
func Equal(name, value string) *Matcher { return labels.MustEqual(name, value) }

// Regexp returns an anchored regular-expression tag selector
// (metric=~"disk.*"). It returns an error for an invalid expression.
func Regexp(name, expr string) (*Matcher, error) {
	return labels.NewMatcher(labels.MatchRegexp, name, expr)
}

// NotEqual returns a negative exact selector (host!="web-1").
func NotEqual(name, value string) *Matcher {
	return labels.MustMatcher(labels.MatchNotEqual, name, value)
}

// Store is a cloud storage tier (block or object).
type Store = cloud.Store

// IsNotFound reports whether err (possibly wrapped) is a storage-tier
// not-found. Replica queries can return one transiently when the writer
// compacts or retires tables out from under the replica's current view;
// the next refresh heals it, so callers should retry rather than fail.
func IsNotFound(err error) bool { return cloud.IsNotFound(err) }

// NewDirBlockStore opens a directory-backed fast tier with an EBS-shaped
// latency model used for accounting (no artificial sleeping).
func NewDirBlockStore(dir string) (Store, error) {
	return cloud.NewDirStore(dir, cloud.TierBlock, cloud.EBSModel(0))
}

// NewDirObjectStore opens a directory-backed slow tier with an S3-shaped
// latency model used for accounting.
func NewDirObjectStore(dir string) (Store, error) {
	return cloud.NewDirStore(dir, cloud.TierObject, cloud.S3Model(0))
}

// NewMemBlockStore returns an in-memory fast tier (tests, benchmarks).
func NewMemBlockStore() Store { return cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0)) }

// NewMemObjectStore returns an in-memory slow tier (tests, benchmarks).
func NewMemObjectStore() Store { return cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0)) }
