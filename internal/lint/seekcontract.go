package lint

import (
	"go/ast"
	"go/types"
)

// SeekContract enforces the SampleIterator contract (DESIGN.md §4.8):
//
//  1. Any type declaring the contract's distinctive Seek(int64) bool
//     method must implement the complete interface — Next() bool,
//     At() (int64, float64), Err() error — with exact signatures.
//  2. A type declaring Next/At/Err in the contract shapes without a
//     conforming Seek is a partial implementation and is flagged too.
//  3. Seek(int64) bool may only be declared in internal/chunkenc. Other
//     packages compose the chunkenc adapters (LazyIterator,
//     PeekedIterator, SliceIterator, merge/range wrappers) instead. This
//     is what lets the build run full go vet — stdmethods included — on
//     every package but internal/chunkenc, whose Seek the vet exemption
//     covers.
var SeekContract = &Analyzer{
	Name: "seekcontract",
	Doc:  "SampleIterator implementations must be complete, exactly typed, and live in internal/chunkenc",
	Run:  runSeekContract,
}

// contract method shapes.
var (
	i64    = types.Typ[types.Int64]
	f64    = types.Typ[types.Float64]
	boolT  = types.Typ[types.Bool]
	errT   = types.Universe.Lookup("error").Type()
	wantIt = map[string]struct{ params, results []types.Type }{
		"Next": {nil, []types.Type{boolT}},
		"Seek": {[]types.Type{i64}, []types.Type{boolT}},
		"At":   {nil, []types.Type{i64, f64}},
		"Err":  {nil, []types.Type{errT}},
	}
)

func runSeekContract(pass *Pass) {
	// Collect method declarations grouped by receiver named type.
	type methodDecl struct {
		decl *ast.FuncDecl
		sig  *types.Signature
	}
	methods := map[*types.TypeName]map[string]methodDecl{}
	var order []*types.TypeName
	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Recv == nil {
			return true
		}
		obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if obj == nil {
			return true
		}
		sig := obj.Type().(*types.Signature)
		named := derefNamed(sig.Recv().Type())
		if named == nil {
			return true
		}
		tn := named.Obj()
		if methods[tn] == nil {
			methods[tn] = map[string]methodDecl{}
			order = append(order, tn)
		}
		methods[tn][fd.Name.Name] = methodDecl{fd, sig}
		return false
	})

	inChunkenc := pass.InScope("internal/chunkenc")
	for _, tn := range order {
		decls := methods[tn]
		seek, hasSeek := decls["Seek"]
		contractSeek := hasSeek && sigIs(seek.sig, wantIt["Seek"].params, wantIt["Seek"].results)

		// Does the type declare the Next/At/Err trio in contract shape?
		trio := 0
		for _, name := range []string{"Next", "At", "Err"} {
			if d, ok := decls[name]; ok && sigIs(d.sig, wantIt[name].params, wantIt[name].results) {
				trio++
			}
		}

		if !contractSeek && trio < 3 {
			continue // not claiming the SampleIterator contract
		}

		// The full method set (pointer receiver) must satisfy every
		// contract method exactly — embedding counts.
		ms := types.NewMethodSet(types.NewPointer(tn.Type()))
		var missing []string
		for _, name := range []string{"Next", "Seek", "At", "Err"} {
			want := wantIt[name]
			sel := ms.Lookup(tn.Pkg(), name)
			if sel == nil || !sigIs(sel.Obj().Type().(*types.Signature), want.params, want.results) {
				missing = append(missing, name)
			}
		}
		if len(missing) > 0 {
			pos := tn.Pos()
			if hasSeek {
				pos = seek.decl.Name.Pos()
			}
			pass.Reportf(pos, "type %s claims the chunkenc.SampleIterator contract but %s missing or mismatched (want Next() bool, Seek(int64) bool, At() (int64, float64), Err() error)", tn.Name(), joinAnd(missing))
			continue
		}

		if contractSeek && !inChunkenc {
			pass.Reportf(seek.decl.Name.Pos(), "Seek(int64) bool declared outside internal/chunkenc; compose chunkenc adapters (LazyIterator, PeekedIterator, ...) instead so the go vet stdmethods exemption stays scoped to internal/chunkenc")
		}
	}
}

func joinAnd(names []string) string {
	switch len(names) {
	case 0:
		return ""
	case 1:
		return names[0] + " is"
	}
	out := names[0]
	for _, n := range names[1 : len(names)-1] {
		out += ", " + n
	}
	return out + " and " + names[len(names)-1] + " are"
}
