package cloud

// Storage pricing per GB-month in USD, region ap-northeast-1 (Tokyo), as
// reported in the paper's Figure 1a: EBS is ~4x more expensive than S3, and
// memory (estimated from ElastiCache/EC2 t3 price deltas) is at least two
// orders of magnitude more expensive than EBS. These constants feed the
// cost-efficiency analysis only; they never affect the data path.
const (
	// PriceS3PerGBMonth is AWS S3 standard storage.
	PriceS3PerGBMonth = 0.025
	// PriceEBSPerGBMonth is AWS EBS gp2.
	PriceEBSPerGBMonth = 0.096
	// PriceRAMPerGBMonth is the estimated marginal price of instance RAM.
	PriceRAMPerGBMonth = 10.0
)

// MonthlyCostUSD estimates the storage bill for the given tier volumes.
func MonthlyCostUSD(blockBytes, objectBytes, ramBytes int64) float64 {
	const gb = 1 << 30
	return float64(blockBytes)/gb*PriceEBSPerGBMonth +
		float64(objectBytes)/gb*PriceS3PerGBMonth +
		float64(ramBytes)/gb*PriceRAMPerGBMonth
}
