package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
)

// TestConcurrentAppendAndQuery hammers the DB with parallel writers and
// readers; run under -race this validates the locking across head, LSM,
// and index.
func TestConcurrentAppendAndQuery(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	const writers = 4
	const readers = 2
	const perWriter = 400

	ids := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		id, err := db.Append(labels.FromStrings("metric", "cpu", "writer", fmt.Sprintf("w%d", w)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[w] = id
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if err := db.AppendFast(ids[w], int64(i)*10, float64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 50; i++ {
				lo := rnd.Int63n(int64(perWriter) * 10)
				if _, err := db.Query(lo, lo+500, labels.MustEqual("metric", "cpu")); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every writer's samples are intact.
	for w := 0; w < writers; w++ {
		res, err := db.Query(1, int64(perWriter)*10, labels.MustEqual("writer", fmt.Sprintf("w%d", w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || len(res[0].Samples) != perWriter {
			t.Fatalf("writer %d: %d series / %d samples", w, len(res), len(res[0].Samples))
		}
	}
}

// TestConcurrentGroupAppends exercises the group write path in parallel
// with queries.
func TestConcurrentGroupAppends(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	const groups = 3
	gids := make([]uint64, groups)
	slots := make([][]int, groups)
	uniques := []labels.Labels{
		labels.FromStrings("m", "a"), labels.FromStrings("m", "b"),
	}
	for g := 0; g < groups; g++ {
		gid, sl, err := db.AppendGroup(labels.FromStrings("host", fmt.Sprintf("h%d", g)), uniques, 0, []float64{0, 0})
		if err != nil {
			t.Fatal(err)
		}
		gids[g], slots[g] = gid, sl
	}
	var wg sync.WaitGroup
	errs := make(chan error, groups+1)
	for g := 0; g < groups; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 1; i <= 300; i++ {
				if err := db.AppendGroupFast(gids[g], slots[g], int64(i)*10, []float64{float64(i), -float64(i)}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if _, err := db.Query(0, 5000, labels.MustEqual("m", "a")); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(1, 10000, labels.MustEqual("m", "b"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != groups {
		t.Fatalf("got %d member series, want %d", len(res), groups)
	}
	for _, s := range res {
		if len(s.Samples) != 300 {
			t.Fatalf("%v: %d samples", s.Labels, len(s.Samples))
		}
	}
}

// TestSlowTierFailureSurfaces opens a DB whose slow tier starts failing
// and checks that the error reaches the caller instead of being swallowed.
func TestSlowTierFailureSurfaces(t *testing.T) {
	opts := testOpts("")
	slow := &flakyStore{Store: opts.Slow, failAfterPuts: 3}
	opts.Slow = slow
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var sawErr bool
	for ts := int64(10); ts <= 60000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			sawErr = true
			break
		}
	}
	if !sawErr {
		if err := db.Flush(); err == nil {
			t.Fatal("slow-tier failure never surfaced")
		}
	}
}

// TestConcurrentMixedWorkload runs every mutation path at once — fast-path
// appends, slow-path series creation, group appends, parallel queries, and
// flushes — against one DB. Under -race this is the integration check for
// the striped head locks, the query worker pool, and the singleflight cache
// sharing one set of stores.
func TestConcurrentMixedWorkload(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	const (
		writers   = 3
		perWriter = 300
	)
	ids := make([]uint64, writers)
	for w := range ids {
		id, err := db.Append(labels.FromStrings("metric", "cpu", "writer", fmt.Sprintf("w%d", w)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[w] = id
	}
	gid, slots, err := db.AppendGroup(labels.FromStrings("host", "h0"),
		[]labels.Labels{labels.FromStrings("m", "usage"), labels.FromStrings("m", "idle")},
		0, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+4)
	// Fast-path writers on pre-created series.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1; i <= perWriter; i++ {
				if err := db.AppendFast(ids[w], int64(i)*10, float64(i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	// Slow-path creator: new series race against fast appends and purges of
	// the stripe maps.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			ls := labels.FromStrings("metric", "disk", "dev", fmt.Sprintf("d%d", i))
			if _, err := db.Append(ls, int64(i+1)*10, 1); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Group writer.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= perWriter; i++ {
			if err := db.AppendGroupFast(gid, slots, int64(i)*10, []float64{float64(i), -float64(i)}); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Parallel reader: 4 workers per query.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx := context.Background()
		for i := 0; i < 40; i++ {
			if _, err := db.QueryWorkers(ctx, 4, 0, int64(perWriter)*10, labels.MustEqual("metric", "cpu")); err != nil {
				errs <- err
				return
			}
		}
	}()
	// Flusher races chunk flushes against everything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if err := db.Flush(); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < writers; w++ {
		res, err := db.Query(1, int64(perWriter)*10, labels.MustEqual("writer", fmt.Sprintf("w%d", w)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || len(res[0].Samples) != perWriter {
			t.Fatalf("writer %d: %d series / %d samples", w, len(res), len(res[0].Samples))
		}
	}
	res, err := db.Query(0, int64(perWriter)*10, labels.MustEqual("metric", "disk"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 120 {
		t.Fatalf("created %d disk series, want 120", len(res))
	}
}

// TestQueryWorkersIdentical checks the acceptance property directly: on a
// dataset spanning head, fast tier, and slow tier, the parallel query path
// returns byte-identical results to the serial one for every range tried.
func TestQueryWorkersIdentical(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	const series = 24
	ids := make([]uint64, series)
	for i := range ids {
		id, err := db.Append(labels.FromStrings("metric", "cpu", "core", fmt.Sprintf("c%02d", i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	// Span many L0/L2 partitions (lengths 1000/4000 in testOpts) so ChunksFor
	// touches both tiers, then leave a tail in the head.
	for ts := int64(10); ts <= 20_000; ts += 10 {
		for _, id := range ids {
			if err := db.AppendFast(id, ts, float64(ts%97)); err != nil {
				t.Fatal(err)
			}
		}
		if ts == 16_000 {
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		}
	}

	ctx := context.Background()
	ranges := [][2]int64{{0, 20_000}, {3_500, 9_000}, {15_990, 20_000}, {19_999, 30_000}}
	for _, r := range ranges {
		serial, err := db.QueryWorkers(ctx, 1, r[0], r[1], labels.MustEqual("metric", "cpu"))
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := db.QueryWorkers(ctx, workers, r[0], r[1], labels.MustEqual("metric", "cpu"))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial, par) {
				t.Fatalf("range %v: %d-worker result differs from serial", r, workers)
			}
		}
		if len(serial) != series {
			t.Fatalf("range %v: matched %d series, want %d", r, len(serial), series)
		}
	}
}

// TestQueryErrorNamesSeries arms a read failure on both tiers after data has
// been flushed out of the head and checks the query error names the series
// id that hit it, from both the serial and the parallel path.
func TestQueryErrorNamesSeries(t *testing.T) {
	opts := testOpts("")
	fast := &readFailStore{Store: opts.Fast}
	slow := &readFailStore{Store: opts.Slow}
	opts.Fast, opts.Slow = fast, slow
	db := openTestDB(t, opts)

	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 20_000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	fast.fail.Store(true)
	slow.fail.Store(true)

	want := fmt.Sprintf("query series %d", id)
	for _, workers := range []int{1, 4} {
		_, err := db.QueryWorkers(context.Background(), workers, 0, 20_000, labels.MustEqual("m", "x"))
		if err == nil {
			t.Fatalf("%d workers: armed read failure did not surface", workers)
		}
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("%d workers: error %q does not name the series (%q)", workers, err, want)
		}
	}
}

// TestQueryContextCancel: a cancelled context aborts the query on both
// paths instead of returning partial results.
func TestQueryContextCancel(t *testing.T) {
	db := openTestDB(t, testOpts(""))
	for i := 0; i < 8; i++ {
		id, err := db.Append(labels.FromStrings("metric", "cpu", "core", fmt.Sprintf("c%d", i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		for ts := int64(10); ts <= 1000; ts += 10 {
			if err := db.AppendFast(id, ts, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		res, err := db.QueryWorkers(ctx, workers, 0, 1000, labels.MustEqual("metric", "cpu"))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%d workers: err = %v (res %d series), want context.Canceled", workers, err, len(res))
		}
	}
}

// readFailStore wraps a cloud.Store and fails reads once armed.
type readFailStore struct {
	cloud.Store
	fail atomic.Bool
}

func (f *readFailStore) Get(key string) ([]byte, error) {
	if f.fail.Load() {
		return nil, fmt.Errorf("injected read outage")
	}
	return f.Store.Get(key)
}

func (f *readFailStore) GetRange(key string, off, length int64) ([]byte, error) {
	if f.fail.Load() {
		return nil, fmt.Errorf("injected read outage")
	}
	return f.Store.GetRange(key, off, length)
}

// flakyStore wraps a cloud.Store and fails every Put after the first few.
type flakyStore struct {
	cloud.Store
	mu            sync.Mutex
	puts          int
	failAfterPuts int
}

func (f *flakyStore) Put(key string, data []byte) error {
	f.mu.Lock()
	f.puts++
	fail := f.puts > f.failAfterPuts
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("injected slow-tier outage")
	}
	return f.Store.Put(key, data)
}
