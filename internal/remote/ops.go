package remote

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"timeunion/internal/obs"
)

// OpsConfig configures the operational endpoints served next to the data
// API.
type OpsConfig struct {
	// Metrics backs GET /metrics (Prometheus text exposition). Nil
	// disables the endpoint (404).
	Metrics *obs.Registry
	// Debug mounts net/http/pprof under /debug/pprof/ (the tuserve -debug
	// flag); off by default so profiling endpoints are never exposed
	// unintentionally.
	Debug bool
	// SlowQueryLog, when >0, wraps the handler so queries slower than the
	// threshold dump their span tree via Logf.
	SlowQueryLog time.Duration
	// Logf receives slow-query dumps (default: discards them).
	Logf func(format string, args ...any)
}

// NewOpsHandler wraps api with the operational surface:
//
//	GET /metrics  — Prometheus text exposition of cfg.Metrics
//	GET /healthz  — 200 "ok" liveness probe
//	/debug/pprof/ — stdlib profiling endpoints, only when cfg.Debug
//
// plus (when cfg.SlowQueryLog > 0) per-query tracing: every /api/v1/query
// request carries an obs.Trace in its context, and requests exceeding the
// threshold log their span tree. HTTP request/error counters are registered
// on cfg.Metrics when present.
func NewOpsHandler(api http.Handler, cfg OpsConfig) http.Handler {
	mux := http.NewServeMux()
	if cfg.Metrics != nil {
		mux.Handle("/metrics", obs.Handler(cfg.Metrics))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if cfg.Debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", instrumentAPI(api, cfg))
	return mux
}

// instrumentAPI wraps the data API with request counters and the per-query
// trace / slow-query log.
func instrumentAPI(api http.Handler, cfg OpsConfig) http.Handler {
	var requests, errors *obs.Counter
	if cfg.Metrics != nil {
		requests = cfg.Metrics.Counter("timeunion_http_requests_total", "", "Data-API HTTP requests served.")
		errors = cfg.Metrics.Counter("timeunion_http_errors_total", "", "Data-API HTTP requests answered with status >= 400.")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if cfg.SlowQueryLog > 0 && r.URL.Path == "/api/v1/query" {
			tr := obs.NewTrace(r.URL.Path)
			api.ServeHTTP(sw, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
			tr.Finish()
			if tr.Duration() >= cfg.SlowQueryLog {
				logf("slow query (%s >= %s):\n%s", tr.Duration().Round(time.Microsecond), cfg.SlowQueryLog, tr.Render())
			}
		} else {
			api.ServeHTTP(sw, r)
		}
		if sw.status >= 400 {
			errors.Inc()
		}
	})
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
