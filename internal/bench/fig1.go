package bench

import (
	"fmt"

	"timeunion/internal/cloud"
)

// Fig1 regenerates Figure 1: cloud storage pricing (1a), write latency vs
// size for both tiers (1b), and read latency vs size (1c). The latencies
// come from driving the simulated stores and reading back their modelled
// time, which is how the rest of the harness costs storage too.
func Fig1(cfg Config) (*Report, error) {
	r := newReport("fig1", "Cloud storage comparison (pricing, write, read)")

	// 1a: pricing per GB-month.
	r.Header = []string{"panel", "item", "value"}
	r.addRow("1a", "S3 $/GB-month", fmt.Sprintf("%.3f", cloud.PriceS3PerGBMonth))
	r.addRow("1a", "EBS $/GB-month", fmt.Sprintf("%.3f", cloud.PriceEBSPerGBMonth))
	r.addRow("1a", "RAM $/GB-month (est.)", fmt.Sprintf("%.1f", cloud.PriceRAMPerGBMonth))
	r.Values["price:ebs/s3"] = cloud.PriceEBSPerGBMonth / cloud.PriceS3PerGBMonth
	r.Values["price:ram/ebs"] = cloud.PriceRAMPerGBMonth / cloud.PriceEBSPerGBMonth

	ebs := cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0))
	s3 := cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0))

	measureWrite := func(s *cloud.MemStore, size int) float64 {
		s.ResetStats()
		if err := s.Put("w", make([]byte, size)); err != nil {
			return 0
		}
		return s.Stats().SimWriteTime.Seconds() * 1000 // ms
	}
	measureRead := func(s *cloud.MemStore, size int) float64 {
		_ = s.Put("r", make([]byte, size))
		s.ResetStats()
		if _, err := s.Get("r"); err != nil {
			return 0
		}
		return s.Stats().SimReadTime.Seconds() * 1000
	}

	// 1b: writes 4KB..32MB.
	for _, size := range []int{4 << 10, 64 << 10, 1 << 20, 8 << 20, 32 << 20} {
		e := measureWrite(ebs, size)
		s := measureWrite(s3, size)
		r.addRow("1b", fmt.Sprintf("write %s", fmtBytes(int64(size))),
			fmt.Sprintf("EBS %.3fms  S3 %.3fms  (S3/EBS %.1fx)", e, s, s/e))
		r.Values[fmt.Sprintf("write:%d:ratio", size)] = s / e
	}
	// 1c: reads 256B..16MB.
	for _, size := range []int{256, 4 << 10, 16 << 10, 256 << 10, 1 << 20, 16 << 20} {
		e := measureRead(ebs, size)
		s := measureRead(s3, size)
		r.addRow("1c", fmt.Sprintf("read %s", fmtBytes(int64(size))),
			fmt.Sprintf("EBS %.3fms  S3 %.3fms  (S3/EBS %.1fx)", e, s, s/e))
		r.Values[fmt.Sprintf("read:%d:ratio", size)] = s / e
	}
	r.note("paper: EBS ~4x the price of S3; RAM 2 orders above EBS; small writes 3 orders faster on EBS, 3x at 32MB; reads 30x faster on average; read latency flat below 16KB")
	return r, nil
}
