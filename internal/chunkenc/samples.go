package chunkenc

import (
	"fmt"
	"sort"
)

// Sample is one decoded data point: a 64-bit timestamp and a 64-bit float
// metric value (paper §2.2).
type Sample struct {
	T int64
	V float64
}

// DecodeXORSamples fully decodes an EncXOR payload.
func DecodeXORSamples(payload []byte) ([]Sample, error) {
	it := NewXORIterator(payload)
	var out []Sample
	for it.Next() {
		t, v := it.At()
		out = append(out, Sample{T: t, V: v})
	}
	if it.Err() != nil {
		return nil, fmt.Errorf("chunkenc: decode XOR samples: %w", it.Err())
	}
	return out, nil
}

// EncodeXORSamples encodes samples (already sorted by time, deduplicated)
// into an EncXOR payload.
func EncodeXORSamples(samples []Sample) ([]byte, error) {
	c := NewXORChunk()
	for _, s := range samples {
		if err := c.Append(s.T, s.V); err != nil {
			return nil, err
		}
	}
	return c.Bytes(), nil
}

// MergeSamples merges two sorted sample runs. On duplicate timestamps the
// sample from newer wins (paper §3.3: "keep the data sample from the newest
// SSTable").
func MergeSamples(older, newer []Sample) []Sample {
	out := make([]Sample, 0, len(older)+len(newer))
	i, j := 0, 0
	for i < len(older) && j < len(newer) {
		switch {
		case older[i].T < newer[j].T:
			out = append(out, older[i])
			i++
		case older[i].T > newer[j].T:
			out = append(out, newer[j])
			j++
		default:
			out = append(out, newer[j])
			i++
			j++
		}
	}
	out = append(out, older[i:]...)
	out = append(out, newer[j:]...)
	return out
}

// GroupColumn is one member's decoded value column.
type GroupColumn struct {
	Slot   uint32
	Values []float64 // parallel to GroupData.Times
	Nulls  []bool    // true where the member had no sample
}

// GroupData is a fully decoded group tuple: a shared time column and one
// value column per member present in the tuple.
type GroupData struct {
	Times   []int64
	Columns []GroupColumn
}

// MinTime returns the first shared timestamp, or 0 for an empty tuple.
func (g *GroupData) MinTime() int64 {
	if len(g.Times) == 0 {
		return 0
	}
	return g.Times[0]
}

// MaxTime returns the last shared timestamp, or 0 for an empty tuple.
func (g *GroupData) MaxTime() int64 {
	if len(g.Times) == 0 {
		return 0
	}
	return g.Times[len(g.Times)-1]
}

// DecodeGroupData decodes a serialized group tuple into columnar form.
func DecodeGroupData(p []byte) (*GroupData, error) {
	tuple, err := DecodeGroupTuple(p)
	if err != nil {
		return nil, err
	}
	g := &GroupData{}
	tit := NewGroupTimeIterator(tuple.Time)
	for tit.Next() {
		g.Times = append(g.Times, tit.At())
	}
	if tit.Err() != nil {
		return nil, fmt.Errorf("chunkenc: decode group time column: %w", tit.Err())
	}
	for i, payload := range tuple.Values {
		col := GroupColumn{Slot: tuple.Slots[i]}
		vit := NewGroupValueIterator(payload)
		for vit.Next() {
			v, null := vit.At()
			col.Values = append(col.Values, v)
			col.Nulls = append(col.Nulls, null)
		}
		if vit.Err() != nil {
			return nil, fmt.Errorf("chunkenc: decode group value column %d: %w", tuple.Slots[i], vit.Err())
		}
		// Tolerate short columns by NULL-padding to the time column length
		// (can occur when a member joined mid-tuple upstream of encoding).
		for len(col.Values) < len(g.Times) {
			col.Values = append(col.Values, 0)
			col.Nulls = append(col.Nulls, true)
		}
		g.Columns = append(g.Columns, col)
	}
	return g, nil
}

// Encode serializes the columnar form back into a group tuple payload.
func (g *GroupData) Encode() ([]byte, error) {
	tc := NewGroupTimeChunk()
	for _, t := range g.Times {
		if err := tc.Append(t); err != nil {
			return nil, err
		}
	}
	tuple := &GroupTuple{Time: append([]byte(nil), tc.Bytes()...)}
	for _, col := range g.Columns {
		vc := NewGroupValueChunk()
		for i := range g.Times {
			if i < len(col.Nulls) && !col.Nulls[i] {
				vc.Append(col.Values[i])
			} else {
				vc.AppendNull()
			}
		}
		tuple.Slots = append(tuple.Slots, col.Slot)
		tuple.Values = append(tuple.Values, append([]byte(nil), vc.Bytes()...))
	}
	return tuple.Encode(nil), nil
}

// MergeGroupData merges two decoded group tuples over their union of
// timestamps. Members missing in either tuple are NULL-filled (paper §3.3
// out-of-order handling: "handle the inconsistency in two group chunks by
// filling NULL values to those missing timeseries"); on a timestamp present
// in both, values from newer win.
func MergeGroupData(older, newer *GroupData) *GroupData {
	// Union of timestamps.
	times := make([]int64, 0, len(older.Times)+len(newer.Times))
	times = append(times, older.Times...)
	times = append(times, newer.Times...)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	times = dedupInt64(times)

	// Index positions of each timestamp in the merged column.
	pos := make(map[int64]int, len(times))
	for i, t := range times {
		pos[t] = i
	}

	slots := make(map[uint32]*GroupColumn)
	ordered := make([]uint32, 0)
	ensure := func(slot uint32) *GroupColumn {
		if c, ok := slots[slot]; ok {
			return c
		}
		c := &GroupColumn{
			Slot:   slot,
			Values: make([]float64, len(times)),
			Nulls:  make([]bool, len(times)),
		}
		for i := range c.Nulls {
			c.Nulls[i] = true
		}
		slots[slot] = c
		ordered = append(ordered, slot)
		return c
	}
	apply := func(src *GroupData) {
		for _, col := range src.Columns {
			dst := ensure(col.Slot)
			for i, t := range src.Times {
				if i >= len(col.Nulls) || col.Nulls[i] {
					continue
				}
				p := pos[t]
				dst.Values[p] = col.Values[i]
				dst.Nulls[p] = false
			}
		}
	}
	apply(older)
	apply(newer) // newer overwrites older on shared timestamps

	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	out := &GroupData{Times: times}
	for _, slot := range ordered {
		out.Columns = append(out.Columns, *slots[slot])
	}
	return out
}

func dedupInt64(s []int64) []int64 {
	if len(s) == 0 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
