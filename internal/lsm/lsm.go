// Package lsm implements TimeUnion's elastic time-partitioned LSM-tree
// (paper §3.3). The tree keeps exactly three levels on two storage tiers:
//
//   - Level 0 and level 1 hold recent data on the fast block store. SSTables
//     are partitioned by time windows (30 minutes initially); an L0→L1
//     compaction merges the oldest L0 partition with overlapping L1
//     partitions and gathers each series' chunks contiguously.
//   - Level 2 is the only level on the slow object store. An L1→L2
//     compaction sort-merges the oldest level-1 partitions into one larger
//     partition (2 hours initially) and uploads it; because timeseries data
//     is almost entirely time-ordered, level 2 never participates in
//     ordinary compactions, which eliminates the read-merge-rewrite traffic
//     a traditional multi-level LSM pays on the slow tier (Equations 8-10).
//
// Out-of-order data lands in the time partition it belongs to: stale L0
// partitions merge with overlapping L1 partitions on the fast tier, and
// stale L1→L2 compactions append *patches* to the overlapped level-2
// SSTables, routed by each SSTable's ID range, with a split-merge once a
// table accumulates more than a threshold of patches (Figure 11).
//
// The fast-store footprint adapts to a budget by halving/doubling the
// partition lengths (Algorithm 1), with partition splitting and aligning
// during compaction (Figure 12).
package lsm

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
	"timeunion/internal/memtable"
	"timeunion/internal/obs"
	"timeunion/internal/sstable"
	"timeunion/internal/tuple"
)

// Options configures the tree. Times are in the same unit as sample
// timestamps (milliseconds in the TSBS workloads).
type Options struct {
	// Fast is the block-store tier holding levels 0 and 1.
	Fast cloud.Store
	// Slow is the object-store tier holding level 2. It may equal Fast
	// (the EBS-only configuration of Figure 17).
	Slow cloud.Store
	// Cache is the shared segment cache for slow-tier reads; may be nil.
	Cache *cloud.LRUCache

	// MemTableSize rotates the active memtable when its payload exceeds
	// this size (LevelDB uses 64 MB; scaled runs use less).
	MemTableSize int64
	// MaxImmQueue bounds the immutable memtable queue; Put blocks when
	// the queue is full (back-pressure instead of unbounded memory).
	MaxImmQueue int

	// L0PartitionLength is the initial L0/L1 time partition length R1.
	L0PartitionLength int64
	// L2PartitionLength is the initial L2 time partition length R2.
	L2PartitionLength int64
	// PartitionLengthLowerBound is Algorithm 1's LB.
	PartitionLengthLowerBound int64
	// MaxL0Partitions triggers L0→L1 compaction when exceeded (paper: 2).
	MaxL0Partitions int
	// PatchThreshold triggers an L2 split-merge when one SSTable
	// accumulates more than this many patches (paper: 3).
	PatchThreshold int
	// TargetTableSize splits compaction output tables (soft bound).
	TargetTableSize int
	// BlockSize is the SSTable data block size (default 4 KB).
	BlockSize int

	// FastLimit is the fast-store usage budget ST (0 = unlimited).
	FastLimit int64
	// DynamicSizing enables Algorithm 1.
	DynamicSizing bool

	// CompactionWorkers sizes the executor pool running compaction jobs
	// (default 2). Jobs over disjoint time intervals run concurrently,
	// each committing its own manifest edit.
	CompactionWorkers int

	// ReadOnly opens the tree as a shared-storage read replica: no flush
	// or compaction workers, no writer-side recovery (quarantine, GC,
	// fresh manifest commit), and every mutating operation returns
	// ErrReadOnly. The view is loaded from the newest committed manifest
	// pair and advanced by Refresh (DESIGN.md §4.13).
	ReadOnly bool
	// RefreshInterval, when > 0 on a ReadOnly tree, runs a background
	// loop polling the manifests and swapping the view. Zero means the
	// caller drives Refresh itself (the database layer does, so it can
	// reload the series catalog in the same beat).
	RefreshInterval time.Duration

	// OnFlush, if set, is called for every key-value pair as it is
	// persisted to level 0 — the hook the WAL uses to write flush marks.
	OnFlush func(key encoding.Key, seq uint64)

	// Metrics, when non-nil, receives the tree's instruments
	// (timeunion_lsm_*).
	Metrics *obs.Registry

	// Journal, when non-nil, receives one obs.Event per background
	// operation: flush publish, both compaction levels, retention, patch
	// merge, executor job lifecycle, manifest commit, recovery and
	// quarantine (DESIGN.md §4.12). Nil disables journaling at zero cost.
	Journal *obs.Journal
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.MemTableSize <= 0 {
		opts.MemTableSize = 4 << 20
	}
	if opts.MaxImmQueue <= 0 {
		opts.MaxImmQueue = 4
	}
	if opts.L0PartitionLength <= 0 {
		opts.L0PartitionLength = 30 * 60 * 1000 // 30 minutes
	}
	if opts.L2PartitionLength <= 0 {
		opts.L2PartitionLength = 4 * opts.L0PartitionLength
	}
	if opts.PartitionLengthLowerBound <= 0 {
		opts.PartitionLengthLowerBound = opts.L0PartitionLength / 16
		if opts.PartitionLengthLowerBound <= 0 {
			opts.PartitionLengthLowerBound = 1
		}
	}
	if opts.MaxL0Partitions <= 0 {
		opts.MaxL0Partitions = 2
	}
	if opts.PatchThreshold <= 0 {
		opts.PatchThreshold = 3
	}
	if opts.TargetTableSize <= 0 {
		opts.TargetTableSize = 2 << 20
	}
	if opts.CompactionWorkers <= 0 {
		opts.CompactionWorkers = 2
	}
	return opts
}

// tableHandle is a reference-counted open SSTable. The tree holds one
// reference; queries retain/release around reads so compaction can delete
// replaced objects without pulling them out from under a reader.
type tableHandle struct {
	tbl      *sstable.Table
	store    cloud.Store
	storeKey string
	seq      uint64 // creation sequence: larger = newer data on conflicts

	refs     atomic.Int32
	obsolete atomic.Bool
}

func newTableHandle(tbl *sstable.Table, store cloud.Store, storeKey string, seq uint64) *tableHandle {
	h := &tableHandle{tbl: tbl, store: store, storeKey: storeKey, seq: seq}
	h.refs.Store(1)
	return h
}

func (h *tableHandle) retain() { h.refs.Add(1) }

func (h *tableHandle) release() {
	if h.refs.Add(-1) == 0 && h.obsolete.Load() {
		// Best effort: a failed delete leaks an object but never breaks
		// correctness (it is no longer referenced by the tree). The delete
		// is journaled by the operation that retired the table (compaction
		// commit / retention), not by the refcount release that happens to
		// run last — which can be any query goroutine.
		//lint:ignore journalcover deferred deletion of a retired table is accounted to the compaction/retention event that retired it
		_ = h.store.Delete(h.storeKey)
	}
}

// markObsolete removes the tree's reference and deletes the object once the
// last reader finishes.
func (h *tableHandle) markObsolete() {
	h.obsolete.Store(true)
	h.release()
}

func (h *tableHandle) idRange() (uint64, uint64) {
	var lo, hi uint64
	if k, err := encoding.ParseKey(h.tbl.FirstKey()); err == nil {
		lo = k.ID()
	}
	if k, err := encoding.ParseKey(h.tbl.LastKey()); err == nil {
		hi = k.ID()
	}
	return lo, hi
}

// partition is one time partition: a half-open window [minT, maxT) and the
// SSTables whose samples it bounds.
type partition struct {
	minT, maxT int64
	tables     []*tableHandle
	// patches[i] are the patch tables appended to tables[i] (L2 only),
	// oldest first.
	patches [][]*tableHandle
}

func (p *partition) length() int64 { return p.maxT - p.minT }

func (p *partition) overlaps(minT, maxT int64) bool {
	return p.minT < maxT && minT < p.maxT
}

func (p *partition) sizeBytes() int64 {
	var n int64
	for _, t := range p.tables {
		n += t.tbl.Size()
	}
	for _, ps := range p.patches {
		for _, t := range ps {
			n += t.tbl.Size()
		}
	}
	return n
}

// Stats counts the tree's background activity.
type Stats struct {
	Flushes           uint64
	CompactionsL0L1   uint64
	CompactionsL1L2   uint64
	PatchesCreated    uint64
	PatchMerges       uint64
	PartitionsDropped uint64
	ResizeShrinks     uint64
	ResizeGrows       uint64
	// TablesQuarantined counts structurally corrupt tables (torn writes)
	// deleted during recovery; their data was never acknowledged as flushed
	// and is replayed from the WAL.
	TablesQuarantined uint64
	// ManifestCommits counts durable manifest swaps (flush, compaction,
	// retention, and the fresh pair recovery writes).
	ManifestCommits uint64
	// OrphansCollected counts objects deleted by recovery GC because no
	// manifest referenced them (stranded outputs, undeleted inputs, stale
	// manifest versions).
	OrphansCollected uint64
	// ManifestVersionFast/Slow are the current committed manifest versions.
	ManifestVersionFast uint64
	ManifestVersionSlow uint64
	// MaxParallelCompactions is the high-water mark of compaction jobs
	// observed running concurrently on the executor pool.
	MaxParallelCompactions uint64
}

// LSM is the time-partitioned tree. All public methods are safe for
// concurrent use.
type LSM struct {
	opts Options

	mu  sync.RWMutex
	mem *memtable.MemTable
	imm []*memtable.MemTable // oldest first
	l0  []*partition         // sorted by minT
	l1  []*partition
	l2  []*partition
	r1  int64 // current L0/L1 partition length
	r2  int64 // current L2 partition length

	fileSeq atomic.Uint64

	flushCond *sync.Cond // signals the flush worker
	idleCond  *sync.Cond // signals WaitIdle
	working   bool
	closed    bool
	bgErr     error

	// Manifest state. manifestMu serializes commits and is acquired BEFORE
	// l.mu (commitManifests takes l.mu.RLock for its snapshot); callers
	// never hold l.mu when committing.
	manifestMu   sync.Mutex
	pendingTombs []string // fast-table tombstones awaiting a fast commit
	mfFastVer    atomic.Uint64
	mfSlowVer    atomic.Uint64

	// Replica state (ReadOnly mode only). refreshMu serializes view swaps
	// and is acquired before l.mu, mirroring manifestMu on the writer side.
	refreshMu   sync.Mutex
	refreshStop chan struct{}

	// Executor state, all under l.mu.
	jobs       []*compactionJob
	jobCond    *sync.Cond
	busyParts  map[*partition]bool
	liveJobs   map[*compactionJob]bool
	compActive int
	workerWg   sync.WaitGroup

	stats struct {
		flushes, c01, c12, patches, patchMerges, dropped atomic.Uint64
		shrinks, grows, quarantined                      atomic.Uint64
		manifestCommits, orphans, parallelPeak           atomic.Uint64
	}

	// Instruments (nil without a registry; nil is a no-op).
	mFlush   *obs.Histogram
	mCompact *obs.Histogram
}

// Open creates an LSM, rebuilding tree metadata from the store contents
// (table placement is encoded in object key names, and per-table ID ranges
// come from the tables' own key bounds).
func Open(opts Options) (*LSM, error) {
	o := opts.withDefaults()
	if o.Fast == nil || o.Slow == nil {
		return nil, fmt.Errorf("lsm: both Fast and Slow stores are required")
	}
	l := &LSM{
		opts: o,
		mem:  memtable.New(),
		r1:   o.L0PartitionLength,
		r2:   o.L2PartitionLength,
	}
	l.flushCond = sync.NewCond(&l.mu)
	l.idleCond = sync.NewCond(&l.mu)
	l.jobCond = sync.NewCond(&l.mu)
	l.busyParts = map[*partition]bool{}
	l.liveJobs = map[*compactionJob]bool{}
	if o.ReadOnly {
		// A replica loads its initial view through the same refresh path
		// it will keep polling: no writer-side recovery, no workers. An
		// empty store (writer not started yet) is a valid empty view.
		l.registerMetrics(o.Metrics)
		if _, err := l.Refresh(); err != nil {
			return nil, err
		}
		if o.RefreshInterval > 0 {
			l.refreshStop = make(chan struct{})
			l.workerWg.Add(1)
			go l.refreshLoop(o.RefreshInterval)
		}
		return l, nil
	}
	if err := l.recoverLevels(); err != nil {
		return nil, err
	}
	l.registerMetrics(o.Metrics)
	l.workerWg.Add(1)
	go l.flushLoop()
	for i := 0; i < o.CompactionWorkers; i++ {
		l.workerWg.Add(1)
		go l.compactionWorker(i)
	}
	// A recovered tree may already satisfy compaction triggers.
	l.mu.Lock()
	l.scheduleLocked()
	l.mu.Unlock()
	return l, nil
}

// registerMetrics exposes the tree's counters and sizes on reg and installs
// the flush/compaction duration histograms.
func (l *LSM) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	l.mFlush = reg.Histogram("timeunion_lsm_flush_seconds", "", "Duration of one memtable flush to level 0.")
	l.mCompact = reg.Histogram("timeunion_lsm_compaction_seconds", "", "Duration of one compaction (L0-L1 or L1-L2).")
	reg.CounterFunc("timeunion_lsm_flushes_total", "", "Memtables flushed to level 0.",
		func() float64 { return float64(l.stats.flushes.Load()) })
	reg.CounterFunc("timeunion_lsm_compactions_total", `path="l0l1"`, "Compactions by path.",
		func() float64 { return float64(l.stats.c01.Load()) })
	reg.CounterFunc("timeunion_lsm_compactions_total", `path="l1l2"`, "Compactions by path.",
		func() float64 { return float64(l.stats.c12.Load()) })
	reg.CounterFunc("timeunion_lsm_patches_created_total", "", "Patch tables appended to L2.",
		func() float64 { return float64(l.stats.patches.Load()) })
	reg.CounterFunc("timeunion_lsm_patch_merges_total", "", "L2 split-merges triggered by the patch threshold.",
		func() float64 { return float64(l.stats.patchMerges.Load()) })
	reg.CounterFunc("timeunion_lsm_partitions_dropped_total", "", "Partitions dropped by retention.",
		func() float64 { return float64(l.stats.dropped.Load()) })
	reg.CounterFunc("timeunion_lsm_resizes_total", `direction="shrink"`, "Dynamic partition-length resizes.",
		func() float64 { return float64(l.stats.shrinks.Load()) })
	reg.CounterFunc("timeunion_lsm_resizes_total", `direction="grow"`, "Dynamic partition-length resizes.",
		func() float64 { return float64(l.stats.grows.Load()) })
	reg.CounterFunc("timeunion_lsm_tables_quarantined_total", "", "Corrupt tables quarantined during recovery.",
		func() float64 { return float64(l.stats.quarantined.Load()) })
	reg.GaugeFunc("timeunion_lsm_mem_bytes", "", "Payload buffered in active plus immutable memtables.",
		func() float64 { return float64(l.MemBytes()) })
	for lvl := 0; lvl < 3; lvl++ {
		lvl := lvl
		reg.GaugeFunc("timeunion_lsm_level_bytes", fmt.Sprintf(`level="%d"`, lvl),
			"Table bytes per level (including patches).",
			func() float64 { return float64(l.LevelSizes()[lvl]) })
	}
	reg.GaugeFunc("timeunion_lsm_partition_length_ms", `level="l0l1"`, "Current time partition length.",
		func() float64 { r1, _ := l.PartitionLengths(); return float64(r1) })
	reg.GaugeFunc("timeunion_lsm_partition_length_ms", `level="l2"`, "Current time partition length.",
		func() float64 { _, r2 := l.PartitionLengths(); return float64(r2) })
	reg.CounterFunc("timeunion_lsm_manifest_commits_total", "", "Durable manifest swaps committed.",
		func() float64 { return float64(l.stats.manifestCommits.Load()) })
	reg.CounterFunc("timeunion_lsm_manifest_orphans_collected_total", "", "Unreferenced objects deleted by recovery GC.",
		func() float64 { return float64(l.stats.orphans.Load()) })
	reg.GaugeFunc("timeunion_lsm_manifest_version", `tier="fast"`, "Current committed manifest version.",
		func() float64 { return float64(l.mfFastVer.Load()) })
	reg.GaugeFunc("timeunion_lsm_manifest_version", `tier="slow"`, "Current committed manifest version.",
		func() float64 { return float64(l.mfSlowVer.Load()) })
	reg.GaugeFunc("timeunion_lsm_compaction_queue_depth", "", "Compaction jobs queued for the executor pool.",
		func() float64 { l.mu.RLock(); defer l.mu.RUnlock(); return float64(len(l.jobs)) })
	reg.GaugeFunc("timeunion_lsm_compactions_active", "", "Compaction jobs currently running.",
		func() float64 { l.mu.RLock(); defer l.mu.RUnlock(); return float64(l.compActive) })
	reg.GaugeFunc("timeunion_lsm_compaction_parallel_peak", "", "High-water mark of concurrently running compaction jobs.",
		func() float64 { return float64(l.stats.parallelPeak.Load()) })
}

// Put inserts a serialized chunk. If the active memtable already holds
// chunks of the same series whose sample ranges overlap the incoming chunk
// (out-of-order rewrites), the incoming chunk absorbs them: they are merged
// in embedded-sequence order, so per-sample newest-wins semantics survive
// chunk-granularity storage. Chunks already resident in the memtable always
// carry smaller sequences than an incoming chunk of the same series
// (sequences follow insertion order), which makes this absorption safe.
func (l *LSM) Put(key encoding.Key, value []byte) error {
	if l.opts.ReadOnly {
		return ErrReadOnly
	}
	l.mu.Lock()
	for len(l.imm) >= l.opts.MaxImmQueue && l.bgErr == nil && !l.closed {
		// Back-pressure: wait for the worker to drain the queue.
		l.idleCond.Wait()
	}
	if l.closed {
		l.mu.Unlock()
		return fmt.Errorf("lsm: closed")
	}
	if err := l.bgErr; err != nil {
		l.mu.Unlock()
		return fmt.Errorf("lsm: background worker failed: %w", err)
	}
	key, value, err := l.absorbOverlapsLocked(key, value)
	if err != nil {
		l.mu.Unlock()
		return err
	}
	l.mem.Put(key[:], value)
	if l.mem.SizeBytes() >= l.opts.MemTableSize {
		l.rotateLocked()
	}
	l.mu.Unlock()
	return nil
}

// absorbOverlapsLocked merges the incoming chunk with every active-memtable
// chunk of the same series it overlaps (looping until the expanded range
// overlaps nothing), removing the absorbed entries.
func (l *LSM) absorbOverlapsLocked(key encoding.Key, value []byte) (encoding.Key, []byte, error) {
	id := key.ID()
	lo, hi, err := tuple.TimeRange(value)
	if err != nil {
		return key, nil, fmt.Errorf("lsm: put %v: %w", key, err)
	}
	for {
		var victims []tuple.KV
		start := encoding.MakeKey(id, math.MinInt64)
		it := l.mem.Iter(start[:], nil)
		for it.Next() {
			k, err := encoding.ParseKey(it.Key())
			if err != nil {
				return key, nil, err
			}
			if k.ID() != id || k.StartT() > hi {
				break
			}
			clo, chi, err := tuple.TimeRange(it.Value())
			if err != nil {
				return key, nil, err
			}
			_ = clo
			if chi < lo {
				continue
			}
			victims = append(victims, tuple.KV{Key: k, Value: append([]byte(nil), it.Value()...)})
		}
		if len(victims) == 0 {
			return encoding.MakeKey(id, lo), value, nil
		}
		// Resident chunks are older: merge them (oldest first), then the
		// incoming chunk last so its samples win at its own timestamps.
		sort.Slice(victims, func(i, j int) bool {
			return tuple.SeqOf(victims[i].Value) < tuple.SeqOf(victims[j].Value)
		})
		acc := victims[0].Value
		for _, v := range victims[1:] {
			if acc, err = mergeBySeq(acc, v.Value); err != nil {
				return key, nil, err
			}
		}
		if acc, err = mergeBySeq(acc, value); err != nil {
			return key, nil, err
		}
		for _, v := range victims {
			l.mem.Delete(v.Key[:])
		}
		value = acc
		if lo, hi, err = tuple.TimeRange(value); err != nil {
			return key, nil, err
		}
	}
}

// rotateLocked moves the active memtable to the immutable queue.
func (l *LSM) rotateLocked() {
	if l.mem.Len() == 0 {
		return
	}
	l.imm = append(l.imm, l.mem)
	l.mem = memtable.New()
	l.flushCond.Signal()
}

// Flush forces the active memtable into the flush pipeline and waits until
// the tree is fully idle (all flushes and triggered compactions done).
func (l *LSM) Flush() error {
	if l.opts.ReadOnly {
		return ErrReadOnly
	}
	l.mu.Lock()
	l.rotateLocked()
	l.mu.Unlock()
	return l.WaitIdle()
}

// WaitIdle blocks until the flush queue is empty and every scheduled
// compaction job has finished.
func (l *LSM) WaitIdle() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for (len(l.imm) > 0 || l.working || len(l.jobs) > 0 || l.compActive > 0) && l.bgErr == nil && !l.closed {
		l.idleCond.Wait()
	}
	return l.bgErr
}

// Close flushes pending data and stops the workers.
func (l *LSM) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.opts.ReadOnly {
		l.closed = true
		l.mu.Unlock()
		if l.refreshStop != nil {
			close(l.refreshStop)
		}
		l.workerWg.Wait()
		return nil
	}
	l.rotateLocked()
	l.mu.Unlock()
	err := l.WaitIdle()

	l.mu.Lock()
	l.closed = true
	// Abandon queued jobs (non-empty only when bgErr poisoned the tree):
	// their inputs stay live, so nothing is lost.
	for _, job := range l.jobs {
		l.finishJobLocked(job)
	}
	l.jobs = nil
	l.flushCond.Broadcast()
	l.jobCond.Broadcast()
	l.idleCond.Broadcast()
	l.mu.Unlock()
	l.workerWg.Wait()
	return err
}

// flushLoop is the flush worker: it drains the immutable-memtable queue
// and feeds the compaction scheduler after each flush.
func (l *LSM) flushLoop() {
	defer l.workerWg.Done()
	l.mu.Lock()
	for {
		for len(l.imm) == 0 && !l.closed {
			l.flushCond.Wait()
		}
		if l.closed {
			l.mu.Unlock()
			return
		}
		m := l.imm[0]
		l.working = true
		l.mu.Unlock()

		flushErr := l.flushMemtable(m)

		l.mu.Lock()
		if flushErr == nil {
			l.imm = l.imm[1:]
		}
		l.working = false
		if flushErr != nil && l.bgErr == nil {
			l.bgErr = flushErr
		}
		if l.opts.DynamicSizing {
			l.adjustPartitionLengthsLocked()
		}
		l.scheduleLocked()
		l.idleCond.Broadcast()
		if flushErr != nil {
			// The memtable stays in imm so its chunks remain readable — its
			// samples are acknowledged and may exist nowhere else until the
			// WAL replays them. The tree is poisoned (bgErr), so park until
			// Close rather than hot-looping on the same failing flush.
			for !l.closed {
				l.flushCond.Wait()
			}
			l.mu.Unlock()
			return
		}
	}
}

// nextFileSeq returns a unique, monotonically increasing file sequence.
func (l *LSM) nextFileSeq() uint64 { return l.fileSeq.Add(1) }

// tableName builds the object key for a table.
func tableName(level int, p *partition, seq uint64) string {
	return fmt.Sprintf("l%d/%020d-%020d/%016x.sst", level, uint64(p.minT)+1<<63, uint64(p.maxT)+1<<63, seq)
}

// patchName builds the object key for a patch of base table baseSeq.
func patchName(p *partition, baseSeq, seq uint64) string {
	return fmt.Sprintf("l2/%020d-%020d/%016x-p%016x.sst", uint64(p.minT)+1<<63, uint64(p.maxT)+1<<63, baseSeq, seq)
}

// flushMemtable splits an immutable memtable into time partitions and
// writes one level-0 SSTable per partition (paper §3.3: "during the flush
// of an Immutable MemTable, the key-value pairs are separated into
// different time partitions according to the timestamps contained in the
// keys").
func (l *LSM) flushMemtable(m *memtable.MemTable) (err error) {
	start := time.Now()
	var entries, tablesOut, partsOut int
	var bytesOut int64
	defer func() {
		if l.mFlush != nil {
			l.mFlush.Observe(time.Since(start))
		}
		if j := l.opts.Journal; j != nil {
			j.Emit("lsm.flush", start, err, map[string]any{
				"entries":        entries,
				"tables_out":     tablesOut,
				"partitions_out": partsOut,
				"bytes_out":      bytesOut,
				"manifest_fast":  l.mfFastVer.Load(),
			})
		}
	}()
	l.mu.RLock()
	r1 := l.r1
	l.mu.RUnlock()

	it := m.Iter(nil, nil)
	var all []tuple.KV
	var marks []tuple.KV // original kvs, for flush marks
	for it.Next() {
		key, err := encoding.ParseKey(it.Key())
		if err != nil {
			return fmt.Errorf("lsm: flush: %w", err)
		}
		val := append([]byte(nil), it.Value()...)
		marks = append(marks, tuple.KV{Key: key, Value: val})
		all = append(all, tuple.KV{Key: key, Value: val})
	}
	entries = len(all)
	byWindow, order, err := bucketByWindow(all, r1)
	if err != nil {
		return fmt.Errorf("lsm: flush split: %w", err)
	}

	// Stage every window's tables before publishing anything, so a failed
	// flush leaves no tables half-adopted (the staged ones are deleted).
	type staged struct {
		part    *partition
		handles []*tableHandle
	}
	var stagedParts []staged
	for _, ws := range order {
		part := &partition{minT: ws, maxT: ws + r1}
		handles, err := l.writeTables(l.opts.Fast, 0, part, byWindow[ws])
		if err != nil {
			for _, s := range stagedParts {
				for _, h := range s.handles {
					h.markObsolete()
				}
			}
			return err
		}
		stagedParts = append(stagedParts, staged{part, handles})
		partsOut++
		tablesOut += len(handles)
		for _, h := range handles {
			bytesOut += h.tbl.Size()
		}
	}

	l.mu.Lock()
	for _, s := range stagedParts {
		// Reuse an existing L0 partition with the same window, else insert.
		// A busy partition (input of an in-flight compaction job) cannot
		// adopt tables — the job has already snapshotted its handles and
		// will remove the partition — so a fresh same-window partition is
		// inserted alongside it instead.
		var target *partition
		for _, p := range l.l0 {
			if p.minT == s.part.minT && p.maxT == s.part.maxT && !l.busyParts[p] {
				target = p
				break
			}
		}
		if target == nil {
			l.l0 = insertPartition(l.l0, s.part)
			target = s.part
		}
		target.tables = append(target.tables, s.handles...)
	}
	l.mu.Unlock()

	// The fast-manifest swap is the flush's commit point. Flush marks (which
	// make the WAL eligible to purge these samples) fire only after it:
	// otherwise a crash would GC the uncommitted tables AND find the WAL
	// purged — data loss.
	if err := l.commitManifests(true, false, nil); err != nil {
		return err
	}

	if l.opts.OnFlush != nil {
		for _, kv := range marks {
			l.opts.OnFlush(kv.Key, tuple.SeqOf(kv.Value))
		}
	}
	l.stats.flushes.Add(1)
	return nil
}

// mergeBySeq merges two values of the same key, treating the one with the
// larger embedded sequence as newer.
func mergeBySeq(a, b []byte) ([]byte, error) {
	if tuple.SeqOf(a) <= tuple.SeqOf(b) {
		return tuple.Merge(a, b)
	}
	return tuple.Merge(b, a)
}

// writeTables writes kvs (sorted, unique keys) as one or more SSTables
// named for partition p at the given level. Output tables split at series
// boundaries when they exceed the target size, so each table covers a
// disjoint ID range (the property L2 patch routing relies on). On error
// every table this call already wrote is deleted — a failed multi-table
// write strands nothing (the crash case is covered by manifest GC).
func (l *LSM) writeTables(store cloud.Store, level int, p *partition, kvs []tuple.KV) (handles []*tableHandle, err error) {
	if len(kvs) == 0 {
		return nil, fmt.Errorf("lsm: writing empty table")
	}
	defer func() {
		if err != nil {
			for _, h := range handles {
				h.markObsolete()
			}
			handles = nil
		}
	}()
	w := sstable.NewWriter(l.opts.BlockSize)
	flushW := func() error {
		data, err := w.Finish()
		if err != nil {
			return err
		}
		seq := l.nextFileSeq()
		name := tableName(level, p, seq)
		if err := store.Put(name, data); err != nil {
			return fmt.Errorf("lsm: write table %s: %w", name, err)
		}
		tbl, err := sstable.OpenTableFromBytes(store, name, l.cacheFor(store), data)
		if err != nil {
			return fmt.Errorf("lsm: reopen table %s: %w", name, err)
		}
		handles = append(handles, newTableHandle(tbl, store, name, seq))
		return nil
	}
	var lastID uint64
	for i, kv := range kvs {
		id := kv.Key.ID()
		if i > 0 && w.EstimatedSize() >= l.opts.TargetTableSize && id != lastID {
			if err := flushW(); err != nil {
				return handles, err
			}
			w = sstable.NewWriter(l.opts.BlockSize)
		}
		if err := w.Add(kv.Key[:], kv.Value); err != nil {
			return handles, fmt.Errorf("lsm: add to table: %w", err)
		}
		lastID = id
	}
	return handles, flushW()
}

// cacheFor returns the segment cache for slow-tier tables; fast-tier reads
// skip the cache (EBS is byte-granular and cheap, §2.1).
func (l *LSM) cacheFor(store cloud.Store) *cloud.LRUCache {
	if store == l.opts.Slow && store.Tier() == cloud.TierObject {
		return l.opts.Cache
	}
	return nil
}

// insertPartition inserts p keeping the slice sorted by minT.
func insertPartition(parts []*partition, p *partition) []*partition {
	i := sort.Search(len(parts), func(i int) bool { return parts[i].minT >= p.minT })
	parts = append(parts, nil)
	copy(parts[i+1:], parts[i:])
	parts[i] = p
	return parts
}

// removePartitions removes the given partitions (by identity).
func removePartitions(parts []*partition, dead map[*partition]bool) []*partition {
	out := parts[:0]
	for _, p := range parts {
		if !dead[p] {
			out = append(out, p)
		}
	}
	return out
}

// Stats returns activity counters.
func (l *LSM) Stats() Stats {
	return Stats{
		Flushes:           l.stats.flushes.Load(),
		CompactionsL0L1:   l.stats.c01.Load(),
		CompactionsL1L2:   l.stats.c12.Load(),
		PatchesCreated:    l.stats.patches.Load(),
		PatchMerges:       l.stats.patchMerges.Load(),
		PartitionsDropped: l.stats.dropped.Load(),
		ResizeShrinks:     l.stats.shrinks.Load(),
		ResizeGrows:       l.stats.grows.Load(),
		TablesQuarantined: l.stats.quarantined.Load(),

		ManifestCommits:        l.stats.manifestCommits.Load(),
		OrphansCollected:       l.stats.orphans.Load(),
		ManifestVersionFast:    l.mfFastVer.Load(),
		ManifestVersionSlow:    l.mfSlowVer.Load(),
		MaxParallelCompactions: l.stats.parallelPeak.Load(),
	}
}

// PartitionLengths returns the current (R1, R2).
func (l *LSM) PartitionLengths() (int64, int64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.r1, l.r2
}

// LevelSizes returns the per-level table byte sizes (including patches).
func (l *LSM) LevelSizes() [3]int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out [3]int64
	for i, lvl := range [][]*partition{l.l0, l.l1, l.l2} {
		for _, p := range lvl {
			out[i] += p.sizeBytes()
		}
	}
	return out
}

// FastUsage returns the bytes levels 0 and 1 occupy on the fast tier.
func (l *LSM) FastUsage() int64 {
	s := l.LevelSizes()
	return s[0] + s[1]
}

// NumPartitions returns per-level partition counts.
func (l *LSM) NumPartitions() [3]int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return [3]int{len(l.l0), len(l.l1), len(l.l2)}
}

// MemBytes returns the payload buffered in the active and immutable
// memtables.
func (l *LSM) MemBytes() int64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	n := l.mem.SizeBytes()
	for _, m := range l.imm {
		n += m.SizeBytes()
	}
	return n
}
