package goleveldb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// TestDeepOverwriteSemantics drives many overwrite generations through deep
// compactions and verifies last-writer-wins via Get, plus Scan's seq
// ordering reconstructing the overwrite history.
func TestDeepOverwriteSemantics(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	rnd := rand.New(rand.NewSource(13))
	model := map[string]string{}
	for gen := 0; gen < 10; gen++ {
		for i := 0; i < 800; i++ {
			k := fmt.Sprintf("k%04d", rnd.Intn(800))
			// Long pseudo-random values defeat block compression so the
			// levels actually fill their size budgets.
			v := fmt.Sprintf("g%d-%d-%x%x%x%x", gen, i, rnd.Uint64(), rnd.Uint64(), rnd.Uint64(), rnd.Uint64())
			model[k] = v
			if err := db.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	st := db.Stats()
	if st.MaxDepthReached < 2 {
		t.Fatalf("compactions never went deep: depth %d", st.MaxDepthReached)
	}
	for k, want := range model {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
	// Scan: last entry per key (highest seq) equals the model.
	entries, err := db.Scan(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := map[string]string{}
	var prevKey []byte
	var prevSeq uint64
	for _, e := range entries {
		if bytes.Equal(e.Key, prevKey) && e.Seq < prevSeq {
			t.Fatal("scan seq ordering violated")
		}
		prevKey, prevSeq = e.Key, e.Seq
		last[string(e.Key)] = string(e.Value)
	}
	for k, want := range model {
		if last[k] != want {
			t.Fatalf("scan last %s = %q, want %q", k, last[k], want)
		}
	}
}

// TestLevelInvariants checks the structural invariants after heavy load:
// levels below 0 hold tables with disjoint, sorted key ranges.
func TestLevelInvariants(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	for i := 0; i < 6000; i++ {
		k := fmt.Sprintf("key-%06d", i*7919%60000)
		if err := db.Put([]byte(k), make([]byte, 30)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for lvl := 1; lvl < len(db.levels); lvl++ {
		tables := db.levels[lvl]
		for i := 1; i < len(tables); i++ {
			if bytes.Compare(tables[i-1].tbl.LastKey(), tables[i].tbl.FirstKey()) >= 0 {
				t.Fatalf("level %d tables overlap: %q vs %q",
					lvl, tables[i-1].tbl.LastKey(), tables[i].tbl.FirstKey())
			}
		}
	}
}
