package goleveldb

import (
	"bytes"
	"fmt"
	"sort"
	"time"

	"timeunion/internal/memtable"
	"timeunion/internal/sstable"
)

// backgroundLoop is the single flush/compaction worker.
func (db *DB) backgroundLoop() {
	db.mu.Lock()
	for {
		for len(db.imm) == 0 && !db.closed {
			db.flushCond.Wait()
		}
		if db.closed {
			db.mu.Unlock()
			return
		}
		m := db.imm[0]
		db.working = true
		db.mu.Unlock()

		err := db.flushMemtable(m)
		if err == nil {
			err = db.maybeCompact()
		}

		db.mu.Lock()
		db.imm = db.imm[1:]
		db.working = false
		if err != nil && db.bgErr == nil {
			db.bgErr = err
		}
		db.idleCond.Broadcast()
	}
}

func (db *DB) nextSeq() uint64 { return db.fileSeq.Add(1) }

func (db *DB) tableName(level int, seq uint64) string {
	return fmt.Sprintf("ldb/l%d/%016x.sst", level, seq)
}

// flushMemtable writes the immutable memtable as one L0 table (L0 tables
// may overlap, exactly as in LevelDB).
func (db *DB) flushMemtable(m *memtable.MemTable) error {
	w := sstable.NewWriter(db.opts.BlockSize)
	it := m.Iter(nil, nil)
	for it.Next() {
		if err := w.Add(it.Key(), it.Value()); err != nil {
			return fmt.Errorf("goleveldb: flush: %w", err)
		}
	}
	if w.NumEntries() == 0 {
		return nil
	}
	t, err := db.writeTable(0, w)
	if err != nil {
		return err
	}
	db.mu.Lock()
	db.levels[0] = append(db.levels[0], t)
	db.mu.Unlock()
	db.stats.flushes.Add(1)
	return nil
}

func (db *DB) writeTable(level int, w *sstable.Writer) (*table, error) {
	data, err := w.Finish()
	if err != nil {
		return nil, err
	}
	store := db.storeFor(level)
	seq := db.nextSeq()
	name := db.tableName(level, seq)
	if err := store.Put(name, data); err != nil {
		return nil, fmt.Errorf("goleveldb: write table: %w", err)
	}
	tbl, err := sstable.OpenTableFromBytes(store, name, db.cacheFor(store), data)
	if err != nil {
		return nil, err
	}
	t := &table{tbl: tbl, store: store, storeKey: name, seq: seq}
	t.refs.Store(1)
	return t, nil
}

// levelTarget is level n's size budget.
func (db *DB) levelTarget(n int) int64 {
	target := db.opts.BaseLevelBytes
	for i := 1; i < n; i++ {
		target *= int64(db.opts.Multiplier)
	}
	return target
}

// maybeCompact runs level compactions until all levels are within budget.
func (db *DB) maybeCompact() error {
	for {
		db.mu.RLock()
		level := -1
		if len(db.levels[0]) >= db.opts.L0CompactionTrigger {
			level = 0
		} else {
			for n := 1; n < db.opts.MaxLevels-1; n++ {
				var size int64
				for _, t := range db.levels[n] {
					size += t.tbl.Size()
				}
				if size > db.levelTarget(n) {
					level = n
					break
				}
			}
		}
		db.mu.RUnlock()
		if level < 0 {
			return nil
		}
		if err := db.compactLevel(level); err != nil {
			return err
		}
	}
}

// compactLevel performs one classic leveled compaction: pick victims at
// the level, find every overlapping SSTable in the next level, read and
// merge them all, and write the result back to the next level (paper §2.3:
// "at least one overlapping SSTable needs to be read from the next level").
func (db *DB) compactLevel(level int) error {
	start := time.Now()
	db.mu.Lock()
	var victims []*table
	if level == 0 {
		// All L0 tables participate (they overlap each other).
		victims = append(victims, db.levels[0]...)
	} else if len(db.levels[level]) > 0 {
		// Oldest table first: simple deterministic victim selection.
		victims = append(victims, db.levels[level][0])
	}
	if len(victims) == 0 {
		db.mu.Unlock()
		return nil
	}
	lo := victims[0].tbl.FirstKey()
	hi := victims[0].tbl.LastKey()
	for _, v := range victims[1:] {
		if bytes.Compare(v.tbl.FirstKey(), lo) < 0 {
			lo = v.tbl.FirstKey()
		}
		if bytes.Compare(v.tbl.LastKey(), hi) > 0 {
			hi = v.tbl.LastKey()
		}
	}
	next := level + 1
	var overlapping []*table
	for _, t := range db.levels[next] {
		if bytes.Compare(t.tbl.LastKey(), lo) < 0 || bytes.Compare(t.tbl.FirstKey(), hi) > 0 {
			continue
		}
		overlapping = append(overlapping, t)
	}
	inputs := append(append([]*table(nil), victims...), overlapping...)
	for _, t := range inputs {
		t.retain()
	}
	db.mu.Unlock()

	// Read and merge every input, newest (largest seq) winning per key.
	type entry struct {
		key, val []byte
		seq      uint64
	}
	var entries []entry
	var firstErr error
	for _, t := range inputs {
		if firstErr != nil {
			break
		}
		it := t.tbl.Iter(nil, nil)
		for it.Next() {
			entries = append(entries, entry{
				key: append([]byte(nil), it.Key()...),
				val: append([]byte(nil), it.Value()...),
				seq: t.seq,
			})
		}
		firstErr = it.Err()
		it.Release()
	}
	if firstErr != nil {
		for _, t := range inputs {
			t.release()
		}
		return fmt.Errorf("goleveldb: compact read: %w", firstErr)
	}
	sort.Slice(entries, func(i, j int) bool {
		if c := bytes.Compare(entries[i].key, entries[j].key); c != 0 {
			return c < 0
		}
		return entries[i].seq < entries[j].seq
	})

	// Fold duplicates and write output tables split at the target size.
	var newTables []*table
	w := sstable.NewWriter(db.opts.BlockSize)
	flushW := func() error {
		if w.NumEntries() == 0 {
			return nil
		}
		t, err := db.writeTable(next, w)
		if err != nil {
			return err
		}
		newTables = append(newTables, t)
		db.stats.bytesCompacted.Add(uint64(t.tbl.Size()))
		w = sstable.NewWriter(db.opts.BlockSize)
		return nil
	}
	for i := 0; i < len(entries); {
		j := i + 1
		val := entries[i].val
		for j < len(entries) && bytes.Equal(entries[j].key, entries[i].key) {
			if db.opts.MergeValues != nil {
				merged, err := db.opts.MergeValues(val, entries[j].val)
				if err != nil {
					for _, t := range inputs {
						t.release()
					}
					return err
				}
				val = merged
			} else {
				val = entries[j].val // newer replaces older
			}
			j++
		}
		if err := w.Add(entries[i].key, val); err != nil {
			for _, t := range inputs {
				t.release()
			}
			return err
		}
		if w.EstimatedSize() >= db.opts.TargetTableSize {
			if err := flushW(); err != nil {
				for _, t := range inputs {
					t.release()
				}
				return err
			}
		}
		i = j
	}
	if err := flushW(); err != nil {
		for _, t := range inputs {
			t.release()
		}
		return err
	}
	for _, t := range inputs {
		t.release()
	}

	// Publish: remove inputs, insert outputs sorted by first key.
	db.mu.Lock()
	deadSet := map[*table]bool{}
	for _, t := range inputs {
		deadSet[t] = true
	}
	keep := func(ts []*table) []*table {
		out := ts[:0]
		for _, t := range ts {
			if !deadSet[t] {
				out = append(out, t)
			}
		}
		return out
	}
	db.levels[level] = keep(db.levels[level])
	db.levels[next] = keep(db.levels[next])
	db.levels[next] = append(db.levels[next], newTables...)
	sort.Slice(db.levels[next], func(i, j int) bool {
		return bytes.Compare(db.levels[next][i].tbl.FirstKey(), db.levels[next][j].tbl.FirstKey()) < 0
	})
	if int32(next) > db.stats.maxDepth.Load() {
		db.stats.maxDepth.Store(int32(next))
	}
	db.mu.Unlock()

	for _, t := range inputs {
		t.markObsolete()
	}
	db.stats.compactions.Add(1)
	db.stats.tablesRead.Add(uint64(len(inputs)))
	db.stats.compactionNanos.Add(int64(time.Since(start)))
	return nil
}
