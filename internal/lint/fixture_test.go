package lint

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRE extracts expectation comments of the form
//
//	// want "regexp" `regexp` ...
//
// from fixture files; each quoted pattern must be matched by exactly one
// diagnostic on that line, and every diagnostic must match a pattern.
var (
	wantRE    = regexp.MustCompile(`// want (.+)$`)
	patternRE = regexp.MustCompile("\"([^\"]*)\"|`([^`]*)`")
)

// loadFixture type-checks testdata/src/<name> as module "fix".
func loadFixture(t *testing.T, name string) (root string, pkgs []*Package) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err = NewLoader(root, "fix").Load("./...")
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	return root, pkgs
}

// collectWants scans every fixture file for want comments, keyed by
// root-relative file and line.
func collectWants(t *testing.T, root string) map[string][]string {
	t.Helper()
	wants := map[string][]string{}
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		data, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(root, p)
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			key := fmt.Sprintf("%s:%d", rel, i+1)
			for _, q := range patternRE.FindAllStringSubmatch(m[1], -1) {
				pat := q[1]
				if pat == "" {
					pat = q[2]
				}
				wants[key] = append(wants[key], pat)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// runFixtureTest loads the fixture, runs the analyzer, and diffs the
// diagnostics against the want comments.
func runFixtureTest(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	root, pkgs := loadFixture(t, fixture)
	diags := Run(root, pkgs, []*Analyzer{a})
	wants := collectWants(t, root)

	matched := map[string]int{} // want key -> patterns consumed
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		pats := wants[key]
		found := false
		for i := matched[key]; i < len(pats); i++ {
			re, err := regexp.Compile(pats[i])
			if err != nil {
				t.Fatalf("bad want pattern %q at %s: %v", pats[i], key, err)
			}
			if re.MatchString(d.Message) {
				// Consume by swapping to the front of the unconsumed
				// region so one want matches one diagnostic.
				pats[i], pats[matched[key]] = pats[matched[key]], pats[i]
				matched[key]++
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, pats := range wants {
		for i := matched[key]; i < len(pats); i++ {
			t.Errorf("missing diagnostic at %s matching %q", key, pats[i])
		}
	}
}

func TestAtomicAlign(t *testing.T)  { runFixtureTest(t, AtomicAlign, "atomicalign") }
func TestLockOrder(t *testing.T)    { runFixtureTest(t, LockOrder, "lockorder") }
func TestErrWrap(t *testing.T)      { runFixtureTest(t, ErrWrap, "errwrap") }
func TestMetricName(t *testing.T)   { runFixtureTest(t, MetricName, "metricname") }
func TestCtxFlow(t *testing.T)      { runFixtureTest(t, CtxFlow, "ctxflow") }
func TestSeekContract(t *testing.T) { runFixtureTest(t, SeekContract, "seekcontract") }
func TestAllocHot(t *testing.T)     { runFixtureTest(t, AllocHot, "allochot") }
func TestMmapEscape(t *testing.T)   { runFixtureTest(t, MmapEscape, "mmapescape") }
func TestFaultCover(t *testing.T)   { runFixtureTest(t, FaultCover, "faultcover") }
func TestLockGraph(t *testing.T)    { runFixtureTest(t, LockGraph, "lockgraph") }
func TestPoolOwn(t *testing.T)      { runFixtureTest(t, PoolOwn, "poolown") }
func TestJournalCover(t *testing.T) { runFixtureTest(t, JournalCover, "journalcover") }

// TestFixturesFailTheGate proves each fixture makes the full suite exit
// non-zero: the acceptance property `make lint` relies on.
func TestFixturesFailTheGate(t *testing.T) {
	for _, fixture := range []string{"atomicalign", "lockorder", "errwrap", "metricname", "ctxflow", "seekcontract", "allochot", "mmapescape", "faultcover", "lockgraph", "poolown", "journalcover"} {
		root, pkgs := loadFixture(t, fixture)
		if n := len(Unsuppressed(Run(root, pkgs, All()))); n == 0 {
			t.Errorf("fixture %s: full suite found no violations; the gate would pass vacuously", fixture)
		}
	}
}

// TestIgnoreDirectives pins the suppression semantics: a well-formed
// directive (own line or trailing) suppresses only its named analyzer;
// one without a reason is itself a finding and suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	root, pkgs := loadFixture(t, "ignore")
	diags := Run(root, pkgs, All())

	var suppressed, unsuppressedCtx, malformed int
	for _, d := range diags {
		switch {
		case d.Analyzer == "ctxflow" && d.Suppressed:
			suppressed++
			if d.Reason == "" {
				t.Errorf("suppressed finding lost its reason: %s", d)
			}
		case d.Analyzer == "ctxflow":
			unsuppressedCtx++
		case d.Analyzer == "lint" && strings.Contains(d.Message, "malformed"):
			malformed++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if suppressed != 2 {
		t.Errorf("suppressed ctxflow findings = %d, want 2", suppressed)
	}
	// missingReason, unsuppressed, wrongAnalyzer all stay live.
	if unsuppressedCtx != 3 {
		t.Errorf("unsuppressed ctxflow findings = %d, want 3", unsuppressedCtx)
	}
	if malformed != 1 {
		t.Errorf("malformed directive findings = %d, want 1", malformed)
	}
}
