package tsdb

import (
	"sort"

	"timeunion/internal/chunkenc"
	"timeunion/internal/labels"
)

// SeriesResult is one queried timeseries.
type SeriesResult struct {
	Labels  labels.Labels
	Samples []chunkenc.Sample
}

// Query evaluates tag selectors over [mint, maxt] against the head and
// every overlapping persisted block.
func (db *DB) Query(mint, maxt int64, matchers ...*labels.Matcher) ([]SeriesResult, error) {
	db.mu.Lock()
	defer db.mu.Unlock()

	bySeries := map[uint64]*SeriesResult{}

	// Head: nested-hash-table index evaluation.
	for _, id := range db.headSelectLocked(matchers) {
		s := db.series[id]
		var samples []chunkenc.Sample
		for _, payload := range s.sealed {
			ss, err := chunkenc.DecodeXORSamples(payload)
			if err != nil {
				return nil, err
			}
			samples = append(samples, ss...)
		}
		if s.chunk != nil && s.chunk.NumSamples() > 0 {
			ss, err := chunkenc.DecodeXORSamples(s.chunk.Bytes())
			if err != nil {
				return nil, err
			}
			samples = append(samples, ss...)
		}
		samples = clip(samples, mint, maxt)
		if len(samples) > 0 {
			bySeries[id] = &SeriesResult{Labels: s.lbls, Samples: samples}
		}
	}

	// Blocks: load each overlapping block's index, select, read chunks.
	for _, blk := range db.blocks {
		if blk.maxT < mint || blk.minT > maxt {
			continue
		}
		idx, err := db.loadIndexLocked(blk)
		if err != nil {
			return nil, err
		}
		for _, pos := range blockSelect(idx, matchers) {
			bs := idx.series[pos]
			var samples []chunkenc.Sample
			for _, ref := range bs.chunks {
				if ref.maxT < mint || ref.minT > maxt {
					continue
				}
				var payload []byte
				if ref.ldbKey != nil {
					p, ok, err := db.opts.SampleDB.Get(ref.ldbKey)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
					payload = p
				} else {
					p, err := db.opts.Store.GetRange(blk.chunksKey, int64(ref.off), int64(ref.length))
					if err != nil {
						return nil, err
					}
					payload = p
				}
				ss, err := chunkenc.DecodeXORSamples(payload)
				if err != nil {
					return nil, err
				}
				samples = append(samples, ss...)
			}
			samples = clip(samples, mint, maxt)
			if len(samples) == 0 {
				continue
			}
			if existing, ok := bySeries[bs.id]; ok {
				existing.Samples = append(samples, existing.Samples...)
			} else {
				bySeries[bs.id] = &SeriesResult{Labels: bs.lbls, Samples: samples}
			}
		}
	}

	out := make([]SeriesResult, 0, len(bySeries))
	for _, sr := range bySeries {
		sort.Slice(sr.Samples, func(i, j int) bool { return sr.Samples[i].T < sr.Samples[j].T })
		out = append(out, *sr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Labels.Compare(out[j].Labels) < 0 })
	return out, nil
}

// SeriesEntry is one series of a streaming query result (the baseline's
// mirror of core.SeriesEntry, so Figure 14 comparisons drive both engines
// through the same interface shape).
type SeriesEntry struct {
	Labels   labels.Labels
	Iterator chunkenc.SampleIterator
}

// SeriesSet streams a query result one series at a time.
type SeriesSet interface {
	Next() bool
	At() SeriesEntry
	Err() error
}

// QuerySeriesSet exposes Query through the streaming SeriesSet interface.
// The baseline engine has no lazy read path — results are materialized up
// front and replayed through slice iterators; only the interface is shared
// with TimeUnion's genuinely streaming implementation.
func (db *DB) QuerySeriesSet(mint, maxt int64, matchers ...*labels.Matcher) (SeriesSet, error) {
	res, err := db.Query(mint, maxt, matchers...)
	if err != nil {
		return nil, err
	}
	return &sliceSeriesSet{res: res}, nil
}

type sliceSeriesSet struct {
	res []SeriesResult
	cur SeriesEntry
}

func (s *sliceSeriesSet) Next() bool {
	if len(s.res) == 0 {
		return false
	}
	r := s.res[0]
	s.res = s.res[1:]
	s.cur = SeriesEntry{Labels: r.Labels, Iterator: chunkenc.NewSliceIterator(r.Samples)}
	return true
}

func (s *sliceSeriesSet) At() SeriesEntry { return s.cur }

func (s *sliceSeriesSet) Err() error { return nil }

// headSelectLocked evaluates matchers against the nested hash tables.
func (db *DB) headSelectLocked(matchers []*labels.Matcher) []uint64 {
	var result []uint64
	started := false
	for _, m := range matchers {
		if m.Type == labels.MatchNotEqual || m.Type == labels.MatchNotRegexp {
			continue
		}
		var ids []uint64
		vals := db.index.postings[m.Name]
		if m.Type == labels.MatchEqual {
			ids = append(ids, vals[m.Value]...)
		} else {
			for v, list := range vals {
				if m.Matches(v) {
					ids = append(ids, list...)
				}
			}
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		ids = dedupIDs(ids)
		if !started {
			result = ids
			started = true
		} else {
			result = intersectIDs(result, ids)
		}
		if len(result) == 0 {
			return nil
		}
	}
	if !started {
		for id := range db.series {
			result = append(result, id)
		}
		sort.Slice(result, func(i, j int) bool { return result[i] < result[j] })
	}
	// Negative matchers filter directly against series labels.
	out := result[:0]
	for _, id := range result {
		ok := true
		for _, m := range matchers {
			if m.Type != labels.MatchNotEqual && m.Type != labels.MatchNotRegexp {
				continue
			}
			if !m.Matches(db.series[id].lbls.Get(m.Name)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	return out
}

// blockSelect evaluates matchers against a loaded block index.
func blockSelect(idx *blockIndex, matchers []*labels.Matcher) []int {
	var result []int
	started := false
	for _, m := range matchers {
		if m.Type == labels.MatchNotEqual || m.Type == labels.MatchNotRegexp {
			continue
		}
		var pos []int
		vals := idx.postings[m.Name]
		if m.Type == labels.MatchEqual {
			pos = append(pos, vals[m.Value]...)
		} else {
			for v, list := range vals {
				if m.Matches(v) {
					pos = append(pos, list...)
				}
			}
		}
		sort.Ints(pos)
		pos = dedupInts(pos)
		if !started {
			result = pos
			started = true
		} else {
			result = intersectInts(result, pos)
		}
		if len(result) == 0 {
			return nil
		}
	}
	if !started {
		for i := range idx.series {
			result = append(result, i)
		}
	}
	out := result[:0]
	for _, p := range result {
		ok := true
		for _, m := range matchers {
			if m.Type != labels.MatchNotEqual && m.Type != labels.MatchNotRegexp {
				continue
			}
			if !m.Matches(idx.series[p].lbls.Get(m.Name)) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, p)
		}
	}
	return out
}

func clip(s []chunkenc.Sample, mint, maxt int64) []chunkenc.Sample {
	out := s[:0]
	for _, x := range s {
		if x.T >= mint && x.T <= maxt {
			out = append(out, x)
		}
	}
	return out
}

func dedupIDs(s []uint64) []uint64 {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

func dedupInts(s []int) []int {
	w := 0
	for i, v := range s {
		if i == 0 || v != s[w-1] {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

func intersectIDs(a, b []uint64) []uint64 {
	out := make([]uint64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func intersectInts(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
