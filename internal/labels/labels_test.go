package labels

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSorts(t *testing.T) {
	ls := New(Label{"z", "1"}, Label{"a", "2"}, Label{"m", "3"})
	if !sort.IsSorted(ls) {
		t.Fatalf("New did not sort: %v", ls)
	}
	if ls[0].Name != "a" || ls[2].Name != "z" {
		t.Fatalf("order wrong: %v", ls)
	}
}

func TestFromStrings(t *testing.T) {
	ls := FromStrings("metric", "cpu", "host", "h1")
	if ls.Get("metric") != "cpu" || ls.Get("host") != "h1" {
		t.Fatalf("FromStrings = %v", ls)
	}
	if ls.Get("missing") != "" {
		t.Fatal("Get(missing) != \"\"")
	}
	if !ls.Has("host") || ls.Has("nope") {
		t.Fatal("Has wrong")
	}
}

func TestFromStringsOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on odd argument count")
		}
	}()
	FromStrings("only-name")
}

func TestEqualCompare(t *testing.T) {
	a := FromStrings("a", "1", "b", "2")
	b := FromStrings("b", "2", "a", "1")
	if !a.Equal(b) {
		t.Fatal("equal sets not Equal")
	}
	c := FromStrings("a", "1", "b", "3")
	if a.Equal(c) {
		t.Fatal("different sets Equal")
	}
	if a.Compare(c) >= 0 {
		t.Fatal("a should sort before c")
	}
	if c.Compare(a) <= 0 {
		t.Fatal("c should sort after a")
	}
	d := FromStrings("a", "1")
	if d.Compare(a) >= 0 || a.Compare(d) <= 0 {
		t.Fatal("prefix should sort before longer set")
	}
}

func TestKeyUnique(t *testing.T) {
	a := FromStrings("a", "1", "b", "2")
	b := FromStrings("a", "1b", "", "2") // would collide under naive concat
	if a.Key() == b.Key() {
		t.Fatalf("key collision: %q", a.Key())
	}
}

func TestBytesRoundTrip(t *testing.T) {
	f := func(names, values []string) bool {
		n := len(names)
		if len(values) < n {
			n = len(values)
		}
		ls := make(Labels, 0, n)
		for i := 0; i < n; i++ {
			ls = append(ls, Label{Name: names[i], Value: values[i]})
		}
		sort.Sort(ls)
		enc := ls.Bytes(nil)
		dec, rest, err := DecodeLabels(enc)
		if err != nil || len(rest) != 0 {
			return false
		}
		return dec.Equal(ls)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeLabelsTruncated(t *testing.T) {
	ls := FromStrings("metric", "cpu", "host", "h1")
	enc := ls.Bytes(nil)
	for i := 0; i < len(enc); i++ {
		if _, _, err := DecodeLabels(enc[:i]); err == nil && i < len(enc) {
			// Some prefixes decode as shorter valid sets only if the count
			// byte allows it; a full-length prefix must never succeed
			// except the exact encoding.
			if i == 0 {
				continue
			}
		}
	}
	if _, _, err := DecodeLabels([]byte{0x80}); err == nil {
		t.Fatal("truncated uvarint accepted")
	}
}

func TestSplitGroup(t *testing.T) {
	full := FromStrings("region", "1", "device", "1", "metric", "cpu", "core", "0")
	group, unique := SplitGroup(full, []string{"region", "device"})
	if len(group) != 2 || group.Get("region") != "1" || group.Get("device") != "1" {
		t.Fatalf("group = %v", group)
	}
	if len(unique) != 2 || unique.Get("metric") != "cpu" || unique.Get("core") != "0" {
		t.Fatalf("unique = %v", unique)
	}
	merged := Merge(group, unique)
	if !merged.Equal(full) {
		t.Fatalf("merge(split) != full: %v", merged)
	}
}

func TestMatchers(t *testing.T) {
	eq := MustEqual("metric", "cpu")
	if !eq.Matches("cpu") || eq.Matches("disk") {
		t.Fatal("equal matcher wrong")
	}
	ne := MustMatcher(MatchNotEqual, "metric", "cpu")
	if ne.Matches("cpu") || !ne.Matches("disk") {
		t.Fatal("not-equal matcher wrong")
	}
	re := MustMatcher(MatchRegexp, "metric", "disk.*")
	if !re.Matches("disk") || !re.Matches("diskio") || re.Matches("cpu") || re.Matches("mydisk") {
		t.Fatal("regexp matcher wrong (must be anchored)")
	}
	nre := MustMatcher(MatchNotRegexp, "metric", "disk.*")
	if nre.Matches("diskio") || !nre.Matches("cpu") {
		t.Fatal("not-regexp matcher wrong")
	}
}

func TestMatcherBadRegex(t *testing.T) {
	if _, err := NewMatcher(MatchRegexp, "m", "("); err == nil {
		t.Fatal("bad regex accepted")
	}
}

func TestMatcherString(t *testing.T) {
	m := MustMatcher(MatchRegexp, "metric", "disk.*")
	if got := m.String(); got != `metric=~"disk.*"` {
		t.Fatalf("String = %s", got)
	}
}

func TestLabelsStringer(t *testing.T) {
	ls := FromStrings("b", "2", "a", "1")
	if got := ls.String(); got != `{a="1", b="2"}` {
		t.Fatalf("String = %s", got)
	}
}

func TestSizeBytes(t *testing.T) {
	ls := FromStrings("ab", "cde")
	if ls.SizeBytes() != 5 {
		t.Fatalf("SizeBytes = %d", ls.SizeBytes())
	}
}

func TestCopyIndependent(t *testing.T) {
	a := FromStrings("a", "1")
	b := a.Copy()
	b[0].Value = "2"
	if a.Get("a") != "1" {
		t.Fatal("Copy aliases original")
	}
}
