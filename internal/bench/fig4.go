package bench

import (
	"fmt"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/goleveldb"
	"timeunion/internal/labels"
	"timeunion/internal/tsdb"
)

// Fig4 regenerates Figure 4: Prometheus tsdb with LevelDB as sample
// storage. N series with 5 tags each, 12 hours of 60-second samples, into
// plain tsdb versus tsdb+LevelDB. Reported: insertion throughput,
// compaction time, bytes written to storage, and SSTables read per
// compaction.
func Fig4(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("fig4", "tsdb with LevelDB as storage",
		"engine", "insert tput", "compaction time", "bytes written", "tables/compaction")

	n := cfg.Hosts * 250 // series scale
	hour := cfg.HourMs
	series := make([]labels.Labels, n)
	for i := range series {
		series[i] = labels.FromStrings(
			"series", fmt.Sprintf("s%07d", i),
			"tag1", fmt.Sprintf("v%d", i%100),
			"tag2", fmt.Sprintf("v%d", i%10),
			"tag3", "const",
			"tag4", fmt.Sprintf("v%d", i%7),
		)
	}

	run := func(withLDB bool) (tput float64, compT time.Duration, written uint64, tablesPer float64, err error) {
		store := cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0))
		opts := tsdb.Options{
			Store:        store,
			Cache:        cloud.NewLRUCache(1 << 30),
			BlockSpan:    2 * hour,
			ChunkSamples: 120,
			MergeBlocks:  3,
		}
		var ldb *goleveldb.DB
		if withLDB {
			ldb, err = goleveldb.Open(goleveldb.Options{
				Store:               store,
				MemTableSize:        256 << 10,
				L0CompactionTrigger: 4,
				BaseLevelBytes:      1 << 20,
				Multiplier:          10,
				BlockSize:           4096,
			})
			if err != nil {
				return
			}
			defer ldb.Close()
			opts.SampleDB = ldb
		}
		var db *tsdb.DB
		db, err = tsdb.Open(opts)
		if err != nil {
			return
		}
		ids := make([]uint64, n)
		for i, ls := range series {
			ids[i], err = db.Append(ls, 0, 0)
			if err != nil {
				return
			}
		}
		interval := hour / 60
		samples := 0
		start := time.Now()
		simBefore := store.Stats().SimWriteTime + store.Stats().SimReadTime
		for t := interval; t <= 12*hour; t += interval {
			for _, id := range ids {
				if err = db.AppendFast(id, t, float64(t%89)); err != nil {
					return
				}
				samples++
			}
		}
		if err = db.Flush(); err != nil {
			return
		}
		elapsed := time.Since(start) + (store.Stats().SimWriteTime + store.Stats().SimReadTime - simBefore)
		tput = float64(samples) / elapsed.Seconds()
		written = store.Stats().BytesWritten
		if ldb != nil {
			st := ldb.Stats()
			compT = st.CompactionTime
			if st.Compactions > 0 {
				tablesPer = float64(st.TablesRead) / float64(st.Compactions)
			}
		}
		return
	}

	tput1, _, written1, _, err := run(false)
	if err != nil {
		return nil, err
	}
	tput2, compT2, written2, tables2, err := run(true)
	if err != nil {
		return nil, err
	}
	r.addRow("tsdb", fmt.Sprintf("%.0f samples/s", tput1), "-", fmtBytes(int64(written1)), "-")
	r.addRow("tsdb-LDB", fmt.Sprintf("%.0f samples/s", tput2), fmtDur(compT2),
		fmtBytes(int64(written2)), fmt.Sprintf("%.1f", tables2))
	r.Values["tput:tsdb"] = tput1
	r.Values["tput:tsdb-ldb"] = tput2
	r.Values["tput:ratio"] = tput2 / tput1
	r.Values["written:ratio"] = float64(written2) / float64(written1)
	r.Values["tables/compaction"] = tables2
	r.note("paper: integration throughput only 1.6%% lower; LevelDB writes 2.4%% more data; each compaction reads overlapping next-level SSTables (36%% more on average)")
	return r, nil
}
