// Package chunkenc is the seekcontract fixture home package: complete
// implementations are fine here, incomplete or mistyped ones are not.
package chunkenc

// Good implements the full contract: no findings.
type Good struct{}

func (g *Good) Next() bool           { return false }
func (g *Good) Seek(t int64) bool    { return false }
func (g *Good) At() (int64, float64) { return 0, 0 }
func (g *Good) Err() error           { return nil }

// MissingErr declares the contract Seek but never Err.
type MissingErr struct{}

func (m *MissingErr) Next() bool { return false }

func (m *MissingErr) Seek(t int64) bool { return false } // want "Err is missing or mismatched"

func (m *MissingErr) At() (int64, float64) { return 0, 0 }

// PartialNoSeek declares the Next/At/Err trio but no Seek.
type PartialNoSeek struct{} // want "Seek is missing or mismatched"

func (p *PartialNoSeek) Next() bool           { return false }
func (p *PartialNoSeek) At() (int64, float64) { return 0, 0 }
func (p *PartialNoSeek) Err() error           { return nil }

// WrongAt pairs a contract Seek with a mistyped At.
type WrongAt struct{}

func (w *WrongAt) Next() bool { return false }

func (w *WrongAt) Seek(t int64) bool { return false } // want "At is missing or mismatched"

func (w *WrongAt) At() (int64, int64) { return 0, 0 }
func (w *WrongAt) Err() error         { return nil }

// Unrelated shares two method names but neither the Seek nor the full
// trio, so it makes no contract claim: no findings.
type Unrelated struct{}

func (u *Unrelated) Next() bool { return false }
func (u *Unrelated) Err() error { return nil }

// Embedder inherits the whole contract from Good: embedding satisfies the
// method set, and since it declares no contract methods itself there is
// nothing to check.
type Embedder struct{ Good }

// ExtendsEmbedded overrides Seek and inherits the rest: the method set is
// still complete, so no findings.
type ExtendsEmbedded struct{ Good }

func (e *ExtendsEmbedded) Seek(t int64) bool { return true }
