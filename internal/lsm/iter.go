package lsm

import (
	"timeunion/internal/chunkenc"
	"timeunion/internal/tuple"
)

// This file is the lazy half of the streaming read path (DESIGN.md §4.8):
// ChunksFor still gathers the raw chunk list, but instead of decoding every
// payload into slices, each chunk becomes a SampleIterator that decodes
// only when the merge cursor actually reaches it. Chunks whose envelope
// time bounds fall outside the query range are skipped without any payload
// decode, and a Seek past a chunk's MaxT exhausts it undecoded.
//
// The laziness itself lives in chunkenc.LazyIterator — this file only
// supplies the open functions that construct the XOR/group-column decoders
// (and fire the decoded-bytes hook) when a chunk is first touched.

// lazySeriesChunk builds the deferred decoder for one series chunk.
// onDecode (optional) observes the payload size at the moment it is
// actually decoded — the hook behind the decoded-bytes counters.
func lazySeriesChunk(payload []byte, minT, maxT int64, onDecode func(int)) chunkenc.SampleIterator {
	return chunkenc.NewLazyIterator(minT, maxT, func() chunkenc.SampleIterator {
		if onDecode != nil {
			onDecode(len(payload))
		}
		return chunkenc.NewXORIterator(payload)
	})
}

// SeriesSources turns a rank-sorted chunk list into lazy ranked iterator
// sources for an individual series. Chunks that don't overlap [mint, maxt]
// and group tuples are dropped; an envelope decode error becomes an error
// source so the merge surfaces it. onDecode may be nil.
func SeriesSources(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) []chunkenc.RankedIterator {
	out := make([]chunkenc.RankedIterator, 0, len(chunks))
	for _, c := range chunks {
		if c.MaxT < mint || c.MinT > maxt {
			continue
		}
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			out = append(out, chunkenc.RankedIterator{Iter: chunkenc.ErrIterator(err), Rank: c.Rank})
			continue
		}
		if kind != tuple.KindSeries {
			continue
		}
		out = append(out, chunkenc.RankedIterator{
			Iter: lazySeriesChunk(payload, c.MinT, c.MaxT, onDecode),
			Rank: c.Rank,
		})
	}
	return out
}

// SeriesIterator streams an individual series' samples out of a chunk list:
// a deduplicating merge over lazy per-chunk sources, clipped to
// [mint, maxt]. The streaming replacement for SeriesSamples.
func SeriesIterator(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) chunkenc.SampleIterator {
	return chunkenc.NewRangeLimit(chunkenc.NewMergeIterator(SeriesSources(chunks, mint, maxt, onDecode)), mint, maxt)
}

// lazyGroupSlot builds the deferred decoder for one member's samples out of
// one group tuple. The tuple's structural envelope (column offsets) is
// already parsed; only the compressed time and value columns are deferred.
func lazyGroupSlot(timeCol, valCol []byte, minT, maxT int64, onDecode func(int)) chunkenc.SampleIterator {
	return chunkenc.NewLazyIterator(minT, maxT, func() chunkenc.SampleIterator {
		if onDecode != nil {
			onDecode(len(timeCol) + len(valCol))
		}
		return chunkenc.NewGroupSlotIterator(timeCol, valCol)
	})
}

// GroupSources turns a chunk list into lazy ranked iterator sources for a
// group, keyed by member slot. Tuple envelopes and the group's column
// directory are parsed eagerly (cheap, no bit decode); the compressed
// columns decode lazily. onDecode may be nil.
func GroupSources(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) (map[uint32][]chunkenc.RankedIterator, error) {
	sources := map[uint32][]chunkenc.RankedIterator{}
	for _, c := range chunks {
		if c.MaxT < mint || c.MinT > maxt {
			continue
		}
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			return nil, err
		}
		if kind != tuple.KindGroup {
			continue
		}
		gt, err := chunkenc.DecodeGroupTuple(payload)
		if err != nil {
			return nil, err
		}
		for i, slot := range gt.Slots {
			sources[slot] = append(sources[slot], chunkenc.RankedIterator{
				Iter: lazyGroupSlot(gt.Time, gt.Values[i], c.MinT, c.MaxT, onDecode),
				Rank: c.Rank,
			})
		}
	}
	return sources, nil
}

// GroupIterators streams a group's members out of a chunk list: one merged,
// range-clipped iterator per slot that appears in an overlapping chunk. The
// streaming replacement for GroupSamples.
func GroupIterators(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) (map[uint32]chunkenc.SampleIterator, error) {
	sources, err := GroupSources(chunks, mint, maxt, onDecode)
	if err != nil {
		return nil, err
	}
	out := make(map[uint32]chunkenc.SampleIterator, len(sources))
	for slot, srcs := range sources {
		out[slot] = chunkenc.NewRangeLimit(chunkenc.NewMergeIterator(srcs), mint, maxt)
	}
	return out, nil
}
