package lint

import (
	"go/ast"
	"go/types"
)

// AllocHot enforces the zero-allocation discipline of the query hot path
// (DESIGN.md §4.10): the Next/Seek/At bodies of internal/chunkenc iterators
// run once per sample per source, so a single allocation there multiplies
// into thousands per query. The bodies themselves must be allocation-free:
//
//   - no make or new
//   - no append (even a provably-no-grow append is flagged; the proof
//     belongs in a //lint:ignore reason next to it)
//   - no function literals (closures allocate their capture environment)
//
// Allocation that genuinely belongs to the hot path goes into a named
// helper (pool fetches like ChunkIterator.decode), which keeps it visible,
// testable, and out of the per-sample loop.
var AllocHot = &Analyzer{
	Name: "allochot",
	Doc:  "Next/Seek/At bodies in internal/chunkenc must not allocate (make, new, append, closures)",
	Run:  runAllocHot,
}

// hotMethods are the per-sample SampleIterator methods.
var hotMethods = map[string]bool{"Next": true, "Seek": true, "At": true}

func runAllocHot(pass *Pass) {
	if !pass.InScope("internal/chunkenc") {
		return
	}
	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if fd.Recv == nil || !hotMethods[fd.Name.Name] || fd.Body == nil {
			return false
		}
		recv := "receiver"
		if named := receiverNamed(pass, fd); named != nil {
			recv = named.Obj().Name()
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				pass.Reportf(e.Pos(), "function literal in %s.%s allocates its closure per call; hoist it out of the hot path (DESIGN.md §4.10)", recv, fd.Name.Name)
				return false // the literal's own body is not the hot path
			case *ast.CallExpr:
				if name, ok := builtinName(pass, e); ok {
					switch name {
					case "make", "new":
						pass.Reportf(e.Pos(), "%s allocates inside %s.%s; move it to a pooled helper or reuse scratch (DESIGN.md §4.10)", name, recv, fd.Name.Name)
					case "append":
						pass.Reportf(e.Pos(), "append inside %s.%s may grow its backing array per sample; reuse scratch capacity in a helper, or justify with //lint:ignore (DESIGN.md §4.10)", recv, fd.Name.Name)
					}
				}
			}
			return true
		})
		return false
	})
}

// receiverNamed resolves a method declaration's receiver named type.
func receiverNamed(pass *Pass, fd *ast.FuncDecl) *types.Named {
	obj, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return nil
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return nil
	}
	return derefNamed(sig.Recv().Type())
}

// builtinName reports whether call invokes a builtin, and which.
func builtinName(pass *Pass, call *ast.CallExpr) (string, bool) {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
		return b.Name(), true
	}
	return "", false
}
