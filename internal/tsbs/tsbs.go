// Package tsbs reimplements the DevOps workload of the Time Series
// Benchmark Suite (paper §4.2): each simulated host carries the standard 10
// host tags and exactly 101 timeseries spread over nine measurement groups
// (cpu usage, disk IO, Postgres tuples, Redis keys, ...), sampled with
// random-walk values at a fixed interval; and the eight query patterns of
// Table 2 (aggregate MAX on M metrics for H hosts every 5 minutes over a
// time range, plus lastpoint).
package tsbs

import (
	"fmt"
	"math/rand"
	"strings"

	"timeunion/internal/labels"
)

// Measurements lists the DevOps measurement groups and their field names.
// The field counts sum to 101, matching "each host contains 101 timeseries".
var Measurements = []struct {
	Name   string
	Fields []string
}{
	{"cpu", []string{
		"usage_user", "usage_system", "usage_idle", "usage_nice", "usage_iowait",
		"usage_irq", "usage_softirq", "usage_steal", "usage_guest", "usage_guest_nice",
	}},
	{"diskio", []string{
		"reads", "writes", "read_bytes", "write_bytes", "read_time", "write_time", "io_time",
	}},
	{"disk", []string{
		"total", "free", "used", "used_percent", "inodes_total", "inodes_free", "inodes_used",
	}},
	{"kernel", []string{
		"boot_time", "interrupts", "context_switches", "processes_forked", "disk_pages_in",
	}},
	{"mem", []string{
		"total", "available", "used", "free", "cached", "buffered",
		"used_percent", "available_percent", "buffered_percent",
	}},
	{"net", []string{
		"bytes_sent", "bytes_recv", "packets_sent", "packets_recv", "err_in", "err_out", "drop_in",
	}},
	{"nginx", []string{
		"accepts", "active", "handled", "reading", "requests", "waiting", "writing",
	}},
	{"postgresl", []string{
		"numbackends", "xact_commit", "xact_rollback", "blks_read", "blks_hit",
		"tup_returned", "tup_fetched", "tup_inserted", "tup_updated", "tup_deleted",
		"conflicts", "temp_files", "temp_bytes", "deadlocks",
	}},
	{"redis", []string{
		"uptime_in_seconds", "total_connections_received", "expired_keys", "evicted_keys",
		"keyspace_hits", "keyspace_misses", "instantaneous_ops_per_sec", "instantaneous_input_kbps",
		"instantaneous_output_kbps", "connected_clients", "used_memory", "used_memory_rss",
		"used_memory_peak", "used_memory_lua", "rdb_changes_since_last_save", "sync_full",
		"sync_partial_ok", "sync_partial_err", "pubsub_channels", "pubsub_patterns",
		"latest_fork_usec", "connected_slaves", "master_repl_offset", "repl_backlog_active",
		"repl_backlog_size", "repl_backlog_histlen", "mem_fragmentation_ratio", "used_cpu_sys",
		"used_cpu_user", "used_cpu_sys_children", "used_cpu_user_children", "blocked_clients",
		"loading", "rdb_bgsave_in_progress", "aof_rewrite_in_progress",
	}},
}

// SeriesPerHost is the number of timeseries one host produces.
const SeriesPerHost = 101

var regions = []string{"us-west-1", "us-east-1", "eu-west-1", "ap-northeast-1"}
var archs = []string{"x64", "x86"}
var oses = []string{"Ubuntu16.04LTS", "Ubuntu16.10", "Ubuntu15.10"}
var services = []string{"6", "11", "18", "2", "9"}
var teams = []string{"SF", "NYC", "LON", "CHI"}
var envs = []string{"production", "staging", "test"}

// Host is one simulated DevOps host.
type Host struct {
	ID   int
	Tags labels.Labels // the 10 standard TSBS host tags
}

// Hostname returns the host's hostname tag value.
func (h Host) Hostname() string { return h.Tags.Get("hostname") }

// SeriesTags returns the unique (non-host) tags of the i-th timeseries of a
// host: its measurement and field.
func SeriesTags(i int) labels.Labels {
	m, f := metricAt(i)
	return labels.FromStrings("measurement", m, "field", f)
}

// SeriesLabels returns the full tag set of the i-th timeseries of host h
// (host tags + measurement + field), the individual-model identifier.
func (h Host) SeriesLabels(i int) labels.Labels {
	return labels.Merge(h.Tags, SeriesTags(i))
}

func metricAt(i int) (measurement, field string) {
	for _, m := range Measurements {
		if i < len(m.Fields) {
			return m.Name, m.Fields[i]
		}
		i -= len(m.Fields)
	}
	panic(fmt.Sprintf("tsbs: metric index %d out of range", i))
}

// MetricIndex returns the series index of measurement/field, or -1.
func MetricIndex(measurement, field string) int {
	idx := 0
	for _, m := range Measurements {
		for _, f := range m.Fields {
			if m.Name == measurement && f == field {
				return idx
			}
			idx++
		}
	}
	return -1
}

// Hosts generates n deterministic hosts.
func Hosts(n int, seed int64) []Host {
	rnd := rand.New(rand.NewSource(seed))
	hosts := make([]Host, n)
	for i := range hosts {
		region := regions[rnd.Intn(len(regions))]
		hosts[i] = Host{
			ID: i,
			Tags: labels.FromStrings(
				"hostname", fmt.Sprintf("host_%d", i),
				"region", region,
				"datacenter", fmt.Sprintf("%s%c", region, 'a'+byte(rnd.Intn(3))),
				"rack", fmt.Sprintf("%d", rnd.Intn(100)),
				"os", oses[rnd.Intn(len(oses))],
				"arch", archs[rnd.Intn(len(archs))],
				"team", teams[rnd.Intn(len(teams))],
				"service", services[rnd.Intn(len(services))],
				"service_version", fmt.Sprintf("%d", rnd.Intn(2)),
				"service_environment", envs[rnd.Intn(len(envs))],
			),
		}
	}
	return hosts
}

// Generator produces rounds of samples: at every interval each host emits
// one value per timeseries (random walks, like TSBS's simulators).
type Generator struct {
	HostList []Host
	Interval int64 // ms between rounds
	Start    int64 // first round timestamp

	rnd   *rand.Rand
	state [][]float64 // per host, per series random-walk state
	round int
}

// NewGenerator creates a generator for the given hosts.
func NewGenerator(hosts []Host, start, interval int64, seed int64) *Generator {
	g := &Generator{
		HostList: hosts,
		Interval: interval,
		Start:    start,
		rnd:      rand.New(rand.NewSource(seed)),
		state:    make([][]float64, len(hosts)),
	}
	for i := range g.state {
		g.state[i] = make([]float64, SeriesPerHost)
		for j := range g.state[i] {
			if fieldClasses[j] == classGauge {
				g.state[i][j] = g.rnd.Float64() * 100
			} else {
				g.state[i][j] = float64(g.rnd.Intn(1 << 20))
			}
		}
	}
	return g
}

// fieldClass distinguishes how a metric evolves, like TSBS's per-field
// simulators: constants (disk totals, boot time) never change, counters
// (reads, packets, tuples) increase monotonically by integer steps, and
// gauges random-walk in [0,100]. The mix matters for compression ratios:
// Gorilla stores an unchanged value in one bit.
type fieldClass int

const (
	classGauge fieldClass = iota
	classConstant
	classCounter
)

var fieldClasses = buildFieldClasses()

func buildFieldClasses() []fieldClass {
	out := make([]fieldClass, 0, SeriesPerHost)
	for _, m := range Measurements {
		for _, f := range m.Fields {
			switch {
			case strings.Contains(f, "total") || strings.Contains(f, "boot") ||
				strings.Contains(f, "size") || f == "loading":
				out = append(out, classConstant)
			case strings.HasPrefix(f, "reads") || strings.HasPrefix(f, "writes") ||
				strings.HasPrefix(f, "packets") || strings.HasPrefix(f, "bytes") ||
				strings.HasPrefix(f, "tup_") || strings.HasPrefix(f, "xact_") ||
				strings.HasPrefix(f, "blks_") || strings.Contains(f, "_keys") ||
				strings.Contains(f, "interrupts") || strings.Contains(f, "switches") ||
				strings.Contains(f, "uptime") || strings.Contains(f, "accepts") ||
				strings.Contains(f, "handled") || strings.Contains(f, "requests"):
				out = append(out, classCounter)
			default:
				out = append(out, classGauge)
			}
		}
	}
	return out
}

// Round emits the next timestamp and per-host, per-series values. The
// returned slices are reused across calls.
func (g *Generator) Round() (int64, [][]float64) {
	t := g.Start + int64(g.round)*g.Interval
	g.round++
	for hi := range g.state {
		for si := range g.state[hi] {
			switch fieldClasses[si] {
			case classConstant:
				// unchanged
			case classCounter:
				g.state[hi][si] += float64(g.rnd.Intn(50))
			default:
				v := g.state[hi][si] + g.rnd.NormFloat64()
				if v < 0 {
					v = 0
				}
				if v > 100 {
					v = 100
				}
				g.state[hi][si] = v
			}
		}
	}
	return t, g.state
}

// NumRounds returns how many rounds cover the given duration.
func (g *Generator) NumRounds(duration int64) int {
	return int(duration / g.Interval)
}

// Pattern is one Table 2 query pattern: aggregate (MAX) on Metrics CPU
// metrics for Hosts hosts, every 5 minutes, over Hours hours. Hours == -1
// means the whole time span ("1-1-all"); LastPoint selects only the last
// reading.
type Pattern struct {
	Name      string
	Metrics   int
	Hosts     int
	Hours     int
	LastPoint bool
}

// Patterns are the Table 2 query patterns plus the two whole-span patterns
// added for the big-timeseries evaluation (Figure 15).
var Patterns = []Pattern{
	{Name: "1-1-1", Metrics: 1, Hosts: 1, Hours: 1},
	{Name: "1-1-24", Metrics: 1, Hosts: 1, Hours: 24},
	{Name: "1-8-1", Metrics: 1, Hosts: 8, Hours: 1},
	{Name: "5-1-1", Metrics: 5, Hosts: 1, Hours: 1},
	{Name: "5-1-24", Metrics: 5, Hosts: 1, Hours: 24},
	{Name: "5-8-1", Metrics: 5, Hosts: 8, Hours: 1},
	{Name: "lastpoint", Metrics: 1, Hosts: 1, Hours: 1, LastPoint: true},
}

// ExtendedPatterns adds the whole-span patterns of Figure 15.
var ExtendedPatterns = append(append([]Pattern(nil), Patterns...),
	Pattern{Name: "1-1-all", Metrics: 1, Hosts: 1, Hours: -1},
	Pattern{Name: "5-1-all", Metrics: 5, Hosts: 1, Hours: -1},
)

// PatternByName finds a pattern.
func PatternByName(name string) (Pattern, bool) {
	for _, p := range ExtendedPatterns {
		if p.Name == name {
			return p, true
		}
	}
	return Pattern{}, false
}

// Query is a concrete instantiation of a pattern against a dataset.
type Query struct {
	Pattern  Pattern
	Matchers []*labels.Matcher
	MinT     int64
	MaxT     int64
	WindowMs int64 // aggregation window (5 minutes scaled)
}

// QueryEnv describes the dataset a query runs against.
type QueryEnv struct {
	Hosts   []Host
	DataMin int64
	DataMax int64
	// HourMs is the scaled length of one "hour" (real TSBS uses 3600000).
	HourMs int64
}

// MakeQuery instantiates a pattern with random hosts/metrics, like the TSBS
// query generator.
func MakeQuery(p Pattern, env QueryEnv, rnd *rand.Rand) Query {
	cpu := Measurements[0]
	nm := p.Metrics
	if nm > len(cpu.Fields) {
		nm = len(cpu.Fields)
	}
	fields := append([]string(nil), cpu.Fields...)
	rnd.Shuffle(len(fields), func(i, j int) { fields[i], fields[j] = fields[j], fields[i] })
	fields = fields[:nm]

	nh := p.Hosts
	if nh > len(env.Hosts) {
		nh = len(env.Hosts)
	}
	hostIdx := rnd.Perm(len(env.Hosts))[:nh]
	hostnames := make([]string, nh)
	for i, hi := range hostIdx {
		hostnames[i] = env.Hosts[hi].Hostname()
	}

	q := Query{Pattern: p, WindowMs: env.HourMs / 12} // 5 minutes
	q.Matchers = append(q.Matchers, labels.MustEqual("measurement", "cpu"))
	if nm == 1 {
		q.Matchers = append(q.Matchers, labels.MustEqual("field", fields[0]))
	} else {
		q.Matchers = append(q.Matchers, labels.MustMatcher(labels.MatchRegexp, "field", strings.Join(escapeAll(fields), "|")))
	}
	if nh == 1 {
		q.Matchers = append(q.Matchers, labels.MustEqual("hostname", hostnames[0]))
	} else {
		q.Matchers = append(q.Matchers, labels.MustMatcher(labels.MatchRegexp, "hostname", strings.Join(escapeAll(hostnames), "|")))
	}

	switch {
	case p.LastPoint:
		// The last reading: a short range ending at the newest data.
		q.MinT = env.DataMax - q.WindowMs
		q.MaxT = env.DataMax
	case p.Hours < 0:
		q.MinT = env.DataMin
		q.MaxT = env.DataMax
	default:
		span := int64(p.Hours) * env.HourMs
		if span > env.DataMax-env.DataMin {
			span = env.DataMax - env.DataMin
		}
		// TSBS picks a random window; recent-data patterns (1 hour) end at
		// the newest data, long ranges cover the tail of the span.
		q.MaxT = env.DataMax
		q.MinT = q.MaxT - span
	}
	return q
}

func escapeAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s // TSBS names contain no regex metacharacters
	}
	return out
}

// AggPoint is one aggregated output row.
type AggPoint struct {
	WindowStart int64
	Max         float64
}

// AggregateMax computes the MAX of samples per window (the Table 2
// "aggregate (MAX) every 5 mins" operator). Samples must be sorted.
func AggregateMax(ts []int64, vs []float64, mint, maxt, window int64) []AggPoint {
	if window <= 0 {
		window = 1
	}
	var out []AggPoint
	var cur *AggPoint
	for i, t := range ts {
		if t < mint || t > maxt {
			continue
		}
		ws := ((t - mint) / window) * window
		if cur == nil || cur.WindowStart != ws {
			out = append(out, AggPoint{WindowStart: ws, Max: vs[i]})
			cur = &out[len(out)-1]
			continue
		}
		if vs[i] > cur.Max {
			cur.Max = vs[i]
		}
	}
	return out
}
