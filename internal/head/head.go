// Package head implements TimeUnion's in-memory layer (paper §3.1-3.2):
// the memory objects of individual timeseries and timeseries groups, the
// small (32-sample) in-flight compressed chunks stored in memory-mapped
// file arrays, the single global inverted index, and the per-series
// sequence IDs that drive the logging scheme.
//
// The head does not own the LSM-tree: finished chunks are handed to a
// ChunkSink (wired to lsm.Put by the database layer), which keeps the two
// halves independently testable.
package head

import (
	"fmt"
	"sync"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/index"
	"timeunion/internal/labels"
	"timeunion/internal/tuple"
	"timeunion/internal/wal"
	"timeunion/internal/xmmap"
)

// ChunkSink receives a finished chunk for persistence.
type ChunkSink func(key encoding.Key, value []byte) error

// Options configures the head.
type Options struct {
	// ChunkSamples is the number of samples batched per in-memory chunk
	// before flushing to the LSM (paper: 32; adjustable for the
	// compression-vs-memory trade-off, §3.2).
	ChunkSamples int
	// Dir holds the mmap region files for the index trie and chunk
	// arrays; empty means heap-backed.
	Dir string
	// SlotSize is the fixed chunk slot size in the mmap arrays.
	SlotSize int
	// SlotsPerRegion is the slots per mmap region file.
	SlotsPerRegion int
	// WAL, if non-nil, receives definition/sample/flush-mark records.
	WAL *wal.WAL
	// Sink receives finished chunks. Required.
	Sink ChunkSink
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.ChunkSamples <= 0 {
		opts.ChunkSamples = chunkenc.DefaultChunkSamples
	}
	if opts.SlotSize <= 0 {
		opts.SlotSize = 1024
	}
	if opts.SlotsPerRegion <= 0 {
		opts.SlotsPerRegion = 4096
	}
	return opts
}

// MemSeries is the memory object of one individual timeseries: its tags,
// per-series sequence ID, and the current in-flight chunk.
type MemSeries struct {
	ID     uint64
	Labels labels.Labels

	seq   uint64
	lastT int64
	haveT bool

	chunk   *chunkenc.XORChunk
	slotRef xmmap.Ref
}

// Head is the in-memory layer. Safe for concurrent use.
type Head struct {
	opts Options

	mu         sync.RWMutex
	idx        *index.Index
	series     map[uint64]*MemSeries
	byKey      map[string]uint64
	groups     map[uint64]*MemGroup
	groupByKey map[string]uint64
	nextSeries uint64
	nextGroup  uint64

	chunkSlots     *xmmap.SlotArray // individual series chunks (Figure 9 left)
	groupTimeSlots *xmmap.SlotArray // group shared timestamp chunks
	groupValSlots  *xmmap.SlotArray // group member value chunks
}

// New creates an empty head.
func New(opts Options) (*Head, error) {
	o := opts.withDefaults()
	if o.Sink == nil {
		return nil, fmt.Errorf("head: Sink is required")
	}
	idx, err := index.New(index.Options{Dir: subdir(o.Dir, "index"), SlotsPerRegion: o.SlotsPerRegion})
	if err != nil {
		return nil, err
	}
	h := &Head{
		opts:       o,
		idx:        idx,
		series:     make(map[uint64]*MemSeries),
		byKey:      make(map[string]uint64),
		groups:     make(map[uint64]*MemGroup),
		groupByKey: make(map[string]uint64),
	}
	arrays := []struct {
		name string
		dst  **xmmap.SlotArray
	}{
		{"chunks", &h.chunkSlots},
		{"group-times", &h.groupTimeSlots},
		{"group-values", &h.groupValSlots},
	}
	for _, a := range arrays {
		sa, err := xmmap.OpenSlotArray(subdir(o.Dir, a.name), a.name, o.SlotSize, o.SlotsPerRegion)
		if err != nil {
			h.Close()
			return nil, err
		}
		// Slots persisted by a previous process are orphans: open chunks
		// are rebuilt from the WAL, which allocates fresh slots.
		sa.Reset()
		*a.dst = sa
	}
	return h, nil
}

func subdir(dir, name string) string {
	if dir == "" {
		return ""
	}
	return dir + "/" + name
}

// Close releases the index and chunk arrays.
func (h *Head) Close() error {
	var firstErr error
	if h.idx != nil {
		if err := h.idx.Close(); err != nil {
			firstErr = err
		}
	}
	for _, sa := range []*xmmap.SlotArray{h.chunkSlots, h.groupTimeSlots, h.groupValSlots} {
		if sa != nil {
			if err := sa.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Index exposes the global inverted index for query planning.
func (h *Head) Index() *index.Index { return h.idx }

// allocChunkBuf allocates a slot and returns a zero-length byte slice whose
// capacity is the slot, so the Gorilla bit writer appends straight into the
// memory-mapped area. If the slot array fails, a heap buffer keeps the
// write path alive (accounting degrades, correctness does not).
func allocChunkBuf(sa *xmmap.SlotArray) (xmmap.Ref, []byte) {
	ref, buf, err := sa.Alloc()
	if err != nil {
		return xmmap.NilRef, make([]byte, 0, sa.SlotSize())
	}
	return ref, buf[:0]
}

func freeChunkBuf(sa *xmmap.SlotArray, ref xmmap.Ref) {
	if ref != xmmap.NilRef {
		// A double free cannot happen (refs are single-owner); an error
		// here means accounting drift at worst.
		_ = sa.Free(ref)
	}
}

// Append inserts one sample for the timeseries identified by its full tag
// set (the slow-path API of §3.4), creating the series on first sight. It
// returns the series ID for subsequent fast-path appends.
func (h *Head) Append(ls labels.Labels, t int64, v float64) (uint64, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, err := h.getOrCreateLocked(ls)
	if err != nil {
		return 0, err
	}
	return s.ID, h.appendLocked(s, t, v)
}

// AppendFast inserts one sample by series ID (the fast-path API of §3.4,
// saving the tag comparison cost).
func (h *Head) AppendFast(id uint64, t int64, v float64) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	s, ok := h.series[id]
	if !ok {
		return fmt.Errorf("head: unknown series id %d", id)
	}
	return h.appendLocked(s, t, v)
}

// getOrCreateLocked finds or registers a series by tags.
func (h *Head) getOrCreateLocked(ls labels.Labels) (*MemSeries, error) {
	key := ls.Key()
	if id, ok := h.byKey[key]; ok {
		return h.series[id], nil
	}
	h.nextSeries++
	id := h.nextSeries
	s := &MemSeries{ID: id, Labels: ls.Copy()}
	if err := h.idx.Add(id, s.Labels); err != nil {
		return nil, err
	}
	h.series[id] = s
	h.byKey[key] = id
	if h.opts.WAL != nil {
		if err := h.opts.WAL.LogSeries(id, s.Labels); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// appendLocked is the individual-series write path (§3.1 physical view).
func (h *Head) appendLocked(s *MemSeries, t int64, v float64) error {
	s.seq++
	if h.opts.WAL != nil {
		if err := h.opts.WAL.LogSample(s.ID, s.seq, t, v); err != nil {
			return err
		}
	}
	return h.ingestLocked(s, t, v)
}

// ingestLocked applies a sample without logging (also used by recovery).
func (h *Head) ingestLocked(s *MemSeries, t int64, v float64) error {
	switch {
	case s.chunk == nil || s.chunk.NumSamples() == 0:
		if s.chunk == nil {
			ref, buf := allocChunkBuf(h.chunkSlots)
			s.slotRef = ref
			s.chunk = chunkenc.NewXORChunkInto(buf)
		}
		if err := s.chunk.Append(t, v); err != nil {
			return err
		}
	case t > s.chunk.MaxTime():
		if err := s.chunk.Append(t, v); err != nil {
			return err
		}
	case t >= s.chunk.MinTime():
		// Out-of-order within the open chunk (§3.1 case 4): locate the
		// slot and replace or insert by rewriting the small chunk.
		samples, err := chunkenc.DecodeXORSamples(s.chunk.Bytes())
		if err != nil {
			return err
		}
		merged := chunkenc.MergeSamples(samples, []chunkenc.Sample{{T: t, V: v}})
		h.resetSeriesChunkLocked(s)
		ref, buf := allocChunkBuf(h.chunkSlots)
		s.slotRef = ref
		s.chunk = chunkenc.NewXORChunkInto(buf)
		for _, sm := range merged {
			if err := s.chunk.Append(sm.T, sm.V); err != nil {
				return err
			}
		}
	default:
		// Older than the open chunk: early-flush a single-sample chunk
		// straight into the time-partitioned tree, which routes it to the
		// matching (possibly stale) time partition.
		enc, err := chunkenc.EncodeXORSamples([]chunkenc.Sample{{T: t, V: v}})
		if err != nil {
			return err
		}
		return h.opts.Sink(encoding.MakeKey(s.ID, t), tuple.Encode(s.seq, tuple.KindSeries, enc))
	}
	if !s.haveT || t > s.lastT {
		s.lastT = t
		s.haveT = true
	}
	if s.chunk.NumSamples() >= h.opts.ChunkSamples {
		return h.flushSeriesChunkLocked(s)
	}
	return nil
}

// flushSeriesChunkLocked serializes the full chunk, hands it to the sink,
// and cleans the mmap slot (§3.2: "when the current chunk is full, it will
// be serialized ... and the corresponding area of the mmap file will be
// cleaned").
func (h *Head) flushSeriesChunkLocked(s *MemSeries) error {
	payload := append([]byte(nil), s.chunk.Bytes()...)
	key := encoding.MakeKey(s.ID, s.chunk.MinTime())
	if err := h.opts.Sink(key, tuple.Encode(s.seq, tuple.KindSeries, payload)); err != nil {
		return err
	}
	h.resetSeriesChunkLocked(s)
	return nil
}

func (h *Head) resetSeriesChunkLocked(s *MemSeries) {
	freeChunkBuf(h.chunkSlots, s.slotRef)
	s.slotRef = xmmap.NilRef
	s.chunk = nil
}

// FlushOpenChunks force-flushes every non-empty open chunk (shutdown path;
// during normal operation chunks flush when full).
func (h *Head) FlushOpenChunks() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, s := range h.series {
		if s.chunk != nil && s.chunk.NumSamples() > 0 {
			if err := h.flushSeriesChunkLocked(s); err != nil {
				return err
			}
		}
	}
	for _, g := range h.groups {
		if g.cur != nil && g.cur.numTimes > 0 {
			if err := h.flushGroupChunkLocked(g); err != nil {
				return err
			}
		}
	}
	return nil
}

// OnChunkPersisted is the LSM flush hook: it writes the WAL flush mark for
// the chunk's embedded sequence (paper §3.3 "Logging").
func (h *Head) OnChunkPersisted(key encoding.Key, seq uint64) {
	if h.opts.WAL == nil {
		return
	}
	// Best effort: a failed mark only delays purging.
	_ = h.opts.WAL.LogFlushMark(key.ID(), seq)
}

// SeriesLabels returns the tags of a series.
func (h *Head) SeriesLabels(id uint64) (labels.Labels, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.series[id]
	if !ok {
		return nil, false
	}
	return s.Labels, true
}

// NumSeries returns the number of live individual series.
func (h *Head) NumSeries() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.series)
}

// NumGroups returns the number of live groups.
func (h *Head) NumGroups() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.groups)
}

// HeadSamples returns the open-chunk samples of a series overlapping
// [mint, maxt]. The LSM holds everything else.
func (h *Head) HeadSamples(id uint64, mint, maxt int64) ([]chunkenc.Sample, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	s, ok := h.series[id]
	if !ok || s.chunk == nil || s.chunk.NumSamples() == 0 {
		return nil, nil
	}
	all, err := chunkenc.DecodeXORSamples(s.chunk.Bytes())
	if err != nil {
		return nil, err
	}
	var out []chunkenc.Sample
	for _, sm := range all {
		if sm.T >= mint && sm.T <= maxt {
			out = append(out, sm)
		}
	}
	return out, nil
}

// HeadSeq returns the series' current sequence ID (used by tests and the
// database layer's flush bookkeeping).
func (h *Head) HeadSeq(id uint64) uint64 {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if s, ok := h.series[id]; ok {
		return s.seq
	}
	if g, ok := h.groups[id]; ok {
		return g.seq
	}
	return 0
}

// PurgeBefore removes memory objects whose newest sample is older than the
// retention watermark (§3.3 "Data retention": "we record the timestamp of
// the latest data sample for each timeseries in its memory object, and we
// will purge those objects that are older than the retention timestamp").
func (h *Head) PurgeBefore(watermark int64) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	purged := 0
	for id, s := range h.series {
		if !s.haveT || s.lastT >= watermark {
			continue
		}
		h.idx.Remove(id, s.Labels)
		h.resetSeriesChunkLocked(s)
		delete(h.series, id)
		delete(h.byKey, s.Labels.Key())
		purged++
	}
	for gid, g := range h.groups {
		if !g.haveT || g.lastT >= watermark {
			continue
		}
		h.removeGroupLocked(gid, g)
		purged++
	}
	return purged
}

// MemoryFootprint is the accounted in-memory size of the head, the
// quantity the Figure 3/16 and Table 3 experiments compare across engines.
type MemoryFootprint struct {
	IndexBytes     int64 // trie (mmap) + postings
	TagBytes       int64 // tag strings of all memory objects
	ChunkSlotBytes int64 // touched bytes of the mmap chunk arrays
	ObjectBytes    int64 // fixed per-object overhead estimate
}

// Total sums all components.
func (m MemoryFootprint) Total() int64 {
	return m.IndexBytes + m.TagBytes + m.ChunkSlotBytes + m.ObjectBytes
}

// Footprint returns the current accounting.
func (h *Head) Footprint() MemoryFootprint {
	h.mu.RLock()
	defer h.mu.RUnlock()
	var f MemoryFootprint
	st := h.idx.Stats()
	f.IndexBytes = st.SizeBytes()
	for _, s := range h.series {
		f.TagBytes += int64(s.Labels.SizeBytes())
		f.ObjectBytes += 96
	}
	for _, g := range h.groups {
		f.TagBytes += int64(g.GroupTags.SizeBytes())
		for _, m := range g.members {
			f.TagBytes += int64(m.unique.SizeBytes())
			f.ObjectBytes += 48
		}
		f.ObjectBytes += 128
	}
	f.ChunkSlotBytes = h.chunkSlots.UsedBytes() + h.groupTimeSlots.UsedBytes() + h.groupValSlots.UsedBytes()
	return f
}
