package bench

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/remote"
	"timeunion/internal/tsbs"
)

// Replica measures the shared-storage read-replica architecture
// (DESIGN.md §4.13): one writer ingests a TSBS DevOps workload and
// flushes it to the shared tiers, then query throughput is measured
// through the HTTP fan-out against 1, 2, and 4 read replicas opened on
// the same stores. The second half measures the staleness window: the
// wall-clock delay from the writer's manifest commit (Flush return) to
// the new samples becoming visible on a continuously-refreshing replica.
func Replica(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	window := cfg.SLODuration
	if window <= 0 {
		window = 2 * time.Second
	}

	t := newTiers(cfg)
	writer, err := core.Open(core.Options{
		Fast:              t.fast,
		Slow:              t.slow,
		MemTableSize:      256 << 10,
		L0PartitionLength: cfg.HourMs / 2,
		L2PartitionLength: cfg.HourMs * 2,
		CompactionWorkers: cfg.CompactionWorkers,
	})
	if err != nil {
		return nil, err
	}
	defer writer.Close()

	// Ingest: slow-path registration, then fast-path rounds (the TSBS
	// shape every engine experiment uses).
	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	ids := make([][]uint64, len(hosts))
	span := cfg.HourMs * int64(cfg.SpanHours)
	for hi, h := range hosts {
		ids[hi] = make([]uint64, tsbs.SeriesPerHost)
		for si := 0; si < tsbs.SeriesPerHost; si++ {
			id, err := writer.Append(h.SeriesLabels(si), 0, sampleVal(h.ID, si, 0))
			if err != nil {
				return nil, err
			}
			ids[hi][si] = id
		}
	}
	var maxT int64
	for ts := cfg.SampleIntervalMs; ts < span; ts += cfg.SampleIntervalMs {
		for hi, h := range hosts {
			for si, id := range ids[hi] {
				if err := writer.AppendFast(id, ts, sampleVal(h.ID, si, ts)); err != nil {
					return nil, err
				}
			}
		}
		maxT = ts
	}
	// The flush commits the manifests and republishes the catalog — the
	// handoff point replicas read from.
	if err := writer.Flush(); err != nil {
		return nil, err
	}

	r := newReport("replica", "Shared-storage read replicas",
		"replicas", "queries", "queries/s", "speedup vs 1")
	var qps1 float64
	for _, n := range []int{1, 2, 4} {
		qps, queries, err := replicaThroughput(t, cfg, hosts, maxT, n, window)
		if err != nil {
			return nil, err
		}
		if n == 1 {
			qps1 = qps
		}
		speedup := qps / qps1
		r.addRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", queries),
			fmt.Sprintf("%.0f", qps), fmt.Sprintf("%.2fx", speedup))
		r.Values[fmt.Sprintf("qps_%d", n)] = qps
		r.Values[fmt.Sprintf("speedup_%d", n)] = speedup
	}

	mean, max, rounds, err := replicaStaleness(t, cfg, writer, hosts, ids, maxT)
	if err != nil {
		return nil, err
	}
	r.Values["staleness_mean_ms"] = float64(mean.Microseconds()) / 1e3
	r.Values["staleness_max_ms"] = float64(max.Microseconds()) / 1e3
	r.note("workload: %d hosts x %d series, %d logical hours; %v query window per replica count",
		cfg.Hosts, tsbs.SeriesPerHost, cfg.SpanHours, window)
	r.note("capacity model: one in-flight query and %v service latency per replica (fleet of single-core nodes)",
		replicaServiceLatency)
	r.note("staleness (manifest commit -> replica-visible, %d rounds at 5ms refresh): mean %v, max %v",
		rounds, mean.Round(time.Microsecond), max.Round(time.Microsecond))
	r.setMetrics("TU", writer.Metrics().Snapshot())
	return r, nil
}

// replicaServiceLatency models one replica's fixed serving capacity: a
// single in-flight query with a modelled per-query service time. All the
// in-process replicas share this machine's CPU, so without a capacity
// model the measurement degenerates to single-process CPU saturation and
// says nothing about the architecture; with it, throughput is bounded by
// replicas × (1/service-time) exactly as a fleet of single-core replica
// nodes would be. The queries themselves still execute for real.
const replicaServiceLatency = 50 * time.Millisecond

// replicaGate enforces the capacity model in front of one replica server.
type replicaGate struct {
	h   http.Handler
	sem chan struct{}
}

func (g *replicaGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.sem <- struct{}{}
	defer func() { <-g.sem }()
	time.Sleep(replicaServiceLatency)
	g.h.ServeHTTP(w, r)
}

// replicaThroughput opens n replicas on the shared tiers behind HTTP
// servers and drives a closed-loop query load through the fan-out for the
// given window, returning achieved queries/second.
func replicaThroughput(t tiers, cfg Config, hosts []tsbs.Host, maxT int64, n int, window time.Duration) (float64, int, error) {
	clients := make([]*remote.Client, n)
	for i := 0; i < n; i++ {
		rep, err := core.OpenReplica(core.Options{
			Fast:                   t.fast,
			Slow:                   t.slow,
			ReplicaRefreshInterval: -1, // refreshed once below; load is static
		})
		if err != nil {
			return 0, 0, err
		}
		defer rep.Close()
		if _, err := rep.Refresh(); err != nil {
			return 0, 0, err
		}
		srv := httptest.NewServer(&replicaGate{
			h:   remote.NewServer(&remote.TimeUnionBackend{DB: rep}),
			sem: make(chan struct{}, 1),
		})
		defer srv.Close()
		clients[i] = remote.NewClient(srv.URL)
	}
	fan := remote.NewFanout(clients...)

	const workers = 8
	var (
		wg      sync.WaitGroup
		queries atomic.Int64
		failed  atomic.Int64
	)
	deadline := time.Now().Add(window)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline); i++ {
				host := hosts[i%len(hosts)]
				err := fan.QueryStream(remote.QueryRequest{
					MinT: maxT - cfg.HourMs/12, MaxT: maxT,
					Matchers: []remote.MatcherSpec{{Type: "=", Name: "hostname", Value: host.Hostname()}},
				}, func(remote.QuerySeries) error { return nil })
				if err != nil {
					failed.Add(1)
					continue
				}
				queries.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if f := failed.Load(); f > 0 {
		return 0, 0, fmt.Errorf("replica: %d fan-out queries failed", f)
	}
	q := int(queries.Load())
	return float64(q) / window.Seconds(), q, nil
}

// replicaStaleness appends fresh rounds on the writer, flushes (the
// manifest commit), and times how long a continuously-refreshing replica
// takes to serve them.
func replicaStaleness(t tiers, cfg Config, writer *core.DB, hosts []tsbs.Host, ids [][]uint64, maxT int64) (mean, max time.Duration, rounds int, err error) {
	rep, err := core.OpenReplica(core.Options{
		Fast:                   t.fast,
		Slow:                   t.slow,
		ReplicaRefreshInterval: 5 * time.Millisecond,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer rep.Close()

	probe := labels.MustEqual("hostname", hosts[0].Hostname())
	rounds = 5
	var total time.Duration
	for round := 0; round < rounds; round++ {
		ts := maxT + int64(round+1)*cfg.SampleIntervalMs
		for hi, h := range hosts {
			for si, id := range ids[hi] {
				if err := writer.AppendFast(id, ts, sampleVal(h.ID, si, ts)); err != nil {
					return 0, 0, 0, err
				}
			}
		}
		if err := writer.Flush(); err != nil {
			return 0, 0, 0, err
		}
		committed := time.Now()
		for {
			res, qerr := rep.Query(ts, ts, probe)
			if qerr != nil {
				return 0, 0, 0, qerr
			}
			if len(res) > 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
		d := time.Since(committed)
		total += d
		if d > max {
			max = d
		}
	}
	return total / time.Duration(rounds), max, rounds, nil
}

// sampleVal is a cheap deterministic value generator for the replica
// workload (the experiment measures plumbing, not compression).
func sampleVal(host, series int, ts int64) float64 {
	return float64(host*1000+series) + float64(ts%977)/977
}
