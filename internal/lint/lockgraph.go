package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockGraph enforces the module-wide lock hierarchy (DESIGN.md §4.5, §4.11,
// §4.14) that the per-package lockorder analyzer cannot see: it builds a
// lock-order graph over every package at once, so an acquisition chain that
// crosses a function call — or a package boundary, like lsm holding l.mu
// while calling into head — still produces an edge.
//
// Lock classes are mutex-typed struct fields identified by declaring
// package, type, and field ("lsm.LSM.manifestMu"). The declared hierarchy
// pins the orders the design states in prose:
//
//	manifestMu/refreshMu → l.mu → head catalog → stripe → series/group
//
// and obs.Journal.mu is a leaf: emit sites may hold any other lock, but the
// journal must never call out while holding its own. Edges are derived two
// ways: directly (class A held when class B is acquired in the same body,
// defer-aware — a deferred Unlock keeps its lock held to function end) and
// transitively (class A held at a call whose callee's summary — a fixpoint
// over the call graph — may acquire class B). Function literals run with
// their own lock state and are analyzed independently; goroutine bodies and
// go-statement callees run concurrently, so the spawner's held set never
// flows into them and their acquisitions never flow into caller summaries.
// Bare function references (callbacks) are likewise excluded from
// summaries: registration is not invocation.
//
// Violations: an edge against the declared levels, any out-edge from a
// declared leaf, and any cycle among (possibly undeclared) classes.
var LockGraph = &Analyzer{
	Name:      "lockgraph",
	Doc:       "module-wide lock acquisition order must be acyclic and respect the declared manifestMu → l.mu → stripe → series/group hierarchy",
	RunModule: runLockGraph,
}

// declaredLockLevels orders the named lock classes; a lower level is
// acquired first. Matching is by package-path suffix so fixture modules
// exercise the same table. Equal levels are multi-instance classes
// (individual series/group objects) whose mutual order is unconstrained.
var declaredLockLevels = []struct {
	pkgSuffix, typ, field string
	level                 int
	leaf                  bool
}{
	{"internal/lsm", "LSM", "manifestMu", 10, false},
	{"internal/lsm", "LSM", "refreshMu", 10, false},
	{"internal/lsm", "LSM", "mu", 20, false},
	{"internal/head", "catalog", "mu", 30, false},
	{"internal/head", "stripe", "mu", 40, false},
	{"internal/head", "MemSeries", "mu", 50, false},
	{"internal/head", "MemGroup", "mu", 50, false},
	{"internal/obs", "Journal", "mu", 90, true},
}

// lockClass identifies one mutex field; the zero value means "not a lock".
type lockClass struct {
	pkgPath, typ, field string
}

func (c lockClass) String() string {
	pkg := c.pkgPath
	if i := strings.LastIndexByte(pkg, '/'); i >= 0 {
		pkg = pkg[i+1:]
	}
	return pkg + "." + c.typ + "." + c.field
}

// declaredLevel returns (level, leaf, true) when the class is in the table.
func declaredLevel(c lockClass) (int, bool, bool) {
	for _, d := range declaredLockLevels {
		if d.typ == c.typ && d.field == c.field && pathInScope(c.pkgPath, d.pkgSuffix) {
			return d.level, d.leaf, true
		}
	}
	return 0, false, false
}

// lockEdge is one "from held while to acquired" witness.
type lockEdge struct {
	pos token.Pos
	fn  string // function the witness sits in
	via string // callee name when the acquisition is transitive
}

func runLockGraph(pass *ModulePass) {
	lg := &lockGrapher{
		pass:    pass,
		acquire: map[*Node]map[lockClass]bool{},
		calls:   map[*Node][]lockCallSite{},
		edges:   map[lockClass]map[lockClass]lockEdge{},
	}
	// Pass 1: per-function direct acquisitions, direct edges, and call
	// sites annotated with the held set.
	for _, n := range pass.Graph.Nodes() {
		if n.Decl.Body != nil {
			lg.scanBody(n, n.Decl.Body, nil, false)
		}
	}
	// Pass 2: transitive may-acquire summaries over the call graph.
	pass.Graph.Fixpoint(func(n *Node) bool {
		changed := false
		for _, e := range n.Out {
			if e.Kind == EdgeRef || e.Concurrent {
				continue
			}
			for c := range lg.acquire[e.Callee] {
				if !lg.acquire[n][c] {
					if lg.acquire[n] == nil {
						lg.acquire[n] = map[lockClass]bool{}
					}
					lg.acquire[n][c] = true
					changed = true
				}
			}
		}
		return changed
	})
	// Pass 3: held × callee-summary edges at every call site.
	for _, n := range pass.Graph.Nodes() {
		for _, site := range lg.calls[n] {
			for c := range lg.acquire[site.callee] {
				for _, h := range site.held {
					lg.addEdge(h, c, lockEdge{pos: site.pos, fn: n.Name(), via: site.callee.Name()})
				}
			}
		}
	}
	lg.report()
}

type lockCallSite struct {
	callee *Node
	held   []lockClass
	pos    token.Pos
}

type lockGrapher struct {
	pass    *ModulePass
	acquire map[*Node]map[lockClass]bool // direct, then transitive (fixpoint)
	calls   map[*Node][]lockCallSite
	edges   map[lockClass]map[lockClass]lockEdge // first witness per pair
}

func (lg *lockGrapher) addEdge(from, to lockClass, w lockEdge) {
	if from == to {
		return // same class: multi-instance locking, ordered by address/rank elsewhere
	}
	if lg.edges[from] == nil {
		lg.edges[from] = map[lockClass]lockEdge{}
	}
	if _, ok := lg.edges[from][to]; !ok {
		lg.edges[from][to] = w
	}
}

// scanBody walks one executable body, tracking held classes the way
// lockorder does (deferred unlocks pin their lock to function end), but
// branch-aware: a lock acquired in an if/case body that terminates (returns
// or breaks) is not held by the statements after it; a branch that falls
// through contributes its held set conservatively (union — may-hold).
// held is the entry state: nil for a declaration or a goroutine literal
// (which runs with its own, empty state), the enclosing snapshot is NOT
// propagated into literals because they execute at an unknown later time.
// inGo marks bodies that run on a spawned goroutine: their acquisitions are
// real edges internally but are excluded from n's summary and call sites.
func (lg *lockGrapher) scanBody(n *Node, body *ast.BlockStmt, held []lockClass, inGo bool) {
	bs := &bodyScan{lg: lg, n: n, inGo: inGo, deferred: map[*ast.CallExpr]bool{}}
	bs.scanStmts(body.List, held)
}

type bodyScan struct {
	lg       *lockGrapher
	n        *Node
	inGo     bool
	deferred map[*ast.CallExpr]bool
}

func cloneLocks(held []lockClass) []lockClass {
	return append([]lockClass(nil), held...)
}

// unionLocks merges two may-hold sets.
func unionLocks(a, b []lockClass) []lockClass {
	out := cloneLocks(a)
	for _, c := range b {
		have := false
		for _, e := range out {
			if e == c {
				have = true
				break
			}
		}
		if !have {
			out = append(out, c)
		}
	}
	return out
}

// scanStmts walks a statement list, threading the held set through and
// stopping at a terminator (return, break, continue, goto).
func (bs *bodyScan) scanStmts(stmts []ast.Stmt, held []lockClass) ([]lockClass, bool) {
	for _, s := range stmts {
		var term bool
		held, term = bs.scanStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (bs *bodyScan) scanStmt(s ast.Stmt, held []lockClass) ([]lockClass, bool) {
	switch s := s.(type) {
	case *ast.IfStmt:
		if s.Init != nil {
			held, _ = bs.scanStmt(s.Init, held)
		}
		held = bs.scanNode(s.Cond, held)
		out := held
		thenHeld, thenTerm := bs.scanStmts(s.Body.List, cloneLocks(held))
		if !thenTerm {
			out = unionLocks(out, thenHeld)
		}
		elseTerm := false
		if s.Else != nil {
			var elseHeld []lockClass
			elseHeld, elseTerm = bs.scanStmt(s.Else, cloneLocks(held))
			if !elseTerm {
				out = unionLocks(out, elseHeld)
			}
		}
		return out, thenTerm && elseTerm
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			held = bs.scanNode(r, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return bs.scanStmts(s.List, held)
	case *ast.LabeledStmt:
		return bs.scanStmt(s.Stmt, held)
	case *ast.ForStmt:
		if s.Init != nil {
			held, _ = bs.scanStmt(s.Init, held)
		}
		if s.Cond != nil {
			held = bs.scanNode(s.Cond, held)
		}
		bodyHeld, bodyTerm := bs.scanStmts(s.Body.List, cloneLocks(held))
		if !bodyTerm && s.Post != nil {
			bodyHeld, _ = bs.scanStmt(s.Post, bodyHeld)
		}
		if !bodyTerm {
			held = unionLocks(held, bodyHeld)
		}
		return held, false
	case *ast.RangeStmt:
		held = bs.scanNode(s.X, held)
		bodyHeld, bodyTerm := bs.scanStmts(s.Body.List, cloneLocks(held))
		if !bodyTerm {
			held = unionLocks(held, bodyHeld)
		}
		return held, false
	case *ast.SwitchStmt:
		if s.Init != nil {
			held, _ = bs.scanStmt(s.Init, held)
		}
		if s.Tag != nil {
			held = bs.scanNode(s.Tag, held)
		}
		return bs.scanClauses(s.Body.List, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			held, _ = bs.scanStmt(s.Init, held)
		}
		held, _ = bs.scanStmt(s.Assign, held)
		return bs.scanClauses(s.Body.List, held)
	case *ast.SelectStmt:
		return bs.scanClauses(s.Body.List, held)
	case *ast.DeferStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			bs.lg.scanBody(bs.n, lit.Body, nil, bs.inGo)
			for _, a := range s.Call.Args {
				held = bs.scanNode(a, held)
			}
			return held, false
		}
		bs.deferred[s.Call] = true
		return bs.scanNode(s.Call, held), false
	case *ast.GoStmt:
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			bs.lg.scanBody(bs.n, lit.Body, nil, true)
		}
		return held, false // concurrent: nothing held across it
	default:
		return bs.scanNode(s, held), false
	}
}

// scanClauses walks switch/select clauses as parallel branches from the
// same entry state.
func (bs *bodyScan) scanClauses(clauses []ast.Stmt, held []lockClass) ([]lockClass, bool) {
	out := held
	for _, cl := range clauses {
		branch := cloneLocks(held)
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				branch = bs.scanNode(e, branch)
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				branch, _ = bs.scanStmt(cc.Comm, branch)
			}
			body = cc.Body
		default:
			continue
		}
		clHeld, clTerm := bs.scanStmts(body, branch)
		if !clTerm {
			out = unionLocks(out, clHeld)
		}
	}
	return out, false
}

// scanNode applies lock operations and call-site recording over one
// expression or simple statement, returning the updated held set.
func (bs *bodyScan) scanNode(nd ast.Node, held []lockClass) []lockClass {
	if nd == nil {
		return held
	}
	lg, n := bs.lg, bs.n
	ast.Inspect(nd, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			lg.scanBody(n, x.Body, nil, bs.inGo)
			return false
		case *ast.GoStmt:
			if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
				lg.scanBody(n, lit.Body, nil, true)
			}
			return false // direct `go f()`: concurrent, nothing held across it
		case *ast.DeferStmt:
			bs.deferred[x.Call] = true
		case *ast.CallExpr:
			if class, method, ok := lg.lockOp(n, x); ok {
				switch method {
				case "Lock", "RLock":
					for _, h := range held {
						lg.addEdge(h, class, lockEdge{pos: x.Pos(), fn: n.Name()})
					}
					held = append(held, class)
					if !bs.inGo {
						if lg.acquire[n] == nil {
							lg.acquire[n] = map[lockClass]bool{}
						}
						lg.acquire[n][class] = true
					}
				case "Unlock", "RUnlock":
					if bs.deferred[x] {
						return true // lock stays held to function end
					}
					for i := len(held) - 1; i >= 0; i-- {
						if held[i] == class {
							held = append(held[:i], held[i+1:]...)
							break
						}
					}
				}
				return true
			}
			if len(held) > 0 && !bs.inGo {
				for _, callee := range lg.pass.Graph.Callees(x) {
					lg.calls[n] = append(lg.calls[n], lockCallSite{
						callee: callee,
						held:   cloneLocks(held),
						pos:    x.Pos(),
					})
				}
			}
		}
		return true
	})
	return held
}

// lockOp matches <expr>.<muField>.<Lock|RLock|Unlock|RUnlock>() where
// muField is a sync.Mutex or sync.RWMutex struct field, returning the
// field's lock class.
func (lg *lockGrapher) lockOp(n *Node, call *ast.CallExpr) (lockClass, string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockClass{}, "", false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, "", false
	}
	info := n.Pkg.Info
	fv, _ := info.Uses[field.Sel].(*types.Var)
	if fv == nil || !fv.IsField() || !isMutexType(fv.Type()) {
		return lockClass{}, "", false
	}
	owner := derefNamed(info.TypeOf(field.X))
	if owner == nil || owner.Obj().Pkg() == nil {
		return lockClass{}, "", false
	}
	return lockClass{pkgPath: owner.Obj().Pkg().Path(), typ: owner.Obj().Name(), field: field.Sel.Name}, method, true
}

func isMutexType(t types.Type) bool {
	named, _ := types.Unalias(t).(*types.Named)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// report turns the accumulated edge set into diagnostics: declared-order
// inversions, leaf out-edges, then cycles not already explained by an
// inversion.
func (lg *lockGrapher) report() {
	type flat struct {
		from, to lockClass
		w        lockEdge
	}
	var all []flat
	for from, tos := range lg.edges {
		for to, w := range tos {
			all = append(all, flat{from, to, w})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].w.pos != all[j].w.pos {
			return all[i].w.pos < all[j].w.pos
		}
		return all[i].to.String() < all[j].to.String()
	})

	violated := map[[2]lockClass]bool{}
	for _, e := range all {
		via := ""
		if e.w.via != "" {
			via = fmt.Sprintf(" (transitively through %s)", e.w.via)
		}
		fromLevel, fromLeaf, fromKnown := declaredLevel(e.from)
		toLevel, _, toKnown := declaredLevel(e.to)
		switch {
		case fromKnown && fromLeaf:
			violated[[2]lockClass{e.from, e.to}] = true
			lg.pass.Reportf(e.w.pos, "leaf lock %s is held in %s while %s is acquired%s; a leaf lock must never be held across another acquisition", e.from, e.w.fn, e.to, via)
		case fromKnown && toKnown && fromLevel > toLevel:
			violated[[2]lockClass{e.from, e.to}] = true
			lg.pass.Reportf(e.w.pos, "lock order violation in %s: %s (level %d) acquired while %s (level %d) is held%s; the declared hierarchy acquires %s first", e.w.fn, e.to, toLevel, e.from, fromLevel, via, e.to)
		}
	}

	// Cycle detection over the remaining graph: report each strongly
	// connected component once, unless a declared-order violation inside it
	// already told the story.
	for _, scc := range lockSCCs(lg.edges) {
		if len(scc) < 2 {
			continue
		}
		inSCC := map[lockClass]bool{}
		for _, c := range scc {
			inSCC[c] = true
		}
		explained := false
		for pair := range violated {
			if inSCC[pair[0]] && inSCC[pair[1]] {
				explained = true
				break
			}
		}
		if explained {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i].String() < scc[j].String() })
		names := make([]string, 0, len(scc))
		for _, c := range scc {
			names = append(names, c.String())
		}
		// Witness: the first recorded edge inside the component.
		var w lockEdge
		for _, e := range all {
			if inSCC[e.from] && inSCC[e.to] {
				w = e.w
				break
			}
		}
		lg.pass.Reportf(w.pos, "lock-order cycle among {%s}: these locks are acquired in both orders (witness in %s); pick one order or split the critical sections", strings.Join(names, ", "), w.fn)
	}
}

// lockSCCs computes strongly connected components of the class graph
// (iterative Tarjan).
func lockSCCs(edges map[lockClass]map[lockClass]lockEdge) [][]lockClass {
	var nodes []lockClass
	seen := map[lockClass]bool{}
	add := func(c lockClass) {
		if !seen[c] {
			seen[c] = true
			nodes = append(nodes, c)
		}
	}
	for from, tos := range edges {
		add(from)
		for to := range tos {
			add(to)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].String() < nodes[j].String() })

	index := map[lockClass]int{}
	low := map[lockClass]int{}
	onStack := map[lockClass]bool{}
	var stack []lockClass
	var sccs [][]lockClass
	next := 0

	var strongconnect func(v lockClass)
	strongconnect = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []lockClass
		for to := range edges[v] {
			succs = append(succs, to)
		}
		sort.Slice(succs, func(i, j int) bool { return succs[i].String() < succs[j].String() })
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strongconnect(v)
		}
	}
	return sccs
}
