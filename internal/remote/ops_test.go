package remote

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
)

// newOpsServer builds a full operational stack: an instrumented DB with a
// WAL (so every subsystem registers its series) behind NewOpsHandler.
func newOpsServer(t *testing.T) (*httptest.Server, *core.DB) {
	t.Helper()
	db, err := core.Open(core.Options{
		Dir:               t.TempDir(),
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
		ChunkSamples:      8,
		SlotsPerRegion:    256,
		MemTableSize:      8 << 10,
		L0PartitionLength: 1000,
		L2PartitionLength: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	handler := NewOpsHandler(NewServer(&TimeUnionBackend{DB: db}), OpsConfig{
		Metrics:      db.Metrics(),
		SlowQueryLog: time.Nanosecond, // trace and log every query
		Logf:         t.Logf,
	})
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	return srv, db
}

func TestHealthz(t *testing.T) {
	srv, _ := newOpsServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %s, want 200", resp.Status)
	}
}

// expositionSample matches one Prometheus text-format sample line.
var expositionSample = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]*\.?[0-9]+([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)

// TestMetricsEndpoint drives real traffic through the full stack and then
// checks /metrics: valid exposition grammar, >= 30 distinct series covering
// head, WAL, LSM, both storage tiers, and the cache, and >= 4 latency
// histograms (ISSUE acceptance criteria).
func TestMetricsEndpoint(t *testing.T) {
	srv, db := newOpsServer(t)
	client := NewClient(srv.URL)

	// Enough data to flush through the head into the LSM.
	resp, err := client.Write(WriteRequest{Timeseries: []WriteSeries{{
		Labels:  map[string]string{"metric": "cpu", "host": "a"},
		Samples: []Sample{{T: 1, V: 1}},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	var fast []FastWriteEntry
	for ts := int64(2); ts < 3000; ts += 10 {
		fast = append(fast, FastWriteEntry{ID: resp.IDs[0], Samples: []Sample{{T: ts, V: float64(ts)}}})
	}
	if err := client.WriteFast(FastWriteRequest{Entries: fast}); err != nil {
		t.Fatal(err)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query(QueryRequest{MinT: 0, MaxT: 3000,
		Matchers: []MatcherSpec{{Type: "=", Name: "metric", Value: "cpu"}}}); err != nil {
		t.Fatal(err)
	}

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %s, want 200", mresp.Status)
	}
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}

	series := map[string]bool{}     // distinct name{labels} keys, buckets folded
	histograms := map[string]bool{} // base names with TYPE histogram
	sc := bufio.NewScanner(mresp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) >= 4 && f[1] == "TYPE" && f[3] == "histogram" {
				histograms[f[2]] = true
			}
			continue
		}
		if !expositionSample.MatchString(line) {
			t.Fatalf("line violates exposition grammar: %q", line)
		}
		key := line[:strings.LastIndex(line, " ")]
		name := key
		if i := strings.IndexAny(key, "{ "); i >= 0 {
			name = key[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		series[key] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(series) < 30 {
		t.Errorf("distinct series = %d, want >= 30", len(series))
	}
	if len(histograms) < 4 {
		t.Errorf("histograms = %d (%v), want >= 4", len(histograms), histograms)
	}
	wantCovered := []string{
		"timeunion_head_", "timeunion_wal_", "timeunion_lsm_",
		"timeunion_cache_", "timeunion_db_", "timeunion_http_",
		`tier="fast"`, `tier="slow"`,
	}
	for _, want := range wantCovered {
		found := false
		for key := range series {
			if strings.Contains(key, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no series matching %q in /metrics", want)
		}
	}
}

// TestPprofGating checks the profiling endpoints are only mounted when
// Debug is set.
func TestPprofGating(t *testing.T) {
	srv, db := newOpsServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	// Without Debug the mux falls through to the data API, which rejects
	// non-POST requests — anything but 200 proves pprof is not mounted.
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("pprof reachable without Debug")
	}

	dbgSrv := httptest.NewServer(NewOpsHandler(NewServer(&TimeUnionBackend{DB: db}), OpsConfig{
		Metrics: db.Metrics(),
		Debug:   true,
	}))
	defer dbgSrv.Close()
	resp, err = http.Get(dbgSrv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof with Debug: status = %s, want 200", resp.Status)
	}
}
