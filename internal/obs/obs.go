// Package obs is TimeUnion's dependency-free observability substrate: a
// metrics registry of lock-free atomic counters, gauges, and
// power-of-two-bucket latency histograms, plus a lightweight per-query
// trace carried via context.Context (trace.go).
//
// Design constraints, in order:
//
//  1. Hot-path cost. Every instrument is a handful of atomic operations;
//     there are no mutexes, maps, or allocations on the record path. A nil
//     instrument is a no-op, so call sites stay unconditional and a whole
//     subsystem can run un-instrumented (nil registry) at zero cost.
//  2. No dependencies. The package imports only the standard library, so
//     every storage layer (cloud, wal, lsm, head, core) can use it without
//     cycles or vendored metric clients.
//  3. Scrape-friendly. The registry renders the Prometheus text exposition
//     format (expose.go), so any scraper works against /metrics without a
//     client library on either side.
//
// Metric names follow timeunion_<subsystem>_<name>; instance dimensions
// (storage tier, LSM level) are label pairs, not name suffixes.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op (un-instrumented path).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value. A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// shardedPad is one cache-line-padded counter shard: 64 bytes so two shards
// never share a line and parallel writers do not bounce it between cores.
type shardedPad struct {
	v atomic.Uint64
	_ [56]byte
}

// numShards is the shard count of a ShardedCounter (power of two).
const numShards = 8

// ShardedCounter is a counter for paths hot enough that even one shared
// atomic would become the contention point (per-sample append counters).
// Callers pass a shard hint — any value that spreads across goroutines,
// e.g. a series ID — and reads sum the shards.
type ShardedCounter struct {
	shards [numShards]shardedPad
}

// Add increments the hinted shard and returns that shard's new value (the
// return value doubles as a cheap per-shard tick for sampling decisions).
func (c *ShardedCounter) Add(hint uint64, n uint64) uint64 {
	if c == nil {
		return 0
	}
	return c.shards[hint&(numShards-1)].v.Add(n)
}

// Value returns the sum over all shards.
func (c *ShardedCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	var total uint64
	for i := range c.shards {
		total += c.shards[i].v.Load()
	}
	return total
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

// typeString is the Prometheus TYPE keyword for a kind.
func (k metricKind) typeString() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered series.
type metric struct {
	name   string // base metric name (timeunion_<subsystem>_<x>)
	labels string // label pairs without braces, e.g. `tier="fast"`; may be ""
	help   string
	kind   metricKind

	c  *Counter
	g  *Gauge
	h  *Histogram
	fn func() float64
}

// key uniquely identifies a series in a registry.
func (m *metric) key() string { return seriesKey(m.name, m.labels) }

func seriesKey(name, labels string) string {
	if labels == "" {
		return name
	}
	return name + "{" + labels + "}"
}

// Registry is a collection of named metrics. All methods are safe for
// concurrent use; a nil *Registry returns nil instruments (which are
// themselves no-ops) and registers nothing, so components can thread an
// optional registry without branching.
type Registry struct {
	mu    sync.Mutex
	order []*metric          // registration order
	byKey map[string]*metric // seriesKey -> metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// register get-or-creates the series. An existing series with the same
// name+labels is returned as-is (idempotent registration); the caller must
// not mix kinds under one key.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if existing, ok := r.byKey[m.key()]; ok {
		return existing
	}
	r.byKey[m.key()] = m
	r.order = append(r.order, m)
	return m
}

// Counter get-or-creates a counter series. labels is the label-pair string
// without braces (`tier="fast"`), or "" for none.
func (r *Registry) Counter(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, labels: labels, help: help, kind: kindCounter, c: &Counter{}}).c
}

// Gauge get-or-creates a gauge series.
func (r *Registry) Gauge(name, labels, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, labels: labels, help: help, kind: kindGauge, g: &Gauge{}}).g
}

// Histogram get-or-creates a latency histogram series.
func (r *Registry) Histogram(name, labels, help string) *Histogram {
	if r == nil {
		return nil
	}
	return r.register(&metric{name: name, labels: labels, help: help, kind: kindHistogram, h: &Histogram{}}).h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge that exposes a subsystem's existing atomic counters
// without rewiring its hot path.
func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, labels: labels, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a gauge read from fn at scrape time.
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, labels: labels, help: help, kind: kindGaugeFunc, fn: fn})
}

// value returns the metric's current scalar value (histograms report their
// observation count here; Snapshot adds the quantile keys).
func (m *metric) value() float64 {
	switch m.kind {
	case kindCounter:
		return float64(m.c.Value())
	case kindGauge:
		return float64(m.g.Value())
	case kindCounterFunc, kindGaugeFunc:
		return m.fn()
	case kindHistogram:
		return float64(m.h.Count())
	}
	return 0
}

// Snapshot returns every series' current value keyed by name{labels}.
// Histograms expand into _count, _sum (seconds), _p50, _p90, _p99, and
// _max (seconds) keys. Used by the bench harness to embed engine internals
// in its JSON output, and by tests.
func (r *Registry) Snapshot() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()

	out := make(map[string]float64, len(metrics))
	for _, m := range metrics {
		if m.kind == kindHistogram {
			s := m.h.Snapshot()
			out[seriesKey(m.name+"_count", m.labels)] = float64(s.Count)
			out[seriesKey(m.name+"_sum", m.labels)] = s.Sum.Seconds()
			out[seriesKey(m.name+"_p50", m.labels)] = s.P50.Seconds()
			out[seriesKey(m.name+"_p90", m.labels)] = s.P90.Seconds()
			out[seriesKey(m.name+"_p99", m.labels)] = s.P99.Seconds()
			out[seriesKey(m.name+"_max", m.labels)] = s.Max.Seconds()
			continue
		}
		out[m.key()] = m.value()
	}
	return out
}

// each calls fn over a stable copy of the metric list, grouped so that all
// series of one base name are adjacent (exposition requires one HELP/TYPE
// block per name). Registration order of first appearance is preserved.
func (r *Registry) each(fn func(m *metric)) {
	r.mu.Lock()
	metrics := append([]*metric(nil), r.order...)
	r.mu.Unlock()
	// Stable-sort by first-appearance rank of the base name.
	rank := make(map[string]int, len(metrics))
	for i, m := range metrics {
		if _, ok := rank[m.name]; !ok {
			rank[m.name] = i
		}
	}
	sort.SliceStable(metrics, func(i, j int) bool { return rank[metrics[i].name] < rank[metrics[j].name] })
	for _, m := range metrics {
		fn(m)
	}
}
