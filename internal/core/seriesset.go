package core

import (
	"context"
	"fmt"
	"math"
	"sync"

	"timeunion/internal/chunkenc"
	"timeunion/internal/index"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
	"timeunion/internal/obs"
)

// OverlayRank is the merge rank of the head's open chunk. It is higher than
// any sequence a stored chunk can carry, so on duplicate timestamps the
// head sample — always the newest write — wins.
const OverlayRank = math.MaxUint64

// SeriesEntry is one timeseries of a streaming query result: its full tag
// set and a lazy sample iterator over the query range. The iterator decodes
// chunks only as it is consumed; dropping it early skips the remaining
// decode work entirely.
type SeriesEntry struct {
	Labels   labels.Labels
	Iterator chunkenc.SampleIterator
}

// SeriesSet streams a query result one series at a time (DESIGN.md §4.8).
// Series arrive in index order (groups expand to their members in slot
// order), not sorted by labels — the materializing Query sorts, the
// streaming path does not.
//
// The entry returned by At — including its Iterator — is valid only until
// the following Next call: the set recycles the previous entry's pooled
// decode buffers when it advances (DESIGN.md §4.10). Drain or drop an
// entry's iterator before advancing; to retain samples, copy them out.
type SeriesSet interface {
	// Next advances to the next non-empty series.
	Next() bool
	// At returns the current series. Only valid after a true Next, and
	// only until the following Next.
	At() SeriesEntry
	// Err returns the error that terminated iteration, if any.
	Err() error
}

// queryScratch pools the per-query gather buffers of the read pipeline:
// the located chunk list, the ranked merge sources built from it, and (for
// the materializing path) the entry list itself. The backing arrays are
// reused across series within one query; their elements are copied or
// handed off before the next reuse, never retained.
type queryScratch struct {
	chunks  []lsm.ChunkRef
	srcs    []chunkenc.RankedIterator
	entries []SeriesEntry
}

var queryScratchPool = sync.Pool{New: func() any { return new(queryScratch) }}

func getQueryScratch() *queryScratch { return queryScratchPool.Get().(*queryScratch) }

// putQueryScratch clears the scratch before pooling it: ChunkRef Values
// alias cache-resident blocks, and a pooled scratch must not pin evicted
// blocks (or released iterators) in memory between queries.
func putQueryScratch(sc *queryScratch) {
	chunks := sc.chunks[:cap(sc.chunks)]
	for i := range chunks {
		chunks[i] = lsm.ChunkRef{}
	}
	srcs := sc.srcs[:cap(sc.srcs)]
	for i := range srcs {
		srcs[i] = chunkenc.RankedIterator{}
	}
	entries := sc.entries[:cap(sc.entries)]
	for i := range entries {
		entries[i] = SeriesEntry{}
	}
	sc.chunks, sc.srcs, sc.entries = chunks[:0], srcs[:0], entries[:0]
	queryScratchPool.Put(sc)
}

// QuerySeriesSet evaluates tag selectors over [mint, maxt] as a lazy
// stream: the inverted index resolves the selectors up front, but chunks
// are located per series as the caller advances and decoded only as each
// series' iterator is consumed. Query/QueryContext/QueryWorkers remain the
// materializing adapters over the same per-series pipeline.
func (db *DB) QuerySeriesSet(ctx context.Context, mint, maxt int64, matchers ...*labels.Matcher) (SeriesSet, error) {
	tr := obs.TraceFrom(ctx)
	if db.m != nil {
		db.m.queries.Inc()
	}
	sel := tr.StartSpan("index_select")
	ids, err := db.head.Index().Select(matchers...)
	sel.End()
	if err != nil {
		if db.m != nil {
			db.m.queryErrs.Inc()
		}
		return nil, err
	}
	return &querySeriesSet{
		db: db, ctx: ctx, tr: tr,
		ids: ids, mint: mint, maxt: maxt, matchers: matchers,
		onDec: db.onDecode(nil),
		sc:    getQueryScratch(),
	}, nil
}

type querySeriesSet struct {
	db       *DB
	ctx      context.Context
	tr       *obs.Trace
	ids      []uint64
	idx      int
	pending  []SeriesEntry
	buf      []SeriesEntry // reusable entriesFor backing; pending drains before reuse
	sc       *queryScratch // per-query gather buffers; returned to the pool on exhaustion
	onDec    func(int)
	cur      SeriesEntry
	mint     int64
	maxt     int64
	matchers []*labels.Matcher
	err      error
}

func (s *querySeriesSet) Next() bool {
	if s.err != nil {
		return false
	}
	// The previous entry's iterator expires now (see SeriesSet): recycle
	// its pooled buffers.
	s.releaseCur()
	for {
		// Drain entries already located, peeking one sample so empty
		// series (all samples clipped or superseded) are dropped.
		for len(s.pending) > 0 {
			e := s.pending[0]
			s.pending[0] = SeriesEntry{}
			s.pending = s.pending[1:]
			if q, ok := e.Iterator.(*chunkenc.QueryIterator); ok {
				if q.PeekNonEmpty() {
					s.cur = e
					return true
				}
				err := q.Err()
				q.Release()
				if err != nil {
					s.fail(err)
					return false
				}
				continue
			}
			if p, ok := chunkenc.NewPeekedIterator(e.Iterator); ok {
				s.cur = SeriesEntry{Labels: e.Labels, Iterator: p}
				return true
			}
			if err := e.Iterator.Err(); err != nil {
				s.fail(err)
				return false
			}
		}
		if s.idx >= len(s.ids) {
			s.releaseScratch()
			return false
		}
		if err := s.ctx.Err(); err != nil {
			s.fail(err)
			return false
		}
		id := s.ids[s.idx]
		s.idx++
		entries, err := s.db.entriesFor(s.tr, id, s.mint, s.maxt, s.matchers, s.onDec, s.buf[:0], s.sc)
		if err != nil {
			s.fail(err)
			return false
		}
		s.pending = entries
		s.buf = entries
	}
}

func (s *querySeriesSet) releaseCur() {
	if s.cur.Iterator != nil {
		chunkenc.ReleaseIterator(s.cur.Iterator)
		s.cur = SeriesEntry{}
	}
}

// releaseScratch returns the gather buffers to the pool once, when the set
// can no longer locate series (exhaustion or error). An abandoned set never
// releases; its buffers fall to the garbage collector instead.
func (s *querySeriesSet) releaseScratch() {
	if s.sc != nil {
		putQueryScratch(s.sc)
		s.sc = nil
	}
}

func (s *querySeriesSet) fail(err error) {
	s.err = err
	for i, e := range s.pending {
		if e.Iterator != nil {
			chunkenc.ReleaseIterator(e.Iterator)
		}
		s.pending[i] = SeriesEntry{}
	}
	s.pending = nil
	s.releaseScratch()
	if s.db.m != nil {
		s.db.m.queryErrs.Inc()
	}
}

func (s *querySeriesSet) At() SeriesEntry { return s.cur }

func (s *querySeriesSet) Err() error { return s.err }

// entriesFor locates one matched id's series entries, wrapping any failure
// with the id so a multi-series query reports which series or group broke.
// decoded (optional) accumulates payload bytes as the entries' iterators
// lazily decode them. sc holds the reusable gather buffers; each returned
// entry's iterator owns pooled decode state (release with
// chunkenc.ReleaseIterator after draining it).
func (db *DB) entriesFor(tr *obs.Trace, id uint64, mint, maxt int64, matchers []*labels.Matcher, onDec func(int), buf []SeriesEntry, sc *queryScratch) ([]SeriesEntry, error) {
	if index.IsGroupID(id) {
		entries, err := db.groupEntries(tr, id, mint, maxt, matchers, onDec, buf, sc)
		if err != nil {
			return nil, fmt.Errorf("core: query group %d: %w", id, err)
		}
		return entries, nil
	}
	entries, err := db.seriesEntries(tr, id, mint, maxt, onDec, buf, sc)
	if err != nil {
		return nil, fmt.Errorf("core: query series %d: %w", id, err)
	}
	return entries, nil
}

// onDecode builds the lazy-decode hook charging the db counters and the
// caller's accumulator. The returned hook runs on whichever goroutine
// consumes the iterator; the db counters are atomic, decoded must be owned
// by that consumer.
func (db *DB) onDecode(decoded *int64) func(int) {
	return func(n int) {
		if db.m != nil {
			db.m.decodedBytes.Add(uint64(n))
			db.m.decodedChunks.Inc()
		}
		if decoded != nil {
			*decoded += int64(n)
		}
	}
}

// seriesEntries builds the lazy read pipeline for one individual series:
// lazy LSM chunk sources and the head's open chunk merged rank-aware,
// clipped to [mint, maxt]. No payload is decoded here. The chunk list and
// source list live in sc's reused backing arrays; the returned iterator
// owns copies of the sources, so sc may be reused on the next call.
func (db *DB) seriesEntries(tr *obs.Trace, id uint64, mint, maxt int64, onDec func(int), buf []SeriesEntry, sc *queryScratch) ([]SeriesEntry, error) {
	lbls, ok := db.head.SeriesLabels(id)
	if !ok {
		return buf, nil
	}
	sp := tr.StartSpan("lsm_read")
	chunks, err := db.store.ChunksForInto(sc.chunks[:0], id, mint, maxt)
	if chunks != nil {
		sc.chunks = chunks
	}
	for _, c := range chunks {
		sp.AddBytes(int64(len(c.Value)))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	sources := lsm.SeriesSourcesInto(sc.srcs[:0], chunks, mint, maxt, onDec)
	sp = tr.StartSpan("head_scan")
	head := db.head.HeadIterator(id, mint, maxt)
	sp.End()
	if head != nil {
		sources = append(sources, chunkenc.RankedIterator{Iter: head, Rank: OverlayRank})
	}
	it := chunkenc.GetQueryIterator(sources, mint, maxt)
	sc.srcs = sources[:0]
	return append(buf, SeriesEntry{Labels: lbls, Iterator: it}), nil
}

// groupEntries expands a matched group into its matching member timeseries
// (second-level index, §2.4 challenge 3), each member a lazy merge of its
// group-tuple columns and the head's open group chunk.
func (db *DB) groupEntries(tr *obs.Trace, gid uint64, mint, maxt int64, matchers []*labels.Matcher, onDec func(int), buf []SeriesEntry, sc *queryScratch) ([]SeriesEntry, error) {
	groupTags, members, ok := db.head.GroupInfo(gid)
	if !ok {
		return buf, nil
	}
	sp := tr.StartSpan("lsm_read")
	chunks, err := db.store.ChunksForInto(sc.chunks[:0], gid, mint, maxt)
	if chunks != nil {
		sc.chunks = chunks
	}
	for _, c := range chunks {
		sp.AddBytes(int64(len(c.Value)))
	}
	sp.End()
	if err != nil {
		return nil, err
	}
	sources, err := lsm.GroupSources(chunks, mint, maxt, onDec)
	if err != nil {
		return nil, err
	}
	sp = tr.StartSpan("head_scan")
	headBySlot := db.head.HeadGroupIterators(gid, mint, maxt)
	sp.End()
	// Walk slots in order (not map order) so the assembled result is
	// deterministic before any final label sort.
	out := buf
	for slot := uint32(0); int(slot) < len(members); slot++ {
		srcs := sources[slot]
		if h, ok := headBySlot[slot]; ok {
			srcs = append(srcs, chunkenc.RankedIterator{Iter: h, Rank: OverlayRank})
		}
		if len(srcs) == 0 {
			continue
		}
		full := labels.Merge(groupTags, members[slot])
		if !matchAll(full, matchers) {
			// No iterator takes ownership of an unmatched slot's pooled
			// sources; recycle them here.
			for _, src := range srcs {
				chunkenc.ReleaseIterator(src.Iter)
			}
			continue
		}
		it := chunkenc.GetQueryIterator(srcs, mint, maxt)
		out = append(out, SeriesEntry{Labels: full, Iterator: it})
	}
	return out, nil
}
