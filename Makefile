GO ?= go

.PHONY: tier1 race vet bench-parallel

# tier1 is the gate every change must keep green: full build + full test run.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# bench-parallel measures the parallel query / striped append speedups.
bench-parallel:
	$(GO) test -bench='QueryParallel|AppendFastParallel' -run='^$$' -benchtime=3x .
