// Package lsm exercises journalcover: background ops must emit exactly one
// obs.Journal event through the named-return-defer idiom, and background
// paths that mutate the store without any journaling function above them
// are reported.
package lsm

import (
	"time"

	"fix/internal/cloud"
	"fix/internal/obs"
)

type Tree struct {
	store cloud.Store
	j     *obs.Journal
}

// Run spawns the background maintenance loops.
func (t *Tree) Run() {
	go t.flushLoop()
	go t.compactLoop()
}

// flushLoop drives flushes; flush journals itself, so the whole subtree is
// covered.
func (t *Tree) flushLoop() {
	for {
		if t.flush() != nil {
			return
		}
	}
}

// flush follows the idiom: named error result, deferred closure, error
// passed to Emit. No findings.
func (t *Tree) flush() (err error) {
	start := time.Now()
	defer func() {
		t.j.Emit("lsm.flush", start, err, nil)
	}()
	return t.store.Put("k", nil)
}

// compactLoop reaches compact, which mutates the store with no journal
// event anywhere on the path.
func (t *Tree) compactLoop() {
	for {
		if t.compact() != nil {
			return
		}
	}
}

func (t *Tree) compact() error {
	if err := t.store.Put("out", nil); err != nil { // want `cloud.Store.Put in Tree.compact runs under background root Tree.compactLoop with no journal event`
		return err
	}
	return t.store.Delete("in") // want `cloud.Store.Delete in Tree.compact runs under background root Tree.compactLoop with no journal event`
}

// Inline journals mid-function: early returns skip the event.
func (t *Tree) Inline() error {
	start := time.Now()
	if err := t.store.Put("k", nil); err != nil {
		return err
	}
	t.j.Emit("lsm.inline", start, nil, nil) // want `journal event emitted inline in Tree.Inline`
	return nil
}

// DirectDefer evaluates Emit's arguments at defer time.
func (t *Tree) DirectDefer() error {
	start := time.Now()
	defer t.j.Emit("lsm.direct", start, nil, nil) // want `evaluates its arguments at defer time`
	return t.store.Put("k", nil)
}

// UnnamedErr has an error result the deferred emit can never observe.
func (t *Tree) UnnamedErr() error {
	start := time.Now()
	defer func() {
		t.j.Emit("lsm.unnamed", start, nil, nil) // want `Tree.UnnamedErr has an unnamed error result`
	}()
	return t.store.Put("k", nil)
}

// NamedButIgnored names the error result but never passes it to Emit.
func (t *Tree) NamedButIgnored() (err error) {
	start := time.Now()
	defer func() {
		t.j.Emit("lsm.ignored", start, nil, nil) // want `does not record the function's error result "err"`
	}()
	return t.store.Put("k", nil)
}

// DoubleEmit journals the same operation twice.
func (t *Tree) DoubleEmit() (err error) {
	start := time.Now()
	defer func() {
		t.j.Emit("lsm.first", start, err, nil)
	}()
	defer func() {
		t.j.Emit("lsm.second", start, err, nil) // want `Tree.DoubleEmit emits 2 journal events`
	}()
	return nil
}
