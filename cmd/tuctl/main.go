// Command tuctl inspects a TimeUnion on-disk layout: the object keys of the
// two storage tiers (level/partition structure of the time-partitioned
// LSM-tree) and the write-ahead log.
//
// Usage:
//
//	tuctl -fast ./data/fast -slow ./data/slow [-wal ./data/wal]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"timeunion/internal/cloud"
)

func main() {
	var (
		fastDir = flag.String("fast", "", "fast-tier directory (EBS-like)")
		slowDir = flag.String("slow", "", "slow-tier directory (S3-like)")
		walDir  = flag.String("wal", "", "WAL directory (optional)")
	)
	flag.Parse()
	if *fastDir == "" && *slowDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	show := func(label, dir string, tier cloud.Tier) {
		if dir == "" {
			return
		}
		store, err := cloud.NewDirStore(dir, tier, cloud.LatencyModel{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
			return
		}
		keys, err := store.List("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
			return
		}
		fmt.Printf("%s (%s): %d objects, %s total\n", label, dir, len(keys), sizeStr(store.TotalBytes()))
		byPrefix := map[string]int{}
		byPrefixBytes := map[string]int64{}
		for _, k := range keys {
			prefix := k
			if i := strings.Index(k, "/"); i >= 0 {
				prefix = k[:i]
			}
			byPrefix[prefix]++
			if n, err := store.Size(k); err == nil {
				byPrefixBytes[prefix] += n
			}
		}
		for p, n := range byPrefix {
			fmt.Printf("  %-10s %5d objects  %s\n", p, n, sizeStr(byPrefixBytes[p]))
		}
	}
	show("fast tier", *fastDir, cloud.TierBlock)
	show("slow tier", *slowDir, cloud.TierObject)

	if *walDir != "" {
		entries, err := os.ReadDir(*walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wal: %v\n", err)
			os.Exit(1)
		}
		var total int64
		segs := 0
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				continue
			}
			total += info.Size()
			if filepath.Ext(e.Name()) == ".wal" && e.Name() != "catalog.wal" {
				segs++
			}
		}
		fmt.Printf("wal (%s): %d segments, %s total\n", *walDir, segs, sizeStr(total))
	}
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
