package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// JournalCover enforces the operational-journal discipline for background
// operations (DESIGN.md §4.11, §4.14): every background op in internal/lsm
// and internal/wal emits exactly one obs.Journal event, and emits it
// through the named-return-defer idiom so every exit path — success and
// error alike — records the op's real outcome.
//
// Three rule families:
//
//  1. Idiom: an obs.Journal.Emit call in scope must sit inside a function
//     literal that is the immediate call of a defer statement
//     (defer func() { j.Emit(...) }()). An inline emit misses early
//     returns; a direct `defer j.Emit(...)` evaluates its arguments at
//     defer time and journals pre-operation state. If the enclosing
//     function has an error result, that result must be named and must
//     appear in the Emit arguments — otherwise the event can never record
//     the failure it exists to explain.
//
//  2. Coverage: walking the call graph from every goroutine spawn site
//     (Concurrent call edges), each reached function either emits a
//     journal event itself (the walk stops there: its callees run inside
//     that journaled op) or must not mutate durable state. A cloud.Store
//     Put/Delete or an os.Remove/Rename/Truncate reached on a background
//     path with no journaling function above it is an invisible mutation
//     the operator can never correlate with an event.
//
//  3. Uniqueness: two Emit calls in one function is double-journaling —
//     an op has one boundary, so merge into a single deferred emit.
var JournalCover = &Analyzer{
	Name:      "journalcover",
	Doc:       "background ops in lsm/wal emit exactly one obs.Journal event via a named-return deferred closure",
	RunModule: runJournalCover,
}

// emitSite classifies one lexical obs.Journal.Emit call.
type emitSite struct {
	call     *ast.CallExpr
	deferred bool // inside a FuncLit that is the call of a defer statement
	direct   bool // the defer statement's call IS the Emit (defer j.Emit(...))
}

func runJournalCover(pass *ModulePass) {
	inScope := func(n *Node) bool {
		return n.Pkg != nil &&
			(pathInScope(n.Pkg.Path, "internal/lsm") || pathInScope(n.Pkg.Path, "internal/wal"))
	}

	// Pass 1: classify every Emit site, module-wide. A function with any
	// emit is an "emitter": rule 2's walk stops there.
	emits := map[*Node][]emitSite{}
	for _, n := range pass.Graph.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		if sites := collectEmits(n.Pkg.Info, n.Decl.Body); len(sites) > 0 {
			emits[n] = sites
		}
	}

	// Rule 1 + rule 3: idiom and uniqueness, in scope only.
	for _, n := range pass.Graph.Nodes() {
		sites := emits[n]
		if len(sites) == 0 || !inScope(n) {
			continue
		}
		for _, s := range sites {
			switch {
			case s.direct:
				pass.Reportf(s.call.Pos(), "defer j.Emit(...) evaluates its arguments at defer time and journals pre-operation state; wrap the emit in a deferred closure (defer func() { j.Emit(...) }())")
			case !s.deferred:
				pass.Reportf(s.call.Pos(), "journal event emitted inline in %s; early returns skip it — emit from a deferred closure (defer func() { j.Emit(...) }()) so every exit path journals the outcome", n.Name())
			default:
				checkErrObserved(pass, n, s)
			}
		}
		if len(sites) > 1 {
			pass.Reportf(sites[1].call.Pos(), "%s emits %d journal events; an operation has one boundary — merge into a single deferred emit", n.Name(), len(sites))
		}
	}

	// Rule 2: background reachability. Roots are the static callees of
	// go-statements (and of calls inside go-launched literals).
	type work struct {
		node *Node
		root *Node
	}
	var queue []work
	visited := map[*Node]bool{}
	for _, n := range pass.Graph.Nodes() {
		for _, e := range n.Out {
			if e.Concurrent && e.Kind == EdgeCall && e.Callee.Decl != nil && !visited[e.Callee] {
				visited[e.Callee] = true
				queue = append(queue, work{node: e.Callee, root: e.Callee})
			}
		}
	}
	reportedMut := map[token.Pos]bool{}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if len(emits[w.node]) > 0 {
			continue // journaled op boundary: everything below it is covered
		}
		if inScope(w.node) {
			for _, m := range mutationSites(w.node.Pkg.Info, w.node.Decl.Body) {
				if reportedMut[m.pos] {
					continue
				}
				reportedMut[m.pos] = true
				pass.Reportf(m.pos, "%s in %s runs under background root %s with no journal event on the path; the owning operation must emit one obs.Journal event via a deferred closure", m.desc, w.node.Name(), w.root.Name())
			}
		}
		for _, e := range w.node.Out {
			if e.Kind == EdgeRef || e.Callee.Decl == nil || visited[e.Callee] {
				continue
			}
			visited[e.Callee] = true
			queue = append(queue, work{node: e.Callee, root: w.root})
		}
	}
}

// checkErrObserved enforces rule 1's error-result clause for a correctly
// deferred emit: a function with an error result must name it and pass it
// to Emit.
func checkErrObserved(pass *ModulePass, n *Node, s emitSite) {
	results := n.Decl.Type.Results
	if results == nil || len(results.List) == 0 {
		return
	}
	last := results.List[len(results.List)-1]
	if t := n.Pkg.Info.TypeOf(last.Type); t == nil || !types.Identical(t, types.Universe.Lookup("error").Type()) {
		return
	}
	if len(last.Names) == 0 {
		pass.Reportf(s.call.Pos(), "%s has an unnamed error result the deferred journal emit cannot observe; name it (err error) and pass it to Emit", n.Name())
		return
	}
	// The named error must appear among the Emit arguments.
	errObjs := map[types.Object]bool{}
	for _, name := range last.Names {
		if obj := n.Pkg.Info.Defs[name]; obj != nil {
			errObjs[obj] = true
		}
	}
	seen := false
	for _, arg := range s.call.Args {
		ast.Inspect(arg, func(nd ast.Node) bool {
			if id, ok := nd.(*ast.Ident); ok && errObjs[n.Pkg.Info.Uses[id]] {
				seen = true
			}
			return !seen
		})
	}
	if !seen {
		pass.Reportf(s.call.Pos(), "deferred journal emit in %s does not record the function's error result %q; pass it to Emit so failures are journaled", n.Name(), last.Names[0].Name)
	}
}

// collectEmits finds every obs.Journal.Emit call under body and classifies
// it against the deferred-closure idiom.
func collectEmits(info *types.Info, body *ast.BlockStmt) []emitSite {
	var sites []emitSite
	var walk func(n ast.Node, inDeferredLit bool)
	walk = func(n ast.Node, inDeferredLit bool) {
		ast.Inspect(n, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.DeferStmt:
				if isEmitCall(info, nd.Call) {
					sites = append(sites, emitSite{call: nd.Call, direct: true})
					return false
				}
				if lit, ok := ast.Unparen(nd.Call.Fun).(*ast.FuncLit); ok {
					walk(lit.Body, true)
					for _, arg := range nd.Call.Args {
						walk(arg, inDeferredLit)
					}
					return false
				}
				return true
			case *ast.FuncLit:
				walk(nd.Body, false)
				return false
			case *ast.CallExpr:
				if isEmitCall(info, nd) {
					sites = append(sites, emitSite{call: nd, deferred: inDeferredLit})
				}
				return true
			}
			return true
		})
	}
	walk(body, false)
	return sites
}

// isEmitCall matches calls of (*obs.Journal).Emit.
func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Emit" {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	named := derefNamed(sig.Recv().Type())
	return named != nil && named.Obj().Name() == "Journal" &&
		pathInScope(fn.Pkg().Path(), "internal/obs")
}

// mutation is one durable-state mutation site.
type mutation struct {
	pos  token.Pos
	desc string
}

// mutationSites finds cloud.Store Put/Delete calls and os file mutations
// under body.
func mutationSites(info *types.Info, body *ast.BlockStmt) []mutation {
	if body == nil {
		return nil
	}
	var out []mutation
	ast.Inspect(body, func(nd ast.Node) bool {
		call, ok := nd.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if isStoreMethod(info, sel) && (sel.Sel.Name == "Put" || sel.Sel.Name == "Delete") {
			out = append(out, mutation{pos: call.Pos(), desc: "cloud.Store." + sel.Sel.Name})
			return true
		}
		if fn, _ := info.Uses[sel.Sel].(*types.Func); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
			switch fn.Name() {
			case "Remove", "RemoveAll", "Rename", "Truncate":
				out = append(out, mutation{pos: call.Pos(), desc: "os." + fn.Name()})
			}
		}
		return true
	})
	return out
}
