package bench

import (
	"fmt"
	"math"
)

// This file is the benchstat-style comparison helper behind the alloc
// experiment: repeated measurements summarize to mean ± stddev, a recorded
// baseline compares by relative delta, and a variance guard marks runs too
// noisy to trust before anyone reads the delta.

// minStatRuns is the fewest repetitions a comparison accepts: below this,
// the stddev says nothing and a single GC hiccup can swing the mean.
const minStatRuns = 5

// Summary condenses repeated measurements of one quantity.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	// CV is the coefficient of variation (stddev/mean), the scale-free
	// noise measure the variance guard tests.
	CV float64
}

// Summarize computes the sample mean and (Bessel-corrected) stddev.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	for _, v := range samples {
		s.Mean += v
	}
	s.Mean /= float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, v := range samples {
			d := v - s.Mean
			ss += d * d
		}
		s.Stddev = math.Sqrt(ss / float64(s.N-1))
	}
	if s.Mean != 0 {
		s.CV = s.Stddev / math.Abs(s.Mean)
	}
	return s
}

// Comparison is one before/after row: a recorded baseline against a
// summarized live measurement.
type Comparison struct {
	Baseline float64
	Live     Summary
	// DeltaPct is the relative change from baseline to live mean:
	// negative means the live measurement improved (shrank).
	DeltaPct float64
	// Noisy is the variance guard: the live runs spread too wide
	// (CV > maxCV) for the delta to be trusted.
	Noisy bool
}

// CompareRuns summarizes ≥minStatRuns live measurements against a recorded
// baseline. maxCV is the variance guard threshold (0 picks 0.10: runs
// spreading more than 10% around their mean are flagged noisy).
func CompareRuns(baseline float64, live []float64, maxCV float64) (Comparison, error) {
	if len(live) < minStatRuns {
		return Comparison{}, fmt.Errorf("bench: %d runs, need at least %d for a stable comparison", len(live), minStatRuns)
	}
	if maxCV <= 0 {
		maxCV = 0.10
	}
	s := Summarize(live)
	c := Comparison{Baseline: baseline, Live: s, Noisy: s.CV > maxCV}
	if baseline != 0 {
		c.DeltaPct = 100 * (s.Mean - baseline) / baseline
	}
	return c, nil
}

// String renders the comparison one benchstat-ish line at a time:
// "2685 → 812 ± 3 (-69.8%)".
func (c Comparison) String() string {
	noise := ""
	if c.Noisy {
		noise = " [noisy]"
	}
	return fmt.Sprintf("%.0f → %.0f ± %.0f (%+.1f%%)%s", c.Baseline, c.Live.Mean, c.Live.Stddev, c.DeltaPct, noise)
}
