package wal

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"timeunion/internal/labels"
)

func openTestWAL(t *testing.T, dir string, segSize int) *WAL {
	t.Helper()
	w, err := Open(dir, Options{SegmentSize: segSize})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestLogAndRecover(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)

	ls1 := labels.FromStrings("metric", "cpu", "host", "h1")
	gTags := labels.FromStrings("hostname", "host_0")
	m0 := labels.FromStrings("metric", "usage_user")

	if err := w.LogSeries(1, ls1); err != nil {
		t.Fatal(err)
	}
	if err := w.LogGroup(1<<63|1, gTags); err != nil {
		t.Fatal(err)
	}
	if err := w.LogGroupMember(1<<63|1, 0, m0); err != nil {
		t.Fatal(err)
	}
	if err := w.LogSample(1, 1, 1000, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := w.LogSample(1, 2, 2000, 0.7); err != nil {
		t.Fatal(err)
	}
	if err := w.LogGroupSample(1<<63|1, 1, 1000, []uint32{0}, []float64{9.9}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen and replay.
	w2 := openTestWAL(t, dir, 0)
	defer w2.Close()
	var series []SeriesDef
	var groups []GroupDef
	var members []MemberDef
	var samples []SampleRec
	var gsamples []GroupSampleRec
	err := w2.Recover(Handler{
		Series:      func(s SeriesDef) error { series = append(series, s); return nil },
		Group:       func(g GroupDef) error { groups = append(groups, g); return nil },
		Member:      func(m MemberDef) error { members = append(members, m); return nil },
		Sample:      func(s SampleRec) error { samples = append(samples, s); return nil },
		GroupSample: func(g GroupSampleRec) error { gsamples = append(gsamples, g); return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 1 || series[0].ID != 1 || !series[0].Labels.Equal(ls1) {
		t.Fatalf("series = %+v", series)
	}
	if len(groups) != 1 || groups[0].GID != 1<<63|1 || !groups[0].GroupTags.Equal(gTags) {
		t.Fatalf("groups = %+v", groups)
	}
	if len(members) != 1 || members[0].Slot != 0 || !members[0].Unique.Equal(m0) {
		t.Fatalf("members = %+v", members)
	}
	if len(samples) != 2 || samples[0].T != 1000 || samples[1].V != 0.7 {
		t.Fatalf("samples = %+v", samples)
	}
	if len(gsamples) != 1 || gsamples[0].Vals[0] != 9.9 {
		t.Fatalf("group samples = %+v", gsamples)
	}
}

func TestFlushMarkSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	for seq := uint64(1); seq <= 10; seq++ {
		if err := w.LogSample(7, seq, int64(seq)*1000, float64(seq)); err != nil {
			t.Fatal(err)
		}
	}
	// Mark 1..6 flushed; note the mark arrives after the samples.
	if err := w.LogFlushMark(7, 6); err != nil {
		t.Fatal(err)
	}
	if w.FlushedSeq(7) != 6 {
		t.Fatalf("FlushedSeq = %d", w.FlushedSeq(7))
	}
	w.Close()

	w2 := openTestWAL(t, dir, 0)
	defer w2.Close()
	var seqs []uint64
	err := w2.Recover(Handler{Sample: func(s SampleRec) error {
		seqs = append(seqs, s.Seq)
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 4 || seqs[0] != 7 || seqs[3] != 10 {
		t.Fatalf("replayed seqs = %v", seqs)
	}
}

func TestSegmentRollAndPurge(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 256) // tiny segments force rolling
	for seq := uint64(1); seq <= 100; seq++ {
		if err := w.LogSample(1, seq, int64(seq), 1); err != nil {
			t.Fatal(err)
		}
	}
	segsBefore, err := w.segmentIndexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(segsBefore) < 3 {
		t.Fatalf("expected multiple segments, got %d", len(segsBefore))
	}
	// Nothing flushed: purge must drop nothing.
	n, err := w.Purge()
	if err != nil || n != 0 {
		t.Fatalf("purge before flush = %d, %v", n, err)
	}
	// Flush everything: all closed segments become droppable.
	if err := w.LogFlushMark(1, 100); err != nil {
		t.Fatal(err)
	}
	n, err = w.Purge()
	if err != nil {
		t.Fatal(err)
	}
	if n < len(segsBefore)-1 {
		t.Fatalf("purged %d of %d segments", n, len(segsBefore))
	}
	w.Close()

	// After purge + checkpoint, recovery replays nothing stale.
	w2 := openTestWAL(t, dir, 256)
	defer w2.Close()
	count := 0
	if err := w2.Recover(Handler{Sample: func(SampleRec) error { count++; return nil }}); err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("replayed %d flushed samples", count)
	}
	if w2.FlushedSeq(1) != 100 {
		t.Fatalf("checkpoint lost: FlushedSeq = %d", w2.FlushedSeq(1))
	}
}

func TestPartialFlushKeepsSegment(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 1<<20)
	for seq := uint64(1); seq <= 10; seq++ {
		if err := w.LogSample(1, seq, int64(seq), 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.LogFlushMark(1, 5); err != nil {
		t.Fatal(err)
	}
	// Force a roll so the mixed segment is closed.
	w.mu.Lock()
	w.seg.Close()
	w.segIdx++
	if err := w.openSegment(); err != nil {
		w.mu.Unlock()
		t.Fatal(err)
	}
	w.mu.Unlock()
	n, err := w.Purge()
	if err != nil || n != 0 {
		t.Fatalf("purge dropped mixed segment: %d, %v", n, err)
	}
	w.Close()
}

func TestTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 1<<20)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.LogSample(3, seq, int64(seq), 2); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-write: truncate the segment.
	segs, _ := os.ReadDir(dir)
	for _, e := range segs {
		if e.Name() == "catalog.wal" || e.Name() == "checkpoint" {
			continue
		}
		p := filepath.Join(dir, e.Name())
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(p, fi.Size()-3); err != nil {
			t.Fatal(err)
		}
	}

	w2 := openTestWAL(t, dir, 1<<20)
	defer w2.Close()
	count := 0
	if err := w2.Recover(Handler{Sample: func(SampleRec) error { count++; return nil }}); err != nil {
		t.Fatal(err)
	}
	if count != 4 {
		t.Fatalf("replayed %d samples after truncation, want 4", count)
	}
}

func TestCorruptRecordStopsScan(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 1<<20)
	for seq := uint64(1); seq <= 5; seq++ {
		if err := w.LogSample(3, seq, int64(seq), 2); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Flip a byte in the middle of the segment: CRC must stop the scan.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if e.Name() == "catalog.wal" || e.Name() == "checkpoint" {
			continue
		}
		p := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)/2] ^= 0xff
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	w2 := openTestWAL(t, dir, 1<<20)
	defer w2.Close()
	count := 0
	if err := w2.Recover(Handler{Sample: func(SampleRec) error { count++; return nil }}); err != nil {
		t.Fatal(err)
	}
	if count >= 5 {
		t.Fatalf("corrupt record not detected: %d samples", count)
	}
}

func TestGroupSampleValidation(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), 0)
	defer w.Close()
	if err := w.LogGroupSample(1, 1, 0, []uint32{0, 1}, []float64{1}); err == nil {
		t.Fatal("mismatched slots/vals accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	w := openTestWAL(t, t.TempDir(), 0)
	defer w.Close()
	if err := w.LogSample(1, 1, 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.SizeBytes() == 0 {
		t.Fatal("SizeBytes = 0")
	}
}

// TestTornWriteEveryBoundary cuts the tail of the last record at every byte
// boundary — the full space of torn writes a crash can leave — and asserts
// recovery keeps every earlier record, reports no corruption, and never
// fails.
func TestTornWriteEveryBoundary(t *testing.T) {
	// Build a reference log and capture the segment size after each record.
	refDir := t.TempDir()
	w := openTestWAL(t, refDir, 0)
	const samples = 5
	var sizes []int64 // sizes[i] = segment size after i+1 records
	segPath := w.segPath(w.segIdx)
	for seq := uint64(1); seq <= samples; seq++ {
		if err := w.LogSample(3, seq, int64(seq)*100, float64(seq)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segData, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	catData, err := os.ReadFile(filepath.Join(refDir, "catalog.wal"))
	if err != nil {
		t.Fatal(err)
	}

	for cut := sizes[samples-2]; cut <= sizes[samples-1]; cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "catalog.wal"), catData, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, filepath.Base(segPath)), segData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2 := openTestWAL(t, dir, 0)
		var seqs []uint64
		err := w2.Recover(Handler{Sample: func(s SampleRec) error {
			seqs = append(seqs, s.Seq)
			return nil
		}})
		if err != nil {
			t.Fatalf("cut=%d: recover: %v", cut, err)
		}
		if len(w2.CorruptionsRepaired()) != 0 {
			t.Fatalf("cut=%d: torn tail misclassified as corruption: %v", cut, w2.CorruptionsRepaired())
		}
		want := samples - 1
		if cut == sizes[samples-1] {
			want = samples // nothing torn
		}
		if len(seqs) != want {
			t.Fatalf("cut=%d: recovered %d samples, want %d (%v)", cut, len(seqs), want, seqs)
		}
		for i, seq := range seqs {
			if seq != uint64(i+1) {
				t.Fatalf("cut=%d: recovered seqs %v", cut, seqs)
			}
		}
		w2.Close()
	}
}

// TestMidFileCorruptionRepaired flips a byte inside an early record (bytes
// follow it, so this is damage, not a torn tail) and checks that recovery
// surfaces it via CorruptionsRepaired, truncates the file at the bad
// record, and replays the clean prefix.
func TestMidFileCorruptionRepaired(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 0)
	var sizes []int64
	segPath := w.segPath(w.segIdx)
	for seq := uint64(1); seq <= 6; seq++ {
		if err := w.LogSample(9, seq, int64(seq), float64(seq)); err != nil {
			t.Fatal(err)
		}
		info, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	w.Close()

	// Corrupt record 4 (payload region between sizes[2] and sizes[3]).
	f, err := os.OpenFile(segPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	off := sizes[2] + (sizes[3]-sizes[2])/2
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2 := openTestWAL(t, dir, 0)
	defer w2.Close()
	var seqs []uint64
	err = w2.Recover(Handler{Sample: func(s SampleRec) error {
		seqs = append(seqs, s.Seq)
		return nil
	}})
	if err != nil {
		t.Fatalf("recover after corruption: %v", err)
	}
	repairs := w2.CorruptionsRepaired()
	if len(repairs) != 1 {
		t.Fatalf("repairs = %v, want 1", repairs)
	}
	if repairs[0].Segment != segPath || repairs[0].Offset != sizes[2] {
		t.Fatalf("repair = %+v, want offset %d in %s", repairs[0], sizes[2], segPath)
	}
	if len(seqs) != 3 || seqs[2] != 3 {
		t.Fatalf("replayed seqs = %v, want [1 2 3]", seqs)
	}
	info, err := os.Stat(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != sizes[2] {
		t.Fatalf("file not truncated at damage: size %d, want %d", info.Size(), sizes[2])
	}
}

// TestConcurrentPurge runs overlapping purges; serialization must keep the
// checkpoint consistent and each segment removed exactly once.
func TestConcurrentPurge(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, 128) // tiny segments: many rolls
	for seq := uint64(1); seq <= 200; seq++ {
		if err := w.LogSample(5, seq, int64(seq), float64(seq)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.LogFlushMark(5, 200); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	total := make([]int, 4)
	for i := range total {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n, err := w.Purge()
			if err != nil {
				t.Errorf("purge: %v", err)
			}
			total[i] = n
		}(i)
	}
	wg.Wait()
	sum := 0
	for _, n := range total {
		sum += n
	}
	segs, err := w.segmentIndexes()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after purge = %v, want only the active one", segs)
	}
	if sum == 0 {
		t.Fatal("no segments purged")
	}
	w.Close()

	// The checkpoint must carry the flush marks the purged segments held.
	w2 := openTestWAL(t, dir, 128)
	defer w2.Close()
	if got := w2.FlushedSeq(5); got != 200 {
		t.Fatalf("checkpoint flushedSeq = %d, want 200", got)
	}
	var replayed int
	if err := w2.Recover(Handler{Sample: func(SampleRec) error { replayed++; return nil }}); err != nil {
		t.Fatal(err)
	}
	if replayed != 0 {
		t.Fatalf("replayed %d flushed samples, want 0", replayed)
	}
}
