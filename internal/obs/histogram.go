package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// numHistBuckets is the bucket count of a Histogram. Bucket i counts
// observations whose nanosecond value v satisfies 2^i <= v < 2^(i+1)
// (bucket 0 additionally absorbs v <= 1). 64 buckets cover the full int64
// nanosecond range: sub-nanosecond to ~292 years.
const numHistBuckets = 64

// Histogram is a lock-free latency histogram with power-of-two bucket
// boundaries. Recording an observation is four atomic operations (bucket,
// count, sum, max) with no allocation; percentile snapshots are computed
// from the bucket counts at read time. The power-of-two layout trades
// resolution (each estimate is exact to within a factor of two, reported
// at the bucket's upper bound) for a record path cheap enough to leave on
// hot paths permanently.
//
// The zero value is ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	buckets [numHistBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds
}

// histBucket returns the bucket index for a nanosecond value.
func histBucket(ns int64) int {
	if ns <= 1 {
		return 0
	}
	b := bits.Len64(uint64(ns)) - 1
	if b >= numHistBuckets {
		return numHistBuckets - 1
	}
	return b
}

// BucketUpperBound returns the exclusive nanosecond upper bound of bucket
// i (the value reported for percentiles resolved to that bucket).
func BucketUpperBound(i int) int64 {
	if i >= 62 {
		return int64(1) << 62
	}
	return int64(1) << (i + 1)
}

// Observe records one duration. Negative durations clamp to zero.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.buckets[histBucket(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// HistSnapshot is a point-in-time percentile summary.
type HistSnapshot struct {
	Count uint64
	Sum   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
	Max   time.Duration // exact, not bucket-resolved
}

// Snapshot computes the percentile summary from the current bucket counts.
// Percentiles report the upper bound of the bucket holding the requested
// rank, except the top occupied bucket, which reports the exact observed
// max (so p99 never exceeds max). Concurrent observations may land between
// the per-bucket loads; the summary is a consistent-enough view for
// monitoring, not an atomic cut.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	var counts [numHistBuckets]uint64
	var total uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	snap := HistSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if total == 0 {
		return snap
	}
	top := 0
	for i := numHistBuckets - 1; i >= 0; i-- {
		if counts[i] > 0 {
			top = i
			break
		}
	}
	quantile := func(q float64) time.Duration {
		rank := uint64(q * float64(total))
		if rank >= total {
			rank = total - 1
		}
		var cum uint64
		for i := 0; i < numHistBuckets; i++ {
			cum += counts[i]
			if cum > rank {
				if i == top {
					return snap.Max
				}
				return time.Duration(BucketUpperBound(i))
			}
		}
		return snap.Max
	}
	snap.P50 = quantile(0.50)
	snap.P90 = quantile(0.90)
	snap.P99 = quantile(0.99)
	return snap
}

// cumulativeBuckets returns (bucket upper bounds in seconds, cumulative
// counts) for exposition, covering buckets 0..top where top is the highest
// occupied bucket (so an idle histogram exposes a single +Inf bucket).
func (h *Histogram) cumulativeBuckets() ([]float64, []uint64) {
	var uppers []float64
	var cums []uint64
	var cum uint64
	top := -1
	var counts [numHistBuckets]uint64
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		if counts[i] > 0 {
			top = i
		}
	}
	for i := 0; i <= top; i++ {
		cum += counts[i]
		uppers = append(uppers, float64(BucketUpperBound(i))*1e-9)
		cums = append(cums, cum)
	}
	return uppers, cums
}
