package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
	"timeunion/internal/obs"
)

// The mid-compaction crash-torture harness: deterministic kill schedules at
// every manifest-swap boundary. Each schedule arms one FaultStore kill
// point — crash-before or crash-after a specific Put/Delete class — runs an
// append/sync/flush workload until the store dies mid flush or compaction,
// then recovers and asserts the two-sided contract: no synced sample lost
// AND no sample duplicated (strictly increasing query timestamps), with
// zero orphaned objects left on either tier. TORTURE_SCHEDULES/TORTURE_SEED
// work as in TestCrashTorture.

// killVariants enumerates the commit-protocol boundaries: both sides of the
// fast and slow manifest swaps, table writes of flush (l0), L0→L1 (l1) and
// L1→L2 (l2) builds both before and after durability, and the post-commit
// input deletion.
var killVariants = []cloud.KillPoint{
	{Op: "put", KeyPrefix: "manifest/fast/"},
	{Op: "put", KeyPrefix: "manifest/fast/", After: true},
	{Op: "put", KeyPrefix: "manifest/slow/"},
	{Op: "put", KeyPrefix: "manifest/slow/", After: true}, // between the slow and fast commits
	{Op: "put", KeyPrefix: "l0/"},
	{Op: "put", KeyPrefix: "l1/"},
	{Op: "put", KeyPrefix: "l1/", After: true},
	{Op: "put", KeyPrefix: "l2/"},
	{Op: "put", KeyPrefix: "l2/", After: true},
	{Op: "delete", KeyPrefix: "l"},
}

// variantOnSlow reports whether the kill point targets the slow store.
func variantOnSlow(kp cloud.KillPoint) bool {
	return strings.HasPrefix(kp.KeyPrefix, "l2/") || strings.HasPrefix(kp.KeyPrefix, "manifest/slow/")
}

func TestCompactionKillTorture(t *testing.T) {
	schedules := envInt("TORTURE_SCHEDULES", 8)
	if testing.Short() && schedules > 4 {
		schedules = 4
	}
	seed := int64(envInt("TORTURE_SEED", 20260806))

	// journaled accumulates the event kinds observed across every schedule
	// (pre-crash and post-recovery journals both count); the torture
	// workload as a whole must exercise — and journal — every
	// background-op kind it is guaranteed to drive.
	var (
		journaledMu sync.Mutex
		journaled   = map[string]int{}
	)
	record := func(j *obs.Journal) {
		journaledMu.Lock()
		defer journaledMu.Unlock()
		for _, ev := range j.Events(0, nil) {
			journaled[ev.Kind]++
		}
	}

	t.Run("schedules", func(t *testing.T) {
		for i := 0; i < schedules; i++ {
			kp := killVariants[i%len(killVariants)]
			kp.CountDown = 1 + (i/len(killVariants))%4
			name := fmt.Sprintf("schedule%02d_%s_%s_cd%d", i, kp.Op,
				strings.ReplaceAll(strings.TrimSuffix(kp.KeyPrefix, "/"), "/", "-"), kp.CountDown)
			if kp.After {
				name += "_after"
			}
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				runCompactionKillSchedule(t, seed+int64(i)*104729, kp, record)
			})
		}
	})

	journaledMu.Lock()
	defer journaledMu.Unlock()
	t.Logf("journaled kinds across %d schedules: %v", schedules, journaled)
	// Kinds the workload cannot avoid: every schedule opens (and reopens)
	// the DB, recovers the tree, flushes, commits manifests, rolls the tiny
	// WAL segments, and checkpoints on flush; the 1-partition L0 cap forces
	// L0→L1 compaction. Conditional kinds (quarantine, repair_truncate,
	// patch_merge, retention, job_abandoned) are covered by their own tests.
	for _, want := range []string{
		"core.open", "lsm.recover", "lsm.flush", "lsm.manifest_commit",
		"lsm.compact.l0l1", "wal.roll", "wal.checkpoint", "wal.purge",
	} {
		if journaled[want] == 0 {
			t.Errorf("torture run never journaled %q (got %v)", want, journaled)
		}
	}
}

const killTortureSeries = 4

func killVal(idx int, t int64) float64 { return float64(int64(idx+1)*10_000_000 + t) }

func runCompactionKillSchedule(t *testing.T, seed int64, kp cloud.KillPoint, record func(*obs.Journal)) {
	dir := t.TempDir()
	fastMem := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slowMem := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})

	// All-zero FaultConfig: the only injected failure is the armed kill
	// point, so every schedule is deterministic up to goroutine interleaving.
	open := func() (*DB, *cloud.FaultStore, *cloud.FaultStore) {
		t.Helper()
		fast := cloud.NewFaultStore(fastMem, cloud.FaultConfig{Seed: seed})
		slow := cloud.NewFaultStore(slowMem, cloud.FaultConfig{Seed: seed + 1})
		db, err := Open(Options{
			Dir:               dir,
			Fast:              fast,
			Slow:              slow,
			CacheBytes:        1 << 20,
			ChunkSamples:      8,
			SlotsPerRegion:    256,
			MemTableSize:      2 << 10,
			L0PartitionLength: 500,
			L2PartitionLength: 2000,
			MaxL0Partitions:   1,
			CompactionWorkers: 2,
			PatchThreshold:    2,
			TargetTableSize:   8 << 10,
			BlockSize:         512,
			WALSegmentSize:    2 << 10,
		})
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		return db, fast, slow
	}

	series := make([]*stream, killTortureSeries)
	for i := range series {
		series[i] = newStream()
	}

	db, fast, slow := open()

	// A concurrent read replica on the RAW MemStores (writer-side kills
	// must not sever it): it continuously refreshes and queries across
	// every crash/recovery, asserting the replica-side contract — whatever
	// a refreshed view serves is strictly increasing per series with the
	// exact appended values, at every manifest version the writer commits,
	// crashes through, or recovers to. Refresh errors are tolerated (the
	// prior view keeps serving); query errors are not.
	replica, err := OpenReplica(Options{
		Fast:                   fastMem,
		Slow:                   slowMem,
		CacheBytes:             1 << 20,
		ChunkSamples:           8,
		SlotsPerRegion:         256,
		BlockSize:              512,
		ReplicaRefreshInterval: -1,
	})
	if err != nil {
		t.Fatalf("open replica: %v", err)
	}
	replicaStop := make(chan struct{})
	replicaDone := make(chan struct{})
	go func() {
		defer close(replicaDone)
		for {
			select {
			case <-replicaStop:
				return
			case <-time.After(time.Millisecond):
			}
			_, _ = replica.Refresh()
			for idx := 0; idx < killTortureSeries; idx++ {
				res, err := replica.Query(0, int64(1)<<30, labels.MustEqual("m", fmt.Sprintf("k%d", idx)))
				if cloud.IsNotFound(err) {
					// A stale view can reference tables the writer's compaction
					// or recovery GC already deleted; the next refresh heals it.
					break
				}
				if err != nil {
					t.Errorf("replica query k%d: %v", idx, err)
					return
				}
				if len(res) > 1 {
					t.Errorf("replica query k%d returned %d series", idx, len(res))
					return
				}
				if len(res) == 0 {
					continue
				}
				last := int64(-1) << 62
				for _, p := range res[0].Samples {
					if p.T <= last {
						t.Errorf("replica k%d: duplicated or unordered sample t=%d (prev %d)", idx, p.T, last)
						return
					}
					last = p.T
					if want := killVal(idx, p.T); p.V != want {
						t.Errorf("replica k%d: t=%d v=%v, want %v", idx, p.T, p.V, want)
						return
					}
				}
			}
		}
	}()
	defer func() {
		close(replicaStop)
		<-replicaDone
		// After the final (fault-free) flush the shared storage is the
		// whole truth: writer and replica must answer identically.
		if _, err := replica.Refresh(); err != nil {
			t.Fatalf("final replica refresh: %v", err)
		}
		verifyExactlyOnce(t, replica, series)
		if err := replica.Close(); err != nil {
			t.Fatalf("replica close: %v", err)
		}
	}()
	// Arm after Open so the recovery commit itself cannot be the victim —
	// the workload's flushes and compactions are the targets.
	if variantOnSlow(kp) {
		slow.ArmKillPoint(kp)
	} else {
		fast.ArmKillPoint(kp)
	}

	nextT := int64(1)
	for op := 0; op < 4000 && !fast.Killed() && !slow.Killed(); op++ {
		idx := op % killTortureSeries
		ts := nextT
		nextT += 7
		v := killVal(idx, ts)
		lbls := labels.FromStrings("m", fmt.Sprintf("k%d", idx))
		if _, err := db.Append(lbls, ts, v); err != nil {
			series[idx].maybe[ts] = v
		} else {
			series[idx].acked[ts] = v
		}
		switch {
		case op%16 == 15:
			if err := db.Sync(); err == nil {
				for _, s := range series {
					s.promote()
				}
			}
		case op%48 == 40:
			_ = db.Flush() // drives flush + compaction; may die at the kill point
		case op%96 == 70:
			_, _ = db.PurgeWAL()
		}
	}
	if !fast.Killed() && !slow.Killed() {
		t.Logf("kill point %+v never triggered; crashing manually", kp)
	}

	// Crash: sever both stores, abandon WAL and head without flushing.
	record(db.Journal())
	fast.Kill()
	slow.Kill()
	_ = db.store.Close()
	_ = db.wal.CrashClose()
	_ = db.head.Close()
	for _, s := range series {
		s.demote()
	}

	db, fast, slow = open()
	verifyExactlyOnce(t, db, series)
	assertNoOrphans(t, db, "after recovery")

	// Phase 2: the recovered tree must keep working — more appends, a real
	// flush (no faults armed now), and the contract must still hold.
	for op := 0; op < 200; op++ {
		idx := op % killTortureSeries
		ts := nextT
		nextT += 7
		v := killVal(idx, ts)
		if _, err := db.Append(labels.FromStrings("m", fmt.Sprintf("k%d", idx)), ts, v); err != nil {
			t.Fatalf("phase-2 append: %v", err)
		}
		series[idx].acked[ts] = v
	}
	if err := db.Sync(); err != nil {
		t.Fatalf("phase-2 sync: %v", err)
	}
	for _, s := range series {
		s.promote()
	}
	if err := db.Flush(); err != nil {
		t.Fatalf("phase-2 flush: %v", err)
	}
	verifyExactlyOnce(t, db, series)
	assertNoOrphans(t, db, "after phase-2 flush")
	record(db.Journal())
	if err := db.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// verifyExactlyOnce checks both sides of the contract per series: strictly
// increasing timestamps (zero duplicated samples, however the tree
// recovered), every returned sample was actually appended with that value,
// and every durable (synced) sample is present.
func verifyExactlyOnce(t *testing.T, db *DB, series []*stream) {
	t.Helper()
	for idx, s := range series {
		name := fmt.Sprintf("series k%d", idx)
		res, err := db.Query(0, int64(1)<<30, labels.MustEqual("m", fmt.Sprintf("k%d", idx)))
		if err != nil {
			t.Fatalf("%s: query: %v", name, err)
		}
		if len(res) > 1 {
			t.Fatalf("%s: query returned %d series, want at most 1", name, len(res))
		}
		got := map[int64]float64{}
		last := int64(-1) << 62
		if len(res) == 1 {
			for _, p := range res[0].Samples {
				if p.T <= last {
					t.Fatalf("%s: duplicated or unordered sample at t=%d (prev t=%d)", name, p.T, last)
				}
				last = p.T
				want, ok := s.expected(p.T)
				if !ok {
					t.Fatalf("%s: t=%d v=%v was never appended", name, p.T, p.V)
				}
				if want != p.V {
					t.Fatalf("%s: t=%d got v=%v, appended v=%v", name, p.T, p.V, want)
				}
				got[p.T] = p.V
			}
		}
		for ts, v := range s.durable {
			if gv, ok := got[ts]; !ok {
				t.Fatalf("%s: durable sample t=%d v=%v lost (stats=%+v)", name, ts, v, db.Stats())
			} else if gv != v {
				t.Fatalf("%s: durable sample t=%d got v=%v, want v=%v", name, ts, gv, v)
			}
		}
	}
}

// assertNoOrphans fails if either tier holds objects the live tree does not
// reference — recovery GC must leave the buckets exactly matching the
// manifests.
func assertNoOrphans(t *testing.T, db *DB, when string) {
	t.Helper()
	tree, ok := db.ChunkStoreRef().(*lsm.LSM)
	if !ok {
		t.Fatalf("chunk store is not the LSM tree")
	}
	orphans, err := tree.Orphans()
	if err != nil {
		t.Fatalf("orphans %s: %v", when, err)
	}
	if len(orphans) != 0 {
		t.Fatalf("orphaned objects %s: %v", when, orphans)
	}
}
