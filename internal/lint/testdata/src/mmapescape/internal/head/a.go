// Package head shows rule 1: raw Region.Data() calls outside
// internal/xmmap are flagged regardless of how the bytes are used.
package head

import "fix/internal/xmmap"

func peek(r *xmmap.Region) byte {
	return r.Data()[0] // want "outside internal/xmmap"
}

func local(r *xmmap.Region) int {
	d := r.Data() // want "outside internal/xmmap"
	return len(d)
}
