// Package tsdb reimplements the architecture of the Prometheus tsdb storage
// engine (paper §2.2, Figure 2), the "tsdb" baseline of the evaluation:
//
//   - all incoming samples batch in memory; each series buffers relatively
//     large chunks (120 samples) before sealing them;
//   - a per-partition inverted index is built on the fly from nested hash
//     tables (the memory-hungry structure Figure 3 profiles);
//   - every BlockSpan (2 hours in Prometheus) the whole in-memory state is
//     flushed to a self-contained block — index plus chunk data — and the
//     in-memory structures are rebuilt, which contends with foreground
//     inserts;
//   - on-disk blocks are merged into larger blocks once enough accumulate;
//   - querying an old block loads its index into memory (the behaviour that
//     makes long-range queries on S3-resident blocks slow and memory-bound).
//
// The tsdb-LDB variant (§4.1) stores sealed chunks in a LevelDB-style LSM
// keyed by unique IDs instead of per-block chunk files.
package tsdb

import (
	"fmt"
	"sync"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/goleveldb"
	"timeunion/internal/labels"
)

// Options configures the engine.
type Options struct {
	// Store holds the flushed blocks (EBS- or S3-backed).
	Store cloud.Store
	// Cache caches loaded block indexes and chunk segments.
	Cache *cloud.LRUCache
	// BlockSpan is the head flush period (Prometheus: 2 h).
	BlockSpan int64
	// ChunkSamples is the per-series buffer before sealing a chunk
	// (Prometheus: 120).
	ChunkSamples int
	// MergeBlocks merges persisted blocks once this many accumulate
	// (0 disables merging).
	MergeBlocks int
	// SampleDB, if non-nil, makes this a tsdb-LDB engine: sealed chunks
	// go into the LSM under unique keys; blocks keep only the index.
	SampleDB *goleveldb.DB
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.BlockSpan <= 0 {
		opts.BlockSpan = 2 * 60 * 60 * 1000
	}
	if opts.ChunkSamples <= 0 {
		opts.ChunkSamples = 120
	}
	return opts
}

// memSeries is one series' in-memory state: Prometheus keeps every sealed
// chunk of the current head block in memory until the block flushes.
type memSeries struct {
	id     uint64
	lbls   labels.Labels
	chunk  *chunkenc.XORChunk
	sealed [][]byte // sealed chunk payloads of the current head block
	minT   int64
	maxT   int64
	count  int
}

// headIndex is the nested-hash-table inverted index (§2.4: "they are
// maintained by nested hash tables, which require much extra space").
type headIndex struct {
	postings map[string]map[string][]uint64
	entries  int
}

func newHeadIndex() *headIndex {
	return &headIndex{postings: map[string]map[string][]uint64{}}
}

func (ix *headIndex) add(id uint64, ls labels.Labels) {
	for _, l := range ls {
		vals := ix.postings[l.Name]
		if vals == nil {
			vals = map[string][]uint64{}
			ix.postings[l.Name] = vals
		}
		vals[l.Value] = append(vals[l.Value], id)
		ix.entries++
	}
}

// DB is the tsdb baseline engine.
type DB struct {
	opts Options

	mu       sync.RWMutex
	series   map[uint64]*memSeries
	byKey    map[string]uint64
	index    *headIndex
	nextID   uint64
	headMinT int64
	headMaxT int64
	headSet  bool

	blocks           []*block
	nextBlk          int
	loadedIndexBytes int64 // block metadata pulled into memory for queries
}

// Open creates an empty engine.
func Open(opts Options) (*DB, error) {
	o := opts.withDefaults()
	if o.Store == nil {
		return nil, fmt.Errorf("tsdb: Store is required")
	}
	return &DB{
		opts:   o,
		series: make(map[uint64]*memSeries),
		byKey:  make(map[string]uint64),
		index:  newHeadIndex(),
	}, nil
}

// Append inserts a sample by tags, creating the series if needed.
func (db *DB) Append(ls labels.Labels, t int64, v float64) (uint64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	key := ls.Key()
	id, ok := db.byKey[key]
	if !ok {
		db.nextID++
		id = db.nextID
		s := &memSeries{id: id, lbls: ls.Copy(), minT: t, maxT: t}
		db.series[id] = s
		db.byKey[key] = id
		db.index.add(id, s.lbls)
	}
	return id, db.appendLocked(db.series[id], t, v)
}

// AppendFast inserts a sample by series ID.
func (db *DB) AppendFast(id uint64, t int64, v float64) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.series[id]
	if !ok {
		return fmt.Errorf("tsdb: unknown series %d", id)
	}
	return db.appendLocked(s, t, v)
}

func (db *DB) appendLocked(s *memSeries, t int64, v float64) error {
	// Prometheus rejects out-of-order samples (§2.2: "Prometheus does not
	// even support this").
	if s.count > 0 && t <= s.maxT {
		return fmt.Errorf("tsdb: out-of-order sample for series %d: %d <= %d", s.id, t, s.maxT)
	}
	if s.chunk == nil {
		s.chunk = chunkenc.NewXORChunk()
	}
	if err := s.chunk.Append(t, v); err != nil {
		return err
	}
	if s.count == 0 || t < s.minT {
		s.minT = t
	}
	s.maxT = t
	s.count++
	if !db.headSet || t < db.headMinT {
		if !db.headSet {
			db.headMinT = t
		}
	}
	if !db.headSet || t > db.headMaxT {
		db.headMaxT = t
	}
	db.headSet = true
	if s.chunk.NumSamples() >= db.opts.ChunkSamples {
		s.sealed = append(s.sealed, append([]byte(nil), s.chunk.Bytes()...))
		s.chunk = nil
	}
	// Head block full: flush synchronously. The flush walks and rebuilds
	// every in-memory structure, which is exactly the insertion contention
	// the paper measures against (§2.2).
	if db.headMaxT-db.headMinT >= db.opts.BlockSpan {
		if err := db.flushHeadLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Flush persists the head block unconditionally.
func (db *DB) Flush() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if err := db.flushHeadLocked(); err != nil {
		return err
	}
	if db.opts.SampleDB != nil {
		db.mu.Unlock()
		err := db.opts.SampleDB.Flush()
		db.mu.Lock()
		return err
	}
	return nil
}

// NumSeries returns the number of known series.
func (db *DB) NumSeries() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.series)
}

// NumBlocks returns the number of persisted blocks.
func (db *DB) NumBlocks() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.blocks)
}

// MemoryFootprint mirrors the Figure 3 breakdown: inverted index (nested
// hash tables), block metadata loaded for queries, and buffered samples.
type MemoryFootprint struct {
	IndexBytes     int64
	BlockMetaBytes int64
	SampleBytes    int64
	ObjectBytes    int64
}

// Total sums the components.
func (m MemoryFootprint) Total() int64 {
	return m.IndexBytes + m.BlockMetaBytes + m.SampleBytes + m.ObjectBytes
}

// mapEntryOverhead approximates Go map bucket + header costs per entry: the
// nested-hash-table tax that makes the tsdb index large (Figure 3).
const mapEntryOverhead = 64

// Footprint returns the accounted in-memory size.
func (db *DB) Footprint() MemoryFootprint {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var f MemoryFootprint
	for name, vals := range db.index.postings {
		f.IndexBytes += int64(len(name)) + mapEntryOverhead
		for val, ids := range vals {
			f.IndexBytes += int64(len(val)) + mapEntryOverhead + int64(len(ids))*8
		}
	}
	for _, s := range db.series {
		f.ObjectBytes += 96 + int64(s.lbls.SizeBytes()) + mapEntryOverhead
		if s.chunk != nil {
			f.SampleBytes += int64(len(s.chunk.Bytes()))
		}
		for _, c := range s.sealed {
			f.SampleBytes += int64(len(c))
		}
	}
	f.BlockMetaBytes = db.loadedIndexBytes
	return f
}
