package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4), hand-rolled: one HELP/TYPE block per
// metric name followed by its series. Histograms render the standard
// _bucket{le=...}/_sum/_count triplet with cumulative counts at
// power-of-two upper bounds expressed in seconds.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	lastName := ""
	r.each(func(m *metric) {
		if m.name != lastName {
			if m.help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, m.kind.typeString())
			lastName = m.name
		}
		if m.kind == kindHistogram {
			writeHistogram(bw, m)
			return
		}
		fmt.Fprintf(bw, "%s %s\n", m.key(), formatValue(m.value()))
	})
	return bw.Flush()
}

// writeHistogram renders one histogram series.
func writeHistogram(w io.Writer, m *metric) {
	uppers, cums := m.h.cumulativeBuckets()
	for i, le := range uppers {
		fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.name, joinLabels(m.labels, `le="`+formatValue(le)+`"`), cums[i])
	}
	// The +Inf bucket must stay monotonic even if observations raced in
	// between the per-bucket loads and the count load.
	inf := m.h.Count()
	if len(cums) > 0 && cums[len(cums)-1] > inf {
		inf = cums[len(cums)-1]
	}
	fmt.Fprintf(w, "%s_bucket{%s} %d\n", m.name, joinLabels(m.labels, `le="+Inf"`), inf)
	fmt.Fprintf(w, "%s %s\n", seriesKey(m.name+"_sum", m.labels), formatValue(m.h.Snapshot().Sum.Seconds()))
	fmt.Fprintf(w, "%s %d\n", seriesKey(m.name+"_count", m.labels), inf)
}

// joinLabels merges a base label-pair string with an extra pair.
func joinLabels(base, extra string) string {
	if base == "" {
		return extra
	}
	return base + "," + extra
}

// formatValue renders a float in the exposition grammar (shortest
// round-trip representation; integers come out bare).
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in the Prometheus
// text exposition format — the GET /metrics endpoint.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
