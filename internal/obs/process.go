package obs

import (
	"fmt"
	"runtime"
	"time"
)

// BuildVersion identifies this build in timeunion_build_info. Overridable
// at link time:
//
//	go build -ldflags "-X timeunion/internal/obs.BuildVersion=v1.2.3"
var BuildVersion = "0.8.0-dev"

// processStart anchors timeunion_process_uptime_seconds.
var processStart = time.Now()

// RegisterProcessMetrics exposes the process-level series every deployment
// wants on its first dashboard: timeunion_build_info (a constant-1 gauge
// whose labels carry the build and Go toolchain versions, the standard
// join-target idiom) and timeunion_process_uptime_seconds. Registration is
// idempotent, so multiple DB instances sharing one registry are fine.
func RegisterProcessMetrics(reg *Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("timeunion_build_info",
		fmt.Sprintf("version=%q,goversion=%q", BuildVersion, runtime.Version()),
		"Build information; value is always 1.",
		func() float64 { return 1 })
	reg.GaugeFunc("timeunion_process_uptime_seconds", "",
		"Seconds since this process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}
