// Package obs is a minimal stand-in for the real registry so the
// metricname fixture type-checks without importing the module under test.
package obs

type Counter struct{}

type Gauge struct{}

type Histogram struct{}

type Registry struct{}

func (r *Registry) Counter(name, labels, help string) *Counter     { return nil }
func (r *Registry) Gauge(name, labels, help string) *Gauge         { return nil }
func (r *Registry) Histogram(name, labels, help string) *Histogram { return nil }

func (r *Registry) CounterFunc(name, labels, help string, fn func() float64) {}
func (r *Registry) GaugeFunc(name, labels, help string, fn func() float64)   {}
