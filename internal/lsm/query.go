package lsm

import (
	"math"
	"sort"
	"sync"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/memtable"
	"timeunion/internal/tuple"
)

// ChunkRef is one chunk returned by a query. Rank orders chunks of one
// series by recency: when two chunks contain samples for the same
// timestamp, the chunk with the higher rank holds the newer sample (paper
// §3.3: "keep the data sample from the newest SSTable"). The rank is the
// chunk's embedded sequence ID — per-series sequences increase with every
// inserted sample, so a chunk written later always carries a larger
// sequence than any chunk it overlaps, wherever the two chunks live
// (memtable, different tables, or the same table).
type ChunkRef struct {
	Key   encoding.Key
	Value []byte
	Rank  uint64
	// MinT and MaxT are the chunk's first and last sample timestamps, read
	// from the tuple envelope without decoding the payload. The streaming
	// read path uses them to skip chunks outside the query range entirely.
	MinT, MaxT int64
}

// tableScan is one retained table to read during ChunksForInto.
type tableScan struct {
	h      *tableHandle
	startT int64
}

// scanScratch pools the per-call gather bookkeeping of ChunksForInto.
type scanScratch struct {
	scans []tableScan
	mems  []*memtable.MemTable
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// ChunksFor returns every chunk of the series/group id whose samples
// overlap [mint, maxt], gathered from the active memtable, the immutable
// queue, and all three levels (including L2 patches), sorted by ascending
// rank (oldest source first).
func (l *LSM) ChunksFor(id uint64, mint, maxt int64) ([]ChunkRef, error) {
	return l.ChunksForInto(nil, id, mint, maxt)
}

// ChunksForInto is ChunksFor appending into buf (which may be a reused
// backing array; it is overwritten from index 0). The returned ChunkRef
// Values are zero-copy: they alias immutable storage — cache-resident
// SSTable blocks and memtable values, both immutable after insert — and
// must be treated as read-only. The aliases stay valid for as long as they
// are referenced; overwriting buf on the next call drops them.
func (l *LSM) ChunksForInto(buf []ChunkRef, id uint64, mint, maxt int64) ([]ChunkRef, error) {
	if maxt == math.MaxInt64 {
		maxt--
	}
	sc := scanScratchPool.Get().(*scanScratch)
	scans := sc.scans[:0]
	mems := sc.mems[:0]
	defer func() {
		for i := range scans {
			scans[i] = tableScan{}
		}
		for i := range mems {
			mems[i] = nil
		}
		sc.scans, sc.mems = scans[:0], mems[:0]
		scanScratchPool.Put(sc)
	}()

	l.mu.RLock()
	mems = append(mems, l.imm...)
	mems = append(mems, l.mem)
	for _, level := range [][]*partition{l.l0, l.l1, l.l2} {
		for _, p := range level {
			if !p.overlaps(mint, maxt+1) {
				continue
			}
			for i, h := range p.tables {
				h.retain()
				scans = append(scans, tableScan{h: h, startT: p.minT})
				if i < len(p.patches) {
					for _, ph := range p.patches[i] {
						ph.retain()
						scans = append(scans, tableScan{h: ph, startT: p.minT})
					}
				}
			}
		}
	}
	l.mu.RUnlock()

	out := buf[:0]
	var firstErr error
	for _, s := range scans {
		if firstErr != nil {
			s.h.release()
			continue
		}
		start := encoding.MakeKey(id, s.startT)
		end := encoding.MakeKey(id, maxt+1)
		it := s.h.tbl.Iter(start[:], end[:])
		for it.Next() {
			key, err := encoding.ParseKey(it.Key())
			if err != nil {
				firstErr = err
				break
			}
			val := it.Value() // zero-copy: aliases the immutable cached block
			lo, hi, err := tuple.TimeRange(val)
			if err != nil {
				firstErr = err
				break
			}
			if hi < mint || lo > maxt {
				continue
			}
			out = append(out, ChunkRef{Key: key, Value: val, Rank: tuple.SeqOf(val), MinT: lo, MaxT: hi})
		}
		if err := it.Err(); err != nil && firstErr == nil {
			firstErr = err
		}
		it.Release()
		s.h.release()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	// Memtables: chunks are not partition-bounded, so scan the whole key
	// range of the id and filter by actual sample times.
	for _, m := range mems {
		start := encoding.MakeKey(id, math.MinInt64)
		it := m.IterAt(start[:], nil)
		for it.Next() {
			key, err := encoding.ParseKey(it.Key())
			if err != nil {
				return nil, err
			}
			if key.ID() != id {
				break
			}
			val := it.Value() // zero-copy: memtable values are immutable
			lo, hi, err := tuple.TimeRange(val)
			if err != nil {
				return nil, err
			}
			if hi < mint || lo > maxt {
				continue
			}
			out = append(out, ChunkRef{Key: key, Value: val, Rank: tuple.SeqOf(val), MinT: lo, MaxT: hi})
		}
	}

	// Insertion sort by rank: chunk lists are short, and sort.Slice's
	// closure + interface conversion would allocate on every query.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Rank < out[j-1].Rank; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out, nil
}

// SeriesSamples decodes and merges a rank-sorted chunk list into one sorted
// sample slice for an individual series, newer sources overriding older at
// equal timestamps, clipped to [mint, maxt].
func SeriesSamples(chunks []ChunkRef, mint, maxt int64) ([]SamplePair, error) {
	var acc []SamplePair
	for _, c := range chunks {
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			return nil, err
		}
		if kind != tuple.KindSeries {
			continue
		}
		ss, err := decodeSeries(payload)
		if err != nil {
			return nil, err
		}
		acc = mergePairs(acc, ss)
	}
	return clipPairs(acc, mint, maxt), nil
}

// SamplePair is a decoded (timestamp, value) pair.
type SamplePair struct {
	T int64
	V float64
}

func decodeSeries(payload []byte) ([]SamplePair, error) {
	ss, err := chunkenc.DecodeXORSamples(payload)
	if err != nil {
		return nil, err
	}
	out := make([]SamplePair, len(ss))
	for i, s := range ss {
		out[i] = SamplePair{T: s.T, V: s.V}
	}
	return out, nil
}

// decodeGroup expands a group tuple into per-slot non-NULL sample runs.
func decodeGroup(payload []byte) (map[uint32][]SamplePair, error) {
	g, err := chunkenc.DecodeGroupData(payload)
	if err != nil {
		return nil, err
	}
	out := map[uint32][]SamplePair{}
	for _, col := range g.Columns {
		for i, t := range g.Times {
			if i < len(col.Nulls) && !col.Nulls[i] {
				out[col.Slot] = append(out[col.Slot], SamplePair{T: t, V: col.Values[i]})
			}
		}
	}
	return out, nil
}

// GroupSamples merges group chunks into per-slot sample slices.
func GroupSamples(chunks []ChunkRef, mint, maxt int64) (map[uint32][]SamplePair, error) {
	acc := map[uint32][]SamplePair{}
	for _, c := range chunks {
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			return nil, err
		}
		if kind != tuple.KindGroup {
			continue
		}
		g, err := decodeGroup(payload)
		if err != nil {
			return nil, err
		}
		for slot, ss := range g {
			acc[slot] = mergePairs(acc[slot], ss)
		}
	}
	for slot := range acc {
		acc[slot] = clipPairs(acc[slot], mint, maxt)
		if len(acc[slot]) == 0 {
			delete(acc, slot)
		}
	}
	return acc, nil
}

// mergePairs merges two sorted runs; values from b win on equal timestamps.
func mergePairs(a, b []SamplePair) []SamplePair {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]SamplePair, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].T < b[j].T:
			out = append(out, a[i])
			i++
		case a[i].T > b[j].T:
			out = append(out, b[j])
			j++
		default:
			out = append(out, b[j])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

func clipPairs(s []SamplePair, mint, maxt int64) []SamplePair {
	lo := sort.Search(len(s), func(i int) bool { return s[i].T >= mint })
	hi := sort.Search(len(s), func(i int) bool { return s[i].T > maxt })
	return s[lo:hi]
}
