package tsdb

import (
	"fmt"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/goleveldb"
	"timeunion/internal/labels"
)

func openTsdb(t *testing.T, ldb bool) (*DB, *cloud.MemStore) {
	t.Helper()
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	opts := Options{
		Store:        store,
		Cache:        cloud.NewLRUCache(1 << 20),
		BlockSpan:    2000,
		ChunkSamples: 12,
		MergeBlocks:  4,
	}
	if ldb {
		sdb, err := goleveldb.Open(goleveldb.Options{
			Store:               cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
			MemTableSize:        4 << 10,
			L0CompactionTrigger: 3,
			BaseLevelBytes:      8 << 10,
			Multiplier:          4,
			MaxLevels:           5,
			TargetTableSize:     8 << 10,
			BlockSize:           512,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { sdb.Close() })
		opts.SampleDB = sdb
	}
	db, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	return db, store
}

func TestAppendAndHeadQuery(t *testing.T) {
	db, _ := openTsdb(t, false)
	ls := labels.FromStrings("metric", "cpu", "host", "h1")
	id, err := db.Append(ls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts < 1000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(0, 1000, labels.MustEqual("metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 100 {
		t.Fatalf("head query = %d series / %d samples", len(res), len(res[0].Samples))
	}
}

func TestRejectsOutOfOrder(t *testing.T) {
	db, _ := openTsdb(t, false)
	id, err := db.Append(labels.FromStrings("m", "x"), 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.AppendFast(id, 50, 2); err == nil {
		t.Fatal("out-of-order accepted")
	}
	if err := db.AppendFast(id, 100, 2); err == nil {
		t.Fatal("duplicate timestamp accepted")
	}
}

func TestBlockFlushAndQuery(t *testing.T) {
	db, store := openTsdb(t, false)
	id, err := db.Append(labels.FromStrings("metric", "cpu"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Span > 3 block spans: forces automatic flushes mid-insert.
	for ts := int64(10); ts <= 7000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.NumBlocks() == 0 {
		t.Fatal("no blocks persisted")
	}
	if store.TotalBytes() == 0 {
		t.Fatal("nothing stored")
	}
	res, err := db.Query(0, 7000, labels.MustEqual("metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 701 {
		t.Fatalf("query across blocks = %d series / %d samples", len(res), len(res[0].Samples))
	}
	// Samples sorted, deduplicated.
	for i := 1; i < len(res[0].Samples); i++ {
		if res[0].Samples[i].T <= res[0].Samples[i-1].T {
			t.Fatal("samples not strictly sorted")
		}
	}
}

func TestBlockMerge(t *testing.T) {
	db, _ := openTsdb(t, false)
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 10 block spans: with MergeBlocks=4, merges must have happened.
	for ts := int64(10); ts <= 20000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.NumBlocks() >= 5 {
		t.Fatalf("blocks never merged: %d", db.NumBlocks())
	}
	res, err := db.Query(0, 20000, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 2001 {
		t.Fatalf("post-merge query = %d samples", len(res[0].Samples))
	}
}

func TestTsdbLDBVariant(t *testing.T) {
	db, store := openTsdb(t, true)
	id, err := db.Append(labels.FromStrings("metric", "cpu"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 5000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(0, 5000, labels.MustEqual("metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 501 {
		t.Fatalf("tsdb-LDB query = %d series, %d samples", len(res), len(res[0].Samples))
	}
	// Chunks must NOT be in block chunk objects: only indexes there.
	keys, err := store.List("tsdbblk/")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if len(k) > 6 && k[len(k)-6:] == "chunks" {
			t.Fatalf("tsdb-LDB wrote a chunks object: %s", k)
		}
	}
}

func TestMultiSeriesSelect(t *testing.T) {
	db, _ := openTsdb(t, false)
	for h := 0; h < 10; h++ {
		metric := "cpu"
		if h%2 == 1 {
			metric = "mem"
		}
		ls := labels.FromStrings("metric", metric, "host", fmt.Sprintf("h%d", h))
		if _, err := db.Append(ls, 100, float64(h)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(0, 200, labels.MustEqual("metric", "cpu"))
	if err != nil || len(res) != 5 {
		t.Fatalf("select cpu = %d series, %v", len(res), err)
	}
	res, err = db.Query(0, 200, labels.MustMatcher(labels.MatchRegexp, "host", "h[0-2]"))
	if err != nil || len(res) != 3 {
		t.Fatalf("regex select = %d series, %v", len(res), err)
	}
	res, err = db.Query(0, 200,
		labels.MustEqual("metric", "cpu"),
		labels.MustMatcher(labels.MatchNotEqual, "host", "h0"))
	if err != nil || len(res) != 4 {
		t.Fatalf("negative select = %d series, %v", len(res), err)
	}
}

func TestFootprintLinearInSeries(t *testing.T) {
	db, _ := openTsdb(t, false)
	for i := 0; i < 200; i++ {
		ls := labels.FromStrings("metric", "cpu", "host", fmt.Sprintf("host-%d", i))
		if _, err := db.Append(ls, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	f200 := db.Footprint().Total()
	for i := 200; i < 400; i++ {
		ls := labels.FromStrings("metric", "cpu", "host", fmt.Sprintf("host-%d", i))
		if _, err := db.Append(ls, 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	f400 := db.Footprint().Total()
	if f400 <= f200 {
		t.Fatal("footprint not growing with series")
	}
	ratio := float64(f400) / float64(f200)
	if ratio < 1.5 || ratio > 2.5 {
		t.Fatalf("footprint growth not ~linear: %f", ratio)
	}
}

func TestBlockMetaAccounting(t *testing.T) {
	db, _ := openTsdb(t, false)
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 3000; ts += 10 {
		if err := db.AppendFast(id, ts, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(0, 3000, labels.MustEqual("m", "x")); err != nil {
		t.Fatal(err)
	}
	if db.Footprint().BlockMetaBytes == 0 {
		t.Fatal("block metadata loading not accounted")
	}
}

func TestQuerySpanningHeadAndBlocks(t *testing.T) {
	db, _ := openTsdb(t, false)
	id, err := db.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 2.5 block spans: two flushed blocks plus a live head.
	for ts := int64(10); ts <= 5000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	// No explicit flush: the head still holds the tail.
	res, err := db.Query(0, 5000, labels.MustEqual("m", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Samples) != 501 {
		t.Fatalf("spanning query = %d samples", len(res[0].Samples))
	}
	for i, p := range res[0].Samples {
		if int64(i)*10 != p.T {
			t.Fatalf("gap at %d: t=%d", i, p.T)
		}
	}
}
