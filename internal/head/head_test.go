package head

import (
	"fmt"
	"sync"
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/index"
	"timeunion/internal/labels"
	"timeunion/internal/tuple"
	"timeunion/internal/wal"
)

// memSink collects flushed chunks for inspection.
type memSink struct {
	mu  sync.Mutex
	kvs []tuple.KV
}

func (s *memSink) sink(key encoding.Key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.kvs = append(s.kvs, tuple.KV{Key: key, Value: append([]byte(nil), value...)})
	return nil
}

// samplesFor decodes every flushed chunk of id into merged samples.
func (s *memSink) samplesFor(t *testing.T, id uint64) []chunkenc.Sample {
	t.Helper()
	s.mu.Lock()
	defer s.mu.Unlock()
	var all []chunkenc.Sample
	for _, kv := range s.kvs {
		if kv.Key.ID() != id {
			continue
		}
		_, kind, payload, err := tuple.Decode(kv.Value)
		if err != nil {
			t.Fatal(err)
		}
		if kind != tuple.KindSeries {
			continue
		}
		ss, err := chunkenc.DecodeXORSamples(payload)
		if err != nil {
			t.Fatal(err)
		}
		all = chunkenc.MergeSamples(all, ss)
	}
	return all
}

func newTestHead(t *testing.T, w *wal.WAL) (*Head, *memSink) {
	t.Helper()
	sink := &memSink{}
	h, err := New(Options{
		ChunkSamples:   4, // tiny chunks: flushes trigger quickly
		SlotSize:       256,
		SlotsPerRegion: 64,
		WAL:            w,
		Sink:           sink.sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { h.Close() })
	return h, sink
}

func TestAppendCreatesSeriesAndIndexes(t *testing.T) {
	h, _ := newTestHead(t, nil)
	ls := labels.FromStrings("metric", "cpu", "host", "h1")
	id, err := h.Append(ls, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Fatal("zero series id")
	}
	// Second slow-path append reuses the series.
	id2, err := h.Append(ls, 200, 0.6)
	if err != nil || id2 != id {
		t.Fatalf("second append: id=%d err=%v", id2, err)
	}
	if h.NumSeries() != 1 {
		t.Fatalf("NumSeries = %d", h.NumSeries())
	}
	got, err := h.Index().Select(labels.MustEqual("metric", "cpu"))
	if err != nil || len(got) != 1 || got[0] != id {
		t.Fatalf("index select = %v, %v", got, err)
	}
	if lbls, ok := h.SeriesLabels(id); !ok || !lbls.Equal(ls) {
		t.Fatalf("SeriesLabels = %v, %v", lbls, ok)
	}
}

func TestAppendFastUnknownSeries(t *testing.T) {
	h, _ := newTestHead(t, nil)
	if err := h.AppendFast(42, 1, 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestChunkFlushAtCapacity(t *testing.T) {
	h, sink := newTestHead(t, nil)
	id, err := h.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ { // chunk capacity is 4
		if err := h.AppendFast(id, int64(i)*10, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.kvs) != 1 {
		t.Fatalf("flushed %d chunks, want 1", len(sink.kvs))
	}
	got := sink.samplesFor(t, id)
	if len(got) != 4 || got[3] != (chunkenc.Sample{T: 30, V: 3}) {
		t.Fatalf("flushed samples = %v", got)
	}
	// Head chunk is now empty.
	hs, err := h.HeadSamples(id, 0, 1000)
	if err != nil || len(hs) != 0 {
		t.Fatalf("head samples after flush = %v, %v", hs, err)
	}
	// The sequence embedded in the flushed chunk is the series seq.
	if seq := tuple.SeqOf(sink.kvs[0].Value); seq != 4 {
		t.Fatalf("embedded seq = %d", seq)
	}
}

func TestHeadSamplesRange(t *testing.T) {
	h, _ := newTestHead(t, nil)
	id, _ := h.Append(labels.FromStrings("m", "x"), 10, 1)
	h.AppendFast(id, 20, 2)
	h.AppendFast(id, 30, 3)
	got, err := h.HeadSamples(id, 15, 25)
	if err != nil || len(got) != 1 || got[0].T != 20 {
		t.Fatalf("HeadSamples = %v, %v", got, err)
	}
}

func TestOutOfOrderWithinOpenChunk(t *testing.T) {
	h, _ := newTestHead(t, nil)
	id, _ := h.Append(labels.FromStrings("m", "x"), 10, 1)
	h.AppendFast(id, 30, 3)
	// Insert between existing samples.
	if err := h.AppendFast(id, 20, 2); err != nil {
		t.Fatal(err)
	}
	// Replace an existing timestamp.
	if err := h.AppendFast(id, 10, 11); err != nil {
		t.Fatal(err)
	}
	got, err := h.HeadSamples(id, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	want := []chunkenc.Sample{{T: 10, V: 11}, {T: 20, V: 2}, {T: 30, V: 3}}
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOutOfOrderOlderThanChunkEarlyFlush(t *testing.T) {
	h, sink := newTestHead(t, nil)
	id, _ := h.Append(labels.FromStrings("m", "x"), 1000, 1)
	// Much older sample: early-flushed directly to the sink.
	if err := h.AppendFast(id, 5, 0.5); err != nil {
		t.Fatal(err)
	}
	if len(sink.kvs) != 1 {
		t.Fatalf("early flush missing: %d kvs", len(sink.kvs))
	}
	if sink.kvs[0].Key.StartT() != 5 {
		t.Fatalf("early-flushed key = %v", sink.kvs[0].Key)
	}
	// Open chunk unaffected.
	hs, _ := h.HeadSamples(id, 0, 10000)
	if len(hs) != 1 || hs[0].T != 1000 {
		t.Fatalf("head samples = %v", hs)
	}
}

func TestFlushOpenChunks(t *testing.T) {
	h, sink := newTestHead(t, nil)
	id, _ := h.Append(labels.FromStrings("m", "x"), 10, 1)
	if err := h.FlushOpenChunks(); err != nil {
		t.Fatal(err)
	}
	if got := sink.samplesFor(t, id); len(got) != 1 {
		t.Fatalf("flushed = %v", got)
	}
}

func TestGroupAppendAndSlots(t *testing.T) {
	h, _ := newTestHead(t, nil)
	gTags := labels.FromStrings("hostname", "host_0", "region", "ap-1")
	u0 := labels.FromStrings("metric", "usage_user")
	u1 := labels.FromStrings("metric", "usage_system")
	gid, slots, err := h.AppendGroup(gTags, []labels.Labels{u0, u1}, 100, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !index.IsGroupID(gid) {
		t.Fatalf("gid %x lacks group flag", gid)
	}
	if len(slots) != 2 || slots[0] != 0 || slots[1] != 1 {
		t.Fatalf("slots = %v", slots)
	}
	// Fast path with partial membership (member 1 missing → NULL).
	if err := h.AppendGroupFast(gid, []int{0}, 200, []float64{3}); err != nil {
		t.Fatal(err)
	}
	// New member joins mid-chunk (backfill).
	u2 := labels.FromStrings("metric", "usage_idle")
	_, slots2, err := h.AppendGroup(gTags, []labels.Labels{u2}, 300, []float64{9})
	if err != nil {
		t.Fatal(err)
	}
	if slots2[0] != 2 {
		t.Fatalf("new member slot = %d", slots2[0])
	}

	got, err := h.HeadGroupSamples(gid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 2 || got[0][1] != (chunkenc.Sample{T: 200, V: 3}) {
		t.Fatalf("slot0 = %v", got[0])
	}
	if len(got[1]) != 1 || got[1][0].T != 100 {
		t.Fatalf("slot1 = %v", got[1])
	}
	if len(got[2]) != 1 || got[2][0] != (chunkenc.Sample{T: 300, V: 9}) {
		t.Fatalf("slot2 = %v", got[2])
	}

	// Index: group tags and unique tags all map to the group ID.
	for _, m := range []*labels.Matcher{
		labels.MustEqual("hostname", "host_0"),
		labels.MustEqual("metric", "usage_user"),
		labels.MustEqual("metric", "usage_idle"),
	} {
		ids, err := h.Index().Select(m)
		if err != nil || len(ids) != 1 || ids[0] != gid {
			t.Fatalf("select %v = %v, %v", m, ids, err)
		}
	}

	gt, members, ok := h.GroupInfo(gid)
	if !ok || !gt.Equal(gTags) || len(members) != 3 {
		t.Fatalf("GroupInfo = %v %v %v", gt, members, ok)
	}
	if id2, ok := h.ResolveGroup(gTags); !ok || id2 != gid {
		t.Fatal("ResolveGroup failed")
	}
}

func TestGroupChunkFlush(t *testing.T) {
	h, sink := newTestHead(t, nil)
	gTags := labels.FromStrings("host", "h")
	u := []labels.Labels{labels.FromStrings("m", "a"), labels.FromStrings("m", "b")}
	gid, slots, err := h.AppendGroup(gTags, u, 0, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ { // capacity 4 rounds
		if err := h.AppendGroupFast(gid, slots, int64(i)*10, []float64{float64(i), float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	if len(sink.kvs) != 1 {
		t.Fatalf("flushed %d chunks", len(sink.kvs))
	}
	kv := sink.kvs[0]
	if kv.Key.ID() != gid || kv.Key.StartT() != 0 {
		t.Fatalf("flushed key = %v", kv.Key)
	}
	_, kind, payload, err := tuple.Decode(kv.Value)
	if err != nil || kind != tuple.KindGroup {
		t.Fatalf("kind = %v, %v", kind, err)
	}
	g, err := chunkenc.DecodeGroupData(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Times) != 4 || len(g.Columns) != 2 {
		t.Fatalf("group tuple shape: %d times, %d cols", len(g.Times), len(g.Columns))
	}
	if g.Columns[1].Values[2] != -2 {
		t.Fatalf("col1 = %+v", g.Columns[1])
	}
}

func TestGroupOutOfOrderRewrite(t *testing.T) {
	h, _ := newTestHead(t, nil)
	gTags := labels.FromStrings("host", "h")
	u := []labels.Labels{labels.FromStrings("m", "a")}
	gid, slots, err := h.AppendGroup(gTags, u, 100, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AppendGroupFast(gid, slots, 300, []float64{3}); err != nil {
		t.Fatal(err)
	}
	// In-chunk out-of-order round.
	if err := h.AppendGroupFast(gid, slots, 200, []float64{2}); err != nil {
		t.Fatal(err)
	}
	got, err := h.HeadGroupSamples(gid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[0]) != 3 || got[0][1] != (chunkenc.Sample{T: 200, V: 2}) {
		t.Fatalf("rewritten = %v", got[0])
	}
}

func TestGroupOutOfOrderEarlyFlush(t *testing.T) {
	h, sink := newTestHead(t, nil)
	gTags := labels.FromStrings("host", "h")
	u := []labels.Labels{labels.FromStrings("m", "a")}
	gid, slots, err := h.AppendGroup(gTags, u, 1000, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AppendGroupFast(gid, slots, 5, []float64{0.5}); err != nil {
		t.Fatal(err)
	}
	if len(sink.kvs) != 1 || sink.kvs[0].Key.StartT() != 5 {
		t.Fatalf("early flush = %v", sink.kvs)
	}
}

func TestGroupValidation(t *testing.T) {
	h, _ := newTestHead(t, nil)
	if _, _, err := h.AppendGroup(labels.FromStrings("a", "b"), []labels.Labels{{}}, 0, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := h.AppendGroupFast(123, []int{0}, 0, []float64{1}); err == nil {
		t.Fatal("unknown group accepted")
	}
	gid, _, err := h.AppendGroup(labels.FromStrings("a", "b"), []labels.Labels{labels.FromStrings("m", "x")}, 0, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AppendGroupFast(gid, []int{5}, 1, []float64{1}); err == nil {
		t.Fatal("out-of-range slot accepted")
	}
}

func TestPurgeBefore(t *testing.T) {
	h, _ := newTestHead(t, nil)
	oldID, _ := h.Append(labels.FromStrings("m", "old"), 100, 1)
	newID, _ := h.Append(labels.FromStrings("m", "new"), 10_000, 1)
	gTags := labels.FromStrings("g", "old")
	h.AppendGroup(gTags, []labels.Labels{labels.FromStrings("m", "gm")}, 50, []float64{1})

	purged := h.PurgeBefore(5000)
	if purged != 2 {
		t.Fatalf("purged = %d, want 2", purged)
	}
	if _, ok := h.SeriesLabels(oldID); ok {
		t.Fatal("old series survived purge")
	}
	if _, ok := h.SeriesLabels(newID); !ok {
		t.Fatal("new series purged")
	}
	if ids, _ := h.Index().Select(labels.MustEqual("m", "old")); len(ids) != 0 {
		t.Fatal("old series still indexed")
	}
	if _, ok := h.ResolveGroup(gTags); ok {
		t.Fatal("old group survived purge")
	}
	if h.NumGroups() != 0 {
		t.Fatalf("NumGroups = %d", h.NumGroups())
	}
}

func TestFootprintGrows(t *testing.T) {
	h, _ := newTestHead(t, nil)
	base := h.Footprint().Total()
	for i := 0; i < 500; i++ {
		if _, err := h.Append(labels.FromStrings("metric", "cpu", "host", fmt.Sprintf("h%d", i)), 1, 1); err != nil {
			t.Fatal(err)
		}
	}
	f := h.Footprint()
	if f.Total() <= base {
		t.Fatal("footprint did not grow")
	}
	if f.TagBytes == 0 || f.IndexBytes == 0 || f.ObjectBytes == 0 {
		t.Fatalf("footprint components missing: %+v", f)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := newTestHead(t, w)
	ls := labels.FromStrings("metric", "cpu", "host", "h1")
	id, err := h.Append(ls, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.AppendFast(id, 200, 2)
	gTags := labels.FromStrings("hostname", "host_0")
	gid, slots, err := h.AppendGroup(gTags, []labels.Labels{labels.FromStrings("m", "a")}, 150, []float64{7})
	if err != nil {
		t.Fatal(err)
	}
	h.AppendGroupFast(gid, slots, 250, []float64{8})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	h.Close()

	// Recover into a fresh head.
	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	h2, _ := newTestHead(t, w2)
	if err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	if h2.NumSeries() != 1 || h2.NumGroups() != 1 {
		t.Fatalf("recovered %d series, %d groups", h2.NumSeries(), h2.NumGroups())
	}
	got, err := h2.HeadSamples(id, 0, 1000)
	if err != nil || len(got) != 2 || got[1] != (chunkenc.Sample{T: 200, V: 2}) {
		t.Fatalf("recovered samples = %v, %v", got, err)
	}
	gs, err := h2.HeadGroupSamples(gid, 0, 1000)
	if err != nil || len(gs[0]) != 2 {
		t.Fatalf("recovered group samples = %v, %v", gs, err)
	}
	// Sequence continues from the recovered point: appending must not
	// reuse sequence numbers.
	if h2.HeadSeq(id) != 2 {
		t.Fatalf("recovered seq = %d", h2.HeadSeq(id))
	}
	if err := h2.AppendFast(id, 300, 3); err != nil {
		t.Fatal(err)
	}
	if h2.HeadSeq(id) != 3 {
		t.Fatalf("seq after recovered append = %d", h2.HeadSeq(id))
	}
	// New series get fresh IDs above the recovered ones.
	id2, err := h2.Append(labels.FromStrings("metric", "other"), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id2 <= id {
		t.Fatalf("new id %d not above recovered %d", id2, id)
	}
}

func TestRecoverySkipsFlushedSamples(t *testing.T) {
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, _ := newTestHead(t, w)
	id, err := h.Append(labels.FromStrings("m", "x"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 4; i++ {
		h.AppendFast(id, int64(i)*10, float64(i))
	}
	// Chunk flushed at 4 samples; simulate the LSM's flush callback.
	h.OnChunkPersisted(encoding.MakeKey(id, 0), 4)
	h.AppendFast(id, 100, 10) // one unflushed sample
	w.Close()
	h.Close()

	w2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	h2, sink2 := newTestHead(t, w2)
	if err := h2.Recover(); err != nil {
		t.Fatal(err)
	}
	// Only the unflushed sample must be re-ingested.
	got, err := h2.HeadSamples(id, 0, 1000)
	if err != nil || len(got) != 1 || got[0].T != 100 {
		t.Fatalf("recovered head samples = %v, %v", got, err)
	}
	if len(sink2.kvs) != 0 {
		t.Fatalf("recovery flushed %d chunks", len(sink2.kvs))
	}
}
