// Package cloud mirrors the real Store interface shape.
package cloud

type Store interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	List(prefix string) ([]string, error)
}

type MemStore struct{}

func (*MemStore) Put(key string, data []byte) error { return nil }
func (*MemStore) Get(key string) ([]byte, error)    { return nil, nil }
func (*MemStore) Delete(key string) error           { return nil }
func (*MemStore) List(prefix string) ([]string, error) {
	return nil, nil
}
