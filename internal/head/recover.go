package head

import (
	"fmt"

	"timeunion/internal/index"
	"timeunion/internal/wal"
)

// Recover rebuilds the head from the write-ahead log: the catalog recreates
// every series/group memory object and the global inverted index, then the
// unflushed samples are re-ingested (flushed samples were skipped by the
// WAL's flush marks). Must be called on a fresh head before any appends.
func (h *Head) Recover() error {
	w := h.opts.WAL
	if w == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return w.Recover(wal.Handler{
		Series: func(d wal.SeriesDef) error {
			if _, ok := h.series[d.ID]; ok {
				return nil
			}
			s := &MemSeries{ID: d.ID, Labels: d.Labels}
			if err := h.idx.Add(d.ID, d.Labels); err != nil {
				return err
			}
			h.series[d.ID] = s
			h.byKey[d.Labels.Key()] = d.ID
			if d.ID > h.nextSeries {
				h.nextSeries = d.ID
			}
			return nil
		},
		Group: func(d wal.GroupDef) error {
			if _, ok := h.groups[d.GID]; ok {
				return nil
			}
			g := &MemGroup{
				GID:         d.GID,
				GroupTags:   d.GroupTags,
				memberByKey: make(map[string]int),
			}
			if err := h.idx.Add(d.GID, d.GroupTags); err != nil {
				return err
			}
			h.groups[d.GID] = g
			h.groupByKey[d.GroupTags.Key()] = d.GID
			if n := d.GID &^ index.GroupIDFlag; n > h.nextGroup {
				h.nextGroup = n
			}
			return nil
		},
		Member: func(d wal.MemberDef) error {
			g, ok := h.groups[d.GID]
			if !ok {
				return fmt.Errorf("head: recover: member for unknown group %d", d.GID)
			}
			for int(d.Slot) > len(g.members) {
				// Defensive: slots are logged in order, but tolerate gaps.
				g.members = append(g.members, groupMember{})
			}
			if int(d.Slot) == len(g.members) {
				g.members = append(g.members, groupMember{unique: d.Unique})
				g.memberByKey[d.Unique.Key()] = int(d.Slot)
				return h.idx.Add(d.GID, d.Unique)
			}
			return nil // already known
		},
		Sample: func(r wal.SampleRec) error {
			s, ok := h.series[r.ID]
			if !ok {
				return fmt.Errorf("head: recover: sample for unknown series %d", r.ID)
			}
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
			return h.ingestLocked(s, r.T, r.V)
		},
		GroupSample: func(r wal.GroupSampleRec) error {
			g, ok := h.groups[r.GID]
			if !ok {
				return fmt.Errorf("head: recover: sample for unknown group %d", r.GID)
			}
			if r.Seq > g.seq {
				g.seq = r.Seq
			}
			slots := make([]int, len(r.Slots))
			for i, s := range r.Slots {
				slots[i] = int(s)
			}
			return h.ingestGroupLocked(g, r.T, slots, r.Vals)
		},
	})
}
