package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceContextRoundTrip(t *testing.T) {
	if TraceFrom(context.Background()) != nil {
		t.Error("empty context must yield nil trace")
	}
	tr := NewTrace("q1")
	ctx := ContextWithTrace(context.Background(), tr)
	if TraceFrom(ctx) != tr {
		t.Error("trace did not round-trip through context")
	}
	// Attaching nil leaves the context unchanged.
	if ctx2 := ContextWithTrace(context.Background(), nil); TraceFrom(ctx2) != nil {
		t.Error("nil trace attach must be a no-op")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan("x")
	if sp != nil {
		t.Error("nil trace must return nil span")
	}
	sp.AddBytes(10)
	sp.End()
	tr.SetTierBytes("fast", 1)
	tr.SetCache(1, 2)
	tr.Finish()
	if tr.Duration() != 0 || tr.Stages() != nil || tr.TierBytes("fast") != 0 {
		t.Error("nil trace accessors must return zero values")
	}
	if tr.Render() != "" {
		t.Error("nil trace render must be empty")
	}
}

func TestTraceStagesAndDurations(t *testing.T) {
	tr := NewTrace("select")
	for i := 0; i < 3; i++ {
		sp := tr.StartSpan("head_scan")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	sp := tr.StartSpan("lsm_read")
	sp.AddBytes(4096)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.SetTierBytes("fast", 4096)
	tr.SetTierBytes("slow", 0)
	tr.SetCache(2, 1)
	tr.Finish()

	total := tr.Duration()
	if total <= 0 {
		t.Fatal("trace duration must be positive")
	}
	stages := tr.Stages()
	if len(stages) != 2 {
		t.Fatalf("stages = %d, want 2", len(stages))
	}
	if stages[0].Name != "head_scan" || stages[0].Count != 3 {
		t.Errorf("stage 0 = %+v", stages[0])
	}
	if stages[1].Name != "lsm_read" || stages[1].Bytes != 4096 {
		t.Errorf("stage 1 = %+v", stages[1])
	}
	for _, s := range stages {
		if s.Total > total {
			t.Errorf("stage %s total %v exceeds trace total %v", s.Name, s.Total, total)
		}
		if s.Max > s.Total {
			t.Errorf("stage %s max %v exceeds its total %v", s.Name, s.Max, s.Total)
		}
	}
	if tr.TierBytes("fast") != 4096 {
		t.Errorf("fast tier bytes = %d", tr.TierBytes("fast"))
	}
	if h, m := tr.Cache(); h != 2 || m != 1 {
		t.Errorf("cache = %d/%d", h, m)
	}

	// Finish is idempotent: duration stays fixed afterwards.
	d1 := tr.Duration()
	time.Sleep(2 * time.Millisecond)
	tr.Finish()
	if d2 := tr.Duration(); d2 != d1 {
		t.Errorf("duration moved after Finish: %v -> %v", d1, d2)
	}

	out := tr.Render()
	for _, want := range []string{`query trace "select"`, "head_scan", "lsm_read", "bytes=4096", "fast=4096B", "2 hits / 1 misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace("parallel")
	var wg sync.WaitGroup
	const workers = 8
	const spansPer = 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				sp := tr.StartSpan("work")
				sp.AddBytes(1)
				sp.End()
			}
		}()
	}
	wg.Wait()
	tr.Finish()
	stages := tr.Stages()
	if len(stages) != 1 || stages[0].Count != workers*spansPer || stages[0].Bytes != workers*spansPer {
		t.Errorf("stages = %+v", stages)
	}
}
