package goleveldb

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"timeunion/internal/cloud"
)

func smallLDB(t *testing.T, merge func(a, b []byte) ([]byte, error)) (*DB, *cloud.MemStore, *cloud.MemStore) {
	t.Helper()
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	db, err := Open(Options{
		Store:               slow,
		FastStore:           fast,
		FastLevels:          2,
		MemTableSize:        2 << 10,
		L0CompactionTrigger: 3,
		BaseLevelBytes:      8 << 10,
		Multiplier:          4,
		MaxLevels:           5,
		TargetTableSize:     4 << 10,
		BlockSize:           512,
		MergeValues:         merge,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db, fast, slow
}

func TestPutGetBasic(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	if err := db.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := db.Get([]byte("a"))
	if err != nil || !ok || string(v) != "1" {
		t.Fatalf("Get = %q %v %v", v, ok, err)
	}
	if _, ok, _ := db.Get([]byte("zz")); ok {
		t.Fatal("phantom key")
	}
	// Overwrite: newest wins.
	if err := db.Put([]byte("a"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := db.Get([]byte("a")); string(v) != "2" {
		t.Fatalf("overwrite = %q", v)
	}
}

func TestFlushAndCompactAgainstModel(t *testing.T) {
	db, fast, slow := smallLDB(t, nil)
	rnd := rand.New(rand.NewSource(8))
	model := map[string]string{}
	for i := 0; i < 4000; i++ {
		k := fmt.Sprintf("key-%06d", rnd.Intn(2000))
		v := fmt.Sprintf("val-%d", i)
		model[k] = v
		if err := db.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	st := db.Stats()
	if st.Flushes == 0 || st.Compactions == 0 {
		t.Fatalf("no background activity: %+v", st)
	}
	// Fast levels hold L0/L1; deeper levels on the slow store.
	if fast.TotalBytes() == 0 {
		t.Fatal("nothing on fast store")
	}
	if st.MaxDepthReached >= 2 && slow.TotalBytes() == 0 {
		t.Fatal("deep levels not on slow store")
	}
	for k, want := range model {
		v, ok, err := db.Get([]byte(k))
		if err != nil || !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q %v %v, want %q", k, v, ok, err, want)
		}
	}
	// Classic compaction must read overlapping next-level tables: tables
	// read per compaction > victims alone on average after a few rounds.
	if st.TablesRead < st.Compactions {
		t.Fatalf("tables read %d < compactions %d", st.TablesRead, st.Compactions)
	}
}

func TestScanRange(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%04d", i)
		if err := db.Put([]byte(k), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// More unflushed entries on top.
	for i := 1000; i < 1100; i++ {
		db.Put([]byte(fmt.Sprintf("k%04d", i)), []byte{1})
	}
	entries, err := db.Scan([]byte("k0500"), []byte("k0600"))
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	var last []byte
	for _, e := range entries {
		if string(e.Key) < "k0500" || string(e.Key) >= "k0600" {
			t.Fatalf("out-of-range key %s", e.Key)
		}
		if last != nil && bytes.Compare(e.Key, last) < 0 {
			t.Fatal("scan not sorted")
		}
		last = e.Key
		seen[string(e.Key)] = true
	}
	if len(seen) != 100 {
		t.Fatalf("scan found %d distinct keys", len(seen))
	}
}

func TestScanDuplicatesOrderedBySeq(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	db.Put([]byte("dup"), []byte("v1"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("dup"), []byte("v2"))
	entries, err := db.Scan([]byte("dup"), []byte("dup\x00"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries", len(entries))
	}
	if string(entries[0].Value) != "v1" || string(entries[1].Value) != "v2" {
		t.Fatalf("order wrong: %q then %q", entries[0].Value, entries[1].Value)
	}
	if entries[0].Seq >= entries[1].Seq {
		t.Fatal("seq ordering wrong")
	}
}

func TestMergeValuesOperator(t *testing.T) {
	concat := func(a, b []byte) ([]byte, error) {
		return append(append([]byte(nil), a...), b...), nil
	}
	db, _, _ := smallLDB(t, concat)
	db.Put([]byte("k"), []byte("a"))
	db.Put([]byte("k"), []byte("b")) // memtable merge
	if v, _, _ := db.Get([]byte("k")); string(v) != "ab" {
		t.Fatalf("memtable merge = %q", v)
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	db.Put([]byte("k"), []byte("c"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	// Force the duplicate keys through compaction by filling more data.
	for i := 0; i < 3000; i++ {
		db.Put([]byte(fmt.Sprintf("fill%05d", i)), make([]byte, 20))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	entries, err := db.Scan([]byte("k"), []byte("k\x00"))
	if err != nil {
		t.Fatal(err)
	}
	// However the entries are distributed, merging them in seq order must
	// reconstruct "abc".
	var merged []byte
	for _, e := range entries {
		merged = append(merged, e.Value...)
	}
	if string(merged) != "abc" {
		t.Fatalf("compaction merge = %q", merged)
	}
}

func TestLevelSizesAndMemBytes(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	db.Put([]byte("a"), make([]byte, 100))
	if db.MemBytes() == 0 {
		t.Fatal("MemBytes = 0")
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	sizes := db.LevelSizes()
	total := int64(0)
	for _, s := range sizes {
		total += s
	}
	if total == 0 {
		t.Fatal("no level sizes after flush")
	}
}

func TestOpenRequiresStore(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Fatal("Open without store succeeded")
	}
}

func TestCloseIdempotent(t *testing.T) {
	db, _, _ := smallLDB(t, nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("x"), []byte("y")); err == nil {
		t.Fatal("Put after close succeeded")
	}
}
