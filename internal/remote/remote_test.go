package remote

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/tsdb"
)

func newTUServer(t *testing.T) (*Client, *core.DB) {
	t.Helper()
	db, err := core.Open(core.Options{
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
		ChunkSamples:      8,
		SlotsPerRegion:    256,
		MemTableSize:      8 << 10,
		L0PartitionLength: 1000,
		L2PartitionLength: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	srv := httptest.NewServer(NewServer(&TimeUnionBackend{DB: db}))
	t.Cleanup(srv.Close)
	return NewClient(srv.URL), db
}

func TestWriteAndQueryOverHTTP(t *testing.T) {
	client, _ := newTUServer(t)
	resp, err := client.Write(WriteRequest{Timeseries: []WriteSeries{
		{
			Labels:  map[string]string{"measurement": "cpu", "field": "usage_user", "hostname": "host_0"},
			Samples: []Sample{{T: 100, V: 1}, {T: 200, V: 2}},
		},
		{
			Labels:  map[string]string{"measurement": "cpu", "field": "usage_idle", "hostname": "host_0"},
			Samples: []Sample{{T: 100, V: 9}},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 2 || resp.IDs[0] == 0 {
		t.Fatalf("write ids = %v", resp.IDs)
	}

	// Fast path continues the same series.
	if err := client.WriteFast(FastWriteRequest{Entries: []FastWriteEntry{
		{ID: resp.IDs[0], Samples: []Sample{{T: 300, V: 3}}},
	}}); err != nil {
		t.Fatal(err)
	}

	q, err := client.Query(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{
			{Type: "=", Name: "measurement", Value: "cpu"},
			{Type: "=", Name: "field", Value: "usage_user"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 1 || len(q.Series[0].Samples) != 3 {
		t.Fatalf("query = %+v", q)
	}
	if q.Series[0].Samples[2].V != 3 {
		t.Fatalf("fast-path sample lost: %+v", q.Series[0].Samples)
	}
}

func TestGroupWriteOverHTTP(t *testing.T) {
	client, _ := newTUServer(t)
	resp, err := client.WriteGroup(GroupWriteRequest{
		GroupTags: map[string]string{"hostname": "host_0"},
		UniqueTags: []map[string]string{
			{"measurement": "cpu", "field": "usage_user"},
			{"measurement": "cpu", "field": "usage_idle"},
		},
		Times:  []int64{100, 200},
		Values: [][]float64{{1, 2}, {3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.GID == 0 || len(resp.Slots) != 2 {
		t.Fatalf("group resp = %+v", resp)
	}
	// Fast path round.
	if _, err := client.WriteGroup(GroupWriteRequest{
		GID: resp.GID, Slots: resp.Slots,
		Times:  []int64{300},
		Values: [][]float64{{5, 6}},
	}); err != nil {
		t.Fatal(err)
	}
	q, err := client.Query(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "field", Value: "usage_idle"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Series) != 1 || len(q.Series[0].Samples) != 3 {
		t.Fatalf("group query = %+v", q)
	}
	if q.Series[0].Labels["hostname"] != "host_0" {
		t.Fatalf("member labels missing group tags: %v", q.Series[0].Labels)
	}
}

func TestQueryStreamOverHTTP(t *testing.T) {
	client, _ := newTUServer(t)
	if _, err := client.Write(WriteRequest{Timeseries: []WriteSeries{
		{
			Labels:  map[string]string{"measurement": "cpu", "field": "usage_user", "hostname": "host_0"},
			Samples: []Sample{{T: 100, V: 1}, {T: 200, V: 2}},
		},
		{
			Labels:  map[string]string{"measurement": "cpu", "field": "usage_idle", "hostname": "host_0"},
			Samples: []Sample{{T: 100, V: 9}},
		},
		{
			Labels:  map[string]string{"measurement": "mem", "field": "used", "hostname": "host_1"},
			Samples: []Sample{{T: 150, V: 5}},
		},
	}}); err != nil {
		t.Fatal(err)
	}

	q, err := client.Query(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "measurement", Value: "cpu"}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var streamed []QuerySeries
	if err := client.QueryStream(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "measurement", Value: "cpu"}},
	}, func(s QuerySeries) error {
		streamed = append(streamed, s)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	// The stream must carry the same series as the materializing endpoint,
	// modulo ordering (streaming emits in evaluation order).
	if len(streamed) != len(q.Series) {
		t.Fatalf("streamed %d series, query returned %d", len(streamed), len(q.Series))
	}
	key := func(s QuerySeries) string { return s.Labels["field"] }
	sort.Slice(streamed, func(i, j int) bool { return key(streamed[i]) < key(streamed[j]) })
	sort.Slice(q.Series, func(i, j int) bool { return key(q.Series[i]) < key(q.Series[j]) })
	for i := range streamed {
		if len(streamed[i].Labels) != len(q.Series[i].Labels) ||
			key(streamed[i]) != key(q.Series[i]) {
			t.Fatalf("series %d labels differ: %v vs %v", i, streamed[i].Labels, q.Series[i].Labels)
		}
		if len(streamed[i].Samples) != len(q.Series[i].Samples) {
			t.Fatalf("series %d: %d samples vs %d", i, len(streamed[i].Samples), len(q.Series[i].Samples))
		}
		for j, s := range streamed[i].Samples {
			if s != q.Series[i].Samples[j] {
				t.Fatalf("series %d sample %d: %+v vs %+v", i, j, s, q.Series[i].Samples[j])
			}
		}
	}

	// Raw NDJSON shape: each line is one standalone JSON series object.
	body, _ := json.Marshal(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "measurement", Value: "cpu"}},
	})
	resp, err := http.Post(client.BaseURL+"/api/v1/query_stream", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected 2 NDJSON lines, got %d: %q", len(lines), raw)
	}
	for _, line := range lines {
		var s QuerySeries
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if len(s.Labels) == 0 || len(s.Samples) == 0 {
			t.Fatalf("line %q decoded empty", line)
		}
	}
}

func TestRegexMatcherOverHTTP(t *testing.T) {
	client, _ := newTUServer(t)
	if _, err := client.Write(WriteRequest{Timeseries: []WriteSeries{
		{Labels: map[string]string{"metric": "disk"}, Samples: []Sample{{T: 1, V: 1}}},
		{Labels: map[string]string{"metric": "diskio"}, Samples: []Sample{{T: 1, V: 1}}},
		{Labels: map[string]string{"metric": "cpu"}, Samples: []Sample{{T: 1, V: 1}}},
	}}); err != nil {
		t.Fatal(err)
	}
	q, err := client.Query(QueryRequest{
		MinT: 0, MaxT: 10,
		Matchers: []MatcherSpec{{Type: "=~", Name: "metric", Value: "disk.*"}},
	})
	if err != nil || len(q.Series) != 2 {
		t.Fatalf("regex query = %d series, %v", len(q.Series), err)
	}
}

func TestBadRequests(t *testing.T) {
	client, _ := newTUServer(t)
	if err := client.WriteFast(FastWriteRequest{Entries: []FastWriteEntry{
		{ID: 999999, Samples: []Sample{{T: 1, V: 1}}},
	}}); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := client.Query(QueryRequest{
		Matchers: []MatcherSpec{{Type: "??", Name: "a", Value: "b"}},
	}); err == nil {
		t.Fatal("bad matcher type accepted")
	}
}

func TestCortexSim(t *testing.T) {
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	engine, err := tsdb.Open(tsdb.Options{Store: store, BlockSpan: 2000, ChunkSamples: 12})
	if err != nil {
		t.Fatal(err)
	}
	sim := &CortexSim{DB: engine, HopLatency: time.Microsecond}
	srv := httptest.NewServer(NewServer(sim))
	defer srv.Close()
	client := NewClient(srv.URL)

	resp, err := client.Write(WriteRequest{Timeseries: []WriteSeries{
		{Labels: map[string]string{"metric": "cpu", "host": "h1"}, Samples: []Sample{{T: 100, V: 1}, {T: 200, V: 2}}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.IDs) != 1 {
		t.Fatalf("ids = %v", resp.IDs)
	}
	q, err := client.Query(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "metric", Value: "cpu"}},
	})
	if err != nil || len(q.Series) != 1 || len(q.Series[0].Samples) != 2 {
		t.Fatalf("cortex query = %+v, %v", q, err)
	}
	if sim.Hops() == 0 {
		t.Fatal("no hops simulated")
	}
	// Group writes degrade to individual series (no group model).
	if _, err := client.WriteGroup(GroupWriteRequest{
		GroupTags:  map[string]string{"host": "h2"},
		UniqueTags: []map[string]string{{"metric": "mem"}},
		Times:      []int64{100},
		Values:     [][]float64{{5}},
	}); err != nil {
		t.Fatal(err)
	}
	q, err = client.Query(QueryRequest{
		MinT: 0, MaxT: 1000,
		Matchers: []MatcherSpec{{Type: "=", Name: "metric", Value: "mem"}},
	})
	if err != nil || len(q.Series) != 1 {
		t.Fatalf("cortex group write = %+v, %v", q, err)
	}
	if q.Series[0].Labels["host"] != "h2" {
		t.Fatalf("merged labels = %v", q.Series[0].Labels)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	client, _ := newTUServer(t)
	resp, err := client.HTTP.Get(client.BaseURL + "/api/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 405 {
		t.Fatalf("GET status = %d, want 405", resp.StatusCode)
	}
}

func TestMalformedJSON(t *testing.T) {
	client, _ := newTUServer(t)
	resp, err := client.HTTP.Post(client.BaseURL+"/api/v1/write", "application/json",
		strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad JSON status = %d, want 400", resp.StatusCode)
	}
}

func TestGroupTimesValuesMismatch(t *testing.T) {
	client, _ := newTUServer(t)
	if _, err := client.WriteGroup(GroupWriteRequest{
		GroupTags:  map[string]string{"a": "b"},
		UniqueTags: []map[string]string{{"m": "x"}},
		Times:      []int64{1, 2},
		Values:     [][]float64{{1}},
	}); err == nil {
		t.Fatal("mismatched times/values accepted")
	}
}
