package chunkenc

import (
	"math"
	"testing"
)

// These fuzz targets pin the identity promised in decode.go: for every
// payload — valid, truncated, or garbage — the batch decoders and the
// streaming iterators produce bitwise-identical samples and agree on
// whether the payload is decodable. The pooled read path switches between
// the two freely, so any divergence is a correctness bug, not a style one.

// drainXOR runs the per-sample path to completion.
func drainXOR(payload []byte) (ts []int64, vs []float64, err error) {
	it := NewXORIterator(payload)
	for it.Next() {
		t, v := it.At()
		ts = append(ts, t)
		vs = append(vs, v)
	}
	return ts, vs, it.Err()
}

func sameColumns(t *testing.T, what string, bt []int64, bv []float64, it []int64, iv []float64) {
	t.Helper()
	if len(bt) != len(it) || len(bv) != len(iv) {
		t.Fatalf("%s: batch %d/%d samples, iterator %d/%d", what, len(bt), len(bv), len(it), len(iv))
	}
	for i := range bt {
		if bt[i] != it[i] {
			t.Fatalf("%s: sample %d: batch t=%d iterator t=%d", what, i, bt[i], it[i])
		}
		// Bitwise: NaN payloads must round-trip identically too.
		if math.Float64bits(bv[i]) != math.Float64bits(iv[i]) {
			t.Fatalf("%s: sample %d: batch v=%x iterator v=%x", what, i, math.Float64bits(bv[i]), math.Float64bits(iv[i]))
		}
	}
}

func FuzzXORBatchIdentity(f *testing.F) {
	c := NewXORChunk()
	for i := 0; i < 120; i++ {
		_ = c.Append(int64(i)*250+int64(i%7), float64(i)*1.25)
	}
	valid := c.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-stream
	f.Add([]byte{})             // short header
	f.Add([]byte{0, 0})         // zero samples
	f.Add([]byte{0, 3, 1, 2})   // count promises more than the stream holds
	f.Fuzz(func(t *testing.T, payload []byte) {
		bt, bv, berr := AppendXORSamples(nil, nil, payload)
		it, iv, ierr := drainXOR(payload)
		if (berr == nil) != (ierr == nil) {
			t.Fatalf("error disagreement: batch=%v iterator=%v", berr, ierr)
		}
		sameColumns(t, "xor", bt, bv, it, iv)
	})
}

// drainGroupSlot runs the per-sample group path to completion.
func drainGroupSlot(timeCol, valCol []byte) (ts []int64, vs []float64, err error) {
	it := NewGroupSlotIterator(timeCol, valCol)
	for it.Next() {
		t, v := it.At()
		ts = append(ts, t)
		vs = append(vs, v)
	}
	return ts, vs, it.Err()
}

func FuzzGroupSlotBatchIdentity(f *testing.F) {
	tc := NewGroupTimeChunk()
	vc := NewGroupValueChunk()
	for i := 0; i < 90; i++ {
		_ = tc.Append(int64(i) * 500)
		if i%3 == 0 {
			vc.AppendNull()
		} else {
			vc.Append(float64(i) / 3)
		}
	}
	timeCol, valCol := tc.Bytes(), vc.Bytes()
	f.Add(timeCol, valCol)
	f.Add(timeCol, valCol[:len(valCol)/2]) // value column truncated mid-stream
	f.Add(timeCol, []byte{0, 0})           // all slots NULL-padded
	f.Add(timeCol, []byte{})               // short value column
	f.Add([]byte{}, valCol)                // short time column
	f.Add([]byte{0, 0}, []byte{})          // zero slots: value column never read
	f.Fuzz(func(t *testing.T, timeCol, valCol []byte) {
		bt, bv, berr := AppendGroupSlotSamples(nil, nil, timeCol, valCol)
		it, iv, ierr := drainGroupSlot(timeCol, valCol)
		if (berr == nil) != (ierr == nil) {
			t.Fatalf("error disagreement: batch=%v iterator=%v", berr, ierr)
		}
		sameColumns(t, "group", bt, bv, it, iv)
	})
}
