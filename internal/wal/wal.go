// Package wal implements TimeUnion's logging scheme (paper §3.3 "Logging").
// LevelDB's original log is disabled; instead every series and group carries
// a sequence ID that increments with each inserted sample. When a data
// chunk is flushed into the time-partitioned LSM-tree, the chunk embeds its
// final sequence ID, and the flush of the enclosing memtable writes a flush
// mark: "all log entries of this timeseries/group with sequence IDs at or
// before this one are safe to remove". A background worker periodically
// purges segments whose records are all obsolete.
//
// Two kinds of state are logged:
//
//   - the catalog (series, group, and group-member definitions) lives in an
//     append-only file that is never purged — it is what rebuilds the global
//     inverted index and the memory objects after a crash;
//   - samples and flush marks live in size-bounded segments
//     (000001.wal, 000002.wal, ...) that purge drops wholesale.
//
// Purge is conservative: a segment is removed only when every sample record
// in it is at or below its series' flushed sequence. Flush marks from
// dropped segments are preserved in a checkpoint file, so recovery never
// replays an unbounded amount of obsolete data; replaying a few
// already-flushed samples is harmless because queries deduplicate samples
// by timestamp.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"timeunion/internal/encoding"
	"timeunion/internal/labels"
	"timeunion/internal/obs"
)

// Record types.
const (
	recSeries      = byte(1) // catalog: id, labels
	recGroup       = byte(2) // catalog: gid, group labels
	recGroupMember = byte(3) // catalog: gid, slot, unique labels
	recSample      = byte(4) // id, seq, t, v
	recGroupSample = byte(5) // gid, seq, t, [slot, v]...
	recFlushMark   = byte(6) // id, seq
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// DefaultSegmentSize bounds one WAL segment file.
const DefaultSegmentSize = 4 << 20

// CorruptionError reports a record whose checksum failed mid-file: unlike
// a truncated or torn tail (a crash cut the last write short, which is
// expected and harmless), bytes after the bad record mean the log was
// damaged in place. Recovery surfaces it instead of silently dropping
// everything after the damage.
type CorruptionError struct {
	Segment string // file path of the damaged segment
	Offset  int64  // byte offset of the first bad record
}

func (e *CorruptionError) Error() string {
	return fmt.Sprintf("wal: corrupt record in %s at offset %d", e.Segment, e.Offset)
}

// WAL is a write-ahead log instance. Safe for concurrent use.
type WAL struct {
	mu          sync.Mutex
	dir         string
	segmentSize int

	catalog *os.File
	seg     *os.File
	segIdx  int
	segSize int

	// purgeMu serializes Purge calls so two purges cannot interleave
	// their checkpoint writes and segment removals.
	purgeMu sync.Mutex

	// flushedSeq[id] = highest sequence known flushed; updated by
	// LogFlushMark and loaded from the checkpoint on open.
	flushedSeq map[uint64]uint64

	// repaired records the mid-file corruptions Recover truncated away.
	repaired []CorruptionError

	// Instruments (nil when no registry was supplied; nil is a no-op).
	mFsync   *obs.Histogram
	mRolls   *obs.Counter
	mRecords *obs.Counter
	mPurged  *obs.Counter

	// journal receives operational events (nil is a no-op); DESIGN.md §4.12.
	journal *obs.Journal
}

// Options configures the WAL.
type Options struct {
	// SegmentSize bounds each sample segment file (0 = DefaultSegmentSize).
	SegmentSize int
	// Metrics, when non-nil, receives the WAL's instruments
	// (timeunion_wal_*).
	Metrics *obs.Registry
	// Journal, when non-nil, receives wal.* operational events (segment
	// rolls, checkpoints, purges, repair truncations).
	Journal *obs.Journal
}

// Open creates or reopens a WAL in dir.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = DefaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	w := &WAL{
		dir:         dir,
		segmentSize: opts.SegmentSize,
		flushedSeq:  make(map[uint64]uint64),
		journal:     opts.Journal,
	}
	cat, err := os.OpenFile(filepath.Join(dir, "catalog.wal"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open catalog: %w", err)
	}
	w.catalog = cat
	// Make the directory entries (dir itself, catalog file) durable: a
	// crash right after creation must not lose the files' names.
	if err := syncDir(dir); err != nil {
		_ = cat.Close() // discard: the original error is what the caller needs
		return nil, fmt.Errorf("wal: sync dir: %w", err)
	}

	if err := w.loadCheckpoint(); err != nil {
		_ = cat.Close() // discard: the original error is what the caller needs
		return nil, err
	}
	segs, err := w.segmentIndexes()
	if err != nil {
		_ = cat.Close() // discard: the original error is what the caller needs
		return nil, err
	}
	w.segIdx = 1
	if len(segs) > 0 {
		w.segIdx = segs[len(segs)-1] + 1
	}
	if err := w.openSegment(); err != nil {
		_ = cat.Close() // discard: the original error is what the caller needs
		return nil, err
	}
	if reg := opts.Metrics; reg != nil {
		w.mFsync = reg.Histogram("timeunion_wal_fsync_seconds", "", "Latency of WAL fsync calls (catalog + active segment).")
		w.mRolls = reg.Counter("timeunion_wal_segment_rolls_total", "", "Sample segments closed after reaching the size bound.")
		w.mRecords = reg.Counter("timeunion_wal_records_total", "", "Sample/flush-mark records appended to segments.")
		w.mPurged = reg.Counter("timeunion_wal_purged_segments_total", "", "Obsolete segments removed by Purge.")
		reg.GaugeFunc("timeunion_wal_size_bytes", "", "On-disk WAL volume (catalog + segments + checkpoint).",
			func() float64 { return float64(w.SizeBytes()) })
		reg.GaugeFunc("timeunion_wal_corruptions_repaired", "", "Mid-file corruptions truncated away by the last recovery.",
			func() float64 { return float64(len(w.CorruptionsRepaired())) })
	}
	return w, nil
}

func (w *WAL) segPath(idx int) string {
	return filepath.Join(w.dir, fmt.Sprintf("%08d.wal", idx))
}

func (w *WAL) segmentIndexes() ([]int, error) {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: list segments: %w", err)
	}
	var idxs []int
	for _, e := range entries {
		var idx int
		if n, _ := fmt.Sscanf(e.Name(), "%08d.wal", &idx); n == 1 {
			idxs = append(idxs, idx)
		}
	}
	sort.Ints(idxs)
	return idxs, nil
}

func (w *WAL) openSegment() error {
	f, err := os.OpenFile(w.segPath(w.segIdx), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	// The new segment's directory entry must survive a crash, or recovery
	// would skip records written to a file with no durable name.
	if err := syncDir(w.dir); err != nil {
		_ = f.Close() // discard: the original error is what the caller needs
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.seg = f
	w.segSize = 0
	return nil
}

// syncDir fsyncs a directory so entry creations/renames inside it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// appendRecord frames and writes one record: uvarint len | crc32 | payload.
func appendRecord(f *os.File, payload []byte) (int, error) {
	var hdr encoding.Buf
	hdr.PutUvarint(uint64(len(payload)))
	hdr.PutBE32(crc32.Checksum(payload, crcTable))
	if _, err := f.Write(hdr.Get()); err != nil {
		return 0, err
	}
	if _, err := f.Write(payload); err != nil {
		return 0, err
	}
	return hdr.Len() + len(payload), nil
}

func (w *WAL) writeSample(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := appendRecord(w.seg, payload)
	if err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	w.mRecords.Inc()
	w.segSize += n
	if w.segSize >= w.segmentSize {
		return w.rollLocked()
	}
	return nil
}

// rollLocked closes the full active segment and opens its replacement,
// journaling the roll's outcome on every exit path. A rolled segment is
// closed forever: sync it now so Purge's "everything before the active
// segment is on disk" assumption holds, then make its replacement durable.
// The caller holds w.mu.
func (w *WAL) rollLocked() (err error) {
	start := time.Now()
	rolled, size := w.segIdx, w.segSize
	defer func() {
		w.journal.Emit("wal.roll", start, err, map[string]any{
			"segment": rolled, "size_bytes": size,
		})
	}()
	if err = w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync rolled segment: %w", err)
	}
	w.mFsync.Observe(time.Since(start))
	w.mRolls.Inc()
	if err = w.seg.Close(); err != nil {
		return fmt.Errorf("wal: roll segment: %w", err)
	}
	w.segIdx++
	return w.openSegment()
}

func (w *WAL) writeCatalog(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, err := appendRecord(w.catalog, payload); err != nil {
		return fmt.Errorf("wal: append catalog: %w", err)
	}
	return nil
}

// LogSeries records a new individual timeseries definition.
func (w *WAL) LogSeries(id uint64, ls labels.Labels) error {
	var b encoding.Buf
	b.PutByte(recSeries)
	b.PutUvarint(id)
	b.B = ls.Bytes(b.B)
	return w.writeCatalog(b.Get())
}

// LogGroup records a new group definition with its shared tags.
func (w *WAL) LogGroup(gid uint64, groupTags labels.Labels) error {
	var b encoding.Buf
	b.PutByte(recGroup)
	b.PutUvarint(gid)
	b.B = groupTags.Bytes(b.B)
	return w.writeCatalog(b.Get())
}

// LogGroupMember records a member appended to a group's timeseries array.
func (w *WAL) LogGroupMember(gid uint64, slot uint32, unique labels.Labels) error {
	var b encoding.Buf
	b.PutByte(recGroupMember)
	b.PutUvarint(gid)
	b.PutUvarint(uint64(slot))
	b.B = unique.Bytes(b.B)
	return w.writeCatalog(b.Get())
}

// LogSample records one sample of an individual series.
func (w *WAL) LogSample(id, seq uint64, t int64, v float64) error {
	var b encoding.Buf
	b.PutByte(recSample)
	b.PutUvarint(id)
	b.PutUvarint(seq)
	b.PutVarint(t)
	b.PutBE64(math.Float64bits(v))
	return w.writeSample(b.Get())
}

// LogGroupSample records one shared-timestamp insertion round of a group.
func (w *WAL) LogGroupSample(gid, seq uint64, t int64, slots []uint32, vals []float64) error {
	if len(slots) != len(vals) {
		return fmt.Errorf("wal: group sample slots/vals mismatch: %d vs %d", len(slots), len(vals))
	}
	var b encoding.Buf
	b.PutByte(recGroupSample)
	b.PutUvarint(gid)
	b.PutUvarint(seq)
	b.PutVarint(t)
	b.PutUvarint(uint64(len(slots)))
	for i, s := range slots {
		b.PutUvarint(uint64(s))
		b.PutBE64(math.Float64bits(vals[i]))
	}
	return w.writeSample(b.Get())
}

// LogFlushMark records that all samples of id with sequence <= seq are
// persistent in the LSM-tree (written when a memtable flushes to level 0).
func (w *WAL) LogFlushMark(id, seq uint64) error {
	var b encoding.Buf
	b.PutByte(recFlushMark)
	b.PutUvarint(id)
	b.PutUvarint(seq)
	if err := w.writeSample(b.Get()); err != nil {
		return err
	}
	w.mu.Lock()
	if seq > w.flushedSeq[id] {
		w.flushedSeq[id] = seq
	}
	w.mu.Unlock()
	return nil
}

// Sync flushes the catalog and the active segment to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	start := time.Now()
	if err := w.catalog.Sync(); err != nil {
		return fmt.Errorf("wal: sync catalog: %w", err)
	}
	if err := w.seg.Sync(); err != nil {
		return fmt.Errorf("wal: sync segment: %w", err)
	}
	w.mFsync.Observe(time.Since(start))
	return nil
}

// Close syncs and closes all files.
func (w *WAL) Close() error {
	if err := w.Sync(); err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.catalog.Close(); err != nil {
		return err
	}
	return w.seg.Close()
}

// CrashClose closes the file handles WITHOUT syncing, so buffered state is
// abandoned exactly as a process crash would abandon it. It exists for
// crash-recovery tests; the WAL must not be used afterwards.
func (w *WAL) CrashClose() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	cerr := w.catalog.Close()
	serr := w.seg.Close()
	if cerr != nil {
		return cerr
	}
	return serr
}

// --- checkpoint ---

func (w *WAL) checkpointPath() string { return filepath.Join(w.dir, "checkpoint") }

func (w *WAL) loadCheckpoint() error {
	data, err := os.ReadFile(w.checkpointPath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: read checkpoint: %w", err)
	}
	if len(data) < 4 {
		return nil // empty/corrupt checkpoint: ignore, recovery stays safe
	}
	payload := data[:len(data)-4]
	want := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(payload, crcTable) != want {
		return nil // corrupt checkpoint: ignore
	}
	d := encoding.NewDecbuf(payload)
	n := d.Uvarint()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		id := d.Uvarint()
		seq := d.Uvarint()
		w.flushedSeq[id] = seq
	}
	return nil
}

func (w *WAL) writeCheckpoint() (err error) {
	start := time.Now()
	defer func() {
		w.journal.Emit("wal.checkpoint", start, err, map[string]any{
			"series": len(w.flushedSeq),
		})
	}()
	var b encoding.Buf
	b.PutUvarint(uint64(len(w.flushedSeq)))
	ids := make([]uint64, 0, len(w.flushedSeq))
	for id := range w.flushedSeq {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b.PutUvarint(id)
		b.PutUvarint(w.flushedSeq[id])
	}
	b.PutBE32(crc32.Checksum(b.Get(), crcTable))
	// Write-sync-rename-sync: the checkpoint replaces flush marks in
	// purged segments, so it must be durable before any segment is
	// removed — a renamed-but-unsynced checkpoint could vanish in a crash
	// while the removals survive.
	tmp := w.checkpointPath() + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if _, err := f.Write(b.Get()); err != nil {
		_ = f.Close() // discard: the original error is what the caller needs
		return fmt.Errorf("wal: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // discard: the original error is what the caller needs
		return fmt.Errorf("wal: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp, w.checkpointPath()); err != nil {
		return fmt.Errorf("wal: rename checkpoint: %w", err)
	}
	return syncDir(w.dir)
}

// --- purge ---

// Purge drops closed segments whose sample records are all flushed. It
// returns the number of segments removed. The active segment is never
// dropped. This is the "background worker purges stale log records" of
// §3.3; the owner calls it periodically. Concurrent calls are serialized:
// interleaved purges could otherwise clobber each other's checkpoint.
func (w *WAL) Purge() (dropped int, err error) {
	w.purgeMu.Lock()
	defer w.purgeMu.Unlock()

	// Journal the purge's outcome on every exit path that did work or
	// failed; a no-op scan (nothing droppable) stays silent.
	start := time.Now()
	defer func() {
		if dropped > 0 || err != nil {
			w.journal.Emit("wal.purge", start, err, map[string]any{"segments_dropped": dropped})
		}
	}()

	w.mu.Lock()
	activeIdx := w.segIdx
	flushed := make(map[uint64]uint64, len(w.flushedSeq))
	for k, v := range w.flushedSeq {
		flushed[k] = v
	}
	w.mu.Unlock()

	segs, err := w.segmentIndexes()
	if err != nil {
		return 0, err
	}
	var drop []int
	for _, idx := range segs {
		if idx >= activeIdx {
			continue
		}
		obsolete, serr := segmentObsolete(w.segPath(idx), flushed)
		if serr != nil {
			return 0, serr
		}
		if obsolete {
			drop = append(drop, idx)
		}
	}
	if len(drop) == 0 {
		return 0, nil
	}
	// One checkpoint covers every removal below: the flushedSeq snapshot
	// dominates all records in the dropped segments, so their flush marks
	// survive in the checkpoint no matter where a crash interleaves.
	w.mu.Lock()
	err = w.writeCheckpoint()
	w.mu.Unlock()
	if err != nil {
		return 0, err
	}
	for _, idx := range drop {
		if rerr := os.Remove(w.segPath(idx)); rerr != nil {
			return dropped, fmt.Errorf("wal: drop segment: %w", rerr)
		}
		dropped++
		w.mPurged.Inc()
	}
	return dropped, nil
}

// segmentObsolete reports whether every sample record in the segment is at
// or below its series' flushed sequence.
func segmentObsolete(path string, flushed map[uint64]uint64) (bool, error) {
	obsolete := true
	err := scanRecords(path, func(payload []byte) error {
		d := encoding.NewDecbuf(payload)
		switch d.Byte() {
		case recSample, recGroupSample:
			id := d.Uvarint()
			seq := d.Uvarint()
			if d.Err() != nil {
				return d.Err()
			}
			if seq > flushed[id] {
				obsolete = false
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	return obsolete, nil
}

// scanRecords reads a record-framed file, stopping cleanly at a truncated
// tail (crash mid-write). A checksum failure that is NOT the file's last
// record returns a *CorruptionError with the bad record's offset: data
// after the damage would otherwise be dropped without anyone noticing.
func scanRecords(path string, fn func(payload []byte) error) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("wal: read %s: %w", path, err)
	}
	d := encoding.NewDecbuf(data)
	for d.Len() > 0 {
		start := int64(len(data) - d.Len())
		n := d.Uvarint()
		crc := d.BE32()
		payload := d.Bytes(int(n))
		if d.Err() != nil {
			return nil // frame extends past EOF: torn tail, stop
		}
		if crc32.Checksum(payload, crcTable) != crc {
			if d.Len() == 0 {
				return nil // torn final record: stop
			}
			return &CorruptionError{Segment: path, Offset: start}
		}
		if err := fn(payload); err != nil {
			return err
		}
	}
	return nil
}

// --- recovery ---

// SeriesDef is a recovered series definition.
type SeriesDef struct {
	ID     uint64
	Labels labels.Labels
}

// GroupDef is a recovered group definition.
type GroupDef struct {
	GID       uint64
	GroupTags labels.Labels
}

// MemberDef is a recovered group-member definition.
type MemberDef struct {
	GID    uint64
	Slot   uint32
	Unique labels.Labels
}

// SampleRec is a recovered unflushed sample.
type SampleRec struct {
	ID  uint64
	Seq uint64
	T   int64
	V   float64
}

// GroupSampleRec is a recovered unflushed group insertion round.
type GroupSampleRec struct {
	GID   uint64
	Seq   uint64
	T     int64
	Slots []uint32
	Vals  []float64
}

// Handler receives recovered state in replay order.
type Handler struct {
	Series      func(SeriesDef) error
	Group       func(GroupDef) error
	Member      func(MemberDef) error
	Sample      func(SampleRec) error
	GroupSample func(GroupSampleRec) error
}

// repairCorruption scans every log file for mid-file corruption and
// truncates each damaged file at its first bad record, recording the
// repair. Records after the damage are unrecoverable either way; the
// truncate re-establishes the "clean prefix" invariant so later scans and
// purges run on well-formed files, and the surfaced CorruptionError list
// tells the operator data was lost to damage rather than silently
// swallowing it.
func (w *WAL) repairCorruption() error {
	paths := []string{filepath.Join(w.dir, "catalog.wal")}
	segs, err := w.segmentIndexes()
	if err != nil {
		return err
	}
	for _, idx := range segs {
		paths = append(paths, w.segPath(idx))
	}
	for _, path := range paths {
		err := scanRecords(path, func([]byte) error { return nil })
		var ce *CorruptionError
		if errors.As(err, &ce) {
			if err := os.Truncate(path, ce.Offset); err != nil {
				return fmt.Errorf("wal: repair %s: %w", path, err)
			}
			w.mu.Lock()
			w.repaired = append(w.repaired, *ce)
			w.mu.Unlock()
			// One event per damaged file, not one per repair pass: each
			// truncate is its own loss incident the operator must see, and
			// the emit sits after the truncate succeeded so the journal never
			// claims a repair that didn't happen.
			//lint:ignore journalcover per-file repair events are intentional; a single deferred emit would collapse distinct loss incidents
			w.journal.Emit("wal.repair_truncate", time.Now(), nil, map[string]any{
				"segment": filepath.Base(ce.Segment), "offset": ce.Offset,
			})
			continue
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// CorruptionsRepaired returns the mid-file corruptions Recover found and
// truncated away, oldest first.
func (w *WAL) CorruptionsRepaired() []CorruptionError {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]CorruptionError(nil), w.repaired...)
}

// Recover replays the catalog and all unflushed samples. It must be called
// on a freshly opened WAL before new writes. Damaged files are repaired
// (truncated at the first corrupt record) before replay; the repairs are
// reported by CorruptionsRepaired.
func (w *WAL) Recover(h Handler) error {
	if err := w.repairCorruption(); err != nil {
		return err
	}
	// Catalog first: definitions precede any samples referencing them.
	err := scanRecords(filepath.Join(w.dir, "catalog.wal"), func(p []byte) error {
		d := encoding.NewDecbuf(p)
		switch d.Byte() {
		case recSeries:
			id := d.Uvarint()
			ls, _, err := labels.DecodeLabels(d.B)
			if err != nil {
				return err
			}
			if h.Series != nil {
				return h.Series(SeriesDef{ID: id, Labels: ls})
			}
		case recGroup:
			gid := d.Uvarint()
			ls, _, err := labels.DecodeLabels(d.B)
			if err != nil {
				return err
			}
			if h.Group != nil {
				return h.Group(GroupDef{GID: gid, GroupTags: ls})
			}
		case recGroupMember:
			gid := d.Uvarint()
			slot := uint32(d.Uvarint())
			ls, _, err := labels.DecodeLabels(d.B)
			if err != nil {
				return err
			}
			if h.Member != nil {
				return h.Member(MemberDef{GID: gid, Slot: slot, Unique: ls})
			}
		}
		return d.Err()
	})
	if err != nil {
		return err
	}

	segs, err := w.segmentIndexes()
	if err != nil {
		return err
	}
	// Pass 1: collect flush marks (they may appear after the samples they
	// obsolete).
	flushed := make(map[uint64]uint64, len(w.flushedSeq))
	w.mu.Lock()
	for k, v := range w.flushedSeq {
		flushed[k] = v
	}
	w.mu.Unlock()
	for _, idx := range segs {
		err := scanRecords(w.segPath(idx), func(p []byte) error {
			d := encoding.NewDecbuf(p)
			if d.Byte() == recFlushMark {
				id := d.Uvarint()
				seq := d.Uvarint()
				if d.Err() == nil && seq > flushed[id] {
					flushed[id] = seq
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	w.mu.Lock()
	for k, v := range flushed {
		if v > w.flushedSeq[k] {
			w.flushedSeq[k] = v
		}
	}
	w.mu.Unlock()

	// Pass 2: replay unflushed samples in order.
	for _, idx := range segs {
		err := scanRecords(w.segPath(idx), func(p []byte) error {
			d := encoding.NewDecbuf(p)
			switch d.Byte() {
			case recSample:
				id := d.Uvarint()
				seq := d.Uvarint()
				t := d.Varint()
				v := math.Float64frombits(d.BE64())
				if d.Err() != nil {
					return d.Err()
				}
				if seq <= flushed[id] || h.Sample == nil {
					return nil
				}
				return h.Sample(SampleRec{ID: id, Seq: seq, T: t, V: v})
			case recGroupSample:
				gid := d.Uvarint()
				seq := d.Uvarint()
				t := d.Varint()
				n := d.Uvarint()
				rec := GroupSampleRec{GID: gid, Seq: seq, T: t}
				for i := uint64(0); i < n; i++ {
					rec.Slots = append(rec.Slots, uint32(d.Uvarint()))
					rec.Vals = append(rec.Vals, math.Float64frombits(d.BE64()))
				}
				if d.Err() != nil {
					return d.Err()
				}
				if seq <= flushed[gid] || h.GroupSample == nil {
					return nil
				}
				return h.GroupSample(rec)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// FlushedSeq returns the known flushed sequence for id (0 if none).
func (w *WAL) FlushedSeq(id uint64) uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushedSeq[id]
}

// SizeBytes returns the on-disk WAL footprint.
func (w *WAL) SizeBytes() int64 {
	var total int64
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return 0
	}
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !e.IsDir() {
			total += info.Size()
		}
	}
	return total
}
