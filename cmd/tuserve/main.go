// Command tuserve runs a TimeUnion server: the storage engine on two
// directory-backed storage tiers behind the HTTP batch API (insert via
// slow/fast/group paths, query via tag selectors).
//
//	tuserve -data ./data -listen :9201 -retention 72h
//
// With -replica the server opens the same fast/ and slow/ directories
// read-only and serves queries from the writer's published manifests and
// catalog, polled every -refresh. Any number of replicas can run against
// one live writer; writes against a replica return 403.
//
//	tuserve -data ./data -listen :9202 -replica -refresh 1s
//
// Endpoints (JSON bodies, see internal/remote):
//
//	POST /api/v1/write        {"timeseries":[{"labels":{...},"samples":[{"t":..,"v":..}]}]}
//	POST /api/v1/write_fast   {"entries":[{"id":123,"samples":[...]}]}
//	POST /api/v1/write_group  {"group_tags":{...},"unique_tags":[...],"times":[...],"values":[[...]]}
//	POST /api/v1/query        {"min_t":..,"max_t":..,"matchers":[{"type":"=","name":"metric","value":"cpu"}]}
//
// Operational endpoints:
//
//	GET /metrics         Prometheus text exposition of every storage layer
//	GET /healthz         liveness probe
//	GET /api/v1/events   NDJSON operational event journal (tuctl events)
//	GET /api/v1/lsmtree  live LSM table inventory (tuctl tree)
//	/debug/pprof/        profiling (only with -debug)
//
// Queries slower than -tracelog dump their per-stage span tree to the log.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/remote"
)

func main() {
	var (
		dataDir   = flag.String("data", "./data", "data directory (fast/, slow/, local/)")
		listen    = flag.String("listen", ":9201", "HTTP listen address")
		retention = flag.Duration("retention", 0, "drop data older than this (0 = keep forever)")
		fastLimit = flag.Int64("fastlimit", 0, "fast-tier byte budget for dynamic size control (0 = off)")
		debug     = flag.Bool("debug", false, "mount net/http/pprof under /debug/pprof/")
		traceLog  = flag.Duration("tracelog", 0, "log the span tree of queries slower than this (0 = off)")
		replica   = flag.Bool("replica", false, "serve as a read replica of the writer sharing -data")
		refresh   = flag.Duration("refresh", time.Second, "replica manifest/catalog poll interval")
	)
	flag.Parse()

	fast, err := cloud.NewDirStore(filepath.Join(*dataDir, "fast"), cloud.TierBlock, cloud.EBSModel(0))
	if err != nil {
		log.Fatal(err)
	}
	slow, err := cloud.NewDirStore(filepath.Join(*dataDir, "slow"), cloud.TierObject, cloud.S3Model(0))
	if err != nil {
		log.Fatal(err)
	}
	var db *core.DB
	if *replica {
		db, err = core.OpenReplica(core.Options{
			Fast:                   fast,
			Slow:                   slow,
			ReplicaRefreshInterval: *refresh,
		})
	} else {
		db, err = core.Open(core.Options{
			Dir:           filepath.Join(*dataDir, "local"),
			Fast:          fast,
			Slow:          slow,
			FastLimit:     *fastLimit,
			DynamicSizing: *fastLimit > 0,
		})
	}
	if err != nil {
		log.Fatal(err)
	}

	// Writers always run maintenance: beyond retention (only when set) it
	// purges the WAL and republishes the series catalog read replicas
	// resolve series through.
	if !*replica {
		m := db.StartMaintenance(retention.Milliseconds(), time.Minute)
		defer m.Stop()
	}

	api := remote.NewServer(&remote.TimeUnionBackend{DB: db})
	handler := remote.NewOpsHandler(api, remote.OpsConfig{
		Metrics:      db.Metrics(),
		Journal:      db.Journal(),
		Tree:         db.TreeSnapshot,
		Debug:        *debug,
		SlowQueryLog: *traceLog,
		Logf:         log.Printf,
	})
	srv := &http.Server{Addr: *listen, Handler: handler}
	go func() {
		log.Printf("tuserve listening on %s (data: %s)", *listen, *dataDir)
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	fmt.Println("shutting down: flushing open chunks...")
	_ = srv.Close()
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
}
