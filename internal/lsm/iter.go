package lsm

import (
	"timeunion/internal/chunkenc"
	"timeunion/internal/tuple"
)

// This file is the lazy half of the streaming read path (DESIGN.md §4.8):
// ChunksFor still gathers the raw chunk list, but instead of decoding every
// payload into slices, each chunk becomes a SampleIterator that decodes
// only when the merge cursor actually reaches it. Chunks whose envelope
// time bounds fall outside the query range are skipped without any payload
// decode, and a Seek past a chunk's MaxT exhausts it undecoded.
//
// The per-chunk iterators come from chunkenc's pools (batch decode into
// reused column buffers, DESIGN.md §4.10), so the sources built here are
// OWNED by whoever consumes them: hand them to an owning
// chunkenc.QueryIterator (whose Release cascades) or release them with
// chunkenc.ReleaseIterator.

// SeriesSources turns a rank-sorted chunk list into lazy ranked iterator
// sources for an individual series. Chunks that don't overlap [mint, maxt]
// and group tuples are dropped; an envelope decode error becomes an error
// source so the merge surfaces it. onDecode may be nil.
func SeriesSources(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) []chunkenc.RankedIterator {
	return SeriesSourcesInto(nil, chunks, mint, maxt, onDecode)
}

// SeriesSourcesInto is SeriesSources appending into buf (overwritten from
// index 0), so per-query source lists reuse one backing array.
func SeriesSourcesInto(buf []chunkenc.RankedIterator, chunks []ChunkRef, mint, maxt int64, onDecode func(int)) []chunkenc.RankedIterator {
	out := buf[:0]
	for _, c := range chunks {
		if c.MaxT < mint || c.MinT > maxt {
			continue
		}
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			out = append(out, chunkenc.RankedIterator{Iter: chunkenc.ErrIterator(err), Rank: c.Rank})
			continue
		}
		if kind != tuple.KindSeries {
			continue
		}
		out = append(out, chunkenc.RankedIterator{
			Iter: chunkenc.GetSeriesChunkIterator(payload, c.MinT, c.MaxT, onDecode),
			Rank: c.Rank,
		})
	}
	return out
}

// SeriesIterator streams an individual series' samples out of a chunk list:
// a deduplicating merge over lazy per-chunk sources, clipped to
// [mint, maxt]. The streaming replacement for SeriesSamples. The returned
// iterator owns pooled resources; chunkenc.ReleaseIterator recycles them
// (optional — skipping it only forfeits reuse).
func SeriesIterator(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) chunkenc.SampleIterator {
	return chunkenc.GetQueryIterator(SeriesSources(chunks, mint, maxt, onDecode), mint, maxt)
}

// GroupSources turns a chunk list into lazy ranked iterator sources for a
// group, keyed by member slot. Tuple envelopes and the group's column
// directory are parsed eagerly (cheap, no bit decode); the compressed
// columns decode lazily. onDecode may be nil. Same ownership rules as
// SeriesSources.
func GroupSources(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) (map[uint32][]chunkenc.RankedIterator, error) {
	sources := map[uint32][]chunkenc.RankedIterator{}
	var gt chunkenc.GroupTuple // scratch reused across tuples
	for _, c := range chunks {
		if c.MaxT < mint || c.MinT > maxt {
			continue
		}
		_, kind, payload, err := tuple.Decode(c.Value)
		if err != nil {
			releaseSourceMap(sources)
			return nil, err
		}
		if kind != tuple.KindGroup {
			continue
		}
		if err := chunkenc.DecodeGroupTupleInto(&gt, payload); err != nil {
			releaseSourceMap(sources)
			return nil, err
		}
		for i, slot := range gt.Slots {
			sources[slot] = append(sources[slot], chunkenc.RankedIterator{
				Iter: chunkenc.GetGroupSlotChunkIterator(gt.Time, gt.Values[i], c.MinT, c.MaxT, onDecode),
				Rank: c.Rank,
			})
		}
	}
	return sources, nil
}

// releaseSourceMap recycles pooled sources that never reached an owner
// (a mid-gather error abandons the partially built map).
func releaseSourceMap(sources map[uint32][]chunkenc.RankedIterator) {
	for _, srcs := range sources {
		for _, s := range srcs {
			chunkenc.ReleaseIterator(s.Iter)
		}
	}
}

// GroupIterators streams a group's members out of a chunk list: one merged,
// range-clipped iterator per slot that appears in an overlapping chunk. The
// streaming replacement for GroupSamples. Each returned iterator owns
// pooled resources; chunkenc.ReleaseIterator recycles them.
func GroupIterators(chunks []ChunkRef, mint, maxt int64, onDecode func(int)) (map[uint32]chunkenc.SampleIterator, error) {
	sources, err := GroupSources(chunks, mint, maxt, onDecode)
	if err != nil {
		return nil, err
	}
	out := make(map[uint32]chunkenc.SampleIterator, len(sources))
	for slot, srcs := range sources {
		out[slot] = chunkenc.GetQueryIterator(srcs, mint, maxt)
	}
	return out, nil
}
