// Package memtable implements the in-memory sorted write buffer of the
// LSM-tree (paper §2.3): a skip list keyed by byte strings, as in LevelDB.
// When a memtable fills it becomes immutable and is flushed to level-0
// SSTables; TimeUnion keeps a queue of immutable memtables so flushing
// never blocks ingestion (paper §3.3: "we extend LevelDB with an Immutable
// MemTable queue to allow multiple flushes at the same time").
package memtable

import (
	"bytes"
	"math/rand"
	"sync"
)

const maxHeight = 16

type node struct {
	key   []byte
	value []byte
	next  [maxHeight]*node
}

// MemTable is a sorted key-value buffer. Writes replace existing values
// (the newest sample for a timestamp wins). Safe for concurrent use.
type MemTable struct {
	mu     sync.RWMutex
	head   *node
	height int
	rnd    *rand.Rand
	n      int
	bytes  int64
}

// New returns an empty memtable.
func New() *MemTable {
	return &MemTable{
		head:   &node{},
		height: 1,
		rnd:    rand.New(rand.NewSource(0xdecaf)),
	}
}

func (m *MemTable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rnd.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with key >= key, filling prev
// with the rightmost node before it on every level.
func (m *MemTable) findGreaterOrEqual(key []byte, prev *[maxHeight]*node) *node {
	x := m.head
	for level := m.height - 1; level >= 0; level-- {
		for x.next[level] != nil && bytes.Compare(x.next[level].key, key) < 0 {
			x = x.next[level]
		}
		if prev != nil {
			prev[level] = x
		}
	}
	return x.next[0]
}

// Put inserts or replaces a key-value pair.
func (m *MemTable) Put(key, value []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(key, &prev)
	if x != nil && bytes.Equal(x.key, key) {
		m.bytes += int64(len(value) - len(x.value))
		x.value = append([]byte(nil), value...)
		return
	}
	h := m.randomHeight()
	if h > m.height {
		for level := m.height; level < h; level++ {
			prev[level] = m.head
		}
		m.height = h
	}
	n := &node{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	}
	for level := 0; level < h; level++ {
		n.next[level] = prev[level].next[level]
		prev[level].next[level] = n
	}
	m.n++
	m.bytes += int64(len(key) + len(value))
}

// Delete removes a key, reporting whether it was present. The LSM uses it
// when an incoming chunk absorbs overlapping chunks of the same series.
func (m *MemTable) Delete(key []byte) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	var prev [maxHeight]*node
	x := m.findGreaterOrEqual(key, &prev)
	if x == nil || !bytes.Equal(x.key, key) {
		return false
	}
	for level := 0; level < m.height; level++ {
		if prev[level].next[level] == x {
			prev[level].next[level] = x.next[level]
		}
	}
	m.n--
	m.bytes -= int64(len(x.key) + len(x.value))
	return true
}

// Get returns the value stored under key.
func (m *MemTable) Get(key []byte) ([]byte, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	x := m.findGreaterOrEqual(key, nil)
	if x != nil && bytes.Equal(x.key, key) {
		return x.value, true
	}
	return nil, false
}

// Len returns the number of entries.
func (m *MemTable) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.n
}

// SizeBytes returns the approximate buffered payload size.
func (m *MemTable) SizeBytes() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.bytes
}

// Iter returns an iterator over keys in [start, end). nil bounds are open.
// The iterator sees a live view; concurrent writes during iteration are
// not part of its contract (the LSM only iterates immutable memtables).
type Iterator struct {
	m     *MemTable
	cur   *node
	end   []byte
	init  bool
	start []byte
}

// Iter creates an iterator over [start, end).
func (m *MemTable) Iter(start, end []byte) *Iterator {
	return &Iterator{m: m, start: start, end: end}
}

// IterAt is Iter returning the iterator by value, so hot scan loops can
// keep it on the stack instead of allocating one per scan.
func (m *MemTable) IterAt(start, end []byte) Iterator {
	return Iterator{m: m, start: start, end: end}
}

// Next advances the iterator.
func (it *Iterator) Next() bool {
	it.m.mu.RLock()
	defer it.m.mu.RUnlock()
	if !it.init {
		it.init = true
		if it.start == nil {
			it.cur = it.m.head.next[0]
		} else {
			it.cur = it.m.findGreaterOrEqual(it.start, nil)
		}
	} else if it.cur != nil {
		it.cur = it.cur.next[0]
	}
	if it.cur == nil {
		return false
	}
	if it.end != nil && bytes.Compare(it.cur.key, it.end) >= 0 {
		it.cur = nil
		return false
	}
	return true
}

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.cur.key }

// Value returns the current value. Stored values are immutable — Put
// replaces a key's value with a fresh copy rather than writing in place —
// so callers may retain the slice without copying (read-only).
func (it *Iterator) Value() []byte { return it.cur.value }
