package core

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
	"timeunion/internal/obs"
)

// TestQueryTraceE2E runs a traced serial query end to end and checks the
// trace invariants from the ISSUE acceptance criteria: every stage's total
// is bounded by the trace duration, and the per-tier byte attribution
// matches the stores' own Stats counters exactly (lone query).
func TestQueryTraceE2E(t *testing.T) {
	opts := testOpts(t.TempDir())
	db := openTestDB(t, opts)

	id, err := db.Append(labels.FromStrings("metric", "cpu", "host", "a"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts < 5000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	fast0 := opts.Fast.Stats().BytesRead
	slow0 := opts.Slow.Stats().BytesRead
	tr := obs.NewTrace("e2e")
	ctx := obs.ContextWithTrace(context.Background(), tr)
	sel, err := labels.NewMatcher(labels.MatchEqual, "metric", "cpu")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryWorkers(ctx, 1, 0, 5000, sel)
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if len(res) != 1 {
		t.Fatalf("matched %d series, want 1", len(res))
	}

	total := tr.Duration()
	stages := tr.Stages()
	if len(stages) == 0 {
		t.Fatal("traced query recorded no stages")
	}
	seen := map[string]bool{}
	for _, s := range stages {
		seen[s.Name] = true
		if s.Total > total {
			t.Errorf("stage %s total %s exceeds trace duration %s", s.Name, s.Total, total)
		}
		if s.Max > s.Total {
			t.Errorf("stage %s max %s exceeds its total %s", s.Name, s.Max, s.Total)
		}
	}
	for _, want := range []string{"index_select", "lsm_read", "decode", "head_scan"} {
		if !seen[want] {
			t.Errorf("stage %q missing from trace (have %v)", want, stages)
		}
	}

	fastDelta := int64(opts.Fast.Stats().BytesRead - fast0)
	slowDelta := int64(opts.Slow.Stats().BytesRead - slow0)
	if got := tr.TierBytes("fast"); got != fastDelta {
		t.Errorf("trace fast-tier bytes = %d, store counted %d", got, fastDelta)
	}
	if got := tr.TierBytes("slow"); got != slowDelta {
		t.Errorf("trace slow-tier bytes = %d, store counted %d", got, slowDelta)
	}
	if fastDelta+slowDelta == 0 {
		t.Error("query read zero bytes from both tiers; attribution not exercised")
	}
}

// TestObsOverheadBudget guards the <5% instrumentation overhead budget on
// the parallel fast-path append workload (the BenchmarkAppendFastParallel
// shape). Wall-clock ratios are noisy in shared CI, so the guard only runs
// when explicitly requested:
//
//	OBS_OVERHEAD_GUARD=1 go test ./internal/core/ -run TestObsOverheadBudget
func TestObsOverheadBudget(t *testing.T) {
	if os.Getenv("OBS_OVERHEAD_GUARD") == "" {
		t.Skip("set OBS_OVERHEAD_GUARD=1 to run the metrics overhead guard")
	}
	const (
		goroutines    = 8
		seriesPerGoro = 32
		rounds        = 2000 // appends per series per trial
		trials        = 3    // best-of to suppress scheduler noise
	)
	run := func(disable bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < trials; trial++ {
			db, err := Open(Options{
				Fast:           cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
				Slow:           cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
				ChunkSamples:   32,
				MemTableSize:   4 << 20,
				DisableMetrics: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			ids := make([]uint64, goroutines*seriesPerGoro)
			for i := range ids {
				id, err := db.Append(labels.FromStrings("metric", "cpu", "i", string(rune('a'+i/26%26))+string(rune('a'+i%26))+string(rune('a'+i/676))), 0, 0)
				if err != nil {
					t.Fatal(err)
				}
				ids[i] = id
			}
			start := time.Now()
			var wg sync.WaitGroup
			for w := 0; w < goroutines; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for n := 0; n < rounds; n++ {
						ts := int64(n+1) * 10
						for s := w * seriesPerGoro; s < (w+1)*seriesPerGoro; s++ {
							if err := db.AppendFast(ids[s], ts, float64(n)); err != nil {
								t.Error(err)
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			if d := time.Since(start); d < best {
				best = d
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return best
	}

	baseline := run(true)
	instrumented := run(false)
	ratio := float64(instrumented) / float64(baseline)
	t.Logf("append fast parallel: baseline=%s instrumented=%s ratio=%.3f", baseline, instrumented, ratio)
	if ratio > 1.05 {
		t.Errorf("instrumentation overhead %.1f%% exceeds the 5%% budget", (ratio-1)*100)
	}
}

// TestJournalOverheadBudget guards the <1% event-journal overhead budget
// on the ingest hot path. Journal emission happens only at
// background-operation rate (flush, compaction, manifest commit), never
// per append, so the budget is certified two ways, both deterministic —
// a wall-clock A/B cannot resolve 1% on a shared machine whose noise
// floor is several percent:
//
//  1. Allocation equality: the append fast path performs byte-for-byte
//     identical allocation work whether the journal is on or off.
//  2. Arithmetic bound: (events emitted during a sustained parallel
//     ingest run) x (measured cost of one Emit) as a fraction of the
//     run's wall time must stay under 1%.
//
// Like the metrics guard, it only runs when requested:
//
//	JOURNAL_OVERHEAD_GUARD=1 go test ./internal/core/ -run TestJournalOverheadBudget
func TestJournalOverheadBudget(t *testing.T) {
	if os.Getenv("JOURNAL_OVERHEAD_GUARD") == "" {
		t.Skip("set JOURNAL_OVERHEAD_GUARD=1 to run the journal overhead guard")
	}
	const (
		goroutines    = 8
		seriesPerGoro = 32
		rounds        = 2000
	)
	openArm := func(disableJournal bool) (*DB, []uint64) {
		db, err := Open(Options{
			Fast:           cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
			Slow:           cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
			ChunkSamples:   32,
			MemTableSize:   4 << 20,
			DisableJournal: disableJournal,
		})
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint64, goroutines*seriesPerGoro)
		for i := range ids {
			id, err := db.Append(labels.FromStrings("metric", "cpu", "i", string(rune('a'+i/26%26))+string(rune('a'+i%26))+string(rune('a'+i/676))), 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		return db, ids
	}

	// Part 1: per-append allocation work is identical with the journal on
	// and off. The append count is kept well under the memtable flush
	// threshold so no background work runs during the measurement.
	allocsFor := func(disableJournal bool) float64 {
		db, ids := openArm(disableJournal)
		defer db.Close()
		ts := int64(0)
		return testing.AllocsPerRun(200, func() {
			ts += 10
			for _, id := range ids {
				if err := db.AppendFast(id, ts, 1.5); err != nil {
					t.Error(err)
				}
			}
		})
	}
	base, journ := allocsFor(true), allocsFor(false)
	t.Logf("allocs per %d-series append round: no-journal=%.1f journaled=%.1f", goroutines*seriesPerGoro, base, journ)
	if base != journ {
		t.Errorf("journal changed append-path allocations: %.1f -> %.1f per round", base, journ)
	}

	// Part 2: sustained parallel ingest with the journal on; bound the
	// overhead by what the emitted events could possibly have cost.
	db, ids := openArm(false)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < rounds; n++ {
				ts := int64(n+1) * 10
				for s := w * seriesPerGoro; s < (w+1)*seriesPerGoro; s++ {
					if err := db.AppendFast(ids[s], ts, float64(n)); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	events := db.Journal().LastSeq()
	if events == 0 {
		t.Fatal("sustained run journaled nothing; the guard is not exercising emission")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Measured cost of a single Emit, fields map construction included.
	j := obs.NewJournal(0)
	const emits = 200_000
	emitStart := time.Now()
	for i := 0; i < emits; i++ {
		j.Emit("lsm.flush", emitStart, nil, map[string]any{"entries": i, "bytes_out": i * 64})
	}
	perEmit := time.Since(emitStart) / emits

	bound := float64(events) * float64(perEmit) / float64(elapsed)
	t.Logf("sustained ingest: elapsed=%s events=%d per-emit=%s -> overhead bound %.4f%%",
		elapsed, events, perEmit, bound*100)
	if bound > 0.01 {
		t.Errorf("journal overhead bound %.2f%% exceeds the 1%% budget", bound*100)
	}
}
