package lsm

import (
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
	"timeunion/internal/tuple"
)

// BenchmarkPutChunk measures the LSM ingest path (memtable insert with
// overlap absorption), excluding flush/compaction triggers.
func BenchmarkPutChunk(b *testing.B) {
	opts := Options{
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
		MemTableSize:      1 << 30, // never rotate during the benchmark
		L0PartitionLength: 1 << 40,
	}
	l, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	enc, err := chunkenc.EncodeXORSamples([]chunkenc.Sample{{T: 0, V: 1}, {T: 10, V: 2}})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Distinct series per op: no overlap merging in the hot loop.
		key := encoding.MakeKey(uint64(i)+1, 0)
		if err := l.Put(key, tuple.Encode(1, tuple.KindSeries, 0, 10, enc)); err != nil {
			b.Fatal(err)
		}
	}
}
