package lsm

import (
	"fmt"
	"strings"
	"time"

	"timeunion/internal/cloud"
)

// adjustPartitionLengthsLocked implements Algorithm 1 (dynamic size
// control): when the fast-store footprint of levels 0-1 exceeds the budget
// ST, the partition lengths halve (bounded below by LB) so less data stays
// on the fast tier; when level 1 already spans a full L2 partition but the
// footprint is well under budget, the lengths double so more data stays on
// the fast tier. Lengths move by factors of two to keep partitions aligned
// across compactions (§3.3). Must be called with l.mu held.
func (l *LSM) adjustPartitionLengthsLocked() {
	st := l.opts.FastLimit
	if st <= 0 {
		return
	}
	var total int64
	for _, lvl := range [][]*partition{l.l0, l.l1} {
		for _, p := range lvl {
			total += p.sizeBytes()
		}
	}
	if total == 0 {
		return
	}
	lb := l.opts.PartitionLengthLowerBound
	ratio := l.r2 / l.r1
	if ratio < 1 {
		ratio = 1
	}
	// thres is the partition length at which the current data density
	// would exactly fill the budget.
	thres := float64(st) / float64(total) * float64(l.r1)
	if total > st {
		shrunk := false
		for float64(l.r1) > thres && l.r1/2 >= lb {
			l.r1 /= 2
			shrunk = true
		}
		if shrunk {
			l.r2 = l.r1 * ratio
			l.stats.shrinks.Add(1)
		}
		return
	}
	// Grow only when clearly underutilized (hysteresis: half the budget)
	// and only after level 1 has accumulated a full L2 partition of span —
	// the paper's "the overall time span of level 1 is large enough". One
	// doubling per adjustment: the span gate then naturally re-arms only
	// after enough new data arrives, so sparse data cannot balloon the
	// partitions in a single step and stall slow-tier shipping forever.
	var l1Span int64
	if len(l.l1) > 0 {
		l1Span = l.l1[len(l.l1)-1].maxT - l.l1[0].minT
	}
	if total*2 <= st && l1Span >= l.r2 && float64(l.r1)*2 <= thres/2 {
		l.r1 *= 2
		l.r2 = l.r1 * ratio
		l.stats.grows.Add(1)
	}
}

// ApplyRetention removes every partition whose data is entirely older than
// the watermark (paper §3.3 "Data retention": "the SSTables contained in
// those old partitions can be removed efficiently"). Partitions claimed by
// an in-flight compaction job are skipped — the next retention pass picks
// them up. The shrunken table set is committed to the manifests before any
// object is deleted; if the commit fails the objects stay referenced and
// are resurrected (and re-dropped) by the next recovery rather than
// half-deleted. It returns the number of partitions dropped.
func (l *LSM) ApplyRetention(watermark int64) int {
	if l.opts.ReadOnly {
		// A replica owns no data: retention is the writer's job, and the
		// replica observes it through the next manifest refresh.
		return 0
	}
	start := time.Now()
	var dropped []*partition
	var fastTouched, slowTouched bool
	var commitErr error
	// Journal every pass that dropped something or failed its commit, on
	// every exit path; a pass with nothing to drop stays silent.
	defer func() {
		if j := l.opts.Journal; j != nil && (len(dropped) > 0 || commitErr != nil) {
			j.Emit("lsm.retention", start, commitErr, map[string]any{
				"watermark":          watermark,
				"partitions_dropped": len(dropped),
				"fast_touched":       fastTouched,
				"slow_touched":       slowTouched,
			})
		}
	}()
	l.mu.Lock()
	keep := func(parts []*partition, fast bool) []*partition {
		out := parts[:0]
		for _, p := range parts {
			if p.maxT <= watermark && !l.busyParts[p] {
				dropped = append(dropped, p)
				if fast {
					fastTouched = true
				} else {
					slowTouched = true
				}
			} else {
				out = append(out, p)
			}
		}
		return out
	}
	l.l0 = keep(l.l0, true)
	l.l1 = keep(l.l1, true)
	l.l2 = keep(l.l2, false)
	l.mu.Unlock()

	if len(dropped) == 0 {
		return 0
	}
	commitErr = l.commitManifests(fastTouched, slowTouched, nil)
	if commitErr == nil {
		for _, p := range dropped {
			for _, h := range allTables(p) {
				h.markObsolete()
			}
		}
	}
	l.stats.dropped.Add(uint64(len(dropped)))
	return len(dropped)
}

// recoverLevels rebuilds the tree metadata from the per-tier manifests
// (DESIGN.md §4.11). A tier without any manifest object — a pre-manifest
// tree — falls back to the original listing-based recovery, so upgrades
// are transparent; the two tiers decide independently, which covers every
// mixed-version combination. Tombstones carried by the slow manifest are
// subtracted from the fast table set (they name L1 inputs consumed by an
// L1→L2 compaction whose fast-manifest write did not land before a crash).
// After rebuilding, every listed-but-unreferenced object — stranded
// compaction outputs, undeleted inputs, stale manifest versions — is
// garbage-collected, and a fresh manifest pair is committed.
func (l *LSM) recoverLevels() (err error) {
	start := time.Now()
	var tablesFast, tablesSlow int
	// Journal the recovery's outcome on every exit path — a failed
	// manifest load or listing is exactly the recovery failure an operator
	// reconstructs from the journal.
	defer func() {
		if j := l.opts.Journal; j != nil {
			j.Emit("lsm.recover", start, err, map[string]any{
				"tables_fast":   tablesFast,
				"tables_slow":   tablesSlow,
				"quarantined":   l.stats.quarantined.Load(),
				"orphans":       l.stats.orphans.Load(),
				"manifest_fast": l.mfFastVer.Load(),
				"manifest_slow": l.mfSlowVer.Load(),
			})
		}
	}()
	fastMf, fastStale, err := loadManifest(l.opts.Fast, manifestFastPrefix)
	if err != nil {
		return err
	}
	slowMf, slowStale, err := loadManifest(l.opts.Slow, manifestSlowPrefix)
	if err != nil {
		return err
	}
	tombs := map[string]bool{}
	if slowMf != nil {
		for _, k := range slowMf.tombstones {
			tombs[k] = true
		}
	}

	listPrefixes := func(store cloud.Store, prefixes ...string) ([]string, error) {
		var keys []string
		for _, prefix := range prefixes {
			ks, err := store.List(prefix)
			if err != nil {
				return nil, fmt.Errorf("lsm: recover list %s: %w", prefix, err)
			}
			keys = append(keys, ks...)
		}
		return keys, nil
	}
	fastListed, err := listPrefixes(l.opts.Fast, "l0/", "l1/")
	if err != nil {
		return err
	}
	slowListed, err := listPrefixes(l.opts.Slow, "l2/")
	if err != nil {
		return err
	}

	// The authoritative table set per tier: the manifest when one exists,
	// the listing otherwise.
	fastKeys := fastListed
	if fastMf != nil {
		fastKeys = fastMf.tables
	}
	slowKeys := slowListed
	if slowMf != nil {
		slowKeys = slowMf.tables
	}
	tablesFast, tablesSlow = len(fastKeys), len(slowKeys)

	// The shared view builder (view.go) rebuilds the partition metadata;
	// the writer policy quarantines corrupt tables.
	b := newViewBuilder(l, tombs, true, nil)
	if err := b.addTier(l.opts.Fast, fastKeys); err != nil {
		return err
	}
	if err := b.addTier(l.opts.Slow, slowKeys); err != nil {
		return err
	}
	l.l0, l.l1, l.l2 = b.finish()
	maxSeq := b.maxSeq
	referenced := b.referenced

	// Restore the partition lengths and manifest versions the manifests
	// recorded (zero-valued for pre-manifest trees).
	for _, mf := range []*manifest{slowMf, fastMf} {
		if mf == nil {
			continue
		}
		if mf.r1 > 0 {
			l.r1 = mf.r1
		}
		if mf.r2 > 0 {
			l.r2 = mf.r2
		}
		if mf.nextSeq > maxSeq {
			maxSeq = mf.nextSeq
		}
	}
	if fastMf != nil {
		l.mfFastVer.Store(fastMf.version)
	}
	if slowMf != nil {
		l.mfSlowVer.Store(slowMf.version)
	}

	// GC: delete every listed object no manifest references — stranded
	// compaction outputs, inputs whose post-commit delete never ran,
	// tombstoned tables, stale manifest versions. Orphan names still feed
	// the sequence floor so a failed delete can never cause seq reuse.
	gcTier := func(store cloud.Store, keys []string) {
		for _, key := range keys {
			if referenced[key] {
				continue
			}
			if _, _, _, _, seq, _, err := parseTableName(key); err == nil && seq > maxSeq {
				maxSeq = seq
			}
			if store.Delete(key) == nil {
				l.stats.orphans.Add(1)
			}
		}
	}
	gcTier(l.opts.Fast, append(fastListed, fastStale...))
	gcTier(l.opts.Slow, append(slowListed, slowStale...))

	l.fileSeq.Store(maxSeq)

	// Commit a fresh pair: initializes pre-manifest trees, records the
	// quarantine/GC results, and clears served tombstones.
	return l.commitManifests(true, true, nil)
}

// parseTableName decodes "l{n}/{minT}-{maxT}/{seq}.sst" and patch names
// "l2/{minT}-{maxT}/{baseSeq}-p{seq}.sst" (timestamps biased by 2^63 so
// they sort as fixed-width decimals).
func parseTableName(key string) (level int, minT, maxT int64, baseSeq, seq uint64, isPatch bool, err error) {
	parts := strings.Split(key, "/")
	if len(parts) != 3 || !strings.HasSuffix(parts[2], ".sst") {
		return 0, 0, 0, 0, 0, false, fmt.Errorf("lsm: bad table name %q", key)
	}
	if _, err := fmt.Sscanf(parts[0], "l%d", &level); err != nil || level < 0 || level > 2 || parts[0] != fmt.Sprintf("l%d", level) {
		return 0, 0, 0, 0, 0, false, fmt.Errorf("lsm: bad level in table name %q", key)
	}
	var lo, hi uint64
	if _, err := fmt.Sscanf(parts[1], "%d-%d", &lo, &hi); err != nil {
		return 0, 0, 0, 0, 0, false, fmt.Errorf("lsm: bad partition dir %q", key)
	}
	minT = int64(lo - 1<<63)
	maxT = int64(hi - 1<<63)
	base := strings.TrimSuffix(parts[2], ".sst")
	if i := strings.Index(base, "-p"); i >= 0 {
		if _, err := fmt.Sscanf(base[:i], "%x", &baseSeq); err != nil {
			return 0, 0, 0, 0, 0, false, fmt.Errorf("lsm: bad patch name %q", key)
		}
		if _, err := fmt.Sscanf(base[i+2:], "%x", &seq); err != nil {
			return 0, 0, 0, 0, 0, false, fmt.Errorf("lsm: bad patch name %q", key)
		}
		return level, minT, maxT, baseSeq, seq, true, nil
	}
	if _, err := fmt.Sscanf(base, "%x", &seq); err != nil {
		return 0, 0, 0, 0, 0, false, fmt.Errorf("lsm: bad table name %q", key)
	}
	return level, minT, maxT, 0, seq, false, nil
}
