package core

import (
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/head"
	"timeunion/internal/labels"
)

// This file implements the shared-storage series catalog (DESIGN.md
// §4.13). The inverted index and the tag sets of all series/groups live in
// the head and are normally rebuilt from the local WAL — which a replica
// cannot read. The writer therefore publishes a versioned, CRC-guarded
// snapshot of the catalog (series ID → tags, group ID → shared tags,
// member slot → unique tags) to the fast shared store, using the same
// newest-version-wins protocol as the LSM manifest: Put version v, then
// best-effort Delete of v−1. Replicas load the newest decodable version
// during refresh and install the definitions idempotently.

const (
	// catalogMagic is the first line of every catalog record.
	catalogMagic = "timeunion-catalog v1"
	// catalogPrefix holds the versioned catalog objects on the fast tier.
	catalogPrefix = "catalog/"
	// catalogKeepVersions is the writer-side prune floor: the newest K
	// versions survive every publish. Replicas always install the newest
	// decodable version and absorb a NotFound between List and Get by
	// re-listing, so any K ≥ 1 is correct; keeping a few gives a replica
	// whose newest listed version tore a fallback without another round
	// trip.
	catalogKeepVersions = 3
)

// errCatalogCorrupt marks a catalog object whose CRC or structure is
// invalid — a torn write of the newest version; older versions stay
// trustworthy.
var errCatalogCorrupt = errors.New("core: catalog corrupt")

// catCastagnoli guards catalog records with the same CRC family the
// manifest and WAL use.
var catCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// catalogKey builds the object key for catalog version v.
func catalogKey(v uint64) string {
	return fmt.Sprintf("%s%020d", catalogPrefix, v)
}

// catalogVersionOf parses the version out of a catalog object key.
func catalogVersionOf(key string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(key, catalogPrefix), 10, 64)
}

// encodeCatalog renders the definitions as a line-oriented text record
// with a trailing CRC. Records are sorted (series by ID, groups by ID,
// members by ID then slot) so identical catalogs encode identically —
// the writer skips republishing an unchanged catalog by comparing CRCs.
func encodeCatalog(defs []head.CatalogDef) []byte {
	kindRank := map[string]int{"series": 0, "group": 1, "member": 2}
	sort.Slice(defs, func(i, j int) bool {
		if a, b := kindRank[defs[i].Kind], kindRank[defs[j].Kind]; a != b {
			return a < b
		}
		if defs[i].ID != defs[j].ID {
			return defs[i].ID < defs[j].ID
		}
		return defs[i].Slot < defs[j].Slot
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", catalogMagic)
	for _, d := range defs {
		tags := hex.EncodeToString(d.Labels.Bytes(nil))
		switch d.Kind {
		case "series":
			fmt.Fprintf(&b, "series %d %s\n", d.ID, tags)
		case "group":
			fmt.Fprintf(&b, "group %d %s\n", d.ID, tags)
		case "member":
			fmt.Fprintf(&b, "member %d %d %s\n", d.ID, d.Slot, tags)
		}
	}
	body := b.String()
	return []byte(fmt.Sprintf("%scrc %08x\n", body, crc32.Checksum([]byte(body), catCastagnoli)))
}

// decodeCatalog parses and CRC-checks a catalog record.
func decodeCatalog(data []byte) ([]head.CatalogDef, error) {
	text := string(data)
	idx := strings.LastIndex(text, "\ncrc ")
	if idx < 0 {
		return nil, errCatalogCorrupt
	}
	body := text[:idx+1] // include the newline the CRC line follows
	var want uint32
	if _, err := fmt.Sscanf(text[idx+1:], "crc %08x", &want); err != nil {
		return nil, errCatalogCorrupt
	}
	if crc32.Checksum([]byte(body), catCastagnoli) != want {
		return nil, errCatalogCorrupt
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) == 0 || lines[0] != catalogMagic {
		return nil, errCatalogCorrupt
	}
	parseTags := func(s string) (labels.Labels, error) {
		raw, err := hex.DecodeString(s)
		if err != nil {
			return nil, errCatalogCorrupt
		}
		ls, rest, err := labels.DecodeLabels(raw)
		if err != nil || len(rest) != 0 {
			return nil, errCatalogCorrupt
		}
		return ls, nil
	}
	var defs []head.CatalogDef
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, errCatalogCorrupt
		}
		switch fields[0] {
		case "series", "group":
			if len(fields) != 3 {
				return nil, errCatalogCorrupt
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, errCatalogCorrupt
			}
			ls, err := parseTags(fields[2])
			if err != nil {
				return nil, err
			}
			defs = append(defs, head.CatalogDef{Kind: fields[0], ID: id, Labels: ls})
		case "member":
			if len(fields) != 4 {
				return nil, errCatalogCorrupt
			}
			id, err := strconv.ParseUint(fields[1], 10, 64)
			if err != nil {
				return nil, errCatalogCorrupt
			}
			slot, err := strconv.ParseUint(fields[2], 10, 32)
			if err != nil {
				return nil, errCatalogCorrupt
			}
			ls, err := parseTags(fields[3])
			if err != nil {
				return nil, err
			}
			defs = append(defs, head.CatalogDef{Kind: "member", ID: id, Slot: uint32(slot), Labels: ls})
		default:
			return nil, errCatalogCorrupt
		}
	}
	return defs, nil
}

// recoverCatalogVersion finds the newest published catalog version so a
// restarted writer continues the version sequence (a restart publishing
// from version 1 again would look *older* to replicas and be ignored).
func (db *DB) recoverCatalogVersion() error {
	keys, err := db.opts.Fast.List(catalogPrefix)
	if err != nil {
		return fmt.Errorf("core: catalog list: %w", err)
	}
	for _, k := range keys {
		if v, err := catalogVersionOf(k); err == nil && v > db.catVer {
			db.catVer = v
		}
	}
	return nil
}

// publishCatalog snapshots the head catalog and publishes it as the next
// catalog version, skipping the write when nothing changed since the last
// publish. The writer calls it after opening (so replicas can resolve
// pre-existing series) and after every Flush (whose manifest commit is
// what makes new data visible to replicas).
func (db *DB) publishCatalog() error {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	start := time.Now()
	defs := db.head.CatalogSnapshot()
	data := encodeCatalog(defs)
	crc := crc32.Checksum(data, catCastagnoli)
	if db.catVer > 0 && crc == db.catCRC {
		return nil
	}
	v := db.catVer + 1
	if err := db.opts.Fast.Put(catalogKey(v), data); err != nil {
		return fmt.Errorf("core: catalog publish: %w", err)
	}
	db.catVer = v
	db.catCRC = crc
	// Best effort, like the manifest prune: replicas treat a NotFound on a
	// listed version as "re-list and retry". Pruning from a fresh List
	// (rather than just deleting v−1) also reclaims versions whose delete
	// failed on an earlier publish, so catalog storage stays bounded.
	pruned := db.pruneCatalogLocked(v)
	if pruned > 0 && db.m != nil {
		db.m.catalogPruned.Add(uint64(pruned))
	}
	if db.journal != nil {
		db.journal.Emit("core.catalog_publish", start, nil, map[string]any{
			"version": v,
			"defs":    len(defs),
			"bytes":   len(data),
			"pruned":  pruned,
		})
	}
	return nil
}

// pruneCatalogLocked deletes every catalog object more than
// catalogKeepVersions behind newest and reports how many were removed.
// Failures are skipped, not retried: the object stays listed and the next
// publish picks it up again. Caller holds catMu.
func (db *DB) pruneCatalogLocked(newest uint64) int {
	keys, err := db.opts.Fast.List(catalogPrefix)
	if err != nil {
		return 0
	}
	pruned := 0
	for _, k := range keys {
		v, verr := catalogVersionOf(k)
		if verr != nil {
			continue // foreign object under the prefix
		}
		if v+catalogKeepVersions <= newest && db.opts.Fast.Delete(k) == nil {
			pruned++
		}
	}
	return pruned
}

// loadCatalog loads the newest decodable catalog version and installs its
// definitions (idempotently) into the replica's head. Like the manifest
// refresh, a NotFound on a listed key means the writer pruned it between
// List and Get: re-list and retry. It reports whether a new version was
// installed.
func (db *DB) loadCatalog() (bool, error) {
	db.catMu.Lock()
	defer db.catMu.Unlock()
	const retries = 32
	for attempt := 0; ; attempt++ {
		installed, retry, err := db.tryLoadCatalog()
		if err == nil || !retry {
			return installed, err
		}
		if attempt+1 >= retries {
			return false, fmt.Errorf("core: catalog refresh: lost the prune race %d times: %w", retries, err)
		}
	}
}

func (db *DB) tryLoadCatalog() (installed bool, retry bool, err error) {
	keys, err := db.opts.Fast.List(catalogPrefix)
	if err != nil {
		return false, false, fmt.Errorf("core: catalog list: %w", err)
	}
	sort.Strings(keys) // versions are fixed-width decimals: oldest first
	for i := len(keys) - 1; i >= 0; i-- {
		v, verr := catalogVersionOf(keys[i])
		if verr != nil {
			continue // foreign object under the prefix
		}
		if v <= db.catVer {
			return false, false, nil // already installed (or older)
		}
		data, gerr := db.opts.Fast.Get(keys[i])
		if gerr != nil {
			if cloud.IsNotFound(gerr) {
				// Pruned between List and Get: the caller re-lists.
				return false, true, fmt.Errorf("core: catalog read %s: %w", keys[i], gerr)
			}
			return false, false, fmt.Errorf("core: catalog read %s: %w", keys[i], gerr)
		}
		defs, derr := decodeCatalog(data)
		if derr != nil {
			continue // torn newest version: fall back to an older one
		}
		for _, d := range defs {
			var ierr error
			switch d.Kind {
			case "series":
				ierr = db.head.DefineSeries(d.ID, d.Labels)
			case "group":
				ierr = db.head.DefineGroup(d.ID, d.Labels)
			case "member":
				_, ierr = db.head.DefineGroupMember(d.ID, d.Slot, d.Labels)
			}
			if ierr != nil {
				return false, false, fmt.Errorf("core: catalog install: %w", ierr)
			}
		}
		db.catVer = v
		return true, false, nil
	}
	return false, false, nil // no catalog published yet
}
