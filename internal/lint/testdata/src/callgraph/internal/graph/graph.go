// Package graph is the golden-edge fixture for the call-graph builder:
// every resolution rule (static call, interface dispatch, bare reference,
// method value, function literal attribution, go/defer flags) has one
// witness here, pinned by callgraph_test.go.
package graph

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (*Cat) Speak() string { return "meow" }

func direct() int { return 1 }

func helper()  {}
func helper2() {}

func Caller() {
	_ = direct() // static call

	var s Speaker = Dog{}
	_ = s.Speak() // interface call: dispatch expands to Dog and Cat

	f := direct // bare reference
	_ = f()     // function-value call: no static edge

	m := Dog{}.Speak // method value reference
	_ = m

	go direct()    // concurrent call
	defer direct() // deferred call

	go func() {
		helper() // concurrent: inside a go-launched literal
	}()

	func() {
		helper2() // literal body attributed to Caller, synchronous
	}()
}
