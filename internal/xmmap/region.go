// Package xmmap implements the dynamically expandable memory-mapped file
// arrays TimeUnion uses to keep its large in-memory structures swappable
// (paper §3.2, Figures 8–9): the double-array trie's Base/Check/Tail arrays,
// the per-series tag storage, and the fixed-size data-sample chunk arrays
// with allocation bitmaps.
//
// Arrays are built from fixed-capacity regions. Each region is one
// memory-mapped file; when more slots are needed a new file is created and
// appended to the array, so growth never remaps or copies existing data —
// and the OS can swap out cold pages under memory pressure, which is the
// property Figure 16 relies on. With an empty directory path, regions fall
// back to anonymous heap buffers (no persistence), which the baselines and
// tests use.
package xmmap

import (
	"fmt"
	"os"
	"syscall"
)

// Region is a single fixed-size mapped buffer, file-backed or anonymous.
type Region struct {
	data []byte
	f    *os.File // nil for anonymous regions
}

// OpenRegion maps the file at path with the given size, creating or
// extending it as needed. If path is empty, the region is an anonymous heap
// buffer.
func OpenRegion(path string, size int) (*Region, error) {
	if size <= 0 {
		return nil, fmt.Errorf("xmmap: invalid region size %d", size)
	}
	if path == "" {
		return &Region{data: make([]byte, size)}, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("xmmap: open region: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("xmmap: stat region: %w", err)
	}
	if fi.Size() < int64(size) {
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			return nil, fmt.Errorf("xmmap: grow region: %w", err)
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("xmmap: mmap %s: %w", path, err)
	}
	return &Region{data: data, f: f}, nil
}

// Data returns the mapped bytes. The slice is valid until Close.
func (r *Region) Data() []byte { return r.data }

// Sync flushes dirty pages to the backing file (no-op for anonymous).
// MAP_SHARED writes land in the page cache immediately; fsync on the file
// descriptor makes them durable.
func (r *Region) Sync() error {
	if r.f == nil {
		return nil
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("xmmap: sync: %w", err)
	}
	return nil
}

// Close unmaps and closes the region. The Data slice must not be used after.
func (r *Region) Close() error {
	if r.f == nil {
		r.data = nil
		return nil
	}
	err := syscall.Munmap(r.data)
	r.data = nil
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	r.f = nil
	return err
}
