// Package core is the ctxflow fixture: a function already holding a
// context.Context must not mint a fresh Background/TODO.
package core

import "context"

func run(ctx context.Context, q string) error { return ctx.Err() }

func QueryContext(ctx context.Context, q string) error {
	return run(context.Background(), q) // want "context.Background.. inside QueryContext"
}

func helperTODO(ctx context.Context) {
	_ = context.TODO() // want "context.TODO.. inside helperTODO"
}

// Query takes no context, so starting from Background is legitimate.
func Query(q string) error {
	return run(context.Background(), q)
}

func inClosure(ctx context.Context) func() error {
	return func() error {
		return run(context.Background(), "q") // want "context.Background.. inside inClosure"
	}
}

func properlyThreaded(ctx context.Context, q string) error {
	return run(ctx, q)
}
