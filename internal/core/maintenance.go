package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Maintenance runs the paper's periodic background workers (§3.3): the data
// retention check ("a background worker will periodically check for old
// time partitions outside the retention time watermark") and the WAL purge
// ("a background worker will purge those stale log records periodically").
//
// Retention is expressed in sample-time units relative to the newest
// ingested timestamp, so it works identically with real-time and logical
// timestamps.
type Maintenance struct {
	db *DB
	// Retention is the sample-time span to keep; data entirely older than
	// (newest timestamp - Retention) is dropped. Zero disables retention.
	retention int64

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// maxSeenT tracks the newest appended timestamp for retention watermarks.
type maxSeenT struct {
	v atomic.Int64
}

func (m *maxSeenT) observe(t int64) {
	for {
		cur := m.v.Load()
		if t <= cur {
			return
		}
		if m.v.CompareAndSwap(cur, t) {
			return
		}
	}
}

// StartMaintenance launches a background worker that applies retention and
// purges the WAL every interval. Call Stop before closing the database.
func (db *DB) StartMaintenance(retention int64, interval time.Duration) *Maintenance {
	m := &Maintenance{
		db:        db,
		retention: retention,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.runOnce()
			}
		}
	}()
	return m
}

func (m *Maintenance) runOnce() {
	if m.retention > 0 {
		newest := m.db.maxT.v.Load()
		if newest > m.retention {
			_, _, _ = m.db.ApplyRetention(newest - m.retention)
		}
	}
	// WAL purge is independent of retention settings.
	_, _ = m.db.PurgeWAL()
	// Keep the published catalog fresh for read replicas even when the
	// writer goes long stretches without an explicit Flush (the CRC skip
	// makes this free when nothing changed).
	_ = m.db.publishCatalog()
}

// Stop halts the worker and waits for it to exit.
func (m *Maintenance) Stop() {
	m.once.Do(func() {
		close(m.stop)
		<-m.done
	})
}
