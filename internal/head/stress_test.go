package head

import (
	"fmt"
	"math/rand"
	"testing"

	"timeunion/internal/encoding"
	"timeunion/internal/labels"
	"timeunion/internal/tuple"
)

// TestRewriteStress interleaves in-order appends with in-chunk rewrites and
// older early flushes; every value handed to the sink must decode cleanly.
// The 128-sample/512-byte combination forces chunks to outgrow their mmap
// slots, covering the append-past-slot reallocation path (a chunk bigger
// than its slot must spill to the heap, never into the neighbour slot).
func TestRewriteStress(t *testing.T) {
	for _, geom := range []struct{ chunkSamples, slotSize int }{
		{32, 512}, {128, 512}, {128, 4096},
	} {
		t.Run(fmt.Sprintf("%dsamples-%dB", geom.chunkSamples, geom.slotSize), func(t *testing.T) {
			runRewriteStress(t, geom.chunkSamples, geom.slotSize)
		})
	}
}

func runRewriteStress(t *testing.T, chunkSamples, slotSize int) {
	h, err := New(Options{ChunkSamples: chunkSamples, SlotSize: slotSize, SlotsPerRegion: 64,
		Sink: func(k encoding.Key, v []byte) error {
			if _, _, err := tuple.TimeRange(v); err != nil {
				t.Fatalf("sink got corrupt value at %v: %v", k, err)
			}
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rnd := rand.New(rand.NewSource(4))
	ids := make([]uint64, 40)
	for i := range ids {
		ids[i], err = h.Append(labels.FromStrings("series", fmt.Sprintf("s%d", i)), 0, 0)
		if err != nil {
			t.Fatal(err)
		}
	}
	tmax := int64(0)
	for r := 1; r <= 3000; r++ {
		tmax = int64(r) * 50
		for _, id := range ids {
			if err := h.AppendFast(id, tmax, rnd.Float64()*1000); err != nil {
				t.Fatal(err)
			}
		}
		if r%8 == 0 {
			id := ids[rnd.Intn(len(ids))]
			old := rnd.Int63n(tmax) + 1
			if err := h.AppendFast(id, old, -1); err != nil {
				t.Fatal(err)
			}
		}
	}
}
