package head

import (
	"timeunion/internal/index"
	"timeunion/internal/wal"
)

// Recover rebuilds the head from the write-ahead log: the catalog recreates
// every series/group memory object and the global inverted index, then the
// unflushed samples are re-ingested (flushed samples were skipped by the
// WAL's flush marks). Must be called on a fresh head before any appends;
// recovery itself is single-threaded but takes the ordinary locks so it is
// race-detector clean even if appends start concurrently.
func (h *Head) Recover() error {
	w := h.opts.WAL
	if w == nil {
		return nil
	}
	err := w.Recover(wal.Handler{
		Series: func(d wal.SeriesDef) error {
			h.cat.mu.Lock()
			defer h.cat.mu.Unlock()
			if _, ok := h.lookupSeries(d.ID); ok {
				return nil
			}
			s := &MemSeries{ID: d.ID, Labels: d.Labels}
			if err := h.idx.Add(d.ID, d.Labels); err != nil {
				return err
			}
			st := h.stripeFor(d.ID)
			st.mu.Lock()
			st.series[d.ID] = s
			st.mu.Unlock()
			h.cat.byKey[d.Labels.Key()] = d.ID
			if d.ID > h.cat.nextSeries {
				h.cat.nextSeries = d.ID
			}
			return nil
		},
		Group: func(d wal.GroupDef) error {
			h.cat.mu.Lock()
			defer h.cat.mu.Unlock()
			if _, ok := h.lookupGroup(d.GID); ok {
				return nil
			}
			g := &MemGroup{
				GID:         d.GID,
				GroupTags:   d.GroupTags,
				memberByKey: make(map[string]int),
			}
			if err := h.idx.Add(d.GID, d.GroupTags); err != nil {
				return err
			}
			st := h.stripeFor(d.GID)
			st.mu.Lock()
			st.groups[d.GID] = g
			st.mu.Unlock()
			h.cat.groupByKey[d.GroupTags.Key()] = d.GID
			if n := d.GID &^ index.GroupIDFlag; n > h.cat.nextGroup {
				h.cat.nextGroup = n
			}
			return nil
		},
		Member: func(d wal.MemberDef) error {
			g, ok := h.lookupGroup(d.GID)
			if !ok {
				// A repaired-away catalog record can orphan later records;
				// dropping them is the correct recovery (they were never
				// acknowledged as part of a consistent state). Count it.
				h.recoverDropped.Add(1)
				return nil
			}
			g.mu.Lock()
			defer g.mu.Unlock()
			for int(d.Slot) > len(g.members) {
				// Defensive: slots are logged in order, but tolerate gaps.
				g.members = append(g.members, groupMember{})
			}
			if int(d.Slot) == len(g.members) {
				g.members = append(g.members, groupMember{unique: d.Unique})
				g.memberByKey[d.Unique.Key()] = int(d.Slot)
				return h.idx.Add(d.GID, d.Unique)
			}
			return nil // already known
		},
		Sample: func(r wal.SampleRec) error {
			s, ok := h.lookupSeries(r.ID)
			if !ok {
				h.recoverDropped.Add(1)
				return nil
			}
			s.mu.Lock()
			defer s.mu.Unlock()
			if r.Seq > s.seq {
				s.seq = r.Seq
			}
			return h.ingestLocked(s, r.T, r.V)
		},
		GroupSample: func(r wal.GroupSampleRec) error {
			g, ok := h.lookupGroup(r.GID)
			if !ok {
				h.recoverDropped.Add(1)
				return nil
			}
			g.mu.Lock()
			defer g.mu.Unlock()
			if r.Seq > g.seq {
				g.seq = r.Seq
			}
			slots := make([]int, len(r.Slots))
			for i, s := range r.Slots {
				slots[i] = int(s)
			}
			return h.ingestGroupLocked(g, r.T, slots, r.Vals)
		},
	})
	if err != nil {
		return err
	}
	// Flushed samples are skipped during replay, so nothing above advanced a
	// series' sequence counter past the flushed watermark. Restore it
	// explicitly: otherwise post-recovery appends would reuse burned
	// sequence IDs and the *next* recovery would skip them as flushed.
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		for id, s := range st.series {
			if fs := w.FlushedSeq(id); fs > s.seq {
				s.mu.Lock()
				if fs > s.seq {
					s.seq = fs
				}
				s.mu.Unlock()
			}
		}
		for gid, g := range st.groups {
			if fs := w.FlushedSeq(gid); fs > g.seq {
				g.mu.Lock()
				if fs > g.seq {
					g.seq = fs
				}
				g.mu.Unlock()
			}
		}
		st.mu.RUnlock()
	}
	return nil
}
