package tsbs

import (
	"math/rand"
	"testing"

	"timeunion/internal/labels"
)

func TestSeriesPerHostIs101(t *testing.T) {
	total := 0
	for _, m := range Measurements {
		total += len(m.Fields)
	}
	if total != SeriesPerHost {
		t.Fatalf("measurement fields sum to %d, want %d", total, SeriesPerHost)
	}
	// metricAt covers the full range without panicking.
	seen := map[string]bool{}
	for i := 0; i < SeriesPerHost; i++ {
		ls := SeriesTags(i)
		key := ls.Get("measurement") + "/" + ls.Get("field")
		if seen[key] {
			t.Fatalf("duplicate metric %s", key)
		}
		seen[key] = true
	}
}

func TestMetricIndexRoundTrip(t *testing.T) {
	for i := 0; i < SeriesPerHost; i++ {
		ls := SeriesTags(i)
		if got := MetricIndex(ls.Get("measurement"), ls.Get("field")); got != i {
			t.Fatalf("MetricIndex(%v) = %d, want %d", ls, got, i)
		}
	}
	if MetricIndex("nope", "nope") != -1 {
		t.Fatal("missing metric found")
	}
}

func TestHostsDeterministic(t *testing.T) {
	a := Hosts(10, 42)
	b := Hosts(10, 42)
	for i := range a {
		if !a[i].Tags.Equal(b[i].Tags) {
			t.Fatalf("host %d differs across runs", i)
		}
		if len(a[i].Tags) != 10 {
			t.Fatalf("host has %d tags, want 10", len(a[i].Tags))
		}
	}
	if a[0].Hostname() != "host_0" || a[9].Hostname() != "host_9" {
		t.Fatal("hostnames wrong")
	}
	c := Hosts(10, 43)
	same := 0
	for i := range a {
		if a[i].Tags.Equal(c[i].Tags) {
			same++
		}
	}
	if same == 10 {
		t.Fatal("different seeds produced identical hosts")
	}
}

func TestFieldClasses(t *testing.T) {
	if len(fieldClasses) != SeriesPerHost {
		t.Fatalf("fieldClasses has %d entries", len(fieldClasses))
	}
	// Constants never change; counters never decrease.
	hosts := Hosts(1, 1)
	g := NewGenerator(hosts, 0, 10, 3)
	_, first := g.Round()
	prev := append([]float64(nil), first[0]...)
	for r := 0; r < 50; r++ {
		_, vals := g.Round()
		for si, v := range vals[0] {
			switch fieldClasses[si] {
			case classConstant:
				if v != prev[si] {
					t.Fatalf("constant metric %d changed: %f -> %f", si, prev[si], v)
				}
			case classCounter:
				if v < prev[si] {
					t.Fatalf("counter metric %d decreased: %f -> %f", si, prev[si], v)
				}
			}
			prev[si] = v
		}
	}
}

func TestGeneratorRounds(t *testing.T) {
	hosts := Hosts(3, 1)
	g := NewGenerator(hosts, 1000, 60, 7)
	t0, vals0 := g.Round()
	if t0 != 1000 {
		t.Fatalf("first round at %d", t0)
	}
	if len(vals0) != 3 || len(vals0[0]) != SeriesPerHost {
		t.Fatalf("round shape = %dx%d", len(vals0), len(vals0[0]))
	}
	// Gauges stay in [0,100]; counters and constants are non-negative.
	for _, hv := range vals0 {
		for si, v := range hv {
			if v < 0 {
				t.Fatalf("negative value %f", v)
			}
			if fieldClasses[si] == classGauge && v > 100 {
				t.Fatalf("gauge value %f out of [0,100]", v)
			}
		}
	}
	t1, _ := g.Round()
	if t1 != 1060 {
		t.Fatalf("second round at %d", t1)
	}
	if g.NumRounds(600) != 10 {
		t.Fatalf("NumRounds = %d", g.NumRounds(600))
	}
}

func TestPatterns(t *testing.T) {
	if len(Patterns) != 7 {
		t.Fatalf("Patterns = %d, want the 7 of Table 2", len(Patterns))
	}
	if len(ExtendedPatterns) != 9 {
		t.Fatalf("ExtendedPatterns = %d", len(ExtendedPatterns))
	}
	p, ok := PatternByName("5-1-24")
	if !ok || p.Metrics != 5 || p.Hosts != 1 || p.Hours != 24 {
		t.Fatalf("PatternByName = %+v %v", p, ok)
	}
	if _, ok := PatternByName("9-9-9"); ok {
		t.Fatal("phantom pattern")
	}
	all, ok := PatternByName("1-1-all")
	if !ok || all.Hours != -1 {
		t.Fatalf("1-1-all = %+v", all)
	}
}

func TestMakeQueryShapes(t *testing.T) {
	env := QueryEnv{
		Hosts:   Hosts(20, 3),
		DataMin: 0,
		DataMax: 24 * 3600 * 10, // 24 scaled hours of 36s each
		HourMs:  3600 * 10,
	}
	rnd := rand.New(rand.NewSource(1))

	p, _ := PatternByName("5-8-1")
	q := MakeQuery(p, env, rnd)
	if q.MaxT != env.DataMax {
		t.Fatalf("recent query maxT = %d", q.MaxT)
	}
	if q.MaxT-q.MinT != env.HourMs {
		t.Fatalf("1-hour query spans %d", q.MaxT-q.MinT)
	}
	if q.WindowMs != env.HourMs/12 {
		t.Fatalf("window = %d", q.WindowMs)
	}
	// Matchers select cpu + 5 fields + 8 hostnames.
	var fieldM, hostM *labels.Matcher
	for _, m := range q.Matchers {
		switch m.Name {
		case "field":
			fieldM = m
		case "hostname":
			hostM = m
		}
	}
	if fieldM == nil || fieldM.Type != labels.MatchRegexp {
		t.Fatalf("field matcher = %v", fieldM)
	}
	nMatch := 0
	for _, f := range Measurements[0].Fields {
		if fieldM.Matches(f) {
			nMatch++
		}
	}
	if nMatch != 5 {
		t.Fatalf("field matcher matches %d cpu fields", nMatch)
	}
	nHosts := 0
	for _, h := range env.Hosts {
		if hostM.Matches(h.Hostname()) {
			nHosts++
		}
	}
	if nHosts != 8 {
		t.Fatalf("host matcher matches %d hosts", nHosts)
	}

	// Whole-span pattern.
	pAll, _ := PatternByName("1-1-all")
	qAll := MakeQuery(pAll, env, rnd)
	if qAll.MinT != env.DataMin || qAll.MaxT != env.DataMax {
		t.Fatalf("all-span query = [%d,%d]", qAll.MinT, qAll.MaxT)
	}

	// Lastpoint.
	pLast, _ := PatternByName("lastpoint")
	qLast := MakeQuery(pLast, env, rnd)
	if qLast.MaxT != env.DataMax || qLast.MaxT-qLast.MinT != q.WindowMs {
		t.Fatalf("lastpoint = [%d,%d]", qLast.MinT, qLast.MaxT)
	}
}

func TestAggregateMax(t *testing.T) {
	ts := []int64{0, 100, 200, 300, 400, 500}
	vs := []float64{1, 5, 3, 9, 2, 7}
	got := AggregateMax(ts, vs, 0, 599, 300)
	if len(got) != 2 {
		t.Fatalf("windows = %d", len(got))
	}
	if got[0].Max != 5 || got[1].Max != 9 {
		t.Fatalf("agg = %+v", got)
	}
	// Range filtering: windows anchor at mint, so [200,400] with a
	// 300-unit window is a single window holding samples 3, 9, 2.
	got = AggregateMax(ts, vs, 200, 400, 300)
	if len(got) != 1 || got[0].Max != 9 {
		t.Fatalf("clipped agg = %+v", got)
	}
	if out := AggregateMax(nil, nil, 0, 100, 10); out != nil {
		t.Fatal("empty agg not nil")
	}
}
