package lsm

import (
	"strings"
	"sync"
	"testing"
	"time"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/sstable"
)

// craftTable writes a single-chunk sstable for id directly into store under
// the real table-name key, bypassing the flush pipeline — the way tests
// build arbitrary (even historically impossible) level layouts for the
// recovery and scheduling paths to chew on.
func craftTable(t *testing.T, store cloud.Store, level int, minT, maxT int64, seq, id uint64, samples []chunkenc.Sample) string {
	t.Helper()
	k, v := seriesKV(t, id, samples)
	w := sstable.NewWriter(512)
	if err := w.Add(k[:], v); err != nil {
		t.Fatal(err)
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	name := tableName(level, &partition{minT: minT, maxT: maxT}, seq)
	if err := store.Put(name, data); err != nil {
		t.Fatal(err)
	}
	return name
}

// TestGatherChainedOverlapClosure pins the transitive-overlap bug: B
// overlaps neither the victim nor A's raw interval, but it overlaps the
// output grid span of (victim ∪ A), so leaving it out would let the job's
// outputs overlap a live L1 partition. The old pairwise closure missed it.
func TestGatherChainedOverlapClosure(t *testing.T) {
	l := &LSM{}
	victim := &partition{minT: 1000, maxT: 2000} // len 1000
	a := &partition{minT: 1500, maxT: 3500}      // len 2000, overlaps victim
	b := &partition{minT: 3500, maxT: 4000}      // len 500, overlaps only the aligned span
	l.l0 = []*partition{victim}
	l.l1 = []*partition{a, b}

	inputs, outLen, alo, ahi, ok := l.gatherL0L1InputsLocked(victim)
	if !ok {
		t.Fatal("gather reported busy on an idle tree")
	}
	if len(inputs) != 3 {
		t.Fatalf("gathered %d inputs, want 3 (chained overlap via grid alignment)", len(inputs))
	}
	if outLen != 500 {
		t.Fatalf("outLen = %d, want 500 (min input length)", outLen)
	}
	if alo != 1000 || ahi != 4000 {
		t.Fatalf("aligned span = [%d,%d), want [1000,4000)", alo, ahi)
	}
}

// TestChainedOverlapCompactionEndToEnd builds the three-partition chained
// overlap as real on-store tables, recovers, lets the executor compact, and
// asserts level 1 came out pairwise disjoint with no sample lost.
func TestChainedOverlapCompactionEndToEnd(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	craftTable(t, fast, 0, 1000, 2000, 1, 1, []chunkenc.Sample{{T: 1100, V: 1}, {T: 1900, V: 2}})
	craftTable(t, fast, 0, 100000, 101000, 2, 1, []chunkenc.Sample{{T: 100100, V: 9}})
	craftTable(t, fast, 1, 1500, 3500, 3, 2, []chunkenc.Sample{{T: 1600, V: 3}, {T: 3400, V: 4}})
	craftTable(t, fast, 1, 3500, 4000, 4, 3, []chunkenc.Sample{{T: 3600, V: 5}})

	opts := smallOpts()
	opts.Fast, opts.Slow = fast, slow
	opts.MaxL0Partitions = 1
	opts.CompactionWorkers = 1
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.WaitIdle(); err != nil {
		t.Fatal(err)
	}

	l.mu.RLock()
	for i, p := range l.l1 {
		for _, q := range l.l1[i+1:] {
			if p.overlaps(q.minT, q.maxT) {
				l.mu.RUnlock()
				t.Fatalf("L1 partitions overlap after compaction: [%d,%d) and [%d,%d)", p.minT, p.maxT, q.minT, q.maxT)
			}
		}
	}
	l.mu.RUnlock()

	if got := querySeries(t, l, 1, 0, 200000); len(got) != 3 {
		t.Fatalf("id 1 samples = %v, want 3", got)
	}
	if got := querySeries(t, l, 2, 0, 10000); len(got) != 2 || got[1].T != 3400 {
		t.Fatalf("id 2 samples = %v", got)
	}
	if got := querySeries(t, l, 3, 0, 10000); len(got) != 1 || got[0].T != 3600 {
		t.Fatalf("id 3 samples = %v", got)
	}
	if orphans, err := l.Orphans(); err != nil || len(orphans) != 0 {
		t.Fatalf("orphans = %v, %v", orphans, err)
	}
}

// TestMidCompactionFaultNoOrphans pins the buildPartitions leak: a
// compaction producing two output windows whose second writeTables fails
// must delete the first window's already-written tables. failAfter is
// parametrized to hit both the writeTables-internal and the cross-window
// cleanup paths.
func TestMidCompactionFaultNoOrphans(t *testing.T) {
	for _, failAfter := range []int{1, 2} {
		mem := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
		slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
		// Victim spans two 1000-unit output windows (outLen = min with the
		// L1 partition's length), so the compaction builds two partitions.
		craftTable(t, mem, 0, 0, 2000, 1, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 1900, V: 2}})
		craftTable(t, mem, 0, 100000, 101000, 2, 1, []chunkenc.Sample{{T: 100100, V: 9}})
		craftTable(t, mem, 1, 0, 1000, 3, 2, []chunkenc.Sample{{T: 500, V: 3}})

		// Put #1 is the recovery manifest commit; compaction output puts
		// follow. failAfter=1 fails the first output (writeTables cleanup),
		// failAfter=2 fails the second window (buildPartitions cleanup).
		fast := &failingStore{MemStore: mem, failAfter: failAfter}
		opts := smallOpts()
		opts.Fast, opts.Slow = fast, slow
		opts.MaxL0Partitions = 1
		opts.CompactionWorkers = 1
		l, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.WaitIdle(); err == nil {
			t.Fatalf("failAfter=%d: injected failure never surfaced", failAfter)
		}
		orphans, err := l.Orphans()
		if err != nil {
			t.Fatal(err)
		}
		if len(orphans) != 0 {
			t.Fatalf("failAfter=%d: orphaned outputs after failed compaction: %v", failAfter, orphans)
		}
		l.Close()
	}
}

// barrierStore blocks level-1 Puts until two goroutines arrive, proving two
// compaction jobs are genuinely in flight at once (with a timeout escape so
// a scheduling regression fails the assertion instead of deadlocking).
type barrierStore struct {
	*cloud.MemStore
	mu      sync.Mutex
	waiting int
	release chan struct{}
}

func (b *barrierStore) Put(key string, data []byte) error {
	if strings.HasPrefix(key, "l1/") {
		b.mu.Lock()
		b.waiting++
		if b.waiting == 2 {
			close(b.release)
		}
		b.mu.Unlock()
		select {
		case <-b.release:
		case <-time.After(5 * time.Second):
		}
	}
	return b.MemStore.Put(key, data)
}

func TestParallelCompactionsConcurrent(t *testing.T) {
	mem := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	for i, minT := range []int64{0, 1000, 2000, 100000} {
		craftTable(t, mem, 0, minT, minT+1000, uint64(i+1), 1, []chunkenc.Sample{{T: minT + 100, V: 1}})
	}
	fast := &barrierStore{MemStore: mem, release: make(chan struct{})}
	opts := smallOpts()
	opts.Fast, opts.Slow = fast, slow
	opts.MaxL0Partitions = 1
	opts.CompactionWorkers = 2
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.WaitIdle(); err != nil {
		t.Fatal(err)
	}
	if peak := l.Stats().MaxParallelCompactions; peak < 2 {
		t.Fatalf("MaxParallelCompactions = %d, want >= 2 (disjoint jobs must run concurrently)", peak)
	}
	for _, minT := range []int64{0, 1000, 2000, 100000} {
		if got := querySeries(t, l, 1, minT, minT+1000); len(got) != 1 {
			t.Fatalf("lost sample at %d: %v", minT+100, got)
		}
	}
}
