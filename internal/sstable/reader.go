package sstable

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"

	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
)

// ErrCorrupt marks a structurally invalid table or block: truncated data,
// checksum mismatch, or an unparseable footer/index. Callers use it to
// tell damage (the object itself is bad — e.g. a torn write that was never
// acknowledged) from store trouble (a retryable fetch failure).
var ErrCorrupt = errors.New("sstable: corrupt")

// decodeBlock verifies and decompresses one stored block: marker byte +
// payload + 4-byte CRC over the payload.
func decodeBlock(raw []byte) ([]byte, error) {
	if len(raw) < 5 {
		return nil, fmt.Errorf("%w: truncated block", ErrCorrupt)
	}
	marker := raw[0]
	payload := raw[1 : len(raw)-4]
	want := uint32(raw[len(raw)-4])<<24 | uint32(raw[len(raw)-3])<<16 |
		uint32(raw[len(raw)-2])<<8 | uint32(raw[len(raw)-1])
	if crc32.Checksum(payload, crcTable) != want {
		return nil, fmt.Errorf("%w: block checksum mismatch", ErrCorrupt)
	}
	switch marker {
	case blockRaw:
		return payload, nil
	case blockFlate:
		out, err := io.ReadAll(flate.NewReader(bytes.NewReader(payload)))
		if err != nil {
			return nil, fmt.Errorf("%w: block decompress: %w", ErrCorrupt, err)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("%w: unknown block marker %d", ErrCorrupt, marker)
	}
}

// Table is an open SSTable backed by a cloud store object. The footer,
// index block, and bloom filter are read once at open time and pinned; data
// blocks are fetched on demand through an optional shared LRU cache, so a
// point or range query on the slow tier pays roughly one Get per touched
// data block — the cost model of Equations 4 and 6.
type Table struct {
	store    cloud.Store
	storeKey string
	cache    *cloud.LRUCache

	size       int64
	numEntries uint64
	indexKeys  [][]byte
	indexOffs  []uint64
	indexLens  []uint64
	cacheKeys  []string // per-block cache keys, precomputed at open
	bloom      []byte
	firstKey   []byte
	lastKey    []byte
}

// OpenTable opens the SSTable stored at storeKey. cache may be nil.
func OpenTable(store cloud.Store, storeKey string, cache *cloud.LRUCache) (*Table, error) {
	size, err := store.Size(storeKey)
	if err != nil {
		return nil, err
	}
	return openTable(store, storeKey, cache, size, nil)
}

// OpenTableFromBytes opens a table whose full contents the caller already
// holds (just-written compaction output), parsing metadata from memory so
// that creating a table costs zero store reads — the property that keeps
// ordered L1→L2 compaction write-only on the slow tier (Equation 9). Later
// block reads still go through the store.
func OpenTableFromBytes(store cloud.Store, storeKey string, cache *cloud.LRUCache, data []byte) (*Table, error) {
	return openTable(store, storeKey, cache, int64(len(data)), data)
}

// openTable parses table metadata. When data is non-nil it is the full
// table contents and no store reads are issued.
func openTable(store cloud.Store, storeKey string, cache *cloud.LRUCache, size int64, data []byte) (*Table, error) {
	readRange := func(off, length int64) ([]byte, error) {
		if data != nil {
			if off < 0 || off+length > int64(len(data)) {
				return nil, fmt.Errorf("%w: %s: range out of bounds", ErrCorrupt, storeKey)
			}
			return data[off : off+length], nil
		}
		// Transient store failures are retried with bounded backoff so a
		// blip while opening a table does not fail the whole recovery or
		// query that asked for it.
		var out []byte
		err := cloud.DefaultRetry.Do(func() error {
			var err error
			out, err = store.GetRange(storeKey, off, length)
			return err
		})
		return out, err
	}
	if size < footerLen {
		return nil, fmt.Errorf("%w: %s: too small (%d bytes)", ErrCorrupt, storeKey, size)
	}
	foot, err := readRange(size-footerLen, footerLen)
	if err != nil {
		return nil, err
	}
	d := encoding.NewDecbuf(foot)
	indexOff := d.BE64()
	indexLen := d.BE64()
	bloomOff := d.BE64()
	bloomLen := d.BE64()
	numEntries := d.BE64()
	magic := d.BE64()
	if d.Err() != nil || magic != tableMagic {
		return nil, fmt.Errorf("%w: %s: bad footer", ErrCorrupt, storeKey)
	}
	if indexOff+indexLen > uint64(size) || bloomOff+bloomLen > uint64(size) {
		return nil, fmt.Errorf("%w: %s: footer offsets out of range", ErrCorrupt, storeKey)
	}

	t := &Table{
		store:      store,
		storeKey:   storeKey,
		cache:      cache,
		size:       size,
		numEntries: numEntries,
	}
	ib, err := readRange(int64(indexOff), int64(indexLen))
	if err != nil {
		return nil, err
	}
	id := encoding.NewDecbuf(ib)
	n := id.Uvarint()
	for i := uint64(0); i < n; i++ {
		k := append([]byte(nil), id.UvarintBytes()...)
		t.indexKeys = append(t.indexKeys, k)
		t.indexOffs = append(t.indexOffs, id.Uvarint())
		t.indexLens = append(t.indexLens, id.Uvarint())
	}
	if id.Err() != nil {
		return nil, fmt.Errorf("%w: %s: corrupt index block: %w", ErrCorrupt, storeKey, id.Err())
	}
	if cache != nil {
		// Precompute block cache keys so the per-read loadBlock path does no
		// string formatting (a Sprintf per lookup shows up at query rates).
		t.cacheKeys = make([]string, len(t.indexOffs))
		for i := range t.indexOffs {
			t.cacheKeys[i] = fmt.Sprintf("%s#%d", storeKey, t.indexOffs[i])
		}
	}
	t.bloom, err = readRange(int64(bloomOff), int64(bloomLen))
	if err != nil {
		return nil, err
	}
	if data != nil {
		// Copy only in the from-bytes path, where the range aliases caller
		// memory that may be reused; store reads hand us a private buffer.
		t.bloom = append([]byte(nil), t.bloom...)
	}
	// First key: first entry of the first block.
	if len(t.indexOffs) > 0 {
		var blk []byte
		if data != nil {
			raw, err := readRange(int64(t.indexOffs[0]), int64(t.indexLens[0]))
			if err != nil {
				return nil, err
			}
			blk, err = decodeBlock(raw)
			if err != nil {
				return nil, fmt.Errorf("sstable: %s: block 0: %w", storeKey, err)
			}
		} else {
			var err error
			blk, err = t.loadBlock(0)
			if err != nil {
				return nil, err
			}
		}
		bd := encoding.NewDecbuf(blk)
		_ = bd.Uvarint() // shared (0 for first entry)
		unshared := bd.Uvarint()
		_ = bd.Uvarint() // value len
		t.firstKey = append([]byte(nil), bd.Bytes(int(unshared))...)
		if bd.Err() != nil {
			return nil, fmt.Errorf("%w: %s: corrupt first block: %w", ErrCorrupt, storeKey, bd.Err())
		}
		t.lastKey = t.indexKeys[len(t.indexKeys)-1]
	}
	return t, nil
}

// StoreKey returns the object key the table lives under.
func (t *Table) StoreKey() string { return t.storeKey }

// Size returns the table's stored size in bytes.
func (t *Table) Size() int64 { return t.size }

// NumEntries returns the number of key-value pairs.
func (t *Table) NumEntries() uint64 { return t.numEntries }

// FirstKey returns the smallest key in the table.
func (t *Table) FirstKey() []byte { return t.firstKey }

// LastKey returns the largest key in the table.
func (t *Table) LastKey() []byte { return t.lastKey }

// MetaBytes returns the pinned in-memory footprint (index + bloom), used in
// memory accounting.
func (t *Table) MetaBytes() int64 {
	n := int64(len(t.bloom))
	for _, k := range t.indexKeys {
		n += int64(len(k)) + 16
	}
	return n
}

// loadBlock fetches and verifies data block i. With a cache attached the
// fetch goes through the cache's singleflight path, so concurrent query
// workers missing on the same slow-tier block issue one store read.
func (t *Table) loadBlock(i int) ([]byte, error) {
	fetch := func() ([]byte, error) {
		raw, err := t.store.GetRange(t.storeKey, int64(t.indexOffs[i]), int64(t.indexLens[i]))
		if err != nil {
			return nil, err
		}
		payload, err := decodeBlock(raw)
		if err != nil {
			return nil, fmt.Errorf("sstable: %s: block %d: %w", t.storeKey, i, err)
		}
		return payload, nil
	}
	if t.cache == nil {
		// No cache means no singleflight leader to retry for us; apply the
		// bounded retry here so transient blips do not fail the read.
		var out []byte
		err := cloud.DefaultRetry.Do(func() error {
			var err error
			out, err = fetch()
			return err
		})
		return out, err
	}
	return t.cache.GetOrFetch(t.cacheKeys[i], fetch)
}

// blockFor returns the index of the first block whose last key >= key,
// or len(blocks) if key is past the end.
func (t *Table) blockFor(key []byte) int {
	lo, hi := 0, len(t.indexKeys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.indexKeys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the value stored under key. The returned slice aliases the
// decoded block (cache-resident when a cache is attached) and must be
// treated as read-only; cached blocks are immutable after insert (see
// cloud.LRUCache), so the alias stays valid for as long as it is
// referenced — the GC keeps even evicted blocks alive.
func (t *Table) Get(key []byte) ([]byte, bool, error) {
	if !bloomMayContain(t.bloom, key) {
		return nil, false, nil
	}
	bi := t.blockFor(key)
	if bi >= len(t.indexKeys) {
		return nil, false, nil
	}
	blk, err := t.loadBlock(bi)
	if err != nil {
		return nil, false, err
	}
	var it blockIter
	it.reset(blk)
	for it.next() {
		if c := bytes.Compare(it.key, key); c == 0 {
			return it.value, true, nil
		} else if c > 0 {
			return nil, false, nil
		}
	}
	return nil, false, it.err
}

var tableIterPool = sync.Pool{New: func() any { return new(TableIterator) }}

// Iter returns an iterator over keys in [start, end). A nil start begins at
// the first key; a nil end runs to the last. The iterator comes from a pool:
// call Release when done to recycle it (optional — an un-Released iterator
// is simply garbage collected).
func (t *Table) Iter(start, end []byte) *TableIterator {
	it := tableIterPool.Get().(*TableIterator)
	keyScratch := it.blk.key[:0]
	*it = TableIterator{t: t, end: end}
	it.blk.key = keyScratch
	if start != nil {
		it.nextBlock = t.blockFor(start)
		it.skipTo = start
	}
	return it
}

// TableIterator iterates key-value pairs in order, loading blocks lazily.
// The block cursor is embedded by value and its key scratch is reused
// across blocks and across pooled scans, so a steady-state scan allocates
// nothing of its own.
type TableIterator struct {
	t         *Table
	end       []byte
	nextBlock int
	blk       blockIter
	inBlk     bool
	skipTo    []byte
	err       error
	done      bool
}

// Next advances to the next entry.
func (it *TableIterator) Next() bool {
	if it.err != nil || it.done {
		return false
	}
	for {
		if !it.inBlk {
			if it.nextBlock >= len(it.t.indexKeys) {
				it.done = true
				return false
			}
			data, err := it.t.loadBlock(it.nextBlock)
			if err != nil {
				it.err = err
				return false
			}
			it.nextBlock++
			it.blk.reset(data)
			it.inBlk = true
		}
		for it.blk.next() {
			if it.skipTo != nil {
				if bytes.Compare(it.blk.key, it.skipTo) < 0 {
					continue
				}
				it.skipTo = nil
			}
			if it.end != nil && bytes.Compare(it.blk.key, it.end) >= 0 {
				it.done = true
				return false
			}
			return true
		}
		if it.blk.err != nil {
			it.err = it.blk.err
			return false
		}
		it.inBlk = false
	}
}

// Key returns the current key; valid until the next call to Next. The slice
// is the iterator's reused scratch — copy it (e.g. into a fixed-size
// encoding.Key) to retain it.
func (it *TableIterator) Key() []byte { return it.blk.key }

// Value returns the current value. The slice aliases the decoded block and
// must be treated as read-only; like Table.Get results it stays valid for
// as long as it is referenced (cached blocks are immutable after insert).
func (it *TableIterator) Value() []byte { return it.blk.value }

// Err returns the first error encountered.
func (it *TableIterator) Err() error { return it.err }

// Release returns the iterator to the pool. Neither the iterator nor the
// last Key slice may be used afterwards (Value slices stay valid — they
// alias the immutable block, not iterator state).
func (it *TableIterator) Release() {
	keyScratch := it.blk.key[:0]
	*it = TableIterator{}
	it.blk.key = keyScratch
	tableIterPool.Put(it)
}

// blockIter walks entries inside one data block.
type blockIter struct {
	d     encoding.Decbuf
	key   []byte
	value []byte
	err   error
}

// reset points the cursor at a new block, keeping the key scratch.
func (b *blockIter) reset(data []byte) {
	b.d = encoding.NewDecbuf(data)
	b.key = b.key[:0]
	b.value = nil
	b.err = nil
}

func (b *blockIter) next() bool {
	if b.err != nil || b.d.Len() == 0 {
		return false
	}
	shared := b.d.Uvarint()
	unshared := b.d.Uvarint()
	vlen := b.d.Uvarint()
	if b.d.Err() != nil {
		b.err = fmt.Errorf("sstable: corrupt block entry: %w", b.d.Err())
		return false
	}
	if shared > uint64(len(b.key)) {
		b.err = fmt.Errorf("sstable: corrupt block entry: shared prefix %d > key %d", shared, len(b.key))
		return false
	}
	b.key = append(b.key[:shared], b.d.Bytes(int(unshared))...)
	b.value = b.d.Bytes(int(vlen))
	if b.d.Err() != nil {
		b.err = fmt.Errorf("sstable: corrupt block entry: %w", b.d.Err())
		return false
	}
	return true
}
