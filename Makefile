GO ?= go

.PHONY: tier1 tier1-faults race vet bench-parallel

# tier1 is the gate every change must keep green: full build + full test run.
tier1:
	$(GO) build ./...
	$(GO) test ./...

# tier1-faults is the crash-safety gate: vet plus 50 randomized
# crash-recovery torture schedules under the race detector, at a fixed seed
# so failures reproduce.
tier1-faults:
	$(GO) vet ./...
	TORTURE_SCHEDULES=50 TORTURE_SEED=20260806 $(GO) test ./internal/core -run TestCrashTorture -race -count=1

# race runs the concurrency-sensitive packages under the race detector.
race:
	$(GO) test -race ./internal/...

vet:
	$(GO) vet ./...

# bench-parallel measures the parallel query / striped append speedups.
bench-parallel:
	$(GO) test -bench='QueryParallel|AppendFastParallel' -run='^$$' -benchtime=3x .
