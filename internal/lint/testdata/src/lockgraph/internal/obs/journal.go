// Package obs mirrors the journal's lock shape: Journal.mu is a declared
// leaf, so holding it across any other acquisition is a violation.
package obs

import "sync"

type flusher struct{ mu sync.Mutex }

type Journal struct {
	mu sync.Mutex
	f  flusher
	n  int
}

// Emit does only local work under the leaf lock: fine.
func (j *Journal) Emit() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.n++
}

// FlushHolding acquires another lock while holding the leaf.
func (j *Journal) FlushHolding() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.mu.Lock() // want `leaf lock obs.Journal.mu is held in Journal.FlushHolding while obs.flusher.mu is acquired`
	j.f.mu.Unlock()
}
