package obs

import (
	"sync"
	"time"
)

// Event is one completed background operation: a flush, compaction,
// retention pass, manifest commit, WAL roll, recovery, and so on. Events
// are wide and self-describing — the fixed columns carry identity and
// timing, Fields carries the per-kind payload (bytes in/out, tables
// in/out, tier, manifest version, worker id, ...). The schema is the
// journal's wire contract: /api/v1/events streams events as NDJSON, one
// JSON object per line (DESIGN.md §4.12).
type Event struct {
	// Seq is the journal-wide monotonic sequence number (first event = 1).
	// Sequence numbers are gapless even across ring wraparound, so a
	// consumer polling with ?since_seq= can detect events it missed: the
	// first returned Seq exceeding its cursor+1 means the ring overwrote
	// the gap.
	Seq uint64 `json:"seq"`
	// Kind names the operation, dot-namespaced by subsystem:
	// "lsm.flush", "lsm.compact.l0l1", "wal.roll", "core.open", ...
	Kind string `json:"kind"`
	// StartMs is the operation's start time, Unix milliseconds.
	StartMs int64 `json:"start_ms"`
	// DurationUs is the operation's duration in microseconds.
	DurationUs int64 `json:"duration_us"`
	// Err is the operation's error text, empty on success.
	Err string `json:"err,omitempty"`
	// Fields holds the per-kind payload. Values are JSON scalars.
	Fields map[string]any `json:"fields,omitempty"`
}

// Journal is a fixed-capacity concurrent ring of Events with monotonic
// sequence numbers: the operational history every background operation
// emits into. Old events are overwritten once the ring is full — the
// journal is a flight recorder, not durable storage. A nil *Journal is a
// no-op (the same un-instrumented pattern the registry instruments use),
// so emit sites stay unconditional.
//
// Emission is mutex-guarded rather than lock-free: events fire at
// background-operation rate (flushes, compactions, segment rolls), orders
// of magnitude below the per-sample hot path, so a short critical section
// costs nothing measurable (the env-gated TestJournalOverheadBudget guard
// holds the ingest overhead under 1%).
type Journal struct {
	mu  sync.Mutex
	buf []Event // ring storage; index = (Seq-1) % cap
	seq uint64  // last assigned sequence (0 = empty)
}

// DefaultJournalCapacity is the ring size when the owner does not choose.
const DefaultJournalCapacity = 2048

// NewJournal creates a journal holding the last capacity events
// (DefaultJournalCapacity when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCapacity
	}
	return &Journal{buf: make([]Event, capacity)}
}

// Emit appends one event, stamping it with the next sequence number and
// the duration since start. err may be nil; fields may be nil. The fields
// map is retained — callers must not mutate it after emitting.
func (j *Journal) Emit(kind string, start time.Time, err error, fields map[string]any) {
	if j == nil {
		return
	}
	e := Event{
		Kind:       kind,
		StartMs:    start.UnixMilli(),
		DurationUs: time.Since(start).Microseconds(),
		Fields:     fields,
	}
	if err != nil {
		e.Err = err.Error()
	}
	j.mu.Lock()
	j.seq++
	e.Seq = j.seq
	j.buf[(e.Seq-1)%uint64(len(j.buf))] = e
	j.mu.Unlock()
}

// LastSeq returns the sequence of the newest event (0 when empty).
func (j *Journal) LastSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Capacity returns the ring size (0 for a nil journal).
func (j *Journal) Capacity() int {
	if j == nil {
		return 0
	}
	return len(j.buf)
}

// Overwritten returns how many events the ring has dropped to make room.
func (j *Journal) Overwritten() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if n := uint64(len(j.buf)); j.seq > n {
		return j.seq - n
	}
	return 0
}

// Events returns the retained events with Seq > sinceSeq, oldest first.
// kinds, when non-empty, keeps only events whose Kind is in the set.
// The returned slice is a copy; Fields maps are shared and read-only.
func (j *Journal) Events(sinceSeq uint64, kinds map[string]bool) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.seq == 0 {
		return nil
	}
	oldest := uint64(1)
	if n := uint64(len(j.buf)); j.seq > n {
		oldest = j.seq - n + 1
	}
	if sinceSeq+1 > oldest {
		oldest = sinceSeq + 1
	}
	if oldest > j.seq {
		return nil
	}
	out := make([]Event, 0, j.seq-oldest+1)
	for s := oldest; s <= j.seq; s++ {
		e := j.buf[(s-1)%uint64(len(j.buf))]
		if len(kinds) > 0 && !kinds[e.Kind] {
			continue
		}
		out = append(out, e)
	}
	return out
}

// RegisterMetrics exposes the journal's own counters on reg
// (scrape-side visibility into ring pressure).
func (j *Journal) RegisterMetrics(reg *Registry) {
	if j == nil || reg == nil {
		return
	}
	reg.CounterFunc("timeunion_journal_events_total", "", "Operational events emitted into the journal ring.",
		func() float64 { return float64(j.LastSeq()) })
	reg.CounterFunc("timeunion_journal_events_overwritten_total", "", "Events the fixed-capacity ring overwrote before a consumer read them.",
		func() float64 { return float64(j.Overwritten()) })
}
