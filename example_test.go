package timeunion_test

import (
	"fmt"
	"log"

	"timeunion"
)

// ExampleOpen shows the minimal ingest-and-query round trip on in-memory
// storage tiers.
func ExampleOpen() {
	db, err := timeunion.Open(timeunion.Options{
		Fast: timeunion.NewMemBlockStore(),
		Slow: timeunion.NewMemObjectStore(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Slow path: the first write carries the full tag set.
	id, err := db.Append(timeunion.LabelsFromStrings(
		"measurement", "cpu", "field", "usage_user", "hostname", "web-1",
	), 1000, 42.5)
	if err != nil {
		log.Fatal(err)
	}
	// Fast path: subsequent writes pass only the series ID.
	if err := db.AppendFast(id, 2000, 43.75); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(0, 10_000, timeunion.Equal("hostname", "web-1"))
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res {
		for _, p := range s.Samples {
			fmt.Printf("%d %.2f\n", p.T, p.V)
		}
	}
	// Output:
	// 1000 42.50
	// 2000 43.75
}

// ExampleDB_AppendGroup shows the group model: members share one timestamp
// column, and a member missing from a round simply records NULL.
func ExampleDB_AppendGroup() {
	db, err := timeunion.Open(timeunion.Options{
		Fast: timeunion.NewMemBlockStore(),
		Slow: timeunion.NewMemObjectStore(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	hostTags := timeunion.LabelsFromStrings("hostname", "db-1")
	members := []timeunion.Labels{
		timeunion.LabelsFromStrings("field", "usage_user"),
		timeunion.LabelsFromStrings("field", "usage_system"),
	}
	gid, slots, err := db.AppendGroup(hostTags, members, 1000, []float64{10, 20})
	if err != nil {
		log.Fatal(err)
	}
	// Second round: only the first member reports.
	if err := db.AppendGroupFast(gid, slots[:1], 2000, []float64{11}); err != nil {
		log.Fatal(err)
	}

	res, err := db.Query(0, 10_000, timeunion.Equal("field", "usage_system"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d series, %d samples\n", len(res), len(res[0].Samples))
	// Output:
	// 1 series, 1 samples
}
