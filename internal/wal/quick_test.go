package wal

import (
	"math/rand"
	"testing"

	"timeunion/internal/labels"
)

// TestRandomOpsRecoverToModel drives random log/flush/purge/reopen
// sequences and checks that recovery always reproduces exactly the
// unflushed suffix of every series.
func TestRandomOpsRecoverToModel(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(string(rune('a'+seed)), func(t *testing.T) {
			dir := t.TempDir()
			rnd := rand.New(rand.NewSource(seed))
			w, err := Open(dir, Options{SegmentSize: 512})
			if err != nil {
				t.Fatal(err)
			}

			type sample struct {
				seq uint64
				t   int64
				v   float64
			}
			model := map[uint64][]sample{} // id -> all samples in order
			flushed := map[uint64]uint64{} // id -> flushed seq
			seqs := map[uint64]uint64{}
			const nSeries = 5
			for id := uint64(1); id <= nSeries; id++ {
				if err := w.LogSeries(id, labels.FromStrings("id", string(rune('A'+id)))); err != nil {
					t.Fatal(err)
				}
			}

			for op := 0; op < 400; op++ {
				switch rnd.Intn(10) {
				case 0: // flush mark at the current seq of a random series
					id := uint64(1 + rnd.Intn(nSeries))
					if seqs[id] > flushed[id] {
						mark := flushed[id] + uint64(rnd.Intn(int(seqs[id]-flushed[id]))) + 1
						if err := w.LogFlushMark(id, mark); err != nil {
							t.Fatal(err)
						}
						flushed[id] = mark
					}
				case 1: // purge
					if _, err := w.Purge(); err != nil {
						t.Fatal(err)
					}
				case 2: // reopen mid-stream
					if err := w.Close(); err != nil {
						t.Fatal(err)
					}
					w, err = Open(dir, Options{SegmentSize: 512})
					if err != nil {
						t.Fatal(err)
					}
				default: // sample
					id := uint64(1 + rnd.Intn(nSeries))
					seqs[id]++
					s := sample{seq: seqs[id], t: rnd.Int63n(1 << 30), v: rnd.Float64()}
					model[id] = append(model[id], s)
					if err := w.LogSample(id, s.seq, s.t, s.v); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}

			// Final recovery: exactly the unflushed samples, in order.
			w2, err := Open(dir, Options{SegmentSize: 512})
			if err != nil {
				t.Fatal(err)
			}
			defer w2.Close()
			got := map[uint64][]sample{}
			err = w2.Recover(Handler{Sample: func(r SampleRec) error {
				got[r.ID] = append(got[r.ID], sample{seq: r.Seq, t: r.T, v: r.V})
				return nil
			}})
			if err != nil {
				t.Fatal(err)
			}
			for id := uint64(1); id <= nSeries; id++ {
				var want []sample
				for _, s := range model[id] {
					if s.seq > flushed[id] {
						want = append(want, s)
					}
				}
				if len(got[id]) != len(want) {
					t.Fatalf("seed %d series %d: recovered %d samples, want %d",
						seed, id, len(got[id]), len(want))
				}
				for i := range want {
					if got[id][i] != want[i] {
						t.Fatalf("seed %d series %d sample %d: %+v != %+v",
							seed, id, i, got[id][i], want[i])
					}
				}
			}
		})
	}
}
