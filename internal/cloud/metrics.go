package cloud

import "timeunion/internal/obs"

// RegisterStoreMetrics exposes a store's accounting on reg under the given
// tier label ("fast"/"slow"), installs per-op latency histograms via
// InstrumentStore, and — when the chain contains a FaultStore — exposes its
// injection counters. Func-backed series read the store's existing atomic
// counters at scrape time, so the hot path is untouched.
func RegisterStoreMetrics(reg *obs.Registry, tier string, s Store) {
	if reg == nil || s == nil {
		return
	}
	labels := `tier="` + tier + `"`
	reg.CounterFunc("timeunion_store_gets_total", labels, "Read requests served by the store.",
		func() float64 { return float64(s.Stats().Gets) })
	reg.CounterFunc("timeunion_store_puts_total", labels, "Write requests served by the store.",
		func() float64 { return float64(s.Stats().Puts) })
	reg.CounterFunc("timeunion_store_deletes_total", labels, "Delete requests served by the store.",
		func() float64 { return float64(s.Stats().Deletes) })
	reg.CounterFunc("timeunion_store_read_bytes_total", labels, "Bytes read from the store.",
		func() float64 { return float64(s.Stats().BytesRead) })
	reg.CounterFunc("timeunion_store_written_bytes_total", labels, "Bytes written to the store.",
		func() float64 { return float64(s.Stats().BytesWritten) })
	reg.CounterFunc("timeunion_store_sim_read_seconds_total", labels, "Modelled cumulative read latency.",
		func() float64 { return s.Stats().SimReadTime.Seconds() })
	reg.CounterFunc("timeunion_store_sim_write_seconds_total", labels, "Modelled cumulative write latency.",
		func() float64 { return s.Stats().SimWriteTime.Seconds() })
	reg.GaugeFunc("timeunion_store_total_bytes", labels, "Stored payload volume.",
		func() float64 { return float64(s.TotalBytes()) })
	InstrumentStore(s,
		reg.Histogram("timeunion_store_read_seconds", labels, "Modelled per-request read latency."),
		reg.Histogram("timeunion_store_write_seconds", labels, "Modelled per-request write latency."))
	if fs := findFaultStore(s); fs != nil {
		reg.CounterFunc("timeunion_store_faults_injected_total", labels+`,class="transient"`,
			"Injected faults by class.", func() float64 { return float64(fs.Injected().Transient) })
		reg.CounterFunc("timeunion_store_faults_injected_total", labels+`,class="notfound"`,
			"Injected faults by class.", func() float64 { return float64(fs.Injected().NotFound) })
		reg.CounterFunc("timeunion_store_faults_injected_total", labels+`,class="torn"`,
			"Injected faults by class.", func() float64 { return float64(fs.Injected().TornWrite) })
		reg.CounterFunc("timeunion_store_faults_injected_total", labels+`,class="latency"`,
			"Injected faults by class.", func() float64 { return float64(fs.Injected().Latency) })
	}
}

// findFaultStore walks the wrapper chain looking for a FaultStore.
func findFaultStore(s Store) *FaultStore {
	for s != nil {
		if fs, ok := s.(*FaultStore); ok {
			return fs
		}
		w, ok := s.(innerStore)
		if !ok {
			return nil
		}
		s = w.Inner()
	}
	return nil
}

// RegisterCacheMetrics exposes the segment cache's counters on reg.
func RegisterCacheMetrics(reg *obs.Registry, c *LRUCache) {
	if reg == nil || c == nil {
		return
	}
	reg.CounterFunc("timeunion_cache_hits_total", "", "Segment cache hits.",
		func() float64 { h, _ := c.HitRate(); return float64(h) })
	reg.CounterFunc("timeunion_cache_misses_total", "", "Segment cache misses (fetch leaders).",
		func() float64 { _, m := c.HitRate(); return float64(m) })
	reg.CounterFunc("timeunion_cache_shared_fetches_total", "", "Misses served by another caller's in-flight fetch (singleflight merges).",
		func() float64 { return float64(c.SharedFetches()) })
	reg.CounterFunc("timeunion_cache_evictions_total", "", "Entries evicted under capacity pressure.",
		func() float64 { return float64(c.Evictions()) })
	reg.GaugeFunc("timeunion_cache_used_bytes", "", "Bytes currently cached.",
		func() float64 { return float64(c.UsedBytes()) })
	reg.CounterFunc("timeunion_store_retries_total", "", "Retried store attempts (process-wide, all retry policies).",
		func() float64 { return float64(RetriesTotal()) })
}
