// Package cloud provides the hybrid cloud storage substrate TimeUnion runs
// on (paper §2.1): a fast block store (AWS EBS in the paper) and a slow
// object store (AWS S3). Since this reproduction runs on one machine, both
// tiers are local directories wrapped with latency/cost models shaped like
// Figure 1: the block store is byte-granular with low per-op latency; the
// object store is request-dominated (every Get pays a large first-byte
// latency) and ~30x slower on reads.
//
// Every store meters requests, bytes, and simulated time, which is what the
// paper's cost analyses (Equations 3-6 and 8-10) and the compaction-traffic
// experiments measure.
package cloud

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"timeunion/internal/obs"
)

// Tier identifies a storage tier.
type Tier int

const (
	// TierBlock is the fast cloud block store (EBS-like).
	TierBlock Tier = iota
	// TierObject is the slow cloud object store (S3-like).
	TierObject
)

func (t Tier) String() string {
	if t == TierBlock {
		return "block"
	}
	return "object"
}

// ErrNotFound is returned when a key does not exist.
type ErrNotFound struct{ Key string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("cloud: key not found: %s", e.Key) }

// IsNotFound reports whether err is (or wraps) a missing-key error.
// Wrapping matters on the replica refresh path, where a %w-wrapped
// NotFound on a listed manifest/catalog version means "the writer pruned
// it — re-list and retry", never a hard failure.
func IsNotFound(err error) bool {
	var nf *ErrNotFound
	return errors.As(err, &nf)
}

// Store is the storage interface both tiers implement. Keys are
// slash-separated paths.
type Store interface {
	// Put stores an object, replacing any existing one.
	Put(key string, data []byte) error
	// Get returns the whole object.
	Get(key string) ([]byte, error)
	// GetRange returns length bytes starting at off. On the object tier
	// a range read still pays a full per-request latency (one S3 Get).
	GetRange(key string, off, length int64) ([]byte, error)
	// Delete removes an object. Deleting a missing key is not an error.
	Delete(key string) error
	// List returns all keys with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Size returns the object's length in bytes.
	Size(key string) (int64, error)
	// TotalBytes returns the total stored payload size, the quantity the
	// dynamic size controller budgets against.
	TotalBytes() int64
	// Stats returns the request/byte/latency accounting since ResetStats.
	Stats() Stats
	// ResetStats zeroes the accounting counters.
	ResetStats()
	// Tier reports which tier this store simulates.
	Tier() Tier
}

// Stats is the request accounting for a store.
type Stats struct {
	Gets         uint64
	Puts         uint64
	Deletes      uint64
	BytesRead    uint64
	BytesWritten uint64
	// SimReadTime/SimWriteTime accumulate the *modelled* latency, before
	// TimeScale shrinks the actual sleeps, so cost shapes are measurable
	// even in fast test runs.
	SimReadTime  time.Duration
	SimWriteTime time.Duration
}

// Add returns the element-wise sum of two stats.
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Gets:         s.Gets + o.Gets,
		Puts:         s.Puts + o.Puts,
		Deletes:      s.Deletes + o.Deletes,
		BytesRead:    s.BytesRead + o.BytesRead,
		BytesWritten: s.BytesWritten + o.BytesWritten,
		SimReadTime:  s.SimReadTime + o.SimReadTime,
		SimWriteTime: s.SimWriteTime + o.SimWriteTime,
	}
}

// LatencyModel describes a tier's performance (paper Figure 1b-c).
type LatencyModel struct {
	// ReadPerOp is the fixed latency of one read request (first byte).
	ReadPerOp time.Duration
	// WritePerOp is the fixed latency of one write request.
	WritePerOp time.Duration
	// ReadBytesPerSec is the streaming read bandwidth.
	ReadBytesPerSec float64
	// WriteBytesPerSec is the streaming write bandwidth.
	WriteBytesPerSec float64
	// TimeScale divides the injected sleep. 0 disables sleeping entirely
	// (accounting only); 1 sleeps the modelled latency; 100 sleeps 1% of
	// it. Experiments use a scale >0 so relative latencies keep their
	// shape without wall-clock hours.
	TimeScale float64
}

// EBSModel returns a latency model shaped like AWS EBS gp2 measured in
// Figure 1: ~0.25 ms per op, ~250 MB/s.
func EBSModel(timeScale float64) LatencyModel {
	return LatencyModel{
		ReadPerOp:        250 * time.Microsecond,
		WritePerOp:       300 * time.Microsecond,
		ReadBytesPerSec:  250e6,
		WriteBytesPerSec: 250e6,
		TimeScale:        timeScale,
	}
}

// S3Model returns a latency model shaped like AWS S3 in-region measured in
// Figure 1: ~15 ms per Get, ~30 ms per Put, ~80 MB/s streaming. Reads are
// ~30x slower than EBS on average, and small writes are orders of magnitude
// slower, matching §2.1.
func S3Model(timeScale float64) LatencyModel {
	return LatencyModel{
		ReadPerOp:        15 * time.Millisecond,
		WritePerOp:       30 * time.Millisecond,
		ReadBytesPerSec:  80e6,
		WriteBytesPerSec: 80e6,
		TimeScale:        timeScale,
	}
}

func (m LatencyModel) readLatency(n int64) time.Duration {
	d := m.ReadPerOp
	if m.ReadBytesPerSec > 0 {
		d += time.Duration(float64(n) / m.ReadBytesPerSec * float64(time.Second))
	}
	return d
}

func (m LatencyModel) writeLatency(n int64) time.Duration {
	d := m.WritePerOp
	if m.WriteBytesPerSec > 0 {
		d += time.Duration(float64(n) / m.WriteBytesPerSec * float64(time.Second))
	}
	return d
}

func (m LatencyModel) sleep(d time.Duration) {
	if m.TimeScale <= 0 {
		return
	}
	time.Sleep(time.Duration(float64(d) / m.TimeScale))
}

// statsCell is the shared atomic accounting backing a store. The optional
// histogram pointers (installed via Instrumentable) observe the modelled
// per-op latency, so the exposed distributions keep the tier's cost shape
// even when TimeScale shrinks the actual sleeps.
type statsCell struct {
	gets, puts, deletes         atomic.Uint64
	bytesRead, bytesWritten     atomic.Uint64
	simReadNanos, simWriteNanos atomic.Int64

	readHist  atomic.Pointer[obs.Histogram]
	writeHist atomic.Pointer[obs.Histogram]
}

func (c *statsCell) snapshot() Stats {
	return Stats{
		Gets:         c.gets.Load(),
		Puts:         c.puts.Load(),
		Deletes:      c.deletes.Load(),
		BytesRead:    c.bytesRead.Load(),
		BytesWritten: c.bytesWritten.Load(),
		SimReadTime:  time.Duration(c.simReadNanos.Load()),
		SimWriteTime: time.Duration(c.simWriteNanos.Load()),
	}
}

func (c *statsCell) reset() {
	c.gets.Store(0)
	c.puts.Store(0)
	c.deletes.Store(0)
	c.bytesRead.Store(0)
	c.bytesWritten.Store(0)
	c.simReadNanos.Store(0)
	c.simWriteNanos.Store(0)
}

func (c *statsCell) recordRead(m LatencyModel, n int64) {
	c.gets.Add(1)
	c.bytesRead.Add(uint64(n))
	d := m.readLatency(n)
	c.simReadNanos.Add(int64(d))
	c.readHist.Load().Observe(d) // nil histogram is a no-op
	m.sleep(d)
}

func (c *statsCell) recordWrite(m LatencyModel, n int64) {
	c.puts.Add(1)
	c.bytesWritten.Add(uint64(n))
	d := m.writeLatency(n)
	c.simWriteNanos.Add(int64(d))
	c.writeHist.Load().Observe(d) // nil histogram is a no-op
	m.sleep(d)
}

// instrument installs latency histograms observed on every read and write.
func (c *statsCell) instrument(read, write *obs.Histogram) {
	c.readHist.Store(read)
	c.writeHist.Store(write)
}

// Instrumentable is the optional interface a store implements to accept
// per-op latency histograms without widening the Store interface.
type Instrumentable interface {
	Instrument(read, write *obs.Histogram)
}

// innerStore is implemented by wrappers (FaultStore, RetryStore) that
// delegate to an underlying store.
type innerStore interface {
	Inner() Store
}

// InstrumentStore installs read/write latency histograms on s, unwrapping
// fault/retry wrappers to reach the instrumentable base store. Returns true
// if a store in the chain accepted the histograms.
func InstrumentStore(s Store, read, write *obs.Histogram) bool {
	for s != nil {
		if in, ok := s.(Instrumentable); ok {
			in.Instrument(read, write)
			return true
		}
		w, ok := s.(innerStore)
		if !ok {
			return false
		}
		s = w.Inner()
	}
	return false
}

// MemStore is an in-memory Store with a latency model. It backs both tiers
// in tests and benchmarks, where filesystem overhead would drown the
// modelled latencies.
type MemStore struct {
	tier  Tier
	model LatencyModel

	mu   sync.RWMutex
	data map[string][]byte

	total atomic.Int64
	stats statsCell
}

// NewMemStore creates an empty in-memory store.
func NewMemStore(tier Tier, model LatencyModel) *MemStore {
	return &MemStore{tier: tier, model: model, data: make(map[string][]byte)}
}

// Put implements Store.
func (s *MemStore) Put(key string, data []byte) error {
	cp := append([]byte(nil), data...)
	s.mu.Lock()
	if old, ok := s.data[key]; ok {
		s.total.Add(-int64(len(old)))
	}
	s.data[key] = cp
	s.total.Add(int64(len(cp)))
	s.mu.Unlock()
	s.stats.recordWrite(s.model, int64(len(data)))
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key string) ([]byte, error) {
	s.mu.RLock()
	d, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, &ErrNotFound{Key: key}
	}
	s.stats.recordRead(s.model, int64(len(d)))
	return append([]byte(nil), d...), nil
}

// GetRange implements Store.
func (s *MemStore) GetRange(key string, off, length int64) ([]byte, error) {
	if err := validateRange(key, off, length); err != nil {
		return nil, err
	}
	s.mu.RLock()
	d, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return nil, &ErrNotFound{Key: key}
	}
	if off > int64(len(d)) {
		return nil, fmt.Errorf("cloud: range offset %d out of bounds for %s (%d bytes)", off, key, len(d))
	}
	end := off + length
	if end > int64(len(d)) {
		end = int64(len(d))
	}
	s.stats.recordRead(s.model, end-off)
	return append([]byte(nil), d[off:end]...), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key string) error {
	s.mu.Lock()
	if old, ok := s.data[key]; ok {
		s.total.Add(-int64(len(old)))
		delete(s.data, key)
	}
	s.mu.Unlock()
	s.stats.deletes.Add(1)
	return nil
}

// List implements Store.
func (s *MemStore) List(prefix string) ([]string, error) {
	s.mu.RLock()
	var keys []string
	for k := range s.data {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	return keys, nil
}

// Size implements Store.
func (s *MemStore) Size(key string) (int64, error) {
	s.mu.RLock()
	d, ok := s.data[key]
	s.mu.RUnlock()
	if !ok {
		return 0, &ErrNotFound{Key: key}
	}
	return int64(len(d)), nil
}

// TotalBytes implements Store.
func (s *MemStore) TotalBytes() int64 { return s.total.Load() }

// Stats implements Store.
func (s *MemStore) Stats() Stats { return s.stats.snapshot() }

// ResetStats implements Store.
func (s *MemStore) ResetStats() { s.stats.reset() }

// Tier implements Store.
func (s *MemStore) Tier() Tier { return s.tier }

// Instrument implements Instrumentable.
func (s *MemStore) Instrument(read, write *obs.Histogram) { s.stats.instrument(read, write) }

// DirStore is a Store over a local directory, used when persistence across
// process restarts matters (examples, cmd tools).
type DirStore struct {
	tier  Tier
	model LatencyModel
	root  string

	// mu serializes the stat+write / stat+remove sequences of Put and
	// Delete so overwrites of one key cannot skew the size accounting;
	// the accounting itself is atomic so TotalBytes never blocks on IO.
	mu    sync.Mutex
	total atomic.Int64

	stats statsCell
}

// NewDirStore creates a directory-backed store rooted at dir.
func NewDirStore(dir string, tier Tier, model LatencyModel) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cloud: create store dir: %w", err)
	}
	s := &DirStore{tier: tier, model: model, root: dir}
	// Recompute the stored volume on open.
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			s.total.Add(info.Size())
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cloud: scan store dir: %w", err)
	}
	return s, nil
}

func (s *DirStore) path(key string) string {
	return filepath.Join(s.root, filepath.FromSlash(key))
}

// Put implements Store. The temp file is synced before the rename and the
// parent directory after it, so a crash can never leave the key pointing
// at an empty or partial object — the atomicity a real object store
// guarantees per request. The store lock is held across the stat and the
// write so concurrent overwrites of one key cannot skew the TotalBytes
// accounting.
func (s *DirStore) Put(key string, data []byte) error {
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cloud: put %s: %w", key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var oldSize int64
	if fi, err := os.Stat(p); err == nil {
		oldSize = fi.Size()
	}
	tmp := p + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("cloud: put %s: %w", key, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("cloud: put %s: %w", key, err)
	}
	if err := syncParentDir(p); err != nil {
		return fmt.Errorf("cloud: put %s: %w", key, err)
	}
	s.total.Add(int64(len(data)) - oldSize)
	s.stats.recordWrite(s.model, int64(len(data)))
	return nil
}

// writeFileSync writes data to path and fsyncs it before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close() // discard: the write error is what the caller needs
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close() // discard: the sync error is what the caller needs
		return err
	}
	return f.Close()
}

// syncParentDir fsyncs the directory containing path, making a rename into
// it durable.
func syncParentDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// Get implements Store.
func (s *DirStore) Get(key string) ([]byte, error) {
	d, err := os.ReadFile(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &ErrNotFound{Key: key}
		}
		return nil, fmt.Errorf("cloud: get %s: %w", key, err)
	}
	s.stats.recordRead(s.model, int64(len(d)))
	return d, nil
}

// validateRange rejects negative offsets and lengths before they reach an
// allocation or a syscall (a negative length would panic in make).
func validateRange(key string, off, length int64) error {
	if off < 0 || length < 0 {
		return fmt.Errorf("cloud: invalid range [off=%d len=%d] for %s", off, length, key)
	}
	return nil
}

// GetRange implements Store.
func (s *DirStore) GetRange(key string, off, length int64) ([]byte, error) {
	if err := validateRange(key, off, length); err != nil {
		return nil, err
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, &ErrNotFound{Key: key}
		}
		return nil, fmt.Errorf("cloud: get range %s: %w", key, err)
	}
	//lint:ignore errwrap read-only descriptor: no buffered writes to lose, close failure cannot affect durability
	defer f.Close()
	buf := make([]byte, length)
	n, err := f.ReadAt(buf, off)
	if err != nil && n == 0 {
		return nil, fmt.Errorf("cloud: get range %s: %w", key, err)
	}
	s.stats.recordRead(s.model, int64(n))
	return buf[:n], nil
}

// Delete implements Store. Stat and removal happen under the store lock so
// a concurrent Put of the same key cannot double-count the old size.
func (s *DirStore) Delete(key string) error {
	p := s.path(key)
	s.mu.Lock()
	var oldSize int64
	if fi, err := os.Stat(p); err == nil {
		oldSize = fi.Size()
	}
	if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
		s.mu.Unlock()
		return fmt.Errorf("cloud: delete %s: %w", key, err)
	}
	s.total.Add(-oldSize)
	s.mu.Unlock()
	s.stats.deletes.Add(1)
	return nil
}

// List implements Store.
func (s *DirStore) List(prefix string) ([]string, error) {
	var keys []string
	err := filepath.Walk(s.root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() || strings.HasSuffix(path, ".tmp") {
			return nil
		}
		rel, err := filepath.Rel(s.root, path)
		if err != nil {
			return err
		}
		key := filepath.ToSlash(rel)
		if strings.HasPrefix(key, prefix) {
			keys = append(keys, key)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("cloud: list: %w", err)
	}
	sort.Strings(keys)
	return keys, nil
}

// Size implements Store.
func (s *DirStore) Size(key string) (int64, error) {
	fi, err := os.Stat(s.path(key))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, &ErrNotFound{Key: key}
		}
		return 0, fmt.Errorf("cloud: size %s: %w", key, err)
	}
	return fi.Size(), nil
}

// TotalBytes implements Store.
func (s *DirStore) TotalBytes() int64 { return s.total.Load() }

// Stats implements Store.
func (s *DirStore) Stats() Stats { return s.stats.snapshot() }

// ResetStats implements Store.
func (s *DirStore) ResetStats() { s.stats.reset() }

// Tier implements Store.
func (s *DirStore) Tier() Tier { return s.tier }

// Instrument implements Instrumentable.
func (s *DirStore) Instrument(read, write *obs.Histogram) { s.stats.instrument(read, write) }
