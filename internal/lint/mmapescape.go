package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MmapEscape guards the lifetime contract of memory-mapped bytes
// (DESIGN.md §4.10): a slice derived from xmmap.Region.Data() aliases the
// mapping and dies with it — touching it after the region closes is a
// use-after-unmap the runtime cannot catch. Two rules keep every such
// slice's lifetime auditable:
//
//  1. Region.Data() may only be called inside internal/xmmap. Other
//     packages use the typed accessors (SlotArray, FlatArray, ...), whose
//     returned views carry documented lifetimes.
//  2. Inside internal/xmmap, a Data()-derived slice (directly or through
//     local variables) must not be stored into a struct field, a
//     package-level variable, or a composite literal. Long-lived state
//     holds the *Region and re-derives the view per access, so Close
//     leaves no dangling aliases behind.
//
// Returning a derived view from an xmmap function is allowed: that is the
// accessor pattern itself, and the accessor's doc comment owns the
// lifetime statement.
var MmapEscape = &Analyzer{
	Name: "mmapescape",
	Doc:  "xmmap region bytes must not escape their region's lifetime",
	Run:  runMmapEscape,
}

func runMmapEscape(pass *Pass) {
	inXmmap := pass.InScope("internal/xmmap")
	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		if fd.Body == nil {
			return false
		}
		if !inXmmap {
			// Rule 1: no raw Data() calls outside the owning package.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok && isRegionData(pass, call) {
					pass.Reportf(call.Pos(), "Region.Data() outside internal/xmmap exposes raw mmap bytes with no lifetime contract; use a typed xmmap accessor instead")
				}
				return true
			})
			return false
		}
		checkXmmapFunc(pass, fd)
		return false
	})
}

// checkXmmapFunc applies rule 2 inside one xmmap function: track locals
// tainted by Data() and flag stores that outlive the call.
func checkXmmapFunc(pass *Pass, fd *ast.FuncDecl) {
	tainted := map[types.Object]bool{}
	isTainted := func(e ast.Expr) bool { return taintRoot(pass, e, tainted) }

	// Taint propagation: run twice so a use-before-later-def chain within
	// loops still converges (assignments are the only propagators).
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !isTainted(rhs) {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pass.Info.Defs[id]; obj != nil {
						tainted[obj] = true
					} else if obj := pass.Info.Uses[id]; obj != nil && !isPackageLevel(obj) {
						tainted[obj] = true
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			if len(e.Lhs) != len(e.Rhs) {
				return true
			}
			for i, rhs := range e.Rhs {
				if !isTainted(rhs) {
					continue
				}
				switch lhs := e.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(e.Pos(), "mmap-backed slice stored in a field outlives its region; store the *Region and re-derive the view per access")
				case *ast.IndexExpr:
					pass.Reportf(e.Pos(), "mmap-backed slice stored in a container outlives its region; store the *Region and re-derive the view per access")
				case *ast.Ident:
					if obj := pass.Info.Uses[lhs]; obj != nil && isPackageLevel(obj) {
						pass.Reportf(e.Pos(), "mmap-backed slice stored in package-level %s outlives its region", lhs.Name)
					}
				}
			}
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isTainted(v) {
					pass.Reportf(v.Pos(), "mmap-backed slice captured in a composite literal may outlive its region; store the *Region and re-derive the view per access")
				}
			}
		}
		return true
	})
}

// taintRoot reports whether e is (or aliases) a Data()-derived slice:
// a Data() call, a slice of one, or a tainted local — including an append
// whose destination is tainted. append onto a fresh destination copies and
// launders the taint.
func taintRoot(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch v := e.(type) {
	case *ast.ParenExpr:
		return taintRoot(pass, v.X, tainted)
	case *ast.SliceExpr:
		return taintRoot(pass, v.X, tainted)
	case *ast.Ident:
		obj := pass.Info.Uses[v]
		return obj != nil && tainted[obj]
	case *ast.CallExpr:
		if isRegionData(pass, v) {
			return true
		}
		if id, ok := v.Fun.(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(v.Args) > 0 {
				return taintRoot(pass, v.Args[0], tainted)
			}
		}
	}
	return false
}

// isRegionData reports whether call is xmmap's Region.Data method.
func isRegionData(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Data" {
		return false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	named := derefNamed(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Region" {
		return false
	}
	return pathInScope(fn.Pkg().Path(), "internal/xmmap")
}

// pathInScope is Pass.InScope's matching over a bare import path.
func pathInScope(path, fragment string) bool {
	return path == fragment || strings.HasSuffix(path, "/"+fragment) || strings.Contains(path, "/"+fragment+"/")
}

// isPackageLevel reports whether obj is declared at package scope.
func isPackageLevel(obj types.Object) bool {
	return obj.Parent() != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
