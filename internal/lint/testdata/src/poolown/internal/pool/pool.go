// Package pool mirrors the module's pooling idioms: direct sync.Pool use,
// getter/releaser wrappers (chunkenc.GetSampleBuffer / PutSampleBuffer),
// a pooled iterator with a Release method (sstable.TableIterator), and an
// interface-dispatched release (chunkenc.ReleaseIterator).
package pool

import "sync"

type Buf struct {
	B []byte
}

var bufPool = sync.Pool{New: func() any { return new(Buf) }}

// GetBuf is a getter: it returns a pool.Get result.
func GetBuf() *Buf {
	b := bufPool.Get().(*Buf)
	b.B = b.B[:0]
	return b
}

// PutBuf releases its parameter back to the pool.
func PutBuf(b *Buf) {
	b.B = b.B[:0]
	bufPool.Put(b)
}

type Iter struct {
	buf  *Buf
	done bool
}

var iterPool = sync.Pool{New: func() any { return new(Iter) }}

// NewIter is a transitive getter and captures its buffer argument.
func NewIter(b *Buf) *Iter {
	it := iterPool.Get().(*Iter)
	it.buf = b
	return it
}

func (it *Iter) Next() bool { return !it.done }

// Release recycles the receiver.
func (it *Iter) Release() {
	it.buf = nil
	iterPool.Put(it)
}

// Releasable is the interface-dispatch release path.
type Releasable interface{ Release() }

// ReleaseAny releases through a type switch, like chunkenc.ReleaseIterator.
func ReleaseAny(v any) {
	if r, ok := v.(Releasable); ok {
		r.Release()
	}
}
