// Package head implements TimeUnion's in-memory layer (paper §3.1-3.2):
// the memory objects of individual timeseries and timeseries groups, the
// small (32-sample) in-flight compressed chunks stored in memory-mapped
// file arrays, the single global inverted index, and the per-series
// sequence IDs that drive the logging scheme.
//
// The head does not own the LSM-tree: finished chunks are handed to a
// ChunkSink (wired to lsm.Put by the database layer), which keeps the two
// halves independently testable.
//
// # Concurrency
//
// The head is safe for concurrent use and designed so fast-path appends
// from many goroutines do not serialize on one lock:
//
//   - The series/group maps are sharded into numStripes lock stripes by id
//     hash; an AppendFast only takes its stripe's read lock to resolve the
//     id, then the series' own append mutex.
//   - Every MemSeries and MemGroup carries its own mutex guarding its
//     sequence number, open chunk, and latest timestamp, so appends to
//     different objects proceed in parallel.
//   - Name→id resolution and id allocation (series/group creation — the
//     slow path) go through a single catalog lock; the inverted index has
//     its own internal mutex and is only touched on that slow path and
//     during purges.
//
// Lock ordering is catalog → stripe → object; the WAL, the mmap slot
// arrays, and the chunk sink are internally synchronized.
package head

import (
	"fmt"
	"sync"
	"sync/atomic"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/index"
	"timeunion/internal/labels"
	"timeunion/internal/obs"
	"timeunion/internal/tuple"
	"timeunion/internal/wal"
	"timeunion/internal/xmmap"
)

// ChunkSink receives a finished chunk for persistence.
type ChunkSink func(key encoding.Key, value []byte) error

// Options configures the head.
type Options struct {
	// ChunkSamples is the number of samples batched per in-memory chunk
	// before flushing to the LSM (paper: 32; adjustable for the
	// compression-vs-memory trade-off, §3.2).
	ChunkSamples int
	// Dir holds the mmap region files for the index trie and chunk
	// arrays; empty means heap-backed.
	Dir string
	// SlotSize is the fixed chunk slot size in the mmap arrays.
	SlotSize int
	// SlotsPerRegion is the slots per mmap region file.
	SlotsPerRegion int
	// WAL, if non-nil, receives definition/sample/flush-mark records.
	WAL *wal.WAL
	// Sink receives finished chunks. Required.
	Sink ChunkSink
	// Metrics, when non-nil, receives the head's instruments
	// (timeunion_head_*).
	Metrics *obs.Registry
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.ChunkSamples <= 0 {
		opts.ChunkSamples = chunkenc.DefaultChunkSamples
	}
	if opts.SlotSize <= 0 {
		opts.SlotSize = 1024
	}
	if opts.SlotsPerRegion <= 0 {
		opts.SlotsPerRegion = 4096
	}
	return opts
}

// MemSeries is the memory object of one individual timeseries: its tags,
// per-series sequence ID, and the current in-flight chunk.
type MemSeries struct {
	ID     uint64
	Labels labels.Labels

	// mu guards everything below; appends to different series only
	// contend on their stripe's read lock.
	mu    sync.Mutex
	seq   uint64
	lastT int64
	haveT bool

	chunk   *chunkenc.XORChunk
	slotRef xmmap.Ref
}

// numStripes is the number of lock stripes sharding the series/group maps
// (power of two so the stripe index is a shift).
const (
	numStripes  = 32
	stripeShift = 5 // log2(numStripes)
)

// stripe is one shard of the series/group maps with its own lock.
type stripe struct {
	mu     sync.RWMutex
	series map[uint64]*MemSeries
	groups map[uint64]*MemGroup
}

// catalog is the slow-path name→id state: tag-key lookup tables and the id
// allocators. Fast-path appends never touch it.
type catalog struct {
	mu         sync.RWMutex
	byKey      map[string]uint64
	groupByKey map[string]uint64
	nextSeries uint64
	nextGroup  uint64
}

// Head is the in-memory layer. Safe for concurrent use.
type Head struct {
	opts Options

	idx *index.Index
	cat catalog

	stripes [numStripes]stripe

	chunkSlots     *xmmap.SlotArray // individual series chunks (Figure 9 left)
	groupTimeSlots *xmmap.SlotArray // group shared timestamp chunks
	groupValSlots  *xmmap.SlotArray // group member value chunks

	// recoverDropped counts WAL records skipped during recovery because
	// their series/group definition did not survive the crash (the write
	// was never acknowledged, so dropping it is correct).
	recoverDropped atomic.Uint64

	// Instruments (nil without a registry; nil is a no-op).
	mSeriesFlushed *obs.Counter
	mGroupFlushed  *obs.Counter
	mEarlyFlushed  *obs.Counter
	mOOORewrites   *obs.Counter
}

// RecoveryDropped returns how many unacknowledged orphan WAL records the
// last Recover skipped.
func (h *Head) RecoveryDropped() uint64 { return h.recoverDropped.Load() }

// stripeFor hashes an id onto its stripe. Fibonacci hashing spreads both
// sequential series ids and flag-bearing group ids.
func (h *Head) stripeFor(id uint64) *stripe {
	return &h.stripes[(id*0x9E3779B97F4A7C15)>>(64-stripeShift)]
}

// New creates an empty head.
func New(opts Options) (*Head, error) {
	o := opts.withDefaults()
	if o.Sink == nil {
		return nil, fmt.Errorf("head: Sink is required")
	}
	idx, err := index.New(index.Options{Dir: subdir(o.Dir, "index"), SlotsPerRegion: o.SlotsPerRegion})
	if err != nil {
		return nil, err
	}
	h := &Head{opts: o, idx: idx}
	h.cat.byKey = make(map[string]uint64)
	h.cat.groupByKey = make(map[string]uint64)
	for i := range h.stripes {
		h.stripes[i].series = make(map[uint64]*MemSeries)
		h.stripes[i].groups = make(map[uint64]*MemGroup)
	}
	arrays := []struct {
		name string
		dst  **xmmap.SlotArray
	}{
		{"chunks", &h.chunkSlots},
		{"group-times", &h.groupTimeSlots},
		{"group-values", &h.groupValSlots},
	}
	for _, a := range arrays {
		sa, err := xmmap.OpenSlotArray(subdir(o.Dir, a.name), a.name, o.SlotSize, o.SlotsPerRegion)
		if err != nil {
			h.Close()
			return nil, err
		}
		// Slots persisted by a previous process are orphans: open chunks
		// are rebuilt from the WAL, which allocates fresh slots.
		sa.Reset()
		*a.dst = sa
	}
	if reg := o.Metrics; reg != nil {
		h.mSeriesFlushed = reg.Counter("timeunion_head_chunks_flushed_total", `kind="series"`, "Full chunks handed to the sink.")
		h.mGroupFlushed = reg.Counter("timeunion_head_chunks_flushed_total", `kind="group"`, "Full chunks handed to the sink.")
		h.mEarlyFlushed = reg.Counter("timeunion_head_early_flushes_total", "", "Out-of-order samples early-flushed past the open chunk straight into the tree.")
		h.mOOORewrites = reg.Counter("timeunion_head_ooo_rewrites_total", "", "Open-chunk rewrites absorbing an out-of-order sample.")
		reg.GaugeFunc("timeunion_head_series", "", "Live individual series.",
			func() float64 { return float64(h.NumSeries()) })
		reg.GaugeFunc("timeunion_head_groups", "", "Live groups.",
			func() float64 { return float64(h.NumGroups()) })
		reg.GaugeFunc("timeunion_head_memory_bytes", "", "Accounted in-memory footprint of the head.",
			func() float64 { return float64(h.Footprint().Total()) })
		reg.CounterFunc("timeunion_head_recovery_dropped_total", "", "Orphan WAL records skipped by the last recovery.",
			func() float64 { return float64(h.RecoveryDropped()) })
	}
	return h, nil
}

func subdir(dir, name string) string {
	if dir == "" {
		return ""
	}
	return dir + "/" + name
}

// Close releases the index and chunk arrays.
func (h *Head) Close() error {
	var firstErr error
	if h.idx != nil {
		if err := h.idx.Close(); err != nil {
			firstErr = err
		}
	}
	for _, sa := range []*xmmap.SlotArray{h.chunkSlots, h.groupTimeSlots, h.groupValSlots} {
		if sa != nil {
			if err := sa.Close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// Index exposes the global inverted index for query planning.
func (h *Head) Index() *index.Index { return h.idx }

// allocChunkBuf allocates a slot and returns a zero-length byte slice whose
// capacity is the slot, so the Gorilla bit writer appends straight into the
// memory-mapped area. If the slot array fails, a heap buffer keeps the
// write path alive (accounting degrades, correctness does not).
func allocChunkBuf(sa *xmmap.SlotArray) (xmmap.Ref, []byte) {
	ref, buf, err := sa.Alloc()
	if err != nil {
		return xmmap.NilRef, make([]byte, 0, sa.SlotSize())
	}
	return ref, buf[:0]
}

func freeChunkBuf(sa *xmmap.SlotArray, ref xmmap.Ref) {
	if ref != xmmap.NilRef {
		// A double free cannot happen (refs are single-owner); an error
		// here means accounting drift at worst.
		_ = sa.Free(ref)
	}
}

// Append inserts one sample for the timeseries identified by its full tag
// set (the slow-path API of §3.4), creating the series on first sight. It
// returns the series ID for subsequent fast-path appends.
func (h *Head) Append(ls labels.Labels, t int64, v float64) (uint64, error) {
	s, err := h.getOrCreateSeries(ls)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ID, h.appendLocked(s, t, v)
}

// AppendFast inserts one sample by series ID (the fast-path API of §3.4,
// saving the tag comparison cost).
func (h *Head) AppendFast(id uint64, t int64, v float64) error {
	s, ok := h.lookupSeries(id)
	if !ok {
		return fmt.Errorf("head: unknown series id %d", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return h.appendLocked(s, t, v)
}

// lookupSeries resolves a series id through its stripe.
func (h *Head) lookupSeries(id uint64) (*MemSeries, bool) {
	st := h.stripeFor(id)
	st.mu.RLock()
	s, ok := st.series[id]
	st.mu.RUnlock()
	return s, ok
}

// getOrCreateSeries finds or registers a series by tags. Lookup of known
// series only takes the catalog read lock; creation takes the write lock.
func (h *Head) getOrCreateSeries(ls labels.Labels) (*MemSeries, error) {
	key := ls.Key()
	h.cat.mu.RLock()
	id, ok := h.cat.byKey[key]
	h.cat.mu.RUnlock()
	if ok {
		if s, ok := h.lookupSeries(id); ok {
			return s, nil
		}
		// Purged between the catalog read and the stripe read; fall
		// through to the consistent slow path.
	}
	h.cat.mu.Lock()
	defer h.cat.mu.Unlock()
	if id, ok := h.cat.byKey[key]; ok {
		// Catalog and stripes mutate together under the catalog write
		// lock, so this lookup cannot miss.
		s, _ := h.lookupSeries(id)
		return s, nil
	}
	h.cat.nextSeries++
	id = h.cat.nextSeries
	s := &MemSeries{ID: id, Labels: ls.Copy()}
	if err := h.idx.Add(id, s.Labels); err != nil {
		return nil, err
	}
	if h.opts.WAL != nil {
		if err := h.opts.WAL.LogSeries(id, s.Labels); err != nil {
			return nil, err
		}
	}
	st := h.stripeFor(id)
	st.mu.Lock()
	st.series[id] = s
	st.mu.Unlock()
	h.cat.byKey[key] = id
	return s, nil
}

// appendLocked is the individual-series write path (§3.1 physical view).
// The caller holds s.mu.
func (h *Head) appendLocked(s *MemSeries, t int64, v float64) error {
	s.seq++
	if h.opts.WAL != nil {
		if err := h.opts.WAL.LogSample(s.ID, s.seq, t, v); err != nil {
			return err
		}
	}
	return h.ingestLocked(s, t, v)
}

// ingestLocked applies a sample without logging (also used by recovery).
// The caller holds s.mu; the slot arrays and sink are internally
// synchronized.
func (h *Head) ingestLocked(s *MemSeries, t int64, v float64) error {
	switch {
	case s.chunk == nil || s.chunk.NumSamples() == 0:
		if s.chunk == nil {
			ref, buf := allocChunkBuf(h.chunkSlots)
			s.slotRef = ref
			s.chunk = chunkenc.NewXORChunkInto(buf)
		}
		if err := s.chunk.Append(t, v); err != nil {
			return err
		}
	case t > s.chunk.MaxTime():
		if err := s.chunk.Append(t, v); err != nil {
			return err
		}
	case t >= s.chunk.MinTime():
		// Out-of-order within the open chunk (§3.1 case 4): locate the
		// slot and replace or insert by rewriting the small chunk.
		samples, err := chunkenc.DecodeXORSamples(s.chunk.Bytes())
		if err != nil {
			return err
		}
		merged := chunkenc.MergeSamples(samples, []chunkenc.Sample{{T: t, V: v}})
		h.mOOORewrites.Inc()
		h.resetSeriesChunkLocked(s)
		ref, buf := allocChunkBuf(h.chunkSlots)
		s.slotRef = ref
		s.chunk = chunkenc.NewXORChunkInto(buf)
		for _, sm := range merged {
			if err := s.chunk.Append(sm.T, sm.V); err != nil {
				return err
			}
		}
	default:
		// Older than the open chunk: early-flush a single-sample chunk
		// straight into the time-partitioned tree, which routes it to the
		// matching (possibly stale) time partition.
		enc, err := chunkenc.EncodeXORSamples([]chunkenc.Sample{{T: t, V: v}})
		if err != nil {
			return err
		}
		h.mEarlyFlushed.Inc()
		return h.opts.Sink(encoding.MakeKey(s.ID, t), tuple.Encode(s.seq, tuple.KindSeries, t, t, enc))
	}
	if !s.haveT || t > s.lastT {
		s.lastT = t
		s.haveT = true
	}
	if s.chunk.NumSamples() >= h.opts.ChunkSamples {
		return h.flushSeriesChunkLocked(s)
	}
	return nil
}

// flushSeriesChunkLocked serializes the full chunk, hands it to the sink,
// and cleans the mmap slot (§3.2: "when the current chunk is full, it will
// be serialized ... and the corresponding area of the mmap file will be
// cleaned"). The caller holds s.mu.
func (h *Head) flushSeriesChunkLocked(s *MemSeries) error {
	payload := append([]byte(nil), s.chunk.Bytes()...)
	key := encoding.MakeKey(s.ID, s.chunk.MinTime())
	if err := h.opts.Sink(key, tuple.Encode(s.seq, tuple.KindSeries, s.chunk.MinTime(), s.chunk.MaxTime(), payload)); err != nil {
		return err
	}
	h.mSeriesFlushed.Inc()
	h.resetSeriesChunkLocked(s)
	return nil
}

func (h *Head) resetSeriesChunkLocked(s *MemSeries) {
	freeChunkBuf(h.chunkSlots, s.slotRef)
	s.slotRef = xmmap.NilRef
	s.chunk = nil
}

// FlushOpenChunks force-flushes every non-empty open chunk (shutdown path;
// during normal operation chunks flush when full).
func (h *Head) FlushOpenChunks() error {
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		series := make([]*MemSeries, 0, len(st.series))
		for _, s := range st.series {
			series = append(series, s)
		}
		groups := make([]*MemGroup, 0, len(st.groups))
		for _, g := range st.groups {
			groups = append(groups, g)
		}
		st.mu.RUnlock()
		for _, s := range series {
			s.mu.Lock()
			var err error
			if s.chunk != nil && s.chunk.NumSamples() > 0 {
				err = h.flushSeriesChunkLocked(s)
			}
			s.mu.Unlock()
			if err != nil {
				return err
			}
		}
		for _, g := range groups {
			g.mu.Lock()
			var err error
			if g.cur != nil && g.cur.numTimes > 0 {
				err = h.flushGroupChunkLocked(g)
			}
			g.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// OnChunkPersisted is the LSM flush hook: it writes the WAL flush mark for
// the chunk's embedded sequence (paper §3.3 "Logging").
func (h *Head) OnChunkPersisted(key encoding.Key, seq uint64) {
	if h.opts.WAL == nil {
		return
	}
	// Best effort: a failed mark only delays purging.
	_ = h.opts.WAL.LogFlushMark(key.ID(), seq)
}

// SeriesLabels returns the tags of a series (immutable after creation).
func (h *Head) SeriesLabels(id uint64) (labels.Labels, bool) {
	s, ok := h.lookupSeries(id)
	if !ok {
		return nil, false
	}
	return s.Labels, true
}

// NumSeries returns the number of live individual series.
func (h *Head) NumSeries() int {
	n := 0
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		n += len(st.series)
		st.mu.RUnlock()
	}
	return n
}

// NumGroups returns the number of live groups.
func (h *Head) NumGroups() int {
	n := 0
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		n += len(st.groups)
		st.mu.RUnlock()
	}
	return n
}

// HeadSamples returns the open-chunk samples of a series overlapping
// [mint, maxt]. The LSM holds everything else.
func (h *Head) HeadSamples(id uint64, mint, maxt int64) ([]chunkenc.Sample, error) {
	s, ok := h.lookupSeries(id)
	if !ok {
		return nil, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.chunk == nil || s.chunk.NumSamples() == 0 {
		return nil, nil
	}
	all, err := chunkenc.DecodeXORSamples(s.chunk.Bytes())
	if err != nil {
		return nil, err
	}
	var out []chunkenc.Sample
	for _, sm := range all {
		if sm.T >= mint && sm.T <= maxt {
			out = append(out, sm)
		}
	}
	return out, nil
}

// HeadIterator streams the open chunk's samples in [mint, maxt] for the
// streaming read path. The chunk is batch-decoded under the series lock
// into a pooled sample buffer owned by the returned iterator — the
// compressed bytes (which may live in a memory-mapped slot) never escape
// the lock, and draining the iterator touches no shared state. Returns nil
// when the series is missing or its open chunk has no samples in range, so
// callers can skip the merge source entirely. Release the iterator
// (chunkenc.ReleaseIterator) to recycle the buffer.
func (h *Head) HeadIterator(id uint64, mint, maxt int64) chunkenc.SampleIterator {
	s, ok := h.lookupSeries(id)
	if !ok {
		return nil
	}
	s.mu.Lock()
	if s.chunk == nil || s.chunk.NumSamples() == 0 {
		s.mu.Unlock()
		return nil
	}
	if s.chunk.MaxTime() < mint || s.chunk.MinTime() > maxt {
		s.mu.Unlock()
		return nil
	}
	buf := chunkenc.GetSampleBuffer()
	var err error
	buf.T, buf.V, err = chunkenc.AppendXORSamples(buf.T, buf.V, s.chunk.Bytes())
	s.mu.Unlock()
	if err != nil {
		chunkenc.PutSampleBuffer(buf)
		return chunkenc.ErrIterator(err)
	}
	return chunkenc.GetBufferIterator(buf, mint, maxt)
}

// HeadSeq returns the series' current sequence ID (used by tests and the
// database layer's flush bookkeeping).
func (h *Head) HeadSeq(id uint64) uint64 {
	if s, ok := h.lookupSeries(id); ok {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.seq
	}
	if g, ok := h.lookupGroup(id); ok {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.seq
	}
	return 0
}

// PurgeBefore removes memory objects whose newest sample is older than the
// retention watermark (§3.3 "Data retention": "we record the timestamp of
// the latest data sample for each timeseries in its memory object, and we
// will purge those objects that are older than the retention timestamp").
func (h *Head) PurgeBefore(watermark int64) int {
	// Catalog → stripe → object, the global lock order: holding the
	// catalog write lock keeps byKey and the stripes mutating together.
	h.cat.mu.Lock()
	defer h.cat.mu.Unlock()
	purged := 0
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.Lock()
		for id, s := range st.series {
			s.mu.Lock()
			if s.haveT && s.lastT < watermark {
				h.idx.Remove(id, s.Labels)
				h.resetSeriesChunkLocked(s)
				delete(st.series, id)
				delete(h.cat.byKey, s.Labels.Key())
				purged++
			}
			s.mu.Unlock()
		}
		for gid, g := range st.groups {
			g.mu.Lock()
			if g.haveT && g.lastT < watermark {
				h.removeGroupLocked(st, gid, g)
				purged++
			}
			g.mu.Unlock()
		}
		st.mu.Unlock()
	}
	return purged
}

// MemoryFootprint is the accounted in-memory size of the head, the
// quantity the Figure 3/16 and Table 3 experiments compare across engines.
type MemoryFootprint struct {
	IndexBytes     int64 // trie (mmap) + postings
	TagBytes       int64 // tag strings of all memory objects
	ChunkSlotBytes int64 // touched bytes of the mmap chunk arrays
	ObjectBytes    int64 // fixed per-object overhead estimate
}

// Total sums all components.
func (m MemoryFootprint) Total() int64 {
	return m.IndexBytes + m.TagBytes + m.ChunkSlotBytes + m.ObjectBytes
}

// Footprint returns the current accounting.
func (h *Head) Footprint() MemoryFootprint {
	var f MemoryFootprint
	st := h.idx.Stats()
	f.IndexBytes = st.SizeBytes()
	for i := range h.stripes {
		sp := &h.stripes[i]
		sp.mu.RLock()
		for _, s := range sp.series {
			f.TagBytes += int64(s.Labels.SizeBytes())
			f.ObjectBytes += 96
		}
		for _, g := range sp.groups {
			g.mu.Lock()
			f.TagBytes += int64(g.GroupTags.SizeBytes())
			for _, m := range g.members {
				f.TagBytes += int64(m.unique.SizeBytes())
				f.ObjectBytes += 48
			}
			g.mu.Unlock()
			f.ObjectBytes += 128
		}
		sp.mu.RUnlock()
	}
	f.ChunkSlotBytes = h.chunkSlots.UsedBytes() + h.groupTimeSlots.UsedBytes() + h.groupValSlots.UsedBytes()
	return f
}
