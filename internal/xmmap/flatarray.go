package xmmap

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// FlatArray is a dynamically expandable flat array of fixed-size elements
// spread over memory-mapped regions. It backs the double-array trie's Base,
// Check, and Tail arrays (paper §3.2: "each mmap file can handle one million
// slots; when more slots are needed we create new mmap files and append
// them"). Growth appends regions; existing elements never move.
//
// FlatArray is not durable storage: reopening starts empty (the inverted
// index is rebuilt from the write-ahead log on recovery). The mmap backing
// exists so the OS can swap cold index pages under memory pressure.
type FlatArray struct {
	dir            string
	name           string
	elemSize       int
	elemsPerRegion int
	regions        []*Region
	length         int
}

// OpenFlatArray creates a flat array with the given element geometry. With
// an empty dir, regions are anonymous heap buffers.
func OpenFlatArray(dir, name string, elemSize, elemsPerRegion int) (*FlatArray, error) {
	if elemSize <= 0 || elemsPerRegion <= 0 {
		return nil, fmt.Errorf("xmmap: invalid flat array geometry %d/%d", elemSize, elemsPerRegion)
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("xmmap: create flat array dir: %w", err)
		}
	}
	return &FlatArray{dir: dir, name: name, elemSize: elemSize, elemsPerRegion: elemsPerRegion}, nil
}

// Len returns the current element count.
func (a *FlatArray) Len() int { return a.length }

// Grow extends the array to at least n elements, zero-filling new space.
func (a *FlatArray) Grow(n int) error {
	for n > len(a.regions)*a.elemsPerRegion {
		path := ""
		if a.dir != "" {
			path = filepath.Join(a.dir, fmt.Sprintf("%s-%06d.mmap", a.name, len(a.regions)))
			// Remove any stale file from a previous run; FlatArray is not durable.
			os.Remove(path)
		}
		r, err := OpenRegion(path, a.elemSize*a.elemsPerRegion)
		if err != nil {
			return err
		}
		a.regions = append(a.regions, r)
	}
	if n > a.length {
		a.length = n
	}
	return nil
}

// elem returns the byte view of element i. The caller must ensure i < Len.
func (a *FlatArray) elem(i int) []byte {
	r := a.regions[i/a.elemsPerRegion]
	off := (i % a.elemsPerRegion) * a.elemSize
	return r.Data()[off : off+a.elemSize]
}

// SizeBytes returns the total mapped size.
func (a *FlatArray) SizeBytes() int64 {
	return int64(len(a.regions)) * int64(a.elemSize) * int64(a.elemsPerRegion)
}

// UsedBytes returns the touched footprint: elements up to the high-water
// length.
func (a *FlatArray) UsedBytes() int64 {
	return int64(a.length) * int64(a.elemSize)
}

// Close unmaps all regions.
func (a *FlatArray) Close() error {
	var firstErr error
	for _, r := range a.regions {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	a.regions = nil
	a.length = 0
	return firstErr
}

// Int32Array is a FlatArray of int32 elements.
type Int32Array struct {
	a *FlatArray
}

// OpenInt32Array creates an int32 flat array.
func OpenInt32Array(dir, name string, elemsPerRegion int) (*Int32Array, error) {
	a, err := OpenFlatArray(dir, name, 4, elemsPerRegion)
	if err != nil {
		return nil, err
	}
	return &Int32Array{a: a}, nil
}

// Len returns the element count.
func (x *Int32Array) Len() int { return x.a.Len() }

// Grow extends to at least n elements (new elements are zero).
func (x *Int32Array) Grow(n int) error { return x.a.Grow(n) }

// Get returns element i.
func (x *Int32Array) Get(i int) int32 {
	return int32(binary.LittleEndian.Uint32(x.a.elem(i)))
}

// Set stores v at element i.
func (x *Int32Array) Set(i int, v int32) {
	binary.LittleEndian.PutUint32(x.a.elem(i), uint32(v))
}

// SizeBytes returns the mapped size.
func (x *Int32Array) SizeBytes() int64 { return x.a.SizeBytes() }

// UsedBytes returns the touched footprint.
func (x *Int32Array) UsedBytes() int64 { return x.a.UsedBytes() }

// Close unmaps the array.
func (x *Int32Array) Close() error { return x.a.Close() }

// ByteArray is a FlatArray of single bytes (the trie tail).
type ByteArray struct {
	a *FlatArray
}

// OpenByteArray creates a byte flat array.
func OpenByteArray(dir, name string, elemsPerRegion int) (*ByteArray, error) {
	a, err := OpenFlatArray(dir, name, 1, elemsPerRegion)
	if err != nil {
		return nil, err
	}
	return &ByteArray{a: a}, nil
}

// Len returns the element count.
func (x *ByteArray) Len() int { return x.a.Len() }

// Grow extends to at least n elements.
func (x *ByteArray) Grow(n int) error { return x.a.Grow(n) }

// Get returns element i.
func (x *ByteArray) Get(i int) byte { return x.a.elem(i)[0] }

// Set stores v at element i.
func (x *ByteArray) Set(i int, v byte) { x.a.elem(i)[0] = v }

// SizeBytes returns the mapped size.
func (x *ByteArray) SizeBytes() int64 { return x.a.SizeBytes() }

// UsedBytes returns the touched footprint.
func (x *ByteArray) UsedBytes() int64 { return x.a.UsedBytes() }

// Close unmaps the array.
func (x *ByteArray) Close() error { return x.a.Close() }
