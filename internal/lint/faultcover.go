package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FaultCover enforces fault-injection coverage of the cloud I/O surface
// (DESIGN.md §4.9): every cloud.Store method call site in internal/lsm and
// internal/wal must sit in a function reachable from the package API
// (exported functions and methods, init, main). The crash-torture harness
// drives those packages exclusively through their exported surface with
// FaultStore schedules armed underneath; a store call in dead or
// internal-only code is cloud I/O no schedule can ever exercise — exactly
// where an untested partial-failure path hides.
//
// Reachability runs over the shared call graph (DESIGN.md §4.14),
// restricted to the same-package reference closure the analyzer has always
// used: call edges and bare references both count (a callback registration
// is an edge), function-literal bodies belong to their enclosing
// declaration, and dispatch expansion is excluded so coverage is exactly
// what the package's own source names.
var FaultCover = &Analyzer{
	Name:      "faultcover",
	Doc:       "cloud.Store call sites must be reachable from the package API so FaultStore schedules can exercise them",
	RunModule: runFaultCover,
}

func runFaultCover(pass *ModulePass) {
	for _, pkg := range pass.Pkgs {
		if pathInScope(pkg.Path, "internal/lsm") || pathInScope(pkg.Path, "internal/wal") {
			faultCoverPackage(pass, pkg)
		}
	}
}

func faultCoverPackage(pass *ModulePass, pkg *Package) {
	type callSite struct {
		pos    token.Pos
		method string
	}
	storeCalls := map[*Node][]callSite{}
	var declared []*Node

	for _, n := range pass.Graph.Nodes() {
		if n.Pkg != pkg {
			continue
		}
		declared = append(declared, n)
		if n.Decl.Body == nil {
			continue
		}
		owner := n
		ast.Inspect(n.Decl.Body, func(nd ast.Node) bool {
			if call, ok := nd.(*ast.CallExpr); ok {
				if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isStoreMethod(pkg.Info, sel) {
					storeCalls[owner] = append(storeCalls[owner], callSite{pos: call.Pos(), method: sel.Sel.Name})
				}
			}
			return true
		})
	}

	reachable := map[*Node]bool{}
	var queue []*Node
	for _, n := range declared {
		name := n.Fn.Name()
		if ast.IsExported(name) || name == "init" || name == "main" {
			reachable[n] = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			// Same-package closure only, and no dispatch expansion: the
			// legacy analyzer counted exactly the functions the package's
			// own source mentions by name.
			if e.Kind == EdgeDynamic || e.Callee.Fn.Pkg() != pkg.Types {
				continue
			}
			if !reachable[e.Callee] {
				reachable[e.Callee] = true
				queue = append(queue, e.Callee)
			}
		}
	}

	for _, n := range declared {
		if reachable[n] {
			continue
		}
		for _, site := range storeCalls[n] {
			pass.Reportf(site.pos, "cloud.Store.%s call in %s is unreachable from the package API; no FaultStore schedule can exercise this I/O path", site.method, n.Fn.Name())
		}
	}
}

// isStoreMethod reports whether sel resolves to a method of the cloud.Store
// interface (an interface-dispatched store operation).
func isStoreMethod(info *types.Info, sel *ast.SelectorExpr) bool {
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	named := derefNamed(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Store" {
		return false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return false
	}
	return pathInScope(named.Obj().Pkg().Path(), "internal/cloud")
}
