package bench

import "testing"

// TestFig13Shapes validates the end-to-end ordering of Figure 13: Cortex <
// TU (slow path) < TU-fast < TU-Group on insertion, and Cortex's memory
// above TU's.
func TestFig13Shapes(t *testing.T) {
	r, err := Fig13(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("insert: TU=%.0f TU-fast=%.0f TU-Group=%.0f Cortex=%.0f",
		r.Values["insert:TU"], r.Values["insert:TU-fast"],
		r.Values["insert:TU-Group"], r.Values["insert:Cortex"])
	if r.Values["insert:TU-fast"] <= r.Values["insert:TU"] {
		t.Fatal("TU-fast not above TU (paper: 6.6x)")
	}
	if r.Values["insert:TU-Group"] <= r.Values["insert:TU-fast"] {
		t.Fatal("TU-Group not above TU-fast (paper: 2.9x)")
	}
	if r.Values["insert:TU"] <= r.Values["insert:Cortex"] {
		t.Fatal("TU not above Cortex (paper: +26.6%)")
	}
	if r.Values["mem:Cortex"] <= r.Values["mem:TU"] {
		t.Fatal("Cortex memory not above TU (paper: +96.8%)")
	}
	// Long-range query: Cortex pays whole-index loads from the object
	// store (paper: 30.4x slower than TU).
	if r.Values["q:5-1-24:Cortex"] <= r.Values["q:5-1-24:TU"] {
		t.Fatalf("Cortex 5-1-24 (%.4fs) not above TU (%.4fs)",
			r.Values["q:5-1-24:Cortex"], r.Values["q:5-1-24:TU"])
	}
}
