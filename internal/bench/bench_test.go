package bench

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps experiment runtime in test-suite territory.
func tinyConfig() Config {
	return Config{
		HourMs:            6_000, // 1 logical hour = 6s of sample time
		Hosts:             2,
		SpanHours:         24,
		Seed:              2022,
		QueriesPerPattern: 1,
	}
}

func TestFig1Shapes(t *testing.T) {
	r, err := Fig1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ratio := r.Values["price:ebs/s3"]; ratio < 3 || ratio > 5 {
		t.Fatalf("EBS/S3 price ratio = %.1f", ratio)
	}
	if r.Values["price:ram/ebs"] < 100 {
		t.Fatalf("RAM/EBS price ratio = %.0f", r.Values["price:ram/ebs"])
	}
	// Small writes: orders of magnitude gap; 32MB: single digits (paper: 3x).
	if r.Values["write:4096:ratio"] < 20 {
		t.Fatalf("4KB write S3/EBS ratio = %.1f", r.Values["write:4096:ratio"])
	}
	big := r.Values[keyFor("write", 32<<20)]
	if big < 1.5 || big > 10 {
		t.Fatalf("32MB write ratio = %.1f", big)
	}
	// Reads ~30x on small sizes.
	if r.Values["read:4096:ratio"] < 10 {
		t.Fatalf("4KB read ratio = %.1f", r.Values["read:4096:ratio"])
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "fig1") {
		t.Fatal("Print produced nothing")
	}
}

func keyFor(op string, size int) string {
	return op + ":" + itoa(size) + ":ratio"
}

func itoa(n int) string {
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestFig3Shapes(t *testing.T) {
	cfg := tinyConfig()
	r, err := Fig3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Index-only memory linear in N: mem(N) ≈ 2 * mem(N/2).
	baseN := cfg.withDefaults().Hosts * 1000
	mHalf := r.Values[memKey(baseN/2, "index-only")]
	mFull := r.Values[memKey(baseN, "index-only")]
	if mFull < mHalf*1.5 {
		t.Fatalf("index memory not linear: %.0f -> %.0f", mHalf, mFull)
	}
	// Samples add on top of the index.
	if r.Values[memKey(baseN, "2h@10s")] <= mFull {
		t.Fatal("samples did not increase memory")
	}
	// Denser samples cost more than sparser.
	if r.Values[memKey(baseN, "2h@10s")] <= r.Values[memKey(baseN, "2h@60s")] {
		t.Fatal("10s interval not above 60s interval")
	}
	// Breakdown: index is the largest component (paper: 51%).
	if r.Values["breakdown:index"] < r.Values["breakdown:samples"] {
		t.Fatal("index share below samples share")
	}
}

func memKey(n int, mode string) string {
	return "mem:" + itoa(n) + ":" + mode
}

func TestFig4Shapes(t *testing.T) {
	r, err := Fig4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Integration throughput within a modest factor of plain tsdb
	// (paper: only 1.6% lower; allow slack at tiny scale).
	if ratio := r.Values["tput:ratio"]; ratio < 0.3 {
		t.Fatalf("tsdb-LDB throughput ratio = %.2f", ratio)
	}
	// Write volumes of the same order (paper: LevelDB +2.4%; at tiny
	// scale block-merge vs LSM-compaction amplification differs more).
	if wr := r.Values["written:ratio"]; wr < 0.3 || wr > 6 {
		t.Fatalf("written ratio = %.2f", wr)
	}
	// Every compaction reads at least its victims; with overlaps, more
	// than one table on average.
	if r.Values["tables/compaction"] < 1 {
		t.Fatalf("tables/compaction = %.1f", r.Values["tables/compaction"])
	}
}

func TestFig14Shapes(t *testing.T) {
	r, err := Fig14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// All five engines inserted successfully.
	for _, e := range allEngines {
		if r.Values["insert:"+e] <= 0 {
			t.Fatalf("engine %s reported no throughput", e)
		}
	}
	// TU-Group inserts faster than TU (coarser index lookups + shared
	// timestamps; paper: 2.4x).
	if r.Values["insert:TU-Group"] <= r.Values["insert:TU"] {
		t.Fatalf("TU-Group (%.0f) not above TU (%.0f)",
			r.Values["insert:TU-Group"], r.Values["insert:TU"])
	}
	// Long-range queries: TU orders of magnitude ahead of tsdb (which
	// fetches whole block indexes from S3).
	if r.Values["q:5-1-24:tsdb"] <= r.Values["q:5-1-24:TU"] {
		t.Fatalf("tsdb 5-1-24 (%.4fs) not above TU (%.4fs)",
			r.Values["q:5-1-24:tsdb"], r.Values["q:5-1-24:TU"])
	}
	// TU memory below tsdb memory (paper: 2.6x lower).
	if r.Values["mem:TU"] >= r.Values["mem:tsdb"] {
		t.Fatalf("TU memory (%.0f) not below tsdb (%.0f)",
			r.Values["mem:TU"], r.Values["mem:tsdb"])
	}
	// TU-Group memory below TU (grouping shrinks the index).
	if r.Values["mem:TU-Group"] >= r.Values["mem:TU"] {
		t.Fatalf("TU-Group memory (%.0f) not below TU (%.0f)",
			r.Values["mem:TU-Group"], r.Values["mem:TU"])
	}
}

func TestFig17EBSOnly(t *testing.T) {
	r, err := Fig17(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range allEngines {
		if r.Values["insert:"+e] <= 0 {
			t.Fatalf("engine %s reported no throughput", e)
		}
	}
	// On EBS only, TU beats TU-Group on 5-1-24 (volume-bound, Eq 3 vs 5)
	// — allow equality slack at tiny scale but both must be finite.
	if r.Values["q:5-1-24:TU"] <= 0 || r.Values["q:5-1-24:TU-Group"] <= 0 {
		t.Fatal("missing EBS-only query latencies")
	}
}

func TestFig18bShapes(t *testing.T) {
	r, err := Fig18b(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["p0:patches"] != 0 {
		t.Fatalf("p0 created %v patches", r.Values["p0:patches"])
	}
	if r.Values["p20:patches"] <= 0 {
		t.Fatal("p20 created no patches")
	}
	if r.Values["p20:insert"] <= 0 {
		t.Fatal("no insert throughput at p20")
	}
}

func TestFig19Shapes(t *testing.T) {
	r, err := Fig19(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Values["shrinks"] == 0 {
		t.Fatal("dynamic control never shrank partitions")
	}
	// Sparse phase must end with a longer partition than the dense phase.
	if r.Values["r1:sparse-60s"] < r.Values["r1:dense-10s"] {
		t.Fatalf("sparse R1 (%.0f) below dense R1 (%.0f)",
			r.Values["r1:sparse-60s"], r.Values["r1:dense-10s"])
	}
	// Usage stays within an order of magnitude of the budget.
	if r.Values["usage:dense-10s-again"] > r.Values["limit"]*16 {
		t.Fatalf("fast usage %.0f far above limit %.0f",
			r.Values["usage:dense-10s-again"], r.Values["limit"])
	}
}

func TestTable3Shapes(t *testing.T) {
	r, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Index: tsdb > TU > TU-Group (paper: 3.27 > 2.70 > 2.20 GB).
	if !(r.Values["index:tsdb"] > r.Values["index:TU"]) {
		t.Fatalf("index sizes: tsdb %.0f vs TU %.0f", r.Values["index:tsdb"], r.Values["index:TU"])
	}
	if !(r.Values["index:TU"] > r.Values["index:TU-Group"]) {
		t.Fatalf("index sizes: TU %.0f vs TU-Group %.0f", r.Values["index:TU"], r.Values["index:TU-Group"])
	}
	// Data: TU-Group smallest (timestamp dedup; paper 2.42 vs 8.61 GB).
	if !(r.Values["data:TU-Group"] < r.Values["data:TU"]) {
		t.Fatalf("data sizes: TU-Group %.0f vs TU %.0f", r.Values["data:TU-Group"], r.Values["data:TU"])
	}
	// TU vs tsdb store the same Gorilla chunks; TU adds keys/filters but
	// compresses blocks. Assert same order of magnitude (the paper's 2.35x
	// gap needs tsdb's degraded 2M-series compaction; see EXPERIMENTS.md).
	ratio := r.Values["data:TU"] / r.Values["data:tsdb"]
	if ratio > 1.5 || ratio < 0.2 {
		t.Fatalf("data TU/tsdb ratio = %.2f", ratio)
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("fig14"); err != nil {
		t.Fatal(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("phantom experiment found")
	}
	// Every DESIGN.md experiment is registered.
	for _, id := range []string{"fig1", "fig3", "fig4", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18a", "fig18b", "fig19", "tab3"} {
		if _, err := Lookup(id); err != nil {
			t.Fatalf("missing experiment %s", id)
		}
	}
}

func TestAblationChunkSize(t *testing.T) {
	r, err := AblChunkSize(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Larger chunks store fewer bytes per sample (better compression).
	if r.Values["c128:bytes/sample"] >= r.Values["c8:bytes/sample"] {
		t.Fatalf("chunk=128 (%.2f B/sample) not below chunk=8 (%.2f)",
			r.Values["c128:bytes/sample"], r.Values["c8:bytes/sample"])
	}
}

func TestAblationOneLevel(t *testing.T) {
	r, err := AblOneLevelSlow(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// In-order load: TU never reads the slow tier during compaction
	// (Equation 9); the classic leveled LSM does once levels deepen.
	if r.Values["TU:slowread"] != 0 {
		t.Fatalf("TU read %.0f bytes from the slow tier", r.Values["TU:slowread"])
	}
	if r.Values["TU-LDB:slowputs"] <= 0 {
		t.Fatal("TU-LDB wrote nothing to the slow tier")
	}
}

func TestAblationPatchThreshold(t *testing.T) {
	r, err := AblPatchThreshold(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// An eager threshold merges at least as often as a lazy one.
	if r.Values["t1:merges"] < r.Values["t8:merges"] {
		t.Fatalf("threshold 1 merged %v times < threshold 8's %v",
			r.Values["t1:merges"], r.Values["t8:merges"])
	}
}
