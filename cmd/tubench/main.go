// Command tubench runs the paper-reproduction experiments: one per figure
// or table of the TimeUnion evaluation (§4).
//
// Usage:
//
//	tubench -list
//	tubench -exp fig14 [-hosts 16] [-hours 24] [-hourms 60000] [-queries 3]
//	tubench -exp fig14 -json out/        # also write out/BENCH_fig14.json
//	tubench -exp fig14 -metrics          # print engine metric snapshots
//	tubench -all
//
// Every experiment prints the rows the paper reports, at the configured
// scale, plus a note quoting the paper's measured shape for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"timeunion/internal/bench"
)

func main() {
	var (
		exp             = flag.String("exp", "", "experiment ID (fig1, fig3, fig4, fig13, fig14, fig15, fig16, fig17, fig18a, fig18b, fig19, tab3)")
		all             = flag.Bool("all", false, "run every experiment")
		list            = flag.Bool("list", false, "list experiments")
		hosts           = flag.Int("hosts", 8, "number of TSBS DevOps hosts (101 series each)")
		hours           = flag.Int("hours", 24, "logical hours of data")
		hourMs          = flag.Int64("hourms", 60_000, "length of one logical hour in sample-time ms")
		queries         = flag.Int("queries", 3, "query repetitions per pattern")
		seed            = flag.Int64("seed", 2022, "workload seed")
		parallel        = flag.Int("parallel", 0, "query worker pool size for the TimeUnion engines (0 = GOMAXPROCS, 1 = serial)")
		parallelCompact = flag.Int("parallel-compact", 0, "LSM compaction executor pool size (0 = engine default; the compact experiment compares 1 vs this, defaulting to 4)")
		faults          = flag.Float64("faults", 0, "per-op fault-injection probability for the cloud stores (0 = off)")
		faultSeed       = flag.Int64("faultseed", 0, "fault-injection seed (0 = derive from -seed)")
		jsonDir         = flag.String("json", "", "also write each report as <dir>/BENCH_<ID>.json")
		metrics         = flag.Bool("metrics", false, "print each engine's metric snapshot after the report table")
		sloDur          = flag.Duration("slodur", 0, "slo: sustained-load duration (0 = experiment default)")
		sloRate         = flag.Int("slorate", 0, "slo: write rounds per second (0 = default)")
		sloQPS          = flag.Int("sloqps", 0, "slo: queries per second (0 = default)")
		sloWrite99      = flag.Float64("slowrite99", 0, "slo: write p99 threshold in ms (0 = default)")
		sloQuery99      = flag.Float64("sloquery99", 0, "slo: query p99 threshold in ms (0 = default)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.Experiments {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := bench.Config{
		HourMs:            *hourMs,
		Hosts:             *hosts,
		SpanHours:         *hours,
		Seed:              *seed,
		QueriesPerPattern: *queries,
		Parallelism:       *parallel,
		CompactionWorkers: *parallelCompact,
		FaultProb:         *faults,
		FaultSeed:         *faultSeed,
		SLODuration:       *sloDur,
		SLOIngestRate:     *sloRate,
		SLOQueryRate:      *sloQPS,
		SLOWriteP99Ms:     *sloWrite99,
		SLOQueryP99Ms:     *sloQuery99,
	}

	var toRun []bench.Experiment
	switch {
	case *all:
		toRun = bench.Experiments
	case *exp != "":
		e, err := bench.Lookup(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		toRun = []bench.Experiment{e}
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, e := range toRun {
		start := time.Now()
		report, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		report.Print(os.Stdout)
		if *metrics {
			printMetrics(report)
		}
		if *jsonDir != "" {
			if err := writeJSON(*jsonDir, report); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		fmt.Printf("  (%s completed in %s)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// printMetrics dumps each engine's end-of-run metric snapshot, sorted.
func printMetrics(r *bench.Report) {
	engines := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		engines = append(engines, name)
	}
	sort.Strings(engines)
	for _, name := range engines {
		snap := r.Metrics[name]
		keys := make([]string, 0, len(snap))
		for k := range snap {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  metrics[%s]:\n", name)
		for _, k := range keys {
			fmt.Printf("    %-60s %g\n", k, snap[k])
		}
	}
}

func writeJSON(dir string, r *bench.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, "BENCH_"+r.ID+".json")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", path)
	return nil
}
