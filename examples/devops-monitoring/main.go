// DevOps monitoring with the group model: every host's 101 metrics form one
// timeseries group sharing a timestamp column (paper §3.1). One insertion
// round writes all of a host's metrics at a shared timestamp; queries still
// select individual member timeseries by tag, including a TSBS-style MAX
// aggregation.
//
//	go run ./examples/devops-monitoring
package main

import (
	"fmt"
	"log"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/tsbs"
)

func main() {
	db, err := core.Open(core.Options{
		Fast: cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0)),
		Slow: cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0)),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Four hosts, each a group: the 10 host tags are the shared group
	// tags; measurement+field identify members inside the group.
	hosts := tsbs.Hosts(4, 1)
	uniques := make([]labels.Labels, tsbs.SeriesPerHost)
	for si := range uniques {
		uniques[si] = tsbs.SeriesTags(si)
	}

	const interval = 30_000 // 30s
	gen := tsbs.NewGenerator(hosts, interval, interval, 2)
	gids := make([]uint64, len(hosts))
	slots := make([][]int, len(hosts))

	// Two hours of data: the first round uses the slow path (defining the
	// group), the rest use the fast path with group ID + member slots.
	for round := 0; round < 240; round++ {
		t, vals := gen.Round()
		for hi := range hosts {
			if gids[hi] == 0 {
				gid, sl, err := db.AppendGroup(hosts[hi].Tags, uniques, t, vals[hi])
				if err != nil {
					log.Fatal(err)
				}
				gids[hi], slots[hi] = gid, sl
				continue
			}
			if err := db.AppendGroupFast(gids[hi], slots[hi], t, vals[hi]); err != nil {
				log.Fatal(err)
			}
		}
	}
	if err := db.Flush(); err != nil {
		log.Fatal(err)
	}

	// TSBS query 1-1-1: MAX of one CPU metric of one host, 5-minute
	// windows over the last hour.
	end := int64(240) * interval
	start := end - 3_600_000
	res, err := db.Query(start, end,
		labels.MustEqual("hostname", hosts[0].Hostname()),
		labels.MustEqual("measurement", "cpu"),
		labels.MustEqual("field", "usage_user"),
	)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range res {
		ts := make([]int64, len(s.Samples))
		vs := make([]float64, len(s.Samples))
		for i, p := range s.Samples {
			ts[i] = p.T
			vs[i] = p.V
		}
		for _, w := range tsbs.AggregateMax(ts, vs, start, end, 300_000) {
			fmt.Printf("window +%4ds  max usage_user = %6.2f\n", w.WindowStart/1000, w.Max)
		}
	}

	// Selecting by a shared group tag returns every member of the group.
	all, err := db.Query(start, end, labels.MustEqual("hostname", hosts[0].Hostname()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s exposes %d timeseries in its group\n", hosts[0].Hostname(), len(all))

	st := db.Stats()
	fmt.Printf("groups=%d index=%dB (grouping keeps one posting per group, §3.1)\n",
		st.NumGroups, st.Memory.IndexBytes)
}
