package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FaultCover enforces fault-injection coverage of the cloud I/O surface
// (DESIGN.md §4.9): every cloud.Store method call site in internal/lsm and
// internal/wal must sit in a function reachable from the package API
// (exported functions and methods, init, main). The crash-torture harness
// drives those packages exclusively through their exported surface with
// FaultStore schedules armed underneath; a store call in dead or
// internal-only code is cloud I/O no schedule can ever exercise — exactly
// where an untested partial-failure path hides.
//
// Reachability is a conservative same-package reference closure: any
// mention of a function (call, method value, goroutine spawn, callback
// registration) counts as an edge, and function-literal bodies are
// attributed to their enclosing declaration.
var FaultCover = &Analyzer{
	Name: "faultcover",
	Doc:  "cloud.Store call sites must be reachable from the package API so FaultStore schedules can exercise them",
	Run:  runFaultCover,
}

func runFaultCover(pass *Pass) {
	if !pass.InScope("internal/lsm", "internal/wal") {
		return
	}

	type callSite struct {
		pos    token.Pos
		method string
	}
	edges := map[*types.Func][]*types.Func{}
	storeCalls := map[*types.Func][]callSite{}
	var declared []*types.Func

	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			return true
		}
		owner, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if owner == nil || fd.Body == nil {
			return false
		}
		declared = append(declared, owner)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.Ident:
				if fn, ok := pass.Info.Uses[e].(*types.Func); ok && fn.Pkg() == pass.Pkg {
					edges[owner] = append(edges[owner], fn)
				}
			case *ast.CallExpr:
				if sel, ok := e.Fun.(*ast.SelectorExpr); ok && isStoreMethod(pass, sel) {
					storeCalls[owner] = append(storeCalls[owner], callSite{pos: e.Pos(), method: sel.Sel.Name})
				}
			}
			return true
		})
		return false
	})

	// Selector uses of same-package methods (x.helper()) also resolve
	// through Uses, so the Ident walk above already covers method edges.
	reachable := map[*types.Func]bool{}
	var queue []*types.Func
	for _, fn := range declared {
		name := fn.Name()
		if ast.IsExported(name) || name == "init" || name == "main" {
			reachable[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, next := range edges[fn] {
			if !reachable[next] {
				reachable[next] = true
				queue = append(queue, next)
			}
		}
	}

	for _, fn := range declared {
		if reachable[fn] {
			continue
		}
		for _, site := range storeCalls[fn] {
			pass.Reportf(site.pos, "cloud.Store.%s call in %s is unreachable from the package API; no FaultStore schedule can exercise this I/O path", site.method, fn.Name())
		}
	}
}

// isStoreMethod reports whether sel resolves to a method of the cloud.Store
// interface (an interface-dispatched store operation).
func isStoreMethod(pass *Pass, sel *ast.SelectorExpr) bool {
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	named := derefNamed(sig.Recv().Type())
	if named == nil || named.Obj().Name() != "Store" {
		return false
	}
	if _, ok := named.Underlying().(*types.Interface); !ok {
		return false
	}
	return pathInScope(named.Obj().Pkg().Path(), "internal/cloud")
}
