package model

import (
	"math"
	"testing"
)

// tsbsParams are the paper's §3.1 worked example: "this is true for the
// TSBS DevOps data set as Sg=101, Tu=118, Tg=1, Sp=8 and St=15".
func tsbsParams(n float64) GroupingParams {
	return GroupingParams{
		N:  n,
		T:  11, // 10 host tags + metric identity (approximate average)
		Sp: 8,
		St: 15,
		Sg: 101,
		Tu: 118,
		Tg: 1,
	}
}

// TestGroupingModelPaperExample validates the §3.1 index-space guideline on
// the paper's TSBS numbers: grouping must save space.
func TestGroupingModelPaperExample(t *testing.T) {
	p := tsbsParams(1_000_000)
	if !GroupingSavesIndexSpace(p) {
		t.Fatal("TSBS parameters should favor grouping")
	}
	s1 := IndexCostIndividual(p)
	s2 := IndexCostGrouped(p)
	if s2 >= s1 {
		t.Fatalf("Cost_s2 (%.0f) >= Cost_s1 (%.0f) for TSBS params", s2, s1)
	}
	// The break-even group size from the guideline: Sg just above the
	// threshold saves, just below loses.
	threshold := ((p.Tu/p.Tg)*p.Sp + p.St) / (p.Sp + p.St)
	above := p
	above.Sg = threshold * 1.01
	if !GroupingSavesIndexSpace(above) {
		t.Fatal("just above threshold should save")
	}
	below := p
	below.Sg = threshold * 0.99
	if GroupingSavesIndexSpace(below) {
		t.Fatal("just below threshold should not save")
	}
}

// TestGroupingQueryCostShape validates the §3.1 query-cost discussion:
// on S3, grouping wins long-range queries when the located timeseries
// span few groups (TSBS pattern 5-1-24: L=5, G=1); with L=1 and G=1 the
// individual model is slightly cheaper (the ceil in Eq 6 exceeds Eq 4's).
func TestGroupingQueryCostShape(t *testing.T) {
	base := QueryParams{
		P:      12,
		Sdata:  16 * 240, // 2h of 30s samples, 16B raw each
		Sblock: 4096,
		Sg:     101,
		R1:     10, // paper: ~10x individual compression on TSBS
		R2:     35, // paper: ~35x grouped
		CostS3: 15e-3,
	}
	// 5-1-24: five metrics of one host → L=5, G=1.
	p51 := base
	p51.L, p51.G = 5, 1
	if QueryCostGroupedS3(p51) >= QueryCostIndividualS3(p51) {
		t.Fatalf("grouping should win 5-1-24 on S3: %f vs %f",
			QueryCostGroupedS3(p51), QueryCostIndividualS3(p51))
	}
	// 1-1-24: L=1, G=1 → grouping slightly worse (ceil effect; the paper
	// measured TU-Group 2.8x slower on 1-1-24).
	p11 := base
	p11.L, p11.G = 1, 1
	if QueryCostGroupedS3(p11) <= QueryCostIndividualS3(p11) {
		t.Fatalf("individual should win 1-1-24 on S3: %f vs %f",
			QueryCostIndividualS3(p11), QueryCostGroupedS3(p11))
	}
	// On EBS the cost is data-volume-bound, so grouping loses whenever
	// G*Sg/R2 > L/R1 (the paper's recent-data observation for 5-1-1).
	pEBS := base
	pEBS.L, pEBS.G = 5, 1
	pEBS.CostEBS = 1.0 / 250e6
	if QueryCostGroupedEBS(pEBS) <= QueryCostIndividualEBS(pEBS) {
		t.Fatalf("individual should win on EBS: %f vs %f",
			QueryCostIndividualEBS(pEBS), QueryCostGroupedEBS(pEBS))
	}
}

// TestCompactionCostPaperExample validates Equations 7-10 on the paper's
// worked example: "suppose the topmost level size is 64MB, the size
// multiplier is 10, the size of fast storage is 1GB, and the total data
// size is 100GB. Then Lfast is 2.2 and L is 4.2. If we take the floor of
// Lfast and L, we can at least save 64GB of data write to slow storage."
func TestCompactionCostPaperExample(t *testing.T) {
	const (
		mb = 1 << 20
		gb = 1 << 30
	)
	p := CompactionParams{
		Sd:    100 * gb,
		Sb:    64 * mb,
		M:     10,
		Sfast: 1 * gb,
	}
	L := Levels(p.Sd, p.Sb, p.M)
	if math.Abs(L-4.2) > 0.1 {
		t.Fatalf("L = %.2f, paper says 4.2", L)
	}
	Lfast := Levels(p.Sfast, p.Sb, p.M)
	if math.Abs(Lfast-2.2) > 0.1 {
		t.Fatalf("Lfast = %.2f, paper says 2.2", Lfast)
	}
	// With floors L=4, Lfast=2 the saving is Sb*(M^2*0 + M^3*1) = 1000*Sb
	// = 64000 MB — the paper's "at least 64GB" (decimal GB).
	saving := CompactionSaving(p)
	if saving != 1000*p.Sb {
		t.Fatalf("saving = %.0f, want exactly 1000*Sb = %.0f", saving, 1000*p.Sb)
	}
	if saving < 64e9 {
		t.Fatalf("saving = %.1f decimal GB, paper says at least 64", saving/1e9)
	}
	// The saving equals Cost1 - Cost2 by construction; both positive.
	c1 := TraditionalSlowWriteCost(p)
	c2 := OneLevelSlowWriteCost(p)
	if c1 <= c2 || c2 <= 0 {
		t.Fatalf("cost ordering wrong: c1=%.0f c2=%.0f", c1, c2)
	}
}

// TestCompactionCostMonotonic checks the qualitative shape: more data or a
// smaller fast tier increases the one-level design's advantage.
func TestCompactionCostMonotonic(t *testing.T) {
	const gb = 1 << 30
	base := CompactionParams{Sd: 100 * gb, Sb: 64 << 20, M: 10, Sfast: 1 * gb}
	bigger := base
	bigger.Sd = 1000 * gb
	if CompactionSaving(bigger) <= CompactionSaving(base) {
		t.Fatal("saving should grow with data size")
	}
	tinyFast := base
	tinyFast.Sfast = 128 << 20
	if CompactionSaving(tinyFast) < CompactionSaving(base) {
		t.Fatal("saving should not shrink with a smaller fast tier")
	}
}

func TestLevelsFormula(t *testing.T) {
	// One level of exactly Sb: L = 1.
	if got := Levels(64<<20, 64<<20, 10); math.Abs(got-1) > 0.01 {
		t.Fatalf("Levels(Sb) = %f", got)
	}
	// Sb*(1+M): exactly two levels.
	if got := Levels(11*64<<20, 64<<20, 10); math.Abs(got-2) > 0.01 {
		t.Fatalf("Levels(Sb*11) = %f", got)
	}
}
