package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked module package.
type Package struct {
	Path  string // import path within the module
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	ignores       map[string][]ignoreDirective // filename -> directives
	badDirectives []badDirective
}

// Loader loads module packages from source: files are enumerated with
// go/build (so build constraints are honoured), parsed with go/parser, and
// type-checked with go/types. Imports inside the module resolve through
// the loader itself; everything else (the standard library) goes through
// importer.ForCompiler(..., "source", ...), which type-checks stdlib
// source from GOROOT — no compiled export data or external tooling needed.
// Test files are deliberately excluded: the invariants tulint enforces are
// production-code contracts, and fixture code intentionally violates them.
type Loader struct {
	ModuleRoot string // absolute path of the directory holding go.mod
	ModulePath string // module path from go.mod ("timeunion")

	fset *token.FileSet
	std  types.ImporterFrom
	pkgs map[string]*Package // import path -> loaded package
	busy map[string]bool     // import cycle guard
}

// sharedFset and sharedStd are process-wide: every Loader reuses one
// FileSet and one stdlib source importer, so the (expensive) from-source
// type-check of the standard library happens once per process no matter
// how many module roots are loaded (the real tree plus each test fixture).
var (
	sharedFset = token.NewFileSet()
	sharedStd  = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
)

// NewLoader returns a loader rooted at moduleRoot.
func NewLoader(moduleRoot, modulePath string) *Loader {
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modulePath,
		fset:       sharedFset,
		std:        sharedStd,
		pkgs:       map[string]*Package{},
		busy:       map[string]bool{},
	}
}

// FindModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func FindModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// Load resolves the given patterns ("./...", "./internal/wal",
// "internal/lsm/...") to module directories and loads each, returning
// packages sorted by import path. Directories named testdata, hidden
// directories, and directories with no non-test Go files are skipped.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// expand turns patterns into an absolute-directory list.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		if fi, err := os.Stat(base); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such directory %s", pat, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return dirs, nil
}

// importPathFor maps an absolute module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module root %s", dir, l.ModuleRoot)
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// dirForImport maps a module import path to its absolute directory.
func (l *Loader) dirForImport(path string) string {
	if path == l.ModulePath {
		return l.ModuleRoot
	}
	rel := strings.TrimPrefix(path, l.ModulePath+"/")
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
}

// loadDir loads and type-checks the package in dir (nil if the directory
// holds no non-test Go files).
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	bpkg, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, noGo := err.(*build.NoGoError); noGo {
			return nil, nil
		}
		return nil, fmt.Errorf("lint: %s: %w", dir, err)
	}
	var files []*ast.File
	ignores := map[string][]ignoreDirective{}
	var bad []badDirective
	for _, name := range bpkg.GoFiles {
		full := filepath.Join(dir, name)
		af, err := parser.ParseFile(l.fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parse %s: %w", full, err)
		}
		files = append(files, af)
		dirs, badHere := collectIgnores(l.fset, af)
		if len(dirs) > 0 {
			ignores[full] = dirs
		}
		bad = append(bad, badHere...)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importerFunc(func(ipath string) (*types.Package, error) {
		return l.importPkg(ipath, dir)
	})}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Path: path, Dir: dir, Fset: l.fset, Files: files,
		Types: tpkg, Info: info,
		ignores: ignores, badDirectives: bad,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// importPkg resolves one import: module-internal paths load through the
// loader, everything else through the stdlib source importer.
func (l *Loader) importPkg(path, fromDir string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadDir(l.dirForImport(path))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: import %q: no Go files", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, fromDir, 0)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
