package bench

import (
	"fmt"
	"math/rand"

	"timeunion/internal/lsm"
	"timeunion/internal/tsbs"
)

// AblChunkSize sweeps the in-memory chunk size (paper §3.2: "this number
// can be adjusted by users for the trade-off between compression ratio and
// memory usage; larger chunks have a better compression ratio").
func AblChunkSize(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("abl-chunk", "Ablation: in-memory chunk size (compression vs memory)",
		"chunk samples", "bytes/sample stored", "head memory")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 120
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)

	for _, chunkSamples := range []int{8, 16, 32, 64, 128} {
		ec := newEngineConfig(cfg, hosts)
		ec.chunkSamples = chunkSamples
		e, err := newTUEngine(ec, "TU")
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
		samples := 0
		var peakMem int64
		for round := 0; round < rounds; round++ {
			t, vals := gen.Round()
			if err := e.insertRound(t, vals); err != nil {
				e.close()
				return nil, err
			}
			samples += len(hosts) * tsbs.SeriesPerHost
			if round%64 == 0 {
				if m := e.memory(); m > peakMem {
					peakMem = m
				}
			}
		}
		if err := e.flush(); err != nil {
			e.close()
			return nil, err
		}
		stored := e.t.fast.TotalBytes() + e.t.slow.TotalBytes()
		perSample := float64(stored) / float64(samples)
		r.addRow(fmt.Sprintf("%d", chunkSamples),
			fmt.Sprintf("%.2fB", perSample), fmtBytes(peakMem))
		key := fmt.Sprintf("c%d", chunkSamples)
		r.Values[key+":bytes/sample"] = perSample
		r.Values[key+":mem"] = float64(peakMem)
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	r.note("expected: larger chunks compress better (fewer chunk headers and keys per sample) at the cost of more buffered samples in memory")
	return r, nil
}

// AblPatchThreshold sweeps the L2 patch threshold (paper §3.3: "an
// adjustable threshold number (e.g. 3)"): a low threshold merges
// aggressively (more slow-tier writes, fewer tables per query); a high one
// defers merging (less write traffic, more SSTables read by long-range
// queries).
func AblPatchThreshold(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("abl-patch", "Ablation: L2 patch threshold",
		"threshold", "patches", "patch merges", "slow puts", "q:5-1-24")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 120
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)

	for _, threshold := range []int{1, 3, 8} {
		ec := newEngineConfig(cfg, hosts)
		e, err := buildTUWithPatchThreshold(ec, threshold)
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
		rnd := rand.New(rand.NewSource(cfg.Seed))
		for round := 0; round < rounds; round++ {
			t, vals := gen.Round()
			if err := e.insertRound(t, vals); err != nil {
				e.close()
				return nil, err
			}
			// Steady trickle of out-of-order data to generate patches.
			if round%8 == 0 && t > 4*ec.l2Len {
				hi := rnd.Intn(len(hosts))
				si := rnd.Intn(tsbs.SeriesPerHost)
				old := rnd.Int63n(t - 2*ec.l2Len)
				if err := e.insertOutOfOrder(hi, si, old+1, rnd.Float64()*100); err != nil {
					e.close()
					return nil, err
				}
			}
		}
		if err := e.flush(); err != nil {
			e.close()
			return nil, err
		}
		tree := e.db.ChunkStoreRef().(*lsm.LSM)
		st := tree.Stats()
		slowPuts := e.t.slow.Stats().Puts

		p, _ := tsbs.PatternByName("5-1-24")
		env := tsbs.QueryEnv{Hosts: hosts, DataMin: 0, DataMax: span, HourMs: cfg.HourMs}
		qrnd := rand.New(rand.NewSource(cfg.Seed + 5))
		q := tsbs.MakeQuery(p, env, qrnd)
		lat, err := e.stores().measure(func() error {
			_, _, err := e.query(q)
			return err
		})
		if err != nil {
			e.close()
			return nil, err
		}
		r.addRow(fmt.Sprintf("%d", threshold),
			fmt.Sprintf("%d", st.PatchesCreated),
			fmt.Sprintf("%d", st.PatchMerges),
			fmt.Sprintf("%d", slowPuts),
			fmtDur(lat))
		key := fmt.Sprintf("t%d", threshold)
		r.Values[key+":merges"] = float64(st.PatchMerges)
		r.Values[key+":patches"] = float64(st.PatchesCreated)
		r.Values[key+":slowputs"] = float64(slowPuts)
		r.Values[key+":q5124"] = lat.Seconds()
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	r.note("expected: threshold 1 merges eagerly (more merges, more slow puts); threshold 8 accumulates patches (fewer merges)")
	return r, nil
}

func buildTUWithPatchThreshold(ec engineConfig, threshold int) (*tuEngine, error) {
	// newTUEngine with the threshold override requires constructing the
	// DB directly; reuse the engine builder by temporarily encoding the
	// threshold into the config.
	ec2 := ec
	ec2.patchThreshold = threshold
	return newTUEngine(ec2, "TU")
}

// AblOneLevelSlow measures the paper's central traffic claim (Equations
// 8-10): under the same load, TimeUnion's single slow-tier level issues
// far fewer slow-store requests than the classic multi-level LSM of
// TU-LDB, whose deeper-level compactions read and rewrite S3-resident
// SSTables.
func AblOneLevelSlow(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("abl-onelevel", "Ablation: one slow level vs classic leveled LSM",
		"engine", "slow puts", "slow gets", "slow bytes written", "slow bytes read")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 120
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)

	for _, name := range []string{"TU", "TU-LDB"} {
		ec := newEngineConfig(cfg, hosts)
		e, err := buildEngine(ec, name)
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
		for round := 0; round < rounds; round++ {
			t, vals := gen.Round()
			if err := e.insertRound(t, vals); err != nil {
				e.close()
				return nil, err
			}
		}
		if err := e.flush(); err != nil {
			e.close()
			return nil, err
		}
		st := e.stores().slow.Stats()
		r.addRow(name,
			fmt.Sprintf("%d", st.Puts), fmt.Sprintf("%d", st.Gets),
			fmtBytes(int64(st.BytesWritten)), fmtBytes(int64(st.BytesRead)))
		r.Values[name+":slowputs"] = float64(st.Puts)
		r.Values[name+":slowgets"] = float64(st.Gets)
		r.Values[name+":slowwritten"] = float64(st.BytesWritten)
		r.Values[name+":slowread"] = float64(st.BytesRead)
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	r.note("paper Eq 8-10: the one-level design avoids re-reading and re-writing slow-tier SSTables; in-order load should show near-zero TU slow-tier reads")
	return r, nil
}
