package chunkenc

import (
	"fmt"
	"math"

	"timeunion/internal/encoding"
)

// This file implements batch decode: a whole chunk's samples decoded in one
// pass into caller-supplied column buffers ([]int64 timestamps, []float64
// values). The hot read path prefers this over per-sample Next() calls —
// the bit-reader lives on the stack for the duration of the loop, there is
// no per-sample iterator bookkeeping, and the output columns come from a
// sync.Pool (SampleBuffer) so steady-state decoding allocates nothing.
//
// Identity with the streaming decoders is pinned by fuzz tests: for every
// payload, AppendXORSamples == draining an XORIterator, and
// AppendGroupSlotSamples == draining a GroupSlotIterator.

// AppendXORSamples batch-decodes an EncXOR payload, appending every sample
// to ts/vs (which must be parallel). It returns the extended slices. On a
// decode error the slices hold the samples decoded so far and must be
// considered incomplete.
func AppendXORSamples(ts []int64, vs []float64, payload []byte) ([]int64, []float64, error) {
	if len(payload) < sampleCountLen {
		return ts, vs, fmt.Errorf("chunkenc: decode XOR samples: %w", encoding.ErrShortBuffer)
	}
	total := int(payload[0])<<8 | int(payload[1])
	r := encoding.MakeBitReader(payload[sampleCountLen:])
	var (
		t, tDelta         int64
		v                 float64
		leading, trailing uint8 = 0xff, 0
	)
	for i := 0; i < total; i++ {
		switch i {
		case 0:
			t = int64(r.ReadBits(64))
			v = math.Float64frombits(r.ReadBits(64))
		case 1:
			tDelta = readVarbitInt(&r)
			t += tDelta
			v, leading, trailing = readXORValue(&r, v, leading, trailing)
		default:
			tDelta += readVarbitInt(&r)
			t += tDelta
			v, leading, trailing = readXORValue(&r, v, leading, trailing)
		}
		if err := r.Err(); err != nil {
			return ts, vs, fmt.Errorf("chunkenc: decode XOR samples: %w", err)
		}
		ts = append(ts, t)
		vs = append(vs, v)
	}
	return ts, vs, nil
}

// AppendGroupSlotSamples batch-decodes one group member's non-NULL samples
// out of the tuple's shared time column and the member's value column,
// appending to ts/vs. NULL slots are skipped; a value column shorter than
// the time column is treated as NULL-padded (a member that joined
// mid-tuple), matching GroupSlotIterator.
func AppendGroupSlotSamples(ts []int64, vs []float64, timeCol, valCol []byte) ([]int64, []float64, error) {
	if len(timeCol) < sampleCountLen {
		return ts, vs, fmt.Errorf("chunkenc: decode group slot samples: %w", encoding.ErrShortBuffer)
	}
	numT := int(timeCol[0])<<8 | int(timeCol[1])
	// A value column too short for its header only matters once a time slot
	// consults it — with zero time slots it is never read. This mirrors
	// GroupSlotIterator, which surfaces the value iterator's error at the
	// first slot, keeping batch/streaming identity exact.
	valShort := len(valCol) < sampleCountLen
	numV := 0
	var vr encoding.BitReader
	if !valShort {
		numV = int(valCol[0])<<8 | int(valCol[1])
		vr = encoding.MakeBitReader(valCol[sampleCountLen:])
	}
	tr := encoding.MakeBitReader(timeCol[sampleCountLen:])
	var (
		t, tDelta         int64
		v                 float64
		first                   = true
		leading, trailing uint8 = 0xff, 0
	)
	for i := 0; i < numT; i++ {
		switch i {
		case 0:
			t = int64(tr.ReadBits(64))
		case 1:
			tDelta = readVarbitInt(&tr)
			t += tDelta
		default:
			tDelta += readVarbitInt(&tr)
			t += tDelta
		}
		if err := tr.Err(); err != nil {
			return ts, vs, fmt.Errorf("chunkenc: decode group slot samples: %w", err)
		}
		if valShort {
			return ts, vs, fmt.Errorf("chunkenc: decode group slot samples: %w", encoding.ErrShortBuffer)
		}
		if i >= numV {
			continue // short value column: remaining slots are NULL
		}
		if !vr.ReadBit() {
			if err := vr.Err(); err != nil {
				return ts, vs, fmt.Errorf("chunkenc: decode group slot samples: %w", err)
			}
			continue // NULL slot
		}
		if first {
			v = math.Float64frombits(vr.ReadBits(64))
			first = false
		} else {
			v, leading, trailing = readXORValue(&vr, v, leading, trailing)
		}
		if err := vr.Err(); err != nil {
			return ts, vs, fmt.Errorf("chunkenc: decode group slot samples: %w", err)
		}
		ts = append(ts, t)
		vs = append(vs, v)
	}
	return ts, vs, nil
}
