package lint

// callgraph.go is the interprocedural layer under the module-wide analyzers
// (DESIGN.md §4.14): a conservative call graph over every loaded package,
// plus a worklist fixpoint that analyzers use to compute summaries
// (transitive lock-acquire sets, pooled-ownership effects) bottom-up.
//
// Resolution rules, in order of confidence:
//
//   - EdgeCall: the callee is statically known — a direct function call, a
//     method call on a concrete receiver, or a call of an interface method
//     (the edge targets the interface method's *types.Func).
//   - EdgeDynamic: conservative interface dispatch — for a call through an
//     interface, one edge per concrete named type in the loaded packages
//     whose method set satisfies the interface. Over-approximates (the
//     value may never hold that type) but never misses a module target.
//   - EdgeRef: a bare mention of a function or method (callback
//     registration, method value, goroutine argument). The function may run
//     later with unknown lock state, so analyzers choose per-invariant
//     whether a reference counts as a call (faultcover: yes; lockgraph: no).
//
// Function-literal bodies are attributed to their enclosing declaration,
// reusing the faultcover convention. Edges that originate inside a
// go-statement (either `go f()` or anywhere inside a `go func(){...}()`
// literal) carry Concurrent=true: the work happens on another goroutine,
// so the spawner's held locks are not held across it.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// EdgeKind classifies how a call-graph edge was derived.
type EdgeKind uint8

const (
	// EdgeCall is a statically resolved call.
	EdgeCall EdgeKind = iota
	// EdgeDynamic is a conservative interface-dispatch resolution.
	EdgeDynamic
	// EdgeRef is a bare function/method-value reference.
	EdgeRef
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeCall:
		return "call"
	case EdgeDynamic:
		return "dynamic"
	case EdgeRef:
		return "ref"
	}
	return "unknown"
}

// Edge is one caller→callee relation with its witness position.
type Edge struct {
	Caller     *Node
	Callee     *Node
	Pos        token.Pos
	Kind       EdgeKind
	Concurrent bool // site is a go statement or inside a go-launched literal
	Deferred   bool // site is the call of a defer statement
}

// Node is one function in the graph. Functions declared in the loaded
// packages have Decl and Pkg set; interface methods and imported functions
// that appear as callees are represented by bodyless nodes.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl // nil when no body was loaded
	Pkg  *Package      // declaring loaded package, nil otherwise
	Out  []Edge
	In   []Edge
}

// Name returns a readable package-qualified function name for messages.
func (n *Node) Name() string {
	if n.Fn.Pkg() == nil {
		return n.Fn.Name()
	}
	if sig, ok := n.Fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named := derefNamed(sig.Recv().Type()); named != nil {
			return named.Obj().Name() + "." + n.Fn.Name()
		}
	}
	return n.Fn.Name()
}

// CallGraph is the module-wide graph plus the call-site index.
type CallGraph struct {
	Fset *token.FileSet

	nodes    map[*types.Func]*Node
	declared []*Node // FuncDecl nodes in load order (deterministic)
	concrete []*types.Named
	sites    map[*ast.CallExpr][]*Node
	dispatch map[dispatchKey][]*types.Func
}

type dispatchKey struct {
	iface  *types.Interface
	method string
}

// Node returns the graph node for fn, or nil if fn never appears.
func (g *CallGraph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.Origin()]
}

// Nodes returns every declared function in deterministic load order.
func (g *CallGraph) Nodes() []*Node { return g.declared }

// Callees returns the resolved callee nodes of a call expression: the
// static target, plus the conservative dispatch expansion for interface
// calls. Calls through function values resolve to nothing.
func (g *CallGraph) Callees(call *ast.CallExpr) []*Node { return g.sites[call] }

// Fixpoint runs a summary computation to a fixed point: recompute derives a
// node's summary from its callees' current summaries (stored by the caller)
// and reports whether it changed; every caller of a changed node is
// re-enqueued. Cycle-safe by construction — recursion just iterates until
// summaries stabilize.
func (g *CallGraph) Fixpoint(recompute func(n *Node) bool) {
	queued := make(map[*Node]bool, len(g.declared))
	queue := make([]*Node, 0, len(g.declared))
	for _, n := range g.declared {
		queued[n] = true
		queue = append(queue, n)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		queued[n] = false
		if !recompute(n) {
			continue
		}
		for _, e := range n.In {
			if c := e.Caller; c.Decl != nil && !queued[c] {
				queued[c] = true
				queue = append(queue, c)
			}
		}
	}
}

// BuildCallGraph constructs the graph over the given packages.
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		Fset:     sharedFset,
		nodes:    map[*types.Func]*Node{},
		sites:    map[*ast.CallExpr][]*Node{},
		dispatch: map[dispatchKey][]*types.Func{},
	}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok && !types.IsInterface(named) {
				g.concrete = append(g.concrete, named)
			}
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := g.ensure(fn)
				n.Decl, n.Pkg = fd, pkg
				g.declared = append(g.declared, n)
			}
		}
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				w := &graphWalker{g: g, pkg: pkg, owner: g.nodes[fn.Origin()]}
				w.walk(fd.Body, false)
			}
		}
	}
	return g
}

func (g *CallGraph) ensure(fn *types.Func) *Node {
	fn = fn.Origin()
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &Node{Fn: fn}
	g.nodes[fn] = n
	return n
}

// implementations resolves an interface method against every concrete named
// type in the loaded packages (cached per interface+method).
func (g *CallGraph) implementations(iface *types.Interface, method string, from *types.Package) []*types.Func {
	key := dispatchKey{iface, method}
	if fns, ok := g.dispatch[key]; ok {
		return fns
	}
	var out []*types.Func
	for _, named := range g.concrete {
		var t types.Type = named
		if !types.Implements(t, iface) {
			t = types.NewPointer(named)
			if !types.Implements(t, iface) {
				continue
			}
		}
		ms := types.NewMethodSet(t)
		sel := ms.Lookup(from, method)
		if sel == nil {
			sel = ms.Lookup(named.Obj().Pkg(), method)
		}
		if sel == nil {
			continue
		}
		if fn, ok := sel.Obj().(*types.Func); ok {
			out = append(out, fn)
		}
	}
	g.dispatch[key] = out
	return out
}

// graphWalker builds edges for one declared function, attributing nested
// function-literal bodies to the declaration.
type graphWalker struct {
	g     *CallGraph
	pkg   *Package
	owner *Node
}

func (w *graphWalker) walk(n ast.Node, concurrent bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			w.call(n.Call, concurrent, true, false)
			return false
		case *ast.DeferStmt:
			w.call(n.Call, concurrent, false, true)
			return false
		case *ast.CallExpr:
			w.call(n, concurrent, false, false)
			return false
		case *ast.FuncLit:
			w.walk(n.Body, concurrent)
			return false
		case *ast.SelectorExpr:
			w.ref(n, concurrent)
			w.walk(n.X, concurrent)
			return false
		case *ast.Ident:
			if fn, ok := w.pkg.Info.Uses[n].(*types.Func); ok {
				w.edge(fn, n.Pos(), EdgeRef, concurrent, false, nil)
			}
		}
		return true
	})
}

// call resolves one call site and records its edges. spawn marks `go f(x)`
// itself; arguments still evaluate synchronously on the spawning goroutine.
func (w *graphWalker) call(call *ast.CallExpr, concurrent, spawn, deferred bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		w.walk(fun.Body, concurrent || spawn)
	case *ast.Ident:
		if fn, ok := w.pkg.Info.Uses[fun].(*types.Func); ok {
			w.edge(fn, call.Pos(), EdgeCall, concurrent || spawn, deferred, call)
		}
		// Function-value calls and conversions carry no static edge; the
		// value's creation site contributed an EdgeRef.
	case *ast.SelectorExpr:
		if sel := w.pkg.Info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			if fn != nil {
				w.edge(fn, call.Pos(), EdgeCall, concurrent || spawn, deferred, call)
				if iface := underlyingInterface(sel.Recv()); iface != nil {
					for _, impl := range w.g.implementations(iface, fn.Name(), w.pkg.Types) {
						w.edge(impl, call.Pos(), EdgeDynamic, concurrent || spawn, deferred, call)
					}
				}
			}
		} else if fn, ok := w.pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			// Package-qualified call (pkg.F) or method expression target.
			w.edge(fn, call.Pos(), EdgeCall, concurrent || spawn, deferred, call)
		}
		w.walk(fun.X, concurrent)
	default:
		w.walk(call.Fun, concurrent)
	}
	for _, arg := range call.Args {
		w.walk(arg, concurrent)
	}
}

// ref records a method-value or qualified function reference outside call
// position (the selector's base expression is walked by the caller).
func (w *graphWalker) ref(sel *ast.SelectorExpr, concurrent bool) {
	if s := w.pkg.Info.Selections[sel]; s != nil {
		if s.Kind() == types.MethodVal || s.Kind() == types.MethodExpr {
			if fn, ok := s.Obj().(*types.Func); ok {
				w.edge(fn, sel.Pos(), EdgeRef, concurrent, false, nil)
			}
		}
		return
	}
	if fn, ok := w.pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		w.edge(fn, sel.Pos(), EdgeRef, concurrent, false, nil)
	}
}

func (w *graphWalker) edge(callee *types.Func, pos token.Pos, kind EdgeKind, concurrent, deferred bool, site *ast.CallExpr) {
	cn := w.g.ensure(callee)
	e := Edge{Caller: w.owner, Callee: cn, Pos: pos, Kind: kind, Concurrent: concurrent, Deferred: deferred}
	w.owner.Out = append(w.owner.Out, e)
	cn.In = append(cn.In, e)
	if site != nil {
		w.g.sites[site] = append(w.g.sites[site], cn)
	}
}

// underlyingInterface unwraps t down to an interface type, or nil.
func underlyingInterface(t types.Type) *types.Interface {
	if t == nil {
		return nil
	}
	iface, _ := types.Unalias(t).Underlying().(*types.Interface)
	return iface
}
