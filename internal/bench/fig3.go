package bench

import (
	"fmt"

	"timeunion/internal/cloud"
	"timeunion/internal/labels"
	"timeunion/internal/tsdb"
)

// fig3Series builds the Figure 3 workload: N series with 20 tags each.
func fig3Series(n int) []labels.Labels {
	out := make([]labels.Labels, n)
	for i := range out {
		ls := make([]string, 0, 40)
		ls = append(ls, "series", fmt.Sprintf("s%07d", i))
		for t := 0; t < 19; t++ {
			ls = append(ls, fmt.Sprintf("tag%02d", t), fmt.Sprintf("value-%d-%d", t, i%(100*(t+1))))
		}
		out[i] = labels.FromStrings(ls...)
	}
	return out
}

// Fig3 regenerates Figure 3: the resource usage of the Prometheus-tsdb
// architecture. Memory is the engine's accounted footprint: (a) it grows
// linearly with the series count, with data samples adding on top of the
// index; (b) the 12h/60s breakdown splits index, block metadata, and
// samples.
func Fig3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("fig3", "Resource usage of Prometheus tsdb",
		"series", "mode", "memory", "index", "blockmeta", "samples")

	baseN := cfg.Hosts * 1000 // series count scale knob
	counts := []int{baseN / 4, baseN / 2, baseN}
	hour := cfg.HourMs

	run := func(n int, mode string, spanHours int, intervalDiv int64) (tsdb.MemoryFootprint, error) {
		store := cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0))
		db, err := tsdb.Open(tsdb.Options{
			Store:        store,
			Cache:        cloud.NewLRUCache(1 << 30),
			BlockSpan:    2 * hour,
			ChunkSamples: 120,
		})
		if err != nil {
			return tsdb.MemoryFootprint{}, err
		}
		series := fig3Series(n)
		ids := make([]uint64, n)
		for i, ls := range series {
			// Index-only mode registers series with a single sample at 0
			// (the engine has no sample-less registration, like the real
			// tsdb's scrape of at least one sample).
			id, err := db.Append(ls, 0, 0)
			if err != nil {
				return tsdb.MemoryFootprint{}, err
			}
			ids[i] = id
		}
		if spanHours > 0 {
			interval := hour / intervalDiv
			for t := interval; t <= int64(spanHours)*hour; t += interval {
				for _, id := range ids {
					if err := db.AppendFast(id, t, float64(t%97)); err != nil {
						return tsdb.MemoryFootprint{}, err
					}
				}
			}
			// Query once so flushed-block metadata loads, as a monitoring
			// dashboard would.
			if _, err := db.Query(0, int64(spanHours)*hour, labels.MustMatcher(labels.MatchRegexp, "series", "s000000.")); err != nil {
				return tsdb.MemoryFootprint{}, err
			}
		}
		return db.Footprint(), nil
	}

	type mode struct {
		name     string
		span     int
		interval int64
	}
	modes := []mode{
		{"index-only", 0, 0},
		{"2h@10s", 2, 360},
		{"2h@60s", 2, 60},
	}
	for _, n := range counts {
		for _, m := range modes {
			f, err := run(n, m.name, m.span, m.interval)
			if err != nil {
				return nil, err
			}
			r.addRow(fmt.Sprintf("%d", n), m.name, fmtBytes(f.Total()),
				fmtBytes(f.IndexBytes), fmtBytes(f.BlockMetaBytes), fmtBytes(f.SampleBytes))
			r.Values[fmt.Sprintf("mem:%d:%s", n, m.name)] = float64(f.Total())
		}
	}

	// 12h @60s breakdown.
	f, err := run(counts[len(counts)-1], "12h@60s", 12, 60)
	if err != nil {
		return nil, err
	}
	total := float64(f.Total())
	r.addRow(fmt.Sprintf("%d", counts[len(counts)-1]), "12h@60s breakdown",
		fmtBytes(f.Total()),
		fmt.Sprintf("%.0f%%", 100*float64(f.IndexBytes)/total),
		fmt.Sprintf("%.0f%%", 100*float64(f.BlockMetaBytes)/total),
		fmt.Sprintf("%.0f%%", 100*float64(f.SampleBytes)/total))
	r.Values["breakdown:index"] = float64(f.IndexBytes) / total
	r.Values["breakdown:meta"] = float64(f.BlockMetaBytes) / total
	r.Values["breakdown:samples"] = float64(f.SampleBytes) / total
	r.note("paper: memory linear in series count; 10s/60s sample intervals add 51%%/31%% over index-only; 12h breakdown: index 51%%, block metadata 34%%, samples 15%%")
	return r, nil
}
