package obs

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is a lightweight per-query trace. It aggregates span timings per
// stage name (index_select, head_scan, lsm_read, slow_fetch, decode, ...)
// rather than retaining individual spans, so a query touching thousands of
// series costs O(stages) memory, not O(spans). It also carries per-tier
// byte attribution and cache hit/miss deltas for the query.
//
// A nil *Trace is a no-op: StartSpan returns a nil *Span whose methods are
// also no-ops, so instrumented code paths need no branching.
type Trace struct {
	Name  string
	begin time.Time

	mu     sync.Mutex
	end    time.Time
	order  []string
	stages map[string]*stageAgg
	tiers  map[string]int64 // tier name -> bytes read
	hits   uint64
	misses uint64
}

// stageAgg accumulates all spans of one stage.
type stageAgg struct {
	count int
	total time.Duration
	max   time.Duration
	bytes int64
}

// StageStat is the per-stage summary returned by Stages.
type StageStat struct {
	Name  string
	Count int
	Total time.Duration
	Max   time.Duration
	Bytes int64
}

// NewTrace starts a trace clocked from now.
func NewTrace(name string) *Trace {
	return &Trace{
		Name:   name,
		begin:  time.Now(),
		stages: make(map[string]*stageAgg),
		tiers:  make(map[string]int64),
	}
}

type traceCtxKey struct{}

// ContextWithTrace attaches tr to ctx.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFrom returns the trace attached to ctx, or nil.
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// Span is one timed region attributed to a stage. Obtained from StartSpan;
// closed with End. A nil *Span is a no-op.
type Span struct {
	tr    *Trace
	stage string
	start time.Time
	bytes int64
}

// StartSpan opens a span for the named stage. Returns nil when the trace
// is nil, so un-traced queries pay only the nil check.
func (t *Trace) StartSpan(stage string) *Span {
	if t == nil {
		return nil
	}
	return &Span{tr: t, stage: stage, start: time.Now()}
}

// AddBytes attributes n bytes to the span's stage.
func (s *Span) AddBytes(n int64) {
	if s != nil {
		s.bytes += n
	}
}

// End closes the span and folds it into the trace's stage aggregate.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	t := s.tr
	t.mu.Lock()
	agg := t.stages[s.stage]
	if agg == nil {
		agg = &stageAgg{}
		t.stages[s.stage] = agg
		t.order = append(t.order, s.stage)
	}
	agg.count++
	agg.total += d
	if d > agg.max {
		agg.max = d
	}
	agg.bytes += s.bytes
	t.mu.Unlock()
}

// SetTierBytes records bytes read from a storage tier during the query.
func (t *Trace) SetTierBytes(tier string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tiers[tier] = n
	t.mu.Unlock()
}

// TierBytes returns the bytes recorded for a tier.
func (t *Trace) TierBytes(tier string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tiers[tier]
}

// SetCache records the cache hit/miss deltas observed during the query.
func (t *Trace) SetCache(hits, misses uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.hits, t.misses = hits, misses
	t.mu.Unlock()
}

// Cache returns the recorded cache hit/miss deltas.
func (t *Trace) Cache() (hits, misses uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.hits, t.misses
}

// Finish stamps the trace's end time (idempotent: first call wins).
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.end.IsZero() {
		t.end = time.Now()
	}
	t.mu.Unlock()
}

// Duration returns elapsed time since the trace began, or begin..Finish if
// the trace has finished.
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	end := t.end
	t.mu.Unlock()
	if end.IsZero() {
		return time.Since(t.begin)
	}
	return end.Sub(t.begin)
}

// Stages returns the per-stage aggregates in first-seen order.
func (t *Trace) Stages() []StageStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]StageStat, 0, len(t.order))
	for _, name := range t.order {
		a := t.stages[name]
		out = append(out, StageStat{Name: name, Count: a.count, Total: a.total, Max: a.max, Bytes: a.bytes})
	}
	return out
}

// Render formats the trace as a span tree for the slow-query log:
//
//	query trace "select" total=12.3ms
//	├─ index_select   n=1    total=0.2ms  max=0.2ms
//	├─ head_scan      n=64   total=1.1ms  max=0.1ms
//	└─ lsm_read       n=64   total=9.8ms  max=2.2ms  bytes=524288
//	tiers: fast=524288B slow=0B  cache: 12 hits / 4 misses
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "query trace %q total=%s\n", t.Name, t.Duration().Round(time.Microsecond))
	stages := t.Stages()
	for i, s := range stages {
		branch := "├─"
		if i == len(stages)-1 {
			branch = "└─"
		}
		fmt.Fprintf(&b, "%s %-14s n=%-5d total=%-10s max=%s", branch, s.Name, s.Count,
			s.Total.Round(time.Microsecond), s.Max.Round(time.Microsecond))
		if s.Bytes > 0 {
			fmt.Fprintf(&b, "  bytes=%d", s.Bytes)
		}
		b.WriteByte('\n')
	}
	t.mu.Lock()
	tiers := make([]string, 0, len(t.tiers))
	for tier := range t.tiers {
		tiers = append(tiers, tier)
	}
	sort.Strings(tiers)
	parts := make([]string, 0, len(tiers))
	for _, tier := range tiers {
		parts = append(parts, fmt.Sprintf("%s=%dB", tier, t.tiers[tier]))
	}
	hits, misses := t.hits, t.misses
	t.mu.Unlock()
	if len(parts) > 0 || hits+misses > 0 {
		fmt.Fprintf(&b, "tiers: %s  cache: %d hits / %d misses\n", strings.Join(parts, " "), hits, misses)
	}
	return b.String()
}
