// Package query is out of faultcover's scope: even an unreachable store
// call produces no finding here.
package query

import "fix/internal/cloud"

type scanner struct{ store cloud.Store }

func (s *scanner) dead() error {
	return s.store.Put("k", nil)
}
