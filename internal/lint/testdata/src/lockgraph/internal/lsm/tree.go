// Package lsm exercises lockgraph: the declared hierarchy is
// manifestMu (10) → mu (20) → head catalog/stripe/series, violations are
// reported whether the inversion is direct or crosses a function call, and
// goroutines, terminated branches, and bare references stay out of it.
package lsm

import (
	"sync"

	"fix/internal/head"
)

type LSM struct {
	manifestMu sync.Mutex
	refreshMu  sync.Mutex
	mu         sync.Mutex
	h          *head.Head
}

// InOrder walks down the hierarchy: no findings.
func (l *LSM) InOrder() {
	l.manifestMu.Lock()
	defer l.manifestMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.h.Touch() // into head locks (30-50): still descending
}

// Inverted acquires manifestMu while holding mu.
func (l *LSM) Inverted() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.manifestMu.Lock() // want `lock order violation in LSM.Inverted: lsm.LSM.manifestMu \(level 10\) acquired while lsm.LSM.mu \(level 20\) is held`
	l.manifestMu.Unlock()
}

// TransitiveInverted holds mu across a call whose callee acquires
// refreshMu: the edge crosses the function boundary.
func (l *LSM) TransitiveInverted() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.reload() // want `lock order violation in LSM.TransitiveInverted: lsm.LSM.refreshMu \(level 10\) acquired while lsm.LSM.mu \(level 20\) is held \(transitively through LSM.reload\)`
}

func (l *LSM) commit() {
	l.manifestMu.Lock()
	defer l.manifestMu.Unlock()
}

func (l *LSM) reload() {
	l.refreshMu.Lock()
	defer l.refreshMu.Unlock()
}

// EarlyReturn: a lock acquired (and defer-unlocked) inside a branch that
// returns is not held by the statements after the branch.
func (l *LSM) EarlyReturn(ok bool) int {
	if ok {
		l.mu.Lock()
		defer l.mu.Unlock()
		return 1
	}
	l.commit() // no finding: mu is not held on this path
	return 0
}

// Spawn: a goroutine body runs with its own (empty) lock state, and the
// spawner's held set does not flow into it.
func (l *LSM) Spawn() {
	l.mu.Lock()
	defer l.mu.Unlock()
	go func() {
		l.manifestMu.Lock()
		l.manifestMu.Unlock()
	}()
}

// Register passes commit as a value while holding mu: registration is not
// invocation, so no transitive edge.
func (l *LSM) Register(run func(func())) {
	l.mu.Lock()
	defer l.mu.Unlock()
	run(l.commit)
}

// regA/regB are undeclared lock classes acquired in both orders: a cycle
// even though no level is declared for them.
type regA struct{ mu sync.Mutex }
type regB struct{ mu sync.Mutex }

type pair struct {
	a regA
	b regB
}

func (p *pair) AB() {
	p.a.mu.Lock()
	defer p.a.mu.Unlock()
	p.b.mu.Lock() // want `lock-order cycle among \{lsm.regA.mu, lsm.regB.mu\}`
	p.b.mu.Unlock()
}

func (p *pair) BA() {
	p.b.mu.Lock()
	defer p.b.mu.Unlock()
	p.a.mu.Lock()
	p.a.mu.Unlock()
}
