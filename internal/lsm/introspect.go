package lsm

// This file implements live tree introspection for the /api/v1/lsmtree
// endpoint and `tuctl tree` (DESIGN.md §4.12): a consistent, read-locked
// snapshot of the per-level partition and table inventory, annotated with
// the manifest versions that currently anchor it. The snapshot copies only
// metadata (keys, bounds, sizes), never table data, so it is cheap enough
// to serve on every poll.

// TableInfo describes one live sstable.
type TableInfo struct {
	Key     string `json:"key"`
	Seq     uint64 `json:"seq"`
	Size    int64  `json:"size_bytes"`
	Entries uint64 `json:"entries"`
	Patch   bool   `json:"patch,omitempty"`
}

// PartitionInfo describes one time partition and its tables (patches
// inline, flagged).
type PartitionInfo struct {
	MinT   int64       `json:"min_t"`
	MaxT   int64       `json:"max_t"`
	Size   int64       `json:"size_bytes"`
	Busy   bool        `json:"busy,omitempty"` // claimed by an in-flight compaction
	Tables []TableInfo `json:"tables"`
}

// LevelInfo aggregates one LSM level.
type LevelInfo struct {
	Level      int             `json:"level"`
	Tier       string          `json:"tier"` // "fast" or "slow"
	Size       int64           `json:"size_bytes"`
	Tables     int             `json:"tables"`
	Partitions []PartitionInfo `json:"partitions"`
}

// TreeSnapshot is a point-in-time view of the whole tree.
type TreeSnapshot struct {
	R1                int64       `json:"r1"`
	R2                int64       `json:"r2"`
	MemBytes          int64       `json:"mem_bytes"`
	ImmQueue          int         `json:"imm_queue"`
	ManifestFast      uint64      `json:"manifest_fast"`
	ManifestSlow      uint64      `json:"manifest_slow"`
	ActiveCompactions int         `json:"active_compactions"`
	QueuedJobs        int         `json:"queued_jobs"`
	Levels            []LevelInfo `json:"levels"`
}

// Snapshot renders the live table inventory under a read lock.
func (l *LSM) Snapshot() TreeSnapshot {
	l.mu.RLock()
	defer l.mu.RUnlock()
	snap := TreeSnapshot{
		R1:                l.r1,
		R2:                l.r2,
		MemBytes:          l.mem.SizeBytes(),
		ImmQueue:          len(l.imm),
		ManifestFast:      l.mfFastVer.Load(),
		ManifestSlow:      l.mfSlowVer.Load(),
		ActiveCompactions: l.compActive,
		QueuedJobs:        len(l.jobs),
	}
	for _, m := range l.imm {
		snap.MemBytes += m.SizeBytes()
	}
	for lvl, parts := range [][]*partition{l.l0, l.l1, l.l2} {
		tier := "fast"
		if lvl == 2 {
			tier = "slow"
		}
		li := LevelInfo{Level: lvl, Tier: tier, Partitions: []PartitionInfo{}}
		for _, p := range parts {
			pi := PartitionInfo{MinT: p.minT, MaxT: p.maxT, Busy: l.busyParts[p]}
			add := func(h *tableHandle, patch bool) {
				pi.Tables = append(pi.Tables, TableInfo{
					Key:     h.storeKey,
					Seq:     h.seq,
					Size:    h.tbl.Size(),
					Entries: h.tbl.NumEntries(),
					Patch:   patch,
				})
				pi.Size += h.tbl.Size()
			}
			for i, h := range p.tables {
				add(h, false)
				if i < len(p.patches) {
					for _, ph := range p.patches[i] {
						add(ph, true)
					}
				}
			}
			li.Size += pi.Size
			li.Tables += len(pi.Tables)
			li.Partitions = append(li.Partitions, pi)
		}
		snap.Levels = append(snap.Levels, li)
	}
	return snap
}
