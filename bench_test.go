package timeunion_test

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"

	"timeunion/internal/bench"
	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/tsbs"
)

// Each benchmark regenerates one figure/table of the paper's evaluation at
// a reduced scale and reports the headline metrics. Run a single one with
//
//	go test -bench=BenchmarkFig14 -benchtime=1x
//
// or everything with `go test -bench=.`. For paper-scale runs use
// `go run ./cmd/tubench -exp <id> -hosts 32 -hours 24`.
func benchConfig() bench.Config {
	return bench.Config{
		HourMs:            6_000,
		Hosts:             2,
		SpanHours:         24,
		Seed:              2022,
		QueriesPerPattern: 1,
	}
}

func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range metrics {
			if v, ok := r.Values[m]; ok {
				b.ReportMetric(v, m)
			}
		}
	}
}

// BenchmarkFig1CloudStorage regenerates Figure 1 (storage pricing and
// read/write latency of the two tiers).
func BenchmarkFig1CloudStorage(b *testing.B) {
	runExperiment(b, "fig1", "read:4096:ratio", "price:ebs/s3")
}

// BenchmarkFig3TsdbMemory regenerates Figure 3 (tsdb resource usage).
func BenchmarkFig3TsdbMemory(b *testing.B) {
	runExperiment(b, "fig3", "breakdown:index", "breakdown:samples")
}

// BenchmarkFig4TsdbLevelDB regenerates Figure 4 (tsdb + LevelDB study).
func BenchmarkFig4TsdbLevelDB(b *testing.B) {
	runExperiment(b, "fig4", "tput:ratio", "tables/compaction")
}

// BenchmarkFig13EndToEnd regenerates Figure 13 (HTTP end-to-end vs Cortex).
func BenchmarkFig13EndToEnd(b *testing.B) {
	runExperiment(b, "fig13", "insert:TU-fast", "insert:Cortex")
}

// BenchmarkFig14StorageEngines regenerates Figure 14 (engine comparison,
// DevOps workload, all Table 2 query patterns).
func BenchmarkFig14StorageEngines(b *testing.B) {
	runExperiment(b, "fig14", "insert:TU", "insert:TU-Group", "insert:tsdb")
}

// BenchmarkFig15BigTimeseries regenerates Figure 15 (dense, long-span data
// with whole-span query patterns).
func BenchmarkFig15BigTimeseries(b *testing.B) {
	runExperiment(b, "fig15", "insert:TU", "insert:tsdb")
}

// BenchmarkFig16MemoryMonitoring regenerates Figure 16 (memory accounting
// during insertion).
func BenchmarkFig16MemoryMonitoring(b *testing.B) {
	runExperiment(b, "fig16", "mem:tsdb", "mem:TU", "mem:TU-Group")
}

// BenchmarkFig17EBSOnly regenerates Figure 17 (single-tier placement).
func BenchmarkFig17EBSOnly(b *testing.B) {
	runExperiment(b, "fig17", "insert:TU", "insert:tsdb")
}

// BenchmarkFig18aEBSLimits regenerates Figure 18a (fast-store budgets).
func BenchmarkFig18aEBSLimits(b *testing.B) {
	runExperiment(b, "fig18a")
}

// BenchmarkFig18bOutOfOrder regenerates Figure 18b (out-of-order volumes).
func BenchmarkFig18bOutOfOrder(b *testing.B) {
	runExperiment(b, "fig18b", "p20:patches")
}

// BenchmarkFig19DynamicSizeControl regenerates Figure 19 (Algorithm 1
// trace).
func BenchmarkFig19DynamicSizeControl(b *testing.B) {
	runExperiment(b, "fig19", "shrinks", "grows")
}

// BenchmarkTable3Sizes regenerates Table 3 (index and data sizes).
func BenchmarkTable3Sizes(b *testing.B) {
	runExperiment(b, "tab3", "index:tsdb", "index:TU", "index:TU-Group")
}

// BenchmarkQueryNarrowRange regenerates the streaming read-path experiment:
// a narrow query late in a partition, comparing decoded bytes and heap
// allocations of the iterator pipeline against the eager materializing path.
func BenchmarkQueryNarrowRange(b *testing.B) {
	runExperiment(b, "iter", "decoded:reduction-pct", "allocs:reduction-pct")
}

// --- Parallel query / append benchmarks ---

// disabledFaultStore wraps s in a FaultStore with injection switched off.
// The parallel benchmarks run through it so any fixed overhead of the fault
// layer on the hot path would show up as a regression here.
func disabledFaultStore(s cloud.Store) cloud.Store {
	fs := cloud.NewFaultStore(s, cloud.FaultConfig{Seed: 1})
	fs.SetEnabled(false)
	return fs
}

// parallelBenchDB loads a Fig 14-style DevOps workload into a DB whose
// tiers sleep real (scaled) Figure-1 latencies: the slow tier pays ~150µs
// per Get, so a multi-series query over hybrid tiers is I/O-latency-bound
// exactly like on the paper's AWS testbed. The segment cache is kept at one
// byte so repeat queries stay cold on the slow tier (the Fig 14 working set
// exceeds its cache; here the cache would otherwise absorb it).
func parallelBenchDB(b *testing.B) (*core.DB, []tsbs.Host, int64) {
	b.Helper()
	const timeScale = 100 // S3 Get 15ms -> 150µs, EBS Get 250µs -> 2.5µs
	fast := disabledFaultStore(cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(timeScale)))
	slow := disabledFaultStore(cloud.NewMemStore(cloud.TierObject, cloud.S3Model(timeScale)))
	const hourMs = 6_000
	db, err := core.Open(core.Options{
		Fast:              fast,
		Slow:              slow,
		CacheBytes:        1,
		ChunkSamples:      32,
		SlotsPerRegion:    2048,
		SlotSize:          512,
		MemTableSize:      256 << 10,
		L0PartitionLength: hourMs / 2,
		L2PartitionLength: hourMs * 2,
		BlockSize:         4096,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })

	hosts := tsbs.Hosts(2, 2022)
	ids := make([][]uint64, len(hosts))
	for hi, h := range hosts {
		ids[hi] = make([]uint64, tsbs.SeriesPerHost)
		for si := range ids[hi] {
			id, err := db.Append(h.SeriesLabels(si), 0, 0)
			if err != nil {
				b.Fatal(err)
			}
			ids[hi][si] = id
		}
	}
	interval := int64(hourMs / 120)
	span := int64(12) * hourMs
	gen := tsbs.NewGenerator(hosts, interval, interval, 2029)
	for round := 0; round < int(span/interval); round++ {
		t, vals := gen.Round()
		for hi := range vals {
			for si, v := range vals[hi] {
				if err := db.AppendFast(ids[hi][si], t, v); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	return db, hosts, span
}

// BenchmarkQueryParallel compares the serial query path against the
// 8-worker pool on the same DB and selector (all 101 series of one host
// over the full span, reaching both tiers), verifying the outputs are
// identical and reporting the wall-clock speedup.
func BenchmarkQueryParallel(b *testing.B) {
	db, hosts, span := parallelBenchDB(b)
	sel := labels.MustEqual("hostname", hosts[0].Hostname())
	ctx := context.Background()
	var serialNs, parNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		rs, err := db.QueryWorkers(ctx, 1, 0, span, sel)
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		rp, err := db.QueryWorkers(ctx, 8, 0, span, sel)
		if err != nil {
			b.Fatal(err)
		}
		t2 := time.Now()
		serialNs += t1.Sub(t0).Nanoseconds()
		parNs += t2.Sub(t1).Nanoseconds()
		if !reflect.DeepEqual(rs, rp) {
			b.Fatal("parallel query output differs from serial output")
		}
		if len(rs) != tsbs.SeriesPerHost {
			b.Fatalf("matched %d series, want %d", len(rs), tsbs.SeriesPerHost)
		}
	}
	b.ReportMetric(float64(serialNs)/float64(parNs), "speedup@8w")
	b.ReportMetric(float64(serialNs)/float64(b.N)/1e6, "serial-ms/query")
	b.ReportMetric(float64(parNs)/float64(b.N)/1e6, "parallel-ms/query")
}

// BenchmarkAppendFastParallel compares a serial fast-path append loop
// against 8 goroutines appending to disjoint series sets on one DB — the
// workload the striped head locks exist for.
func BenchmarkAppendFastParallel(b *testing.B) {
	const (
		goroutines    = 8
		seriesPerGoro = 32
		perIter       = goroutines * seriesPerGoro // samples per benchmark iteration
	)
	db, err := core.Open(core.Options{
		Fast:         disabledFaultStore(cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0))),
		Slow:         disabledFaultStore(cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0))),
		ChunkSamples: 32,
		MemTableSize: 4 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	ids := make([]uint64, goroutines*seriesPerGoro)
	for i := range ids {
		id, err := db.Append(labels.FromStrings("metric", "cpu", "series", string(rune('a'+i/26%26))+string(rune('a'+i%26)), "blk", string(rune('a'+i/676))), 0, 0)
		if err != nil {
			b.Fatal(err)
		}
		ids[i] = id
	}

	run := func(workers int, startT int64) time.Duration {
		t0 := time.Now()
		var wg sync.WaitGroup
		per := len(ids) / workers
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for n := 0; n < b.N; n++ {
					t := startT + int64(n)*10
					for s := w * per; s < (w+1)*per; s++ {
						if err := db.AppendFast(ids[s], t, float64(n)); err != nil {
							b.Error(err)
							return
						}
					}
				}
			}(w)
		}
		wg.Wait()
		return time.Since(t0)
	}

	b.ResetTimer()
	serial := run(1, 10)
	parallel := run(goroutines, int64(b.N)*10+20)
	b.StopTimer()
	total := float64(2 * b.N * perIter)
	b.ReportMetric(total/(serial+parallel).Seconds(), "samples/s")
	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup@8g")
}
