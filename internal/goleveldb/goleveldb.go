// Package goleveldb reimplements a classic LevelDB-style leveled LSM-tree
// (paper §2.3), the baseline storage engine behind the paper's tsdb-LDB and
// TU-LDB systems and the Figure 4 integration study. Unlike TimeUnion's
// time-partitioned tree, levels here are bounded by *size*, level-(n+1) is
// 10x level-n, and a compaction must read and merge every overlapping
// SSTable in the next level — the behaviour whose cost Equations 7-8 model
// and whose slow-tier traffic the paper's TU-LDB comparison exposes.
//
// Levels 0..FastLevels-1 may live on a fast store with the rest on a slow
// store (TU-LDB keeps two levels on EBS), or everything on one store.
package goleveldb

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/memtable"
	"timeunion/internal/sstable"
)

// Options configures the tree.
type Options struct {
	// Store holds every level (or the slow levels when FastStore is set).
	Store cloud.Store
	// FastStore, if non-nil, holds levels 0..FastLevels-1.
	FastStore cloud.Store
	// FastLevels is how many top levels live on FastStore (default 2).
	FastLevels int
	// Cache is the shared block cache for slow-tier reads.
	Cache *cloud.LRUCache

	// MemTableSize rotates the memtable (LevelDB: 64 MB; scaled here).
	MemTableSize int64
	// MaxImmQueue bounds the immutable queue.
	MaxImmQueue int
	// L0CompactionTrigger compacts L0 when it holds this many tables
	// (LevelDB: 4).
	L0CompactionTrigger int
	// BaseLevelBytes is the level-1 size target; level n targets
	// BaseLevelBytes * Multiplier^(n-1).
	BaseLevelBytes int64
	// Multiplier is the level size ratio (LevelDB: 10).
	Multiplier int
	// MaxLevels bounds the tree depth (LevelDB: 7).
	MaxLevels int
	// TargetTableSize splits compaction outputs.
	TargetTableSize int
	// BlockSize is the SSTable block size.
	BlockSize int

	// MergeValues, if set, combines two values stored under the same key
	// (older, newer); nil means newer replaces older.
	MergeValues func(older, newer []byte) ([]byte, error)
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.MemTableSize <= 0 {
		opts.MemTableSize = 4 << 20
	}
	if opts.MaxImmQueue <= 0 {
		opts.MaxImmQueue = 4
	}
	if opts.L0CompactionTrigger <= 0 {
		opts.L0CompactionTrigger = 4
	}
	if opts.BaseLevelBytes <= 0 {
		opts.BaseLevelBytes = 8 << 20
	}
	if opts.Multiplier <= 0 {
		opts.Multiplier = 10
	}
	if opts.MaxLevels <= 0 {
		opts.MaxLevels = 7
	}
	if opts.TargetTableSize <= 0 {
		opts.TargetTableSize = 2 << 20
	}
	if opts.FastLevels <= 0 {
		opts.FastLevels = 2
	}
	return opts
}

// table is one SSTable handle.
type table struct {
	tbl      *sstable.Table
	store    cloud.Store
	storeKey string
	seq      uint64 // creation order: larger = newer

	refs     atomic.Int32
	obsolete atomic.Bool
}

func (t *table) retain() { t.refs.Add(1) }

func (t *table) release() {
	if t.refs.Add(-1) == 0 && t.obsolete.Load() {
		_ = t.store.Delete(t.storeKey)
	}
}

func (t *table) markObsolete() {
	t.obsolete.Store(true)
	t.release()
}

// Stats counts background activity (the Figure 4 measurements).
type Stats struct {
	Flushes         uint64
	Compactions     uint64
	TablesRead      uint64 // total input tables across compactions
	BytesCompacted  uint64 // bytes written by compactions
	CompactionTime  time.Duration
	MaxDepthReached int
}

// DB is the leveled LSM. Safe for concurrent use.
type DB struct {
	opts Options

	mu     sync.RWMutex
	mem    *memtable.MemTable
	imm    []*memtable.MemTable
	levels [][]*table // levels[0] ordered by creation; deeper levels sorted by first key, disjoint

	fileSeq atomic.Uint64

	flushCond *sync.Cond
	idleCond  *sync.Cond
	working   bool
	closed    bool
	bgErr     error

	stats struct {
		flushes, compactions, tablesRead, bytesCompacted atomic.Uint64
		compactionNanos                                  atomic.Int64
		maxDepth                                         atomic.Int32
	}
}

// Open creates an empty tree (baseline engines are rebuilt per run).
func Open(opts Options) (*DB, error) {
	o := opts.withDefaults()
	if o.Store == nil {
		return nil, fmt.Errorf("goleveldb: Store is required")
	}
	db := &DB{
		opts:   o,
		mem:    memtable.New(),
		levels: make([][]*table, o.MaxLevels),
	}
	db.flushCond = sync.NewCond(&db.mu)
	db.idleCond = sync.NewCond(&db.mu)
	go db.backgroundLoop()
	return db, nil
}

// storeFor returns the store holding the given level.
func (db *DB) storeFor(level int) cloud.Store {
	if db.opts.FastStore != nil && level < db.opts.FastLevels {
		return db.opts.FastStore
	}
	return db.opts.Store
}

func (db *DB) cacheFor(store cloud.Store) *cloud.LRUCache {
	if store.Tier() == cloud.TierObject {
		return db.opts.Cache
	}
	return nil
}

// Put inserts a key-value pair.
func (db *DB) Put(key, value []byte) error {
	db.mu.Lock()
	for len(db.imm) >= db.opts.MaxImmQueue && db.bgErr == nil && !db.closed {
		db.idleCond.Wait()
	}
	if db.closed {
		db.mu.Unlock()
		return fmt.Errorf("goleveldb: closed")
	}
	if err := db.bgErr; err != nil {
		db.mu.Unlock()
		return fmt.Errorf("goleveldb: background worker failed: %w", err)
	}
	if db.opts.MergeValues != nil {
		if old, ok := db.mem.Get(key); ok {
			merged, err := db.opts.MergeValues(old, value)
			if err != nil {
				db.mu.Unlock()
				return err
			}
			value = merged
		}
	}
	db.mem.Put(key, value)
	if db.mem.SizeBytes() >= db.opts.MemTableSize {
		db.rotateLocked()
	}
	db.mu.Unlock()
	return nil
}

func (db *DB) rotateLocked() {
	if db.mem.Len() == 0 {
		return
	}
	db.imm = append(db.imm, db.mem)
	db.mem = memtable.New()
	db.flushCond.Signal()
}

// Get returns the newest value for key.
func (db *DB) Get(key []byte) ([]byte, bool, error) {
	db.mu.RLock()
	if v, ok := db.mem.Get(key); ok {
		db.mu.RUnlock()
		return v, true, nil
	}
	for i := len(db.imm) - 1; i >= 0; i-- {
		if v, ok := db.imm[i].Get(key); ok {
			db.mu.RUnlock()
			return v, true, nil
		}
	}
	var candidates []*table
	// L0 newest first, then deeper levels.
	for i := len(db.levels[0]) - 1; i >= 0; i-- {
		candidates = append(candidates, db.levels[0][i])
	}
	for _, lvl := range db.levels[1:] {
		for _, t := range lvl {
			if bytes.Compare(t.tbl.FirstKey(), key) <= 0 && bytes.Compare(key, t.tbl.LastKey()) <= 0 {
				candidates = append(candidates, t)
			}
		}
	}
	for _, t := range candidates {
		t.retain()
	}
	db.mu.RUnlock()

	defer func() {
		for _, t := range candidates {
			t.release()
		}
	}()
	for _, t := range candidates {
		v, ok, err := t.tbl.Get(key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			return v, true, nil
		}
	}
	return nil, false, nil
}

// Entry is one scanned key-value with its source recency. Multiple entries
// may share a key (versions from different levels); larger Seq is newer.
type Entry struct {
	Key   []byte
	Value []byte
	// Seq is a synthetic recency rank: deeper levels hold older data than
	// shallower ones (compaction only moves data down), level-0 tables
	// order by creation, and memtables are newest of all. Note a table's
	// creation sequence alone is NOT a recency signal — a compaction
	// output is a new table holding old data.
	Seq uint64
}

// Scan returns every entry with start <= key < end from all sources,
// including duplicate keys from different levels, ordered by (key, Seq).
func (db *DB) Scan(start, end []byte) ([]Entry, error) {
	type src struct {
		t    *table
		rank uint64
	}
	db.mu.RLock()
	mems := append([]*memtable.MemTable(nil), db.imm...)
	mems = append(mems, db.mem)
	var sources []src
	// Rank layout: level L tables get band (MaxLevels - L); inside the
	// L0 band, creation order breaks ties. Memtables rank above all.
	const band = uint64(1) << 32
	for lvlIdx, lvl := range db.levels {
		for _, t := range lvl {
			if end != nil && bytes.Compare(t.tbl.FirstKey(), end) >= 0 {
				continue
			}
			if start != nil && bytes.Compare(t.tbl.LastKey(), start) < 0 {
				continue
			}
			t.retain()
			rank := uint64(len(db.levels)-lvlIdx) * band
			if lvlIdx == 0 {
				rank += t.seq
			}
			sources = append(sources, src{t: t, rank: rank})
		}
	}
	db.mu.RUnlock()

	memRank := uint64(len(db.levels)+2) * band
	var out []Entry
	var firstErr error
	for _, s := range sources {
		if firstErr == nil {
			it := s.t.tbl.Iter(start, end)
			for it.Next() {
				out = append(out, Entry{
					Key:   append([]byte(nil), it.Key()...),
					Value: append([]byte(nil), it.Value()...),
					Seq:   s.rank,
				})
			}
			if err := it.Err(); err != nil {
				firstErr = err
			}
			it.Release()
		}
		s.t.release()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	for i, m := range mems {
		it := m.Iter(start, end)
		for it.Next() {
			out = append(out, Entry{
				Key:   append([]byte(nil), it.Key()...),
				Value: append([]byte(nil), it.Value()...),
				Seq:   memRank + uint64(i),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := bytes.Compare(out[i].Key, out[j].Key); c != 0 {
			return c < 0
		}
		return out[i].Seq < out[j].Seq
	})
	return out, nil
}

// Flush forces the memtable down and waits for idle.
func (db *DB) Flush() error {
	db.mu.Lock()
	db.rotateLocked()
	db.mu.Unlock()
	return db.WaitIdle()
}

// WaitIdle blocks until background work drains.
func (db *DB) WaitIdle() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for (len(db.imm) > 0 || db.working) && db.bgErr == nil && !db.closed {
		db.idleCond.Wait()
	}
	return db.bgErr
}

// Close flushes and stops the worker.
func (db *DB) Close() error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil
	}
	db.rotateLocked()
	db.mu.Unlock()
	err := db.WaitIdle()
	db.mu.Lock()
	db.closed = true
	db.flushCond.Broadcast()
	db.idleCond.Broadcast()
	db.mu.Unlock()
	return err
}

// Stats returns activity counters.
func (db *DB) Stats() Stats {
	return Stats{
		Flushes:         db.stats.flushes.Load(),
		Compactions:     db.stats.compactions.Load(),
		TablesRead:      db.stats.tablesRead.Load(),
		BytesCompacted:  db.stats.bytesCompacted.Load(),
		CompactionTime:  time.Duration(db.stats.compactionNanos.Load()),
		MaxDepthReached: int(db.stats.maxDepth.Load()),
	}
}

// LevelSizes returns per-level byte totals.
func (db *DB) LevelSizes() []int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]int64, len(db.levels))
	for i, lvl := range db.levels {
		for _, t := range lvl {
			out[i] += t.tbl.Size()
		}
	}
	return out
}

// MemBytes returns buffered memtable payload.
func (db *DB) MemBytes() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := db.mem.SizeBytes()
	for _, m := range db.imm {
		n += m.SizeBytes()
	}
	return n
}
