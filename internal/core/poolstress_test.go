package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
)

// This file stress-tests the pooling contract under concurrency: many
// QuerySeriesSet streams drain at once while released sample buffers are
// poisoned and cached segments are checksummed. A pooled buffer recycled
// while another query still reads it shows up as a poison sentinel in that
// query's output (or as a plain mismatch); a decoder writing through a
// zero-copy cache block trips the checksum panic. Run under -race by
// `make race`.

// drainChecked drains one series set, failing on any poison sentinel and
// comparing against want. Goroutine-safe: returns errors instead of
// t.Fatal.
func drainChecked(db *DB, mint, maxt int64, ms []*labels.Matcher, want []Series) error {
	set, err := db.QuerySeriesSet(context.Background(), mint, maxt, ms...)
	if err != nil {
		return err
	}
	var got []Series
	for set.Next() {
		e := set.At()
		var samples []lsm.SamplePair
		for e.Iterator.Next() {
			t, v := e.Iterator.At()
			if t == chunkenc.PoisonT || chunkenc.IsPoisonV(v) {
				return fmt.Errorf("series %v: poisoned sample (t=%d): pooled buffer recycled while in use", e.Labels, t)
			}
			samples = append(samples, lsm.SamplePair{T: t, V: v})
		}
		if err := e.Iterator.Err(); err != nil {
			return err
		}
		got = append(got, Series{Labels: e.Labels, Samples: samples})
	}
	if err := set.Err(); err != nil {
		return err
	}
	sortSeries(got)
	if len(got) != len(want) {
		return fmt.Errorf("%d series, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Labels.Compare(want[i].Labels) != 0 {
			return fmt.Errorf("series %d: labels %v, want %v", i, got[i].Labels, want[i].Labels)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			return fmt.Errorf("series %v: %d samples, want %d", got[i].Labels, len(got[i].Samples), len(want[i].Samples))
		}
		for j := range want[i].Samples {
			if got[i].Samples[j] != want[i].Samples[j] {
				return fmt.Errorf("series %v sample %d: %v, want %v", got[i].Labels, j, got[i].Samples[j], want[i].Samples[j])
			}
		}
	}
	return nil
}

// TestConcurrentSeriesSetNoBleed runs many concurrent streaming queries
// over a frozen DB with buffer poisoning and cache integrity checks on,
// asserting every stream sees exactly the single-threaded answer and never
// a recycled buffer's contents.
func TestConcurrentSeriesSetNoBleed(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260807))
	db := openTestDB(t, testOpts(t.TempDir()))
	maxT := loadRandomWorkload(t, db, rnd, 800)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}

	sel := func(typ labels.MatchType, n, v string) *labels.Matcher {
		m, err := labels.NewMatcher(typ, n, v)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	type combo struct {
		ms         []*labels.Matcher
		mint, maxt int64
		want       []Series
	}
	combos := []combo{
		{ms: []*labels.Matcher{sel(labels.MatchRegexp, "metric", ".+")}, mint: 0, maxt: maxT + 100},
		{ms: []*labels.Matcher{sel(labels.MatchEqual, "metric", "cpu")}, mint: maxT / 3, maxt: 2 * maxT / 3},
		{ms: []*labels.Matcher{sel(labels.MatchEqual, "host", "g1")}, mint: 0, maxt: maxT},
		{ms: []*labels.Matcher{sel(labels.MatchNotEqual, "host", "h0")}, mint: maxT - maxT/10, maxt: maxT},
	}
	// References come from the legacy materializing path, which shares no
	// pools with the pipeline under test.
	for i := range combos {
		combos[i].want = legacyQuery(t, db, combos[i].mint, combos[i].maxt, combos[i].ms...)
	}

	chunkenc.SetPoolPoison(true)
	defer chunkenc.SetPoolPoison(false)
	cloud.SetIntegrityChecks(true)
	defer cloud.SetIntegrityChecks(false)

	const goroutines = 8
	const iters = 30
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c := combos[(g+i)%len(combos)]
				if err := drainChecked(db, c.mint, c.maxt, c.ms, c.want); err != nil {
					errc <- fmt.Errorf("goroutine %d iter %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestReleasedIteratorPoisonInvisible pins the release-on-advance contract
// from the consumer side: after the set advances past an entry, the
// previous entry's buffers may be poisoned and recycled, but samples read
// before advancing are the caller's own copies and stay intact.
func TestReleasedIteratorPoisonInvisible(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	db := openTestDB(t, testOpts(t.TempDir()))
	maxT := loadRandomWorkload(t, db, rnd, 300)
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	chunkenc.SetPoolPoison(true)
	defer chunkenc.SetPoolPoison(false)

	m, err := labels.NewMatcher(labels.MatchRegexp, "metric", ".+")
	if err != nil {
		t.Fatal(err)
	}
	want := legacyQuery(t, db, 0, maxT+100, m)
	set, err := db.QuerySeriesSet(context.Background(), 0, maxT+100, m)
	if err != nil {
		t.Fatal(err)
	}
	var got []Series
	for set.Next() {
		e := set.At()
		samples, err := drainPairs(e.Iterator)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, Series{Labels: e.Labels, Samples: samples})
	}
	if err := set.Err(); err != nil {
		t.Fatal(err)
	}
	// Every entry's iterator has been released (and poisoned) by now; the
	// drained copies must still equal the reference.
	sortSeries(got)
	compareSeries(t, "post-release", got, want)
	for _, s := range got {
		for _, p := range s.Samples {
			if p.T == chunkenc.PoisonT || chunkenc.IsPoisonV(p.V) {
				t.Fatalf("series %v holds a poison sentinel: drained copies alias a pooled buffer", s.Labels)
			}
		}
	}
}
