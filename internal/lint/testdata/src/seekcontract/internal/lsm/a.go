// Package lsm is outside internal/chunkenc, so even a complete
// SampleIterator implementation may not declare Seek(int64) bool here —
// it would widen the go vet stdmethods exemption.
package lsm

type leaked struct{}

func (l *leaked) Next() bool { return false }

func (l *leaked) Seek(t int64) bool { return false } // want "outside internal/chunkenc"

func (l *leaked) At() (int64, float64) { return 0, 0 }
func (l *leaked) Err() error           { return nil }

// ioSeeker matches io.Seeker, not the sample contract: no findings (and
// full go vet would be satisfied too).
type ioSeeker struct{}

func (s *ioSeeker) Seek(offset int64, whence int) (int64, error) { return 0, nil }
