package head

import (
	"timeunion/internal/index"
	"timeunion/internal/labels"
)

// This file implements direct catalog definition: installing a
// series/group/member with a caller-assigned ID, without WAL logging or
// ID allocation. Two callers share it — WAL replay (recover.go), which
// re-installs the definitions the log recorded, and a read replica's
// catalog refresh (core), which installs the definitions the writer
// published to shared storage. All three methods are idempotent: an
// already-known ID is a no-op, so refresh can re-apply a whole catalog.

// DefineSeries installs a series definition under an explicit ID. The ID
// allocator advances past it so a later local allocation cannot collide.
func (h *Head) DefineSeries(id uint64, ls labels.Labels) error {
	h.cat.mu.Lock()
	defer h.cat.mu.Unlock()
	if _, ok := h.lookupSeries(id); ok {
		return nil
	}
	s := &MemSeries{ID: id, Labels: ls}
	if err := h.idx.Add(id, s.Labels); err != nil {
		return err
	}
	st := h.stripeFor(id)
	st.mu.Lock()
	st.series[id] = s
	st.mu.Unlock()
	h.cat.byKey[s.Labels.Key()] = id
	if id > h.cat.nextSeries {
		h.cat.nextSeries = id
	}
	return nil
}

// DefineGroup installs a group definition under an explicit group ID
// (which carries index.GroupIDFlag).
func (h *Head) DefineGroup(gid uint64, groupTags labels.Labels) error {
	h.cat.mu.Lock()
	defer h.cat.mu.Unlock()
	if _, ok := h.lookupGroup(gid); ok {
		return nil
	}
	g := &MemGroup{
		GID:         gid,
		GroupTags:   groupTags,
		memberByKey: make(map[string]int),
	}
	if err := h.idx.Add(gid, g.GroupTags); err != nil {
		return err
	}
	st := h.stripeFor(gid)
	st.mu.Lock()
	st.groups[gid] = g
	st.mu.Unlock()
	h.cat.groupByKey[g.GroupTags.Key()] = gid
	if n := gid &^ index.GroupIDFlag; n > h.cat.nextGroup {
		h.cat.nextGroup = n
	}
	return nil
}

// DefineGroupMember installs one member slot of an existing group. It
// reports ok=false when the group is unknown (the caller decides whether
// that is an orphan record to drop or an ordering bug).
func (h *Head) DefineGroupMember(gid uint64, slot uint32, unique labels.Labels) (bool, error) {
	g, ok := h.lookupGroup(gid)
	if !ok {
		return false, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for int(slot) > len(g.members) {
		// Defensive: slots arrive in order, but tolerate gaps.
		g.members = append(g.members, groupMember{})
	}
	if int(slot) == len(g.members) {
		g.members = append(g.members, groupMember{unique: unique})
		g.memberByKey[unique.Key()] = int(slot)
		return true, h.idx.Add(gid, unique)
	}
	return true, nil // already known
}

// CatalogDef is one exported catalog record, in definition-dependency
// order when produced by CatalogSnapshot (groups before their members).
type CatalogDef struct {
	// Kind is "series", "group", or "member".
	Kind string
	// ID is the series ID or group ID.
	ID uint64
	// Slot is the member slot (member records only).
	Slot uint32
	// Labels are the series tags, group shared tags, or member unique
	// tags, by Kind.
	Labels labels.Labels
}

// CatalogSnapshot exports every series/group/member definition, ordered so
// that replaying the records with the Define* methods reconstructs the
// catalog: series and groups first (any order), then members in slot
// order. The snapshot holds the catalog lock, so it is consistent with
// respect to concurrent creations.
func (h *Head) CatalogSnapshot() []CatalogDef {
	h.cat.mu.Lock()
	defer h.cat.mu.Unlock()
	var out []CatalogDef
	var members []CatalogDef
	for i := range h.stripes {
		st := &h.stripes[i]
		st.mu.RLock()
		for id, s := range st.series {
			out = append(out, CatalogDef{Kind: "series", ID: id, Labels: s.Labels})
		}
		for gid, g := range st.groups {
			g.mu.Lock()
			out = append(out, CatalogDef{Kind: "group", ID: gid, Labels: g.GroupTags})
			for slot, m := range g.members {
				members = append(members, CatalogDef{Kind: "member", ID: gid, Slot: uint32(slot), Labels: m.unique})
			}
			g.mu.Unlock()
		}
		st.mu.RUnlock()
	}
	return append(out, members...)
}
