package remote

import (
	"fmt"
	"sync/atomic"
)

// Fanout spreads queries across a set of read replicas (DESIGN.md §4.13):
// round-robin for load balancing, with failover to the next replica when
// one is unreachable. All replicas serve the same shared-storage table
// set, so any of them can answer any query (within the refresh staleness
// window); a replica that fails mid-stream is NOT retried — partial
// results may already have been delivered to fn — so mid-stream errors
// surface to the caller.
type Fanout struct {
	replicas []*Client
	next     atomic.Uint64

	// failovers counts queries that succeeded only after skipping at
	// least one dead replica.
	failovers atomic.Uint64
}

// NewFanout builds a fan-out over the given replica clients.
func NewFanout(replicas ...*Client) *Fanout {
	return &Fanout{replicas: replicas}
}

// Failovers returns how many queries needed to skip a dead replica.
func (f *Fanout) Failovers() uint64 { return f.failovers.Load() }

// Query evaluates the request on the next replica in rotation, failing
// over through the whole set before giving up. The materialized endpoint
// is transactional per replica, so failover is always safe here.
func (f *Fanout) Query(req QueryRequest) (QueryResponse, error) {
	if len(f.replicas) == 0 {
		return QueryResponse{}, fmt.Errorf("remote: fanout has no replicas")
	}
	start := f.next.Add(1) - 1
	var lastErr error
	for i := 0; i < len(f.replicas); i++ {
		c := f.replicas[(start+uint64(i))%uint64(len(f.replicas))]
		resp, err := c.Query(req)
		if err == nil {
			if i > 0 {
				f.failovers.Add(1)
			}
			return resp, nil
		}
		lastErr = err
	}
	return QueryResponse{}, fmt.Errorf("remote: all %d replicas failed: %w", len(f.replicas), lastErr)
}

// QueryStream evaluates the request on the next replica in rotation via
// the streaming endpoint. Failover happens only before the first series
// reaches fn (connection refused, non-200): once data is flowing a
// failure is returned as-is, because re-running the query elsewhere would
// deliver duplicate series to fn.
func (f *Fanout) QueryStream(req QueryRequest, fn func(QuerySeries) error) error {
	if len(f.replicas) == 0 {
		return fmt.Errorf("remote: fanout has no replicas")
	}
	start := f.next.Add(1) - 1
	var lastErr error
	for i := 0; i < len(f.replicas); i++ {
		c := f.replicas[(start+uint64(i))%uint64(len(f.replicas))]
		delivered := false
		err := c.QueryStream(req, func(qs QuerySeries) error {
			delivered = true
			return fn(qs)
		})
		if err == nil {
			if i > 0 {
				f.failovers.Add(1)
			}
			return nil
		}
		if delivered {
			return err // mid-stream: retrying would duplicate series
		}
		lastErr = err
	}
	return fmt.Errorf("remote: all %d replicas failed: %w", len(f.replicas), lastErr)
}
