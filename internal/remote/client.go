package remote

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client talks to a remote server over HTTP.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client for the given base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTP: http.DefaultClient}
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("remote: %s: %s: %s", path, r.Status, bytes.TrimSpace(msg))
	}
	if resp == nil {
		return nil
	}
	return json.NewDecoder(r.Body).Decode(resp)
}

// Write sends a slow-path batch and returns the assigned series IDs.
func (c *Client) Write(req WriteRequest) (WriteResponse, error) {
	var resp WriteResponse
	err := c.post("/api/v1/write", req, &resp)
	return resp, err
}

// WriteFast sends a fast-path batch.
func (c *Client) WriteFast(req FastWriteRequest) error {
	return c.post("/api/v1/write_fast", req, nil)
}

// WriteGroup sends group rounds and returns the group's ID and slots.
func (c *Client) WriteGroup(req GroupWriteRequest) (GroupWriteResponse, error) {
	var resp GroupWriteResponse
	err := c.post("/api/v1/write_group", req, &resp)
	return resp, err
}

// Query evaluates tag selectors remotely.
func (c *Client) Query(req QueryRequest) (QueryResponse, error) {
	var resp QueryResponse
	err := c.post("/api/v1/query", req, &resp)
	return resp, err
}

// QueryStream evaluates tag selectors via the NDJSON streaming endpoint,
// invoking fn for each series as its line arrives. Series come in the
// backend's evaluation order, not sorted by labels. A non-nil error from fn
// stops reading and is returned; a mid-stream backend failure arrives as a
// final error line and is returned the same way.
func (c *Client) QueryStream(req QueryRequest, fn func(QuerySeries) error) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	r, err := c.HTTP.Post(c.BaseURL+"/api/v1/query_stream", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(r.Body, 512))
		return fmt.Errorf("remote: /api/v1/query_stream: %s: %s", r.Status, bytes.TrimSpace(msg))
	}
	dec := json.NewDecoder(r.Body)
	for {
		// An error line has no labels, a series line has no error: decode
		// into both and disambiguate by which field is set.
		var line struct {
			QuerySeries
			Error string `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if line.Error != "" {
			return fmt.Errorf("remote: query_stream: %s", line.Error)
		}
		if err := fn(line.QuerySeries); err != nil {
			return err
		}
	}
}
