// Package trie implements a dynamic double-array trie with tail compression
// (paper §3.2, Figure 8), modelled on the cedar double-array trie TimeUnion
// derives its inverted index from. Keys are arbitrary byte strings mapped to
// non-negative int32 values.
//
// The trie is a finite-state machine over three arrays:
//
//   - Base: Base(s) is the offset of state s's children; a child with code c
//     lives at slot Base(s)+c and is verified by Check. A negative Base(s)
//     means s is a tail state: -Base(s) is an offset into Tail holding the
//     remaining key bytes and the value.
//   - Check: Check(t) is the parent slot of t (0 = free slot).
//   - Tail: suffixes of singleton branches, stored once instead of one state
//     per character.
//
// All three arrays live in dynamically expandable memory-mapped file arrays
// so that a huge index can be swapped by the OS instead of OOM-killing the
// process (paper: "each mmap file can handle one million slots; when more
// slots are needed, we create new mmap files").
package trie

import (
	"fmt"

	"timeunion/internal/xmmap"
)

const (
	// endCode is the sentinel child code terminating every key, so a key
	// that is a prefix of another key still has a unique terminal state.
	endCode = 1
	// codeOffset maps byte b to child code b+2 (codes 2..257).
	codeOffset = 2
	// maxCode is the largest child code.
	maxCode = 255 + codeOffset
	// rootState is the slot of the root (slot 0 is unused so that
	// Check==0 can mean "free").
	rootState = 1
)

func code(b byte) int { return int(b) + codeOffset }

// Options configures array geometry.
type Options struct {
	// Dir is where the mmap region files live; empty means anonymous
	// (heap-backed) regions.
	Dir string
	// SlotsPerRegion is the number of Base/Check slots per region file.
	// The paper uses one million; tests use small values to exercise
	// region growth. Zero means 1<<20.
	SlotsPerRegion int
}

// Trie is a mutable double-array trie. It is not safe for concurrent use;
// the index layer provides locking.
type Trie struct {
	base  *xmmap.Int32Array
	check *xmmap.Int32Array
	tail  *xmmap.ByteArray

	tailLen  int // high-water mark of used tail bytes (offset 0 reserved)
	numKeys  int
	baseHint int // monotonically advancing search start for findBase
}

// New creates an empty trie.
func New(opts Options) (*Trie, error) {
	spr := opts.SlotsPerRegion
	if spr == 0 {
		spr = 1 << 20
	}
	base, err := xmmap.OpenInt32Array(opts.Dir, "trie-base", spr)
	if err != nil {
		return nil, err
	}
	check, err := xmmap.OpenInt32Array(opts.Dir, "trie-check", spr)
	if err != nil {
		base.Close()
		return nil, err
	}
	tail, err := xmmap.OpenByteArray(opts.Dir, "trie-tail", spr)
	if err != nil {
		base.Close()
		check.Close()
		return nil, err
	}
	t := &Trie{base: base, check: check, tail: tail, tailLen: 1, baseHint: 1}
	if err := t.growStates(rootState + 1); err != nil {
		t.Close()
		return nil, err
	}
	t.check.Set(rootState, int32(rootState)) // root owns itself; never free
	return t, nil
}

// Close releases the backing arrays.
func (t *Trie) Close() error {
	var firstErr error
	for _, c := range []interface{ Close() error }{t.base, t.check, t.tail} {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Len returns the number of keys stored.
func (t *Trie) Len() int { return t.numKeys }

// SizeBytes returns the mapped size of all three arrays.
func (t *Trie) SizeBytes() int64 {
	return t.base.SizeBytes() + t.check.SizeBytes() + t.tail.SizeBytes()
}

// UsedBytes returns the touched footprint of the three arrays — the
// memory-cost figure of the Figure 16 / Table 3 comparisons (untouched
// mapped space is never resident).
func (t *Trie) UsedBytes() int64 {
	return t.base.UsedBytes() + t.check.UsedBytes() + t.tail.UsedBytes()
}

func (t *Trie) growStates(n int) error {
	if n <= t.base.Len() {
		return nil
	}
	if err := t.base.Grow(n); err != nil {
		return err
	}
	return t.check.Grow(n)
}

// --- tail records: [uvarint len][chars][4-byte little-endian value] ---

func (t *Trie) writeTail(chars []byte, value int32) (int, error) {
	pos := t.tailLen
	need := pos + uvarintLen(uint64(len(chars))) + len(chars) + 4
	if err := t.tail.Grow(need); err != nil {
		return 0, err
	}
	p := pos
	p = t.putUvarint(p, uint64(len(chars)))
	for _, c := range chars {
		t.tail.Set(p, c)
		p++
	}
	t.putValue(p, value)
	t.tailLen = p + 4
	return pos, nil
}

func (t *Trie) readTail(pos int) (chars []byte, valuePos int) {
	n, p := t.getUvarint(pos)
	chars = make([]byte, n)
	for i := range chars {
		chars[i] = t.tail.Get(p + i)
	}
	return chars, p + int(n)
}

func (t *Trie) putValue(pos int, v int32) {
	u := uint32(v)
	t.tail.Set(pos, byte(u))
	t.tail.Set(pos+1, byte(u>>8))
	t.tail.Set(pos+2, byte(u>>16))
	t.tail.Set(pos+3, byte(u>>24))
}

func (t *Trie) getValue(pos int) int32 {
	return int32(uint32(t.tail.Get(pos)) | uint32(t.tail.Get(pos+1))<<8 |
		uint32(t.tail.Get(pos+2))<<16 | uint32(t.tail.Get(pos+3))<<24)
}

func (t *Trie) putUvarint(pos int, v uint64) int {
	for v >= 0x80 {
		t.tail.Set(pos, byte(v)|0x80)
		v >>= 7
		pos++
	}
	t.tail.Set(pos, byte(v))
	return pos + 1
}

func (t *Trie) getUvarint(pos int) (uint64, int) {
	var v uint64
	var shift uint
	for {
		c := t.tail.Get(pos)
		pos++
		if c < 0x80 {
			return v | uint64(c)<<shift, pos
		}
		v |= uint64(c&0x7f) << shift
		shift += 7
	}
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// --- state helpers ---

func (t *Trie) childCodes(s int) []int {
	b := int(t.base.Get(s))
	if b <= 0 {
		return nil
	}
	var codes []int
	limit := t.base.Len()
	for c := endCode; c <= maxCode; c++ {
		slot := b + c
		if slot >= limit {
			break
		}
		if int(t.check.Get(slot)) == s {
			codes = append(codes, c)
		}
	}
	return codes
}

// findBase finds a base b such that slots b+c are free for every code in
// codes. The scan hint only advances, trading a little slack space for
// amortized O(1) placement (keys are never deleted from the trie).
func (t *Trie) findBase(codes []int) (int, error) {
	for b := t.baseHint; ; b++ {
		ok := true
		for _, c := range codes {
			slot := b + c
			if err := t.growStates(slot + 1); err != nil {
				return 0, err
			}
			if t.check.Get(slot) != 0 {
				ok = false
				break
			}
		}
		if ok {
			return b, nil
		}
	}
}

// relocate moves all existing children of s to a new base that also has
// room for newCode, leaving s itself in place.
func (t *Trie) relocate(s, newCode int) error {
	oldBase := int(t.base.Get(s))
	oldCodes := t.childCodes(s)
	all := append(append([]int(nil), oldCodes...), newCode)
	newBase, err := t.findBase(all)
	if err != nil {
		return err
	}
	for _, c := range oldCodes {
		oldSlot := oldBase + c
		newSlot := newBase + c
		t.base.Set(newSlot, t.base.Get(oldSlot))
		t.check.Set(newSlot, int32(s))
		// Re-parent grandchildren to the moved slot.
		if gb := int(t.base.Get(oldSlot)); gb > 0 {
			limit := t.base.Len()
			for gc := endCode; gc <= maxCode; gc++ {
				g := gb + gc
				if g >= limit {
					break
				}
				if int(t.check.Get(g)) == oldSlot {
					t.check.Set(g, int32(newSlot))
				}
			}
		}
		t.base.Set(oldSlot, 0)
		t.check.Set(oldSlot, 0)
	}
	t.base.Set(s, int32(newBase))
	return nil
}

// child returns the slot of s's child with code c, creating it if needed.
// A newly created child has base 0 (no children, not a tail yet).
func (t *Trie) child(s, c int, create bool) (int, bool, error) {
	b := int(t.base.Get(s))
	if b > 0 {
		slot := b + c
		if slot < t.base.Len() && int(t.check.Get(slot)) == s {
			return slot, false, nil
		}
		if !create {
			return 0, false, nil
		}
		if slot < t.base.Len() && t.check.Get(slot) == 0 {
			t.check.Set(slot, int32(s))
			return slot, true, nil
		}
		if slot >= t.base.Len() {
			if err := t.growStates(slot + 1); err != nil {
				return 0, false, err
			}
			if t.check.Get(slot) == 0 {
				t.check.Set(slot, int32(s))
				return slot, true, nil
			}
		}
		// Conflict: another parent owns the slot. Move s's children.
		if err := t.relocate(s, c); err != nil {
			return 0, false, err
		}
		slot = int(t.base.Get(s)) + c
		t.check.Set(slot, int32(s))
		return slot, true, nil
	}
	if !create {
		return 0, false, nil
	}
	// First child of s: pick a base.
	nb, err := t.findBase([]int{c})
	if err != nil {
		return 0, false, err
	}
	t.base.Set(s, int32(nb))
	slot := nb + c
	t.check.Set(slot, int32(s))
	return slot, true, nil
}

// Insert stores value under key, replacing any existing value. It returns
// the previous value and whether the key already existed.
func (t *Trie) Insert(key []byte, value int32) (int32, bool, error) {
	if value < 0 {
		return 0, false, fmt.Errorf("trie: negative value %d", value)
	}
	s := rootState
	for i := 0; i < len(key); i++ {
		if int(t.base.Get(s)) < 0 {
			return t.splitTail(s, key[i:], value)
		}
		slot, created, err := t.child(s, code(key[i]), true)
		if err != nil {
			return 0, false, err
		}
		if created {
			// Fresh branch: put the rest of the key in a tail.
			pos, err := t.writeTail(key[i+1:], value)
			if err != nil {
				return 0, false, err
			}
			t.base.Set(slot, int32(-pos))
			t.numKeys++
			return 0, false, nil
		}
		s = slot
	}
	// Key bytes consumed.
	if int(t.base.Get(s)) < 0 {
		return t.splitTail(s, nil, value)
	}
	slot, created, err := t.child(s, endCode, true)
	if err != nil {
		return 0, false, err
	}
	if created {
		pos, err := t.writeTail(nil, value)
		if err != nil {
			return 0, false, err
		}
		t.base.Set(slot, int32(-pos))
		t.numKeys++
		return 0, false, nil
	}
	// Existing end node: its tail must be empty; update the value.
	pos := -int(t.base.Get(slot))
	_, vpos := t.readTail(pos)
	old := t.getValue(vpos)
	t.putValue(vpos, value)
	return old, true, nil
}

// splitTail handles insertion when the walk reaches a tail state s whose
// stored suffix may diverge from the remaining key bytes.
func (t *Trie) splitTail(s int, rest []byte, value int32) (int32, bool, error) {
	pos := -int(t.base.Get(s))
	chars, vpos := t.readTail(pos)
	oldValue := t.getValue(vpos)

	// Common prefix length of rest and chars.
	n := 0
	for n < len(rest) && n < len(chars) && rest[n] == chars[n] {
		n++
	}
	if n == len(rest) && n == len(chars) {
		// Same key: replace value in place.
		t.putValue(vpos, value)
		return oldValue, true, nil
	}

	// Turn s into an internal node chain for the common prefix.
	t.base.Set(s, 0)
	cur := s
	for i := 0; i < n; i++ {
		slot, _, err := t.child(cur, code(chars[i]), true)
		if err != nil {
			return 0, false, err
		}
		cur = slot
	}
	// Branch for the old tail's continuation.
	oldCode := endCode
	var oldRest []byte
	if n < len(chars) {
		oldCode = code(chars[n])
		oldRest = chars[n+1:]
	}
	oldSlot, _, err := t.child(cur, oldCode, true)
	if err != nil {
		return 0, false, err
	}
	oldPos, err := t.writeTail(oldRest, oldValue)
	if err != nil {
		return 0, false, err
	}
	t.base.Set(oldSlot, int32(-oldPos))

	// Branch for the new key's continuation.
	newCode := endCode
	var newRest []byte
	if n < len(rest) {
		newCode = code(rest[n])
		newRest = rest[n+1:]
	}
	newSlot, _, err := t.child(cur, newCode, true)
	if err != nil {
		return 0, false, err
	}
	newPos, err := t.writeTail(newRest, value)
	if err != nil {
		return 0, false, err
	}
	t.base.Set(newSlot, int32(-newPos))
	t.numKeys++
	return 0, false, nil
}

// Get returns the value stored under key.
func (t *Trie) Get(key []byte) (int32, bool) {
	s := rootState
	for i := 0; i < len(key); i++ {
		if int(t.base.Get(s)) < 0 {
			chars, vpos := t.readTail(-int(t.base.Get(s)))
			if bytesEqual(chars, key[i:]) {
				return t.getValue(vpos), true
			}
			return 0, false
		}
		slot, _, _ := t.child(s, code(key[i]), false)
		if slot == 0 {
			return 0, false
		}
		s = slot
	}
	if int(t.base.Get(s)) < 0 {
		chars, vpos := t.readTail(-int(t.base.Get(s)))
		if len(chars) == 0 {
			return t.getValue(vpos), true
		}
		return 0, false
	}
	slot, _, _ := t.child(s, endCode, false)
	if slot == 0 {
		return 0, false
	}
	chars, vpos := t.readTail(-int(t.base.Get(slot)))
	if len(chars) != 0 {
		return 0, false
	}
	return t.getValue(vpos), true
}

// IteratePrefix calls fn for every (key, value) whose key starts with
// prefix, in lexicographic key order. fn returning false stops iteration.
// This powers regex tag matching: all values of tag name X are enumerated
// by iterating prefix "X<sep>".
func (t *Trie) IteratePrefix(prefix []byte, fn func(key []byte, value int32) bool) {
	s := rootState
	for i := 0; i < len(prefix); i++ {
		if int(t.base.Get(s)) < 0 {
			chars, vpos := t.readTail(-int(t.base.Get(s)))
			if len(chars) >= len(prefix[i:]) && bytesEqual(chars[:len(prefix)-i], prefix[i:]) {
				full := append(append([]byte(nil), prefix[:i]...), chars...)
				fn(full, t.getValue(vpos))
			}
			return
		}
		slot, _, _ := t.child(s, code(prefix[i]), false)
		if slot == 0 {
			return
		}
		s = slot
	}
	buf := append([]byte(nil), prefix...)
	t.dfs(s, buf, fn)
}

// dfs walks the subtrie at s; buf holds the key bytes consumed so far.
func (t *Trie) dfs(s int, buf []byte, fn func(key []byte, value int32) bool) bool {
	b := int(t.base.Get(s))
	if b < 0 {
		chars, vpos := t.readTail(-b)
		key := append(append([]byte(nil), buf...), chars...)
		return fn(key, t.getValue(vpos))
	}
	if b == 0 {
		return true // freshly created node with no children (transient)
	}
	limit := t.base.Len()
	for c := endCode; c <= maxCode; c++ {
		slot := b + c
		if slot >= limit {
			break
		}
		if int(t.check.Get(slot)) != s {
			continue
		}
		if c == endCode {
			if !t.dfs(slot, buf, fn) {
				return false
			}
			continue
		}
		if !t.dfs(slot, append(buf, byte(c-codeOffset)), fn) {
			return false
		}
	}
	return true
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
