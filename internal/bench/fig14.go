package bench

import (
	"fmt"
	"math/rand"
	"time"

	"timeunion/internal/tsbs"
)

// engineEvalOptions parameterizes the shared storage-engine evaluation used
// by Figures 14 (hybrid, DevOps), 15 (big timeseries), 16 (memory
// monitoring), and 17 (EBS only).
type engineEvalOptions struct {
	id, title string
	engines   []string
	patterns  []tsbs.Pattern
	ebsOnly   bool
	// intervalDiv: samples every HourMs/intervalDiv (120 = "30s", 360 = "10s").
	intervalDiv int64
	spanHours   int
	memTrace    bool // record per-engine footprints during insertion
}

var allEngines = []string{"tsdb", "tsdb-LDB", "TU", "TU-Group", "TU-LDB"}

// runEngineEval loads the TSBS DevOps workload into each engine with
// fast-path insertion, then runs every query pattern, reporting insertion
// throughput, per-pattern median latency, and accounted memory.
func runEngineEval(cfg Config, o engineEvalOptions) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport(o.id, o.title)
	r.Header = []string{"engine", "metric", "value"}

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / o.intervalDiv
	span := int64(o.spanHours) * cfg.HourMs
	rounds := int(span / interval)

	for _, name := range o.engines {
		ec := newEngineConfig(cfg, hosts)
		ec.ebsOnly = o.ebsOnly
		e, err := buildEngine(ec, name)
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)

		// Insertion phase.
		samples := 0
		traceEvery := rounds / 8
		if traceEvery == 0 {
			traceEvery = 1
		}
		elapsed, err := e.stores().measure(func() error {
			for round := 0; round < rounds; round++ {
				t, vals := gen.Round()
				if err := e.insertRound(t, vals); err != nil {
					return err
				}
				samples += len(hosts) * tsbs.SeriesPerHost
				if o.memTrace && round%traceEvery == 0 {
					r.addRow(name, fmt.Sprintf("mem@round %d", round), fmtBytes(e.memory()))
					r.Values[fmt.Sprintf("memtrace:%s:%d", name, round)] = float64(e.memory())
				}
			}
			return e.flush()
		})
		if err != nil {
			e.close()
			return nil, fmt.Errorf("bench: %s insert: %w", name, err)
		}
		tput := float64(samples) / elapsed.Seconds()
		r.addRow(name, "insert tput", fmt.Sprintf("%.0f samples/s", tput))
		r.Values["insert:"+name] = tput
		r.addRow(name, "memory", fmtBytes(e.memory()))
		r.Values["mem:"+name] = float64(e.memory())

		// Query phase: median of QueriesPerPattern runs per pattern,
		// identical query seeds across engines.
		env := tsbs.QueryEnv{
			Hosts:   hosts,
			DataMin: 0,
			DataMax: span,
			HourMs:  cfg.HourMs,
		}
		for _, p := range o.patterns {
			rnd := rand.New(rand.NewSource(cfg.Seed + 1000))
			var durs []time.Duration
			for i := 0; i < cfg.QueriesPerPattern; i++ {
				q := tsbs.MakeQuery(p, env, rnd)
				d, err := e.stores().measure(func() error {
					_, _, err := e.query(q)
					return err
				})
				if err != nil {
					e.close()
					return nil, fmt.Errorf("bench: %s query %s: %w", name, p.Name, err)
				}
				durs = append(durs, d)
			}
			m := median(durs)
			r.addRow(name, "q:"+p.Name, fmtDur(m))
			r.Values[fmt.Sprintf("q:%s:%s", p.Name, name)] = m.Seconds()
		}
		r.setMetrics(name, e.metrics())
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Fig14 regenerates Figure 14: the storage-engine evaluation on DevOps
// timeseries (30s interval, 24h span) across tsdb, tsdb-LDB, TU, TU-Group,
// and TU-LDB, with all Table 2 query patterns.
func Fig14(cfg Config) (*Report, error) {
	rep, err := runEngineEval(cfg, engineEvalOptions{
		id:          "fig14",
		title:       "Storage-engine evaluation, DevOps timeseries (30s interval, 24h)",
		engines:     allEngines,
		patterns:    tsbs.Patterns,
		intervalDiv: 120,
		spanHours:   cfg.withDefaults().SpanHours,
	})
	if err != nil {
		return nil, err
	}
	rep.note("paper: TU inserts 24.8%%/13.2%% faster than tsdb/tsdb-LDB; TU-Group 2.4x TU; recent queries ~30-41%% faster on TU; long-range (x-1-24) orders of magnitude faster; TU-LDB worst on recent data")
	return rep, nil
}

// Fig15 regenerates Figure 15: big DevOps timeseries (10s interval, longer
// span) with the whole-span query patterns added.
func Fig15(cfg Config) (*Report, error) {
	c := cfg.withDefaults()
	span := c.SpanHours * 2 // "1-7 days": double the base span
	rep, err := runEngineEval(cfg, engineEvalOptions{
		id:          "fig15",
		title:       "Big DevOps timeseries (10s interval, extended span)",
		engines:     allEngines,
		patterns:    tsbs.ExtendedPatterns,
		intervalDiv: 360,
		spanHours:   span,
	})
	if err != nil {
		return nil, err
	}
	rep.note("paper: TU inserts 21%%/8.8%%/12.2x faster than tsdb/tsdb-LDB/TU-LDB; TU-Group 2.6x TU; 1-1-all: tsdb 3 orders, tsdb-LDB 9.8x, TU-Group 2.2x slower than TU")
	return rep, nil
}

// Fig16 regenerates Figure 16: memory usage monitoring — average accounted
// memory per engine plus a real-time trace during insertion.
func Fig16(cfg Config) (*Report, error) {
	rep, err := runEngineEval(cfg, engineEvalOptions{
		id:          "fig16",
		title:       "Memory usage monitoring",
		engines:     []string{"tsdb", "TU", "TU-Group"},
		patterns:    nil, // insertion-phase memory only
		intervalDiv: 120,
		spanHours:   cfg.withDefaults().SpanHours,
		memTrace:    true,
	})
	if err != nil {
		return nil, err
	}
	rep.note("paper: tsdb memory 2.6x/3.6x higher than TU/TU-Group on average; tsdb skyrockets to the cgroup limit while TU stays stable (mmap pages swappable)")
	return rep, nil
}

// Fig17 regenerates Figure 17: the EBS-only placement (slow tier disabled).
func Fig17(cfg Config) (*Report, error) {
	rep, err := runEngineEval(cfg, engineEvalOptions{
		id:          "fig17",
		title:       "Evaluation with only EBS",
		engines:     allEngines,
		patterns:    tsbs.Patterns,
		ebsOnly:     true,
		intervalDiv: 120,
		spanHours:   cfg.withDefaults().SpanHours,
	})
	if err != nil {
		return nil, err
	}
	rep.note("paper: TU inserts 28.8%%/34%% faster than tsdb/tsdb-LDB; TU-LDB only 19.4%% worse (compaction cheap on EBS); 1-1-24/5-1-24 4.9x/55.6%% slower on tsdb/tsdb-LDB; TU beats TU-Group on EBS (Eq 3 vs 5)")
	return rep, nil
}
