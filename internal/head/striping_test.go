package head

import (
	"fmt"
	"sync"
	"testing"

	"timeunion/internal/labels"
)

// TestParallelSeriesCreation races many goroutines creating the same label
// sets through the slow path. The striped maps and the catalog must agree:
// every goroutine resolves a given label set to one id, the head counts
// each series once, and the inverted index finds them all.
func TestParallelSeriesCreation(t *testing.T) {
	h, _ := newTestHead(t, nil)
	const (
		goroutines = 8
		numSeries  = 200
	)
	lsFor := func(i int) labels.Labels {
		return labels.FromStrings("metric", "cpu", "core", fmt.Sprintf("c%d", i))
	}

	got := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		got[g] = make([]uint64, numSeries)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < numSeries; i++ {
				id, err := h.Append(lsFor(i), int64(g+1), float64(g))
				if err != nil {
					t.Errorf("goroutine %d series %d: %v", g, i, err)
					return
				}
				got[g][i] = id
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// All goroutines agree on the id of every label set, and ids are unique
	// across label sets.
	seen := make(map[uint64]int, numSeries)
	for i := 0; i < numSeries; i++ {
		id := got[0][i]
		for g := 1; g < goroutines; g++ {
			if got[g][i] != id {
				t.Fatalf("series %d: goroutine 0 got id %d, goroutine %d got %d", i, id, g, got[g][i])
			}
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("series %d and %d share id %d", prev, i, id)
		}
		seen[id] = i
	}
	if n := h.NumSeries(); n != numSeries {
		t.Fatalf("NumSeries = %d, want %d", n, numSeries)
	}
	// Index and label lookups are consistent with the ids handed out.
	ids, err := h.Index().Select(labels.MustEqual("metric", "cpu"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != numSeries {
		t.Fatalf("index matched %d series, want %d", len(ids), numSeries)
	}
	for _, id := range ids {
		i, ok := seen[id]
		if !ok {
			t.Fatalf("index returned id %d that no goroutine created", id)
		}
		lbls, ok := h.SeriesLabels(id)
		if !ok || !lbls.Equal(lsFor(i)) {
			t.Fatalf("SeriesLabels(%d) = %v, %v; want %v", id, lbls, ok, lsFor(i))
		}
	}
}

// TestParallelGroupCreation is the group-model counterpart: concurrent
// AppendGroup calls on the same group tags must converge on one group id
// with a consistent member table.
func TestParallelGroupCreation(t *testing.T) {
	h, _ := newTestHead(t, nil)
	const (
		goroutines = 6
		numGroups  = 60
	)
	uniques := []labels.Labels{
		labels.FromStrings("m", "usage"), labels.FromStrings("m", "idle"),
	}
	gtags := func(i int) labels.Labels {
		return labels.FromStrings("host", fmt.Sprintf("h%d", i))
	}

	got := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		got[g] = make([]uint64, numGroups)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < numGroups; i++ {
				gid, slots, err := h.AppendGroup(gtags(i), uniques, int64(g+1), []float64{1, 2})
				if err != nil {
					t.Errorf("goroutine %d group %d: %v", g, i, err)
					return
				}
				if len(slots) != len(uniques) {
					t.Errorf("goroutine %d group %d: %d slots", g, i, len(slots))
					return
				}
				got[g][i] = gid
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for i := 0; i < numGroups; i++ {
		gid := got[0][i]
		for g := 1; g < goroutines; g++ {
			if got[g][i] != gid {
				t.Fatalf("group %d: goroutine 0 got gid %d, goroutine %d got %d", i, gid, g, got[g][i])
			}
		}
		rid, ok := h.ResolveGroup(gtags(i))
		if !ok || rid != gid {
			t.Fatalf("ResolveGroup(%v) = %d, %v; want %d", gtags(i), rid, ok, gid)
		}
		gl, members, ok := h.GroupInfo(gid)
		if !ok || !gl.Equal(gtags(i)) || len(members) != len(uniques) {
			t.Fatalf("GroupInfo(%d) = %v, %d members, %v", gid, gl, len(members), ok)
		}
	}
	if n := h.NumGroups(); n != numGroups {
		t.Fatalf("NumGroups = %d, want %d", n, numGroups)
	}
}
