package bench

import "fmt"

// Alloc is the allocation-regression experiment behind `make tier1-alloc`:
// it replays the iter experiment's narrow-range streaming query and compares
// live allocs/op and bytes/op against the numbers recorded in BENCH_iter.json
// before the pooling work landed. The comparison uses the benchstat-style
// CompareRuns helper — mean over ≥5 measurement runs, with a variance guard
// that flags the delta when the runs spread too wide to trust.
//
// The recorded baselines are workload-dependent: they hold for the default
// Config (8 hosts, 24 logical hours). Runs under other configs still emit a
// report, but the deltas only mean something at the default shape.

// Pre-pooling baselines, recorded by the iter experiment at the streaming
// read path's introduction (BENCH_iter.json, default Config).
const (
	baselineStreamAllocs = 2685.1
	baselineStreamBytes  = 191838.8
	baselineEagerAllocs  = 4196.1
)

// allocTargetPct is the acceptance bar: the pooled streaming path must cut
// allocs/op by at least this much against the pre-pooling baseline.
const allocTargetPct = 40.0

// Alloc measures the pooled streaming read path against the recorded
// pre-pooling baselines.
func Alloc(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("alloc", "Zero-allocation read path (before/after)")
	r.Header = []string{"metric", "before → after", "delta"}

	w, err := newIterWorkload(cfg)
	if err != nil {
		return nil, err
	}
	defer w.close()

	// The pooled path must still produce the eager pipeline's answer before
	// its allocation profile is worth reporting.
	eagerResult, _, _, err := eagerQuery(w.e.db, w.pstart, w.mint, w.maxt, w.sel)
	if err != nil {
		return nil, err
	}
	got, err := w.streaming()
	if err != nil {
		return nil, err
	}
	if err := sameSeries(got, eagerResult); err != nil {
		return nil, fmt.Errorf("bench: streaming/eager mismatch: %w", err)
	}

	// One more warm pass so the pools are primed: the steady state is what
	// a long-running server sees, and what the baseline numbers measured
	// (measureAllocs amortizes its warm-up across 20 iterations).
	if _, err := w.streaming(); err != nil {
		return nil, err
	}

	const runs = 7
	const itersPerRun = 10
	streamAllocs := make([]float64, 0, runs)
	streamBytes := make([]float64, 0, runs)
	eagerAllocs := make([]float64, 0, runs)
	for i := 0; i < runs; i++ {
		sa, err := measureAllocs(itersPerRun, func() error {
			_, err := w.streaming()
			return err
		})
		if err != nil {
			return nil, err
		}
		streamAllocs = append(streamAllocs, sa.AllocsPerOp)
		streamBytes = append(streamBytes, sa.BytesPerOp)
		ea, err := measureAllocs(itersPerRun, func() error {
			_, _, _, err := eagerQuery(w.e.db, w.pstart, w.mint, w.maxt, w.sel)
			return err
		})
		if err != nil {
			return nil, err
		}
		eagerAllocs = append(eagerAllocs, ea.AllocsPerOp)
	}

	cmpAllocs, err := CompareRuns(baselineStreamAllocs, streamAllocs, 0)
	if err != nil {
		return nil, err
	}
	cmpBytes, err := CompareRuns(baselineStreamBytes, streamBytes, 0)
	if err != nil {
		return nil, err
	}
	cmpEager, err := CompareRuns(baselineEagerAllocs, eagerAllocs, 0)
	if err != nil {
		return nil, err
	}

	r.addRow("streaming allocs/op", cmpAllocs.String(), fmt.Sprintf("%+.1f%%", cmpAllocs.DeltaPct))
	r.addRow("streaming bytes/op", cmpBytes.String(), fmt.Sprintf("%+.1f%%", cmpBytes.DeltaPct))
	r.addRow("eager allocs/op (untouched pipeline)", cmpEager.String(), fmt.Sprintf("%+.1f%%", cmpEager.DeltaPct))
	target := baselineStreamAllocs * (1 - allocTargetPct/100)
	met := "MET"
	if cmpAllocs.Live.Mean > target {
		met = "MISSED"
	}
	r.addRow("target", fmt.Sprintf("allocs/op ≤ %.0f (-%.0f%% vs pre-pooling)", target, allocTargetPct), met)

	r.setAlloc("streaming", AllocStat{AllocsPerOp: cmpAllocs.Live.Mean, BytesPerOp: cmpBytes.Live.Mean})
	r.setAlloc("eager", AllocStat{AllocsPerOp: cmpEager.Live.Mean})

	r.Values["runs"] = float64(cmpAllocs.Live.N)
	r.Values["allocs:baseline"] = baselineStreamAllocs
	r.Values["allocs:streaming"] = cmpAllocs.Live.Mean
	r.Values["allocs:streaming-stddev"] = cmpAllocs.Live.Stddev
	r.Values["allocs:delta-pct"] = cmpAllocs.DeltaPct
	r.Values["allocs:noisy"] = b2f(cmpAllocs.Noisy)
	r.Values["bytes:baseline"] = baselineStreamBytes
	r.Values["bytes:streaming"] = cmpBytes.Live.Mean
	r.Values["bytes:delta-pct"] = cmpBytes.DeltaPct
	r.Values["bytes:noisy"] = b2f(cmpBytes.Noisy)
	r.Values["allocs:eager"] = cmpEager.Live.Mean
	r.Values["allocs:eager-delta-pct"] = cmpEager.DeltaPct
	r.Values["target:allocs"] = target
	r.Values["target:met"] = b2f(cmpAllocs.Live.Mean <= target)

	r.note("streaming %s; bytes %s; %d runs x %d iters; baselines from BENCH_iter.json (pre-pooling, default config)",
		cmpAllocs, cmpBytes, runs, itersPerRun)
	if cfg != (Config{}.withDefaults()) {
		r.note("non-default config: deltas vs recorded baselines are not comparable")
	}
	return r, nil
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
