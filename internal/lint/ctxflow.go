package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces context propagation on the query path (DESIGN.md §4.5,
// §4.7): inside internal/{core,lsm,remote}, a function that already
// receives a context.Context must thread it downward — minting a fresh
// context.Background() or context.TODO() there severs cancellation and
// per-query tracing for everything below the call. Convenience wrappers
// that take no context (DB.Query) legitimately start at Background and are
// not flagged.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "functions receiving a context.Context must not mint context.Background()/TODO() (internal/{core,lsm,remote})",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if !pass.InScope("internal/core", "internal/lsm", "internal/remote") {
		return
	}
	pass.Inspect(func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasCtxParam(pass.Info, fd.Type) {
			return true
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := calleeFromPkg(pass.Info, call, "context"); ok && (name == "Background" || name == "TODO") {
				pass.Reportf(call.Pos(), "context.%s() inside %s, which already receives a context.Context; pass the caller's ctx so cancellation and tracing propagate", name, fd.Name.Name)
			}
			return true
		})
		return false
	})
}

// hasCtxParam reports whether the function type declares a parameter of
// type context.Context.
func hasCtxParam(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		named := derefNamed(info.TypeOf(field.Type))
		if named == nil {
			continue
		}
		obj := named.Obj()
		if obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context" {
			return true
		}
	}
	return false
}
