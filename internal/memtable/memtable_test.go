package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestPutGet(t *testing.T) {
	m := New()
	m.Put([]byte("b"), []byte("2"))
	m.Put([]byte("a"), []byte("1"))
	m.Put([]byte("c"), []byte("3"))
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, ok := m.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("Get(%s) = %q,%v", k, v, ok)
		}
	}
	if _, ok := m.Get([]byte("d")); ok {
		t.Fatal("phantom key")
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestOverwrite(t *testing.T) {
	m := New()
	m.Put([]byte("k"), []byte("old"))
	m.Put([]byte("k"), []byte("newer-value"))
	v, ok := m.Get([]byte("k"))
	if !ok || string(v) != "newer-value" {
		t.Fatalf("Get = %q", v)
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
	if m.SizeBytes() != int64(1+len("newer-value")) {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
}

func TestIterSorted(t *testing.T) {
	m := New()
	rnd := rand.New(rand.NewSource(1))
	keys := map[string]bool{}
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%06d", rnd.Intn(100000))
		keys[k] = true
		m.Put([]byte(k), []byte("v"))
	}
	var want []string
	for k := range keys {
		want = append(want, k)
	}
	sort.Strings(want)
	it := m.Iter(nil, nil)
	i := 0
	var last []byte
	for it.Next() {
		if last != nil && bytes.Compare(it.Key(), last) <= 0 {
			t.Fatal("iteration not strictly increasing")
		}
		if string(it.Key()) != want[i] {
			t.Fatalf("key %d = %s, want %s", i, it.Key(), want[i])
		}
		last = append(last[:0], it.Key()...)
		i++
	}
	if i != len(want) {
		t.Fatalf("iterated %d keys, want %d", i, len(want))
	}
}

func TestIterRange(t *testing.T) {
	m := New()
	for i := 0; i < 100; i++ {
		m.Put([]byte(fmt.Sprintf("k%03d", i)), []byte{byte(i)})
	}
	it := m.Iter([]byte("k010"), []byte("k020"))
	n := 0
	for it.Next() {
		if string(it.Key()) < "k010" || string(it.Key()) >= "k020" {
			t.Fatalf("out-of-range key %s", it.Key())
		}
		n++
	}
	if n != 10 {
		t.Fatalf("range scanned %d keys", n)
	}

	// Start beyond the end yields nothing.
	if m.Iter([]byte("z"), nil).Next() {
		t.Fatal("scan past end returned entries")
	}
	// Empty memtable.
	if New().Iter(nil, nil).Next() {
		t.Fatal("empty memtable iterated")
	}
}

func TestConcurrentPutGet(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := []byte(fmt.Sprintf("g%d-k%d", g, i))
				m.Put(k, k)
				if v, ok := m.Get(k); !ok || !bytes.Equal(v, k) {
					t.Errorf("Get(%s) failed", k)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if m.Len() != 8*500 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestSizeBytesTracksPayload(t *testing.T) {
	m := New()
	m.Put(make([]byte, 100), make([]byte, 900))
	if m.SizeBytes() != 1000 {
		t.Fatalf("SizeBytes = %d", m.SizeBytes())
	}
}
