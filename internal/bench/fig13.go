package bench

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/remote"
	"timeunion/internal/tsbs"
	"timeunion/internal/tsdb"
)

// Fig13 regenerates Figure 13: the end-to-end comparison over HTTP batch
// APIs. TU inserts with full tags per batch; TU-fast uses series IDs;
// TU-Group groups each host's 101 series; Cortex-sim is the tsdb engine
// behind the same API with an internal RPC hop per batch.
func Fig13(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("fig13", "End-to-end evaluation vs Cortex",
		"system", "metric", "value")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 60 // 60s interval, like §4.2
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)
	batchRounds := 8 // samples per HTTP request ≈ batchRounds * hosts * 101

	type system struct {
		name   string
		t      tiers
		client *remote.Client
		closer func()
		mem    func() int64
		flush  func() error
		mode   string // "slow", "fast", "group", "cortex"
	}

	newTU := func(name, mode string) (*system, error) {
		t := newTiers(cfg)
		db, err := core.Open(core.Options{
			Fast:              t.fast,
			Slow:              t.slow,
			CacheBytes:        1 << 30,
			ChunkSamples:      32,
			SlotsPerRegion:    4096,
			MemTableSize:      256 << 10,
			L0PartitionLength: cfg.HourMs / 2,
			L2PartitionLength: cfg.HourMs * 2,
			BlockSize:         4096,
		})
		if err != nil {
			return nil, err
		}
		srv := httptest.NewServer(remote.NewServer(&remote.TimeUnionBackend{DB: db}))
		return &system{
			name:   name,
			t:      t,
			client: remote.NewClient(srv.URL),
			closer: func() { srv.Close(); db.Close() },
			mem:    func() int64 { return db.Stats().Memory.Total() },
			flush:  db.Flush,
			mode:   mode,
		}, nil
	}
	newCortex := func() (*system, error) {
		t := newTiers(cfg)
		engine, err := tsdb.Open(tsdb.Options{
			Store:        t.slow, // Cortex blocks live on object storage
			Cache:        cloud.NewLRUCache(1 << 30),
			BlockSpan:    cfg.HourMs * 2,
			ChunkSamples: 120,
			MergeBlocks:  4,
		})
		if err != nil {
			return nil, err
		}
		sim := &remote.CortexSim{DB: engine, HopLatency: 0} // hop accounted via count below
		srv := httptest.NewServer(remote.NewServer(sim))
		return &system{
			name:   "Cortex",
			t:      t,
			client: remote.NewClient(srv.URL),
			closer: func() { srv.Close() },
			mem:    func() int64 { return engine.Footprint().Total() },
			flush:  engine.Flush,
			mode:   "cortex",
		}, nil
	}

	systems := []func() (*system, error){
		func() (*system, error) { return newTU("TU", "slow") },
		func() (*system, error) { return newTU("TU-fast", "fast") },
		func() (*system, error) { return newTU("TU-Group", "group") },
		newCortex,
	}

	for _, build := range systems {
		sys, err := build()
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)

		// Insertion over HTTP, batched.
		samples := 0
		ids := map[string][]uint64{} // hostname -> series ids (fast path)
		gids := map[int]remote.GroupWriteResponse{}
		elapsed, err := sys.t.measure(func() error {
			pending := map[int][]remote.Sample{} // flattened (host*101+series) -> samples
			groupTimes := []int64{}
			groupVals := map[int][][]float64{}
			flushBatch := func() error {
				switch sys.mode {
				case "slow", "cortex":
					// Slow path: every sample travels with its full tag set
					// (the serialization cost the fast path saves, §4.2:
					// "each sample insertion with timeseries tags").
					var req remote.WriteRequest
					for key, ss := range pending {
						hi, si := key/tsbs.SeriesPerHost, key%tsbs.SeriesPerHost
						lbls := map[string]string{}
						for _, l := range hosts[hi].SeriesLabels(si) {
							lbls[l.Name] = l.Value
						}
						for _, one := range ss {
							req.Timeseries = append(req.Timeseries, remote.WriteSeries{
								Labels: lbls, Samples: []remote.Sample{one},
							})
						}
					}
					if len(req.Timeseries) == 0 {
						return nil
					}
					_, err := sys.client.Write(req)
					return err
				case "fast":
					// One batched fast-path request (the paper's batches are
					// 10,000 samples per HTTP request). Series IDs are
					// learned once per host via an initial slow-path write.
					var req remote.FastWriteRequest
					for key, ss := range pending {
						hi, si := key/tsbs.SeriesPerHost, key%tsbs.SeriesPerHost
						hn := hosts[hi].Hostname()
						if ids[hn] == nil {
							var wreq remote.WriteRequest
							for s := 0; s < tsbs.SeriesPerHost; s++ {
								lbls := map[string]string{}
								for _, l := range hosts[hi].SeriesLabels(s) {
									lbls[l.Name] = l.Value
								}
								wreq.Timeseries = append(wreq.Timeseries, remote.WriteSeries{
									Labels: lbls, Samples: ss[:1],
								})
							}
							resp, err := sys.client.Write(wreq)
							if err != nil {
								return err
							}
							ids[hn] = resp.IDs
						}
						req.Entries = append(req.Entries, remote.FastWriteEntry{ID: ids[hn][si], Samples: ss})
					}
					if len(req.Entries) == 0 {
						return nil
					}
					return sys.client.WriteFast(req)
				case "group":
					for hi := range hosts {
						vals := groupVals[hi]
						if len(vals) == 0 {
							continue
						}
						req := remote.GroupWriteRequest{Times: groupTimes, Values: vals}
						if g, ok := gids[hi]; ok {
							req.GID, req.Slots = g.GID, g.Slots
						} else {
							req.GroupTags = map[string]string{}
							for _, l := range hosts[hi].Tags {
								req.GroupTags[l.Name] = l.Value
							}
							for s := 0; s < tsbs.SeriesPerHost; s++ {
								m := map[string]string{}
								for _, l := range tsbs.SeriesTags(s) {
									m[l.Name] = l.Value
								}
								req.UniqueTags = append(req.UniqueTags, m)
							}
						}
						resp, err := sys.client.WriteGroup(req)
						if err != nil {
							return err
						}
						gids[hi] = resp
					}
					return nil
				}
				return nil
			}
			for round := 0; round < rounds; round++ {
				t, vals := gen.Round()
				if sys.mode == "group" {
					groupTimes = append(groupTimes, t)
					for hi := range vals {
						groupVals[hi] = append(groupVals[hi], append([]float64(nil), vals[hi]...))
					}
				} else {
					for hi := range vals {
						for si, v := range vals[hi] {
							key := hi*tsbs.SeriesPerHost + si
							pending[key] = append(pending[key], remote.Sample{T: t, V: v})
						}
					}
				}
				samples += len(hosts) * tsbs.SeriesPerHost
				if (round+1)%batchRounds == 0 {
					if err := flushBatch(); err != nil {
						return err
					}
					pending = map[int][]remote.Sample{}
					groupTimes = nil
					groupVals = map[int][][]float64{}
				}
			}
			if err := flushBatch(); err != nil {
				return err
			}
			return sys.flush()
		})
		if err != nil {
			sys.closer()
			return nil, fmt.Errorf("bench: %s: %w", sys.name, err)
		}
		tput := float64(samples) / elapsed.Seconds()
		r.addRow(sys.name, "insert tput", fmt.Sprintf("%.0f samples/s", tput))
		r.Values["insert:"+sys.name] = tput

		// Queries 5-1-24 and 5-8-1 over HTTP.
		env := tsbs.QueryEnv{Hosts: hosts, DataMin: 0, DataMax: span, HourMs: cfg.HourMs}
		for _, pname := range []string{"5-1-24", "5-8-1"} {
			p, _ := tsbs.PatternByName(pname)
			rnd := rand.New(rand.NewSource(cfg.Seed + 55))
			var durs, simDurs []time.Duration
			for i := 0; i < cfg.QueriesPerPattern; i++ {
				q := tsbs.MakeQuery(p, env, rnd)
				req := remote.QueryRequest{MinT: q.MinT, MaxT: q.MaxT}
				for _, m := range q.Matchers {
					req.Matchers = append(req.Matchers, remote.MatcherSpec{
						Type: m.Type.String(), Name: m.Name, Value: m.Value,
					})
				}
				simBefore := sys.t.simTime()
				d, err := sys.t.measure(func() error {
					_, err := sys.client.Query(req)
					return err
				})
				if err != nil {
					sys.closer()
					return nil, fmt.Errorf("bench: %s query: %w", sys.name, err)
				}
				durs = append(durs, d)
				simDurs = append(simDurs, sys.t.simTime()-simBefore)
			}
			m := median(durs)
			r.addRow(sys.name, "q:"+pname, fmtDur(m))
			r.Values[fmt.Sprintf("q:%s:%s", pname, sys.name)] = m.Seconds()
			// Modelled store time alone: deterministic, so shape assertions
			// on storage-bound queries don't wobble with machine load.
			r.Values[fmt.Sprintf("qsim:%s:%s", pname, sys.name)] = median(simDurs).Seconds()
		}
		r.addRow(sys.name, "memory", fmtBytes(sys.mem()))
		r.Values["mem:"+sys.name] = float64(sys.mem())
		sys.closer()
	}
	r.note("paper: TU 26.6%% over Cortex on insert (gRPC hop); TU-fast 6.6x TU; TU-Group 2.9x TU-fast; 5-1-24: Cortex 30.4x slower; memory: Cortex 96.8%%/2.4x above TU/TU-Group")
	return r, nil
}
