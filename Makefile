GO ?= go

.PHONY: tier1 tier1-faults tier1-obs tier1-iter tier1-alloc tier1-slo tier1-replica race vet lint lint-json bench-parallel

# tier1 is the gate every change must keep green: full build + full test run
# (go test ./... includes TestNoIgnoredDiagnostics, the in-process tulint
# gate) + the standalone invariant suite.
tier1:
	$(GO) build ./...
	$(GO) test ./...
	$(MAKE) lint

# tier1-faults is the crash-safety gate: vet plus 50 randomized
# crash-recovery torture schedules AND 50 deterministic mid-compaction kill
# schedules (every manifest-swap boundary) under the race detector, at a
# fixed seed so failures reproduce.
tier1-faults: vet
	TORTURE_SCHEDULES=50 TORTURE_SEED=20260806 $(GO) test ./internal/core -run 'TestCrashTorture|TestCompactionKillTorture' -race -count=1

# tier1-obs is the observability gate: the obs package and the operational
# HTTP surface under the race detector, the traced-query e2e check, and the
# <5% instrumentation-overhead guard on the parallel append workload.
tier1-obs:
	$(GO) test -race -count=1 ./internal/obs ./internal/remote
	$(GO) test -race -count=1 ./internal/core -run TestQueryTraceE2E
	OBS_OVERHEAD_GUARD=1 $(GO) test -count=1 ./internal/core -run TestObsOverheadBudget

# tier1-slo is the closed-loop operational gate: the env-gated <1%
# event-journal overhead guard, then a ~30s sustained-load run of the SLO
# harness (tubench slo) against a live HTTP server — concurrent ingest and
# queries at a controlled rate, p50/p99 read back from the scraped /metrics
# histograms. CI boxes are slow and noisy, so the latency objectives here
# are relaxed (250ms write p99 / 500ms query p99) — the local run behind
# BENCH_slo.json asserts the real 50/100ms targets. A failed objective
# makes tubench exit nonzero, failing the gate.
tier1-slo:
	JOURNAL_OVERHEAD_GUARD=1 $(GO) test -count=1 ./internal/core -run TestJournalOverheadBudget
	$(GO) run ./cmd/tubench -exp slo -hosts 4 -slodur 30s -slorate 25 -sloqps 10 -slowrite99 250 -sloquery99 500

# tier1-replica is the read-replica gate (DESIGN.md §4.13): the read-only
# LSM view suite (refresh, prune-race retry, injected NotFounds, shared-
# object ownership), the writer-vs-replica query-identity fuzz, the typed
# ErrReadOnly matrix and catalog protocol tests, the HTTP fan-out suite,
# and a torture subset with the concurrent replica riding every kill
# schedule — all under the race detector.
tier1-replica:
	$(GO) test -race -count=1 ./internal/lsm -run 'TestReadOnly|TestRefresh|TestViewRefreshJournal|TestReplicaNeverDeletes'
	$(GO) test -race -count=1 ./internal/core -run 'TestReplica|TestWriterReplicaIdentityFuzz|TestCatalogRoundTrip|TestRefreshOnWriterErrors'
	$(GO) test -race -count=1 ./internal/remote -run 'TestFanout|TestReplicaMutationsForbiddenOverHTTP'
	TORTURE_SCHEDULES=12 TORTURE_SEED=20260807 $(GO) test -race -count=1 ./internal/core -run TestCompactionKillTorture

# tier1-iter is the streaming read-path gate: the iterator contract and
# streaming==materializing identity under the race detector, bounded fuzz
# passes over the merge iterator and the end-to-end query comparison, and
# one run of the narrow-range decode/alloc experiment.
tier1-iter:
	$(GO) test -race -count=1 ./internal/chunkenc ./internal/lsm
	$(GO) test -race -count=1 ./internal/core -run 'TestStreaming|TestNarrowRange'
	$(GO) test -count=1 ./internal/chunkenc -run '^$$' -fuzz FuzzMergeIterator -fuzztime 500x
	$(GO) test -count=1 ./internal/core -run '^$$' -fuzz FuzzStreamingQuery -fuzztime 25x
	$(GO) test -count=1 -run '^$$' -bench BenchmarkQueryNarrowRange -benchtime 1x .

# tier1-alloc is the allocation-regression gate: the pooling contract under
# the race detector with buffer poisoning and cache integrity checks on,
# bounded fuzz of batch-vs-streaming decode identity, and the env-gated
# allocation guard (full default-config workload, fails if the streaming
# query regresses past the BENCH_alloc.json target — DESIGN.md §4.10).
tier1-alloc:
	$(GO) test -race -count=1 ./internal/core -run 'TestConcurrentSeriesSetNoBleed|TestReleasedIteratorPoisonInvisible'
	$(GO) test -count=1 ./internal/chunkenc -run '^$$' -fuzz FuzzXORBatchIdentity -fuzztime 500x
	$(GO) test -count=1 ./internal/chunkenc -run '^$$' -fuzz FuzzGroupSlotBatchIdentity -fuzztime 500x
	TIMEUNION_ALLOC_GUARD=1 $(GO) test -count=1 -timeout 20m ./internal/bench -run TestAllocGuard

# race runs the concurrency-sensitive packages under the race detector.
# The bench experiment suite takes ~3 minutes without race and several
# multiples of that with it, so the default 10m per-package test timeout
# needs headroom.
race:
	$(GO) test -race -timeout 40m ./internal/...

# vet runs the full analyzer set — stdmethods included — on every package
# except internal/chunkenc, the one place the SampleIterator Seek(int64)
# bool contract is allowed to live (stdmethods wants io.Seeker's signature
# there). The seekcontract analyzer in `make lint` is what keeps Seek
# declarations from leaking into other packages, so this exemption cannot
# silently widen.
vet:
	$(GO) vet $$($(GO) list ./... | grep -v '^timeunion/internal/chunkenc$$')
	$(GO) vet -stdmethods=false ./internal/chunkenc

# lint runs tulint (internal/lint), the project-invariant static-analysis
# suite: allochot, atomicalign, ctxflow, errwrap, faultcover, journalcover,
# lockgraph, lockorder, metricname, mmapescape, poolown, seekcontract
# (DESIGN.md §4.9, §4.14). The -budget flag fails the gate if the whole
# run (load + analyzers + call graph) exceeds 60s, keeping the
# interprocedural passes honest as the module grows. Suppress a deliberate
# violation with //lint:ignore <analyzer> <reason> on or above the
# offending line.
lint:
	$(GO) run ./cmd/tulint -timing -budget 60 ./...

# lint-json writes the machine-readable report (archived by CI for trend
# inspection) plus the human-readable per-analyzer timing report next to
# it, and still fails on findings.
lint-json:
	$(GO) run ./cmd/tulint -json -timing -budget 60 ./... 2> tulint-timing.txt | tee tulint.json > /dev/null

# bench-parallel measures the parallel query / striped append speedups.
bench-parallel:
	$(GO) test -bench='QueryParallel|AppendFastParallel' -run='^$$' -benchtime=3x .
