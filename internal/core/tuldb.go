package core

import (
	"math"

	"timeunion/internal/encoding"
	"timeunion/internal/goleveldb"
	"timeunion/internal/lsm"
	"timeunion/internal/tuple"
)

// NewTULDBStore builds the TU-LDB baseline's chunk store (paper §4.1):
// TimeUnion's head and key format on top of a classic LevelDB-style leveled
// LSM, with the first two levels on the fast store and the rest on the slow
// store. It exists to demonstrate what the time-partitioned tree buys: the
// classic tree re-reads and re-merges overlapping SSTables on the slow tier
// and scatters recent data across un-compacted top levels.
func NewTULDBStore(opts goleveldb.Options) (ChunkStore, error) {
	if opts.MergeValues == nil {
		opts.MergeValues = tupleMergeBySeq
	}
	db, err := goleveldb.Open(opts)
	if err != nil {
		return nil, err
	}
	return &ldbChunkStore{db: db}, nil
}

func tupleMergeBySeq(older, newer []byte) ([]byte, error) {
	if tuple.SeqOf(older) <= tuple.SeqOf(newer) {
		return tuple.Merge(older, newer)
	}
	return tuple.Merge(newer, older)
}

// ldbChunkStore adapts goleveldb.DB to the ChunkStore interface.
type ldbChunkStore struct {
	db *goleveldb.DB
}

// LDB exposes the underlying tree (benchmark instrumentation).
func (s *ldbChunkStore) LDB() *goleveldb.DB { return s.db }

// Put implements ChunkStore.
func (s *ldbChunkStore) Put(key encoding.Key, value []byte) error {
	return s.db.Put(key[:], value)
}

// ChunksFor implements ChunkStore.
func (s *ldbChunkStore) ChunksFor(id uint64, mint, maxt int64) ([]lsm.ChunkRef, error) {
	return s.ChunksForInto(nil, id, mint, maxt)
}

// ChunksForInto implements ChunkStore, appending into buf (overwritten from
// index 0).
func (s *ldbChunkStore) ChunksForInto(buf []lsm.ChunkRef, id uint64, mint, maxt int64) ([]lsm.ChunkRef, error) {
	start := encoding.MakeKey(id, math.MinInt64)
	var end []byte
	if id != math.MaxUint64 {
		e := encoding.MakeKey(id+1, math.MinInt64)
		end = e[:]
	}
	entries, err := s.db.Scan(start[:], end)
	if err != nil {
		return nil, err
	}
	out := buf[:0]
	for _, e := range entries {
		key, err := encoding.ParseKey(e.Key)
		if err != nil {
			return nil, err
		}
		lo, hi, err := tuple.TimeRange(e.Value)
		if err != nil {
			return nil, err
		}
		if hi < mint || lo > maxt {
			continue
		}
		out = append(out, lsm.ChunkRef{Key: key, Value: e.Value, Rank: tuple.SeqOf(e.Value), MinT: lo, MaxT: hi})
	}
	// Entries arrive key-sorted; re-rank by embedded sequence like the
	// time-partitioned tree does.
	sortChunkRefs(out)
	return out, nil
}

func sortChunkRefs(refs []lsm.ChunkRef) {
	for i := 1; i < len(refs); i++ {
		for j := i; j > 0 && refs[j].Rank < refs[j-1].Rank; j-- {
			refs[j], refs[j-1] = refs[j-1], refs[j]
		}
	}
}

// Flush implements ChunkStore.
func (s *ldbChunkStore) Flush() error { return s.db.Flush() }

// ApplyRetention is a no-op: a size-leveled LSM has no time partitions to
// drop, which is precisely the retention weakness the paper's design
// addresses (§3.3).
func (s *ldbChunkStore) ApplyRetention(watermark int64) int { return 0 }

// Close implements ChunkStore.
func (s *ldbChunkStore) Close() error { return s.db.Close() }
