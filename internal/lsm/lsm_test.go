package lsm

import (
	"fmt"
	"math/rand"
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
	"timeunion/internal/tuple"
)

// testEnv bundles an LSM with its two stores.
type testEnv struct {
	l    *LSM
	fast *cloud.MemStore
	slow *cloud.MemStore
}

func newEnv(t *testing.T, opts Options) *testEnv {
	t.Helper()
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	opts.Fast = fast
	opts.Slow = slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return &testEnv{l: l, fast: fast, slow: slow}
}

// smallOpts returns a geometry that triggers flushes and compactions with
// little data: R1=1000, R2=4000 time units.
func smallOpts() Options {
	return Options{
		MemTableSize:              2 << 10,
		L0PartitionLength:         1000,
		L2PartitionLength:         4000,
		PartitionLengthLowerBound: 125,
		MaxL0Partitions:           2,
		PatchThreshold:            2,
		TargetTableSize:           8 << 10,
		BlockSize:                 512,
	}
}

var seqCounter uint64

func seriesKV(t *testing.T, id uint64, samples []chunkenc.Sample) (encoding.Key, []byte) {
	t.Helper()
	enc, err := chunkenc.EncodeXORSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	seqCounter++
	return encoding.MakeKey(id, samples[0].T), tuple.Encode(seqCounter, tuple.KindSeries, samples[0].T, samples[len(samples)-1].T, enc)
}

func putSeries(t *testing.T, l *LSM, id uint64, samples []chunkenc.Sample) {
	t.Helper()
	k, v := seriesKV(t, id, samples)
	if err := l.Put(k, v); err != nil {
		t.Fatal(err)
	}
}

func querySeries(t *testing.T, l *LSM, id uint64, mint, maxt int64) []SamplePair {
	t.Helper()
	chunks, err := l.ChunksFor(id, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	out, err := SeriesSamples(chunks, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestPutQueryFromMemtable(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 200, V: 2}})
	got := querySeries(t, env.l, 1, 0, 1000)
	if len(got) != 2 || got[0] != (SamplePair{100, 1}) || got[1] != (SamplePair{200, 2}) {
		t.Fatalf("got %v", got)
	}
	// Time clipping.
	got = querySeries(t, env.l, 1, 150, 1000)
	if len(got) != 1 || got[0].T != 200 {
		t.Fatalf("clipped = %v", got)
	}
	// Unknown ID.
	if got := querySeries(t, env.l, 99, 0, 1000); len(got) != 0 {
		t.Fatalf("phantom = %v", got)
	}
}

func TestFlushToL0AndQuery(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 900, V: 2}})
	putSeries(t, env.l, 2, []chunkenc.Sample{{T: 150, V: 3}})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := env.l.NumPartitions(); n[0] == 0 {
		t.Fatalf("no L0 partitions after flush: %v", n)
	}
	if env.fast.TotalBytes() == 0 {
		t.Fatal("nothing written to fast store")
	}
	got := querySeries(t, env.l, 1, 0, 1000)
	if len(got) != 2 || got[1].V != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestFlushSplitsAcrossPartitions(t *testing.T) {
	env := newEnv(t, smallOpts())
	// One chunk spanning three 1000-unit windows.
	putSeries(t, env.l, 1, []chunkenc.Sample{
		{T: 500, V: 1}, {T: 1500, V: 2}, {T: 2500, V: 3},
	})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// All three samples must be found, each in its window's partition.
	got := querySeries(t, env.l, 1, 0, 3000)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	// Window-restricted query touches only that window's data.
	got = querySeries(t, env.l, 1, 1000, 1999)
	if len(got) != 1 || got[0].V != 2 {
		t.Fatalf("window query = %v", got)
	}
}

func TestOnFlushMarks(t *testing.T) {
	opts := smallOpts()
	var marks []uint64
	opts.OnFlush = func(key encoding.Key, seq uint64) {
		marks = append(marks, seq)
	}
	env := newEnv(t, opts)
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}})
	putSeries(t, env.l, 2, []chunkenc.Sample{{T: 100, V: 1}})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(marks) != 2 {
		t.Fatalf("marks = %v", marks)
	}
}

func TestDuplicateKeyMergesInMemtable(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 200, V: 2}})
	// Same start timestamp → same LSM key → merged, newest wins.
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 10}, {T: 300, V: 3}})
	got := querySeries(t, env.l, 1, 0, 1000)
	want := []SamplePair{{100, 10}, {200, 2}, {300, 3}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// fillSequential inserts n chunks of 10 samples each for the given ids,
// advancing time so that flushes and compactions trigger naturally.
func fillSequential(t *testing.T, l *LSM, ids []uint64, chunks int, startT, step int64) int64 {
	t.Helper()
	ts := startT
	for c := 0; c < chunks; c++ {
		for _, id := range ids {
			var samples []chunkenc.Sample
			for s := 0; s < 10; s++ {
				samples = append(samples, chunkenc.Sample{T: ts + int64(s)*step, V: float64(id) + float64(c)})
			}
			putSeries(t, l, id, samples)
		}
		ts += 10 * step
	}
	return ts
}

func TestCompactionPipelineToL2(t *testing.T) {
	env := newEnv(t, smallOpts())
	ids := []uint64{1, 2, 3}
	end := fillSequential(t, env.l, ids, 40, 0, 50) // 40 chunks x 500 units = t up to 20000
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	st := env.l.Stats()
	if st.CompactionsL0L1 == 0 {
		t.Fatal("no L0→L1 compactions")
	}
	if st.CompactionsL1L2 == 0 {
		t.Fatal("no L1→L2 compactions")
	}
	if env.slow.TotalBytes() == 0 {
		t.Fatal("nothing uploaded to slow store")
	}
	n := env.l.NumPartitions()
	if n[2] == 0 {
		t.Fatalf("no L2 partitions: %v", n)
	}
	// No overlapping SSTable reads on the slow store during normal
	// compaction: every L2 byte was written exactly once (Equation 9).
	// Checked before querying, which legitimately reads the slow tier.
	slowStats := env.slow.Stats()
	if slowStats.BytesRead > 0 {
		t.Fatalf("ordered compaction read %d bytes from slow store", slowStats.BytesRead)
	}
	// All data still queryable across the whole span.
	for _, id := range ids {
		got := querySeries(t, env.l, id, 0, end)
		if len(got) != 400 {
			t.Fatalf("series %d: %d samples, want 400", id, len(got))
		}
	}
}

func TestOutOfOrderCreatesPatches(t *testing.T) {
	env := newEnv(t, smallOpts())
	ids := []uint64{1, 2}
	end := fillSequential(t, env.l, ids, 40, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if env.l.Stats().CompactionsL1L2 == 0 {
		t.Fatal("setup: no L2 data")
	}
	// Insert out-of-order samples into a time range already in L2.
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 105, V: 777}, {T: 205, V: 888}})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Push the stale partition down: L0 → L1 → L2 patch. Keep inserting
	// recent data until the stale window ships.
	fillSequential(t, env.l, ids, 40, end, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if env.l.Stats().PatchesCreated == 0 {
		t.Fatal("no patches created for out-of-order data")
	}
	// The out-of-order samples are visible and win over nothing (they are
	// new timestamps).
	got := querySeries(t, env.l, 1, 100, 210)
	foundOOO := 0
	for _, s := range got {
		if s.V == 777 || s.V == 888 {
			foundOOO++
		}
	}
	if foundOOO != 2 {
		t.Fatalf("out-of-order samples missing: %v", got)
	}
}

func TestOutOfOrderOverwriteNewestWins(t *testing.T) {
	env := newEnv(t, smallOpts())
	ids := []uint64{1}
	end := fillSequential(t, env.l, ids, 40, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Overwrite an existing timestamp (t=100 had some value).
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 999}})
	fillSequential(t, env.l, ids, 40, end, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	got := querySeries(t, env.l, 1, 100, 100)
	if len(got) != 1 || got[0].V != 999 {
		t.Fatalf("overwrite lost: %v", got)
	}
}

func TestPatchMergeTriggered(t *testing.T) {
	env := newEnv(t, smallOpts())
	ids := []uint64{1, 2}
	end := fillSequential(t, env.l, ids, 40, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Repeatedly inject out-of-order rounds into the same L2 window,
	// each followed by enough fresh data to ship it down as a patch.
	for round := 0; round < 6; round++ {
		putSeries(t, env.l, 1, []chunkenc.Sample{{T: int64(300 + round*7), V: float64(round)}})
		end = fillSequential(t, env.l, ids, 40, end, 50)
		if err := env.l.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	st := env.l.Stats()
	if st.PatchesCreated < 3 {
		t.Fatalf("patches created = %d", st.PatchesCreated)
	}
	if st.PatchMerges == 0 {
		t.Fatal("patch merge never triggered despite threshold 2")
	}
	// All injected samples still correct after split-merge.
	for round := 0; round < 6; round++ {
		ts := int64(300 + round*7)
		got := querySeries(t, env.l, 1, ts, ts)
		if len(got) != 1 || got[0].V != float64(round) {
			t.Fatalf("round %d: %v", round, got)
		}
	}
}

func TestRetention(t *testing.T) {
	env := newEnv(t, smallOpts())
	fillSequential(t, env.l, []uint64{1}, 40, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	before := env.l.NumPartitions()
	dropped := env.l.ApplyRetention(8000)
	if dropped == 0 {
		t.Fatal("retention dropped nothing")
	}
	after := env.l.NumPartitions()
	if after[0]+after[1]+after[2] >= before[0]+before[1]+before[2] {
		t.Fatalf("partitions not reduced: %v -> %v", before, after)
	}
	// Old data gone, recent data kept.
	if got := querySeries(t, env.l, 1, 0, 7999); len(got) != 0 {
		t.Fatalf("expired data still visible: %d samples", len(got))
	}
	if got := querySeries(t, env.l, 1, 8000, 100000); len(got) == 0 {
		t.Fatal("recent data lost by retention")
	}
}

func TestDynamicSizingShrinks(t *testing.T) {
	opts := smallOpts()
	opts.FastLimit = 1 << 10 // tiny budget
	opts.DynamicSizing = true
	env := newEnv(t, opts)
	fillSequential(t, env.l, []uint64{1, 2, 3, 4}, 60, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if env.l.Stats().ResizeShrinks == 0 {
		t.Fatal("no shrink resize under budget pressure")
	}
	r1After, r2After := env.l.PartitionLengths()
	if r1After < opts.PartitionLengthLowerBound {
		t.Fatalf("R1 below lower bound: %d", r1After)
	}
	if r2After < r1After {
		t.Fatalf("R2 < R1: %d < %d", r2After, r1After)
	}
}

func TestDynamicSizingGrows(t *testing.T) {
	opts := smallOpts()
	opts.FastLimit = 64 << 20 // huge budget, sparse data
	opts.DynamicSizing = true
	env := newEnv(t, opts)
	fillSequential(t, env.l, []uint64{1}, 60, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	if env.l.Stats().ResizeGrows == 0 {
		r1, _ := env.l.PartitionLengths()
		t.Fatalf("R1 never grew with sparse data (R1=%d)", r1)
	}
}

func TestRecoveryFromStores(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	opts := smallOpts()
	opts.Fast = fast
	opts.Slow = slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1, 2}
	end := fillSequential(t, l, ids, 40, 0, 50)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	beforeParts := l.NumPartitions()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same stores: metadata rebuilt from listings.
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NumPartitions(); got != beforeParts {
		t.Fatalf("partitions after recovery = %v, want %v", got, beforeParts)
	}
	for _, id := range ids {
		chunks, err := l2.ChunksFor(id, 0, end)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SeriesSamples(chunks, 0, end)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 400 {
			t.Fatalf("series %d after recovery: %d samples", id, len(got))
		}
	}
}

func TestGroupChunksThroughLSM(t *testing.T) {
	env := newEnv(t, smallOpts())
	gid := uint64(1)<<63 | 7
	g := &chunkenc.GroupData{
		Times: []int64{100, 200, 300},
		Columns: []chunkenc.GroupColumn{
			{Slot: 0, Values: []float64{1, 2, 3}, Nulls: []bool{false, false, false}},
			{Slot: 1, Values: []float64{0, 5, 0}, Nulls: []bool{true, false, true}},
		},
	}
	enc, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := env.l.Put(encoding.MakeKey(gid, 100), tuple.Encode(1, tuple.KindGroup, 100, 300, enc)); err != nil {
		t.Fatal(err)
	}
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	chunks, err := env.l.ChunksFor(gid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	bySlot, err := GroupSamples(chunks, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(bySlot[0]) != 3 || len(bySlot[1]) != 1 {
		t.Fatalf("group samples = %v", bySlot)
	}
	if bySlot[1][0] != (SamplePair{200, 5}) {
		t.Fatalf("slot 1 = %v", bySlot[1])
	}
}

// TestRandomWorkloadAgainstOracle drives the tree with a random mix of
// in-order and out-of-order chunk inserts and verifies every query against
// a brute-force oracle.
func TestRandomWorkloadAgainstOracle(t *testing.T) {
	env := newEnv(t, smallOpts())
	rnd := rand.New(rand.NewSource(99))
	oracle := map[uint64]map[int64]float64{} // id -> t -> latest value
	ids := []uint64{1, 2, 3}
	frontier := int64(0)
	for round := 0; round < 300; round++ {
		id := ids[rnd.Intn(len(ids))]
		var base int64
		if rnd.Intn(5) == 0 && frontier > 2000 {
			base = rnd.Int63n(frontier) // out-of-order
		} else {
			base = frontier
			frontier += int64(10 + rnd.Intn(200))
		}
		n := 1 + rnd.Intn(8)
		var samples []chunkenc.Sample
		tcur := base
		for s := 0; s < n; s++ {
			v := rnd.Float64() * 100
			samples = append(samples, chunkenc.Sample{T: tcur, V: v})
			if oracle[id] == nil {
				oracle[id] = map[int64]float64{}
			}
			oracle[id][tcur] = v
			tcur += int64(1 + rnd.Intn(50))
		}
		putSeries(t, env.l, id, samples)
	}
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		got := querySeries(t, env.l, id, 0, frontier+10000)
		if len(got) != len(oracle[id]) {
			t.Fatalf("series %d: %d samples, oracle has %d", id, len(got), len(oracle[id]))
		}
		for _, s := range got {
			want, ok := oracle[id][s.T]
			if !ok || want != s.V {
				t.Fatalf("series %d t=%d: got %v, want %v (present=%v)", id, s.T, s.V, want, ok)
			}
		}
		// Random sub-range queries.
		for q := 0; q < 20; q++ {
			lo := rnd.Int63n(frontier)
			hi := lo + rnd.Int63n(frontier-lo+1)
			got := querySeries(t, env.l, id, lo, hi)
			count := 0
			for ts := range oracle[id] {
				if ts >= lo && ts <= hi {
					count++
				}
			}
			if len(got) != count {
				t.Fatalf("series %d range [%d,%d]: got %d, want %d", id, lo, hi, len(got), count)
			}
		}
	}
}

func TestBackgroundErrorSurfaces(t *testing.T) {
	opts := smallOpts()
	fast := &failingStore{MemStore: cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}), failAfter: 2}
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	opts.Fast = fast
	opts.Slow = slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 200; i++ {
		samples := []chunkenc.Sample{{T: int64(i) * 100, V: 1}}
		k, v := seriesKV(t, 1, samples)
		if err := l.Put(k, v); err != nil {
			return // error surfaced via Put: success
		}
	}
	l.mu.Lock()
	l.rotateLocked()
	l.mu.Unlock()
	if err := l.WaitIdle(); err == nil {
		t.Fatal("store failure never surfaced")
	}
}

// failingStore fails every Put after the first failAfter calls.
type failingStore struct {
	*cloud.MemStore
	failAfter int
	puts      int
}

func (f *failingStore) Put(key string, data []byte) error {
	f.puts++
	if f.puts > f.failAfter {
		return fmt.Errorf("injected store failure")
	}
	return f.MemStore.Put(key, data)
}

func TestParseTableName(t *testing.T) {
	p := &partition{minT: -500, maxT: 1500}
	name := tableName(1, p, 42)
	level, minT, maxT, _, seq, isPatch, err := parseTableName(name)
	if err != nil || isPatch || level != 1 || minT != -500 || maxT != 1500 || seq != 42 {
		t.Fatalf("parse(%s) = %d %d %d %d %v %v", name, level, minT, maxT, seq, isPatch, err)
	}
	pn := patchName(p, 42, 99)
	level2, _, _, baseSeq, seq2, isPatch2, err := parseTableName(pn)
	if err != nil || !isPatch2 || level2 != 2 || baseSeq != 42 || seq2 != 99 {
		t.Fatalf("parse(%s) = %d %d %d %v %v", pn, level2, baseSeq, seq2, isPatch2, err)
	}
	if _, _, _, _, _, _, err := parseTableName("garbage"); err == nil {
		t.Fatal("garbage name parsed")
	}
}

func TestLevelSizesAndFastUsage(t *testing.T) {
	env := newEnv(t, smallOpts())
	fillSequential(t, env.l, []uint64{1}, 10, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	sizes := env.l.LevelSizes()
	if sizes[0]+sizes[1]+sizes[2] == 0 {
		t.Fatal("no level sizes")
	}
	if env.l.FastUsage() != sizes[0]+sizes[1] {
		t.Fatal("FastUsage mismatch")
	}
}

func TestRecoveryWithPatches(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	slow := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	opts := smallOpts()
	opts.Fast = fast
	opts.Slow = slow
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := []uint64{1, 2}
	end := fillSequential(t, l, ids, 40, 0, 50)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Inject out-of-order data and push it down to L2 patches.
	putSeries(t, l, 1, []chunkenc.Sample{{T: 111, V: 777}})
	fillSequential(t, l, ids, 40, end, 50)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().PatchesCreated == 0 {
		t.Skip("workload produced no patches at this scale")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: patch tables must reattach to their base tables by name.
	l2, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := querySeries(t, l2, 1, 111, 111)
	if len(got) != 1 || got[0].V != 777 {
		t.Fatalf("patched sample lost after recovery: %v", got)
	}
}

func TestRetentionConcurrentWithQueries(t *testing.T) {
	env := newEnv(t, smallOpts())
	fillSequential(t, env.l, []uint64{1}, 60, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			if _, err := env.l.ChunksFor(1, 0, 1<<40); err != nil {
				t.Errorf("query during retention: %v", err)
				return
			}
		}
	}()
	env.l.ApplyRetention(10000)
	<-done
}

// TestEBSOnlyConfiguration runs the tree with Slow == Fast (Figure 17's
// placement): everything must still work, with L2 partitions landing on the
// same store.
func TestEBSOnlyConfiguration(t *testing.T) {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	opts := smallOpts()
	opts.Fast = fast
	opts.Slow = fast
	l, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	end := fillSequential(t, l, []uint64{1}, 40, 0, 50)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Stats().CompactionsL1L2 == 0 {
		t.Fatal("no L1→L2 compactions in EBS-only mode")
	}
	got := querySeries(t, l, 1, 0, end)
	if len(got) != 400 {
		t.Fatalf("EBS-only query = %d samples", len(got))
	}
}

// TestPartitionLengthChangeMidStream shrinks R1 between flushes and checks
// the compaction alignment keeps all data queryable (Figure 12 splitting).
func TestPartitionLengthChangeMidStream(t *testing.T) {
	env := newEnv(t, smallOpts())
	end := fillSequential(t, env.l, []uint64{1}, 20, 0, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// Manually halve the partition lengths (what Algorithm 1 would do).
	env.l.mu.Lock()
	env.l.r1 /= 2
	env.l.r2 /= 2
	env.l.mu.Unlock()
	end = fillSequential(t, env.l, []uint64{1}, 20, end, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	// And double beyond the original.
	env.l.mu.Lock()
	env.l.r1 *= 4
	env.l.r2 *= 4
	env.l.mu.Unlock()
	end = fillSequential(t, env.l, []uint64{1}, 20, end, 50)
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	got := querySeries(t, env.l, 1, 0, end)
	if len(got) != 600 {
		t.Fatalf("mixed-length partitions lost data: %d samples, want 600", len(got))
	}
	// Out-of-order into old (differently-sized) partitions still works.
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 123, V: -9}})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	got = querySeries(t, env.l, 1, 123, 123)
	if len(got) != 1 || got[0].V != -9 {
		t.Fatalf("ooo into resized partition = %v", got)
	}
}
