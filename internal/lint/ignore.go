package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// findings of the named analyzers on its own line (trailing comment) or
// the line immediately below (directive on its own line above the code).
type ignoreDirective struct {
	analyzers []string // "*" suppresses every analyzer
	reason    string
	line      int
}

// badDirective is a malformed directive, reported as a finding itself.
type badDirective struct {
	pos token.Position
	msg string
}

// matches reports whether the directive suppresses analyzer findings at
// the given line.
func (d ignoreDirective) matches(analyzer string, line int) bool {
	if line != d.line && line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == analyzer || a == "*" {
			return true
		}
	}
	return false
}

// collectIgnores extracts lint:ignore directives from one file's comments.
// Syntax: //lint:ignore <analyzer>[,<analyzer>...] <reason>. The reason is
// mandatory — a directive without one is returned as malformed.
func collectIgnores(fset *token.FileSet, f *ast.File) ([]ignoreDirective, []badDirective) {
	var dirs []ignoreDirective
	var bad []badDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//lint:ignore")
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				bad = append(bad, badDirective{
					pos: pos,
					msg: "malformed lint:ignore directive: want //lint:ignore <analyzer> <reason>",
				})
				continue
			}
			dirs = append(dirs, ignoreDirective{
				analyzers: strings.Split(fields[0], ","),
				reason:    strings.Join(fields[1:], " "),
				line:      pos.Line,
			})
		}
	}
	return dirs, bad
}
