package core

import (
	"errors"
	"fmt"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
	"timeunion/internal/head"
	"timeunion/internal/lsm"
	"timeunion/internal/obs"
)

// ErrReadOnly is returned by every mutating entry point of a DB opened
// with OpenReplica. Remote servers map it to 403 Forbidden.
var ErrReadOnly = errors.New("core: database is open as a read replica")

// defaultReplicaRefresh is the manifest/catalog poll interval when
// Options.ReplicaRefreshInterval is zero.
const defaultReplicaRefresh = time.Second

// OpenReplica opens a read-only database over the same shared stores a
// live writer uses (DESIGN.md §4.13). A replica has no WAL and no local
// state: the series catalog comes from the writer's published catalog
// objects, the table set from the versioned manifests, and both are
// re-polled by a background refresh loop (or explicitly via Refresh).
// Every mutating method returns ErrReadOnly. Replicas never write to the
// shared stores, so any number of them can run against one writer.
func OpenReplica(opts Options) (*DB, error) {
	if opts.Fast == nil || opts.Slow == nil {
		return nil, fmt.Errorf("core: Fast and Slow stores are required")
	}
	if opts.Store != nil {
		return nil, fmt.Errorf("core: OpenReplica requires the LSM store (no Store override)")
	}
	if opts.CacheBytes == 0 {
		opts.CacheBytes = 1 << 30
	}
	reg := opts.Metrics
	if reg == nil && !opts.DisableMetrics {
		reg = obs.NewRegistry()
	}
	if opts.DisableMetrics {
		reg = nil
	}
	journal := opts.Journal
	if journal == nil && !opts.DisableJournal {
		journal = obs.NewJournal(opts.JournalCapacity)
	}
	if opts.DisableJournal {
		journal = nil
	}
	openStart := time.Now()
	db := &DB{opts: opts, cache: cloud.NewLRUCache(opts.CacheBytes), metrics: reg, journal: journal, replica: true}
	db.m = newDBMetrics(reg)
	db.registerDBGauges(reg)
	if reg != nil {
		journal.RegisterMetrics(reg)
		obs.RegisterProcessMetrics(reg)
	}

	tree, err := lsm.Open(lsm.Options{
		Fast:      opts.Fast,
		Slow:      opts.Slow,
		Cache:     db.cache,
		BlockSize: opts.BlockSize,
		ReadOnly:  true,
		Metrics:   reg,
		Journal:   journal,
		// Core drives both refreshes (catalog first, then view) from one
		// loop, so the tree's own loop stays off.
		RefreshInterval: 0,
	})
	if err != nil {
		return nil, err
	}
	db.store = tree

	hh, err := head.New(head.Options{
		ChunkSamples:   opts.ChunkSamples,
		SlotSize:       opts.SlotSize,
		SlotsPerRegion: opts.SlotsPerRegion,
		// A replica never appends, so its head never fills a chunk; the
		// sink exists to satisfy the contract and to fail loudly if a
		// mutation guard is ever bypassed.
		Sink: func(encoding.Key, []byte) error {
			return fmt.Errorf("core: replica head must not flush chunks")
		},
		Metrics: reg,
	})
	if err != nil {
		db.store.Close()
		return nil, err
	}
	db.head = hh

	// Initial refresh: install the writer's catalog so the table set the
	// tree just loaded is resolvable by tag selectors.
	if _, err := db.loadCatalog(); err != nil {
		db.store.Close()
		hh.Close()
		return nil, err
	}

	if opts.ReplicaRefreshInterval >= 0 {
		iv := opts.ReplicaRefreshInterval
		if iv == 0 {
			iv = defaultReplicaRefresh
		}
		db.replicaStop = make(chan struct{})
		db.replicaWg.Add(1)
		go db.replicaLoop(iv)
	}

	if journal != nil {
		journal.Emit("core.open", openStart, nil, map[string]any{
			"replica": true,
			"series":  hh.NumSeries(),
			"groups":  hh.NumGroups(),
		})
	}
	return db, nil
}

// Replica reports whether this DB was opened with OpenReplica.
func (db *DB) Replica() bool { return db.replica }

// Refresh advances a replica to the writer's newest published state: the
// series catalog first (so every table the new view references is
// resolvable), then the LSM view from the versioned manifests. It reports
// whether anything changed. Calling Refresh on a writer is an error.
func (db *DB) Refresh() (bool, error) {
	if !db.replica {
		return false, fmt.Errorf("core: Refresh requires a replica (OpenReplica)")
	}
	catChanged, catErr := db.loadCatalog()
	if catErr != nil {
		return catChanged, catErr
	}
	tree, ok := db.store.(*lsm.LSM)
	if !ok {
		return catChanged, nil
	}
	viewChanged, viewErr := tree.Refresh()
	return catChanged || viewChanged, viewErr
}

// replicaLoop polls the shared stores until Close. Refresh errors are
// transient by construction (the previous view keeps serving), so the
// loop just retries on the next tick; persistent failures surface through
// the lsm.view_refresh journal events.
func (db *DB) replicaLoop(interval time.Duration) {
	defer db.replicaWg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-db.replicaStop:
			return
		case <-t.C:
			_, _ = db.Refresh()
		}
	}
}
