package sstable

import (
	"bytes"
	"sort"
	"testing"
	"testing/quick"

	"timeunion/internal/cloud"
)

// TestTableQuick: any sorted unique key-value set round-trips through the
// table format — every key found with its exact value, full scans return
// everything in order — across block sizes that force single- and
// multi-block layouts, with and without compression.
func TestTableQuick(t *testing.T) {
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	n := 0
	f := func(raw map[string][]byte, small bool, noCompress bool) bool {
		if len(raw) == 0 {
			return true
		}
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)

		blockSize := 4096
		if small {
			blockSize = 64
		}
		w := NewWriter(blockSize)
		if noCompress {
			w.DisableCompression()
		}
		for _, k := range keys {
			if err := w.Add([]byte(k), raw[k]); err != nil {
				t.Logf("add: %v", err)
				return false
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Logf("finish: %v", err)
			return false
		}
		n++
		name := "q/" + itoa(n)
		if err := store.Put(name, data); err != nil {
			return false
		}
		tbl, err := OpenTable(store, name, nil)
		if err != nil {
			t.Logf("open: %v", err)
			return false
		}
		// Point lookups.
		for _, k := range keys {
			v, ok, err := tbl.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(v, raw[k]) {
				t.Logf("get %q: %v %v", k, ok, err)
				return false
			}
		}
		// Full scan in order.
		it := tbl.Iter(nil, nil)
		i := 0
		for it.Next() {
			if string(it.Key()) != keys[i] || !bytes.Equal(it.Value(), raw[keys[i]]) {
				t.Logf("scan mismatch at %d", i)
				return false
			}
			i++
		}
		return it.Err() == nil && i == len(keys)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCompressionRoundTrip checks a highly compressible table shrinks and
// still reads back correctly.
func TestCompressionRoundTrip(t *testing.T) {
	mk := func(compress bool) int {
		w := NewWriter(4096)
		if !compress {
			w.DisableCompression()
		}
		val := bytes.Repeat([]byte("abcdefgh"), 32)
		for i := 0; i < 500; i++ {
			if err := w.Add([]byte("key-"+itoa(100000+i)), val); err != nil {
				t.Fatal(err)
			}
		}
		data, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
		if err := store.Put("c.sst", data); err != nil {
			t.Fatal(err)
		}
		tbl, err := OpenTable(store, "c.sst", nil)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := tbl.Get([]byte("key-100250"))
		if err != nil || !ok || !bytes.Equal(v, val) {
			t.Fatalf("compressed get failed: %v %v", ok, err)
		}
		return len(data)
	}
	compressed := mk(true)
	rawSize := mk(false)
	if compressed >= rawSize {
		t.Fatalf("compression ineffective: %d >= %d", compressed, rawSize)
	}
}
