package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/encoding"
)

func buildTable(t *testing.T, blockSize int, kvs [][2][]byte) (*Table, cloud.Store) {
	t.Helper()
	w := NewWriter(blockSize)
	for _, kv := range kvs {
		if err := w.Add(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	if err := store.Put("t/1.sst", data); err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(store, "t/1.sst", nil)
	if err != nil {
		t.Fatal(err)
	}
	return tbl, store
}

func seqKVs(n int) [][2][]byte {
	kvs := make([][2][]byte, 0, n)
	for i := 0; i < n; i++ {
		k := encoding.MakeKey(uint64(i/10), int64(i%10)*1000)
		v := []byte(fmt.Sprintf("value-%d", i))
		kvs = append(kvs, [2][]byte{append([]byte(nil), k[:]...), v})
	}
	return kvs
}

func TestWriterRejectsOutOfOrder(t *testing.T) {
	w := NewWriter(0)
	if err := w.Add([]byte("b"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := w.Add([]byte("a"), []byte("2")); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	if err := w.Add([]byte("b"), []byte("2")); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestFinishEmpty(t *testing.T) {
	if _, err := NewWriter(0).Finish(); err == nil {
		t.Fatal("empty table finished")
	}
}

func TestTableGet(t *testing.T) {
	kvs := seqKVs(500)
	tbl, _ := buildTable(t, 256, kvs) // small blocks: many index entries
	for i, kv := range kvs {
		v, ok, err := tbl.Get(kv[0])
		if err != nil {
			t.Fatal(err)
		}
		if !ok || !bytes.Equal(v, kv[1]) {
			t.Fatalf("Get(%d) = %q, %v", i, v, ok)
		}
	}
	// Missing keys.
	miss := encoding.MakeKey(999, 0)
	if _, ok, err := tbl.Get(miss[:]); ok || err != nil {
		t.Fatalf("Get(missing) = %v, %v", ok, err)
	}
	if tbl.NumEntries() != 500 {
		t.Fatalf("NumEntries = %d", tbl.NumEntries())
	}
	if !bytes.Equal(tbl.FirstKey(), kvs[0][0]) || !bytes.Equal(tbl.LastKey(), kvs[len(kvs)-1][0]) {
		t.Fatal("first/last key wrong")
	}
}

func TestTableFullScan(t *testing.T) {
	kvs := seqKVs(300)
	tbl, _ := buildTable(t, 128, kvs)
	it := tbl.Iter(nil, nil)
	i := 0
	for it.Next() {
		if !bytes.Equal(it.Key(), kvs[i][0]) || !bytes.Equal(it.Value(), kvs[i][1]) {
			t.Fatalf("entry %d mismatch", i)
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != 300 {
		t.Fatalf("scanned %d entries", i)
	}
}

func TestTableRangeScan(t *testing.T) {
	kvs := seqKVs(200)
	tbl, _ := buildTable(t, 128, kvs)
	// Scan all chunks of series ID 5 (keys 50..59).
	start := encoding.MakeKey(5, -1<<62)
	end := encoding.MakeKey(6, -1<<62)
	it := tbl.Iter(start[:], end[:])
	var n int
	for it.Next() {
		k, err := encoding.ParseKey(it.Key())
		if err != nil {
			t.Fatal(err)
		}
		if k.ID() != 5 {
			t.Fatalf("scanned wrong series %d", k.ID())
		}
		n++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if n != 10 {
		t.Fatalf("range scan found %d entries, want 10", n)
	}
}

func TestTableRangeScanEmptyRange(t *testing.T) {
	kvs := seqKVs(50)
	tbl, _ := buildTable(t, 128, kvs)
	start := encoding.MakeKey(100, 0)
	it := tbl.Iter(start[:], nil)
	if it.Next() {
		t.Fatal("scan past end returned entries")
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
}

func TestTableRandomAgainstModel(t *testing.T) {
	rnd := rand.New(rand.NewSource(3))
	model := map[string]string{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%08d", rnd.Intn(100000))
		model[k] = fmt.Sprintf("v%d", i)
	}
	var keys []string
	for k := range model {
		keys = append(keys, k)
	}
	sortStrings(keys)
	var kvs [][2][]byte
	for _, k := range keys {
		kvs = append(kvs, [2][]byte{[]byte(k), []byte(model[k])})
	}
	tbl, _ := buildTable(t, 512, kvs)
	for _, k := range keys {
		v, ok, err := tbl.Get([]byte(k))
		if err != nil || !ok || string(v) != model[k] {
			t.Fatalf("Get(%s) = %q,%v,%v", k, v, ok, err)
		}
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("nokey-%08d", rnd.Intn(100000))
		if _, ok, _ := tbl.Get([]byte(k)); ok {
			t.Fatalf("phantom key %s", k)
		}
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestBlockCacheReducesGets(t *testing.T) {
	kvs := seqKVs(500)
	w := NewWriter(256)
	for _, kv := range kvs {
		if err := w.Add(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	store := cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{})
	if err := store.Put("t.sst", data); err != nil {
		t.Fatal(err)
	}
	cache := cloud.NewLRUCache(1 << 20)
	tbl, err := OpenTable(store, "t.sst", cache)
	if err != nil {
		t.Fatal(err)
	}
	store.ResetStats()
	key := kvs[123][0]
	if _, ok, err := tbl.Get(key); !ok || err != nil {
		t.Fatalf("first get: %v %v", ok, err)
	}
	coldGets := store.Stats().Gets
	if coldGets == 0 {
		t.Fatal("cold read did not touch the store")
	}
	store.ResetStats()
	for i := 0; i < 10; i++ {
		if _, ok, err := tbl.Get(key); !ok || err != nil {
			t.Fatalf("cached get: %v %v", ok, err)
		}
	}
	if got := store.Stats().Gets; got != 0 {
		t.Fatalf("cached reads still hit the store %d times", got)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	kvs := seqKVs(100)
	w := NewWriter(256)
	for _, kv := range kvs {
		if err := w.Add(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	data[10] ^= 0xff // flip a bit inside the first data block
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	if err := store.Put("t.sst", data); err != nil {
		t.Fatal(err)
	}
	tbl, err := OpenTable(store, "t.sst", nil)
	if err != nil {
		// The corruption may already surface at open (first-key read).
		return
	}
	if _, _, err := tbl.Get(kvs[0][0]); err == nil {
		t.Fatal("corrupt block read succeeded")
	}
}

func TestCorruptFooterDetected(t *testing.T) {
	store := cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{})
	if err := store.Put("bad.sst", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(store, "bad.sst", nil); err == nil {
		t.Fatal("garbage table opened")
	}
	if err := store.Put("tiny.sst", []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTable(store, "tiny.sst", nil); err == nil {
		t.Fatal("tiny table opened")
	}
	if _, err := OpenTable(store, "missing.sst", nil); !cloud.IsNotFound(err) {
		t.Fatalf("missing table err = %v", err)
	}
}

func TestPrefixCompressionEffective(t *testing.T) {
	// 1000 chunks of the same series: 16-byte keys sharing 8-13 byte
	// prefixes. The table must be much smaller than raw keys+values.
	var kvs [][2][]byte
	val := make([]byte, 20)
	for i := 0; i < 1000; i++ {
		k := encoding.MakeKey(42, int64(i)*30_000)
		kvs = append(kvs, [2][]byte{append([]byte(nil), k[:]...), val})
	}
	w := NewWriter(4096)
	for _, kv := range kvs {
		if err := w.Add(kv[0], kv[1]); err != nil {
			t.Fatal(err)
		}
	}
	data, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rawKeys := 1000 * 16
	// Each entry should spend only ~3-6 bytes on key data thanks to the
	// shared big-endian ID prefix.
	if len(data) > rawKeys+1000*20+4096 {
		t.Fatalf("table %d bytes: prefix compression ineffective", len(data))
	}
}

func TestBloomFilter(t *testing.T) {
	var hashes []uint64
	for i := 0; i < 1000; i++ {
		hashes = append(hashes, bloomHash([]byte(fmt.Sprintf("key%d", i))))
	}
	f := buildBloom(hashes, 10)
	for i := 0; i < 1000; i++ {
		if !bloomMayContain(f, []byte(fmt.Sprintf("key%d", i))) {
			t.Fatalf("false negative for key%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if bloomMayContain(f, []byte(fmt.Sprintf("other%d", i))) {
			fp++
		}
	}
	if fp > 500 { // 10 bits/key should be ~1% FP; allow 5%
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
}

func TestMetaBytesPositive(t *testing.T) {
	tbl, _ := buildTable(t, 128, seqKVs(100))
	if tbl.MetaBytes() <= 0 {
		t.Fatal("MetaBytes not accounted")
	}
	if tbl.Size() <= 0 || tbl.StoreKey() == "" {
		t.Fatal("size/key not set")
	}
}
