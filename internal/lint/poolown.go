package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolOwn enforces the pooled-ownership contract (DESIGN.md §4.10, §4.14):
// a value obtained from a sync.Pool — directly or through a getter like
// chunkenc.GetQueryIterator or sstable.Table.Iter — must reach a
// Release/Put on every path out of the function that owns it, must not be
// used after it is released, and must not be released twice.
//
// The analyzer is built on call-graph summaries computed to a fixpoint:
//
//   - getter: the function returns a pool.Get result (possibly through
//     another getter).
//   - releases(i): parameter i (receiver = slot 0) flows to pool.Put or to
//     another releasing parameter — including through type switches, so
//     chunkenc.ReleaseIterator's Releasable dispatch resolves.
//   - captures(i): parameter i escapes into a field, container, composite
//     literal, channel, or return value; ownership transfers to the callee
//     (GetBufferIterator capturing its SampleBuffer, GetQueryIterator
//     capturing its sources).
//
// The intra-function checker then tracks locals bound from getter calls:
// Owned until released, escaped (tracking stops) when stored, returned,
// captured by a closure, or passed to an unknown callee — the analyzer
// only reports what it can prove on the path structure it models
// (branch-sensitive if/switch with state merge, loop bodies once, function
// literals as independent scopes).
var PoolOwn = &Analyzer{
	Name:      "poolown",
	Doc:       "every pooled Get must reach a Release/Put on all paths; no use-after-release, no double release",
	RunModule: runPoolOwn,
}

// poolSummary is one function's ownership effects.
type poolSummary struct {
	getter   bool
	releases []bool // by slot: receiver (if any) then parameters
	captures []bool
}

func summariesEqual(a, b *poolSummary) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.getter != b.getter || len(a.releases) != len(b.releases) {
		return false
	}
	for i := range a.releases {
		if a.releases[i] != b.releases[i] || a.captures[i] != b.captures[i] {
			return false
		}
	}
	return true
}

type poolFacts struct {
	pass *ModulePass
	sums map[*Node]*poolSummary
}

func runPoolOwn(pass *ModulePass) {
	pf := &poolFacts{pass: pass, sums: map[*Node]*poolSummary{}}
	pass.Graph.Fixpoint(func(n *Node) bool {
		if n.Decl == nil || n.Decl.Body == nil {
			return false
		}
		next := pf.summarize(n)
		if summariesEqual(pf.sums[n], next) {
			return false
		}
		pf.sums[n] = next
		return true
	})
	for _, n := range pass.Graph.Nodes() {
		if n.Decl.Body == nil {
			continue
		}
		c := &poolChecker{pf: pf, pkg: n.Pkg, reported: map[token.Pos]bool{}}
		c.checkFunc(n.Decl.Type.Results, n.Decl.Body)
		for len(c.lits) > 0 {
			lit := c.lits[0]
			c.lits = c.lits[1:]
			c.checkFunc(lit.Type.Results, lit.Body)
		}
	}
}

// --- slot/alias helpers ---

// paramSlots maps a declaration's receiver and parameter objects to slots.
func paramSlots(pkg *Package, decl *ast.FuncDecl) map[types.Object]int {
	slots := map[types.Object]int{}
	n := 0
	bind := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				n++ // unnamed parameter still occupies a slot
				continue
			}
			for _, name := range f.Names {
				if obj := pkg.Info.Defs[name]; obj != nil {
					slots[obj] = n
				}
				n++
			}
		}
	}
	bind(decl.Recv)
	bind(decl.Type.Params)
	return slots
}

func slotCount(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

// isPoolOp matches (*sync.Pool).Get / (*sync.Pool).Put calls.
func isPoolOp(info *types.Info, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	s := info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return false
	}
	named := derefNamed(s.Recv())
	return named != nil && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

// unwrapValue strips parens and type assertions: the checker tracks the
// asserted value of `pool.Get().(*T)` as the pooled object itself.
func unwrapValue(e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.TypeAssertExpr:
			e = v.X
		default:
			return e
		}
	}
}

// methodValRecv returns the receiver expression when call is a method
// value invocation (x.M(...)).
func methodValRecv(info *types.Info, call *ast.CallExpr) ast.Expr {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		return sel.X
	}
	return nil
}

// calleeSlotEffect aggregates the resolved callees' effect on one argument
// slot: released / captured if ANY callee summary says so, known if at
// least one callee had a computed summary.
func (pf *poolFacts) calleeSlotEffect(call *ast.CallExpr, slot int) (released, captured, known bool) {
	for _, cn := range pf.pass.Graph.Callees(call) {
		s := pf.sums[cn]
		if s == nil {
			if cn.Decl != nil {
				known = true // summarized as no-effect
			}
			continue
		}
		known = true
		i := slot
		if i >= len(s.releases) && len(s.releases) > 0 {
			i = len(s.releases) - 1 // variadic tail
		}
		if i >= 0 && i < len(s.releases) {
			released = released || s.releases[i]
			captured = captured || s.captures[i]
		}
	}
	return released, captured, known
}

// --- summary computation ---

// summarize computes one function's poolSummary from its body and the
// current summaries of its callees.
func (pf *poolFacts) summarize(n *Node) *poolSummary {
	pkg := n.Pkg
	info := pkg.Info
	sum := &poolSummary{
		releases: make([]bool, slotCount(n.Fn)),
		captures: make([]bool, slotCount(n.Fn)),
	}
	aliases := paramSlots(pkg, n.Decl) // object -> slot
	getVals := map[types.Object]bool{} // locals holding pool-get-derived values
	markSlot := func(obj types.Object, rel, cap bool) {
		if slot, ok := aliases[obj]; ok && slot < len(sum.releases) {
			sum.releases[slot] = sum.releases[slot] || rel
			sum.captures[slot] = sum.captures[slot] || cap
		}
	}
	aliasOf := func(e ast.Expr) (types.Object, bool) {
		id, ok := unwrapValue(e).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.Uses[id]
		if obj == nil {
			return nil, false
		}
		_, tracked := aliases[obj]
		return obj, tracked
	}
	isGetterRHS := func(e ast.Expr) bool {
		call, ok := unwrapValue(e).(*ast.CallExpr)
		if !ok {
			return false
		}
		if isPoolOp(info, call, "Get") {
			return true
		}
		for _, cn := range pf.pass.Graph.Callees(call) {
			if s := pf.sums[cn]; s != nil && s.getter {
				return true
			}
		}
		return false
	}

	var scan func(nd ast.Node)
	scan = func(nd ast.Node) {
		ast.Inspect(nd, func(nd ast.Node) bool {
			switch nd := nd.(type) {
			case *ast.AssignStmt:
				// Alias propagation: q := p, q := p.(T); getter-value
				// propagation: v := pool.Get().(T), v := getter().
				if len(nd.Lhs) == len(nd.Rhs) || (len(nd.Rhs) == 1 && len(nd.Lhs) == 2) {
					for i, lhs := range nd.Lhs {
						rhs := nd.Rhs[0]
						if len(nd.Lhs) == len(nd.Rhs) {
							rhs = nd.Rhs[i]
						} else if i > 0 {
							break // v, ok := x.(T): only v aliases
						}
						lid, ok := lhs.(*ast.Ident)
						if !ok {
							// Storing into a field/element captures any
							// aliased RHS (handled by the generic cases
							// below via CompositeLit/Ident scan).
							if obj, tracked := aliasOf(rhs); tracked {
								markSlot(obj, false, true)
							}
							continue
						}
						lobj := info.Defs[lid]
						if lobj == nil {
							lobj = info.Uses[lid]
						}
						if lobj == nil {
							continue
						}
						if obj, tracked := aliasOf(rhs); tracked {
							aliases[lobj] = aliases[obj]
						}
						if id, ok := unwrapValue(rhs).(*ast.Ident); ok && getVals[info.Uses[id]] {
							getVals[lobj] = true
						}
						if isGetterRHS(rhs) {
							getVals[lobj] = true
						}
					}
				}
			case *ast.TypeSwitchStmt:
				// switch r := p.(type): each clause's implicit r aliases p.
				var src ast.Expr
				switch a := nd.Assign.(type) {
				case *ast.AssignStmt:
					if len(a.Rhs) == 1 {
						if ta, ok := a.Rhs[0].(*ast.TypeAssertExpr); ok {
							src = ta.X
						}
					}
				case *ast.ExprStmt:
					if ta, ok := a.X.(*ast.TypeAssertExpr); ok {
						src = ta.X
					}
				}
				if obj, tracked := aliasOf(src); tracked {
					for _, stmt := range nd.Body.List {
						if cc, ok := stmt.(*ast.CaseClause); ok {
							if impl := info.Implicits[cc]; impl != nil {
								aliases[impl] = aliases[obj]
							}
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range nd.Results {
					if obj, tracked := aliasOf(res); tracked {
						markSlot(obj, false, true)
					}
					if isGetterRHS(res) {
						sum.getter = true
					}
					if id, ok := unwrapValue(res).(*ast.Ident); ok && getVals[info.Uses[id]] {
						sum.getter = true
					}
				}
			case *ast.CallExpr:
				if isPoolOp(info, nd, "Put") && len(nd.Args) > 0 {
					if obj, tracked := aliasOf(nd.Args[0]); tracked {
						markSlot(obj, true, false)
					}
					return true
				}
				if recv := methodValRecv(info, nd); recv != nil {
					if obj, tracked := aliasOf(recv); tracked {
						rel, cap, known := pf.calleeSlotEffect(nd, 0)
						if !known {
							cap = true // unknown method on a param: assume escape
						}
						markSlot(obj, rel, cap)
					}
				}
				base := 0
				if methodValRecv(info, nd) != nil {
					base = 1
				}
				for i, arg := range nd.Args {
					obj, tracked := aliasOf(arg)
					if !tracked {
						continue
					}
					if id, ok := ast.Unparen(nd.Fun).(*ast.Ident); ok {
						if b, isB := info.Uses[id].(*types.Builtin); isB {
							if b.Name() == "append" {
								markSlot(obj, false, true)
							}
							continue
						}
					}
					rel, cap, known := pf.calleeSlotEffect(nd, base+i)
					if !known {
						cap = true // unknown callee: the parameter may escape
					}
					markSlot(obj, rel, cap)
				}
			case *ast.CompositeLit:
				for _, el := range nd.Elts {
					ast.Inspect(el, func(e ast.Node) bool {
						if id, ok := e.(*ast.Ident); ok {
							if obj := info.Uses[id]; obj != nil {
								markSlot(obj, false, true)
							}
						}
						return true
					})
				}
			case *ast.SendStmt:
				if obj, tracked := aliasOf(nd.Value); tracked {
					markSlot(obj, false, true)
				}
			case *ast.FuncLit:
				ast.Inspect(nd.Body, func(e ast.Node) bool {
					if id, ok := e.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil {
							markSlot(obj, false, true)
						}
					}
					return true
				})
				return false
			case *ast.UnaryExpr:
				if nd.Op == token.AND {
					if obj, tracked := aliasOf(nd.X); tracked {
						markSlot(obj, false, true)
					}
				}
			}
			return true
		})
	}
	scan(n.Decl.Body)
	return sum
}

// --- intra-function checking ---

type ownState uint8

const (
	ownOwned ownState = iota
	ownDeferRel
	ownReleased
)

type ownInfo struct {
	state  ownState
	getPos token.Pos
	relPos token.Pos
}

type ownMap map[*types.Var]ownInfo

func cloneOwn(m ownMap) ownMap {
	out := make(ownMap, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

type poolChecker struct {
	pf       *poolFacts
	pkg      *Package
	reported map[token.Pos]bool
	lits     []*ast.FuncLit // queued for independent analysis
}

func (c *poolChecker) reportf(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pf.pass.Reportf(pos, format, args...)
}

func (c *poolChecker) line(pos token.Pos) int {
	return c.pf.pass.Fset.Position(pos).Line
}

// checkFunc analyzes one executable body with a fresh ownership state.
func (c *poolChecker) checkFunc(results *ast.FieldList, body *ast.BlockStmt) {
	st := ownMap{}
	terminated := c.walkBlock(st, body.List)
	if !terminated {
		c.leakCheck(st, body.End())
	}
}

// leakCheck reports every still-owned pooled value at an exit point.
func (c *poolChecker) leakCheck(st ownMap, pos token.Pos) {
	for v, oi := range st {
		if oi.state == ownOwned {
			c.reportf(pos, "pooled value %q (obtained at line %d) is not released on this path; call its Release/Put (or hand ownership off) on every return", v.Name(), c.line(oi.getPos))
		}
	}
}

func (c *poolChecker) walkBlock(st ownMap, stmts []ast.Stmt) (terminated bool) {
	for _, s := range stmts {
		if terminated {
			return true // unreachable tail; stop modelling
		}
		terminated = c.walkStmt(st, s)
	}
	return terminated
}

func (c *poolChecker) walkStmt(st ownMap, s ast.Stmt) (terminated bool) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		c.walkAssign(st, s.Lhs, s.Rhs)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, n := range vs.Names {
						lhs[i] = n
					}
					c.walkAssign(st, lhs, vs.Values)
				}
			}
		}
	case *ast.ExprStmt:
		return c.scanExpr(st, s.X)
	case *ast.DeferStmt:
		c.walkDefer(st, s.Call)
	case *ast.GoStmt:
		c.escapeMentioned(st, s.Call)
	case *ast.SendStmt:
		c.scanExpr(st, s.Chan)
		if v := c.trackedIdent(st, s.Value); v != nil {
			delete(st, v) // ownership crosses the channel
		} else {
			c.scanExpr(st, s.Value)
		}
	case *ast.ReturnStmt:
		for _, res := range s.Results {
			if v := c.trackedIdent(st, res); v != nil {
				delete(st, v) // returning the value hands ownership out
				continue
			}
			c.scanExpr(st, res)
		}
		c.leakCheck(st, s.Pos())
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(st, s.Init)
		}
		c.scanExpr(st, s.Cond)
		thenSt := cloneOwn(st)
		thenTerm := c.walkBlock(thenSt, s.Body.List)
		elseSt := cloneOwn(st)
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.walkStmt(elseSt, s.Else)
		}
		c.mergeInto(st, []ownMap{thenSt, elseSt}, []bool{thenTerm, elseTerm})
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return c.walkBlock(st, s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(st, s.Init)
		}
		if s.Cond != nil {
			c.scanExpr(st, s.Cond)
		}
		entry := cloneOwn(st)
		bodySt := cloneOwn(st)
		c.walkBlock(bodySt, s.Body.List)
		if s.Post != nil {
			c.walkStmt(bodySt, s.Post)
		}
		c.loopMerge(st, entry, bodySt)
	case *ast.RangeStmt:
		c.scanExpr(st, s.X)
		entry := cloneOwn(st)
		bodySt := cloneOwn(st)
		c.walkBlock(bodySt, s.Body.List)
		c.loopMerge(st, entry, bodySt)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(st, s.Init)
		}
		if s.Tag != nil {
			c.scanExpr(st, s.Tag)
		}
		return c.walkCases(st, s.Body.List, hasDefaultClause(s.Body.List))
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			c.walkStmt(st, s.Init)
		}
		// The asserted value stays usable; clauses are branches.
		return c.walkCases(st, s.Body.List, hasDefaultClause(s.Body.List))
	case *ast.SelectStmt:
		return c.walkCases(st, s.Body.List, true)
	case *ast.LabeledStmt:
		return c.walkStmt(st, s.Stmt)
	case *ast.BranchStmt:
		return true // break/continue/goto: stop modelling this path
	case *ast.IncDecStmt:
		c.scanExpr(st, s.X)
	}
	return false
}

func hasDefaultClause(clauses []ast.Stmt) bool {
	for _, cl := range clauses {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// walkCases analyzes switch/select clauses as parallel branches.
func (c *poolChecker) walkCases(st ownMap, clauses []ast.Stmt, exhaustive bool) bool {
	var states []ownMap
	var terms []bool
	for _, cl := range clauses {
		var body []ast.Stmt
		switch cc := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				c.scanExpr(st, e)
			}
			body = cc.Body
		case *ast.CommClause:
			body = cc.Body
		default:
			continue
		}
		bst := cloneOwn(st)
		terms = append(terms, c.walkBlock(bst, body))
		states = append(states, bst)
	}
	if !exhaustive {
		states = append(states, cloneOwn(st))
		terms = append(terms, false)
	}
	c.mergeInto(st, states, terms)
	allTerm := len(terms) > 0
	for _, t := range terms {
		allTerm = allTerm && t
	}
	return allTerm
}

// mergeInto folds branch states back into st: a variable keeps its state
// only when every non-terminated branch agrees; disagreement drops
// tracking (no false positives from path-insensitive joins).
func (c *poolChecker) mergeInto(st ownMap, states []ownMap, terms []bool) {
	var live []ownMap
	for i, s := range states {
		if !terms[i] {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		if len(states) > 0 {
			for k := range st {
				delete(st, k)
			}
			for k, v := range states[0] {
				st[k] = v
			}
		}
		return
	}
	keys := map[*types.Var]bool{}
	for _, s := range live {
		for k := range s {
			keys[k] = true
		}
	}
	for k := range st {
		keys[k] = true
	}
	for k := range keys {
		first, ok := live[0][k]
		agree := ok
		for _, s := range live[1:] {
			v, ok2 := s[k]
			if !ok2 || v.state != first.state {
				agree = false
				break
			}
		}
		if agree {
			st[k] = first
		} else {
			delete(st, k)
		}
	}
}

// loopMerge restores the entry state, dropping any variable the loop body
// touched (analyzed once, not to fixpoint) and discarding body-scoped ones.
func (c *poolChecker) loopMerge(st ownMap, entry, body ownMap) {
	for k := range st {
		delete(st, k)
	}
	for k, v := range entry {
		if bv, ok := body[k]; ok && bv.state == v.state {
			st[k] = v
		}
	}
}

// walkAssign handles bindings: getter results start tracking; overwriting
// a tracked variable or storing one into a field stops it.
func (c *poolChecker) walkAssign(st ownMap, lhs, rhs []ast.Expr) {
	pairRHS := func(i int) ast.Expr {
		if len(lhs) == len(rhs) {
			return rhs[i]
		}
		if i == 0 && len(rhs) == 1 {
			return rhs[0] // v, ok := ... / multi-value call
		}
		return nil
	}
	for i, l := range lhs {
		r := pairRHS(i)
		lid, isIdent := l.(*ast.Ident)
		if !isIdent {
			c.scanExpr(st, l)
			if r != nil {
				if v := c.trackedIdent(st, r); v != nil {
					delete(st, v) // stored into a field/element: escapes
					continue
				}
			}
			if r != nil {
				c.scanExpr(st, r)
			}
			continue
		}
		if r == nil {
			continue
		}
		lobj, _ := c.pkg.Info.Defs[lid].(*types.Var)
		if lobj == nil {
			lobj, _ = c.pkg.Info.Uses[lid].(*types.Var)
		}
		if v := c.trackedIdent(st, r); v != nil && v != lobj {
			delete(st, v) // aliased away: conservatively stop tracking
		} else if call, ok := unwrapValue(r).(*ast.CallExpr); ok && c.isGetterCall(call) {
			c.scanCallArgs(st, call)
			if lobj != nil {
				st[lobj] = ownInfo{state: ownOwned, getPos: call.Pos()}
			}
			continue
		} else {
			c.scanExpr(st, r)
		}
		if lobj != nil {
			delete(st, lobj) // plain reassignment: previous tracking ends
		}
	}
}

func (c *poolChecker) isGetterCall(call *ast.CallExpr) bool {
	if isPoolOp(c.pkg.Info, call, "Get") {
		return true
	}
	for _, cn := range c.pf.pass.Graph.Callees(call) {
		if s := c.pf.sums[cn]; s != nil && s.getter {
			return true
		}
	}
	return false
}

// trackedIdent resolves e to a tracked variable, unwrapping parens and
// type assertions.
func (c *poolChecker) trackedIdent(st ownMap, e ast.Expr) *types.Var {
	id, ok := unwrapValue(e).(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := c.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		return nil
	}
	if _, ok := st[v]; !ok {
		return nil
	}
	return v
}

func (c *poolChecker) release(st ownMap, v *types.Var, pos token.Pos, deferred bool) {
	oi := st[v]
	switch oi.state {
	case ownReleased, ownDeferRel:
		c.reportf(pos, "pooled value %q released twice (previous release at line %d); double Put corrupts the pool", v.Name(), c.line(oi.relPos))
	default:
		oi.relPos = pos
		if deferred {
			oi.state = ownDeferRel
		} else {
			oi.state = ownReleased
		}
		st[v] = oi
	}
}

func (c *poolChecker) walkDefer(st ownMap, call *ast.CallExpr) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.escapeMentioned(st, lit)
		c.lits = append(c.lits, lit)
		return
	}
	if v, releasing := c.releaseTarget(st, call); releasing {
		c.release(st, v, call.Pos(), true)
		return
	}
	c.scanExpr(st, call)
}

// releaseTarget reports whether call releases a tracked variable.
func (c *poolChecker) releaseTarget(st ownMap, call *ast.CallExpr) (*types.Var, bool) {
	info := c.pkg.Info
	if isPoolOp(info, call, "Put") && len(call.Args) > 0 {
		if v := c.trackedIdent(st, call.Args[0]); v != nil {
			return v, true
		}
		return nil, false
	}
	if recv := methodValRecv(info, call); recv != nil {
		if v := c.trackedIdent(st, recv); v != nil {
			if rel, _, _ := c.pf.calleeSlotEffect(call, 0); rel {
				return v, true
			}
		}
	}
	base := 0
	if methodValRecv(info, call) != nil {
		base = 1
	}
	for i, arg := range call.Args {
		if v := c.trackedIdent(st, arg); v != nil {
			if rel, _, _ := c.pf.calleeSlotEffect(call, base+i); rel {
				return v, true
			}
		}
	}
	return nil, false
}

// escapeMentioned drops tracking for every state variable mentioned
// anywhere under n (goroutines, closures: the value outlives this walk).
func (c *poolChecker) escapeMentioned(st ownMap, n ast.Node) {
	ast.Inspect(n, func(nd ast.Node) bool {
		if id, ok := nd.(*ast.Ident); ok {
			if v, _ := c.pkg.Info.Uses[id].(*types.Var); v != nil {
				delete(st, v)
			}
		}
		return true
	})
}

// scanExpr walks an expression, applying call effects and use-after-release
// checks. Returns true when the expression statically terminates the path
// (panic).
func (c *poolChecker) scanExpr(st ownMap, e ast.Expr) (terminated bool) {
	if e == nil {
		return false
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		return c.scanCall(st, e)
	case *ast.FuncLit:
		c.escapeMentioned(st, e)
		c.lits = append(c.lits, e)
		return false
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if v := c.trackedIdent(st, el); v != nil {
				delete(st, v)
				continue
			}
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if v := c.trackedIdent(st, kv.Value); v != nil {
					delete(st, v)
					continue
				}
				c.scanExpr(st, kv.Value)
				continue
			}
			c.scanExpr(st, el)
		}
		return false
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if v := c.trackedIdent(st, e.X); v != nil {
				delete(st, v) // address taken: aliasing defeats tracking
				return false
			}
		}
		return c.scanExpr(st, e.X)
	case *ast.ParenExpr:
		return c.scanExpr(st, e.X)
	case *ast.TypeAssertExpr:
		return c.scanExpr(st, e.X)
	case *ast.BinaryExpr:
		t1 := c.scanExpr(st, e.X)
		t2 := c.scanExpr(st, e.Y)
		return t1 || t2
	case *ast.IndexExpr:
		c.scanExpr(st, e.X)
		return c.scanExpr(st, e.Index)
	case *ast.SliceExpr:
		c.scanExpr(st, e.X)
		c.scanExpr(st, e.Low)
		c.scanExpr(st, e.High)
		return false
	case *ast.SelectorExpr:
		// x.f: a field read through the tracked value is a use.
		c.useCheck(st, e.X)
		return false
	case *ast.StarExpr:
		return c.scanExpr(st, e.X)
	case *ast.Ident:
		c.useCheck(st, e)
		return false
	case *ast.KeyValueExpr:
		c.scanExpr(st, e.Key)
		return c.scanExpr(st, e.Value)
	}
	return false
}

// useCheck flags a mention of a released variable.
func (c *poolChecker) useCheck(st ownMap, e ast.Expr) {
	id, ok := unwrapValue(e).(*ast.Ident)
	if !ok {
		if inner, ok := unwrapValue(e).(*ast.SelectorExpr); ok {
			c.useCheck(st, inner.X)
		}
		return
	}
	v, _ := c.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		return
	}
	if oi, tracked := st[v]; tracked && oi.state == ownReleased {
		c.reportf(id.Pos(), "pooled value %q used after release (released at line %d); the pool may have already handed it to another goroutine", v.Name(), c.line(oi.relPos))
	}
}

// scanCallArgs scans a call's arguments without applying callee effects
// (used under a getter binding, whose args were already consumed).
func (c *poolChecker) scanCallArgs(st ownMap, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if v := c.trackedIdent(st, arg); v != nil {
			// Getter taking a tracked value (GetBufferIterator(buf)):
			// ownership transfers into the new object.
			if _, cap, _ := c.argEffect(st, call, arg); cap {
				delete(st, v)
				continue
			}
			c.useCheck(st, arg)
			continue
		}
		c.scanExpr(st, arg)
	}
}

// argEffect computes the callee effect for one specific argument.
func (c *poolChecker) argEffect(st ownMap, call *ast.CallExpr, arg ast.Expr) (rel, cap, known bool) {
	base := 0
	if methodValRecv(c.pkg.Info, call) != nil {
		base = 1
	}
	for i, a := range call.Args {
		if a == arg {
			return c.pf.calleeSlotEffect(call, base+i)
		}
	}
	return false, false, false
}

// scanCall applies one call's effects to the tracked state.
func (c *poolChecker) scanCall(st ownMap, call *ast.CallExpr) (terminated bool) {
	info := c.pkg.Info

	// Builtins: append captures, panic terminates, the rest are plain uses.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "append":
				for _, arg := range call.Args {
					if v := c.trackedIdent(st, arg); v != nil {
						delete(st, v)
						continue
					}
					c.scanExpr(st, arg)
				}
				return false
			case "panic":
				for _, arg := range call.Args {
					c.scanExpr(st, arg)
				}
				return true
			default:
				for _, arg := range call.Args {
					if v := c.trackedIdent(st, arg); v != nil {
						c.useCheck(st, arg)
						continue
					}
					c.scanExpr(st, arg)
				}
				return false
			}
		}
	}

	// Direct pool.Put.
	if isPoolOp(info, call, "Put") && len(call.Args) > 0 {
		if v := c.trackedIdent(st, call.Args[0]); v != nil {
			c.release(st, v, call.Pos(), false)
			return false
		}
	}

	callees := c.pf.pass.Graph.Callees(call)
	recv := methodValRecv(info, call)
	base := 0
	if recv != nil {
		base = 1
		if v := c.trackedIdent(st, recv); v != nil {
			rel, cap, known := c.pf.calleeSlotEffect(call, 0)
			switch {
			case rel:
				c.release(st, v, call.Pos(), false)
			case cap || (!known && len(callees) == 0):
				delete(st, v) // unknown/capturing method: stop tracking
			default:
				c.useCheck(st, recv)
			}
		} else {
			c.scanExpr(st, recv)
		}
	} else if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		c.scanExpr(st, sel.X)
	} else if _, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok {
		c.scanExpr(st, call.Fun)
	}

	for i, arg := range call.Args {
		v := c.trackedIdent(st, arg)
		if v == nil {
			c.scanExpr(st, arg)
			continue
		}
		rel, cap, known := c.pf.calleeSlotEffect(call, base+i)
		switch {
		case rel:
			c.release(st, v, call.Pos(), false)
		case cap || !known:
			delete(st, v) // capturing or unknown callee: ownership leaves
		default:
			c.useCheck(st, arg)
		}
	}
	return false
}
