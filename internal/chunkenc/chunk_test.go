package chunkenc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestXORChunkRoundTrip(t *testing.T) {
	c := NewXORChunk()
	samples := []Sample{
		{1000, 1.5}, {1010, 1.5}, {1020, 2.25}, {1030, -7.75},
		{1041, 0}, {1051, math.MaxFloat64}, {1061, math.SmallestNonzeroFloat64},
	}
	for _, s := range samples {
		if err := c.Append(s.T, s.V); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumSamples() != len(samples) {
		t.Fatalf("NumSamples = %d", c.NumSamples())
	}
	if c.MinTime() != 1000 || c.MaxTime() != 1061 {
		t.Fatalf("time range = [%d,%d]", c.MinTime(), c.MaxTime())
	}
	got, err := DecodeXORSamples(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(samples) {
		t.Fatalf("decoded %d samples, want %d", len(got), len(samples))
	}
	for i, s := range samples {
		if got[i] != s {
			t.Fatalf("sample %d = %v, want %v", i, got[i], s)
		}
	}
}

func TestXORChunkSingleSample(t *testing.T) {
	c := NewXORChunk()
	if err := c.Append(42, 3.14); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeXORSamples(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != (Sample{42, 3.14}) {
		t.Fatalf("got %v", got)
	}
}

func TestXORChunkEmpty(t *testing.T) {
	c := NewXORChunk()
	got, err := DecodeXORSamples(c.Bytes())
	if err != nil || len(got) != 0 {
		t.Fatalf("empty chunk: %v %v", got, err)
	}
}

func TestXORChunkRejectsOutOfOrder(t *testing.T) {
	c := NewXORChunk()
	if err := c.Append(100, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Append(50, 2); err == nil {
		t.Fatal("out-of-order append accepted")
	}
	// Equal timestamps are allowed within the chunk encoder (dedup happens
	// upstream); negative delta is not.
	if err := c.Append(100, 3); err != nil {
		t.Fatalf("equal-timestamp append rejected: %v", err)
	}
}

func TestXORChunkNegativeTimestamps(t *testing.T) {
	c := NewXORChunk()
	for i := int64(-5); i <= 5; i++ {
		if err := c.Append(i*1000, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeXORSamples(c.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range got {
		want := Sample{(int64(i) - 5) * 1000, float64(i) - 5}
		if s != want {
			t.Fatalf("sample %d = %v, want %v", i, s, want)
		}
	}
}

// Property: any strictly-increasing-timestamp series round-trips, including
// NaN bit patterns and irregular deltas.
func TestXORChunkQuick(t *testing.T) {
	f := func(deltas []uint32, vals []float64, start int64) bool {
		n := len(deltas)
		if len(vals) < n {
			n = len(vals)
		}
		samples := make([]Sample, 0, n)
		ts := start % (1 << 40)
		for i := 0; i < n; i++ {
			ts += int64(deltas[i]%100000) + 1
			samples = append(samples, Sample{ts, vals[i]})
		}
		enc, err := EncodeXORSamples(samples)
		if err != nil {
			return false
		}
		dec, err := DecodeXORSamples(enc)
		if err != nil || len(dec) != len(samples) {
			return false
		}
		for i := range samples {
			if dec[i].T != samples[i].T {
				return false
			}
			if math.Float64bits(dec[i].V) != math.Float64bits(samples[i].V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestXORCompressionRatio(t *testing.T) {
	// 120 regular samples like a Prometheus chunk must compress far below
	// raw 16 B/sample.
	c := NewXORChunk()
	for i := 0; i < 120; i++ {
		if err := c.Append(int64(i)*10_000, 42.0+float64(i%3)); err != nil {
			t.Fatal(err)
		}
	}
	raw := 120 * 16
	if got := len(c.Bytes()); got*4 > raw {
		t.Fatalf("compression too weak: %d bytes for %d raw", got, raw)
	}
}

func TestVarbitIntBoundaries(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 63, -63, 64, 65, -64, 255, -255, 256, 257,
		2047, -2047, 2048, 2049, math.MaxInt64, math.MinInt64 + 1} {
		c := NewXORChunk()
		if err := c.Append(0, 0); err != nil {
			t.Fatal(err)
		}
		// second sample establishes delta v+base, third a dod of v
		base := int64(1 << 20)
		if err := c.Append(base, 0); err != nil {
			t.Fatal(err)
		}
		next := base + base + v
		if next <= base { // skip overflowing/unencodable physical times
			continue
		}
		if err := c.Append(next, 0); err != nil {
			t.Fatal(err)
		}
		got, err := DecodeXORSamples(c.Bytes())
		if err != nil {
			t.Fatalf("dod %d: %v", v, err)
		}
		if got[2].T != next {
			t.Fatalf("dod %d: t = %d, want %d", v, got[2].T, next)
		}
	}
}

func TestGroupTimeChunkRoundTrip(t *testing.T) {
	c := NewGroupTimeChunk()
	times := []int64{100, 160, 220, 281, 341}
	for _, ts := range times {
		if err := c.Append(ts); err != nil {
			t.Fatal(err)
		}
	}
	it := c.Iterator()
	for i, want := range times {
		if !it.Next() {
			t.Fatalf("Next failed at %d: %v", i, it.Err())
		}
		if it.At() != want {
			t.Fatalf("time %d = %d, want %d", i, it.At(), want)
		}
	}
	if it.Next() {
		t.Fatal("iterator did not stop")
	}
}

func TestGroupValueChunkNulls(t *testing.T) {
	c := NewGroupValueChunk()
	c.AppendNull() // member missing in first round (backfill case)
	c.Append(1.5)
	c.AppendNull()
	c.Append(2.5)
	c.Append(2.5)

	it := c.Iterator()
	want := []struct {
		v    float64
		null bool
	}{{0, true}, {1.5, false}, {0, true}, {2.5, false}, {2.5, false}}
	for i, w := range want {
		if !it.Next() {
			t.Fatalf("Next failed at %d: %v", i, it.Err())
		}
		v, null := it.At()
		if null != w.null || (!null && v != w.v) {
			t.Fatalf("slot %d = (%v,%v), want (%v,%v)", i, v, null, w.v, w.null)
		}
	}
	if it.Next() {
		t.Fatal("iterator did not stop")
	}
}

func TestGroupValueChunkAllNulls(t *testing.T) {
	c := NewGroupValueChunk()
	for i := 0; i < 10; i++ {
		c.AppendNull()
	}
	it := c.Iterator()
	n := 0
	for it.Next() {
		if _, null := it.At(); !null {
			t.Fatal("expected null")
		}
		n++
	}
	if n != 10 || it.Err() != nil {
		t.Fatalf("n=%d err=%v", n, it.Err())
	}
}

func TestGroupTupleRoundTrip(t *testing.T) {
	tc := NewGroupTimeChunk()
	for _, ts := range []int64{10, 20, 30} {
		if err := tc.Append(ts); err != nil {
			t.Fatal(err)
		}
	}
	v0 := NewGroupValueChunk()
	v0.Append(1)
	v0.Append(2)
	v0.Append(3)
	v1 := NewGroupValueChunk()
	v1.AppendNull()
	v1.Append(9)
	v1.AppendNull()

	tuple := &GroupTuple{
		Time:   tc.Bytes(),
		Slots:  []uint32{0, 7},
		Values: [][]byte{v0.Bytes(), v1.Bytes()},
	}
	enc := tuple.Encode(nil)
	dec, err := DecodeGroupTuple(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Values) != 2 || dec.Slots[0] != 0 || dec.Slots[1] != 7 {
		t.Fatalf("decoded tuple = %+v", dec)
	}

	g, err := DecodeGroupData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Times) != 3 || g.Times[2] != 30 {
		t.Fatalf("times = %v", g.Times)
	}
	if g.Columns[1].Nulls[0] != true || g.Columns[1].Values[1] != 9 {
		t.Fatalf("columns = %+v", g.Columns)
	}
	if g.MinTime() != 10 || g.MaxTime() != 30 {
		t.Fatalf("range [%d,%d]", g.MinTime(), g.MaxTime())
	}
}

func TestDecodeGroupTupleCorrupt(t *testing.T) {
	if _, err := DecodeGroupTuple([]byte{0xff, 0x01}); err == nil {
		t.Fatal("corrupt tuple accepted")
	}
}

func TestGroupDataEncodeDecodeQuick(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for round := 0; round < 100; round++ {
		nTimes := 1 + rnd.Intn(40)
		nCols := 1 + rnd.Intn(8)
		g := &GroupData{}
		ts := int64(rnd.Intn(1000))
		for i := 0; i < nTimes; i++ {
			ts += int64(1 + rnd.Intn(120))
			g.Times = append(g.Times, ts)
		}
		for c := 0; c < nCols; c++ {
			col := GroupColumn{Slot: uint32(c * 3)}
			for i := 0; i < nTimes; i++ {
				if rnd.Intn(4) == 0 {
					col.Values = append(col.Values, 0)
					col.Nulls = append(col.Nulls, true)
				} else {
					col.Values = append(col.Values, rnd.NormFloat64()*100)
					col.Nulls = append(col.Nulls, false)
				}
			}
			g.Columns = append(g.Columns, col)
		}
		enc, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeGroupData(enc)
		if err != nil {
			t.Fatal(err)
		}
		if len(dec.Times) != nTimes || len(dec.Columns) != nCols {
			t.Fatalf("round %d: shape mismatch", round)
		}
		for c := range g.Columns {
			for i := range g.Times {
				if dec.Columns[c].Nulls[i] != g.Columns[c].Nulls[i] {
					t.Fatalf("round %d: null mismatch col %d slot %d", round, c, i)
				}
				if !g.Columns[c].Nulls[i] && dec.Columns[c].Values[i] != g.Columns[c].Values[i] {
					t.Fatalf("round %d: value mismatch col %d slot %d", round, c, i)
				}
			}
		}
	}
}

func TestMergeSamples(t *testing.T) {
	older := []Sample{{10, 1}, {20, 2}, {30, 3}}
	newer := []Sample{{20, 22}, {25, 2.5}, {40, 4}}
	got := MergeSamples(older, newer)
	want := []Sample{{10, 1}, {20, 22}, {25, 2.5}, {30, 3}, {40, 4}}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMergeGroupData(t *testing.T) {
	older := &GroupData{
		Times: []int64{10, 20},
		Columns: []GroupColumn{
			{Slot: 0, Values: []float64{1, 2}, Nulls: []bool{false, false}},
			{Slot: 1, Values: []float64{5, 0}, Nulls: []bool{false, true}},
		},
	}
	newer := &GroupData{
		Times: []int64{20, 30},
		Columns: []GroupColumn{
			{Slot: 0, Values: []float64{22, 33}, Nulls: []bool{false, false}},
			{Slot: 2, Values: []float64{7, 8}, Nulls: []bool{false, false}}, // new member
		},
	}
	m := MergeGroupData(older, newer)
	if len(m.Times) != 3 {
		t.Fatalf("times = %v", m.Times)
	}
	cols := map[uint32]GroupColumn{}
	for _, c := range m.Columns {
		cols[c.Slot] = c
	}
	// slot 0: 1, 22 (newer wins), 33
	if c := cols[0]; c.Values[0] != 1 || c.Values[1] != 22 || c.Values[2] != 33 {
		t.Fatalf("slot0 = %+v", c)
	}
	// slot 1 (missing in newer): 5, NULL, NULL
	if c := cols[1]; c.Nulls[0] || !c.Nulls[1] || !c.Nulls[2] {
		t.Fatalf("slot1 = %+v", c)
	}
	// slot 2 (new member): NULL at t=10 backfill
	if c := cols[2]; !c.Nulls[0] || c.Values[1] != 7 || c.Values[2] != 8 {
		t.Fatalf("slot2 = %+v", c)
	}
}

func TestGroupCompressionBeatsIndividual(t *testing.T) {
	// A group of 16 members sharing timestamps must beat 16 individual
	// chunks on total size (paper Table 3: group ~3.5x smaller).
	const members, n = 16, 32
	var individual int
	for m := 0; m < members; m++ {
		c := NewXORChunk()
		for i := 0; i < n; i++ {
			if err := c.Append(int64(i)*30_000, float64(m)); err != nil {
				t.Fatal(err)
			}
		}
		individual += len(c.Bytes())
	}
	g := &GroupData{}
	for i := 0; i < n; i++ {
		g.Times = append(g.Times, int64(i)*30_000)
	}
	for m := 0; m < members; m++ {
		col := GroupColumn{Slot: uint32(m), Values: make([]float64, n), Nulls: make([]bool, n)}
		for i := range col.Values {
			col.Values[i] = float64(m)
		}
		g.Columns = append(g.Columns, col)
	}
	enc, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) >= individual {
		t.Fatalf("group %d bytes >= individual %d bytes", len(enc), individual)
	}
}

func TestEncodingString(t *testing.T) {
	if EncXOR.String() != "XOR" || EncGroupTime.String() != "GroupTime" ||
		EncGroupValues.String() != "GroupValues" || EncNone.String() != "none" {
		t.Fatal("Encoding.String wrong")
	}
}
