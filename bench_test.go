package timeunion_test

import (
	"testing"

	"timeunion/internal/bench"
)

// Each benchmark regenerates one figure/table of the paper's evaluation at
// a reduced scale and reports the headline metrics. Run a single one with
//
//	go test -bench=BenchmarkFig14 -benchtime=1x
//
// or everything with `go test -bench=.`. For paper-scale runs use
// `go run ./cmd/tubench -exp <id> -hosts 32 -hours 24`.
func benchConfig() bench.Config {
	return bench.Config{
		HourMs:            6_000,
		Hosts:             2,
		SpanHours:         24,
		Seed:              2022,
		QueriesPerPattern: 1,
	}
}

func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	exp, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := exp.Run(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range metrics {
			if v, ok := r.Values[m]; ok {
				b.ReportMetric(v, m)
			}
		}
	}
}

// BenchmarkFig1CloudStorage regenerates Figure 1 (storage pricing and
// read/write latency of the two tiers).
func BenchmarkFig1CloudStorage(b *testing.B) {
	runExperiment(b, "fig1", "read:4096:ratio", "price:ebs/s3")
}

// BenchmarkFig3TsdbMemory regenerates Figure 3 (tsdb resource usage).
func BenchmarkFig3TsdbMemory(b *testing.B) {
	runExperiment(b, "fig3", "breakdown:index", "breakdown:samples")
}

// BenchmarkFig4TsdbLevelDB regenerates Figure 4 (tsdb + LevelDB study).
func BenchmarkFig4TsdbLevelDB(b *testing.B) {
	runExperiment(b, "fig4", "tput:ratio", "tables/compaction")
}

// BenchmarkFig13EndToEnd regenerates Figure 13 (HTTP end-to-end vs Cortex).
func BenchmarkFig13EndToEnd(b *testing.B) {
	runExperiment(b, "fig13", "insert:TU-fast", "insert:Cortex")
}

// BenchmarkFig14StorageEngines regenerates Figure 14 (engine comparison,
// DevOps workload, all Table 2 query patterns).
func BenchmarkFig14StorageEngines(b *testing.B) {
	runExperiment(b, "fig14", "insert:TU", "insert:TU-Group", "insert:tsdb")
}

// BenchmarkFig15BigTimeseries regenerates Figure 15 (dense, long-span data
// with whole-span query patterns).
func BenchmarkFig15BigTimeseries(b *testing.B) {
	runExperiment(b, "fig15", "insert:TU", "insert:tsdb")
}

// BenchmarkFig16MemoryMonitoring regenerates Figure 16 (memory accounting
// during insertion).
func BenchmarkFig16MemoryMonitoring(b *testing.B) {
	runExperiment(b, "fig16", "mem:tsdb", "mem:TU", "mem:TU-Group")
}

// BenchmarkFig17EBSOnly regenerates Figure 17 (single-tier placement).
func BenchmarkFig17EBSOnly(b *testing.B) {
	runExperiment(b, "fig17", "insert:TU", "insert:tsdb")
}

// BenchmarkFig18aEBSLimits regenerates Figure 18a (fast-store budgets).
func BenchmarkFig18aEBSLimits(b *testing.B) {
	runExperiment(b, "fig18a")
}

// BenchmarkFig18bOutOfOrder regenerates Figure 18b (out-of-order volumes).
func BenchmarkFig18bOutOfOrder(b *testing.B) {
	runExperiment(b, "fig18b", "p20:patches")
}

// BenchmarkFig19DynamicSizeControl regenerates Figure 19 (Algorithm 1
// trace).
func BenchmarkFig19DynamicSizeControl(b *testing.B) {
	runExperiment(b, "fig19", "shrinks", "grows")
}

// BenchmarkTable3Sizes regenerates Table 3 (index and data sizes).
func BenchmarkTable3Sizes(b *testing.B) {
	runExperiment(b, "tab3", "index:tsdb", "index:TU", "index:TU-Group")
}
