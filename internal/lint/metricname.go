package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// MetricName enforces the metric-naming contract (DESIGN.md §4.7): every
// instrument registered on an obs.Registry uses a compile-time-constant
// name of the form timeunion_<subsystem>_<name>, the subsystem matches the
// registering package (so a wal metric can't masquerade as an lsm one),
// and no two call sites in a package register the identical name+labels
// series. Dynamic names are rejected outright — they defeat grep, dashboards,
// and cardinality review.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs instruments use constant timeunion_<subsystem>_<name> names matching the registering package",
	Run:  runMetricName,
}

// registryMethods are the obs.Registry instrument constructors.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterFunc": true, "GaugeFunc": true,
}

// metricSubsystems maps a package-path fragment to the metric subsystems
// it may register. A package not listed here may not register instruments
// until it is added — forcing each new subsystem through review.
var metricSubsystems = map[string][]string{
	"internal/core":   {"db"},
	"internal/head":   {"head"},
	"internal/wal":    {"wal"},
	"internal/lsm":    {"lsm"},
	"internal/cloud":  {"store", "cache"},
	"internal/remote": {"http"},
}

var metricNameRE = regexp.MustCompile(`^timeunion_([a-z0-9]+)_[a-z0-9_]+$`)

func runMetricName(pass *Pass) {
	if pass.InScope("internal/obs") {
		return // the registry itself and its self-instrumentation are exempt
	}
	var allowed []string
	known := false
	for frag, subs := range metricSubsystems {
		if pass.InScope(frag) {
			allowed, known = subs, true
			break
		}
	}

	seen := map[string]ast.Node{} // name{labels} -> first registration site
	pass.Inspect(func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !registryMethods[sel.Sel.Name] || len(call.Args) < 2 {
			return true
		}
		recv := derefNamed(pass.Info.TypeOf(sel.X))
		if recv == nil || recv.Obj().Name() != "Registry" || recv.Obj().Pkg() == nil || recv.Obj().Pkg().Name() != "obs" {
			return true
		}

		nameArg := call.Args[0]
		tv, ok := pass.Info.Types[nameArg]
		if !ok || tv.Value == nil {
			pass.Reportf(nameArg.Pos(), "metric name must be a compile-time string constant, not a dynamic expression")
			return true
		}
		name, err := unquoteConst(tv.Value)
		if err != nil {
			return true
		}
		m := metricNameRE.FindStringSubmatch(name)
		if m == nil {
			pass.Reportf(nameArg.Pos(), "metric name %q does not match timeunion_<subsystem>_<name> (lowercase, underscores)", name)
			return true
		}
		if !known {
			pass.Reportf(nameArg.Pos(), "package %s has no subsystem entry in the metricname analyzer table; add one before registering instruments", pass.PkgPath)
			return true
		}
		sub := m[1]
		match := false
		for _, s := range allowed {
			if s == sub {
				match = true
				break
			}
		}
		if !match {
			pass.Reportf(nameArg.Pos(), "metric %q uses subsystem %q but this package registers %s", name, sub, strings.Join(quoteAll(allowed), " or "))
			return true
		}

		// Duplicate detection: only when the labels argument is constant
		// too (per-instance label strings built at runtime are fine).
		if ltv, ok := pass.Info.Types[call.Args[1]]; ok && ltv.Value != nil {
			labels, err := unquoteConst(ltv.Value)
			if err == nil {
				key := name + "{" + labels + "}"
				if first, dup := seen[key]; dup {
					pass.Reportf(nameArg.Pos(), "series %s already registered in this package at %s; reuse the instrument instead of re-registering", key, pass.Fset.Position(first.Pos()))
				} else {
					seen[key] = nameArg
				}
			}
		}
		return true
	})
}

func quoteAll(ss []string) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = `"` + s + `"`
	}
	return out
}
