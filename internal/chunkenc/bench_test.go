package chunkenc

import "testing"

func BenchmarkXORAppend(b *testing.B) {
	b.ReportAllocs()
	c := NewXORChunk()
	for i := 0; i < b.N; i++ {
		if c.NumSamples() >= 120 {
			c = NewXORChunk()
		}
		if err := c.Append(int64(i)*30_000, float64(i%7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXORIterate(b *testing.B) {
	c := NewXORChunk()
	for i := 0; i < 120; i++ {
		if err := c.Append(int64(i)*30_000, float64(i%7)); err != nil {
			b.Fatal(err)
		}
	}
	payload := append([]byte(nil), c.Bytes()...)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		it := NewXORIterator(payload)
		for it.Next() {
		}
		if it.Err() != nil {
			b.Fatal(it.Err())
		}
	}
}

func BenchmarkGroupTupleEncode(b *testing.B) {
	g := &GroupData{}
	for i := 0; i < 32; i++ {
		g.Times = append(g.Times, int64(i)*30_000)
	}
	for m := 0; m < 101; m++ {
		col := GroupColumn{Slot: uint32(m), Values: make([]float64, 32), Nulls: make([]bool, 32)}
		for i := range col.Values {
			col.Values[i] = float64(m + i)
		}
		g.Columns = append(g.Columns, col)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := g.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}
