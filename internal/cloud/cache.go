package cloud

import (
	"container/list"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"
)

// LRUCache is a byte-capacity-bounded LRU of data segments fetched from the
// slow store during querying (paper §4.1: "we equip a 1GB in-memory LRU
// cache to cache the data segments fetched from S3"). Concurrent misses on
// the same key are deduplicated: GetOrFetch issues one store fetch and
// shares the result with every waiter (singleflight), so a parallel query
// whose workers touch the same slow-tier segment pays one S3 Get, not N.
//
// Aliasing contract: cached segments are IMMUTABLE after insert. Put takes
// ownership of the data slice (the inserter must not write to it again),
// and Get/GetOrFetch hand every caller the same slice, which must be
// treated as read-only. This is what lets the sstable reader decode blocks
// straight out of the cache with zero copies: decoders may retain
// sub-slices for as long as they like (the GC keeps even evicted segments
// alive while referenced) but must never write through them. The contract
// is enforceable in tests via SetIntegrityChecks, which checksums segments
// at insert and panics on a hit whose bytes have changed.
type LRUCache struct {
	mu       sync.Mutex
	capacity int64
	used     int64
	ll       *list.List
	items    map[string]*list.Element
	flight   map[string]*flightCall

	// Counters are atomic so scrapers and stats snapshots never contend
	// with lookups for the structural mutex.
	hits, misses, shared, evictions atomic.Uint64
}

type cacheEntry struct {
	key  string
	data []byte
	sum  uint32 // CRC of data at insert; checked only with integrity checks on
}

// cacheIntegrity, when set, makes Put record a checksum of every inserted
// segment and every cache hit verify it, turning a violation of the
// immutability contract into a panic at the point of detection. Test hook;
// off in production (hits stay O(1) without hashing).
var cacheIntegrity atomic.Bool

// SetIntegrityChecks toggles cached-segment checksum verification. Tests
// exercising the zero-copy read path enable it to prove nothing writes to
// cache-resident blocks. Segments inserted while the flag was off are not
// verified.
func SetIntegrityChecks(on bool) { cacheIntegrity.Store(on) }

// verify panics if a cached segment no longer matches its insert-time
// checksum. Called on hit paths with c.mu held.
func (c *LRUCache) verify(ent *cacheEntry) {
	if !cacheIntegrity.Load() || ent.sum == 0 {
		return
	}
	if got := crc32.ChecksumIEEE(ent.data); got != ent.sum {
		panic(fmt.Sprintf("cloud: cached segment %q mutated after insert (crc %08x, want %08x): immutability contract violated", ent.key, got, ent.sum))
	}
}

// flightCall is one in-progress fetch that late-arriving misses wait on.
type flightCall struct {
	wg   sync.WaitGroup
	data []byte
	err  error
}

// NewLRUCache creates a cache bounded to capacity bytes. A capacity of 0
// disables caching (all lookups miss), but GetOrFetch still deduplicates
// concurrent fetches of the same key.
func NewLRUCache(capacity int64) *LRUCache {
	return &LRUCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		flight:   make(map[string]*flightCall),
	}
}

// Get returns the cached segment, if present. The slice is shared with
// every other reader and must be treated as read-only.
func (c *LRUCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.verify(ent)
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		return ent.data, true
	}
	c.misses.Add(1)
	return nil, false
}

// GetOrFetch returns the cached segment, calling fetch on a miss and
// inserting the result. Concurrent callers missing on the same key share a
// single fetch: one caller (the leader) runs fetch while the rest block and
// receive its result. Transient store failures are retried by the leader
// with DefaultRetry's bounded backoff before the error is shared; errors
// are returned to every sharing caller but are not cached, so the next
// miss retries from scratch.
func (c *LRUCache) GetOrFetch(key string, fetch func() ([]byte, error)) ([]byte, error) {
	c.mu.Lock()
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.verify(ent)
		c.ll.MoveToFront(e)
		c.hits.Add(1)
		c.mu.Unlock()
		return ent.data, nil
	}
	if fc, ok := c.flight[key]; ok {
		c.shared.Add(1)
		c.mu.Unlock()
		fc.wg.Wait()
		return fc.data, fc.err
	}
	fc := &flightCall{}
	fc.wg.Add(1)
	c.flight[key] = fc
	c.misses.Add(1)
	c.mu.Unlock()

	fc.err = DefaultRetry.Do(func() error {
		var err error
		fc.data, err = fetch()
		return err
	})
	if fc.err == nil {
		c.Put(key, fc.data)
	}
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	fc.wg.Done()
	return fc.data, fc.err
}

// Put inserts a segment, evicting LRU entries to stay within capacity.
// Segments larger than the whole capacity are not cached; overwriting an
// existing key with such a segment drops the stale cached value.
//
// Put takes ownership of data: the segment is immutable from here on, and
// the caller must not write to the slice again (zero-copy readers alias it).
func (c *LRUCache) Put(key string, data []byte) {
	var sum uint32
	if cacheIntegrity.Load() {
		sum = crc32.ChecksumIEEE(data)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if int64(len(data)) > c.capacity {
		c.removeLocked(key)
		return
	}
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.used += int64(len(data)) - int64(len(ent.data))
		ent.data = data
		ent.sum = sum
		c.ll.MoveToFront(e)
	} else {
		c.items[key] = c.ll.PushFront(&cacheEntry{key: key, data: data, sum: sum})
		c.used += int64(len(data))
	}
	for c.used > c.capacity {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.used -= int64(len(ent.data))
		delete(c.items, ent.key)
		c.ll.Remove(back)
		c.evictions.Add(1)
	}
}

// Invalidate drops a key (after the underlying object is deleted or
// replaced by compaction).
func (c *LRUCache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.removeLocked(key)
}

// removeLocked drops a key's entry, adjusting the byte accounting. The
// caller holds c.mu.
func (c *LRUCache) removeLocked(key string) {
	if e, ok := c.items[key]; ok {
		ent := e.Value.(*cacheEntry)
		c.used -= int64(len(ent.data))
		delete(c.items, ent.key)
		c.ll.Remove(e)
	}
}

// UsedBytes returns the current cached volume.
func (c *LRUCache) UsedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// HitRate returns hits, misses since creation. A GetOrFetch leader counts
// as a miss; waiters sharing its fetch count in neither (see SharedFetches).
func (c *LRUCache) HitRate() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// SharedFetches returns how many callers were served by waiting on another
// caller's in-flight fetch instead of issuing their own store read.
func (c *LRUCache) SharedFetches() uint64 { return c.shared.Load() }

// Evictions returns how many entries capacity pressure has pushed out.
func (c *LRUCache) Evictions() uint64 { return c.evictions.Load() }
