package core

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"timeunion/internal/cloud"
	"timeunion/internal/index"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
)

// This file is the identity guarantee of the streaming refactor: the old
// materializing read path (eager SeriesSamples/GroupSamples + per-sample
// mergeOne head overlay) lives on here as the reference implementation,
// and randomized workloads assert the iterator pipeline reproduces it
// byte-for-byte.

// mergeOneRef is the pre-refactor head-overlay insertion (O(n) per sample,
// O(n²) per query), kept as the reference the streaming merge must match.
func mergeOneRef(s []lsm.SamplePair, p lsm.SamplePair) []lsm.SamplePair {
	i := sort.Search(len(s), func(i int) bool { return s[i].T >= p.T })
	if i < len(s) && s[i].T == p.T {
		s[i] = p
		return s
	}
	s = append(s, lsm.SamplePair{})
	copy(s[i+1:], s[i:])
	s[i] = p
	return s
}

func legacySeries(t testing.TB, db *DB, id uint64, mint, maxt int64) (Series, bool) {
	lbls, ok := db.head.SeriesLabels(id)
	if !ok {
		return Series{}, false
	}
	chunks, err := db.store.ChunksFor(id, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := lsm.SeriesSamples(chunks, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	headSamples, err := db.head.HeadSamples(id, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	for _, hs := range headSamples {
		samples = mergeOneRef(samples, lsm.SamplePair{T: hs.T, V: hs.V})
	}
	if len(samples) == 0 {
		return Series{}, false
	}
	return Series{Labels: lbls, Samples: samples}, true
}

func legacyGroup(t testing.TB, db *DB, gid uint64, mint, maxt int64, matchers []*labels.Matcher) []Series {
	groupTags, members, ok := db.head.GroupInfo(gid)
	if !ok {
		return nil
	}
	chunks, err := db.store.ChunksFor(gid, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	bySlot, err := lsm.GroupSamples(chunks, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	headBySlot, err := db.head.HeadGroupSamples(gid, mint, maxt)
	if err != nil {
		t.Fatal(err)
	}
	for slot, hs := range headBySlot {
		for _, s := range hs {
			bySlot[slot] = mergeOneRef(bySlot[slot], lsm.SamplePair{T: s.T, V: s.V})
		}
	}
	var out []Series
	for slot := uint32(0); int(slot) < len(members); slot++ {
		samples := bySlot[slot]
		if len(samples) == 0 {
			continue
		}
		full := labels.Merge(groupTags, members[slot])
		if !matchAll(full, matchers) {
			continue
		}
		out = append(out, Series{Labels: full, Samples: samples})
	}
	return out
}

// legacyQuery is the pre-refactor query pipeline, end to end.
func legacyQuery(t testing.TB, db *DB, mint, maxt int64, matchers ...*labels.Matcher) []Series {
	ids, err := db.head.Index().Select(matchers...)
	if err != nil {
		t.Fatal(err)
	}
	var out []Series
	for _, id := range ids {
		if index.IsGroupID(id) {
			out = append(out, legacyGroup(t, db, id, mint, maxt, matchers)...)
		} else if s, ok := legacySeries(t, db, id, mint, maxt); ok {
			out = append(out, s)
		}
	}
	sortSeries(out)
	return out
}

func sortSeries(s []Series) {
	sort.SliceStable(s, func(i, j int) bool { return s[i].Labels.Compare(s[j].Labels) < 0 })
}

func drainSet(t testing.TB, set SeriesSet) []Series {
	var out []Series
	for set.Next() {
		e := set.At()
		samples, err := drainPairs(e.Iterator)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, Series{Labels: e.Labels, Samples: samples})
	}
	if err := set.Err(); err != nil {
		t.Fatal(err)
	}
	sortSeries(out)
	return out
}

func compareSeries(t testing.TB, tag string, got, want []Series) {
	if len(got) != len(want) {
		t.Fatalf("%s: %d series, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if got[i].Labels.Compare(want[i].Labels) != 0 {
			t.Fatalf("%s series %d: labels %v, want %v", tag, i, got[i].Labels, want[i].Labels)
		}
		if len(got[i].Samples) != len(want[i].Samples) {
			t.Fatalf("%s series %v: %d samples, want %d\ngot  %v\nwant %v",
				tag, got[i].Labels, len(got[i].Samples), len(want[i].Samples), got[i].Samples, want[i].Samples)
		}
		for j := range want[i].Samples {
			if got[i].Samples[j] != want[i].Samples[j] {
				t.Fatalf("%s series %v sample %d: %v, want %v",
					tag, got[i].Labels, j, got[i].Samples[j], want[i].Samples[j])
			}
		}
	}
}

// loadRandomWorkload drives every ingestion shape through the head:
// in-order appends, out-of-order rewrites and early flushes, duplicate
// timestamps re-appended across flush boundaries (distinct ranks), and
// group rows with random NULL patterns. Returns the max timestamp written.
func loadRandomWorkload(t testing.TB, db *DB, rnd *rand.Rand, rounds int) int64 {
	type cursor struct {
		id   uint64
		last int64
	}
	var series []cursor
	for i := 0; i < 3; i++ {
		ls := labels.FromStrings("metric", "cpu", "host", fmt.Sprintf("h%d", i))
		id, err := db.Append(ls, 0, rnd.Float64()*100)
		if err != nil {
			t.Fatal(err)
		}
		series = append(series, cursor{id: id})
	}
	gTags := labels.FromStrings("metric", "mem", "dc", "east")
	uniques := []labels.Labels{
		labels.FromStrings("host", "g0"),
		labels.FromStrings("host", "g1"),
		labels.FromStrings("host", "g2"),
	}
	gid, slots, err := db.AppendGroup(gTags, uniques, 0, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	glast, maxT := int64(0), int64(0)
	bump := func(v int64) {
		if v > maxT {
			maxT = v
		}
	}
	for r := 0; r < rounds; r++ {
		switch rnd.Intn(10) {
		case 0: // out-of-order series sample
			c := &series[rnd.Intn(len(series))]
			tt := c.last - int64(1+rnd.Intn(300))
			if tt < 0 {
				tt = 0
			}
			if err := db.AppendFast(c.id, tt, rnd.Float64()*100); err != nil {
				t.Fatal(err)
			}
		case 1: // duplicate timestamp, new value (newest must win)
			c := &series[rnd.Intn(len(series))]
			if err := db.AppendFast(c.id, c.last, rnd.Float64()*100); err != nil {
				t.Fatal(err)
			}
		case 2: // flush boundary: everything so far gets an older rank
			if err := db.Flush(); err != nil {
				t.Fatal(err)
			}
		case 3, 4: // group row with a random NULL pattern
			glast += int64(1 + rnd.Intn(60))
			bump(glast)
			var sub []int
			var vals []float64
			for _, s := range slots {
				if rnd.Intn(3) > 0 {
					sub = append(sub, s)
					vals = append(vals, rnd.Float64()*100)
				}
			}
			if len(sub) == 0 {
				sub, vals = slots[:1], []float64{rnd.Float64() * 100}
			}
			if err := db.AppendGroupFast(gid, sub, glast, vals); err != nil {
				t.Fatal(err)
			}
		case 5: // out-of-order group row
			tt := glast - int64(1+rnd.Intn(200))
			if tt < 0 {
				tt = 0
			}
			if err := db.AppendGroupFast(gid, slots, tt, []float64{rnd.Float64(), rnd.Float64(), rnd.Float64()}); err != nil {
				t.Fatal(err)
			}
		default: // in-order series sample
			c := &series[rnd.Intn(len(series))]
			c.last += int64(1 + rnd.Intn(50))
			bump(c.last)
			if err := db.AppendFast(c.id, c.last, rnd.Float64()*100); err != nil {
				t.Fatal(err)
			}
		}
	}
	return maxT
}

func checkStreamingIdentity(t testing.TB, db *DB, rnd *rand.Rand, maxT int64) {
	sel := func(typ labels.MatchType, n, v string) *labels.Matcher {
		m, err := labels.NewMatcher(typ, n, v)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	matcherSets := [][]*labels.Matcher{
		{sel(labels.MatchRegexp, "metric", ".+")}, // everything, incl. groups
		{sel(labels.MatchEqual, "metric", "cpu")}, // individual series only
		{sel(labels.MatchEqual, "host", "g1")},    // one group member
		{sel(labels.MatchNotEqual, "host", "h0")}, // negative matcher
	}
	windows := [][2]int64{
		{0, maxT + 100},
		{maxT / 3, 2 * maxT / 3},
		{maxT + 1000, maxT + 2000}, // empty
	}
	for i := 0; i < 2; i++ {
		a, b := rnd.Int63n(maxT+1), rnd.Int63n(maxT+1)
		if a > b {
			a, b = b, a
		}
		windows = append(windows, [2]int64{a, b})
	}
	for mi, ms := range matcherSets {
		for wi, w := range windows {
			tag := fmt.Sprintf("matcher %d window %d [%d,%d]", mi, wi, w[0], w[1])
			want := legacyQuery(t, db, w[0], w[1], ms...)
			got, err := db.Query(w[0], w[1], ms...)
			if err != nil {
				t.Fatal(err)
			}
			compareSeries(t, tag+" Query", got, want)
			set, err := db.QuerySeriesSet(context.Background(), w[0], w[1], ms...)
			if err != nil {
				t.Fatal(err)
			}
			compareSeries(t, tag+" SeriesSet", drainSet(t, set), want)
		}
	}
}

// TestStreamingMatchesLegacy is the randomized property test: the
// streaming pipeline must be sample-identical to the pre-refactor slice
// path over every ingestion shape. Run under -race by `make tier1-iter`.
func TestStreamingMatchesLegacy(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 4; trial++ {
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			db := openTestDB(t, testOpts(t.TempDir()))
			maxT := loadRandomWorkload(t, db, rnd, 600)
			checkStreamingIdentity(t, db, rnd, maxT)
		})
	}
}

// FuzzStreamingQuery lets the fuzzer pick the workload seed and size.
func FuzzStreamingQuery(f *testing.F) {
	f.Add(int64(1), uint8(80))
	f.Add(int64(20260806), uint8(200))
	f.Add(int64(-99), uint8(10))
	f.Fuzz(func(t *testing.T, seed int64, rounds uint8) {
		rnd := rand.New(rand.NewSource(seed))
		db := openTestDB(t, testOpts(t.TempDir()))
		maxT := loadRandomWorkload(t, db, rnd, 20+int(rounds))
		checkStreamingIdentity(t, db, rnd, maxT)
	})
}

// TestNarrowRangeDecodeShrink asserts the satellite guarantee: a narrow
// query over long retention decodes a fraction of the bytes a full-range
// query does, because chunk envelope bounds prune undecoded chunks.
func TestNarrowRangeDecodeShrink(t *testing.T) {
	opts := testOpts(t.TempDir())
	db := openTestDB(t, opts)
	id, err := db.Append(labels.FromStrings("metric", "cpu", "host", "a"), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for ts := int64(10); ts <= 20000; ts += 10 {
		if err := db.AppendFast(id, ts, float64(ts)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	decodedDelta := func(mint, maxt int64) (float64, int) {
		before := db.Metrics().Snapshot()["timeunion_db_decoded_bytes_total"]
		res, err := db.Query(mint, maxt, mustMatcher(t, "metric", "cpu"))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, s := range res {
			n += len(s.Samples)
		}
		return db.Metrics().Snapshot()["timeunion_db_decoded_bytes_total"] - before, n
	}
	fullBytes, fullN := decodedDelta(0, 20000)
	if fullN != 2001 || fullBytes == 0 {
		t.Fatalf("full query: %d samples, %v decoded bytes", fullN, fullBytes)
	}
	narrowBytes, narrowN := decodedDelta(19000, 19100)
	if narrowN != 11 {
		t.Fatalf("narrow query returned %d samples, want 11", narrowN)
	}
	if narrowBytes == 0 {
		t.Fatal("narrow query decoded nothing")
	}
	if narrowBytes > fullBytes/4 {
		t.Fatalf("narrow query decoded %v bytes, full %v — pruning not effective", narrowBytes, fullBytes)
	}
}

func mustMatcher(t testing.TB, name, value string) *labels.Matcher {
	m, err := labels.NewMatcher(labels.MatchEqual, name, value)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// BenchmarkHeadOverlayMerge measures the head-overlay cost on a series
// with thousands of unflushed head samples over stored chunks — the shape
// where the old per-sample mergeOne insertion was O(n²).
func BenchmarkHeadOverlayMerge(b *testing.B) {
	opts := Options{
		Dir:               b.TempDir(),
		Fast:              cloud.NewMemStore(cloud.TierBlock, cloud.LatencyModel{}),
		Slow:              cloud.NewMemStore(cloud.TierObject, cloud.LatencyModel{}),
		CacheBytes:        1 << 20,
		ChunkSamples:      8192, // keep thousands of samples in the open head chunk
		SlotsPerRegion:    256,
		MemTableSize:      1 << 20,
		L0PartitionLength: 100000,
		L2PartitionLength: 400000,
		MaxL0Partitions:   2,
		PatchThreshold:    2,
		TargetTableSize:   64 << 10,
		BlockSize:         4096,
	}
	db, err := Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	id, err := db.Append(labels.FromStrings("metric", "cpu", "host", "a"), 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	const stored, inHead = 4000, 4000
	for ts := int64(1); ts <= stored; ts++ {
		if err := db.AppendFast(id, ts*10, float64(ts)); err != nil {
			b.Fatal(err)
		}
	}
	if err := db.Flush(); err != nil {
		b.Fatal(err)
	}
	for ts := int64(stored + 1); ts <= stored+inHead; ts++ {
		if err := db.AppendFast(id, ts*10, float64(ts)); err != nil {
			b.Fatal(err)
		}
	}
	m := mustMatcher(b, "metric", "cpu")

	b.Run("legacy-mergeOne", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := legacyQuery(b, db, 0, (stored+inHead)*10, m)
			if len(res) != 1 || len(res[0].Samples) != stored+inHead+1 {
				b.Fatalf("bad result: %d series", len(res))
			}
		}
	})
	b.Run("streaming", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := db.Query(0, (stored+inHead)*10, m)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) != 1 || len(res[0].Samples) != stored+inHead+1 {
				b.Fatalf("bad result: %d series", len(res))
			}
		}
	})
}
