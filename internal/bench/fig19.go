package bench

import (
	"fmt"

	"timeunion/internal/lsm"
	"timeunion/internal/tsbs"
)

// Fig19 regenerates Figure 19: the dynamic size control trace. Data starts
// at a dense 10-second interval until the fast-store usage exceeds the
// budget (partition length halves), then switches to a sparse 60-second
// interval (length grows back), then dense again (length shrinks), while
// usage stays near the budget.
func Fig19(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("fig19", "Dynamic size control trace",
		"phase", "logical time", "R1", "fast usage")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	ec := newEngineConfig(cfg, hosts)
	ec.fastLimit = 512 << 10 // the paper's 512MB, scaled
	ec.dynamic = true
	e, err := newTUEngine(ec, "TU")
	if err != nil {
		return nil, err
	}
	defer e.close()
	tree, ok := e.db.ChunkStoreRef().(*lsm.LSM)
	if !ok {
		return nil, fmt.Errorf("bench: fig19 needs the time-partitioned tree")
	}

	phases := []struct {
		name        string
		intervalDiv int64 // samples per hour
		hours       int
	}{
		{"dense-10s", 360, cfg.SpanHours},
		{"sparse-60s", 60, cfg.SpanHours},
		{"dense-10s-again", 360, cfg.SpanHours},
	}

	now := int64(0)
	var maxUsage int64
	sampleEvery := 8
	for _, ph := range phases {
		interval := cfg.HourMs / ph.intervalDiv
		rounds := int(int64(ph.hours) * cfg.HourMs / interval)
		gen := tsbs.NewGenerator(hosts, now+interval, interval, cfg.Seed+now)
		for round := 0; round < rounds; round++ {
			t, vals := gen.Round()
			now = t
			if err := e.insertRound(t, vals); err != nil {
				return nil, err
			}
			if round%(rounds/sampleEvery+1) == 0 {
				if err := e.flush(); err != nil {
					return nil, err
				}
				r1, _ := tree.PartitionLengths()
				usage := tree.FastUsage()
				if usage > maxUsage {
					maxUsage = usage
				}
				r.addRow(ph.name, fmt.Sprintf("%dh", now/cfg.HourMs),
					fmt.Sprintf("%.1fmin", float64(r1)/float64(cfg.HourMs)*60),
					fmtBytes(usage))
			}
		}
		if err := e.flush(); err != nil {
			return nil, err
		}
		r1, _ := tree.PartitionLengths()
		r.Values["r1:"+ph.name] = float64(r1)
		r.Values["usage:"+ph.name] = float64(tree.FastUsage())
	}
	st := tree.Stats()
	r.Values["shrinks"] = float64(st.ResizeShrinks)
	r.Values["grows"] = float64(st.ResizeGrows)
	r.Values["maxUsage"] = float64(maxUsage)
	r.Values["limit"] = float64(ec.fastLimit)
	r.note("paper: partition length drops 30→15 min under dense data, grows to 120 min when sparse, shrinks again when dense returns; EBS usage stays under the 512MB limit")
	return r, nil
}

// Table3 regenerates Table 3: the index and data sizes of tsdb, TU, and
// TU-Group after the same DevOps load.
func Table3(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	r := newReport("tab3", "Index and data size",
		"engine", "index", "data")

	hosts := tsbs.Hosts(cfg.Hosts, cfg.Seed)
	interval := cfg.HourMs / 120
	span := int64(cfg.SpanHours) * cfg.HourMs
	rounds := int(span / interval)

	for _, name := range []string{"tsdb", "TU", "TU-Group"} {
		ec := newEngineConfig(cfg, hosts)
		e, err := buildEngine(ec, name)
		if err != nil {
			return nil, err
		}
		gen := tsbs.NewGenerator(hosts, interval, interval, cfg.Seed+7)
		for round := 0; round < rounds; round++ {
			t, vals := gen.Round()
			if err := e.insertRound(t, vals); err != nil {
				e.close()
				return nil, err
			}
		}
		if err := e.flush(); err != nil {
			e.close()
			return nil, err
		}

		var indexBytes, dataBytes int64
		switch eng := e.(type) {
		case *tsdbEngine:
			// tsdb: per-block index objects (+ head index) vs chunk files.
			keys, err := eng.t.slow.List("tsdbblk/")
			if err != nil {
				e.close()
				return nil, err
			}
			for _, k := range keys {
				sz, err := eng.t.slow.Size(k)
				if err != nil {
					continue
				}
				if len(k) > 5 && k[len(k)-5:] == "index" {
					indexBytes += sz
				} else {
					dataBytes += sz
				}
			}
			indexBytes += eng.db.Footprint().IndexBytes
		case *tuEngine:
			st := eng.db.Stats()
			indexBytes = st.Memory.IndexBytes
			dataBytes = st.FastBytes + st.SlowBytes
		case *tuGroupEngine:
			st := eng.db.Stats()
			indexBytes = st.Memory.IndexBytes
			dataBytes = st.FastBytes + st.SlowBytes
		}
		r.addRow(name, fmtBytes(indexBytes), fmtBytes(dataBytes))
		r.Values["index:"+name] = float64(indexBytes)
		r.Values["data:"+name] = float64(dataBytes)
		if err := e.close(); err != nil {
			return nil, err
		}
	}
	r.note("paper (2M series): index 3.27/2.70/2.20 GB, data 20.28/8.61/2.42 GB for tsdb/TU/TU-Group")
	return r, nil
}
