package lsm

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/sstable"
)

// This file implements the read-only side of the manifest protocol
// (DESIGN.md §4.13): rebuilding an immutable tree *view* from a manifest
// version, and atomically swapping a replica's view as the writer commits
// new versions. The view builder is shared with writer recovery
// (recoverLevels), so the two paths cannot drift; they differ only in
// policy — the writer quarantines corrupt tables and garbage-collects,
// a replica never writes or deletes anything on the shared stores.

// ErrReadOnly is returned by every mutating operation of a tree opened
// with Options.ReadOnly.
var ErrReadOnly = errors.New("lsm: tree is open read-only")

// refreshRetries bounds how many times one Refresh re-lists after losing
// the prune race (the writer's best-effort delete of manifest version−1 or
// of compacted-away tables landing between the replica's List and Get).
// Each retry re-reads the listing, so a single quiescent writer moment
// lets the refresh converge; the bound only guards against a pathological
// writer committing faster than the replica can list.
const refreshRetries = 32

// viewBuilder reconstructs per-level partition metadata from the table
// keys a manifest names. It is the extracted core of writer recovery,
// parameterized by the two policies that differ between a recovering
// writer and a refreshing replica:
//
//   - quarantine: a writer deletes structurally corrupt tables (torn
//     writes whose data is still in the WAL); a replica must not write to
//     the shared store, and a corrupt *committed* table cannot be a torn
//     write anyway — the refresh fails and the old view stays installed.
//   - reuse: a replica refresh adopts the still-live handles of its
//     current view (retaining them) instead of re-opening every table, so
//     steady-state refreshes cost one List+Get per tier.
type viewBuilder struct {
	l          *LSM
	quarantine bool
	reuse      map[string]*tableHandle

	tombs      map[string]bool
	referenced map[string]bool
	levels     map[int][]*partition
	maxSeq     uint64
	// adopted tracks every reference this builder owns (fresh opens and
	// retained reuses alike) so abort can undo a half-built view.
	adopted []*tableHandle
}

func newViewBuilder(l *LSM, tombs map[string]bool, quarantine bool, reuse map[string]*tableHandle) *viewBuilder {
	return &viewBuilder{
		l:          l,
		quarantine: quarantine,
		reuse:      reuse,
		tombs:      tombs,
		referenced: map[string]bool{},
		levels:     map[int][]*partition{},
	}
}

// abort releases every reference the builder acquired. Handles opened
// fresh drop to zero references; handles adopted from a live view drop
// back to the view's single reference. Nothing is deleted (obsolete is
// never set here).
func (b *viewBuilder) abort() {
	for _, h := range b.adopted {
		h.release()
	}
	b.adopted = nil
}

// openHandle returns a tree reference for key: the reused live handle
// when available, a freshly opened table otherwise.
func (b *viewBuilder) openHandle(store cloud.Store, key string, seq uint64) (*tableHandle, error) {
	if h, ok := b.reuse[key]; ok {
		h.retain()
		b.adopted = append(b.adopted, h)
		return h, nil
	}
	tbl, err := sstable.OpenTable(store, key, b.l.cacheFor(store))
	if err != nil {
		return nil, err
	}
	h := newTableHandle(tbl, store, key, seq)
	b.adopted = append(b.adopted, h)
	return h, nil
}

// addTier rebuilds one tier's partitions from its table keys: parse each
// key into (level, window, seq), group tables by partition directory, sort
// base tables by first key (disjoint ID ranges), and attach patches to
// their base tables by baseSeq in seq order.
func (b *viewBuilder) addTier(store cloud.Store, keys []string) error {
	l := b.l
	type patchRec struct {
		baseSeq uint64
		h       *tableHandle
	}
	parts := map[string]*partition{}
	partLevel := map[string]int{}
	patchesByPart := map[string][]patchRec{}
	var order []string
	for _, key := range keys {
		if b.tombs[key] {
			continue
		}
		level, minT, maxT, baseSeq, seq, isPatch, err := parseTableName(key)
		if err != nil {
			continue // foreign object in the bucket: skip
		}
		b.referenced[key] = true
		if seq > b.maxSeq {
			b.maxSeq = seq
		}
		dir := key[:strings.LastIndex(key, "/")]
		p := parts[dir]
		if p == nil {
			p = &partition{minT: minT, maxT: maxT}
			parts[dir] = p
			partLevel[dir] = level
			order = append(order, dir)
		}
		h, err := b.openHandle(store, key, seq)
		if err != nil {
			if b.quarantine && errors.Is(err, sstable.ErrCorrupt) {
				// A structurally invalid table can only be a torn write:
				// flush marks (and WAL purge) happen strictly after every
				// table of a flush is durably committed, so this table's
				// data is still in the WAL and will be replayed.
				// Quarantine it.
				_ = store.Delete(key)
				l.stats.quarantined.Add(1)
				if j := l.opts.Journal; j != nil {
					tier := "slow"
					if store == l.opts.Fast {
						tier = "fast"
					}
					// One event per quarantined table: each is its own
					// data-loss-averted incident with its own key, emitted
					// only after the delete; the view build the loop serves
					// has no single outcome to defer-journal here.
					//lint:ignore journalcover per-table quarantine events are intentional; a deferred emit would collapse distinct corrupt-table incidents
					j.Emit("lsm.quarantine", time.Now(), nil, map[string]any{
						"key": key, "tier": tier,
					})
				}
				continue
			}
			return fmt.Errorf("lsm: view open %s: %w", key, err)
		}
		if isPatch {
			patchesByPart[dir] = append(patchesByPart[dir], patchRec{baseSeq: baseSeq, h: h})
		} else {
			p.tables = append(p.tables, h)
		}
	}
	for _, dir := range order {
		p := parts[dir]
		if len(p.tables) == 0 && len(patchesByPart[dir]) == 0 {
			continue // every table of the partition was quarantined
		}
		// Base tables sorted by first key (disjoint ID ranges).
		sort.Slice(p.tables, func(i, j int) bool {
			return string(p.tables[i].tbl.FirstKey()) < string(p.tables[j].tbl.FirstKey())
		})
		p.patches = make([][]*tableHandle, len(p.tables))
		recs := patchesByPart[dir]
		sort.Slice(recs, func(i, j int) bool { return recs[i].h.seq < recs[j].h.seq })
		for _, rec := range recs {
			attached := false
			for i, base := range p.tables {
				if base.seq == rec.baseSeq {
					p.patches[i] = append(p.patches[i], rec.h)
					attached = true
					break
				}
			}
			if !attached && len(p.tables) > 0 {
				// Base was replaced by a split-merge before this patch's
				// metadata was dropped: attach to the first table, which
				// preserves query correctness (rank still orders it).
				p.patches[0] = append(p.patches[0], rec.h)
			}
		}
		b.levels[partLevel[dir]] = append(b.levels[partLevel[dir]], p)
	}
	return nil
}

// finish sorts each level's partitions by window start and returns the
// three levels.
func (b *viewBuilder) finish() (l0, l1, l2 []*partition) {
	for _, parts := range b.levels {
		sort.Slice(parts, func(i, j int) bool { return parts[i].minT < parts[j].minT })
	}
	return b.levels[0], b.levels[1], b.levels[2]
}

// refreshResult carries what one successful view swap changed, for the
// lsm.view_refresh journal event.
type refreshResult struct {
	changed                bool
	oldFast, newFast       uint64
	oldSlow, newSlow       uint64
	added, dropped         int
	tablesFast, tablesSlow int
}

// Refresh polls the shared stores for newer manifest versions and, when
// found, atomically swaps in a freshly built view under the existing lock
// hierarchy, releasing the tree references of tables that left the set
// (the PR-6 ownership contract: a replica never marks handles obsolete,
// so releasing can never delete a shared object). It reports whether the
// view changed.
//
// The writer prunes manifest version−1 (and compacted-away tables)
// best-effort after each commit, so a NotFound on a key the replica just
// listed is an expected race, not corruption: Refresh re-lists and
// retries. Any other failure leaves the previous view installed and
// serving.
func (l *LSM) Refresh() (changed bool, err error) {
	if !l.opts.ReadOnly {
		return false, fmt.Errorf("lsm: Refresh is only valid on a read-only tree")
	}
	l.refreshMu.Lock()
	defer l.refreshMu.Unlock()

	start := time.Now()
	var res refreshResult
	retries := 0
	// Journal every refresh that changed the view or failed, on every exit
	// path; the steady-state "nothing new" poll stays silent.
	defer func() {
		if j := l.opts.Journal; j != nil && (err != nil || res.changed) {
			j.Emit("lsm.view_refresh", start, err, map[string]any{
				"version_fast_old": res.oldFast,
				"version_fast":     res.newFast,
				"version_slow_old": res.oldSlow,
				"version_slow":     res.newSlow,
				"tables_added":     res.added,
				"tables_dropped":   res.dropped,
				"tables_fast":      res.tablesFast,
				"tables_slow":      res.tablesSlow,
				"retries":          retries,
			})
		}
	}()
	for {
		res, err = l.tryRefresh()
		if err == nil || !cloud.IsNotFound(err) {
			break
		}
		retries++
		if retries >= refreshRetries {
			err = fmt.Errorf("lsm: refresh: lost the manifest prune race %d times: %w", retries, err)
			break
		}
		// The writer pruned a listed version between our List and Get (or
		// deleted a table a just-superseded manifest named): re-list.
	}
	if err != nil {
		return false, err
	}
	return res.changed, nil
}

// tryRefresh performs one load-build-swap attempt. Callers hold
// l.refreshMu, which serializes view swaps; queries proceed concurrently
// under the ordinary retain/release contract.
func (l *LSM) tryRefresh() (refreshResult, error) {
	res := refreshResult{
		oldFast: l.mfFastVer.Load(),
		oldSlow: l.mfSlowVer.Load(),
	}
	res.newFast, res.newSlow = res.oldFast, res.oldSlow

	fastMf, _, err := loadManifest(l.opts.Fast, manifestFastPrefix)
	if err != nil {
		return res, err
	}
	slowMf, _, err := loadManifest(l.opts.Slow, manifestSlowPrefix)
	if err != nil {
		return res, err
	}
	var fastVer, slowVer uint64
	var fastKeys, slowKeys []string
	tombs := map[string]bool{}
	if fastMf != nil {
		fastVer = fastMf.version
		fastKeys = fastMf.tables
	}
	if slowMf != nil {
		slowVer = slowMf.version
		slowKeys = slowMf.tables
		for _, k := range slowMf.tombstones {
			tombs[k] = true
		}
	}
	if fastVer == res.oldFast && slowVer == res.oldSlow {
		// Nothing committed since the last swap. A replica only trusts
		// manifests (it never falls back to listings: a listing of a live
		// writer's store is not a consistent cut), so no-manifest-yet also
		// lands here with the empty initial view.
		return res, nil
	}

	// Snapshot the current view's handles for reuse. Only Refresh itself
	// releases tree references on a replica (and refreshMu serializes it),
	// so the snapshot stays valid until the swap below.
	reuse := map[string]*tableHandle{}
	l.mu.RLock()
	for _, lvl := range [][]*partition{l.l0, l.l1, l.l2} {
		for _, p := range lvl {
			for _, h := range allTables(p) {
				reuse[h.storeKey] = h
			}
		}
	}
	l.mu.RUnlock()

	b := newViewBuilder(l, tombs, false, reuse)
	if err := b.addTier(l.opts.Fast, fastKeys); err != nil {
		b.abort()
		return res, err
	}
	if err := b.addTier(l.opts.Slow, slowKeys); err != nil {
		b.abort()
		return res, err
	}
	l0, l1, l2 := b.finish()

	// Swap the view under the ordinary lock hierarchy. In-flight queries
	// that retained handles of the outgoing view keep reading them; the
	// releases below only drop the tree's own references.
	l.mu.Lock()
	var old []*tableHandle
	for _, lvl := range [][]*partition{l.l0, l.l1, l.l2} {
		for _, p := range lvl {
			old = append(old, allTables(p)...)
		}
	}
	l.l0, l.l1, l.l2 = l0, l1, l2
	for _, mf := range []*manifest{slowMf, fastMf} {
		if mf == nil {
			continue
		}
		if mf.r1 > 0 {
			l.r1 = mf.r1
		}
		if mf.r2 > 0 {
			l.r2 = mf.r2
		}
		if mf.nextSeq > l.fileSeq.Load() {
			l.fileSeq.Store(mf.nextSeq)
		}
	}
	l.mu.Unlock()
	l.mfFastVer.Store(fastVer)
	l.mfSlowVer.Store(slowVer)

	for _, h := range old {
		if !b.referenced[h.storeKey] {
			res.dropped++
		}
		h.release()
	}
	res.added = len(b.referenced) - (len(old) - res.dropped)
	res.changed = true
	res.newFast, res.newSlow = fastVer, slowVer
	res.tablesFast = len(fastKeys)
	res.tablesSlow = len(slowKeys)
	return res, nil
}

// refreshLoop is the replica's background worker: poll the manifests every
// interval and swap the view when the writer committed. Errors (including
// an exhausted prune-race retry) keep the previous view installed and are
// journaled by Refresh; the next tick tries again.
func (l *LSM) refreshLoop(interval time.Duration) {
	defer l.workerWg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-l.refreshStop:
			return
		case <-t.C:
			_, _ = l.Refresh()
		}
	}
}
