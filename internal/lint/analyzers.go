package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
)

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocHot,
		AtomicAlign,
		CtxFlow,
		ErrWrap,
		FaultCover,
		JournalCover,
		LockGraph,
		LockOrder,
		MetricName,
		MmapEscape,
		PoolOwn,
		SeekContract,
	}
}

// ByName resolves analyzer names; unknown names return nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// --- shared type-level helpers ---

// pkgNameOf resolves expr to the package it names, if it is a package
// qualifier (the "atomic" in atomic.AddInt64).
func pkgNameOf(info *types.Info, expr ast.Expr) *types.PkgName {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := info.Uses[id].(*types.PkgName)
	return pn
}

// calleeFromPkg returns the function name when call is pkgpath.Name(...),
// e.g. calleeFromPkg(info, call, "sync/atomic") == "AddInt64".
func calleeFromPkg(info *types.Info, call *ast.CallExpr, pkgPath string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pn := pkgNameOf(info, sel.X)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// derefNamed unwraps pointers and aliases down to the named type, if any.
func derefNamed(t types.Type) *types.Named {
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// errorType is the universe error interface.
var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t implements error (and is not the untyped
// nil, which matches every interface vacuously).
func isErrorType(t types.Type) bool {
	if t == nil || types.Unalias(t) == types.Typ[types.UntypedNil] {
		return false
	}
	return types.Implements(t, errorType)
}

// signatureOf returns the static signature of a call's callee, following
// the type checker's view (methods, function values, conversions → nil).
func signatureOf(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.Info.TypeOf(call.Fun)
	sig, _ := types.Unalias(t).(*types.Signature)
	return sig
}

// unquoteConst extracts the string value of a constant.
func unquoteConst(v constant.Value) (string, error) {
	if v.Kind() != constant.String {
		return "", fmt.Errorf("not a string constant")
	}
	return constant.StringVal(v), nil
}

// formatVerbs returns the verb letters of a fmt format string in argument
// order ('*' width/precision markers appear as '*' since they consume an
// argument). clean is false when the format uses explicit argument indexes
// ([n]), which sequential mapping cannot follow.
func formatVerbs(format string) (verbs []rune, clean bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
	verb:
		for ; i < len(format); i++ {
			switch c := format[i]; {
			case c == '%':
				break verb // literal %%
			case c == '[':
				return nil, false // explicit argument index
			case c == '*':
				verbs = append(verbs, '*')
			case c == '#' || c == '+' || c == '-' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9'):
				// flags, width, precision: keep scanning
			default:
				verbs = append(verbs, rune(c))
				break verb
			}
		}
	}
	return verbs, true
}

// sigIs reports whether sig has exactly the given parameter and result
// types (no variadics).
func sigIs(sig *types.Signature, params, results []types.Type) bool {
	if sig.Variadic() || sig.Params().Len() != len(params) || sig.Results().Len() != len(results) {
		return false
	}
	for i, p := range params {
		if !types.Identical(sig.Params().At(i).Type(), p) {
			return false
		}
	}
	for i, r := range results {
		if !types.Identical(sig.Results().At(i).Type(), r) {
			return false
		}
	}
	return true
}
