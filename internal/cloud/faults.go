package cloud

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TransientError is a retryable failure: the kind of error a real cloud
// store surfaces for throttling, connection resets, and request timeouts.
// Operations failing with a TransientError may be retried safely (every
// Store operation is idempotent).
type TransientError struct {
	Op  string
	Key string
}

func (e *TransientError) Error() string {
	return fmt.Sprintf("cloud: transient %s failure on %s", e.Op, e.Key)
}

// IsTransient reports whether err is (or wraps) a retryable store failure.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// ErrStoreKilled is returned by every operation of a killed FaultStore. It
// is permanent (not transient), so retry loops bail out immediately — the
// behavior a crashed process's in-flight requests see.
var ErrStoreKilled = errors.New("cloud: store killed (crash simulation)")

// RetryPolicy is a bounded retry with exponential backoff, applied only to
// transient failures.
type RetryPolicy struct {
	// Attempts is the total number of tries, including the first.
	Attempts int
	// BaseBackoff is the sleep before the second attempt; it doubles each
	// retry up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// DefaultRetry is the policy the sstable reader and the segment cache use
// for slow-tier reads. Bounded: worst case adds a few ms, never loops.
var DefaultRetry = RetryPolicy{Attempts: 4, BaseBackoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}

// retriesTotal counts every retry sleep taken by any RetryPolicy in the
// process (i.e. attempts beyond the first). Package-level because policies
// are passed by value.
var retriesTotal atomic.Uint64

// RetriesTotal returns the process-wide count of retried attempts.
func RetriesTotal() uint64 { return retriesTotal.Load() }

// Do runs fn, retrying while it fails with a transient error. The last
// error is returned when the attempts are exhausted; non-transient errors
// return immediately.
func (p RetryPolicy) Do(fn func() error) error {
	attempts := p.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	backoff := p.BaseBackoff
	var err error
	for i := 0; i < attempts; i++ {
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
		if i < attempts-1 {
			retriesTotal.Add(1)
			if backoff > 0 {
				time.Sleep(backoff)
				backoff *= 2
				if p.MaxBackoff > 0 && backoff > p.MaxBackoff {
					backoff = p.MaxBackoff
				}
			}
		}
	}
	return err
}

// FaultConfig sets the per-operation probability of each injected fault
// class. All-zero means pass-through.
type FaultConfig struct {
	// Seed makes the injection schedule reproducible.
	Seed int64
	// TransientProb injects a TransientError on any operation.
	TransientProb float64
	// NotFoundProb injects a spurious ErrNotFound on Get/GetRange (the
	// read-after-write consistency blip of an eventually consistent
	// object store).
	NotFoundProb float64
	// TornWriteProb makes a Put write only a random prefix of the data to
	// the underlying store and then fail — a crash or connection cut mid
	// upload against a non-atomic backend.
	TornWriteProb float64
	// LatencyProb injects an extra LatencySpike sleep on any operation.
	LatencyProb  float64
	LatencySpike time.Duration
}

// FaultCounts reports how many faults a FaultStore has injected.
type FaultCounts struct {
	Transient uint64
	NotFound  uint64
	TornWrite uint64
	Latency   uint64
}

// FaultStore wraps a Store with deterministic (seeded) fault injection:
// transient errors, spurious not-founds, torn writes, and latency spikes.
// With injection disabled (SetEnabled(false) or an all-zero config) every
// call is a single atomic load plus the delegated call, so production and
// benchmark paths can keep the wrapper in place at no measurable cost.
type FaultStore struct {
	inner Store

	enabled atomic.Bool
	killed  atomic.Bool

	mu        sync.Mutex
	rng       *rand.Rand
	cfg       FaultConfig
	killPoint *KillPoint

	transient, notFound, torn, latency atomic.Uint64
}

// KillPoint is a deterministic crash trigger: the CountDown'th operation
// matching Op and KeyPrefix kills the whole store. With After false the
// store dies before the operation executes (the write never became
// durable); with After true the operation completes against the inner
// store first and then the store dies (the write is durable but the caller
// never saw the ack) — the two sides of every commit-point boundary the
// crash-torture harness must cover.
type KillPoint struct {
	// Op names the Store method, lowercase: "put", "get", "getrange",
	// "delete", "list", "size".
	Op string
	// KeyPrefix restricts the trigger to keys (or, for List, prefixes)
	// starting with it. Empty matches every key.
	KeyPrefix string
	// CountDown is how many matching operations to let through before
	// triggering; 1 (or less) means the first match triggers.
	CountDown int
	// After selects crash-after-durable-write instead of crash-before.
	After bool
}

// NewFaultStore wraps inner with the given fault schedule. Injection
// starts enabled (but an all-zero config injects nothing).
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	s := &FaultStore{inner: inner, rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	s.enabled.Store(true)
	return s
}

// SetEnabled toggles injection without discarding the rng state.
func (s *FaultStore) SetEnabled(on bool) { s.enabled.Store(on) }

// Kill makes every subsequent operation fail with ErrStoreKilled,
// permanently — the view a crashed process's outstanding I/O has of the
// world. Background workers of an abandoned instance fail fast instead of
// mutating state a recovered instance is rebuilding from.
func (s *FaultStore) Kill() { s.killed.Store(true) }

// Killed reports whether the store has been killed (via Kill or a
// triggered kill point).
func (s *FaultStore) Killed() bool { return s.killed.Load() }

// ArmKillPoint installs kp as the (single) pending kill point, replacing
// any previous one. Arming works regardless of SetEnabled — kill schedules
// are orthogonal to probabilistic injection.
func (s *FaultStore) ArmKillPoint(kp KillPoint) {
	if kp.CountDown < 1 {
		kp.CountDown = 1
	}
	s.mu.Lock()
	s.killPoint = &kp
	s.mu.Unlock()
}

// hitKillPoint matches one operation against the armed kill point,
// decrementing its countdown. It reports whether the store must die before
// (resp. after) executing the operation.
func (s *FaultStore) hitKillPoint(op, key string) (before, after bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kp := s.killPoint
	if kp == nil || kp.Op != op || !strings.HasPrefix(key, kp.KeyPrefix) {
		return false, false
	}
	kp.CountDown--
	if kp.CountDown > 0 {
		return false, false
	}
	s.killPoint = nil
	return !kp.After, kp.After
}

// Injected returns the per-class injection counters.
func (s *FaultStore) Injected() FaultCounts {
	return FaultCounts{
		Transient: s.transient.Load(),
		NotFound:  s.notFound.Load(),
		TornWrite: s.torn.Load(),
		Latency:   s.latency.Load(),
	}
}

// Inner returns the wrapped store.
func (s *FaultStore) Inner() Store { return s.inner }

type faultClass int

const (
	faultNone faultClass = iota
	faultTransient
	faultNotFound
	faultTorn
)

// decide rolls the dice for one operation, returning the fault class and,
// for torn writes, the fraction of the payload to keep. canNotFound and
// canTear restrict classes to the operations they make sense for. The
// latency spike is applied here (outside the lock held for the rng).
func (s *FaultStore) decide(canNotFound, canTear bool) (faultClass, float64) {
	if !s.enabled.Load() {
		return faultNone, 0
	}
	s.mu.Lock()
	spike := s.cfg.LatencyProb > 0 && s.rng.Float64() < s.cfg.LatencyProb
	class := faultNone
	switch r := s.rng.Float64(); {
	case s.cfg.TransientProb > 0 && r < s.cfg.TransientProb:
		class = faultTransient
	case canNotFound && s.cfg.NotFoundProb > 0 && r < s.cfg.TransientProb+s.cfg.NotFoundProb:
		class = faultNotFound
	case canTear && s.cfg.TornWriteProb > 0 && r < s.cfg.TransientProb+s.cfg.NotFoundProb+s.cfg.TornWriteProb:
		class = faultTorn
	}
	var cut float64
	if class == faultTorn {
		cut = s.rng.Float64()
	}
	s.mu.Unlock()
	if spike {
		s.latency.Add(1)
		time.Sleep(s.cfg.LatencySpike)
	}
	return class, cut
}

// Put implements Store.
func (s *FaultStore) Put(key string, data []byte) error {
	if s.killed.Load() {
		return ErrStoreKilled
	}
	if before, after := s.hitKillPoint("put", key); before {
		s.Kill()
		return ErrStoreKilled
	} else if after {
		_ = s.inner.Put(key, data) // the write became durable; the ack did not
		s.Kill()
		return ErrStoreKilled
	}
	switch class, cut := s.decide(false, true); class {
	case faultTransient:
		s.transient.Add(1)
		return &TransientError{Op: "put", Key: key}
	case faultTorn:
		s.torn.Add(1)
		// Write a partial object under the real key, then fail the
		// request: the caller sees an error, the store keeps the tear.
		_ = s.inner.Put(key, data[:int(cut*float64(len(data)))])
		return &TransientError{Op: "put(torn)", Key: key}
	}
	return s.inner.Put(key, data)
}

// Get implements Store.
func (s *FaultStore) Get(key string) ([]byte, error) {
	if s.killed.Load() {
		return nil, ErrStoreKilled
	}
	if before, after := s.hitKillPoint("get", key); before || after {
		s.Kill()
		return nil, ErrStoreKilled
	}
	switch class, _ := s.decide(true, false); class {
	case faultTransient:
		s.transient.Add(1)
		return nil, &TransientError{Op: "get", Key: key}
	case faultNotFound:
		s.notFound.Add(1)
		return nil, &ErrNotFound{Key: key}
	}
	return s.inner.Get(key)
}

// GetRange implements Store.
func (s *FaultStore) GetRange(key string, off, length int64) ([]byte, error) {
	if s.killed.Load() {
		return nil, ErrStoreKilled
	}
	if before, after := s.hitKillPoint("getrange", key); before || after {
		s.Kill()
		return nil, ErrStoreKilled
	}
	switch class, _ := s.decide(true, false); class {
	case faultTransient:
		s.transient.Add(1)
		return nil, &TransientError{Op: "getrange", Key: key}
	case faultNotFound:
		s.notFound.Add(1)
		return nil, &ErrNotFound{Key: key}
	}
	return s.inner.GetRange(key, off, length)
}

// Delete implements Store.
func (s *FaultStore) Delete(key string) error {
	if s.killed.Load() {
		return ErrStoreKilled
	}
	if before, after := s.hitKillPoint("delete", key); before {
		s.Kill()
		return ErrStoreKilled
	} else if after {
		_ = s.inner.Delete(key)
		s.Kill()
		return ErrStoreKilled
	}
	if class, _ := s.decide(false, false); class == faultTransient {
		s.transient.Add(1)
		return &TransientError{Op: "delete", Key: key}
	}
	return s.inner.Delete(key)
}

// List implements Store.
func (s *FaultStore) List(prefix string) ([]string, error) {
	if s.killed.Load() {
		return nil, ErrStoreKilled
	}
	if before, after := s.hitKillPoint("list", prefix); before || after {
		s.Kill()
		return nil, ErrStoreKilled
	}
	if class, _ := s.decide(false, false); class == faultTransient {
		s.transient.Add(1)
		return nil, &TransientError{Op: "list", Key: prefix}
	}
	return s.inner.List(prefix)
}

// Size implements Store.
func (s *FaultStore) Size(key string) (int64, error) {
	if s.killed.Load() {
		return 0, ErrStoreKilled
	}
	if before, after := s.hitKillPoint("size", key); before || after {
		s.Kill()
		return 0, ErrStoreKilled
	}
	if class, _ := s.decide(false, false); class == faultTransient {
		s.transient.Add(1)
		return 0, &TransientError{Op: "size", Key: key}
	}
	return s.inner.Size(key)
}

// TotalBytes implements Store.
func (s *FaultStore) TotalBytes() int64 { return s.inner.TotalBytes() }

// Stats implements Store.
func (s *FaultStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *FaultStore) ResetStats() { s.inner.ResetStats() }

// Tier implements Store.
func (s *FaultStore) Tier() Tier { return s.inner.Tier() }

// RetryStore wraps a Store so every operation retries transient failures
// under a RetryPolicy. It is the consumer-agnostic way to run a whole
// engine against a flaky store (e.g. the bench tiers under -faults):
// call sites with their own retry wiring — the sstable reader, the segment
// cache — compose harmlessly with it. All Store operations are idempotent,
// including Put (a retried torn Put simply rewrites the full object), so
// blanket retries are safe.
type RetryStore struct {
	inner  Store
	policy RetryPolicy
}

// NewRetryStore wraps inner with the given policy; a zero policy means
// DefaultRetry.
func NewRetryStore(inner Store, policy RetryPolicy) *RetryStore {
	if policy == (RetryPolicy{}) {
		policy = DefaultRetry
	}
	return &RetryStore{inner: inner, policy: policy}
}

// Inner returns the wrapped store.
func (s *RetryStore) Inner() Store { return s.inner }

// Put implements Store.
func (s *RetryStore) Put(key string, data []byte) error {
	return s.policy.Do(func() error { return s.inner.Put(key, data) })
}

// Get implements Store.
func (s *RetryStore) Get(key string) ([]byte, error) {
	var out []byte
	err := s.policy.Do(func() error {
		var err error
		out, err = s.inner.Get(key)
		return err
	})
	return out, err
}

// GetRange implements Store.
func (s *RetryStore) GetRange(key string, off, length int64) ([]byte, error) {
	var out []byte
	err := s.policy.Do(func() error {
		var err error
		out, err = s.inner.GetRange(key, off, length)
		return err
	})
	return out, err
}

// Delete implements Store.
func (s *RetryStore) Delete(key string) error {
	return s.policy.Do(func() error { return s.inner.Delete(key) })
}

// List implements Store.
func (s *RetryStore) List(prefix string) ([]string, error) {
	var out []string
	err := s.policy.Do(func() error {
		var err error
		out, err = s.inner.List(prefix)
		return err
	})
	return out, err
}

// Size implements Store.
func (s *RetryStore) Size(key string) (int64, error) {
	var out int64
	err := s.policy.Do(func() error {
		var err error
		out, err = s.inner.Size(key)
		return err
	})
	return out, err
}

// TotalBytes implements Store.
func (s *RetryStore) TotalBytes() int64 { return s.inner.TotalBytes() }

// Stats implements Store.
func (s *RetryStore) Stats() Stats { return s.inner.Stats() }

// ResetStats implements Store.
func (s *RetryStore) ResetStats() { s.inner.ResetStats() }

// Tier implements Store.
func (s *RetryStore) Tier() Tier { return s.inner.Tier() }
