module timeunion

go 1.22
