// Package tuple defines the value format stored in the time-partitioned
// LSM-tree and the operations the tree needs on it. A value is an envelope:
//
//	uvarint sequence ID | kind byte | varint minT | uvarint (maxT-minT) | chunk payload
//
// The sequence ID is embedded at the beginning of the serialized bytes so
// the flush of a memtable can emit WAL flush marks (paper §3.3 "Logging").
// The kind selects the payload encoding: an individual series chunk
// (Gorilla XOR) or a group tuple (shared timestamp column + per-member
// value columns). The chunk's sample time bounds follow in the envelope so
// TimeRange is O(1): the read path prunes chunks against a query range
// without decoding the compressed payload (the lazy-decode prerequisite of
// the streaming iterator pipeline, DESIGN.md §4.8).
//
// The package also implements the two operators the LSM applies during
// flush and compaction: Split (bound a chunk's samples to time-partition
// windows) and Merge (combine two chunks of the same key, newest samples
// winning).
package tuple

import (
	"fmt"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
)

// Kind discriminates the payload encoding.
type Kind byte

const (
	// KindSeries marks an individual-series XOR chunk payload.
	KindSeries Kind = 1
	// KindGroup marks a group tuple payload.
	KindGroup Kind = 2
)

// Encode wraps a chunk payload in the value envelope. minT and maxT are
// the payload's first and last sample timestamps; every encoder knows them
// at flush time, and carrying them here keeps TimeRange decode-free.
func Encode(seq uint64, kind Kind, minT, maxT int64, payload []byte) []byte {
	var b encoding.Buf
	b.PutUvarint(seq)
	b.PutByte(byte(kind))
	b.PutVarint(minT)
	b.PutUvarint(uint64(maxT - minT))
	b.PutBytes(payload)
	return b.Get()
}

// Decode unwraps a value envelope. The payload aliases v.
func Decode(v []byte) (seq uint64, kind Kind, payload []byte, err error) {
	d := encoding.NewDecbuf(v)
	seq = d.Uvarint()
	kind = Kind(d.Byte())
	d.Varint()  // minT
	d.Uvarint() // span
	if d.Err() != nil {
		return 0, 0, nil, fmt.Errorf("tuple: decode envelope: %w", d.Err())
	}
	if kind != KindSeries && kind != KindGroup {
		return 0, 0, nil, fmt.Errorf("tuple: unknown kind %d", kind)
	}
	return seq, kind, d.B, nil
}

// SeqOf extracts the embedded sequence ID (0 on corrupt input).
func SeqOf(v []byte) uint64 {
	seq, _, _, err := Decode(v)
	if err != nil {
		return 0
	}
	return seq
}

// TimeRange returns the [min, max] sample timestamps in the value. It only
// parses the envelope — the compressed payload is never decoded — so the
// read path and compaction planners can prune chunks by time in O(1).
func TimeRange(v []byte) (int64, int64, error) {
	d := encoding.NewDecbuf(v)
	d.Uvarint() // seq
	kind := Kind(d.Byte())
	minT := d.Varint()
	span := d.Uvarint()
	if d.Err() != nil {
		return 0, 0, fmt.Errorf("tuple: decode envelope: %w", d.Err())
	}
	if kind != KindSeries && kind != KindGroup {
		return 0, 0, fmt.Errorf("tuple: unknown kind %d", kind)
	}
	return minT, minT + int64(span), nil
}

// KV is a key-value pair produced by Split.
type KV struct {
	Key   encoding.Key
	Value []byte
}

// Split bounds a chunk's samples to time-partition windows of length
// partLen anchored at multiples of partLen (paper §3.3: "the data samples
// of the data chunks in the SSTables of a specific time partition are
// strictly bounded by the time range of the partition"). The result is one
// KV per non-empty window, keyed by (id, first sample time in window),
// in time order. A chunk entirely inside one window is returned as-is
// without re-encoding.
func Split(key encoding.Key, value []byte, partLen int64) ([]KV, error) {
	if partLen <= 0 {
		return []KV{{Key: key, Value: value}}, nil
	}
	seq, kind, payload, err := Decode(value)
	if err != nil {
		return nil, err
	}
	minT, maxT, err := TimeRange(value)
	if err != nil {
		return nil, err
	}
	if windowStart(minT, partLen) == windowStart(maxT, partLen) {
		return []KV{{Key: key, Value: value}}, nil
	}
	id := key.ID()
	switch kind {
	case KindSeries:
		samples, err := chunkenc.DecodeXORSamples(payload)
		if err != nil {
			return nil, err
		}
		var out []KV
		for start := 0; start < len(samples); {
			w := windowStart(samples[start].T, partLen)
			end := start + 1
			for end < len(samples) && windowStart(samples[end].T, partLen) == w {
				end++
			}
			enc, err := chunkenc.EncodeXORSamples(samples[start:end])
			if err != nil {
				return nil, err
			}
			out = append(out, KV{
				Key:   encoding.MakeKey(id, samples[start].T),
				Value: Encode(seq, KindSeries, samples[start].T, samples[end-1].T, enc),
			})
			start = end
		}
		return out, nil
	default:
		g, err := chunkenc.DecodeGroupData(payload)
		if err != nil {
			return nil, err
		}
		var out []KV
		for start := 0; start < len(g.Times); {
			w := windowStart(g.Times[start], partLen)
			end := start + 1
			for end < len(g.Times) && windowStart(g.Times[end], partLen) == w {
				end++
			}
			part := sliceGroup(g, start, end)
			enc, err := part.Encode()
			if err != nil {
				return nil, err
			}
			out = append(out, KV{
				Key:   encoding.MakeKey(id, g.Times[start]),
				Value: Encode(seq, KindGroup, g.Times[start], g.Times[end-1], enc),
			})
			start = end
		}
		return out, nil
	}
}

func sliceGroup(g *chunkenc.GroupData, start, end int) *chunkenc.GroupData {
	out := &chunkenc.GroupData{Times: g.Times[start:end]}
	for _, col := range g.Columns {
		out.Columns = append(out.Columns, chunkenc.GroupColumn{
			Slot:   col.Slot,
			Values: col.Values[start:end],
			Nulls:  col.Nulls[start:end],
		})
	}
	return out
}

func windowStart(t, partLen int64) int64 {
	w := t / partLen
	if t < 0 && t%partLen != 0 {
		w--
	}
	return w * partLen
}

// WindowStart returns the partition window start containing t for a grid
// of length partLen (floor division, correct for negative timestamps).
func WindowStart(t, partLen int64) int64 { return windowStart(t, partLen) }

// Merge combines two values of the same key. Samples from newer replace
// samples from older at equal timestamps (paper §3.3: "keep the data sample
// from the newest SSTable"); the resulting sequence ID is the larger one.
// Merging a series chunk with a group tuple is an error: the ID space keeps
// them apart.
func Merge(older, newer []byte) ([]byte, error) {
	oseq, okind, opay, err := Decode(older)
	if err != nil {
		return nil, err
	}
	nseq, nkind, npay, err := Decode(newer)
	if err != nil {
		return nil, err
	}
	if okind != nkind {
		return nil, fmt.Errorf("tuple: merging kind %d with kind %d", okind, nkind)
	}
	seq := oseq
	if nseq > seq {
		seq = nseq
	}
	switch okind {
	case KindSeries:
		os, err := chunkenc.DecodeXORSamples(opay)
		if err != nil {
			return nil, err
		}
		ns, err := chunkenc.DecodeXORSamples(npay)
		if err != nil {
			return nil, err
		}
		merged := chunkenc.MergeSamples(os, ns)
		enc, err := chunkenc.EncodeXORSamples(merged)
		if err != nil {
			return nil, err
		}
		return Encode(seq, KindSeries, merged[0].T, merged[len(merged)-1].T, enc), nil
	default:
		og, err := chunkenc.DecodeGroupData(opay)
		if err != nil {
			return nil, err
		}
		ng, err := chunkenc.DecodeGroupData(npay)
		if err != nil {
			return nil, err
		}
		mg := chunkenc.MergeGroupData(og, ng)
		enc, err := mg.Encode()
		if err != nil {
			return nil, err
		}
		return Encode(seq, KindGroup, mg.MinTime(), mg.MaxTime(), enc), nil
	}
}
