// Package lsm exercises faultcover: store calls must be reachable from the
// package API (exported functions, init, main) so a FaultStore schedule
// can reach them.
package lsm

import "fix/internal/cloud"

type tree struct{ store cloud.Store }

// Flush is exported: its direct store call is covered.
func (t *tree) Flush() error {
	return t.store.Put("k", nil)
}

// helper is unexported but reachable via Compact -> helper.
func (t *tree) helper() error {
	_, err := t.store.Get("k")
	return err
}

func (t *tree) Compact() error { return t.helper() }

// worker is reachable only through a goroutine spawn and a function
// literal inside an exported function — still an edge.
func (t *tree) worker() error {
	return t.store.Delete("k")
}

func (t *tree) Run() {
	go func() {
		_ = t.worker()
	}()
}

// tryRefresh models the read-replica refresh path: List-then-Get store
// calls in an unexported helper, reachable both from the exported Refresh
// and from the background poll loop spawned by the exported Open — covered
// on both routes.
func (t *tree) tryRefresh() error {
	if _, err := t.store.List("manifest/"); err != nil {
		return err
	}
	_, err := t.store.Get("manifest/1")
	return err
}

func (t *tree) Refresh() error { return t.tryRefresh() }

func (t *tree) refreshLoop() {
	for {
		if t.tryRefresh() != nil {
			return
		}
	}
}

func (t *tree) Open() {
	go t.refreshLoop()
}

// dead is never referenced anywhere: its store call is invisible to every
// fault schedule.
func (t *tree) dead() error {
	return t.store.Put("dead", nil) // want `cloud.Store.Put call in dead is unreachable`
}

// deadCallee is referenced, but only by deadCaller, which itself is
// unreachable — the closure must not treat non-root references as cover.
func (t *tree) deadCallee() error {
	return t.store.Delete("dead") // want `cloud.Store.Delete call in deadCallee is unreachable`
}

func (t *tree) deadCaller() error { return t.deadCallee() }
