package lsm

import (
	"testing"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/tuple"
)

func drainIter(t *testing.T, it chunkenc.SampleIterator) []SamplePair {
	t.Helper()
	var out []SamplePair
	for it.Next() {
		ts, v := it.At()
		out = append(out, SamplePair{T: ts, V: v})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSeriesIteratorMatchesEager asserts the streaming path reproduces the
// eager SeriesSamples result exactly across clipping windows.
func TestSeriesIteratorMatchesEager(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 200, V: 2}, {T: 900, V: 9}})
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 200, V: 22}, {T: 1500, V: 15}})
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 2500, V: 25}})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}

	for _, w := range []struct{ mint, maxt int64 }{
		{0, 3000}, {150, 950}, {200, 200}, {901, 1499}, {2600, 3000},
	} {
		chunks, err := env.l.ChunksFor(1, w.mint, w.maxt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := SeriesSamples(chunks, w.mint, w.maxt)
		if err != nil {
			t.Fatal(err)
		}
		got := drainIter(t, SeriesIterator(chunks, w.mint, w.maxt, nil))
		if len(got) != len(want) {
			t.Fatalf("[%d,%d]: streaming %v, eager %v", w.mint, w.maxt, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("[%d,%d] sample %d: streaming %v, eager %v", w.mint, w.maxt, i, got[i], want[i])
			}
		}
	}
}

// TestChunkRefBounds asserts ChunksFor carries envelope time bounds.
func TestChunkRefBounds(t *testing.T) {
	env := newEnv(t, smallOpts())
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 250, V: 2}})
	chunks, err := env.l.ChunksFor(1, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Fatalf("got %d chunks", len(chunks))
	}
	if chunks[0].MinT != 100 || chunks[0].MaxT != 250 {
		t.Fatalf("bounds = [%d,%d], want [100,250]", chunks[0].MinT, chunks[0].MaxT)
	}
}

// TestLazyDecodeCounts asserts non-overlapping chunks are dropped without
// decoding and a narrow Seek never opens chunks beyond its target.
func TestLazyDecodeCounts(t *testing.T) {
	env := newEnv(t, smallOpts())
	// Three disjoint chunks in distinct partitions.
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 100, V: 1}, {T: 200, V: 2}})
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 1100, V: 11}, {T: 1200, V: 12}})
	putSeries(t, env.l, 1, []chunkenc.Sample{{T: 2100, V: 21}, {T: 2200, V: 22}})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	chunks, err := env.l.ChunksFor(1, 0, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 {
		t.Fatalf("got %d chunks, want 3", len(chunks))
	}

	// Query range covering only the middle chunk: sources for the others
	// must not even be constructed.
	decodes := 0
	srcs := SeriesSources(chunks, 1000, 2000, func(int) { decodes++ })
	if len(srcs) != 1 {
		t.Fatalf("narrow range built %d sources, want 1", len(srcs))
	}
	if decodes != 0 {
		t.Fatalf("building sources decoded %d chunks", decodes)
	}
	got := drainIter(t, SeriesIterator(chunks, 1000, 2000, func(int) { decodes++ }))
	if len(got) != 2 || got[0].T != 1100 || got[1].T != 1200 {
		t.Fatalf("narrow query = %v", got)
	}
	if decodes != 1 {
		t.Fatalf("narrow query decoded %d chunks, want 1", decodes)
	}

	// Full range, but a Seek to the last chunk: earlier chunks must be
	// skipped undecoded (their MaxT proves they end before the target).
	decodes = 0
	it := SeriesIterator(chunks, 0, 3000, func(int) { decodes++ })
	if !it.Seek(2150) {
		t.Fatal("Seek(2150) = false")
	}
	if ts, _ := it.At(); ts != 2200 {
		t.Fatalf("Seek(2150) at %d", ts)
	}
	if decodes != 1 {
		t.Fatalf("Seek decoded %d chunks, want 1", decodes)
	}
}

// TestGroupIteratorsMatchEager asserts the per-slot streaming path matches
// GroupSamples, including NULL skipping and rank overrides.
func TestGroupIteratorsMatchEager(t *testing.T) {
	env := newEnv(t, smallOpts())
	gid := uint64(1)<<63 | 9
	put := func(seq uint64, g *chunkenc.GroupData) {
		enc, err := g.Encode()
		if err != nil {
			t.Fatal(err)
		}
		v := tuple.Encode(seq, tuple.KindGroup, g.Times[0], g.Times[len(g.Times)-1], enc)
		if err := env.l.Put(encoding.MakeKey(gid, g.Times[0]), v); err != nil {
			t.Fatal(err)
		}
	}
	put(1, &chunkenc.GroupData{
		Times: []int64{100, 200, 300},
		Columns: []chunkenc.GroupColumn{
			{Slot: 0, Values: []float64{1, 2, 3}, Nulls: []bool{false, false, false}},
			{Slot: 1, Values: []float64{0, 5, 0}, Nulls: []bool{true, false, true}},
		},
	})
	put(2, &chunkenc.GroupData{
		Times: []int64{200, 400},
		Columns: []chunkenc.GroupColumn{
			{Slot: 0, Values: []float64{22, 44}, Nulls: []bool{false, false}},
		},
	})
	if err := env.l.Flush(); err != nil {
		t.Fatal(err)
	}
	chunks, err := env.l.ChunksFor(gid, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want, err := GroupSamples(chunks, 0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	its, err := GroupIterators(chunks, 0, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for slot, ws := range want {
		got := drainIter(t, its[slot])
		if len(got) != len(ws) {
			t.Fatalf("slot %d: streaming %v, eager %v", slot, got, ws)
		}
		for i := range ws {
			if got[i] != ws[i] {
				t.Fatalf("slot %d sample %d: streaming %v, eager %v", slot, i, got[i], ws[i])
			}
		}
		// Rank override: slot 0 at t=200 must carry the seq-2 value.
		if slot == 0 {
			for _, s := range got {
				if s.T == 200 && s.V != 22 {
					t.Fatalf("slot 0 t=200 = %v, want rank-2 value 22", s.V)
				}
			}
		}
	}
}
