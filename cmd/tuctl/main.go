// Command tuctl inspects a TimeUnion deployment: the on-disk layout (object
// keys of the two storage tiers and the write-ahead log) or, against a
// running server, its metrics, operational event journal, and live
// LSM-tree inventory.
//
// Usage:
//
//	tuctl -fast ./data/fast -slow ./data/slow [-wal ./data/wal]
//	tuctl stats  [-addr http://localhost:9201]
//	tuctl events [-addr http://localhost:9201] [-kind k1,k2] [-since N] [-n 50]
//	tuctl tree   [-addr http://localhost:9201] [-v]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/lsm"
	"timeunion/internal/obs"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "stats":
			statsCmd(os.Args[2:])
			return
		case "events":
			eventsCmd(os.Args[2:])
			return
		case "tree":
			treeCmd(os.Args[2:])
			return
		}
	}
	var (
		fastDir = flag.String("fast", "", "fast-tier directory (EBS-like)")
		slowDir = flag.String("slow", "", "slow-tier directory (S3-like)")
		walDir  = flag.String("wal", "", "WAL directory (optional)")
	)
	flag.Parse()
	if *fastDir == "" && *slowDir == "" {
		flag.Usage()
		os.Exit(2)
	}

	show := func(label, dir string, tier cloud.Tier) {
		if dir == "" {
			return
		}
		store, err := cloud.NewDirStore(dir, tier, cloud.LatencyModel{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
			return
		}
		keys, err := store.List("")
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", label, err)
			return
		}
		fmt.Printf("%s (%s): %d objects, %s total\n", label, dir, len(keys), sizeStr(store.TotalBytes()))
		byPrefix := map[string]int{}
		byPrefixBytes := map[string]int64{}
		for _, k := range keys {
			prefix := k
			if i := strings.Index(k, "/"); i >= 0 {
				prefix = k[:i]
			}
			byPrefix[prefix]++
			if n, err := store.Size(k); err == nil {
				byPrefixBytes[prefix] += n
			}
		}
		for p, n := range byPrefix {
			fmt.Printf("  %-10s %5d objects  %s\n", p, n, sizeStr(byPrefixBytes[p]))
		}
	}
	show("fast tier", *fastDir, cloud.TierBlock)
	show("slow tier", *slowDir, cloud.TierObject)

	if *walDir != "" {
		entries, err := os.ReadDir(*walDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wal: %v\n", err)
			os.Exit(1)
		}
		var total int64
		segs := 0
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				continue
			}
			total += info.Size()
			if filepath.Ext(e.Name()) == ".wal" && e.Name() != "catalog.wal" {
				segs++
			}
		}
		fmt.Printf("wal (%s): %d segments, %s total\n", *walDir, segs, sizeStr(total))
	}
}

// statsCmd fetches a running server's /metrics and pretty-prints it
// grouped by subsystem (the timeunion_<subsystem>_ prefix). Histogram
// bucket lines are folded away; their _sum/_count survive.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:9201", "server base URL")
	_ = fs.Parse(args)

	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/metrics")
	if err != nil {
		fmt.Fprintf(os.Stderr, "stats: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "stats: GET /metrics: %s\n", resp.Status)
		os.Exit(1)
	}

	bySubsystem := map[string][]string{}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if strings.HasSuffix(name, "_bucket") {
			continue
		}
		sub := "other"
		if rest, ok := strings.CutPrefix(name, "timeunion_"); ok {
			if i := strings.Index(rest, "_"); i > 0 {
				sub = rest[:i]
			}
		}
		bySubsystem[sub] = append(bySubsystem[sub], line)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "stats: read: %v\n", err)
		os.Exit(1)
	}

	subs := make([]string, 0, len(bySubsystem))
	for s := range bySubsystem {
		subs = append(subs, s)
	}
	sort.Strings(subs)
	for _, sub := range subs {
		fmt.Printf("%s:\n", sub)
		for _, line := range bySubsystem[sub] {
			i := strings.LastIndex(line, " ")
			fmt.Printf("  %-60s %s\n", line[:i], line[i+1:])
		}
	}
}

// eventsCmd fetches /api/v1/events and pretty-prints the journal, one
// line per event: sequence, wall-clock start, kind, duration, the
// per-kind fields, and the error if the operation failed.
func eventsCmd(args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:9201", "server base URL")
	kind := fs.String("kind", "", "comma-separated event kinds to include (empty = all)")
	since := fs.Uint64("since", 0, "only events with sequence > this (poll cursor)")
	tail := fs.Int("n", 0, "show only the newest N events (0 = all retained)")
	_ = fs.Parse(args)

	q := url.Values{}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if *since > 0 {
		q.Set("since_seq", fmt.Sprint(*since))
	}
	u := strings.TrimRight(*addr, "/") + "/api/v1/events"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		fmt.Fprintf(os.Stderr, "events: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "events: GET /api/v1/events: %s\n", resp.Status)
		os.Exit(1)
	}

	var evs []obs.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e obs.Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			fmt.Fprintf(os.Stderr, "events: bad line: %v\n", err)
			os.Exit(1)
		}
		evs = append(evs, e)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "events: read: %v\n", err)
		os.Exit(1)
	}
	if *tail > 0 && len(evs) > *tail {
		evs = evs[len(evs)-*tail:]
	}
	for _, e := range evs {
		ts := time.UnixMilli(e.StartMs).Format("15:04:05.000")
		dur := time.Duration(e.DurationUs) * time.Microsecond
		fmt.Printf("%6d  %s  %-20s %10s", e.Seq, ts, e.Kind, dur.Round(time.Microsecond))
		keys := make([]string, 0, len(e.Fields))
		for k := range e.Fields {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %s=%v", k, e.Fields[k])
		}
		if e.Err != "" {
			fmt.Printf("  err=%q", e.Err)
		}
		fmt.Println()
	}
}

// treeCmd fetches /api/v1/lsmtree and renders the live tree: a per-level
// summary, plus every partition and table with -v.
func treeCmd(args []string) {
	fs := flag.NewFlagSet("tree", flag.ExitOnError)
	addr := fs.String("addr", "http://localhost:9201", "server base URL")
	verbose := fs.Bool("v", false, "list every partition and table")
	_ = fs.Parse(args)

	resp, err := http.Get(strings.TrimRight(*addr, "/") + "/api/v1/lsmtree")
	if err != nil {
		fmt.Fprintf(os.Stderr, "tree: %v\n", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "tree: GET /api/v1/lsmtree: %s\n", resp.Status)
		os.Exit(1)
	}
	var snap lsm.TreeSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		fmt.Fprintf(os.Stderr, "tree: decode: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("partition lengths: r1=%d r2=%d   manifests: fast v%d, slow v%d\n",
		snap.R1, snap.R2, snap.ManifestFast, snap.ManifestSlow)
	fmt.Printf("memtables: %s buffered, %d immutable queued   compactions: %d active, %d queued\n",
		sizeStr(snap.MemBytes), snap.ImmQueue, snap.ActiveCompactions, snap.QueuedJobs)
	for _, lvl := range snap.Levels {
		fmt.Printf("L%d (%s tier): %d partitions, %d tables, %s\n",
			lvl.Level, lvl.Tier, len(lvl.Partitions), lvl.Tables, sizeStr(lvl.Size))
		if !*verbose {
			continue
		}
		for _, p := range lvl.Partitions {
			busy := ""
			if p.Busy {
				busy = "  [compacting]"
			}
			fmt.Printf("  [%d, %d)  %d tables  %s%s\n", p.MinT, p.MaxT, len(p.Tables), sizeStr(p.Size), busy)
			for _, t := range p.Tables {
				patch := ""
				if t.Patch {
					patch = "  patch"
				}
				fmt.Printf("    %-28s seq=%-6d %8s  %d entries%s\n", t.Key, t.Seq, sizeStr(t.Size), t.Entries, patch)
			}
		}
	}
}

func sizeStr(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}
