package xmmap

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// slotArrayMagic identifies a slot-array region file.
const slotArrayMagic = 0x54554d31 // "TUM1"

// headerLen is the fixed part of a region header before the bitmap:
// magic (4) | slotSize (4) | slotsPerRegion (4).
const headerLen = 12

// Ref addresses one slot in a SlotArray: region index in the high 32 bits,
// slot index within the region in the low 32 bits.
type Ref uint64

// NilRef is the zero Ref; slot 0 of region 0 is never allocated so that
// NilRef can mean "no slot".
const NilRef Ref = 0

func makeRef(region, slot int) Ref { return Ref(uint64(region)<<32 | uint64(uint32(slot))) }

func (r Ref) region() int { return int(r >> 32) }
func (r Ref) slot() int   { return int(uint32(r)) }

// SlotArray is a dynamically expandable array of fixed-size byte slots
// backed by memory-mapped region files, each with an allocation bitmap in
// its header (paper Figure 9). It stores the in-memory compressed data
// chunks of timeseries and groups; when a chunk is flushed to the LSM its
// slot is freed and reused.
type SlotArray struct {
	mu             sync.Mutex
	dir            string // "" for anonymous regions
	name           string
	slotSize       int
	slotsPerRegion int
	bitmapLen      int
	regions        []*Region
	freeHint       []int // per-region scan start hint
	allocated      int
}

// OpenSlotArray opens (or creates) a slot array. With a non-empty dir,
// existing region files are reattached with their persisted bitmaps; owners
// whose slot contents are rebuilt from elsewhere (the head, via the WAL)
// call Reset to reclaim them. Slot 0 of region 0 is reserved.
func OpenSlotArray(dir, name string, slotSize, slotsPerRegion int) (*SlotArray, error) {
	if slotSize <= 0 || slotsPerRegion <= 0 {
		return nil, fmt.Errorf("xmmap: invalid slot array geometry %d/%d", slotSize, slotsPerRegion)
	}
	a := &SlotArray{
		dir:            dir,
		name:           name,
		slotSize:       slotSize,
		slotsPerRegion: slotsPerRegion,
		bitmapLen:      (slotsPerRegion + 7) / 8,
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("xmmap: create slot array dir: %w", err)
		}
		for i := 0; ; i++ {
			path := a.regionPath(i)
			if _, err := os.Stat(path); err != nil {
				break
			}
			r, err := OpenRegion(path, a.regionSize())
			if err != nil {
				a.Close()
				return nil, err
			}
			if err := a.checkHeader(r); err != nil {
				r.Close()
				a.Close()
				return nil, err
			}
			a.regions = append(a.regions, r)
			a.freeHint = append(a.freeHint, 0)
		}
		for ri, r := range a.regions {
			bm := a.bitmap(r)
			for s := 0; s < slotsPerRegion; s++ {
				if bm[s/8]&(1<<(s%8)) != 0 && !(ri == 0 && s == 0) {
					a.allocated++
				}
			}
		}
	}
	if len(a.regions) == 0 {
		if err := a.addRegion(); err != nil {
			return nil, err
		}
		// Reserve slot 0 of region 0 so NilRef is never a live slot.
		bm := a.bitmap(a.regions[0])
		bm[0] |= 1
	}
	return a, nil
}

func (a *SlotArray) regionPath(i int) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s-%06d.mmap", a.name, i))
}

func (a *SlotArray) regionSize() int {
	return headerLen + a.bitmapLen + a.slotSize*a.slotsPerRegion
}

func (a *SlotArray) addRegion() error {
	path := ""
	if a.dir != "" {
		path = a.regionPath(len(a.regions))
	}
	r, err := OpenRegion(path, a.regionSize())
	if err != nil {
		return err
	}
	h := r.Data()
	binary.LittleEndian.PutUint32(h[0:], slotArrayMagic)
	binary.LittleEndian.PutUint32(h[4:], uint32(a.slotSize))
	binary.LittleEndian.PutUint32(h[8:], uint32(a.slotsPerRegion))
	a.regions = append(a.regions, r)
	a.freeHint = append(a.freeHint, 0)
	return nil
}

func (a *SlotArray) checkHeader(r *Region) error {
	h := r.Data()
	if binary.LittleEndian.Uint32(h[0:]) != slotArrayMagic {
		return fmt.Errorf("xmmap: %s: bad region magic", a.name)
	}
	if int(binary.LittleEndian.Uint32(h[4:])) != a.slotSize ||
		int(binary.LittleEndian.Uint32(h[8:])) != a.slotsPerRegion {
		return fmt.Errorf("xmmap: %s: region geometry mismatch", a.name)
	}
	return nil
}

func (a *SlotArray) bitmap(r *Region) []byte {
	return r.Data()[headerLen : headerLen+a.bitmapLen]
}

func (a *SlotArray) slotData(region, slot int) []byte {
	off := headerLen + a.bitmapLen + slot*a.slotSize
	// Full slice expression: the capacity must stop at the slot boundary,
	// or an append past the slot would silently grow into the neighbour
	// slot instead of reallocating to the heap.
	return a.regions[region].Data()[off : off+a.slotSize : off+a.slotSize]
}

// Alloc finds a free slot, marks it allocated, and returns its Ref and a
// zeroed byte view. New regions are created on demand.
func (a *SlotArray) Alloc() (Ref, []byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for ri := range a.regions {
		bm := a.bitmap(a.regions[ri])
		for s := a.freeHint[ri]; s < a.slotsPerRegion; s++ {
			if bm[s/8]&(1<<(s%8)) == 0 {
				bm[s/8] |= 1 << (s % 8)
				a.freeHint[ri] = s + 1
				a.allocated++
				d := a.slotData(ri, s)
				clear(d)
				return makeRef(ri, s), d, nil
			}
		}
	}
	if err := a.addRegion(); err != nil {
		return NilRef, nil, err
	}
	ri := len(a.regions) - 1
	bm := a.bitmap(a.regions[ri])
	bm[0] |= 1
	a.freeHint[ri] = 1
	a.allocated++
	return makeRef(ri, 0), a.slotData(ri, 0), nil
}

// Get returns the byte view of an allocated slot.
func (a *SlotArray) Get(ref Ref) ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ref == NilRef {
		return nil, fmt.Errorf("xmmap: %s: get of NilRef", a.name)
	}
	ri, s := ref.region(), ref.slot()
	if ri >= len(a.regions) || s >= a.slotsPerRegion {
		return nil, fmt.Errorf("xmmap: %s: ref %x out of range", a.name, uint64(ref))
	}
	if a.bitmap(a.regions[ri])[s/8]&(1<<(s%8)) == 0 {
		return nil, fmt.Errorf("xmmap: %s: ref %x not allocated", a.name, uint64(ref))
	}
	return a.slotData(ri, s), nil
}

// Free releases a slot for reuse (called after the chunk is flushed to the
// LSM and the mmap area is "cleaned", paper §3.2).
func (a *SlotArray) Free(ref Ref) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ref == NilRef {
		return fmt.Errorf("xmmap: %s: free of NilRef", a.name)
	}
	ri, s := ref.region(), ref.slot()
	if ri >= len(a.regions) || s >= a.slotsPerRegion {
		return fmt.Errorf("xmmap: %s: free ref %x out of range", a.name, uint64(ref))
	}
	bm := a.bitmap(a.regions[ri])
	if bm[s/8]&(1<<(s%8)) == 0 {
		return fmt.Errorf("xmmap: %s: double free of ref %x", a.name, uint64(ref))
	}
	bm[s/8] &^= 1 << (s % 8)
	if s < a.freeHint[ri] {
		a.freeHint[ri] = s
	}
	a.allocated--
	return nil
}

// Allocated returns the number of live slots.
func (a *SlotArray) Allocated() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocated
}

// SlotSize returns the fixed slot size in bytes.
func (a *SlotArray) SlotSize() int { return a.slotSize }

// SizeBytes returns the total mapped size across all regions.
func (a *SlotArray) SizeBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(len(a.regions)) * int64(a.regionSize())
}

// UsedBytes returns the resident footprint estimate: allocated slots plus
// headers. Mapped-but-untouched region space costs no physical memory (the
// OS faults pages in on first use), which is what Figure 16's RSS measures.
func (a *SlotArray) UsedBytes() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int64(a.allocated)*int64(a.slotSize) + int64(len(a.regions))*int64(headerLen+a.bitmapLen)
}

// Reset frees every slot (bitmaps cleared, regions kept). The head calls
// this at open: in-flight chunks are rebuilt from the write-ahead log, so
// slots persisted by a previous process are orphans.
func (a *SlotArray) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for ri, r := range a.regions {
		bm := a.bitmap(r)
		clear(bm)
		a.freeHint[ri] = 0
	}
	if len(a.regions) > 0 {
		a.bitmap(a.regions[0])[0] |= 1 // re-reserve NilRef's slot
	}
	a.allocated = 0
}

// Sync flushes all regions.
func (a *SlotArray) Sync() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, r := range a.regions {
		if err := r.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// Close unmaps all regions.
func (a *SlotArray) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	var firstErr error
	for _, r := range a.regions {
		if err := r.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	a.regions = nil
	return firstErr
}
