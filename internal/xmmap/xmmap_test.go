package xmmap

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestRegionAnonymous(t *testing.T) {
	r, err := OpenRegion("", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	copy(r.Data(), "hello")
	if !bytes.Equal(r.Data()[:5], []byte("hello")) {
		t.Fatal("anonymous region not writable")
	}
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRegionFileBacked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.mmap")
	r, err := OpenRegion(path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	copy(r.Data(), "persist-me")
	if err := r.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen and verify the data survived.
	r2, err := OpenRegion(path, 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if !bytes.Equal(r2.Data()[:10], []byte("persist-me")) {
		t.Fatalf("data lost: %q", r2.Data()[:10])
	}
}

func TestRegionBadSize(t *testing.T) {
	if _, err := OpenRegion("", 0); err == nil {
		t.Fatal("zero-size region accepted")
	}
}

func TestSlotArrayAllocFreeReuse(t *testing.T) {
	a, err := OpenSlotArray("", "chunks", 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	refs := make([]Ref, 0, 20)
	for i := 0; i < 20; i++ { // spans multiple regions (8 slots each, 1 reserved)
		ref, data, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		if ref == NilRef {
			t.Fatal("allocated NilRef")
		}
		if len(data) != 64 {
			t.Fatalf("slot len = %d", len(data))
		}
		data[0] = byte(i)
		refs = append(refs, ref)
	}
	if a.Allocated() != 20 {
		t.Fatalf("Allocated = %d", a.Allocated())
	}
	for i, ref := range refs {
		d, err := a.Get(ref)
		if err != nil {
			t.Fatal(err)
		}
		if d[0] != byte(i) {
			t.Fatalf("slot %d data = %d", i, d[0])
		}
	}
	// Free everything; allocations must reuse the space without new regions.
	size := a.SizeBytes()
	for _, ref := range refs {
		if err := a.Free(ref); err != nil {
			t.Fatal(err)
		}
	}
	if a.Allocated() != 0 {
		t.Fatalf("Allocated after free = %d", a.Allocated())
	}
	for i := 0; i < 20; i++ {
		ref, data, err := a.Alloc()
		if err != nil {
			t.Fatal(err)
		}
		// Reused slots must come back zeroed.
		for _, b := range data {
			if b != 0 {
				t.Fatal("reused slot not zeroed")
			}
		}
		_ = ref
	}
	if a.SizeBytes() != size {
		t.Fatalf("regions grew on reuse: %d -> %d", size, a.SizeBytes())
	}
}

func TestSlotArrayErrors(t *testing.T) {
	a, err := OpenSlotArray("", "chunks", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := a.Get(NilRef); err == nil {
		t.Fatal("Get(NilRef) succeeded")
	}
	if _, err := a.Get(makeRef(9, 0)); err == nil {
		t.Fatal("Get out-of-range region succeeded")
	}
	ref, _, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Free(ref); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(ref); err == nil {
		t.Fatal("double free succeeded")
	}
	if _, err := a.Get(ref); err == nil {
		t.Fatal("Get of freed slot succeeded")
	}
}

func TestSlotArrayPersistence(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenSlotArray(dir, "chunks", 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref, data, err := a.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "chunk-bytes")
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := OpenSlotArray(dir, "chunks", 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if b.Allocated() != 1 {
		t.Fatalf("Allocated after reopen = %d", b.Allocated())
	}
	d, err := b.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d[:11], []byte("chunk-bytes")) {
		t.Fatalf("chunk data lost: %q", d[:11])
	}
}

func TestSlotArrayGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenSlotArray(dir, "chunks", 32, 4)
	if err != nil {
		t.Fatal(err)
	}
	a.Close()
	if _, err := OpenSlotArray(dir, "chunks", 64, 4); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestInt32Array(t *testing.T) {
	x, err := OpenInt32Array("", "base", 100)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.Grow(250); err != nil { // 3 regions
		t.Fatal(err)
	}
	if x.Len() != 250 {
		t.Fatalf("Len = %d", x.Len())
	}
	for i := 0; i < 250; i++ {
		x.Set(i, int32(i*7-100))
	}
	for i := 0; i < 250; i++ {
		if got := x.Get(i); got != int32(i*7-100) {
			t.Fatalf("Get(%d) = %d", i, got)
		}
	}
	// Growing must preserve existing values.
	if err := x.Grow(1000); err != nil {
		t.Fatal(err)
	}
	if x.Get(249) != int32(249*7-100) {
		t.Fatal("Grow corrupted data")
	}
	if x.Get(999) != 0 {
		t.Fatal("new elements not zeroed")
	}
}

func TestByteArrayFileBacked(t *testing.T) {
	x, err := OpenByteArray(t.TempDir(), "tail", 64)
	if err != nil {
		t.Fatal(err)
	}
	defer x.Close()
	if err := x.Grow(200); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		x.Set(i, byte(i))
	}
	for i := 0; i < 200; i++ {
		if x.Get(i) != byte(i) {
			t.Fatalf("byte %d wrong", i)
		}
	}
	if x.SizeBytes() < 200 {
		t.Fatalf("SizeBytes = %d", x.SizeBytes())
	}
}

func TestFlatArrayNotDurable(t *testing.T) {
	dir := t.TempDir()
	x, err := OpenInt32Array(dir, "base", 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Grow(10); err != nil {
		t.Fatal(err)
	}
	x.Set(3, 42)
	x.Close()

	// Reopen: starts empty, stale files are truncated on growth.
	y, err := OpenInt32Array(dir, "base", 16)
	if err != nil {
		t.Fatal(err)
	}
	defer y.Close()
	if y.Len() != 0 {
		t.Fatalf("reopened Len = %d", y.Len())
	}
	if err := y.Grow(10); err != nil {
		t.Fatal(err)
	}
	if y.Get(3) != 0 {
		t.Fatal("stale data visible after reopen")
	}
}

func TestSlotArrayReset(t *testing.T) {
	a, err := OpenSlotArray("", "chunks", 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	for i := 0; i < 6; i++ {
		if _, _, err := a.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	a.Reset()
	if a.Allocated() != 0 {
		t.Fatalf("Allocated after reset = %d", a.Allocated())
	}
	ref, _, err := a.Alloc()
	if err != nil || ref == NilRef {
		t.Fatalf("alloc after reset: %v %v", ref, err)
	}
}
