package remote

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"timeunion/internal/lsm"
	"timeunion/internal/obs"
)

// OpsConfig configures the operational endpoints served next to the data
// API.
type OpsConfig struct {
	// Metrics backs GET /metrics (Prometheus text exposition). Nil
	// disables the endpoint (404).
	Metrics *obs.Registry
	// Journal backs GET /api/v1/events (NDJSON operational event stream,
	// DESIGN.md §4.12). Nil disables the endpoint (404).
	Journal *obs.Journal
	// Tree backs GET /api/v1/lsmtree (live table inventory). The callback
	// returns ok=false when no time-partitioned tree is running (the
	// endpoint answers 404). Nil disables the endpoint entirely.
	Tree func() (lsm.TreeSnapshot, bool)
	// Debug mounts net/http/pprof under /debug/pprof/ (the tuserve -debug
	// flag); off by default so profiling endpoints are never exposed
	// unintentionally.
	Debug bool
	// SlowQueryLog, when >0, wraps the handler so queries slower than the
	// threshold dump their span tree via Logf.
	SlowQueryLog time.Duration
	// Logf receives slow-query dumps (default: discards them).
	Logf func(format string, args ...any)
}

// NewOpsHandler wraps api with the operational surface:
//
//	GET /metrics        — Prometheus text exposition of cfg.Metrics
//	GET /healthz        — 200 "ok" liveness probe
//	GET /api/v1/events  — NDJSON operational event journal (cfg.Journal)
//	GET /api/v1/lsmtree — live LSM table inventory (cfg.Tree)
//	/debug/pprof/       — stdlib profiling endpoints, only when cfg.Debug
//
// plus (when cfg.SlowQueryLog > 0) per-query tracing: every
// /api/v1/query and /api/v1/query_stream request carries an obs.Trace in
// its context, and requests exceeding the threshold log their span tree.
// HTTP request/error counters are registered on cfg.Metrics when present.
func NewOpsHandler(api http.Handler, cfg OpsConfig) http.Handler {
	mux := http.NewServeMux()
	if cfg.Metrics != nil {
		mux.Handle("/metrics", obs.Handler(cfg.Metrics))
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ok")
	})
	if cfg.Journal != nil {
		mux.HandleFunc("/api/v1/events", func(w http.ResponseWriter, r *http.Request) {
			serveEvents(w, r, cfg.Journal)
		})
	}
	if cfg.Tree != nil {
		mux.HandleFunc("/api/v1/lsmtree", func(w http.ResponseWriter, r *http.Request) {
			serveTree(w, r, cfg.Tree)
		})
	}
	if cfg.Debug {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	mux.Handle("/", instrumentAPI(api, cfg))
	return mux
}

// serveEvents streams the journal as NDJSON, one obs.Event per line,
// oldest first. ?since_seq=N resumes after sequence N (a poll cursor);
// ?kind=a,b filters to the named event kinds.
func serveEvents(w http.ResponseWriter, r *http.Request, j *obs.Journal) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var sinceSeq uint64
	if s := r.URL.Query().Get("since_seq"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since_seq: "+err.Error(), http.StatusBadRequest)
			return
		}
		sinceSeq = v
	}
	var kinds map[string]bool
	if s := r.URL.Query().Get("kind"); s != "" {
		kinds = map[string]bool{}
		for _, k := range strings.Split(s, ",") {
			if k = strings.TrimSpace(k); k != "" {
				kinds[k] = true
			}
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w) // Encode appends the newline NDJSON wants
	for _, e := range j.Events(sinceSeq, kinds) {
		if err := enc.Encode(e); err != nil {
			return // client went away mid-stream
		}
	}
}

// serveTree renders the live LSM table inventory as one JSON document.
func serveTree(w http.ResponseWriter, r *http.Request, tree func() (lsm.TreeSnapshot, bool)) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap, ok := tree()
	if !ok {
		http.Error(w, "no time-partitioned LSM-tree running", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// instrumentAPI wraps the data API with request counters and the per-query
// trace / slow-query log.
func instrumentAPI(api http.Handler, cfg OpsConfig) http.Handler {
	var requests, errors *obs.Counter
	if cfg.Metrics != nil {
		requests = cfg.Metrics.Counter("timeunion_http_requests_total", "", "Data-API HTTP requests served.")
		errors = cfg.Metrics.Counter("timeunion_http_errors_total", "", "Data-API HTTP requests answered with status >= 400.")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests.Inc()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if cfg.SlowQueryLog > 0 && (r.URL.Path == "/api/v1/query" || r.URL.Path == "/api/v1/query_stream") {
			tr := obs.NewTrace(r.URL.Path)
			api.ServeHTTP(sw, r.WithContext(obs.ContextWithTrace(r.Context(), tr)))
			tr.Finish()
			if tr.Duration() >= cfg.SlowQueryLog {
				logf("slow query (%s >= %s):\n%s", tr.Duration().Round(time.Microsecond), cfg.SlowQueryLog, tr.Render())
			}
		} else {
			api.ServeHTTP(sw, r)
		}
		if sw.status >= 400 {
			errors.Inc()
		}
	})
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
