package bench

import (
	"fmt"
	"time"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
)

// CompactParallel measures whether background compaction serializes ingest:
// the same append-heavy workload runs once with a single compaction
// executor worker and once with the configured pool (-parallel-compact,
// default 4), against latency-modelled stores so compaction I/O has real
// cost. Reported per run: the ingest wall time (appends proceed while
// compactions run), the total time to a fully idle tree, the compaction
// counts, and the executor's observed parallelism high-water mark — the
// acceptance signal that two disjoint-partition compactions genuinely
// overlapped.
func CompactParallel(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	workers := cfg.CompactionWorkers
	if workers <= 1 {
		workers = 4
	}
	r := newReport("compact", "Serial vs parallel compaction throughput",
		"config", "ingest", "samples/s", "drain to idle", "compactions L0→L1/L1→L2", "peak parallel")

	for _, run := range []struct {
		key     string
		workers int
	}{{"serial", 1}, {"parallel", workers}} {
		ingest, total, samples, st, err := runCompactIngest(cfg, run.workers)
		if err != nil {
			return nil, fmt.Errorf("bench: compact %s: %w", run.key, err)
		}
		rate := float64(samples) / ingest.Seconds()
		drain := total - ingest
		r.addRow(fmt.Sprintf("workers=%d", run.workers),
			fmt.Sprintf("%.3fs", ingest.Seconds()),
			fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.3fs", drain.Seconds()),
			fmt.Sprintf("%d/%d", st.LSM.CompactionsL0L1, st.LSM.CompactionsL1L2),
			fmt.Sprintf("%d", st.LSM.MaxParallelCompactions))
		r.Values[run.key+"_ingest_seconds"] = ingest.Seconds()
		r.Values[run.key+"_total_seconds"] = total.Seconds()
		r.Values[run.key+"_samples_per_sec"] = rate
		r.Values[run.key+"_compactions_l0l1"] = float64(st.LSM.CompactionsL0L1)
		r.Values[run.key+"_compactions_l1l2"] = float64(st.LSM.CompactionsL1L2)
		r.Values[run.key+"_parallel_peak"] = float64(st.LSM.MaxParallelCompactions)
	}
	if s, p := r.Values["serial_total_seconds"], r.Values["parallel_total_seconds"]; p > 0 {
		r.Values["total_speedup"] = s / p
		r.note("total speedup %.2fx with %d workers (peak parallelism %d)",
			s/p, workers, int(r.Values["parallel_parallel_peak"]))
	}
	return r, nil
}

// runCompactIngest ingests a fixed append-heavy workload with the given
// executor width and returns the ingest wall time, the total time until the
// tree is idle, the sample count, and the final engine stats.
func runCompactIngest(cfg Config, workers int) (ingest, total time.Duration, samples int, st core.Stats, err error) {
	// Modelled latency with sleeping scaled down 20x: a slow-tier Put costs
	// ~1.5ms of wall clock, so L1→L2 compactions are genuinely expensive
	// and overlapping them is measurable.
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(20))
	slow := cloud.NewMemStore(cloud.TierObject, cloud.S3Model(20))
	db, err := core.Open(core.Options{
		Fast:              fast,
		Slow:              slow,
		CacheBytes:        1 << 28,
		ChunkSamples:      8,
		SlotsPerRegion:    1024,
		MemTableSize:      16 << 10,
		L0PartitionLength: 2000,
		L2PartitionLength: 8000,
		MaxL0Partitions:   2,
		CompactionWorkers: workers,
		TargetTableSize:   16 << 10,
		BlockSize:         2048,
	})
	if err != nil {
		return 0, 0, 0, st, err
	}
	defer db.Close()

	const (
		numSeries = 32
		stepMs    = 25
		spanMs    = 80_000 // 40 L0 windows, 10 L2 windows
	)
	lbls := make([]labels.Labels, numSeries)
	for i := range lbls {
		lbls[i] = labels.FromStrings("m", fmt.Sprintf("c%d", i))
	}
	start := time.Now()
	for ts := int64(0); ts < spanMs; ts += stepMs {
		for i, l := range lbls {
			if _, err := db.Append(l, ts, float64(i)+float64(ts)*1e-6); err != nil {
				return 0, 0, 0, st, err
			}
			samples++
		}
	}
	ingest = time.Since(start)
	if err := db.Flush(); err != nil {
		return 0, 0, 0, st, err
	}
	total = time.Since(start)
	return ingest, total, samples, db.Stats(), nil
}
