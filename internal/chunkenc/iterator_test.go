package chunkenc

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func mustEncode(t testing.TB, samples []Sample) []byte {
	t.Helper()
	b, err := EncodeXORSamples(samples)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func drain(t testing.TB, it SampleIterator) []Sample {
	t.Helper()
	var out []Sample
	for it.Next() {
		ts, v := it.At()
		out = append(out, Sample{T: ts, V: v})
	}
	if err := it.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

func sampleEq(t *testing.T, got, want []Sample) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d samples %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sample %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestXORIteratorSeek(t *testing.T) {
	samples := []Sample{{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}, {T: 50, V: 5}}
	enc := mustEncode(t, samples)

	it := NewXORIterator(enc)
	if !it.Seek(25) {
		t.Fatal("Seek(25) = false")
	}
	if ts, v := it.At(); ts != 30 || v != 3 {
		t.Fatalf("At after Seek(25) = %d,%v", ts, v)
	}
	// Never moves backwards.
	if !it.Seek(5) {
		t.Fatal("Seek(5) after Seek(25) = false")
	}
	if ts, _ := it.At(); ts != 30 {
		t.Fatalf("backwards Seek moved cursor to %d", ts)
	}
	if !it.Seek(50) {
		t.Fatal("Seek(50) = false")
	}
	if it.Seek(51) {
		t.Fatal("Seek past the end = true")
	}
	if it.Next() || it.Seek(0) {
		t.Fatal("exhausted iterator advanced")
	}

	// Seek before any Next positions at the first sample >= t.
	it = NewXORIterator(enc)
	if !it.Seek(10) {
		t.Fatal("initial Seek(10) = false")
	}
	if ts, _ := it.At(); ts != 10 {
		t.Fatalf("initial Seek(10) at %d", ts)
	}
}

func TestSliceIterator(t *testing.T) {
	samples := []Sample{{T: 1, V: 1}, {T: 5, V: 2}, {T: 9, V: 3}}
	sampleEq(t, drain(t, NewSliceIterator(samples)), samples)

	it := NewSliceIterator(samples)
	if !it.Seek(5) {
		t.Fatal("Seek(5) = false")
	}
	if ts, _ := it.At(); ts != 5 {
		t.Fatalf("Seek(5) at %d", ts)
	}
	if !it.Seek(2) { // backwards: stays
		t.Fatal("backwards Seek = false")
	}
	if ts, _ := it.At(); ts != 5 {
		t.Fatalf("backwards Seek moved to %d", ts)
	}
	if it.Seek(10) {
		t.Fatal("Seek past end = true")
	}
	if NewSliceIterator(nil).Next() {
		t.Fatal("empty slice iterator advanced")
	}
}

func TestGroupSlotIterator(t *testing.T) {
	g := &GroupData{
		Times: []int64{10, 20, 30, 40},
		Columns: []GroupColumn{
			{Slot: 0, Values: []float64{1, 0, 3, 0}, Nulls: []bool{false, true, false, true}},
			{Slot: 1, Values: []float64{5, 6, 7, 8}, Nulls: []bool{false, false, false, false}},
		},
	}
	payload, err := g.Encode()
	if err != nil {
		t.Fatal(err)
	}
	gt, err := DecodeGroupTuple(payload)
	if err != nil {
		t.Fatal(err)
	}
	sampleEq(t, drain(t, NewGroupSlotIterator(gt.Time, gt.Values[0])),
		[]Sample{{T: 10, V: 1}, {T: 30, V: 3}})
	sampleEq(t, drain(t, NewGroupSlotIterator(gt.Time, gt.Values[1])),
		[]Sample{{T: 10, V: 5}, {T: 20, V: 6}, {T: 30, V: 7}, {T: 40, V: 8}})

	// Seek skips NULL slots to the next non-NULL sample.
	it := NewGroupSlotIterator(gt.Time, gt.Values[0])
	if !it.Seek(20) {
		t.Fatal("Seek(20) = false")
	}
	if ts, v := it.At(); ts != 30 || v != 3 {
		t.Fatalf("Seek(20) at %d,%v", ts, v)
	}
	if it.Seek(31) {
		t.Fatal("Seek past last non-NULL = true")
	}
}

func TestMergeIteratorRankDedup(t *testing.T) {
	old := []Sample{{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}}
	newer := []Sample{{T: 20, V: 22}, {T: 40, V: 4}}
	m := NewMergeIterator([]RankedIterator{
		{Iter: NewSliceIterator(old), Rank: 1},
		{Iter: NewSliceIterator(newer), Rank: 2},
	})
	sampleEq(t, drain(t, m), []Sample{{T: 10, V: 1}, {T: 20, V: 22}, {T: 30, V: 3}, {T: 40, V: 4}})

	// Same streams, ranks swapped: the other duplicate wins.
	m = NewMergeIterator([]RankedIterator{
		{Iter: NewSliceIterator(old), Rank: 2},
		{Iter: NewSliceIterator(newer), Rank: 1},
	})
	sampleEq(t, drain(t, m), []Sample{{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}, {T: 40, V: 4}})
}

func TestMergeIteratorSeek(t *testing.T) {
	m := NewMergeIterator([]RankedIterator{
		{Iter: NewSliceIterator([]Sample{{T: 10, V: 1}, {T: 30, V: 3}}), Rank: 1},
		{Iter: NewSliceIterator([]Sample{{T: 20, V: 2}, {T: 30, V: 33}, {T: 40, V: 4}}), Rank: 2},
	})
	if !m.Seek(25) {
		t.Fatal("Seek(25) = false")
	}
	if ts, v := m.At(); ts != 30 || v != 33 {
		t.Fatalf("Seek(25) at %d,%v (want higher-rank duplicate)", ts, v)
	}
	if !m.Seek(15) { // backwards: stays
		t.Fatal("backwards Seek = false")
	}
	if ts, _ := m.At(); ts != 30 {
		t.Fatalf("backwards Seek moved to %d", ts)
	}
	if !m.Next() {
		t.Fatal("Next after Seek = false")
	}
	if ts, _ := m.At(); ts != 40 {
		t.Fatalf("Next after Seek at %d", ts)
	}
	if m.Next() {
		t.Fatal("Next past end = true")
	}
}

func TestMergeIteratorError(t *testing.T) {
	boom := errors.New("boom")
	m := NewMergeIterator([]RankedIterator{
		{Iter: NewSliceIterator([]Sample{{T: 1, V: 1}}), Rank: 1},
		{Iter: ErrIterator(boom), Rank: 2},
	})
	for m.Next() {
	}
	if !errors.Is(m.Err(), boom) {
		t.Fatalf("Err = %v, want %v", m.Err(), boom)
	}
}

func TestRangeLimit(t *testing.T) {
	enc := mustEncode(t, []Sample{{T: 10, V: 1}, {T: 20, V: 2}, {T: 30, V: 3}, {T: 40, V: 4}})
	it := NewRangeLimit(NewXORIterator(enc), 15, 35)
	sampleEq(t, drain(t, it), []Sample{{T: 20, V: 2}, {T: 30, V: 3}})

	it = NewRangeLimit(NewXORIterator(enc), 15, 35)
	if !it.Seek(5) { // clamped to mint
		t.Fatal("Seek(5) = false")
	}
	if ts, _ := it.At(); ts != 20 {
		t.Fatalf("clamped Seek at %d", ts)
	}
	if it.Seek(36) {
		t.Fatal("Seek beyond maxt = true")
	}

	it = NewRangeLimit(NewXORIterator(enc), 50, 60)
	if it.Next() {
		t.Fatal("empty range advanced")
	}
}

// refMerge is the oracle: materialize every source, highest rank wins per
// timestamp.
func refMerge(srcs [][]Sample, ranks []uint64) []Sample {
	type rv struct {
		rank uint64
		v    float64
	}
	best := map[int64]rv{}
	for i, s := range srcs {
		for _, sm := range s {
			if cur, ok := best[sm.T]; !ok || ranks[i] >= cur.rank {
				best[sm.T] = rv{rank: ranks[i], v: sm.V}
			}
		}
	}
	ts := make([]int64, 0, len(best))
	for t := range best {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := make([]Sample, len(ts))
	for i, t := range ts {
		out[i] = Sample{T: t, V: best[t].v}
	}
	return out
}

// genSources builds random sorted sources; equal ranks are avoided by
// making rank unique per source (matching the LSM, where ranks are
// sequence IDs and therefore distinct).
func genSources(rnd *rand.Rand, nSrc int) ([][]Sample, []uint64) {
	srcs := make([][]Sample, nSrc)
	ranks := make([]uint64, nSrc)
	perm := rnd.Perm(nSrc)
	for i := range srcs {
		n := rnd.Intn(12)
		seen := map[int64]bool{}
		var s []Sample
		for len(s) < n {
			t := int64(rnd.Intn(100))
			if seen[t] {
				continue
			}
			seen[t] = true
			s = append(s, Sample{T: t, V: float64(rnd.Intn(1000))})
		}
		sort.Slice(s, func(a, b int) bool { return s[a].T < s[b].T })
		srcs[i] = s
		ranks[i] = uint64(perm[i]) + 1
	}
	return srcs, ranks
}

// checkMergeOps drives a MergeIterator with a random Next/Seek op sequence
// against the materialized oracle.
func checkMergeOps(t *testing.T, srcs [][]Sample, ranks []uint64, ops []byte, useXOR bool) {
	t.Helper()
	ris := make([]RankedIterator, len(srcs))
	for i, s := range srcs {
		if useXOR && len(s) > 0 {
			ris[i] = RankedIterator{Iter: NewXORIterator(mustEncode(t, s)), Rank: ranks[i]}
		} else {
			ris[i] = RankedIterator{Iter: NewSliceIterator(s), Rank: ranks[i]}
		}
	}
	m := NewMergeIterator(ris)
	ref := refMerge(srcs, ranks)
	pos := -1
	exhausted := false
	for _, op := range ops {
		if op < 128 { // Next
			want := !exhausted && pos+1 < len(ref)
			got := m.Next()
			if got != want {
				t.Fatalf("Next = %v, want %v (pos %d of %d)", got, want, pos, len(ref))
			}
			if !want {
				exhausted = true
				continue
			}
			pos++
		} else { // Seek
			tq := int64(op % 110)
			idx := pos
			if idx < 0 || ref[idx].T < tq {
				idx = sort.Search(len(ref), func(i int) bool { return ref[i].T >= tq })
			}
			want := !exhausted && idx < len(ref)
			got := m.Seek(tq)
			if got != want {
				t.Fatalf("Seek(%d) = %v, want %v (pos %d idx %d of %d)", tq, got, want, pos, idx, len(ref))
			}
			if !want {
				exhausted = true
				continue
			}
			pos = idx
		}
		ts, v := m.At()
		if ts != ref[pos].T || v != ref[pos].V {
			t.Fatalf("At = %d,%v, want %v", ts, v, ref[pos])
		}
	}
	if err := m.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIteratorRandomized(t *testing.T) {
	rnd := rand.New(rand.NewSource(20260806))
	for round := 0; round < 200; round++ {
		srcs, ranks := genSources(rnd, 1+rnd.Intn(6))
		ops := make([]byte, 64)
		rnd.Read(ops)
		checkMergeOps(t, srcs, ranks, ops, round%2 == 0)
	}
}

func FuzzMergeIterator(f *testing.F) {
	f.Add(int64(1), uint8(3), []byte{0, 200, 5, 190, 9})
	f.Add(int64(42), uint8(1), []byte{255, 0, 0, 128})
	f.Add(int64(7), uint8(6), []byte{10, 20, 250, 30, 131, 40, 0})
	f.Fuzz(func(t *testing.T, seed int64, nSrc uint8, ops []byte) {
		if len(ops) > 256 {
			ops = ops[:256]
		}
		rnd := rand.New(rand.NewSource(seed))
		srcs, ranks := genSources(rnd, 1+int(nSrc%8))
		checkMergeOps(t, srcs, ranks, ops, seed%2 == 0)
	})
}
