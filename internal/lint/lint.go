// Package lint is TimeUnion's project-invariant static-analysis driver
// (DESIGN.md §4.9). It loads packages from source with go/parser and
// go/types — no external modules — and runs a fixed suite of analyzers
// that mechanically enforce contracts the design docs state in prose:
// striped-lock ordering (§4.5), the durability/error-classification
// discipline (§4.6), metric naming (§4.7), and the SampleIterator Seek
// contract (§4.8).
//
// Diagnostics print as "file:line:col: [analyzer] message". A finding is
// suppressed by a directive comment on the same line or the line above:
//
//	//lint:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Analyzer is one invariant checker. Per-package analyzers set Run;
// interprocedural analyzers set RunModule and receive every loaded package
// plus the shared call graph (built once per run). Exactly one of the two
// should be set.
type Analyzer struct {
	// Name is the identifier used in output and ignore directives.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Run executes the analyzer over one package.
	Run func(*Pass)
	// RunModule executes the analyzer once over the whole loaded set.
	RunModule func(*ModulePass)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"` // module-root-relative path
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
	// Suppressed marks findings covered by a lint:ignore directive; they
	// are retained (for -json trend inspection) but do not fail the run.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"`
}

// String renders the canonical file:line:col: [analyzer] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one package's parsed and type-checked state to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	// PkgPath is the import path ("timeunion/internal/wal"). Analyzers
	// scope themselves with InScope rather than hard-coding the module
	// name, so fixture packages under testdata exercise the same logic.
	PkgPath string
	Info    *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Line:     position.Line,
		Col:      position.Column,
		File:     position.Filename,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InScope reports whether the package's import path falls under any of the
// given path fragments (e.g. "internal/wal"). Matching is by path-segment
// suffix or containment so both the real module and test fixtures match.
func (p *Pass) InScope(fragments ...string) bool {
	for _, f := range fragments {
		if p.PkgPath == f || strings.HasSuffix(p.PkgPath, "/"+f) || strings.Contains(p.PkgPath, "/"+f+"/") {
			return true
		}
	}
	return false
}

// Inspect walks every file of the package in depth-first order.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// ModulePass carries the whole loaded package set and the shared call graph
// to an interprocedural analyzer.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*Package
	Graph    *CallGraph

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Line:     position.Line,
		Col:      position.Column,
		File:     position.Filename,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Timing is one analyzer's aggregate wall time across a run. The shared
// call-graph build is reported under the pseudo-analyzer "callgraph".
type Timing struct {
	Analyzer string        `json:"analyzer"`
	Duration time.Duration `json:"-"`
	Millis   float64       `json:"ms"`
}

// Run executes every analyzer over every package and returns the combined,
// position-sorted diagnostics with suppression applied. Paths in the
// returned diagnostics are relative to root when possible.
func Run(root string, pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	diags, _ := RunTimed(root, pkgs, analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall-time accounting (the tulint
// -timing report and the make lint budget check).
func RunTimed(root string, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, []Timing) {
	var diags []Diagnostic
	elapsed := map[string]time.Duration{}
	var order []string
	record := func(name string, d time.Duration) {
		if _, ok := elapsed[name]; !ok {
			order = append(order, name)
		}
		elapsed[name] += d
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				diags:    &diags,
			}
			start := time.Now()
			a.Run(pass)
			record(a.Name, time.Since(start))
		}
		// Malformed directives are findings too: an ignore without a
		// reason defeats the audit trail the directive exists for.
		for _, bad := range pkg.badDirectives {
			diags = append(diags, Diagnostic{
				Analyzer: "lint",
				Pos:      bad.pos,
				File:     bad.pos.Filename,
				Line:     bad.pos.Line,
				Col:      bad.pos.Column,
				Message:  bad.msg,
			})
		}
	}
	// Module-wide passes share one call graph, built lazily so per-package
	// subsets of the suite pay nothing for it.
	var graph *CallGraph
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		if graph == nil {
			start := time.Now()
			graph = BuildCallGraph(pkgs)
			record("callgraph", time.Since(start))
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     graph.Fset,
			Pkgs:     pkgs,
			Graph:    graph,
			diags:    &diags,
		}
		start := time.Now()
		a.RunModule(mp)
		record(a.Name, time.Since(start))
	}
	// Apply suppression directives.
	byFile := map[string][]ignoreDirective{}
	for _, pkg := range pkgs {
		for file, dirs := range pkg.ignores {
			byFile[file] = append(byFile[file], dirs...)
		}
	}
	for i := range diags {
		for _, dir := range byFile[diags[i].File] {
			if dir.matches(diags[i].Analyzer, diags[i].Line) {
				diags[i].Suppressed = true
				diags[i].Reason = dir.reason
				break
			}
		}
	}
	for i := range diags {
		if rel, err := filepath.Rel(root, diags[i].File); err == nil && !strings.HasPrefix(rel, "..") {
			diags[i].File = rel
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	timings := make([]Timing, 0, len(order))
	for _, name := range order {
		d := elapsed[name]
		timings = append(timings, Timing{Analyzer: name, Duration: d, Millis: float64(d.Microseconds()) / 1000})
	}
	return diags, timings
}

// Unsuppressed filters diags down to the findings that fail a run.
func Unsuppressed(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}
