package head

import (
	"fmt"
	"sync"

	"timeunion/internal/chunkenc"
	"timeunion/internal/encoding"
	"timeunion/internal/index"
	"timeunion/internal/labels"
	"timeunion/internal/tuple"
	"timeunion/internal/xmmap"
)

// groupMember is one timeseries inside a group: only its unique tags are
// stored (the shared group tags live once on the group, §3.1).
type groupMember struct {
	unique labels.Labels
}

// groupBuilder is the open chunk of a group: one shared timestamp column
// plus one value column per member that has produced a sample in this
// chunk. Value columns append into mmap slots like series chunks.
type groupBuilder struct {
	times    *chunkenc.GroupTimeChunk
	timeRef  xmmap.Ref
	vals     map[uint32]*chunkenc.GroupValueChunk
	valRefs  map[uint32]xmmap.Ref
	numTimes int
}

// MemGroup is the memory object of a timeseries group.
type MemGroup struct {
	GID       uint64
	GroupTags labels.Labels

	// mu guards everything below; rounds appended to different groups
	// only contend on their stripe's read lock.
	mu          sync.Mutex
	members     []groupMember
	memberByKey map[string]int

	seq   uint64
	lastT int64
	haveT bool

	cur *groupBuilder
	// scratch is the reusable per-round slot→value staging map.
	scratch map[uint32]float64
}

// AppendGroup inserts one shared-timestamp round of samples into a group
// identified by its shared tags (the slow-path group API of §3.4). Each
// uniqueTags[i] identifies one member inside the group; members not yet in
// the group's timeseries array are appended to it. It returns the group ID
// and the member slot indexes for fast-path use.
func (h *Head) AppendGroup(groupTags labels.Labels, uniqueTags []labels.Labels, t int64, vals []float64) (uint64, []int, error) {
	if len(uniqueTags) != len(vals) {
		return 0, nil, fmt.Errorf("head: group append: %d tag sets vs %d values", len(uniqueTags), len(vals))
	}
	g, err := h.getOrCreateGroup(groupTags)
	if err != nil {
		return 0, nil, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	slots := make([]int, len(uniqueTags))
	for i, ut := range uniqueTags {
		slot, err := h.getOrCreateMemberLocked(g, ut)
		if err != nil {
			return 0, nil, err
		}
		slots[i] = slot
	}
	if err := h.appendGroupLocked(g, t, slots, vals); err != nil {
		return 0, nil, err
	}
	return g.GID, slots, nil
}

// AppendGroupFast inserts one round by group ID and member slot indexes
// (the fast-path group API of §3.4).
func (h *Head) AppendGroupFast(gid uint64, slots []int, t int64, vals []float64) error {
	if len(slots) != len(vals) {
		return fmt.Errorf("head: group append: %d slots vs %d values", len(slots), len(vals))
	}
	g, ok := h.lookupGroup(gid)
	if !ok {
		return fmt.Errorf("head: unknown group id %d", gid)
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, s := range slots {
		if s < 0 || s >= len(g.members) {
			return fmt.Errorf("head: group %d: slot %d out of range", gid, s)
		}
	}
	return h.appendGroupLocked(g, t, slots, vals)
}

// lookupGroup resolves a group id through its stripe.
func (h *Head) lookupGroup(gid uint64) (*MemGroup, bool) {
	st := h.stripeFor(gid)
	st.mu.RLock()
	g, ok := st.groups[gid]
	st.mu.RUnlock()
	return g, ok
}

// getOrCreateGroup finds or registers a group by shared tags; the catalog
// lock serializes creation (the slow path) only.
func (h *Head) getOrCreateGroup(groupTags labels.Labels) (*MemGroup, error) {
	key := groupTags.Key()
	h.cat.mu.RLock()
	gid, ok := h.cat.groupByKey[key]
	h.cat.mu.RUnlock()
	if ok {
		if g, ok := h.lookupGroup(gid); ok {
			return g, nil
		}
	}
	h.cat.mu.Lock()
	defer h.cat.mu.Unlock()
	if gid, ok := h.cat.groupByKey[key]; ok {
		g, _ := h.lookupGroup(gid)
		return g, nil
	}
	h.cat.nextGroup++
	gid = index.GroupIDFlag | h.cat.nextGroup
	g := &MemGroup{
		GID:         gid,
		GroupTags:   groupTags.Copy(),
		memberByKey: make(map[string]int),
	}
	// The group ID is the postings ID for all of the group's tags (§3.1).
	if err := h.idx.Add(gid, g.GroupTags); err != nil {
		return nil, err
	}
	if h.opts.WAL != nil {
		if err := h.opts.WAL.LogGroup(gid, g.GroupTags); err != nil {
			return nil, err
		}
	}
	st := h.stripeFor(gid)
	st.mu.Lock()
	st.groups[gid] = g
	st.mu.Unlock()
	h.cat.groupByKey[key] = gid
	return g, nil
}

// getOrCreateMemberLocked finds or appends a member slot. The caller holds
// g.mu; the index and WAL are internally synchronized.
func (h *Head) getOrCreateMemberLocked(g *MemGroup, unique labels.Labels) (int, error) {
	key := unique.Key()
	if slot, ok := g.memberByKey[key]; ok {
		return slot, nil
	}
	slot := len(g.members)
	g.members = append(g.members, groupMember{unique: unique.Copy()})
	g.memberByKey[key] = slot
	// Unique tags also point at the group ID in the second-level index.
	if err := h.idx.Add(g.GID, unique); err != nil {
		return 0, err
	}
	if h.opts.WAL != nil {
		if err := h.opts.WAL.LogGroupMember(g.GID, uint32(slot), unique); err != nil {
			return 0, err
		}
	}
	return slot, nil
}

// appendGroupLocked logs and ingests one round. The caller holds g.mu.
func (h *Head) appendGroupLocked(g *MemGroup, t int64, slots []int, vals []float64) error {
	g.seq++
	if h.opts.WAL != nil {
		s32 := make([]uint32, len(slots))
		for i, s := range slots {
			s32[i] = uint32(s)
		}
		if err := h.opts.WAL.LogGroupSample(g.GID, g.seq, t, s32, vals); err != nil {
			return err
		}
	}
	return h.ingestGroupLocked(g, t, slots, vals)
}

// ingestGroupLocked applies one round without logging (also used by
// recovery). The four insertion cases of §3.1 are handled here: normal
// append, new member (NULL backfill), missing member (NULL fill), and
// out-of-order (rewrite or early flush). The caller holds g.mu.
func (h *Head) ingestGroupLocked(g *MemGroup, t int64, slots []int, vals []float64) error {
	if g.cur != nil && g.cur.numTimes > 0 && t <= g.cur.times.MaxTime() {
		if t >= g.cur.times.MinTime() {
			return h.rewriteGroupChunkLocked(g, t, slots, vals)
		}
		// Older than the open chunk: early-flush a single-row tuple.
		row := &chunkenc.GroupData{Times: []int64{t}}
		for i, s := range slots {
			row.Columns = append(row.Columns, chunkenc.GroupColumn{
				Slot:   uint32(s),
				Values: []float64{vals[i]},
				Nulls:  []bool{false},
			})
		}
		enc, err := row.Encode()
		if err != nil {
			return err
		}
		return h.opts.Sink(encoding.MakeKey(g.GID, t), tuple.Encode(g.seq, tuple.KindGroup, t, t, enc))
	}

	if g.cur == nil {
		g.cur = h.newGroupBuilder()
	}
	b := g.cur
	if err := b.times.Append(t); err != nil {
		return err
	}
	b.numTimes++
	if g.scratch == nil {
		g.scratch = make(map[uint32]float64, len(slots))
	}
	inRound := g.scratch
	clear(inRound)
	for i, s := range slots {
		inRound[uint32(s)] = vals[i]
	}
	// Existing columns: value if sampled this round, NULL otherwise
	// (insertion case 3, the "missing timeseries" fill).
	for slot, vc := range b.vals {
		if v, ok := inRound[slot]; ok {
			vc.Append(v)
			delete(inRound, slot)
		} else {
			vc.AppendNull()
		}
	}
	// New columns this chunk: backfill NULLs for earlier rounds
	// (insertion case 2, the "new timeseries" backfill).
	for slot, v := range inRound {
		ref, buf := allocChunkBuf(h.groupValSlots)
		vc := chunkenc.NewGroupValueChunkInto(buf)
		for i := 0; i < b.numTimes-1; i++ {
			vc.AppendNull()
		}
		vc.Append(v)
		b.vals[slot] = vc
		b.valRefs[slot] = ref
	}
	if !g.haveT || t > g.lastT {
		g.lastT = t
		g.haveT = true
	}
	if b.numTimes >= h.opts.ChunkSamples {
		return h.flushGroupChunkLocked(g)
	}
	return nil
}

func (h *Head) newGroupBuilder() *groupBuilder {
	ref, buf := allocChunkBuf(h.groupTimeSlots)
	return &groupBuilder{
		times:   chunkenc.NewGroupTimeChunkInto(buf),
		timeRef: ref,
		vals:    make(map[uint32]*chunkenc.GroupValueChunk),
		valRefs: make(map[uint32]xmmap.Ref),
	}
}

// rewriteGroupChunkLocked handles an out-of-order round whose timestamp
// falls inside the open chunk: decode, merge, re-encode (§3.1 case 4).
// The caller holds g.mu.
func (h *Head) rewriteGroupChunkLocked(g *MemGroup, t int64, slots []int, vals []float64) error {
	old, err := h.builderData(g.cur)
	if err != nil {
		return err
	}
	row := &chunkenc.GroupData{Times: []int64{t}}
	for i, s := range slots {
		row.Columns = append(row.Columns, chunkenc.GroupColumn{
			Slot:   uint32(s),
			Values: []float64{vals[i]},
			Nulls:  []bool{false},
		})
	}
	merged := chunkenc.MergeGroupData(old, row)
	h.resetGroupChunkLocked(g)
	g.cur = h.newGroupBuilder()
	b := g.cur
	for _, ts := range merged.Times {
		if err := b.times.Append(ts); err != nil {
			return err
		}
	}
	b.numTimes = len(merged.Times)
	for _, col := range merged.Columns {
		ref, buf := allocChunkBuf(h.groupValSlots)
		vc := chunkenc.NewGroupValueChunkInto(buf)
		for i := range merged.Times {
			if col.Nulls[i] {
				vc.AppendNull()
			} else {
				vc.Append(col.Values[i])
			}
		}
		b.vals[col.Slot] = vc
		b.valRefs[col.Slot] = ref
	}
	if !g.haveT || t > g.lastT {
		g.lastT = t
		g.haveT = true
	}
	if b.numTimes >= h.opts.ChunkSamples {
		return h.flushGroupChunkLocked(g)
	}
	return nil
}

// builderData decodes the open chunk into columnar form.
func (h *Head) builderData(b *groupBuilder) (*chunkenc.GroupData, error) {
	g := &chunkenc.GroupData{}
	it := b.times.Iterator()
	for it.Next() {
		g.Times = append(g.Times, it.At())
	}
	if it.Err() != nil {
		return nil, it.Err()
	}
	for slot, vc := range b.vals {
		col := chunkenc.GroupColumn{Slot: slot}
		vit := vc.Iterator()
		for vit.Next() {
			v, null := vit.At()
			col.Values = append(col.Values, v)
			col.Nulls = append(col.Nulls, null)
		}
		if vit.Err() != nil {
			return nil, vit.Err()
		}
		for len(col.Values) < len(g.Times) {
			col.Values = append(col.Values, 0)
			col.Nulls = append(col.Nulls, true)
		}
		g.Columns = append(g.Columns, col)
	}
	return g, nil
}

// flushGroupChunkLocked serializes the open group chunk (Figure 7: "we
// concatenate and serialize timestamp chunk and metric values chunks into a
// byte array ... and insert it into the time-partitioned LSM-Tree"). The
// caller holds g.mu.
func (h *Head) flushGroupChunkLocked(g *MemGroup) error {
	b := g.cur
	gt := &chunkenc.GroupTuple{Time: append([]byte(nil), b.times.Bytes()...)}
	slots := make([]uint32, 0, len(b.vals))
	for slot := range b.vals {
		slots = append(slots, slot)
	}
	sortUint32(slots)
	for _, slot := range slots {
		gt.Slots = append(gt.Slots, slot)
		gt.Values = append(gt.Values, append([]byte(nil), b.vals[slot].Bytes()...))
	}
	key := encoding.MakeKey(g.GID, b.times.MinTime())
	if err := h.opts.Sink(key, tuple.Encode(g.seq, tuple.KindGroup, b.times.MinTime(), b.times.MaxTime(), gt.Encode(nil))); err != nil {
		return err
	}
	h.mGroupFlushed.Inc()
	h.resetGroupChunkLocked(g)
	return nil
}

func (h *Head) resetGroupChunkLocked(g *MemGroup) {
	if g.cur == nil {
		return
	}
	freeChunkBuf(h.groupTimeSlots, g.cur.timeRef)
	for _, ref := range g.cur.valRefs {
		freeChunkBuf(h.groupValSlots, ref)
	}
	g.cur = nil
}

// removeGroupLocked unregisters a purged group. The caller holds the
// catalog lock, st's lock, and g.mu.
func (h *Head) removeGroupLocked(st *stripe, gid uint64, g *MemGroup) {
	h.idx.Remove(gid, g.GroupTags)
	for _, m := range g.members {
		h.idx.Remove(gid, m.unique)
	}
	h.resetGroupChunkLocked(g)
	delete(st.groups, gid)
	delete(h.cat.groupByKey, g.GroupTags.Key())
}

// GroupInfo returns a group's shared tags and its members' unique tags in
// slot order.
func (h *Head) GroupInfo(gid uint64) (labels.Labels, []labels.Labels, bool) {
	g, ok := h.lookupGroup(gid)
	if !ok {
		return nil, nil, false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	members := make([]labels.Labels, len(g.members))
	for i, m := range g.members {
		members[i] = m.unique
	}
	return g.GroupTags, members, true
}

// ResolveGroup returns the group ID for a set of shared tags.
func (h *Head) ResolveGroup(groupTags labels.Labels) (uint64, bool) {
	h.cat.mu.RLock()
	gid, ok := h.cat.groupByKey[groupTags.Key()]
	h.cat.mu.RUnlock()
	return gid, ok
}

// HeadGroupSamples returns the open-chunk samples of every member of the
// group overlapping [mint, maxt], keyed by member slot.
func (h *Head) HeadGroupSamples(gid uint64, mint, maxt int64) (map[uint32][]chunkenc.Sample, error) {
	g, ok := h.lookupGroup(gid)
	if !ok {
		return nil, nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.cur == nil || g.cur.numTimes == 0 {
		return nil, nil
	}
	data, err := h.builderData(g.cur)
	if err != nil {
		return nil, err
	}
	out := map[uint32][]chunkenc.Sample{}
	for _, col := range data.Columns {
		for i, ts := range data.Times {
			if ts < mint || ts > maxt || col.Nulls[i] {
				continue
			}
			out[col.Slot] = append(out[col.Slot], chunkenc.Sample{T: ts, V: col.Values[i]})
		}
	}
	return out, nil
}

// HeadGroupIterators streams the open group chunk's members in
// [mint, maxt]: one iterator per slot over the shared time column and the
// member's value column. Each member is batch-decoded under the group lock
// into a pooled sample buffer owned by its iterator — the column bytes
// (which may live in memory-mapped slots) never escape the lock. A missing
// group or empty chunk yields nil. Release the iterators
// (chunkenc.ReleaseIterator) to recycle the buffers.
func (h *Head) HeadGroupIterators(gid uint64, mint, maxt int64) map[uint32]chunkenc.SampleIterator {
	g, ok := h.lookupGroup(gid)
	if !ok {
		return nil
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	b := g.cur
	if b == nil || b.numTimes == 0 {
		return nil
	}
	if b.times.MaxTime() < mint || b.times.MinTime() > maxt {
		return nil
	}
	timeCol := b.times.Bytes()
	out := make(map[uint32]chunkenc.SampleIterator, len(b.vals))
	for slot, vc := range b.vals {
		buf := chunkenc.GetSampleBuffer()
		var err error
		buf.T, buf.V, err = chunkenc.AppendGroupSlotSamples(buf.T, buf.V, timeCol, vc.Bytes())
		if err != nil {
			chunkenc.PutSampleBuffer(buf)
			out[slot] = chunkenc.ErrIterator(err)
			continue
		}
		out[slot] = chunkenc.GetBufferIterator(buf, mint, maxt)
	}
	return out
}

func sortUint32(s []uint32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
