package trie

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func newTestTrie(t *testing.T) *Trie {
	t.Helper()
	tr, err := New(Options{SlotsPerRegion: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

func mustInsert(t *testing.T, tr *Trie, key string, v int32) {
	t.Helper()
	if _, _, err := tr.Insert([]byte(key), v); err != nil {
		t.Fatalf("insert %q: %v", key, err)
	}
}

func TestInsertGetBasic(t *testing.T) {
	tr := newTestTrie(t)
	// The paper's Figure 8 example: two tag pairs sharing prefix "metric$".
	mustInsert(t, tr, "metric$cpu", 1)
	mustInsert(t, tr, "metric$disk", 2)
	if v, ok := tr.Get([]byte("metric$cpu")); !ok || v != 1 {
		t.Fatalf("Get(metric$cpu) = %d,%v", v, ok)
	}
	if v, ok := tr.Get([]byte("metric$disk")); !ok || v != 2 {
		t.Fatalf("Get(metric$disk) = %d,%v", v, ok)
	}
	if _, ok := tr.Get([]byte("metric$mem")); ok {
		t.Fatal("found missing key")
	}
	if _, ok := tr.Get([]byte("metric$c")); ok {
		t.Fatal("found prefix of a key")
	}
	if _, ok := tr.Get([]byte("metric$cpuu")); ok {
		t.Fatal("found extension of a key")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestPrefixKeys(t *testing.T) {
	tr := newTestTrie(t)
	mustInsert(t, tr, "a", 1)
	mustInsert(t, tr, "ab", 2)
	mustInsert(t, tr, "abc", 3)
	mustInsert(t, tr, "", 4) // empty key
	for key, want := range map[string]int32{"a": 1, "ab": 2, "abc": 3, "": 4} {
		if v, ok := tr.Get([]byte(key)); !ok || v != want {
			t.Fatalf("Get(%q) = %d,%v want %d", key, v, ok, want)
		}
	}
}

func TestUpdateValue(t *testing.T) {
	tr := newTestTrie(t)
	mustInsert(t, tr, "key", 1)
	old, existed, err := tr.Insert([]byte("key"), 9)
	if err != nil || !existed || old != 1 {
		t.Fatalf("update = %d,%v,%v", old, existed, err)
	}
	if v, _ := tr.Get([]byte("key")); v != 9 {
		t.Fatalf("value after update = %d", v)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len after update = %d", tr.Len())
	}
}

func TestRejectNegativeValue(t *testing.T) {
	tr := newTestTrie(t)
	if _, _, err := tr.Insert([]byte("k"), -1); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestBinaryKeys(t *testing.T) {
	tr := newTestTrie(t)
	keys := [][]byte{
		{0x00}, {0x00, 0x00}, {0xff, 0xfe}, {0x00, 0xff}, {1, 2, 3}, {255}, {},
	}
	for i, k := range keys {
		if _, _, err := tr.Insert(k, int32(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for i, k := range keys {
		if v, ok := tr.Get(k); !ok || v != int32(i+1) {
			t.Fatalf("Get(%x) = %d,%v", k, v, ok)
		}
	}
}

func TestIteratePrefix(t *testing.T) {
	tr := newTestTrie(t)
	data := map[string]int32{
		"metric$cpu":    1,
		"metric$cpu0":   2,
		"metric$disk":   3,
		"metric$diskio": 4,
		"host$h1":       5,
		"host$h2":       6,
	}
	for k, v := range data {
		mustInsert(t, tr, k, v)
	}
	var got []string
	tr.IteratePrefix([]byte("metric$"), func(key []byte, v int32) bool {
		got = append(got, fmt.Sprintf("%s=%d", key, v))
		return true
	})
	want := []string{"metric$cpu=1", "metric$cpu0=2", "metric$disk=3", "metric$diskio=4"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("IteratePrefix = %v, want %v", got, want)
	}

	// Empty prefix iterates everything in sorted order.
	got = got[:0]
	tr.IteratePrefix(nil, func(key []byte, v int32) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != len(data) || !sort.StringsAreSorted(got) {
		t.Fatalf("full iteration = %v", got)
	}

	// Early stop.
	n := 0
	tr.IteratePrefix(nil, func(key []byte, v int32) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestIteratePrefixIntoTail(t *testing.T) {
	tr := newTestTrie(t)
	mustInsert(t, tr, "abcdefgh", 1) // single key: long tail
	var got []string
	tr.IteratePrefix([]byte("abcd"), func(key []byte, v int32) bool {
		got = append(got, string(key))
		return true
	})
	if len(got) != 1 || got[0] != "abcdefgh" {
		t.Fatalf("prefix-into-tail = %v", got)
	}
	tr.IteratePrefix([]byte("abcx"), func(key []byte, v int32) bool {
		t.Fatal("matched wrong prefix")
		return false
	})
}

func TestManyKeysAgainstMapModel(t *testing.T) {
	tr := newTestTrie(t)
	rnd := rand.New(rand.NewSource(42))
	model := map[string]int32{}
	alphabet := "abcdefghijklmnopqrstuvwxyz0123456789$=._-"
	for i := 0; i < 20000; i++ {
		n := rnd.Intn(24)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteByte(alphabet[rnd.Intn(len(alphabet))])
		}
		key := sb.String()
		v := int32(rnd.Intn(1 << 20))
		model[key] = v
		if _, _, err := tr.Insert([]byte(key), v); err != nil {
			t.Fatalf("insert %q: %v", key, err)
		}
	}
	if tr.Len() != len(model) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(model))
	}
	for k, want := range model {
		if v, ok := tr.Get([]byte(k)); !ok || v != want {
			t.Fatalf("Get(%q) = %d,%v want %d", k, v, ok, want)
		}
	}
	// Negative lookups.
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("missing-%d-%d", i, rnd.Int63())
		if _, ok := tr.Get([]byte(key)); ok {
			t.Fatalf("found phantom key %q", key)
		}
	}
	// Full iteration matches the model.
	seen := map[string]int32{}
	tr.IteratePrefix(nil, func(key []byte, v int32) bool {
		seen[string(key)] = v
		return true
	})
	if len(seen) != len(model) {
		t.Fatalf("iterated %d keys, want %d", len(seen), len(model))
	}
	for k, v := range model {
		if seen[k] != v {
			t.Fatalf("iterated %q = %d, want %d", k, seen[k], v)
		}
	}
}

func TestTSBSStyleTagPairs(t *testing.T) {
	// Realistic shape: a few tag names, many values, shared prefixes.
	tr := newTestTrie(t)
	n := int32(0)
	for host := 0; host < 500; host++ {
		for _, tag := range []string{
			fmt.Sprintf("hostname\xffhost_%d", host),
			fmt.Sprintf("region\xffap-northeast-%d", host%3),
			fmt.Sprintf("service\xffsvc_%d", host%17),
		} {
			if _, existed, err := tr.Insert([]byte(tag), n); err != nil {
				t.Fatal(err)
			} else if !existed {
				n++
			}
		}
	}
	count := 0
	tr.IteratePrefix([]byte("hostname\xff"), func(key []byte, v int32) bool {
		count++
		return true
	})
	if count != 500 {
		t.Fatalf("hostname values = %d, want 500", count)
	}
	count = 0
	tr.IteratePrefix([]byte("region\xff"), func(key []byte, v int32) bool {
		count++
		return true
	})
	if count != 3 {
		t.Fatalf("region values = %d, want 3", count)
	}
}

func TestSizeBytesGrows(t *testing.T) {
	tr := newTestTrie(t)
	before := tr.SizeBytes()
	for i := 0; i < 5000; i++ {
		mustInsert(t, tr, fmt.Sprintf("key-%d-padding-padding", i), int32(i))
	}
	if tr.SizeBytes() <= before {
		t.Fatalf("SizeBytes did not grow: %d -> %d", before, tr.SizeBytes())
	}
}

func TestFileBackedTrie(t *testing.T) {
	tr, err := New(Options{Dir: t.TempDir(), SlotsPerRegion: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for i := 0; i < 3000; i++ {
		if _, _, err := tr.Insert([]byte(fmt.Sprintf("tag%d", i)), int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3000; i++ {
		if v, ok := tr.Get([]byte(fmt.Sprintf("tag%d", i))); !ok || v != int32(i) {
			t.Fatalf("file-backed Get(tag%d) = %d,%v", i, v, ok)
		}
	}
}

// TestQuickBinaryKeys: arbitrary binary keys behave exactly like a map.
func TestQuickBinaryKeys(t *testing.T) {
	tr := newTestTrie(t)
	model := map[string]int32{}
	f := func(key []byte, v uint16) bool {
		val := int32(v)
		_, existedModel := model[string(key)]
		old, existed, err := tr.Insert(key, val)
		if err != nil {
			return false
		}
		if existed != existedModel {
			return false
		}
		if existed && old != model[string(key)] {
			return false
		}
		model[string(key)] = val
		got, ok := tr.Get(key)
		return ok && got == val && tr.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Fatal(err)
	}
	// Verify the whole model at the end.
	for k, v := range model {
		if got, ok := tr.Get([]byte(k)); !ok || got != v {
			t.Fatalf("Get(%x) = %d,%v want %d", k, got, ok, v)
		}
	}
}
