// Hybrid tiering under a fast-storage budget: the elastic time-partitioned
// LSM-tree keeps recent data on the fast (block) tier and ships older
// partitions to the slow (object) tier, halving/doubling its partition
// lengths to keep the fast-tier footprint at a configured budget
// (Algorithm 1, Figure 19).
//
//	go run ./examples/hybrid-tiering
package main

import (
	"fmt"
	"log"

	"timeunion/internal/cloud"
	"timeunion/internal/core"
	"timeunion/internal/labels"
	"timeunion/internal/lsm"
)

func main() {
	fast := cloud.NewMemStore(cloud.TierBlock, cloud.EBSModel(0))
	slow := cloud.NewMemStore(cloud.TierObject, cloud.S3Model(0))
	db, err := core.Open(core.Options{
		Fast:              fast,
		Slow:              slow,
		MemTableSize:      32 << 10,
		L0PartitionLength: 30 * 60 * 1000,
		L2PartitionLength: 2 * 60 * 60 * 1000,
		FastLimit:         96 << 10, // the fast-tier budget
		DynamicSizing:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tree := db.ChunkStoreRef().(*lsm.LSM)

	const series = 150
	ids := make([]uint64, series)
	for i := range ids {
		ids[i], err = db.Append(labels.FromStrings(
			"metric", "requests", "service", fmt.Sprintf("svc-%02d", i)), 0, 0)
		if err != nil {
			log.Fatal(err)
		}
	}

	const hour = 3_600_000
	report := func(phase string) {
		if err := db.Flush(); err != nil {
			log.Fatal(err)
		}
		r1, r2 := tree.PartitionLengths()
		fmt.Printf("%-22s R1=%3dmin R2=%3dmin  fast=%7dB (budget %dB)  slow=%8dB  parts=%v\n",
			phase, r1/60000, r2/60000, tree.FastUsage(), 96<<10, slow.TotalBytes(), tree.NumPartitions())
	}

	// Phase 1: dense 10-second data pressures the fast tier; the
	// controller halves partition lengths so less data stays fast.
	t := int64(0)
	for ; t <= 6*hour; t += 10_000 {
		for i, id := range ids {
			if err := db.AppendFast(id, t+1, float64(i)+float64(t%100)); err != nil {
				log.Fatal(err)
			}
		}
	}
	report("dense 10s:")

	// Phase 2: sparse 2-minute data underuses the budget; partition
	// lengths grow back so more recent data stays on the fast tier.
	for ; t <= 18*hour; t += 120_000 {
		for i, id := range ids {
			if err := db.AppendFast(id, t+1, float64(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	report("sparse 2min:")

	// Phase 3: dense again.
	for ; t <= 24*hour; t += 10_000 {
		for i, id := range ids {
			if err := db.AppendFast(id, t+1, float64(i)); err != nil {
				log.Fatal(err)
			}
		}
	}
	report("dense 10s again:")

	st := tree.Stats()
	fmt.Printf("\nresizes: %d shrinks, %d grows; slow-tier uploads: %d compactions\n",
		st.ResizeShrinks, st.ResizeGrows, st.CompactionsL1L2)
	fmt.Printf("monthly storage bill estimate: $%.4f\n",
		cloud.MonthlyCostUSD(fast.TotalBytes(), slow.TotalBytes(), db.Stats().Memory.Total()))
}
