// Package head is the lockorder fixture: acquisitions must follow the
// catalog → stripe → series/group hierarchy of DESIGN.md §4.5.
package head

import "sync"

type catalog struct{ mu sync.RWMutex }

type stripe struct{ mu sync.RWMutex }

type MemSeries struct{ mu sync.Mutex }

type MemGroup struct{ mu sync.Mutex }

type Head struct {
	cat     catalog
	stripes [4]stripe
}

// ordered follows the documented hierarchy: no findings.
func (h *Head) ordered(s *MemSeries) {
	h.cat.mu.Lock()
	st := &h.stripes[0]
	st.mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	st.mu.Unlock()
	h.cat.mu.Unlock()
}

// inverted takes the catalog lock under a stripe lock.
func (h *Head) inverted(st *stripe) {
	st.mu.Lock()
	h.cat.mu.Lock() // want "catalog lock .catalog. acquired while the stripe lock"
	h.cat.mu.Unlock()
	st.mu.Unlock()
}

// sequential release-then-acquire is not nesting: no findings.
func (h *Head) sequential(st *stripe) {
	st.mu.RLock()
	st.mu.RUnlock()
	h.cat.mu.Lock()
	h.cat.mu.Unlock()
}

// deferredHeld shows that a deferred Unlock keeps the object lock held,
// so the later stripe read lock inverts the order.
func (h *Head) deferredHeld(st *stripe, g *MemGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	st.mu.RLock() // want "stripe lock .stripe. acquired while the series/group object lock"
	st.mu.RUnlock()
}

// closureScoped: a lock held to scope end inside a function literal must
// not leak into the enclosing function's walk (the WAL replay callbacks
// rely on this).
func (h *Head) closureScoped(st *stripe, s *MemSeries) {
	cb := func() {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	cb()
	st.mu.RLock() // ok: the closure's object lock is not held here
	st.mu.RUnlock()
}

// closureViolation: ordering is still enforced inside the literal itself.
func (h *Head) closureViolation(st *stripe) func() {
	return func() {
		st.mu.Lock()
		h.cat.mu.Lock() // want "catalog lock .catalog. acquired while the stripe lock"
		h.cat.mu.Unlock()
		st.mu.Unlock()
	}
}

// objectUnderStripe is the documented fast path: no findings.
func (h *Head) objectUnderStripe(s *MemSeries) {
	st := &h.stripes[1]
	st.mu.RLock()
	s.mu.Lock()
	s.mu.Unlock()
	st.mu.RUnlock()
}
